#include "analysis/isp.h"

#include <gtest/gtest.h>

namespace cs::analysis {
namespace {

class IspTest : public ::testing::Test {
 protected:
  IspTest()
      : ec2(cloud::Provider::make_ec2(41)),
        topology(ec2, 41),
        vantages(internet::planetlab_vantages(60)) {}

  cloud::Provider ec2;
  internet::AsTopology topology;
  std::vector<internet::VantagePoint> vantages;
};

TEST_F(IspTest, EveryRegionReported) {
  const auto study = run_isp_study(ec2, topology, vantages, 2);
  EXPECT_EQ(study.rows.size(), ec2.regions().size());
}

TEST_F(IspTest, ZoneCountsMatchRegionZones) {
  const auto study = run_isp_study(ec2, topology, vantages, 2);
  for (const auto& row : study.rows) {
    const auto* region = ec2.region(row.region);
    ASSERT_NE(region, nullptr);
    EXPECT_EQ(row.per_zone.size(),
              static_cast<std::size_t>(region->zone_count));
  }
}

TEST_F(IspTest, Table16Shape) {
  const auto study = run_isp_study(ec2, topology, vantages, 2);
  std::map<std::string, std::size_t> max_per_region;
  for (const auto& row : study.rows) {
    std::size_t best = 0;
    for (const auto& [zone, count] : row.per_zone)
      best = std::max(best, count);
    max_per_region[row.region] = best;
  }
  // US East is the best multihomed; Sydney and Sao Paulo the worst.
  EXPECT_GT(max_per_region["ec2.us-east-1"], 20u);
  EXPECT_LE(max_per_region["ec2.ap-southeast-2"], 5u);
  EXPECT_LE(max_per_region["ec2.sa-east-1"], 5u);
}

TEST_F(IspTest, ZonesOfARegionSeeSimilarCounts) {
  const auto study = run_isp_study(ec2, topology, vantages, 2);
  for (const auto& row : study.rows) {
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const auto& [zone, count] : row.per_zone) {
      lo = std::min(lo, count);
      hi = std::max(hi, count);
    }
    if (hi >= 6)
      EXPECT_LE(hi - lo, hi / 2) << row.region;  // "(almost) the same"
  }
}

TEST_F(IspTest, RouteSpreadIsUneven) {
  const auto study = run_isp_study(ec2, topology, vantages, 2);
  for (const auto& row : study.rows) {
    const auto* region = ec2.region(row.region);
    const double even_share = 1.0 / region->zone_count;  // placeholder
    (void)even_share;
    // The busiest ISP always carries more than an even share would.
    EXPECT_GT(row.max_single_isp_share, 0.1) << row.region;
    EXPECT_LE(row.max_single_isp_share, 1.0);
  }
}

TEST_F(IspTest, FailureImpactSingleVsMultiRegion) {
  auto impacts = single_isp_failure_impact(ec2, topology, vantages);
  ASSERT_FALSE(impacts.empty());
  for (const auto& impact : impacts) {
    // The busiest ISP's failure hurts a single-region deployment...
    EXPECT_GT(impact.single_region_unreachable, 0.05) << impact.region;
    // ...and a two-region deployment strictly dominates it.
    EXPECT_LE(impact.multi_region_unreachable,
              impact.single_region_unreachable)
        << impact.region;
  }
}

TEST_F(IspTest, FailureRestoredAfterExperiment) {
  single_isp_failure_impact(ec2, topology, vantages);
  // No AS remains failed.
  for (const auto& region : ec2.regions())
    for (const auto& as : topology.region_pool(region.name))
      EXPECT_FALSE(topology.is_down(as.asn));
}

}  // namespace
}  // namespace cs::analysis
