#include "net/five_tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace cs::net {
namespace {

FiveTuple make_tuple() {
  return {{Ipv4(10, 0, 0, 1), 51000}, {Ipv4(54, 1, 2, 3), 443}, IpProto::kTcp};
}

TEST(FiveTuple, CanonicalIsDirectionInsensitive) {
  const FiveTuple fwd = make_tuple();
  const FiveTuple rev{fwd.dst, fwd.src, fwd.proto};
  EXPECT_EQ(fwd.canonical(), rev.canonical());
  EXPECT_NE(fwd, rev);
}

TEST(FiveTuple, CanonicalIsIdempotent) {
  const auto c = make_tuple().canonical();
  EXPECT_EQ(c, c.canonical());
}

TEST(FiveTuple, CanonicalOrdersByEndpoint) {
  const auto c = make_tuple().canonical();
  EXPECT_LE(c.src, c.dst);
}

TEST(FiveTuple, HashMatchesEquality) {
  const FiveTupleHash h;
  const auto a = make_tuple();
  auto b = a;
  EXPECT_EQ(h(a), h(b));
  b.src.port = 51001;
  EXPECT_NE(a, b);
}

TEST(FiveTuple, UsableInUnorderedSet) {
  std::unordered_set<std::size_t> hashes;
  const FiveTupleHash h;
  for (std::uint16_t port = 1000; port < 1100; ++port) {
    FiveTuple t = make_tuple();
    t.src.port = port;
    hashes.insert(h(t));
  }
  // Port-only variation must not collapse hash values.
  EXPECT_GT(hashes.size(), 95u);
}

TEST(FiveTuple, ProtocolNames) {
  EXPECT_EQ(to_string(IpProto::kTcp), "tcp");
  EXPECT_EQ(to_string(IpProto::kUdp), "udp");
  EXPECT_EQ(to_string(IpProto::kIcmp), "icmp");
  EXPECT_EQ(to_string(IpProto::kOther), "other");
}

TEST(FiveTuple, ToStringReadable) {
  EXPECT_EQ(make_tuple().to_string(), "10.0.0.1:51000 -> 54.1.2.3:443 (tcp)");
}

TEST(Endpoint, Ordering) {
  const Endpoint a{Ipv4(1, 0, 0, 1), 80};
  const Endpoint b{Ipv4(1, 0, 0, 1), 81};
  const Endpoint c{Ipv4(1, 0, 0, 2), 1};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

}  // namespace
}  // namespace cs::net
