#include "proto/logfile.h"

#include <gtest/gtest.h>

namespace cs::proto {
namespace {

TraceLogs sample_logs() {
  TraceLogs logs;
  ConnRecord conn;
  conn.tuple = {{net::Ipv4(128, 104, 1, 2), 51000},
                {net::Ipv4(54, 1, 2, 3), 443},
                net::IpProto::kTcp};
  conn.service = Service::kHttps;
  conn.first_ts = 1340700000.25;
  conn.duration = 12.5;
  conn.bytes = 123456;
  conn.packets = 120;
  conn.hostname = "client1.dropbox.com";
  logs.conns.push_back(conn);

  ConnRecord dns;
  dns.tuple = {{net::Ipv4(128, 104, 1, 3), 40000},
               {net::Ipv4(54, 9, 9, 9), 53},
               net::IpProto::kUdp};
  dns.service = Service::kDns;
  dns.first_ts = 1340700001.0;
  dns.bytes = 300;
  dns.packets = 2;
  logs.conns.push_back(dns);

  HttpRecord http;
  http.host = "www.netflix.com";
  http.method = "GET";
  http.target = "/title/1";
  http.status = 200;
  http.content_type = "video/mp4";
  http.content_length = 987654;
  logs.http.push_back(http);

  SslRecord ssl;
  ssl.sni = "client1.dropbox.com";
  ssl.certificate_cn = "*.dropbox.com";
  logs.ssl.push_back(ssl);
  return logs;
}

TEST(Logfile, ConnLogShape) {
  const auto text = to_conn_log(sample_logs());
  EXPECT_EQ(text.rfind("#fields\tts\t", 0), 0u);
  EXPECT_NE(text.find("54.1.2.3\t443\ttcp\tssl"), std::string::npos);
  EXPECT_NE(text.find("client1.dropbox.com"), std::string::npos);
  // The DNS record's missing hostname renders as '-'.
  EXPECT_NE(text.find("\tdns\t"), std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Logfile, HttpLogShape) {
  const auto text = to_http_log(sample_logs());
  EXPECT_NE(text.find("www.netflix.com\tGET\t/title/1\t200\tvideo/mp4\t"
                      "987654"),
            std::string::npos);
}

TEST(Logfile, SslLogShape) {
  const auto text = to_ssl_log(sample_logs());
  EXPECT_NE(text.find("client1.dropbox.com\t*.dropbox.com"),
            std::string::npos);
}

TEST(Logfile, ConnLogRoundTrip) {
  const auto logs = sample_logs();
  const auto parsed = parse_conn_log(to_conn_log(logs));
  ASSERT_EQ(parsed.size(), logs.conns.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].tuple, logs.conns[i].tuple);
    EXPECT_EQ(parsed[i].service, logs.conns[i].service);
    EXPECT_EQ(parsed[i].bytes, logs.conns[i].bytes);
    EXPECT_EQ(parsed[i].packets, logs.conns[i].packets);
    EXPECT_EQ(parsed[i].hostname, logs.conns[i].hostname);
    EXPECT_NEAR(parsed[i].first_ts, logs.conns[i].first_ts, 1e-5);
    EXPECT_NEAR(parsed[i].duration, logs.conns[i].duration, 1e-5);
  }
}

TEST(Logfile, ParseSkipsHeaderAndJunk) {
  const auto parsed = parse_conn_log(
      "#fields\twhatever\n"
      "not a record at all\n"
      "1.0\t1.2.3.4\t1\t5.6.7.8\t2\ttcp\thttp\t0.5\t100\t3\t-\n"
      "1.0\tBADIP\t1\t5.6.7.8\t2\ttcp\thttp\t0.5\t100\t3\t-\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].bytes, 100u);
  EXPECT_FALSE(parsed[0].hostname);
}

TEST(Logfile, EmptyLogs) {
  const TraceLogs empty;
  const auto text = to_conn_log(empty);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);  // header only
  EXPECT_TRUE(parse_conn_log(text).empty());
}

}  // namespace
}  // namespace cs::proto
