#include "dns/zonefile.h"

#include <gtest/gtest.h>

namespace cs::dns {
namespace {

Zone sample_zone() {
  SoaRecord soa;
  soa.mname = Name::must_parse("ns1.example.com");
  soa.rname = Name::must_parse("hostmaster.example.com");
  soa.serial = 2013032701;
  Zone zone{Name::must_parse("example.com"), soa};
  zone.add(ResourceRecord::ns(Name::must_parse("example.com"),
                              Name::must_parse("ns1.example.com")));
  zone.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                             net::Ipv4(192, 0, 2, 1), 300));
  zone.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                             net::Ipv4(192, 0, 2, 2), 300));
  zone.add(ResourceRecord::cname(
      Name::must_parse("m.example.com"),
      Name::must_parse("lb-1.us-east-1.elb.amazonaws.com"), 60));
  zone.add(ResourceRecord::txt(Name::must_parse("example.com"),
                               {"v=spf1 -all"}));
  return zone;
}

TEST(Zonefile, SerializeShape) {
  const auto text = to_zonefile(sample_zone());
  EXPECT_EQ(text.rfind("$ORIGIN example.com.\n", 0), 0u);
  EXPECT_NE(text.find("IN SOA ns1.example.com."), std::string::npos);
  EXPECT_NE(text.find("www 300 IN A 192.0.2.1"), std::string::npos);
  EXPECT_NE(text.find("m 60 IN CNAME lb-1.us-east-1.elb.amazonaws.com."),
            std::string::npos);
  EXPECT_NE(text.find("@ 300 IN TXT \"v=spf1 -all\""), std::string::npos);
}

TEST(Zonefile, RoundTripPreservesRecords) {
  const auto original = sample_zone();
  const auto result = parse_zonefile(to_zonefile(original));
  ASSERT_TRUE(result.zone) << (result.errors.empty() ? ""
                                                     : result.errors[0]);
  EXPECT_TRUE(result.errors.empty());
  const auto& parsed = *result.zone;
  EXPECT_EQ(parsed.origin(), original.origin());
  EXPECT_EQ(parsed.soa().serial, original.soa().serial);
  EXPECT_EQ(parsed.record_count(), original.record_count());
  // Spot-check content equality by name/type.
  for (const auto& name : original.names()) {
    for (const auto& rr : original.find_all(name)) {
      const auto found = parsed.find(rr.name, rr.type());
      EXPECT_FALSE(found.empty())
          << rr.name.to_string() << " " << to_string(rr.type());
    }
  }
}

TEST(Zonefile, ParsesRelativeAndAbsoluteOwners) {
  const auto result = parse_zonefile(
      "$ORIGIN example.com.\n"
      "@ 3600 IN SOA ns1.example.com. hostmaster.example.com. 1 2 3 4 5\n"
      "www 300 IN A 1.2.3.4\n"
      "ftp.example.com. 300 IN A 1.2.3.5\n");
  ASSERT_TRUE(result.zone);
  EXPECT_TRUE(result.errors.empty());
  EXPECT_FALSE(
      result.zone->find(Name::must_parse("www.example.com"), RrType::kA)
          .empty());
  EXPECT_FALSE(
      result.zone->find(Name::must_parse("ftp.example.com"), RrType::kA)
          .empty());
}

TEST(Zonefile, CommentsAndBlankLinesIgnored) {
  const auto result = parse_zonefile(
      "; a zone\n\n$ORIGIN x.net.\n"
      "@ 3600 IN SOA ns.x.net. root.x.net. 1 2 3 4 5 ; apex\n"
      "   \n"
      "a 60 IN A 9.9.9.9 ; host\n");
  ASSERT_TRUE(result.zone);
  EXPECT_TRUE(result.errors.empty());
}

TEST(Zonefile, MissingSoaFails) {
  const auto result = parse_zonefile(
      "$ORIGIN x.net.\nwww 60 IN A 9.9.9.9\n");
  EXPECT_FALSE(result.zone);
  EXPECT_FALSE(result.errors.empty());
}

TEST(Zonefile, RecordBeforeOriginFails) {
  const auto result =
      parse_zonefile("www 60 IN A 9.9.9.9\n$ORIGIN x.net.\n");
  EXPECT_FALSE(result.zone);
}

TEST(Zonefile, DuplicateSoaFails) {
  const auto result = parse_zonefile(
      "$ORIGIN x.net.\n"
      "@ 3600 IN SOA ns.x.net. r.x.net. 1 2 3 4 5\n"
      "@ 3600 IN SOA ns.x.net. r.x.net. 2 2 3 4 5\n");
  EXPECT_FALSE(result.zone);
}

TEST(Zonefile, MalformedLinesReportedButNotFatal) {
  const auto result = parse_zonefile(
      "$ORIGIN x.net.\n"
      "@ 3600 IN SOA ns.x.net. r.x.net. 1 2 3 4 5\n"
      "this is not a record\n"
      "bad 60 IN A not-an-ip\n"
      "good 60 IN A 8.8.8.8\n"
      "weird 60 IN MX 10 mail.x.net.\n");
  ASSERT_TRUE(result.zone);
  EXPECT_EQ(result.errors.size(), 3u);
  EXPECT_FALSE(
      result.zone->find(Name::must_parse("good.x.net"), RrType::kA).empty());
}

TEST(Zonefile, OutOfZoneRecordRejected) {
  const auto result = parse_zonefile(
      "$ORIGIN x.net.\n"
      "@ 3600 IN SOA ns.x.net. r.x.net. 1 2 3 4 5\n"
      "www.other.org. 60 IN A 8.8.8.8\n");
  ASSERT_TRUE(result.zone);
  EXPECT_EQ(result.errors.size(), 1u);
}

}  // namespace
}  // namespace cs::dns
