#include "proto/classify.h"

#include <gtest/gtest.h>

#include <string>

#include "proto/http.h"
#include "proto/tls.h"

namespace cs::proto {
namespace {

pcap::Flow tcp_flow(std::uint16_t dst_port,
                    std::vector<std::uint8_t> to_responder = {}) {
  pcap::Flow flow;
  flow.tuple = {{net::Ipv4(10, 0, 0, 1), 50000},
                {net::Ipv4(54, 0, 0, 1), dst_port},
                net::IpProto::kTcp};
  flow.payload_to_responder = std::move(to_responder);
  return flow;
}

TEST(Classify, IcmpFlow) {
  pcap::Flow flow;
  flow.tuple.proto = net::IpProto::kIcmp;
  EXPECT_EQ(classify(flow), Service::kIcmp);
}

TEST(Classify, HttpByPayload) {
  const auto req = build_request("GET", "x.com", "/");
  // Even on an odd port, an HTTP request line wins.
  EXPECT_EQ(classify(tcp_flow(8443, req)), Service::kHttp);
}

TEST(Classify, HttpsByTlsPayload) {
  EXPECT_EQ(classify(tcp_flow(8080, build_client_hello("x.com"))),
            Service::kHttps);
}

TEST(Classify, PortFallbacks) {
  EXPECT_EQ(classify(tcp_flow(80)), Service::kHttp);
  EXPECT_EQ(classify(tcp_flow(8080)), Service::kHttp);
  EXPECT_EQ(classify(tcp_flow(443)), Service::kHttps);
  EXPECT_EQ(classify(tcp_flow(22)), Service::kOtherTcp);
  EXPECT_EQ(classify(tcp_flow(25)), Service::kOtherTcp);
}

TEST(Classify, DnsByPort) {
  pcap::Flow flow;
  flow.tuple = {{net::Ipv4(10, 0, 0, 1), 53124},
                {net::Ipv4(8, 8, 8, 8), 53},
                net::IpProto::kUdp};
  EXPECT_EQ(classify(flow), Service::kDns);
  // Reverse direction (responses) also count as DNS.
  std::swap(flow.tuple.src, flow.tuple.dst);
  EXPECT_EQ(classify(flow), Service::kDns);
}

TEST(Classify, OtherUdp) {
  pcap::Flow flow;
  flow.tuple = {{net::Ipv4(10, 0, 0, 1), 5000},
                {net::Ipv4(54, 0, 0, 1), 123},
                net::IpProto::kUdp};
  EXPECT_EQ(classify(flow), Service::kOtherUdp);
}

TEST(Classify, PayloadBeatsPort) {
  // TLS bytes on port 80: classified HTTPS, not HTTP.
  EXPECT_EQ(classify(tcp_flow(80, build_client_hello("x.com"))),
            Service::kHttps);
}

TEST(Classify, ServiceNamesMatchPaperRows) {
  EXPECT_EQ(to_string(Service::kHttp), "HTTP (TCP)");
  EXPECT_EQ(to_string(Service::kHttps), "HTTPS (TCP)");
  EXPECT_EQ(to_string(Service::kDns), "DNS (UDP)");
  EXPECT_EQ(to_string(Service::kIcmp), "ICMP");
  EXPECT_EQ(to_string(Service::kOtherTcp), "Other (TCP)");
  EXPECT_EQ(to_string(Service::kOtherUdp), "Other (UDP)");
}

}  // namespace
}  // namespace cs::proto
