#include "proto/logs.h"

#include <gtest/gtest.h>

#include "pcap/decode.h"
#include "proto/tls.h"

namespace cs::proto {
namespace {

const net::Endpoint kClient{net::Ipv4(10, 0, 0, 1), 50123};

/// Builds one HTTP flow end-to-end through the packet pipeline.
pcap::Flow make_http_flow(const std::string& host,
                          const std::string& content_type,
                          std::uint64_t body) {
  pcap::FlowTable table;
  const net::Endpoint server{net::Ipv4(54, 0, 0, 9), 80};
  table.add(pcap::make_tcp_packet(1.0, kClient, server,
                                  pcap::TcpFlags{.syn = true}, 0, {}));
  table.add(pcap::make_tcp_packet(1.1, kClient, server,
                                  pcap::TcpFlags{.ack = true, .psh = true}, 1,
                                  build_request("GET", host, "/")));
  table.add(pcap::make_tcp_packet(
      1.2, server, kClient, pcap::TcpFlags{.ack = true, .psh = true}, 1,
      build_response(200, content_type, body, 128)));
  auto flows = table.finish();
  return flows.at(0);
}

pcap::Flow make_https_flow(const std::string& sni, const std::string& cn) {
  pcap::FlowTable table;
  const net::Endpoint server{net::Ipv4(54, 0, 0, 10), 443};
  table.add(pcap::make_tcp_packet(2.0, kClient, server,
                                  pcap::TcpFlags{.psh = true}, 0,
                                  build_client_hello(sni)));
  table.add(pcap::make_tcp_packet(2.1, server, kClient,
                                  pcap::TcpFlags{.psh = true}, 0,
                                  build_certificate(cn)));
  auto flows = table.finish();
  return flows.at(0);
}

TEST(Logs, HttpFlowProducesConnAndHttpRecords) {
  const auto logs =
      analyze_flows({make_http_flow("www.netflix.com", "video/mp4", 9999)});
  ASSERT_EQ(logs.conns.size(), 1u);
  EXPECT_EQ(logs.conns[0].service, Service::kHttp);
  EXPECT_EQ(logs.conns[0].hostname.value_or(""), "www.netflix.com");
  ASSERT_EQ(logs.http.size(), 1u);
  EXPECT_EQ(logs.http[0].host, "www.netflix.com");
  EXPECT_EQ(logs.http[0].content_type.value_or(""), "video/mp4");
  EXPECT_EQ(logs.http[0].content_length.value_or(0), 9999u);
  EXPECT_TRUE(logs.ssl.empty());
}

TEST(Logs, HttpsFlowUsesCertificateCn) {
  const auto logs = analyze_flows(
      {make_https_flow("client1.dropbox.com", "*.dropbox.com")});
  ASSERT_EQ(logs.conns.size(), 1u);
  EXPECT_EQ(logs.conns[0].service, Service::kHttps);
  // CN is preferred over SNI, matching the paper's methodology.
  EXPECT_EQ(logs.conns[0].hostname.value_or(""), "*.dropbox.com");
  ASSERT_EQ(logs.ssl.size(), 1u);
  EXPECT_EQ(logs.ssl[0].sni.value_or(""), "client1.dropbox.com");
  EXPECT_EQ(logs.ssl[0].certificate_cn.value_or(""), "*.dropbox.com");
}

TEST(Logs, HttpsWithoutCertFallsBackToSni) {
  pcap::FlowTable table;
  const net::Endpoint server{net::Ipv4(54, 0, 0, 10), 443};
  table.add(pcap::make_tcp_packet(2.0, kClient, server,
                                  pcap::TcpFlags{.psh = true}, 0,
                                  build_client_hello("only.sni.com")));
  const auto logs = analyze_flows(table.finish());
  ASSERT_EQ(logs.conns.size(), 1u);
  EXPECT_EQ(logs.conns[0].hostname.value_or(""), "only.sni.com");
}

TEST(Logs, NonWebFlowHasNoHostname) {
  pcap::FlowTable table;
  table.add(pcap::make_udp_packet(1.0, kClient,
                                  {net::Ipv4(8, 8, 8, 8), 53},
                                  std::vector<std::uint8_t>{1, 2, 3}));
  const auto logs = analyze_flows(table.finish());
  ASSERT_EQ(logs.conns.size(), 1u);
  EXPECT_EQ(logs.conns[0].service, Service::kDns);
  EXPECT_FALSE(logs.conns[0].hostname);
  EXPECT_TRUE(logs.http.empty());
  EXPECT_TRUE(logs.ssl.empty());
}

TEST(Logs, PipelinedHttpPairsRequestsWithResponses) {
  pcap::Flow flow;
  flow.tuple = {kClient, {net::Ipv4(54, 0, 0, 9), 80}, net::IpProto::kTcp};
  auto req1 = build_request("GET", "a.example.com", "/1");
  auto req2 = build_request("GET", "b.example.com", "/2");
  flow.payload_to_responder = req1;
  flow.payload_to_responder.insert(flow.payload_to_responder.end(),
                                   req2.begin(), req2.end());
  auto resp1 = build_response(200, "text/html", 10, 10);
  auto resp2 = build_response(200, "image/png", 20, 20);
  flow.payload_to_initiator = resp1;
  flow.payload_to_initiator.insert(flow.payload_to_initiator.end(),
                                   resp2.begin(), resp2.end());
  const auto logs = analyze_flows({flow});
  ASSERT_EQ(logs.http.size(), 2u);
  EXPECT_EQ(logs.http[0].host, "a.example.com");
  EXPECT_EQ(logs.http[0].content_type.value_or(""), "text/html");
  EXPECT_EQ(logs.http[1].host, "b.example.com");
  EXPECT_EQ(logs.http[1].content_type.value_or(""), "image/png");
}

TEST(Logs, RequestWithoutResponseStillLogged) {
  pcap::Flow flow;
  flow.tuple = {kClient, {net::Ipv4(54, 0, 0, 9), 80}, net::IpProto::kTcp};
  flow.payload_to_responder = build_request("GET", "lost.example.com", "/");
  const auto logs = analyze_flows({flow});
  ASSERT_EQ(logs.http.size(), 1u);
  EXPECT_EQ(logs.http[0].host, "lost.example.com");
  EXPECT_EQ(logs.http[0].status, 0);
}

TEST(Logs, ConnRecordCarriesFlowAccounting) {
  auto flow = make_http_flow("x.com", "text/plain", 3);
  const auto logs = analyze_flows({flow});
  ASSERT_EQ(logs.conns.size(), 1u);
  EXPECT_EQ(logs.conns[0].bytes, flow.bytes);
  EXPECT_EQ(logs.conns[0].packets, flow.packets);
  EXPECT_NEAR(logs.conns[0].duration, flow.duration(), 1e-9);
}

}  // namespace
}  // namespace cs::proto
