#include <gtest/gtest.h>

#include <map>

#include "carto/combined.h"
#include "carto/latency_zone.h"
#include "carto/proximity.h"

namespace cs::carto {
namespace {

class CartoTest : public ::testing::Test {
 protected:
  CartoTest()
      : ec2(cloud::Provider::make_ec2(21)),
        model(internet::WideAreaModel::Config{.seed = 21}) {}

  /// Launches tenant instances to act as probe targets.
  std::vector<const cloud::Instance*> launch_targets(int count,
                                                     const std::string& region,
                                                     const std::string& acct) {
    std::vector<const cloud::Instance*> out;
    for (int i = 0; i < count; ++i)
      out.push_back(&ec2.launch({.account = acct, .region = region}));
    return out;
  }

  cloud::Provider ec2;
  internet::WideAreaModel model;
};

TEST_F(CartoTest, ProximityLabelsAreRegionConsistentBijections) {
  ProximityEstimator proximity{ec2, {.seed = 3, .total_samples = 1500}};
  // Translating labels to physical zones must be a bijection per region.
  for (const auto& region : ec2.regions()) {
    std::set<int> zones;
    for (int label = 0; label < region.zone_count; ++label)
      zones.insert(proximity.label_to_physical(region.name, label));
    EXPECT_EQ(zones.size(), static_cast<std::size_t>(region.zone_count));
  }
}

TEST_F(CartoTest, ProximityMostlyCorrectVsGroundTruth) {
  ProximityEstimator proximity{ec2, {.seed = 3, .total_samples = 2000}};
  const auto targets = launch_targets(300, "ec2.us-east-1", "tenant-a");
  std::size_t known = 0, correct = 0;
  for (const auto* target : targets) {
    const auto label = proximity.zone_of(target->public_ip);
    if (!label) continue;
    ++known;
    if (proximity.label_to_physical(target->region, *label) == target->zone)
      ++correct;
  }
  ASSERT_GT(known, 200u);
  EXPECT_GT(static_cast<double>(correct) / known, 0.9);
}

TEST_F(CartoTest, ProximityCoverageGrowsWithSamples) {
  auto ec2_small = cloud::Provider::make_ec2(5);
  ProximityEstimator sparse{ec2_small, {.seed = 3, .total_samples = 80}};
  auto ec2_big = cloud::Provider::make_ec2(5);
  ProximityEstimator dense{ec2_big, {.seed = 3, .total_samples = 2000}};
  EXPECT_GT(dense.labeled_blocks(), sparse.labeled_blocks());
}

TEST_F(CartoTest, ProximityUnknownForUnsampledOrForeignAddresses) {
  ProximityEstimator proximity{ec2, {.seed = 3, .total_samples = 200}};
  // An address outside the provider entirely.
  EXPECT_FALSE(proximity.zone_of(net::Ipv4(8, 8, 8, 8)));
  // An internal-looking address outside 10/8 entirely.
  EXPECT_FALSE(proximity.zone_of_internal(net::Ipv4(11, 4, 0, 1)));
}

TEST_F(CartoTest, ProximitySampleMapIsZonePure) {
  ProximityEstimator proximity{ec2, {.seed = 3, .total_samples = 1500}};
  // Every labeled /16 must map to exactly the ground-truth zone modulo
  // the canonical label permutation: check purity via provider truth.
  std::map<int, int> label_to_zone;  // merged label -> physical (us-east-1)
  std::size_t mismatches = 0, checked = 0;
  for (const auto& point : proximity.sample_map()) {
    const auto truth = ec2.zone_of_internal_block(point.internal_ip);
    if (!truth) continue;
    ++checked;
    auto [it, fresh] = label_to_zone.emplace(point.merged_label, *truth);
    // Labels are per-region; restrict to us-east-1's octet range [0, 32).
    if (point.internal_ip.octet(1) >= 32) continue;
    if (!fresh && it->second != *truth) ++mismatches;
  }
  ASSERT_GT(checked, 20u);
  EXPECT_LT(mismatches, checked / 10);
}

TEST_F(CartoTest, LatencyEstimatorFindsZonesAndRespectsThreshold) {
  LatencyZoneEstimator latency{ec2, model, {.seed = 4}};
  const auto targets = launch_targets(60, "ec2.us-west-2", "tenant-b");
  std::size_t responded = 0, identified = 0, correct = 0;
  for (const auto* target : targets) {
    const auto estimate = latency.estimate(target->public_ip, target->region);
    if (!estimate.responded) continue;
    ++responded;
    if (!estimate.zone_label) continue;
    ++identified;
    if (latency.label_to_physical(target->region, *estimate.zone_label) ==
        target->zone)
      ++correct;
  }
  ASSERT_GT(responded, 30u);
  EXPECT_GT(identified, responded / 2);
  EXPECT_GT(static_cast<double>(correct) / identified, 0.85);
}

TEST_F(CartoTest, LatencyUnresponsiveTargetsReported) {
  LatencyZoneEstimator latency{ec2, model, {.seed = 4}};
  const auto targets = launch_targets(200, "ec2.us-west-1", "tenant-c");
  std::size_t unresponsive = 0;
  for (const auto* target : targets)
    if (!latency.estimate(target->public_ip, target->region).responded)
      ++unresponsive;
  // The model makes ~22% of instances unresponsive.
  EXPECT_GT(unresponsive, 20u);
  EXPECT_LT(unresponsive, 90u);
}

TEST_F(CartoTest, LatencyUnknownForForeignAddress) {
  LatencyZoneEstimator latency{ec2, model, {.seed = 4}};
  const auto estimate =
      latency.estimate(net::Ipv4(8, 8, 8, 8), "ec2.us-east-1");
  EXPECT_FALSE(estimate.responded);
  EXPECT_FALSE(estimate.zone_label);
}

TEST_F(CartoTest, BlockedProbeZoneRaisesUnknownRate) {
  // ap-northeast-1 has a blocked probe zone by default; targets in the
  // unprobed zone cannot be identified.
  LatencyZoneEstimator latency{ec2, model, {.seed = 4}};
  EXPECT_EQ(latency.probe_labels("ec2.ap-northeast-1").size(), 1u);
  EXPECT_EQ(latency.probe_labels("ec2.us-east-1").size(), 3u);

  const auto targets = launch_targets(80, "ec2.ap-northeast-1", "tenant-d");
  std::size_t unknown = 0, responded = 0;
  for (const auto* target : targets) {
    const auto estimate = latency.estimate(target->public_ip, target->region);
    if (!estimate.responded) continue;
    ++responded;
    if (!estimate.zone_label) ++unknown;
  }
  ASSERT_GT(responded, 40u);
  // Roughly half the targets live in the unprobed zone.
  EXPECT_GT(static_cast<double>(unknown) / responded, 0.3);
}

TEST_F(CartoTest, TighterThresholdMoreUnknowns) {
  auto ec2_a = cloud::Provider::make_ec2(9);
  internet::WideAreaModel model_a{{.seed = 9}};
  LatencyZoneEstimator strict{ec2_a, model_a,
                              {.seed = 4, .threshold_ms = 0.55}};
  std::vector<net::Ipv4> addrs;
  for (int i = 0; i < 80; ++i)
    addrs.push_back(
        ec2_a.launch({.account = "t", .region = "ec2.us-east-1"}).public_ip);
  std::size_t strict_unknown = 0;
  for (const auto addr : addrs) {
    const auto estimate = strict.estimate(addr, "ec2.us-east-1");
    if (estimate.responded && !estimate.zone_label) ++strict_unknown;
  }

  auto ec2_b = cloud::Provider::make_ec2(9);
  internet::WideAreaModel model_b{{.seed = 9}};
  LatencyZoneEstimator loose{ec2_b, model_b,
                             {.seed = 4, .threshold_ms = 2.5}};
  std::vector<net::Ipv4> addrs_b;
  for (int i = 0; i < 80; ++i)
    addrs_b.push_back(
        ec2_b.launch({.account = "t", .region = "ec2.us-east-1"}).public_ip);
  std::size_t loose_unknown = 0;
  for (const auto addr : addrs_b) {
    const auto estimate = loose.estimate(addr, "ec2.us-east-1");
    if (estimate.responded && !estimate.zone_label) ++loose_unknown;
  }
  EXPECT_GT(strict_unknown, loose_unknown);
}

TEST_F(CartoTest, CombinedPrefersProximityAndFallsBack) {
  // Deliberately sparse proximity sampling so latency has gaps to fill.
  ProximityEstimator proximity{ec2, {.seed = 3, .total_samples = 60}};
  LatencyZoneEstimator latency{ec2, model, {.seed = 4}};
  CombinedZoneEstimator combined{proximity, latency};

  const auto targets = launch_targets(150, "ec2.us-east-1", "tenant-e");
  std::size_t from_proximity = 0, from_latency = 0, unknown = 0;
  for (const auto* target : targets) {
    const auto estimate =
        combined.estimate(target->public_ip, target->region);
    using Source = CombinedZoneEstimator::Estimate::Source;
    switch (estimate.source) {
      case Source::kProximity:
        ++from_proximity;
        break;
      case Source::kLatency:
        ++from_latency;
        break;
      case Source::kUnknown:
        ++unknown;
        break;
    }
  }
  EXPECT_GT(from_proximity, 0u);
  EXPECT_GT(from_latency, 0u);
  // Combined identifies more than either alone would miss.
  EXPECT_LT(unknown, 40u);
}

}  // namespace
}  // namespace cs::carto
