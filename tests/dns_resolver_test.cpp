#include "dns/resolver.h"

#include <gtest/gtest.h>

#include <memory>

namespace cs::dns {
namespace {

SoaRecord soa_of(std::string_view mname) {
  SoaRecord soa;
  soa.mname = Name::must_parse(mname);
  soa.rname = Name::must_parse(mname);
  return soa;
}

/// Builds a miniature delegation tree:
///   root (198.41.0.4) -> com (192.5.6.30) -> example.com (192.0.2.53)
/// with example.com hosting www (A), m (CNAME www), ext (CNAME to
/// cdn.other.net, served by a sibling tree under net).
class ResolverFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto root = std::make_shared<AuthoritativeServer>();
    auto& root_zone = root->add_zone(Name{}, soa_of("a.root"));
    root_zone.add(ResourceRecord::ns(Name::must_parse("com"),
                                     Name::must_parse("a.gtld.net")));
    root_zone.add(ResourceRecord::ns(Name::must_parse("net"),
                                     Name::must_parse("b.gtld.net")));
    // Glue for the TLD servers.
    root_zone.add(ResourceRecord::a(Name::must_parse("a.gtld.net"),
                                    net::Ipv4(192, 5, 6, 30)));
    root_zone.add(ResourceRecord::a(Name::must_parse("b.gtld.net"),
                                    net::Ipv4(192, 5, 6, 31)));

    auto com = std::make_shared<AuthoritativeServer>();
    auto& com_zone = com->add_zone(Name::must_parse("com"), soa_of("a.gtld.net"));
    com_zone.add(ResourceRecord::ns(Name::must_parse("example.com"),
                                    Name::must_parse("ns1.example.com")));
    com_zone.add(ResourceRecord::a(Name::must_parse("ns1.example.com"),
                                   net::Ipv4(192, 0, 2, 53)));
    // A glueless delegation: gluless.com's NS lives under net.
    com_zone.add(ResourceRecord::ns(Name::must_parse("glueless.com"),
                                    Name::must_parse("ns.hosting.net")));

    auto net = std::make_shared<AuthoritativeServer>();
    auto& net_zone = net->add_zone(Name::must_parse("net"), soa_of("b.gtld.net"));
    net_zone.add(ResourceRecord::ns(Name::must_parse("other.net"),
                                    Name::must_parse("ns1.other.net")));
    net_zone.add(ResourceRecord::a(Name::must_parse("ns1.other.net"),
                                   net::Ipv4(192, 0, 2, 54)));
    net_zone.add(ResourceRecord::ns(Name::must_parse("hosting.net"),
                                    Name::must_parse("ns1.hosting.net")));
    net_zone.add(ResourceRecord::a(Name::must_parse("ns1.hosting.net"),
                                   net::Ipv4(192, 0, 2, 55)));

    auto example = std::make_shared<AuthoritativeServer>();
    auto& ex_zone = example->add_zone(Name::must_parse("example.com"),
                                      soa_of("ns1.example.com"));
    ex_zone.add(ResourceRecord::ns(Name::must_parse("example.com"),
                                   Name::must_parse("ns1.example.com")));
    ex_zone.add(ResourceRecord::a(Name::must_parse("ns1.example.com"),
                                  net::Ipv4(192, 0, 2, 53)));
    ex_zone.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                                  net::Ipv4(203, 0, 113, 80), 60));
    ex_zone.add(ResourceRecord::cname(Name::must_parse("m.example.com"),
                                      Name::must_parse("www.example.com")));
    ex_zone.add(ResourceRecord::cname(Name::must_parse("ext.example.com"),
                                      Name::must_parse("cdn.other.net")));

    auto other = std::make_shared<AuthoritativeServer>();
    auto& other_zone = other->add_zone(Name::must_parse("other.net"),
                                       soa_of("ns1.other.net"));
    other_zone.add(ResourceRecord::a(Name::must_parse("cdn.other.net"),
                                     net::Ipv4(198, 18, 0, 1)));

    auto hosting = std::make_shared<AuthoritativeServer>();
    auto& hosting_zone = hosting->add_zone(Name::must_parse("hosting.net"),
                                           soa_of("ns1.hosting.net"));
    hosting_zone.add(ResourceRecord::a(Name::must_parse("ns.hosting.net"),
                                       net::Ipv4(192, 0, 2, 56)));

    auto glueless = std::make_shared<AuthoritativeServer>();
    auto& gl_zone = glueless->add_zone(Name::must_parse("glueless.com"),
                                       soa_of("ns.hosting.net"));
    gl_zone.add(ResourceRecord::a(Name::must_parse("www.glueless.com"),
                                  net::Ipv4(198, 18, 0, 2)));

    example->set_axfr_policy([](net::Ipv4 client, const Name&) {
      return client == net::Ipv4(192, 0, 2, 1);
    });

    network.attach(net::Ipv4(198, 41, 0, 4), root);
    network.attach(net::Ipv4(192, 5, 6, 30), com);
    network.attach(net::Ipv4(192, 5, 6, 31), net);
    network.attach(net::Ipv4(192, 0, 2, 53), example);
    network.attach(net::Ipv4(192, 0, 2, 54), other);
    network.attach(net::Ipv4(192, 0, 2, 55), hosting);
    network.attach(net::Ipv4(192, 0, 2, 56), glueless);
  }

  Resolver::Options options(bool cache = true) {
    Resolver::Options o;
    o.root_servers = {net::Ipv4(198, 41, 0, 4)};
    o.client_address = net::Ipv4(192, 0, 2, 1);
    o.use_cache = cache;
    return o;
  }

  SimulatedDnsNetwork network;
};

TEST_F(ResolverFixture, ResolvesThroughDelegation) {
  Resolver resolver{network, options()};
  const auto r = resolver.resolve(Name::must_parse("www.example.com"),
                                  RrType::kA);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.addresses().size(), 1u);
  EXPECT_EQ(r.addresses()[0], net::Ipv4(203, 0, 113, 80));
}

TEST_F(ResolverFixture, ChasesCrossZoneCname) {
  Resolver resolver{network, options()};
  const auto r = resolver.resolve(Name::must_parse("ext.example.com"),
                                  RrType::kA);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.cname_chain().size(), 1u);
  EXPECT_EQ(r.cname_chain()[0].to_string(), "cdn.other.net");
  ASSERT_EQ(r.addresses().size(), 1u);
  EXPECT_EQ(r.addresses()[0], net::Ipv4(198, 18, 0, 1));
}

TEST_F(ResolverFixture, InZoneCnameChainInAnswer) {
  Resolver resolver{network, options()};
  const auto r =
      resolver.resolve(Name::must_parse("m.example.com"), RrType::kA);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.cname_chain().size(), 1u);
  EXPECT_EQ(r.addresses().size(), 1u);
}

TEST_F(ResolverFixture, NxDomainPropagates) {
  Resolver resolver{network, options()};
  const auto r = resolver.resolve(Name::must_parse("nosuch.example.com"),
                                  RrType::kA);
  EXPECT_EQ(r.rcode, Rcode::kNxDomain);
  EXPECT_TRUE(r.addresses().empty());
}

TEST_F(ResolverFixture, GluelessDelegationResolved) {
  Resolver resolver{network, options()};
  const auto r = resolver.resolve(Name::must_parse("www.glueless.com"),
                                  RrType::kA);
  EXPECT_TRUE(r.ok());
  ASSERT_EQ(r.addresses().size(), 1u);
  EXPECT_EQ(r.addresses()[0], net::Ipv4(198, 18, 0, 2));
}

TEST_F(ResolverFixture, CacheCutsUpstreamQueries) {
  Resolver resolver{network, options(true)};
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  const auto after_first = resolver.upstream_queries();
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  EXPECT_EQ(resolver.upstream_queries(), after_first);
  EXPECT_GE(resolver.cache_hits(), 1u);
}

TEST_F(ResolverFixture, FlushCacheForcesRequery) {
  Resolver resolver{network, options(true)};
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  const auto after_first = resolver.upstream_queries();
  resolver.flush_cache();
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  EXPECT_GT(resolver.upstream_queries(), after_first);
}

TEST_F(ResolverFixture, TtlExpiryForcesRequery) {
  Resolver resolver{network, options(true)};
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  const auto after_first = resolver.upstream_queries();
  resolver.advance_time(61);  // www TTL is 60
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  EXPECT_GT(resolver.upstream_queries(), after_first);
}

TEST_F(ResolverFixture, CacheDisabledAlwaysQueries) {
  Resolver resolver{network, options(false)};
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  const auto after_first = resolver.upstream_queries();
  resolver.resolve(Name::must_parse("www.example.com"), RrType::kA);
  EXPECT_GT(resolver.upstream_queries(), after_first);
  EXPECT_EQ(resolver.cache_hits(), 0u);
}

TEST_F(ResolverFixture, DeadRootYieldsServFail) {
  network.set_down(net::Ipv4(198, 41, 0, 4), true);
  Resolver resolver{network, options()};
  const auto r = resolver.resolve(Name::must_parse("www.example.com"),
                                  RrType::kA);
  EXPECT_EQ(r.rcode, Rcode::kServFail);
}

TEST_F(ResolverFixture, RecoversViaSecondRootAfterTimeout) {
  auto opts = options();
  opts.root_servers = {net::Ipv4(10, 0, 0, 99),  // dead
                       net::Ipv4(198, 41, 0, 4)};
  Resolver resolver{network, opts};
  const auto r = resolver.resolve(Name::must_parse("www.example.com"),
                                  RrType::kA);
  EXPECT_TRUE(r.ok());
}

TEST_F(ResolverFixture, AxfrAllowedClientGetsZone) {
  Resolver resolver{network, options()};
  const auto records = resolver.try_axfr(Name::must_parse("example.com"));
  ASSERT_TRUE(records);
  EXPECT_GE(records->size(), 5u);
  EXPECT_EQ(records->front().type(), RrType::kSoa);
}

TEST_F(ResolverFixture, AxfrDeniedClientGetsNothing) {
  auto opts = options();
  opts.client_address = net::Ipv4(203, 0, 113, 99);
  Resolver resolver{network, opts};
  EXPECT_FALSE(resolver.try_axfr(Name::must_parse("example.com")));
}

TEST_F(ResolverFixture, TimeoutServFailNegativelyCached) {
  network.set_down(net::Ipv4(198, 41, 0, 4), true);
  Resolver resolver{network, options()};
  const auto name = Name::must_parse("www.example.com");
  EXPECT_EQ(resolver.resolve(name, RrType::kA).rcode, Rcode::kServFail);
  const auto after_first = resolver.upstream_queries();
  // The dead delegation is negatively cached: repeating the lookup must
  // not re-probe the server list.
  EXPECT_EQ(resolver.resolve(name, RrType::kA).rcode, Rcode::kServFail);
  EXPECT_EQ(resolver.upstream_queries(), after_first);
  EXPECT_GE(resolver.cache_hits(), 1u);
  // ... but the entry is short-lived, so recovery is noticed.
  network.set_down(net::Ipv4(198, 41, 0, 4), false);
  resolver.advance_time(Resolver::kServFailCacheTtl + 1);
  EXPECT_TRUE(resolver.resolve(name, RrType::kA).ok());
  EXPECT_GT(resolver.upstream_queries(), after_first);
}

TEST_F(ResolverFixture, AttemptCountMatchesMaxServerAttempts) {
  // Five dead roots, default max_server_attempts = 3: exactly three
  // upstream queries (one first try + two retries), then SERVFAIL.
  auto opts = options();
  opts.root_servers = {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 0, 0, 2),
                       net::Ipv4(10, 0, 0, 3), net::Ipv4(10, 0, 0, 4),
                       net::Ipv4(10, 0, 0, 5)};
  Resolver resolver{network, opts};
  const auto r = resolver.resolve(Name::must_parse("www.example.com"),
                                  RrType::kA);
  EXPECT_EQ(r.rcode, Rcode::kServFail);
  EXPECT_EQ(resolver.upstream_queries(),
            static_cast<std::uint64_t>(opts.max_server_attempts));
  EXPECT_EQ(resolver.timeouts(), 3u);
  EXPECT_EQ(resolver.retries(), 2u);
}

TEST_F(ResolverFixture, AttemptBudgetBoundsFailover) {
  // A live root hiding behind three dead ones is out of reach for the
  // default budget of 3 attempts, and reachable at 4.
  auto opts = options();
  opts.root_servers = {net::Ipv4(10, 0, 0, 1), net::Ipv4(10, 0, 0, 2),
                       net::Ipv4(10, 0, 0, 3), net::Ipv4(198, 41, 0, 4)};
  {
    Resolver resolver{network, opts};
    EXPECT_EQ(resolver.resolve(Name::must_parse("www.example.com"),
                               RrType::kA)
                  .rcode,
              Rcode::kServFail);
  }
  opts.max_server_attempts = 4;
  Resolver resolver{network, opts};
  EXPECT_TRUE(
      resolver.resolve(Name::must_parse("www.example.com"), RrType::kA).ok());
  EXPECT_EQ(resolver.retries(), 3u);
  EXPECT_EQ(resolver.timeouts(), 3u);
}

TEST_F(ResolverFixture, NsLookupReturnsNameServers) {
  Resolver resolver{network, options()};
  const auto r =
      resolver.resolve(Name::must_parse("example.com"), RrType::kNs);
  EXPECT_TRUE(r.ok());
  bool found = false;
  for (const auto& rr : r.records)
    if (const auto* ns = std::get_if<NsRecord>(&rr.data))
      found |= ns->nameserver.to_string() == "ns1.example.com";
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace cs::dns
