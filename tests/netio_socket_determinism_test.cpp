// The live-socket backend's headline promise: a study's dataset artifact
// is byte-identical whether resolver traffic rode the in-process
// simulated network or real localhost UDP sockets. Answer content is a
// pure function of the world seed; the transport only changes timing.
// Exercised at CS_THREADS 1 and 8 so the socket path also holds under
// the exec pool's fan-out (and under TSan in CI).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.h"
#include "exec/config.h"
#include "netio/loopback.h"
#include "analysis/snapshot.h"
#include "snap/codec.h"

namespace cs::core {
namespace {

StudyConfig small_config(std::uint64_t seed, netio::TransportMode mode) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 60;
  // A compact wordlist keeps the brute-force phase small enough for the
  // sanitizer jobs while still fanning out real query load.
  config.dataset.wordlist = {"www", "mail", "api", "cdn", "dev", "static"};
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = true;
  config.transport = mode;
  return config;
}

std::vector<std::uint8_t> dataset_bytes(std::uint64_t seed,
                                        netio::TransportMode mode,
                                        unsigned threads) {
  exec::ScopedThreads guard{threads};
  Study study{small_config(seed, mode)};
  snap::Writer writer;
  snap::encode_artifact(writer, study.dataset());
  const auto bytes = writer.bytes();
  return {bytes.begin(), bytes.end()};
}

class SocketDeterminism : public testing::TestWithParam<unsigned> {};

TEST_P(SocketDeterminism, DatasetArtifactMatchesSimByteForByte) {
  const unsigned threads = GetParam();
  const std::uint64_t seed = 2013;
  const auto sim =
      dataset_bytes(seed, netio::TransportMode::kSim, threads);
  const auto socket =
      dataset_bytes(seed, netio::TransportMode::kSocket, threads);
  ASSERT_FALSE(sim.empty());
  EXPECT_EQ(sim, socket)
      << "socket transport altered the dataset artifact at CS_THREADS="
      << threads;
}

INSTANTIATE_TEST_SUITE_P(Threads, SocketDeterminism,
                         testing::Values(1u, 8u));

TEST(SocketDeterminism, SocketRunsAreReproducible) {
  // Same seed, same artifact, run to run — over real sockets.
  const auto first = dataset_bytes(777, netio::TransportMode::kSocket, 4);
  const auto second = dataset_bytes(777, netio::TransportMode::kSocket, 4);
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace cs::core
