// The exec engine's mechanics: pool lifecycle, fork-join semantics,
// strict CS_THREADS parsing, RNG sharding, and the trace-lane naming the
// pool feeds the observability layer.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/config.h"
#include "exec/parallel.h"
#include "exec/sharded_rng.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace cs::exec {
namespace {

TEST(ParseThreads, AcceptsPlainIntegers) {
  EXPECT_EQ(parse_threads("1"), 1u);
  EXPECT_EQ(parse_threads("8"), 8u);
  EXPECT_EQ(parse_threads("32"), 32u);
}

TEST(ParseThreads, ZeroMeansHardwareConcurrency) {
  EXPECT_EQ(parse_threads("0"), hardware_threads());
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ParseThreads, RejectsMalformedValues) {
  EXPECT_EQ(parse_threads("4x"), std::nullopt);
  EXPECT_EQ(parse_threads("x4"), std::nullopt);
  EXPECT_EQ(parse_threads(""), std::nullopt);
  EXPECT_EQ(parse_threads(" 4"), std::nullopt);
  EXPECT_EQ(parse_threads("4 "), std::nullopt);
  EXPECT_EQ(parse_threads("-1"), std::nullopt);
  EXPECT_EQ(parse_threads("+4"), std::nullopt);
  EXPECT_EQ(parse_threads("4.0"), std::nullopt);
  EXPECT_EQ(parse_threads("9999999999"), std::nullopt);  // > 9 digits
}

TEST(ScopedThreadsTest, OverridesAndRestores) {
  const unsigned before = thread_count();
  {
    ScopedThreads guard{3};
    EXPECT_EQ(thread_count(), 3u);
    EXPECT_EQ(ThreadPool::global().size(), 3u);
  }
  EXPECT_EQ(thread_count(), before);
}

TEST(ThreadPoolTest, StartupRunsTasksAndShutdownDrains) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool{4};
    EXPECT_EQ(pool.size(), 4u);
    EXPECT_EQ(pool.worker_count(), 4u);
    for (int i = 0; i < 100; ++i)
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }  // destructor joins after every task ran
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, SequentialModeRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.worker_count(), 0u);
  bool ran = false;
  pool.submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);  // ran before submit returned
}

TEST(ParallelFor, VisitsEveryIndexOnce) {
  ScopedThreads guard{4};
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroTasksIsANoOp) {
  ScopedThreads guard{4};
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
  const auto empty = parallel_map(0, [](std::size_t) { return 1; });
  EXPECT_TRUE(empty.empty());
}

TEST(ParallelFor, PropagatesTheFirstException) {
  ScopedThreads guard{4};
  EXPECT_THROW(parallel_for(500,
                            [](std::size_t i) {
                              if (i == 137)
                                throw std::runtime_error{"chunk failed"};
                            }),
               std::runtime_error);
}

TEST(ParallelFor, ConcurrentFailuresRethrowExactlyOne) {
  // Regression: the region's error slot used to be read after the join
  // without the lock that guards the writes. With every chunk throwing
  // concurrently, exactly one exception must surface each round.
  ScopedThreads threads{4};
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> started{0};
    try {
      parallel_for(
          64,
          [&](std::size_t i) {
            started.fetch_add(1, std::memory_order_relaxed);
            throw std::runtime_error("chunk " + std::to_string(i));
          },
          /*grain=*/1);
      FAIL() << "parallel_for swallowed the exception";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string{error.what()}.find("chunk"), std::string::npos);
    }
    EXPECT_GE(started.load(std::memory_order_relaxed), 1);
  }
}

TEST(ParallelFor, NestedRegionsDoNotDeadlock) {
  ScopedThreads guard{4};
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    parallel_for(8, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelMap, ResultsArriveInIndexOrder) {
  ScopedThreads guard{4};
  const auto squares =
      parallel_map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    EXPECT_EQ(squares[i], i * i);
}

TEST(ShardedRngTest, StreamsAreDeterministicPerShard) {
  const ShardedRng a{2013};
  const ShardedRng b{2013};
  for (std::uint64_t shard = 0; shard < 8; ++shard) {
    EXPECT_EQ(a.stream_seed(shard), b.stream_seed(shard));
    auto ra = a.stream(shard);
    auto rb = b.stream(shard);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(ra(), rb());
  }
}

TEST(ShardedRngTest, AdjacentShardsAndSeedsDiffer) {
  const ShardedRng rng{2013};
  EXPECT_NE(rng.stream_seed(0), rng.stream_seed(1));
  const ShardedRng other{2014};
  EXPECT_NE(rng.stream_seed(0), other.stream_seed(0));
}

TEST(TracerLanes, PoolWorkersNameTheirLanes) {
  ScopedThreads guard{3};
  // Force the workers to actually run something so their loops start.
  std::atomic<int> n{0};
  parallel_for(64, [&](std::size_t) {
    n.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(n.load(), 64);
  bool saw_main = false;
  bool saw_worker = false;
  for (const auto& [tid, name] : obs::Tracer::instance().thread_names()) {
    if (name == "main") saw_main = true;
    if (name.rfind("exec-worker-", 0) == 0) saw_worker = true;
  }
  EXPECT_TRUE(saw_main);
  EXPECT_TRUE(saw_worker);
}

}  // namespace
}  // namespace cs::exec
