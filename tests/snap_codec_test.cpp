// cs::snap codec coverage: every stage artifact must round-trip through
// its binary codec byte-identically, and every way a snapshot file can be
// damaged — truncation, bit flips, foreign versions, a different study
// configuration — must be rejected with a SnapshotError, never a crash or
// a silent partial decode.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <vector>

#include "analysis/columns.h"
#include "analysis/dataset.h"
#include "core/study.h"
#include "exec/config.h"
#include "fault/fault.h"
#include "analysis/snapshot.h"
#include "snap/codec.h"
#include "snap/store.h"
#include "synth/world.h"

namespace cs::snap {
namespace {

core::StudyConfig small_config() {
  core::StudyConfig config;
  config.world.seed = 2013;
  config.world.domain_count = 100;
  config.traffic.total_web_bytes = 2ull * 1024 * 1024;
  config.dataset.lookup_vantages = 2;
  // Keep NS collection on: it populates the dataset's name-server and
  // AXFR fields, so the round-trip exercises every codec branch.
  config.dataset.collect_name_servers = true;
  config.campaign_vantages = 6;
  config.campaign_days = 0.25;
  config.isp_vantages = 10;
  return config;
}

/// One shared study for all round-trip tests; artifacts build lazily.
core::Study& shared_study() {
  static core::Study study{small_config()};
  return study;
}

template <typename T>
std::vector<std::uint8_t> encoded(const T& value) {
  Writer w;
  encode_artifact(w, value);
  return std::move(w).take();
}

/// The codec contract: encode(decode(encode(a))) == encode(a), and the
/// decoder consumes the payload exactly.
template <typename T>
void expect_roundtrip(const T& value) {
  const auto first = encoded(value);
  Reader r{first};
  T decoded{};
  decode_artifact(r, decoded);
  r.require_done();
  EXPECT_EQ(first, encoded(decoded));
}

TEST(ArtifactRoundTrip, Dataset) { expect_roundtrip(shared_study().dataset()); }
TEST(ArtifactRoundTrip, CloudUsage) {
  expect_roundtrip(shared_study().cloud_usage());
}
TEST(ArtifactRoundTrip, Patterns) {
  expect_roundtrip(shared_study().patterns());
}
TEST(ArtifactRoundTrip, Regions) { expect_roundtrip(shared_study().regions()); }
TEST(ArtifactRoundTrip, CaptureLogs) {
  expect_roundtrip(shared_study().capture_logs());
}
TEST(ArtifactRoundTrip, Capture) { expect_roundtrip(shared_study().capture()); }
TEST(ArtifactRoundTrip, ZoneStudy) {
  expect_roundtrip(shared_study().zone_study());
}
TEST(ArtifactRoundTrip, Campaign) {
  expect_roundtrip(shared_study().campaign());
}
TEST(ArtifactRoundTrip, IspStudy) {
  expect_roundtrip(shared_study().isp_study());
}

TEST(ArtifactRoundTrip, EmptyArtifactsRoundTripToo) {
  // Degraded stages substitute default-constructed artifacts; those must
  // be encodable as well.
  expect_roundtrip(analysis::AlexaDataset{});
  expect_roundtrip(analysis::CloudUsageReport{});
  expect_roundtrip(analysis::PatternReport{});
  expect_roundtrip(analysis::RegionReport{});
  expect_roundtrip(proto::TraceLogs{});
  expect_roundtrip(analysis::CaptureReport{});
  expect_roundtrip(analysis::ZoneStudy{});
  expect_roundtrip(analysis::Campaign{});
  expect_roundtrip(analysis::IspStudy{});
}

// ---------------------------------------------------------------------
// Framing: header, checksum, and the rejection paths.

std::vector<std::uint8_t> sample_payload() {
  Writer w;
  w.str("payload with some structure");
  w.u64(0xDEADBEEFCAFEF00DULL);
  w.f64(3.25);
  return std::move(w).take();
}

constexpr std::uint64_t kHash = 0x1122334455667788ULL;

TEST(Framing, RoundTripReturnsThePayload) {
  const auto payload = sample_payload();
  const auto file = frame_snapshot("dataset", kHash, payload);
  EXPECT_EQ(unframe_snapshot(file, "dataset", kHash), payload);
}

TEST(Framing, EmptyPayloadRoundTrips) {
  const auto file = frame_snapshot("dataset", kHash, {});
  EXPECT_TRUE(unframe_snapshot(file, "dataset", kHash).empty());
}

TEST(Framing, EveryTruncationLengthIsRejected) {
  const auto file = frame_snapshot("dataset", kHash, sample_payload());
  for (std::size_t len = 0; len < file.size(); ++len) {
    EXPECT_THROW(unframe_snapshot(std::span{file}.first(len), "dataset",
                                  kHash),
                 SnapshotError)
        << "prefix length " << len;
  }
}

TEST(Framing, BitFlipsAnywhereAreRejected) {
  const auto file = frame_snapshot("dataset", kHash, sample_payload());
  // Reuse the fault module's corruption streams to pick deterministic
  // flip sites; a single flipped bit must fail the checksum (or, when the
  // trailer itself is hit, the comparison against the recomputed hash).
  fault::Spec spec;
  spec.corrupt = 1.0;
  spec.seed = 7;
  const fault::Plan plan{spec};
  for (std::uint64_t trial = 0; trial < 64; ++trial) {
    auto rng = plan.stream(fault::Kind::kCorrupt, trial);
    auto copy = file;
    const auto offset = rng.next_below(copy.size());
    copy[offset] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_THROW(unframe_snapshot(copy, "dataset", kHash), SnapshotError)
        << "flip at offset " << offset;
  }
}

/// Rewrites the trailer so the checksum holds again after tampering —
/// isolating the *semantic* rejection paths from the checksum one.
std::vector<std::uint8_t> refresh_checksum(std::vector<std::uint8_t> file) {
  const auto body = std::span{file}.first(file.size() - 8);
  const auto checksum = fnv1a(body);
  for (int i = 0; i < 8; ++i)
    file[file.size() - 8 + i] =
        static_cast<std::uint8_t>(checksum >> (8 * i));
  return file;
}

std::string rejection_reason(std::span<const std::uint8_t> file,
                             std::string_view stage, std::uint64_t hash) {
  try {
    unframe_snapshot(file, stage, hash);
  } catch (const SnapshotError& e) {
    return e.what();
  }
  return {};
}

TEST(Framing, ForeignMagicIsRejected) {
  auto file = frame_snapshot("dataset", kHash, sample_payload());
  file[0] = 'X';
  file = refresh_checksum(std::move(file));
  EXPECT_NE(rejection_reason(file, "dataset", kHash).find("magic"),
            std::string::npos);
}

TEST(Framing, WrongFormatVersionIsRejected) {
  auto file = frame_snapshot("dataset", kHash, sample_payload());
  file[4] = static_cast<std::uint8_t>(kFormatVersion + 1);  // version lives
  file = refresh_checksum(std::move(file));                 // after "CSNP"
  EXPECT_NE(rejection_reason(file, "dataset", kHash).find("version"),
            std::string::npos);
}

TEST(Framing, MismatchedConfigHashIsRejected) {
  const auto file = frame_snapshot("dataset", kHash, sample_payload());
  EXPECT_NE(rejection_reason(file, "dataset", kHash ^ 1).find("config hash"),
            std::string::npos);
}

TEST(Framing, WrongStageNameIsRejected) {
  const auto file = frame_snapshot("dataset", kHash, sample_payload());
  EXPECT_NE(rejection_reason(file, "capture", kHash).find("stage"),
            std::string::npos);
}

TEST(Framing, TrailingGarbageIsRejected) {
  auto file = frame_snapshot("dataset", kHash, sample_payload());
  file.insert(file.end() - 8, {0x00, 0x01, 0x02});  // extra bytes in body
  file = refresh_checksum(std::move(file));
  EXPECT_THROW(unframe_snapshot(file, "dataset", kHash), SnapshotError);
}

TEST(Reader, CorruptedCountCannotRequestAbsurdAllocations) {
  // A corrupted length field must be caught by the OOM guard, not handed
  // to vector::reserve.
  Writer w;
  w.count(1ull << 40);
  Reader r{w.bytes()};
  EXPECT_THROW(r.count(sizeof(double)), SnapshotError);
}

TEST(Reader, BooleanRejectsNonCanonicalBytes) {
  Writer w;
  w.u8(2);
  Reader r{w.bytes()};
  EXPECT_THROW(r.boolean(), SnapshotError);
}

// ---------------------------------------------------------------------
// Store: atomic save/load plus the event ledger.

std::filesystem::path fresh_dir(const char* name) {
  const auto dir = std::filesystem::path{testing::TempDir()} / name;
  std::filesystem::remove_all(dir);
  return dir;
}

bool has_tmp_files(const std::filesystem::path& dir) {
  for (const auto& entry : std::filesystem::directory_iterator{dir})
    if (entry.path().extension() == ".tmp") return true;
  return false;
}

TEST(Store, SaveThenLoadRoundTrips) {
  const auto dir = fresh_dir("snap_store_roundtrip");
  Store store{dir, kHash};
  const auto& dataset = shared_study().dataset();
  ASSERT_TRUE(store.save("dataset", dataset));
  EXPECT_TRUE(std::filesystem::exists(store.path_for("dataset")));
  EXPECT_FALSE(has_tmp_files(dir));

  Store reopened{dir, kHash};
  const auto loaded = reopened.load<analysis::AlexaDataset>("dataset");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(encoded(*loaded), encoded(dataset));
  ASSERT_FALSE(reopened.events().empty());
  EXPECT_EQ(reopened.events().back().kind, Event::Kind::kLoaded);
}

TEST(Store, MissingFileIsAMissEvent) {
  const auto dir = fresh_dir("snap_store_missing");
  Store store{dir, kHash};
  EXPECT_FALSE(store.load<analysis::AlexaDataset>("dataset").has_value());
  ASSERT_FALSE(store.events().empty());
  EXPECT_EQ(store.events().back().kind, Event::Kind::kMissing);
}

TEST(Store, CorruptedFileIsRejectedNotCrashed) {
  const auto dir = fresh_dir("snap_store_corrupt");
  Store store{dir, kHash};
  ASSERT_TRUE(store.save("dataset", shared_study().dataset()));

  // Flip one byte in the middle of the file on disk.
  const auto path = store.path_for("dataset");
  std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekp(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.seekg(static_cast<std::streamoff>(size / 2));
  f.read(&byte, 1);
  byte ^= 0x10;
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
  f.close();

  Store reopened{dir, kHash};
  EXPECT_FALSE(reopened.load<analysis::AlexaDataset>("dataset").has_value());
  ASSERT_FALSE(reopened.events().empty());
  EXPECT_EQ(reopened.events().back().kind, Event::Kind::kRejected);
  EXPECT_FALSE(reopened.events().back().detail.empty());
}

// ---------------------------------------------------------------------
// Columnar dataset artifacts: the paper-scale snapshot form. The row
// form must survive the columnar trip exactly, both codecs must emit the
// same bytes, and a damaged columnar payload must die as a SnapshotError.

/// A deliberately small dataset: the truncation sweep below decodes every
/// prefix of its payload, which is quadratic in payload size.
analysis::AlexaDataset tiny_dataset() {
  synth::WorldConfig config;
  config.seed = 2013;
  config.domain_count = 12;
  synth::World world{config};
  analysis::DatasetBuilder builder{world, {.lookup_vantages = 1}};
  return builder.build();
}

TEST(ColumnarDataset, RowFormSurvivesTheColumnarTripExactly) {
  const auto& dataset = shared_study().dataset();
  const auto columns = analysis::DatasetColumns::from_dataset(dataset);
  EXPECT_EQ(columns.domain_count(), dataset.domains.size());
  EXPECT_EQ(columns.subdomain_count(), dataset.cloud_subdomains.size());
  EXPECT_EQ(encoded(columns.to_dataset()), encoded(dataset));
}

TEST(ColumnarDataset, RowAndColumnarCodecsEmitIdenticalBytes) {
  // The dataset artifact *is* the columnar artifact on the wire — a
  // partial checkpoint and a stage snapshot interoperate byte-for-byte.
  const auto& dataset = shared_study().dataset();
  EXPECT_EQ(encoded(dataset),
            encoded(analysis::DatasetColumns::from_dataset(dataset)));
}

TEST(ColumnarDataset, ColumnsArtifactRoundTrips) {
  expect_roundtrip(
      analysis::DatasetColumns::from_dataset(shared_study().dataset()));
}

TEST(ColumnarDataset, EveryPayloadTruncationIsRejected) {
  const auto payload =
      encoded(analysis::DatasetColumns::from_dataset(tiny_dataset()));
  for (std::size_t len = 0; len < payload.size(); ++len) {
    Reader r{std::span{payload}.first(len)};
    analysis::DatasetColumns columns;
    EXPECT_THROW(decode_artifact(r, columns), SnapshotError)
        << "prefix length " << len;
  }
}

TEST(ColumnarDataset, PayloadBitFlipsNeverEscapeAsCrashes) {
  // Below the framing checksum the decoder's own validation (offset
  // monotonicity, arena intern order, flag masks, name re-parse) must
  // contain arbitrary corruption: every flip either still decodes to a
  // structurally valid dataset or throws SnapshotError — nothing else.
  const auto payload = encoded(tiny_dataset());
  fault::Spec spec;
  spec.corrupt = 1.0;
  spec.seed = 11;
  const fault::Plan plan{spec};
  for (std::uint64_t trial = 0; trial < 128; ++trial) {
    auto rng = plan.stream(fault::Kind::kCorrupt, trial);
    auto copy = payload;
    const auto offset = rng.next_below(copy.size());
    copy[offset] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    Reader r{copy};
    analysis::AlexaDataset dataset;
    try {
      decode_artifact(r, dataset);
      r.require_done();
    } catch (const SnapshotError&) {
      // The acceptable failure mode.
    }
  }
}

TEST(ColumnarDataset, UnparsableStoredNameIsASnapshotError) {
  // Hand-build columns whose arena holds a string no dns::Name accepts;
  // the row-form decode must reject it instead of materialising nonsense.
  analysis::DatasetColumns columns;
  columns.domains.name.push_back(columns.names.intern("bad..name"));
  columns.domains.rank.push_back(1);
  columns.domains.axfr.push_back(0);
  columns.domains.subdomains_probed.push_back(0);
  columns.domains.cloud_off = {0, 0};
  columns.domains.other_only.push_back(0);
  columns.domains.unresolved.push_back(0);
  columns.domains.failed_off = {0, 0};
  columns.subdomains.record_off = {0};
  columns.subdomains.address_off = {0};
  columns.subdomains.cname_off = {0};
  columns.subdomains.ns_off = {0};
  columns.subdomains.ns_addr_off = {0};
  const auto payload = encoded(columns);
  Reader r{payload};
  analysis::AlexaDataset dataset;
  EXPECT_THROW(decode_artifact(r, dataset), SnapshotError);
}

// S4 determinism pin: the dataset builder fans out per-domain probes, so
// the interned-name ids inside the columnar artifact depend on reduction
// order — which must be the rank order at every thread count.
TEST(ColumnarDataset, ArtifactBytesIdenticalAcrossThreadCounts) {
  synth::WorldConfig config;
  config.seed = 2013;
  config.domain_count = 40;
  synth::World world{config};
  std::vector<std::uint8_t> single;
  {
    exec::ScopedThreads guard{1};
    analysis::DatasetBuilder builder{world, {.lookup_vantages = 2}};
    single = encoded(builder.build());
  }
  std::vector<std::uint8_t> pooled;
  {
    exec::ScopedThreads guard{8};
    analysis::DatasetBuilder builder{world, {.lookup_vantages = 2}};
    pooled = encoded(builder.build());
  }
  EXPECT_EQ(single, pooled);
}

// ---------------------------------------------------------------------
// Partial (mid-stage) dataset checkpoints.

TEST(PartialDataset, RoundTripsWithItsResumePoint) {
  analysis::PartialDataset partial;
  partial.columns = analysis::DatasetColumns::from_dataset(tiny_dataset());
  partial.next_domain = partial.columns.domain_count();
  expect_roundtrip(partial);
}

TEST(PartialDataset, ResumePointMustMatchTheColumns) {
  // A checkpoint always holds exactly the domains probed before
  // next_domain; any disagreement means the file does not describe a
  // resumable state and must be rejected.
  analysis::PartialDataset partial;
  partial.columns = analysis::DatasetColumns::from_dataset(tiny_dataset());
  partial.next_domain = partial.columns.domain_count() + 1;
  const auto payload = encoded(partial);
  Reader r{payload};
  analysis::PartialDataset decoded;
  EXPECT_THROW(decode_artifact(r, decoded), SnapshotError);
}

TEST(Store, RemoveRetiresASnapshot) {
  const auto dir = fresh_dir("snap_store_remove");
  Store store{dir, kHash};
  analysis::PartialDataset partial;
  partial.columns = analysis::DatasetColumns::from_dataset(tiny_dataset());
  partial.next_domain = partial.columns.domain_count();
  ASSERT_TRUE(store.save("dataset.partial", partial));
  EXPECT_TRUE(std::filesystem::exists(store.path_for("dataset.partial")));
  EXPECT_TRUE(store.remove("dataset.partial"));
  EXPECT_FALSE(std::filesystem::exists(store.path_for("dataset.partial")));
  // Removing an absent stage is a no-op, not an error path.
  EXPECT_FALSE(store.remove("dataset.partial"));
}

TEST(Store, DifferentConfigHashRejectsTheSnapshot) {
  const auto dir = fresh_dir("snap_store_confighash");
  {
    Store store{dir, kHash};
    ASSERT_TRUE(store.save("dataset", shared_study().dataset()));
  }
  Store other{dir, kHash ^ 0xFF};
  EXPECT_FALSE(other.load<analysis::AlexaDataset>("dataset").has_value());
  EXPECT_EQ(other.events().back().kind, Event::Kind::kRejected);
  EXPECT_NE(other.events().back().detail.find("config hash"),
            std::string::npos);
}

}  // namespace
}  // namespace cs::snap
