// StringArena is the paper-scale name interner: every columnar artifact
// stores u32 ids into one of these, so id assignment must be dense,
// first-intern-order deterministic, and views must survive arena growth.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/format.h"

namespace cs::util {
namespace {

TEST(StringArena, EmptyStringIsPreInterned) {
  StringArena arena;
  EXPECT_EQ(arena.size(), 1u);
  EXPECT_EQ(arena.intern(""), StringArena::kEmpty);
  EXPECT_EQ(arena.view(StringArena::kEmpty), "");
  EXPECT_EQ(arena.payload_bytes(), 0u);
}

TEST(StringArena, IdsAreDenseInFirstInternOrder) {
  StringArena arena;
  EXPECT_EQ(arena.intern("alpha"), 1u);
  EXPECT_EQ(arena.intern("beta"), 2u);
  EXPECT_EQ(arena.intern("gamma"), 3u);
  // Re-interning never mints a new id.
  EXPECT_EQ(arena.intern("beta"), 2u);
  EXPECT_EQ(arena.intern("alpha"), 1u);
  EXPECT_EQ(arena.size(), 4u);  // the three strings plus kEmpty
  EXPECT_EQ(arena.view(1), "alpha");
  EXPECT_EQ(arena.view(2), "beta");
  EXPECT_EQ(arena.view(3), "gamma");
}

TEST(StringArena, UnknownIdThrows) {
  StringArena arena;
  arena.intern("only");
  EXPECT_THROW(arena.view(2), std::out_of_range);
  EXPECT_THROW(arena.view(0xFFFFFFFFu), std::out_of_range);
}

TEST(StringArena, ViewsStayValidAcrossBlockGrowth) {
  StringArena arena;
  const std::string_view first = arena.view(arena.intern("pinned.example.com"));
  // Push well past one 1 MB block so later interns allocate new blocks.
  std::vector<std::string_view> views;
  for (int i = 0; i < 60000; ++i)
    views.push_back(arena.view(arena.intern(fmt("filler-{}.example.com", i))));
  EXPECT_GT(arena.payload_bytes(), std::uint64_t{1} << 20);
  EXPECT_EQ(first, "pinned.example.com");
  EXPECT_EQ(views.front(), "filler-0.example.com");
  EXPECT_EQ(views.back(), "filler-59999.example.com");
}

TEST(StringArena, OversizedStringsStillIntern) {
  StringArena arena;
  const std::string big(std::size_t{3} << 20, 'x');  // larger than one block
  const auto id = arena.intern(big);
  EXPECT_EQ(arena.view(id), big);
  EXPECT_EQ(arena.intern(big), id);
}

// S4 contract: interning the same name sequence always yields the same
// ids — the property that makes columnar snapshots byte-identical at any
// CS_THREADS, because interning only ever happens on ordered paths (a
// sequential scan or the ordered reduction after a parallel_map). Run at
// paper-ish scale: over a million distinct names through two arenas.
TEST(StringArena, MillionNameIdsAreReproducible) {
  constexpr std::uint32_t kNames = 1'200'000;
  StringArena a;
  StringArena b;
  std::uint32_t mismatched_ids = 0;
  for (std::uint32_t i = 0; i < kNames; ++i) {
    const auto name = fmt("www{}.host-{}.example{}.com", i % 97, i, i % 1009);
    const auto id_a = a.intern(name);
    const auto id_b = b.intern(name);
    // Dense: the i-th distinct string gets id i+1 (0 is the empty string).
    if (id_a != i + 1 || id_b != i + 1) ++mismatched_ids;
  }
  EXPECT_EQ(mismatched_ids, 0u);
  ASSERT_EQ(a.size(), std::size_t{kNames} + 1);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.payload_bytes(), b.payload_bytes());
  // Spot-check stored bytes at a coarse stride (per-id EXPECTs at 1M
  // would swamp the runtime).
  std::uint32_t mismatched_views = 0;
  for (std::uint32_t id = 1; id <= kNames; id += 997)
    if (a.view(id) != b.view(id)) ++mismatched_views;
  EXPECT_EQ(mismatched_views, 0u);
  EXPECT_EQ(a.view(kNames), fmt("www{}.host-{}.example{}.com",
                                (kNames - 1) % 97, kNames - 1,
                                (kNames - 1) % 1009));
}

}  // namespace
}  // namespace cs::util
