// The chaos layer's headline promise, split by survivability.
//
// Survivable profiles (loss/dup/reorder/delay, no corruption): the drop
// clamp guarantees every exchange still completes with unchanged answer
// bytes, so a study's dataset artifact is byte-identical chaos-on vs
// chaos-off at any CS_THREADS — the resilience machinery absorbs the
// pressure without ever reaching a terminal state. Checked against the
// sim artifact (which the socket determinism test already pins equal to
// the chaos-off socket artifact), two seeds x CS_THREADS {1, 8}.
//
// Unsurvivable profiles (corrupt > 0): the run must degrade gracefully —
// complete without hangs, with every failed exchange accounted to
// exactly one cause. Exercised twice, once tuned to trip the circuit
// breaker and once to exhaust the retry budget.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.h"
#include "exec/config.h"
#include "netio/loopback.h"
#include "obs/metrics.h"
#include "analysis/snapshot.h"
#include "snap/codec.h"

namespace cs::core {
namespace {

StudyConfig small_config(std::uint64_t seed, netio::TransportMode mode) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 60;
  config.dataset.wordlist = {"www", "mail", "api", "cdn", "dev", "static"};
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = true;
  config.transport = mode;
  return config;
}

/// Loss, duplication, reordering, and sub-RTO delay — everything the
/// clamp makes survivable — at rates high enough to exercise every
/// impairment across a 60-domain study.
netio::LoopbackDns::Options survivable_chaos() {
  netio::LoopbackDns::Options options;
  options.rto_us = 20'000;  // adaptive band [5ms, 2s] brackets this
  options.chaos.drop = 0.06;
  options.chaos.dup = 0.05;
  options.chaos.reorder = 0.08;
  options.chaos.delay_us = 300;
  options.chaos.jitter_us = 200;
  return options;
}

std::vector<std::uint8_t> dataset_bytes(StudyConfig config,
                                        unsigned threads) {
  exec::ScopedThreads guard{threads};
  Study study{std::move(config)};
  snap::Writer writer;
  snap::encode_artifact(writer, study.dataset());
  const auto bytes = writer.bytes();
  return {bytes.begin(), bytes.end()};
}

class ChaosDeterminism : public testing::TestWithParam<unsigned> {};

TEST_P(ChaosDeterminism, SurvivableProfileKeepsArtifactByteIdentical) {
  const unsigned threads = GetParam();
  for (const std::uint64_t seed : {2013ull, 5077ull}) {
    const auto clean = dataset_bytes(
        small_config(seed, netio::TransportMode::kSim), threads);
    ASSERT_FALSE(clean.empty());

    const auto before = obs::MetricsRegistry::instance().snapshot();
    auto config = small_config(seed, netio::TransportMode::kSocket);
    config.netio = survivable_chaos();
    const auto chaotic = dataset_bytes(std::move(config), threads);
    const auto after = obs::MetricsRegistry::instance().snapshot();

    EXPECT_EQ(clean, chaotic)
        << "survivable chaos changed the artifact at seed " << seed
        << ", CS_THREADS=" << threads;

    // The wire really was hostile...
    const auto impairments = [&](const char* name) {
      return after.counter(name) - before.counter(name);
    };
    EXPECT_GT(impairments("netio.chaos.drops") +
                  impairments("netio.chaos.dups") +
                  impairments("netio.chaos.reorders") +
                  impairments("netio.chaos.delays"),
              0u)
        << "profile injected nothing; the identity proves nothing";
    // ...yet no exchange ever reached a terminal resilience state: the
    // clamp turns every impairment into pressure, never failure.
    EXPECT_EQ(impairments("netio.client.expirations"), 0u);
    EXPECT_EQ(impairments("netio.client.breaker_fastfails"), 0u);
    EXPECT_EQ(impairments("netio.client.retry_budget_rejections"), 0u);
    EXPECT_EQ(impairments("netio.client.hang_guard_trips"), 0u);
    EXPECT_EQ(impairments("netio.chaos.corrupts"), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ChaosDeterminism, testing::Values(1u, 8u));

// --- unsurvivable profiles: graceful degradation --------------------------

StudyConfig tiny_config(std::uint64_t seed) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 25;
  config.dataset.wordlist = {"www", "mail", "api", "cdn"};
  config.dataset.lookup_vantages = 1;
  config.dataset.collect_name_servers = true;
  config.transport = netio::TransportMode::kSocket;
  return config;
}

/// corrupt=1 flips one bit in every datagram, both directions: answers
/// die in flight (bad frame, bad mux ID, undecodable DNS bytes), and the
/// resilience machinery must carry the run to completion.
netio::LoopbackDns::Options corrupting_chaos() {
  netio::LoopbackDns::Options options;
  options.rto_us = 5'000;
  options.max_rto_us = 20'000;  // keep the backoff schedule test-sized
  options.chaos.corrupt = 1.0;
  return options;
}

/// Every settled exchange has exactly one cause; the sum of causes is
/// the number of exchanges started. This is the exact-accounting
/// invariant render_data_quality reports against.
void expect_exact_accounting(const obs::MetricsSnapshot& before,
                             const obs::MetricsSnapshot& after) {
  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  EXPECT_EQ(delta("netio.client.exchanges"),
            delta("netio.client.responses") +
                delta("netio.client.unreachable") +
                delta("netio.client.expirations") +
                delta("netio.client.retry_budget_rejections") +
                delta("netio.client.breaker_fastfails") +
                delta("netio.client.hang_guard_trips"));
  EXPECT_GT(delta("netio.chaos.corrupts"), 0u);
  EXPECT_EQ(delta("netio.client.hang_guard_trips"), 0u) << "run hung";
}

TEST(ChaosDegradation, CorruptingWireTripsBreakersAndStillCompletes) {
  auto config = tiny_config(911);
  config.netio = corrupting_chaos();
  // A hair-trigger breaker with an hour-long cooldown: one silent expiry
  // opens a server's breaker and everything else to it fast-fails — the
  // run finishes on fast failures, not timeouts. Threshold 1 because a
  // corrupted response whose flipped bit lands past the mux ID still
  // settles as a transport success and resets a longer consecutive-failure
  // count, making any threshold > 1 scheduling-dependent.
  config.netio->breaker_threshold = 1;
  config.netio->breaker_cooldown_us = 3'600'000'000ULL;

  const auto before = obs::MetricsRegistry::instance().snapshot();
  const auto bytes = dataset_bytes(std::move(config), 8);
  const auto after = obs::MetricsRegistry::instance().snapshot();

  EXPECT_FALSE(bytes.empty()) << "degraded run still produces an artifact";
  expect_exact_accounting(before, after);
  EXPECT_GT(after.counter("netio.client.expirations") -
                before.counter("netio.client.expirations"),
            0u);
  EXPECT_GT(after.counter("netio.client.breaker_trips") -
                before.counter("netio.client.breaker_trips"),
            0u);
  EXPECT_GT(after.counter("netio.client.breaker_fastfails") -
                before.counter("netio.client.breaker_fastfails"),
            0u);
}

TEST(ChaosDegradation, CorruptingWireExhaustsRetryBudgetAndStillCompletes) {
  auto config = tiny_config(912);
  config.netio = corrupting_chaos();
  // No breaker (threshold out of reach), a five-token budget that never
  // refills: once it drains, every exchange fails at its first deadline
  // with a budget rejection instead of feeding a retry storm.
  config.netio->breaker_threshold = 1'000'000;
  config.netio->retry_budget_credit = 0.0;
  config.netio->retry_budget_cap = 5.0;

  const auto before = obs::MetricsRegistry::instance().snapshot();
  const auto bytes = dataset_bytes(std::move(config), 8);
  const auto after = obs::MetricsRegistry::instance().snapshot();

  EXPECT_FALSE(bytes.empty()) << "degraded run still produces an artifact";
  expect_exact_accounting(before, after);
  EXPECT_GT(after.counter("netio.client.retry_budget_rejections") -
                before.counter("netio.client.retry_budget_rejections"),
            0u);
}

}  // namespace
}  // namespace cs::core
