// The exec engine's core promise: a study computed on N threads is
// byte-identical to the same study computed on 1 thread. Every parallel
// stage (DNS enumeration fan-out, traffic synthesis, sharded flow
// assembly, the wide-area campaign and its k-region search) is behind
// these comparisons via the rendered reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/widearea.h"
#include "core/report.h"
#include "core/study.h"
#include "exec/config.h"

namespace cs::core {
namespace {

StudyConfig small_config(std::uint64_t seed) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 100;
  config.traffic.total_web_bytes = 2ull * 1024 * 1024;
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = false;
  config.campaign_vantages = 6;
  config.campaign_days = 0.25;
  return config;
}

/// Everything we compare, rendered to text under one thread-count.
struct Rendered {
  std::string table1;  ///< capture: traffic synthesis + flow assembly
  std::string table3;  ///< cloud usage: the DNS dataset
  std::string table9;  ///< regions
  std::string fig12;   ///< k-region exhaustive search
  std::uint64_t dns_queries = 0;
};

Rendered render_with_threads(std::uint64_t seed, unsigned threads) {
  exec::ScopedThreads guard{threads};
  Study study{small_config(seed)};
  Rendered out;
  out.table1 = render_table1(study.capture());
  out.table3 = render_table3(study.cloud_usage());
  out.table9 = render_table9(study.regions());
  out.fig12 = render_fig12(analysis::optimal_k_regions(study.campaign()));
  out.dns_queries = study.dataset().dns_queries_spent;
  return out;
}

class ExecDeterminism : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecDeterminism, EightThreadsMatchesOneThread) {
  const auto sequential = render_with_threads(GetParam(), 1);
  const auto parallel = render_with_threads(GetParam(), 8);
  EXPECT_EQ(sequential.table1, parallel.table1);
  EXPECT_EQ(sequential.table3, parallel.table3);
  EXPECT_EQ(sequential.table9, parallel.table9);
  EXPECT_EQ(sequential.fig12, parallel.fig12);
  EXPECT_EQ(sequential.dns_queries, parallel.dns_queries);
}

INSTANTIATE_TEST_SUITE_P(TwoSeeds, ExecDeterminism,
                         testing::Values(2013ull, 777ull));

}  // namespace
}  // namespace cs::core
