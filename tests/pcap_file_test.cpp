#include "pcap/file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>

namespace cs::pcap {
namespace {

class PcapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cs_pcap_test_" + std::to_string(::getpid()) + ".pcap");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path() const { return path_.string(); }

  std::filesystem::path path_;
};

Packet make_packet(double ts, std::initializer_list<std::uint8_t> bytes) {
  Packet p;
  p.timestamp = ts;
  p.data = bytes;
  return p;
}

TEST_F(PcapFileTest, RoundTripPreservesPackets) {
  const std::vector<Packet> packets = {
      make_packet(1340700000.000123, {1, 2, 3, 4}),
      make_packet(1340700001.5, {0xde, 0xad, 0xbe, 0xef, 0x42}),
      make_packet(1340700002.999999, {}),
  };
  write_all(path(), packets);
  const auto read = read_all(path());
  ASSERT_EQ(read.size(), packets.size());
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ(read[i].data, packets[i].data) << i;
    EXPECT_NEAR(read[i].timestamp, packets[i].timestamp, 1e-6) << i;
  }
}

TEST_F(PcapFileTest, WriterCountsPackets) {
  PcapWriter writer{path()};
  writer.write(make_packet(1.0, {1}));
  writer.write(make_packet(2.0, {2}));
  EXPECT_EQ(writer.packets_written(), 2u);
}

TEST_F(PcapFileTest, EmptyFileHasHeaderOnly) {
  { PcapWriter writer{path()}; }
  EXPECT_EQ(std::filesystem::file_size(path_), 24u);
  EXPECT_TRUE(read_all(path()).empty());
}

TEST_F(PcapFileTest, GlobalHeaderMagicAndLinkType) {
  { PcapWriter writer{path()}; }
  std::FILE* f = std::fopen(path().c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::uint32_t words[6];
  ASSERT_EQ(std::fread(words, 4, 6, f), 6u);
  std::fclose(f);
  EXPECT_EQ(words[0], 0xa1b2c3d4u);
  EXPECT_EQ(words[5], 1u);  // LINKTYPE_ETHERNET
}

TEST_F(PcapFileTest, ReaderRejectsBadMagic) {
  std::FILE* f = std::fopen(path().c_str(), "wb");
  const std::uint32_t bad = 0xdeadbeef;
  std::fwrite(&bad, 4, 1, f);
  std::fclose(f);
  EXPECT_THROW(PcapReader{path()}, std::runtime_error);
}

TEST_F(PcapFileTest, ReaderRejectsMissingFile) {
  EXPECT_THROW(PcapReader{"/nonexistent/file.pcap"}, std::runtime_error);
}

TEST_F(PcapFileTest, ReaderThrowsOnTruncatedBody) {
  {
    PcapWriter writer{path()};
    writer.write(make_packet(1.0, {1, 2, 3, 4, 5, 6, 7, 8}));
  }
  // Chop the last 4 bytes of the packet body.
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) - 4);
  PcapReader reader{path()};
  EXPECT_THROW(reader.next(), std::runtime_error);
}

TEST_F(PcapFileTest, WriteAfterCloseThrows) {
  PcapWriter writer{path()};
  writer.close();
  EXPECT_THROW(writer.write(make_packet(1.0, {1})), std::runtime_error);
}

TEST_F(PcapFileTest, StreamingReaderCounts) {
  write_all(path(), {make_packet(1.0, {1}), make_packet(2.0, {2})});
  PcapReader reader{path()};
  while (reader.next()) {
  }
  EXPECT_EQ(reader.packets_read(), 2u);
}

// A frame past the advertised snaplen would write a file our own reader
// (and tcpdump) refuses; the writer must fail loudly at the source
// instead of silently producing it.
TEST_F(PcapFileTest, OversizedFrameRejectedAtWrite) {
  PcapWriter writer{path()};
  Packet oversized;
  oversized.timestamp = 1.0;
  oversized.data.assign(262144 + 1, 0x5A);
  EXPECT_THROW(writer.write(oversized), std::length_error);
  // The snaplen boundary itself is fine.
  oversized.data.resize(262144);
  writer.write(oversized);
  writer.close();
  EXPECT_EQ(read_all(path()).size(), 1u);
}

}  // namespace
}  // namespace cs::pcap
