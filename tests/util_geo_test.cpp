#include "util/geo.h"

#include <gtest/gtest.h>

namespace cs::util {
namespace {

// Reference coordinates.
constexpr GeoPoint kMadison{43.07, -89.40};
constexpr GeoPoint kVirginia{38.95, -77.45};    // ec2.us-east-1
constexpr GeoPoint kDublin{53.33, -6.25};       // ec2.eu-west-1
constexpr GeoPoint kSydney{-33.87, 151.21};     // ec2.ap-southeast-2

TEST(Geo, ZeroDistanceToSelf) {
  EXPECT_DOUBLE_EQ(haversine_km(kMadison, kMadison), 0.0);
}

TEST(Geo, Symmetric) {
  EXPECT_DOUBLE_EQ(haversine_km(kMadison, kDublin),
                   haversine_km(kDublin, kMadison));
}

TEST(Geo, KnownDistances) {
  // Madison -> Virginia is roughly 1100 km.
  EXPECT_NEAR(haversine_km(kMadison, kVirginia), 1100.0, 150.0);
  // Madison -> Dublin is roughly 5900 km.
  EXPECT_NEAR(haversine_km(kMadison, kDublin), 5900.0, 300.0);
  // Antipodal-ish distances stay below half the circumference.
  EXPECT_LT(haversine_km(kMadison, kSydney), 20037.0);
}

TEST(Geo, PropagationDelayScalesWithDistance) {
  const double near = propagation_delay_ms(kMadison, kVirginia);
  const double far = propagation_delay_ms(kMadison, kSydney);
  EXPECT_GT(far, near * 5);
  // One-way Madison->Virginia over inflated fibre: ~8 ms.
  EXPECT_NEAR(near, 8.0, 3.0);
}

TEST(Geo, RouteInflationMultiplies) {
  const double base = propagation_delay_ms(kMadison, kDublin, 1.0);
  const double inflated = propagation_delay_ms(kMadison, kDublin, 2.0);
  EXPECT_NEAR(inflated, base * 2.0, 1e-9);
}

}  // namespace
}  // namespace cs::util
