// The cs::snap acceptance gate: a study killed partway and resumed from
// its checkpoint directory renders byte-identically to an uninterrupted
// run — at CS_THREADS=1 and CS_THREADS=8, on two seeds. Snapshots carry
// the artifacts; the stage table's replay hooks re-apply each resumed
// stage's world side effects (instance launches), so downstream stages
// and the launch-heavy tables (8, 11) see the exact same universe.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "analysis/widearea.h"
#include "core/report.h"
#include "core/study.h"
#include "exec/config.h"

namespace cs::core {
namespace {

StudyConfig small_config(std::uint64_t seed) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 100;
  config.traffic.total_web_bytes = 2ull * 1024 * 1024;
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = false;
  config.campaign_vantages = 6;
  config.campaign_days = 0.25;
  config.isp_vantages = 10;
  return config;
}

/// Renders one artifact per pipeline stage, including the two tables
/// that launch their own EC2 instances during rendering (the sharpest
/// detector of world-state drift after a resume).
std::string render_full(Study& study) {
  std::string out;
  out += render_table1(study.capture());
  out += render_table3(study.cloud_usage());
  out += render_table7(study.patterns());
  out += render_table8(study);
  out += render_table9(study.regions());
  out += render_table11(study);
  out += render_table12(study.zone_study());
  out += render_table14(study.zone_study());
  out += render_table16(study.isp_study());
  out += render_fig9_10(analysis::average_matrix(study.campaign()));
  out += render_fig12(analysis::optimal_k_regions(study.campaign()));
  return out;
}

class ResumeDeterminism : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ResumeDeterminism, ResumedRunMatchesUninterruptedByteForByte) {
  const std::uint64_t seed = GetParam();
  for (const unsigned threads : {1u, 8u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed << ", CS_THREADS "
                                    << threads);
    exec::ScopedThreads guard{threads};
    const auto config = small_config(seed);

    // A: the uninterrupted reference run, no checkpointing involved.
    std::string expected;
    {
      Study study{config};
      expected = render_full(study);
    }

    // B: a run "killed" right after capture_logs completes — everything
    // it knew lives only in the checkpoint directory now.
    const auto dir =
        std::filesystem::path{testing::TempDir()} /
        ("snap_resume_" + std::to_string(seed) + "_" +
         std::to_string(threads));
    std::filesystem::remove_all(dir);
    auto ckpt = config;
    ckpt.checkpoint_dir = dir.string();
    {
      Study interrupted{ckpt};
      for (const auto& desc : Study::stage_table()) {
        interrupted.build_stage(desc.name);
        if (std::string_view{desc.name} == "capture_logs") break;
      }
    }

    // A fresh process-equivalent resumes the first five stages from disk
    // and builds the rest; the output must not move by a byte.
    {
      Study resumed{ckpt};
      EXPECT_EQ(render_full(resumed), expected);
      EXPECT_EQ(resumed.stages_resumed(), 5u);
    }

    // C: by now every stage is snapshotted; a third run resumes all nine
    // and still renders identically.
    {
      Study full{ckpt};
      EXPECT_EQ(render_full(full), expected);
      EXPECT_EQ(full.stages_resumed(), Study::stage_table().size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TwoSeeds, ResumeDeterminism,
                         testing::Values(2013ull, 777ull));

}  // namespace
}  // namespace cs::core
