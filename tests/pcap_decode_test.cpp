#include "pcap/decode.h"

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/checksum.h"

namespace cs::pcap {
namespace {

const net::Endpoint kClient{net::Ipv4(10, 0, 0, 1), 50123};
const net::Endpoint kServer{net::Ipv4(54, 1, 2, 3), 443};

std::vector<std::uint8_t> payload_of(std::string_view text) {
  return {text.begin(), text.end()};
}

TEST(Decode, TcpRoundTrip) {
  const auto payload = payload_of("hello");
  const auto packet = make_tcp_packet(
      1.5, kClient, kServer, TcpFlags{.syn = false, .ack = true, .psh = true},
      1234, payload);
  const auto decoded = decode_frame(packet.bytes());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->tuple.proto, net::IpProto::kTcp);
  EXPECT_EQ(decoded->tuple.src, kClient);
  EXPECT_EQ(decoded->tuple.dst, kServer);
  EXPECT_EQ(decoded->tcp_seq, 1234u);
  EXPECT_TRUE(decoded->tcp_flags.ack);
  EXPECT_TRUE(decoded->tcp_flags.psh);
  EXPECT_FALSE(decoded->tcp_flags.syn);
  ASSERT_EQ(decoded->payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         decoded->payload.begin()));
  EXPECT_EQ(decoded->ip_total_length, 20u + 20u + 5u);
}

TEST(Decode, UdpRoundTrip) {
  const auto payload = payload_of("dns query bytes");
  const auto packet = make_udp_packet(2.0, kClient,
                                      {net::Ipv4(8, 8, 8, 8), 53}, payload);
  const auto decoded = decode_frame(packet.bytes());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->tuple.proto, net::IpProto::kUdp);
  EXPECT_EQ(decoded->tuple.dst.port, 53);
  EXPECT_EQ(decoded->payload.size(), payload.size());
}

TEST(Decode, IcmpRoundTrip) {
  const auto packet =
      make_icmp_packet(3.0, kClient.addr, kServer.addr, 8, payload_of("ping"));
  const auto decoded = decode_frame(packet.bytes());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->tuple.proto, net::IpProto::kIcmp);
  EXPECT_EQ(decoded->icmp_type, 8);
  EXPECT_EQ(decoded->payload.size(), 4u);
}

TEST(Decode, EmptyPayloadTcp) {
  const auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0, {});
  const auto decoded = decode_frame(packet.bytes());
  ASSERT_TRUE(decoded);
  EXPECT_TRUE(decoded->tcp_flags.syn);
  EXPECT_TRUE(decoded->payload.empty());
}

TEST(Decode, Ipv4HeaderChecksumValid) {
  const auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0, {});
  // Verify the IP header checksum folds to zero when re-summed.
  const auto* ip = packet.data.data() + 14;
  EXPECT_EQ(net::internet_checksum({ip, 20}), 0u);
}

TEST(Decode, TcpChecksumValid) {
  const auto payload = payload_of("data");
  const auto packet = make_tcp_packet(1.0, kClient, kServer,
                                      TcpFlags{.ack = true}, 7, payload);
  const auto* segment = packet.data.data() + 14 + 20;
  const std::size_t seg_len = packet.data.size() - 14 - 20;
  EXPECT_EQ(net::transport_checksum(kClient.addr, kServer.addr, 6,
                                    {segment, seg_len}),
            0u);
}

TEST(Decode, RejectsNonIpv4EtherType) {
  auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0, {});
  packet.data[12] = 0x86;  // IPv6 ethertype
  packet.data[13] = 0xDD;
  EXPECT_FALSE(decode_frame(packet.bytes()));
}

TEST(Decode, RejectsTruncatedFrames) {
  const auto packet = make_tcp_packet(1.0, kClient, kServer,
                                      TcpFlags{.syn = true}, 0,
                                      payload_of("xyz"));
  for (std::size_t len : {0ul, 10ul, 14ul, 20ul, 33ul, 40ul}) {
    if (len >= packet.data.size()) continue;
    const std::span<const std::uint8_t> cut{packet.data.data(), len};
    EXPECT_FALSE(decode_frame(cut)) << "len=" << len;
  }
}

TEST(Decode, RejectsBadIhl) {
  auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0, {});
  packet.data[14] = 0x43;  // IHL = 3 words < minimum 5
  EXPECT_FALSE(decode_frame(packet.bytes()));
}

TEST(Decode, RejectsTotalLengthBeyondBuffer) {
  auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0, {});
  packet.data[16] = 0xFF;  // total length = huge
  packet.data[17] = 0xFF;
  EXPECT_FALSE(decode_frame(packet.bytes()));
}

TEST(Decode, UnknownIpProtoClassifiedOther) {
  auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0, {});
  packet.data[14 + 9] = 47;  // GRE
  // Fix the header checksum so only the protocol changed.
  packet.data[14 + 10] = packet.data[14 + 11] = 0;
  const auto cksum = net::internet_checksum({packet.data.data() + 14, 20});
  packet.data[14 + 10] = static_cast<std::uint8_t>(cksum >> 8);
  packet.data[14 + 11] = static_cast<std::uint8_t>(cksum);
  const auto decoded = decode_frame(packet.bytes());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->tuple.proto, net::IpProto::kOther);
}

// Table-driven corpus of malformed frames: every way a captured frame can
// lie about its own structure must yield nullopt, never an out-of-bounds
// read. The fault injector's truncation/corruption paths rely on exactly
// these rejections.
TEST(Decode, MalformedFrameCorpus) {
  struct Case {
    const char* name;
    bool udp;  ///< mutate a UDP base frame instead of the TCP one
    std::function<void(std::vector<std::uint8_t>&)> mutate;
  };
  const std::vector<Case> corpus = {
      {"frame shorter than ethernet header", false,
       [](auto& d) { d.resize(10); }},
      {"ethernet header only", false, [](auto& d) { d.resize(14); }},
      {"ip header cut midway", false, [](auto& d) { d.resize(14 + 12); }},
      {"ip version not 4", false, [](auto& d) { d[14] = 0x65; }},
      {"ihl below minimum", false, [](auto& d) { d[14] = 0x43; }},
      {"ihl beyond captured bytes", false, [](auto& d) { d[14] = 0x4F; }},
      {"total_length beyond captured bytes", false,
       [](auto& d) { d[16] = 0xFF, d[17] = 0xFF; }},
      {"total_length below ihl", false,
       [](auto& d) { d[16] = 0, d[17] = 10; }},
      {"total_length cuts tcp header short", false,
       [](auto& d) { d[16] = 0, d[17] = 20 + 10; }},
      {"tcp data offset below minimum", false,
       [](auto& d) { d[14 + 20 + 12] = 0x40; }},
      {"tcp data offset beyond segment", false,
       [](auto& d) { d[14 + 20 + 12] = 0xF0; }},
      {"udp length below header size", true,
       [](auto& d) { d[14 + 20 + 4] = 0, d[14 + 20 + 5] = 4; }},
      {"udp length beyond datagram", true,
       [](auto& d) { d[14 + 20 + 4] = 0, d[14 + 20 + 5] = 200; }},
  };
  const auto payload = payload_of("xyz");
  for (const auto& c : corpus) {
    auto packet =
        c.udp ? make_udp_packet(1.0, kClient, kServer, payload)
              : make_tcp_packet(1.0, kClient, kServer,
                                TcpFlags{.ack = true, .psh = true}, 7,
                                payload);
    ASSERT_TRUE(decode_frame(packet.bytes())) << c.name << " (base frame)";
    c.mutate(packet.data);
    EXPECT_FALSE(decode_frame(packet.bytes())) << c.name;
  }
}

// The truncation oracle behind the pcap fault injector: our builders emit
// frames whose IP total length accounts for every captured byte, so ANY
// strict prefix — not just the handful of lengths above — must be
// rejected. Injected truncation therefore always yields an undecodable
// frame, never a silently shortened flow.
TEST(Decode, EveryStrictPrefixOfValidFrameRejected) {
  for (const bool udp : {false, true}) {
    const auto payload = payload_of("hello");
    const auto packet =
        udp ? make_udp_packet(1.0, kClient, kServer, payload)
            : make_tcp_packet(1.0, kClient, kServer, TcpFlags{.ack = true},
                              7, payload);
    for (std::size_t len = 0; len < packet.data.size(); ++len) {
      const std::span<const std::uint8_t> cut{packet.data.data(), len};
      EXPECT_FALSE(decode_frame(cut)) << (udp ? "udp" : "tcp") << " len=" << len;
    }
  }
}

TEST(Decode, TcpFlagsByteRoundTrip) {
  for (int b = 0; b < 32; ++b) {
    const auto flags = TcpFlags::from_byte(static_cast<std::uint8_t>(b));
    EXPECT_EQ(flags.to_byte(), b & 0x1F);
  }
}

// The IPv4 total-length field is u16; a payload that would overflow it
// used to wrap silently and emit a frame decode_frame rejects as short.
// The builders now refuse at the source.
TEST(Decode, SegmentPastIpv4MaxLengthRejected) {
  const std::vector<std::uint8_t> too_big(65536, 0x00);
  EXPECT_THROW(
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{}, 0, too_big),
      std::length_error);
  EXPECT_THROW(make_udp_packet(1.0, kClient, kServer, too_big),
               std::length_error);
  // The largest payload that still fits a 20-byte header + 20-byte TCP
  // header round-trips.
  const std::vector<std::uint8_t> max_tcp(0xFFFF - 20 - 20, 0x42);
  const auto packet =
      make_tcp_packet(1.0, kClient, kServer, TcpFlags{.ack = true}, 0,
                      max_tcp);
  const auto decoded = decode_frame(packet.bytes());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->ip_total_length, 0xFFFFu);
  EXPECT_EQ(decoded->payload.size(), max_tcp.size());
}

}  // namespace
}  // namespace cs::pcap
