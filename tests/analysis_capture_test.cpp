#include "analysis/capture.h"

#include <gtest/gtest.h>

#include "pcap/flow.h"
#include "synth/traffic.h"

namespace cs::analysis {
namespace {

class CaptureTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig world_config;
    world_config.domain_count = 200;
    world_ = new synth::World{world_config};
    synth::TrafficConfig traffic_config;
    traffic_config.total_web_bytes = 8ull * 1024 * 1024;
    synth::TrafficGenerator generator{*world_, traffic_config};
    pcap::FlowTable table;
    for (const auto& packet : generator.generate()) table.add(packet);
    logs_ = new proto::TraceLogs{proto::analyze_flows(table.finish())};
    ranges_ = new CloudRanges{world_->ec2(), world_->azure()};
    std::map<std::string, std::size_t> rank_of;
    for (const auto& domain : world_->domains())
      rank_of[domain.name.to_string()] = domain.rank;
    report_ = new CaptureReport{analyze_capture(*logs_, *ranges_, rank_of)};
  }
  static void TearDownTestSuite() {
    delete report_;
    delete ranges_;
    delete logs_;
    delete world_;
  }

  static synth::World* world_;
  static proto::TraceLogs* logs_;
  static CloudRanges* ranges_;
  static CaptureReport* report_;
};

synth::World* CaptureTest::world_ = nullptr;
proto::TraceLogs* CaptureTest::logs_ = nullptr;
CloudRanges* CaptureTest::ranges_ = nullptr;
CaptureReport* CaptureTest::report_ = nullptr;

TEST(RegisteredDomain, Reduction) {
  EXPECT_EQ(registered_domain("www.dropbox.com"), "dropbox.com");
  EXPECT_EQ(registered_domain("a.b.c.example.org"), "example.org");
  EXPECT_EQ(registered_domain("example.org"), "example.org");
  EXPECT_EQ(registered_domain("localhost"), "localhost");
  EXPECT_EQ(registered_domain("*.dropbox.com"), "dropbox.com");
  EXPECT_EQ(registered_domain("WWW.MSN.COM"), "msn.com");
}

TEST_F(CaptureTest, Table1Shape) {
  const auto& p = report_->protocols;
  EXPECT_GT(p.total.bytes, 0u);
  EXPECT_EQ(p.total.bytes, p.ec2_total.bytes + p.azure_total.bytes);
  EXPECT_EQ(p.total.flows, p.ec2_total.flows + p.azure_total.flows);
  // EC2 dominates bytes ~4:1 (Table 1: 81.73 / 18.27).
  EXPECT_GT(p.ec2_total.bytes, p.azure_total.bytes * 2);
}

TEST_F(CaptureTest, Table2Shape) {
  const auto& p = report_->protocols;
  const auto& ec2 = p.cloud_service.at("EC2");
  const auto& azure = p.cloud_service.at("Azure");
  // EC2 bytes dominated by HTTPS; Azure bytes by HTTP.
  EXPECT_GT(ec2.at("HTTPS (TCP)").bytes, ec2.at("HTTP (TCP)").bytes);
  EXPECT_GT(azure.at("HTTP (TCP)").bytes, azure.at("HTTPS (TCP)").bytes);
  // HTTP dominates flows on both clouds.
  EXPECT_GT(ec2.at("HTTP (TCP)").flows, ec2.at("HTTPS (TCP)").flows * 3);
  // Azure's other-UDP flow bulge (14.77% vs EC2's 0.19%).
  const double azure_udp =
      static_cast<double>(azure.at("Other (UDP)").flows) /
      p.azure_total.flows;
  const double ec2_udp = static_cast<double>(
                             ec2.count("Other (UDP)")
                                 ? ec2.at("Other (UDP)").flows
                                 : 0) /
                         p.ec2_total.flows;
  EXPECT_GT(azure_udp, 0.08);
  EXPECT_LT(ec2_udp, 0.02);
}

TEST_F(CaptureTest, Table5DropboxTops) {
  ASSERT_FALSE(report_->top_ec2_domains.empty());
  EXPECT_EQ(report_->top_ec2_domains[0].domain, "dropbox.com");
  EXPECT_GT(report_->top_ec2_domains[0].percent_of_web, 50.0);
  // Percentages are monotone down the list.
  for (std::size_t i = 1; i < report_->top_ec2_domains.size(); ++i)
    EXPECT_GE(report_->top_ec2_domains[i - 1].percent_of_web,
              report_->top_ec2_domains[i].percent_of_web);
}

TEST_F(CaptureTest, Table5AzureListIsMicrosoftHeavy) {
  ASSERT_GE(report_->top_azure_domains.size(), 3u);
  std::set<std::string> top;
  for (const auto& row : report_->top_azure_domains) top.insert(row.domain);
  EXPECT_TRUE(top.contains("atdmt.com"));
  EXPECT_TRUE(top.contains("msn.com"));
}

TEST_F(CaptureTest, Table5RankJoins) {
  // pinterest.com is both a heavy hitter and an Alexa domain (rank 35).
  bool found = false;
  for (const auto& row : report_->top_ec2_domains)
    if (row.domain == "pinterest.com") {
      EXPECT_EQ(row.alexa_rank, 35u);
      found = true;
    }
  EXPECT_TRUE(found);
  EXPECT_GT(report_->domains_in_alexa, 0u);
}

TEST_F(CaptureTest, Table6ContentTypes) {
  ASSERT_GE(report_->content_types.size(), 5u);
  double total_pct = 0.0;
  for (const auto& row : report_->content_types) {
    EXPECT_GT(row.bytes, 0u);
    EXPECT_GT(row.mean_kb, 0.0);
    EXPECT_GE(row.max_mb * 1024.0, row.mean_kb);
    total_pct += row.percent;
  }
  EXPECT_LE(total_pct, 100.0 + 1e-9);
  // html and plain text are the top two byte carriers (Table 6).
  std::set<std::string> top2 = {report_->content_types[0].content_type,
                                report_->content_types[1].content_type};
  EXPECT_TRUE(top2.contains("text/html") || top2.contains("text/plain"));
}

TEST_F(CaptureTest, Fig3HttpsFlowsLarger) {
  ASSERT_FALSE(report_->http_flow_size_ec2.empty());
  ASSERT_FALSE(report_->https_flow_size_ec2.empty());
  EXPECT_GT(report_->https_flow_size_ec2.value_at(0.5),
            report_->http_flow_size_ec2.value_at(0.5) * 3);
}

TEST_F(CaptureTest, Fig3FlowCountsHeavyTailed) {
  const auto& cdf = report_->http_flows_per_domain_ec2;
  ASSERT_FALSE(cdf.empty());
  // Most domains have few flows, a few have many (heavy tail).
  EXPECT_LT(cdf.value_at(0.5) * 5, cdf.value_at(0.99));
}

TEST_F(CaptureTest, Top100ShareHigh) {
  EXPECT_GT(report_->top100_http_flow_share_ec2, 0.7);
}

TEST_F(CaptureTest, EmptyLogsYieldEmptyReport) {
  const proto::TraceLogs empty;
  const auto report = analyze_capture(empty, *ranges_);
  EXPECT_EQ(report.protocols.total.bytes, 0u);
  EXPECT_TRUE(report.top_ec2_domains.empty());
  EXPECT_TRUE(report.content_types.empty());
}

TEST_F(CaptureTest, NonCloudFlowsIgnored) {
  proto::TraceLogs logs;
  proto::ConnRecord conn;
  conn.tuple = {{net::Ipv4(128, 104, 0, 1), 40000},
                {net::Ipv4(8, 8, 8, 8), 80},
                net::IpProto::kTcp};
  conn.service = proto::Service::kHttp;
  conn.bytes = 1000;
  logs.conns.push_back(conn);
  const auto report = analyze_capture(logs, *ranges_);
  EXPECT_EQ(report.protocols.total.flows, 0u);
}

}  // namespace
}  // namespace cs::analysis
