#include "internet/model.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/stats.h"

namespace cs::internet {
namespace {

class ModelFixture : public ::testing::Test {
 protected:
  ModelFixture()
      : ec2(cloud::Provider::make_ec2(3)),
        model(WideAreaModel::Config{.seed = 3}) {}

  const cloud::Region& region(std::string_view name) {
    return *ec2.region(name);
  }

  cloud::Provider ec2;
  WideAreaModel model;
};

TEST_F(ModelFixture, BaseRttScalesWithDistance) {
  const auto seattle = vantage_named("seattle");
  const double west = model.base_rtt_ms(seattle, region("ec2.us-west-2"));
  const double east = model.base_rtt_ms(seattle, region("ec2.us-east-1"));
  const double sydney =
      model.base_rtt_ms(seattle, region("ec2.ap-southeast-2"));
  EXPECT_LT(west, east);
  EXPECT_LT(east, sydney);
  // Seattle to Oregon is nearly next door.
  EXPECT_LT(west, 25.0);
  EXPECT_GT(sydney, 100.0);
}

TEST_F(ModelFixture, RttSamplesCenterNearBase) {
  const auto boulder = vantage_named("boulder");
  const auto& r = region("ec2.us-east-1");
  const double base = model.base_rtt_ms(boulder, r);
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i)
    if (const auto s = model.rtt_sample(boulder, r, i * 600.0))
      samples.push_back(*s);
  ASSERT_GT(samples.size(), 400u);
  // Median within the congestion envelope of base.
  const double med = util::median(samples);
  EXPECT_GT(med, base * 0.7);
  EXPECT_LT(med, base * 2.0);
  for (const double s : samples) EXPECT_GT(s, 0.0);
}

TEST_F(ModelFixture, SomeProbesAreLost) {
  WideAreaModel lossy{{.seed = 3, .probe_loss = 0.5}};
  const auto v = vantage_named("paris");
  int lost = 0;
  for (int i = 0; i < 300; ++i)
    if (!lossy.rtt_sample(v, region("ec2.eu-west-1"), i * 13.0)) ++lost;
  EXPECT_GT(lost, 100);
  EXPECT_LT(lost, 200);
}

TEST_F(ModelFixture, ThroughputInverseToRtt) {
  const auto seattle = vantage_named("seattle");
  util::RunningStats near_tput, far_tput;
  for (int i = 0; i < 200; ++i) {
    if (const auto t =
            model.throughput_sample(seattle, region("ec2.us-west-2"),
                                    i * 900.0))
      near_tput.add(*t);
    if (const auto t =
            model.throughput_sample(seattle, region("ec2.sa-east-1"),
                                    i * 900.0))
      far_tput.add(*t);
  }
  ASSERT_GT(near_tput.count(), 50u);
  ASSERT_GT(far_tput.count(), 50u);
  EXPECT_GT(near_tput.mean(), far_tput.mean() * 2);
}

TEST_F(ModelFixture, ThroughputRespectsAccessCap) {
  const auto seattle = vantage_named("seattle");
  for (int i = 0; i < 100; ++i) {
    if (const auto t = model.throughput_sample(
            seattle, region("ec2.us-west-2"), i * 900.0))
      EXPECT_LE(*t, 12000.0 * 1.1);
  }
}

TEST_F(ModelFixture, SameZoneRttIsHalfMillisecond) {
  const double rtt = model.zone_pair_base_ms("ec2.us-east-1", 1, 1);
  EXPECT_GT(rtt, 0.4);
  EXPECT_LT(rtt, 0.6);
}

TEST_F(ModelFixture, CrossZoneRttClearlyLarger) {
  for (int a = 0; a < 3; ++a)
    for (int b = 0; b < 3; ++b) {
      const double rtt = model.zone_pair_base_ms("ec2.us-east-1", a, b);
      if (a == b) {
        EXPECT_LT(rtt, 0.6);
      } else {
        // Most pairs sit in [1.3, 2.2]; a minority of physically close
        // pairs dip into [0.92, 1.17] (the latency method's confusers).
        EXPECT_GT(rtt, 0.85);
        EXPECT_LT(rtt, 2.4);
        // Symmetry.
        EXPECT_DOUBLE_EQ(rtt, model.zone_pair_base_ms("ec2.us-east-1", b, a));
      }
    }
}

TEST_F(ModelFixture, MinOfProbesRecoversZoneSignal) {
  // The cartography method takes min RTT over repeated probes; that min
  // must stay close to the zone-pair base despite noise spikes.
  auto probe = ec2.launch({.account = "probe", .region = "ec2.us-east-1",
                           .zone_label = 0});
  auto target = ec2.launch({.account = "t", .region = "ec2.us-east-1",
                            .zone_label = 0});
  const double base =
      model.zone_pair_base_ms("ec2.us-east-1", probe.zone, target.zone);
  double best = 1e9;
  for (int i = 0; i < 10; ++i)
    best = std::min(best,
                    model.instance_rtt_sample(ec2, probe, target, i * 5.0));
  EXPECT_NEAR(best, base, 0.25);
}

TEST_F(ModelFixture, CrossRegionInstanceRttIsGeographic) {
  auto a = ec2.launch({.account = "x", .region = "ec2.us-east-1"});
  auto b = ec2.launch({.account = "x", .region = "ec2.ap-northeast-1"});
  const double rtt = model.instance_rtt_sample(ec2, a, b, 0.0);
  EXPECT_GT(rtt, 80.0);  // Virginia-Tokyo is not a LAN
}

TEST_F(ModelFixture, UnresponsiveInstancesStableMinority) {
  auto ec2b = cloud::Provider::make_ec2(9);
  int unresponsive = 0;
  std::vector<const cloud::Instance*> insts;
  for (int i = 0; i < 1000; ++i)
    insts.push_back(&ec2b.launch({.account = "t", .region = "ec2.us-east-1"}));
  for (const auto* inst : insts) {
    if (model.instance_unresponsive(*inst)) ++unresponsive;
    // Determinism.
    EXPECT_EQ(model.instance_unresponsive(*inst),
              model.instance_unresponsive(*inst));
  }
  EXPECT_GT(unresponsive, 120);
  EXPECT_LT(unresponsive, 320);
}

TEST_F(ModelFixture, BestRegionCanFlapOverTime) {
  // Boulder sits between the US regions; congestion episodes must change
  // the winner at least occasionally over three days (Figure 11).
  const auto boulder = vantage_named("boulder");
  const std::vector<std::string> names = {"ec2.us-east-1", "ec2.us-west-1",
                                          "ec2.us-west-2"};
  std::set<std::string> winners;
  for (int round = 0; round < 288; ++round) {
    const double t = round * 900.0;
    double best = 1e18;
    std::string who;
    for (const auto& name : names) {
      const auto s = model.rtt_sample(boulder, region(name), t);
      if (s && *s < best) {
        best = *s;
        who = name;
      }
    }
    winners.insert(who);
  }
  EXPECT_GE(winners.size(), 2u);
}

}  // namespace
}  // namespace cs::internet
