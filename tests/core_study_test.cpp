#include "core/study.h"

#include <gtest/gtest.h>

#include "core/report.h"

namespace cs::core {
namespace {

/// End-to-end integration: one Study drives the complete pipeline.
class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    StudyConfig config;
    config.world.domain_count = 220;
    config.traffic.total_web_bytes = 4ull * 1024 * 1024;
    config.dataset.lookup_vantages = 2;
    config.campaign_vantages = 8;
    config.campaign_days = 0.25;
    config.isp_vantages = 40;
    study_ = new Study{config};
  }
  static void TearDownTestSuite() { delete study_; }

  static Study* study_;
};

Study* StudyTest::study_ = nullptr;

TEST_F(StudyTest, StagesAreCachedAcrossCalls) {
  const auto& a = study_->dataset();
  const auto& b = study_->dataset();
  EXPECT_EQ(&a, &b);
  const auto& pa = study_->patterns();
  const auto& pb = study_->patterns();
  EXPECT_EQ(&pa, &pb);
}

TEST_F(StudyTest, RankMapKeyedByDomain) {
  const auto& ranks = study_->rank_map();
  EXPECT_EQ(ranks.size(), 220u);
  EXPECT_EQ(ranks.at("pinterest.com"), 35u);
}

TEST_F(StudyTest, AllTableRenderersProduceOutput) {
  EXPECT_NE(render_table1(study_->capture()).find("EC2"), std::string::npos);
  EXPECT_NE(render_table2(study_->capture()).find("HTTPS"),
            std::string::npos);
  EXPECT_NE(render_table3(study_->cloud_usage()).find("EC2 + Other"),
            std::string::npos);
  EXPECT_NE(render_table4(study_->cloud_usage()).find("Rank"),
            std::string::npos);
  EXPECT_NE(render_table5(study_->capture()).find("dropbox.com"),
            std::string::npos);
  EXPECT_NE(render_table6(study_->capture()).find("text/"),
            std::string::npos);
  EXPECT_NE(render_table7(study_->patterns()).find("Heroku"),
            std::string::npos);
  EXPECT_NE(render_table8(*study_).find("Domain"), std::string::npos);
  EXPECT_NE(render_table9(study_->regions()).find("ec2.us-east-1"),
            std::string::npos);
  EXPECT_NE(render_table10(*study_).find("k=1"), std::string::npos);
}

TEST_F(StudyTest, ZoneAndIspRenderersProduceOutput) {
  EXPECT_NE(render_table12(study_->zone_study()).find("% unk"),
            std::string::npos);
  EXPECT_NE(render_table13(study_->zone_study()).find("error rate"),
            std::string::npos);
  EXPECT_NE(render_table14(study_->zone_study()).find("# Subdom"),
            std::string::npos);
  EXPECT_NE(render_table15(*study_).find("# zones"), std::string::npos);
  EXPECT_NE(render_table16(study_->isp_study()).find("AZ1"),
            std::string::npos);
}

TEST_F(StudyTest, FigureRenderersProduceSeries) {
  EXPECT_NE(render_fig3(study_->capture()).find("quantile"),
            std::string::npos);
  EXPECT_NE(render_fig4(study_->patterns()).find("VM instances"),
            std::string::npos);
  EXPECT_NE(render_fig5(study_->patterns()).find("DNS servers"),
            std::string::npos);
  EXPECT_NE(render_fig6(study_->regions()).find("EC2 subdomains"),
            std::string::npos);
  EXPECT_NE(render_fig8(study_->zone_study()).find("one zone"),
            std::string::npos);
  const auto averages = analysis::average_matrix(study_->campaign());
  EXPECT_NE(render_fig9_10(averages).find("Figure 9"), std::string::npos);
  const auto k = analysis::optimal_k_regions(study_->campaign());
  EXPECT_NE(render_fig12(k).find("best regions"), std::string::npos);
}

TEST_F(StudyTest, Table11ExperimentRuns) {
  const auto table = render_table11(*study_);
  EXPECT_NE(table.find("t1.micro"), std::string::npos);
  EXPECT_NE(table.find("m3.2xlarge"), std::string::npos);
}

TEST_F(StudyTest, CampaignShapeMatchesConfig) {
  const auto& campaign = study_->campaign();
  EXPECT_EQ(campaign.vantages.size(), 8u);
  EXPECT_EQ(campaign.region_names.size(), 8u);
  EXPECT_EQ(campaign.rounds(), 24u);
}

TEST_F(StudyTest, HeadlineNumbersInPaperBands) {
  // The cross-cutting sanity panel: every headline statistic the paper
  // reports lands in a defensible band on the default small universe.
  const auto& usage = study_->cloud_usage();
  EXPECT_GT(usage.domains.total, 20u);

  const auto& regions = study_->regions();
  EXPECT_GT(regions.ec2_single_region_fraction, 0.9);

  const auto& capture = study_->capture();
  EXPECT_GT(capture.top_ec2_domains.at(0).percent_of_web, 50.0);

  const auto& zones = study_->zone_study();
  EXPECT_GT(zones.combined_identified_fraction, 0.5);
}

}  // namespace
}  // namespace cs::core
