// Tests for util::env — the one strict parser behind every CS_* knob.
#include "util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace cs::util {
namespace {

/// setenv/unsetenv wrapper that restores the prior state on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) previous_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (previous_)
      ::setenv(name_, previous_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> previous_;
};

TEST(EnvText, ReturnsValueWhenSet) {
  ScopedEnv env{"CS_ENV_TEST", "hello"};
  const auto text = env_text("CS_ENV_TEST");
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, "hello");
}

TEST(EnvText, UnsetIsNullopt) {
  ScopedEnv env{"CS_ENV_TEST", nullptr};
  EXPECT_FALSE(env_text("CS_ENV_TEST").has_value());
}

TEST(EnvText, EmptyIsEquivalentToUnset) {
  ScopedEnv env{"CS_ENV_TEST", ""};
  EXPECT_FALSE(env_text("CS_ENV_TEST").has_value());
}

TEST(EnvFlag, AcceptsCanonicalTrueTokens) {
  for (const char* text : {"1", "true", "on", "yes", "TRUE", "On", "YeS"}) {
    const auto flag = parse_env_flag(text);
    ASSERT_TRUE(flag.has_value()) << text;
    EXPECT_TRUE(*flag) << text;
  }
}

TEST(EnvFlag, AcceptsCanonicalFalseTokens) {
  for (const char* text : {"0", "false", "off", "no", "FALSE", "Off", "nO"}) {
    const auto flag = parse_env_flag(text);
    ASSERT_TRUE(flag.has_value()) << text;
    EXPECT_FALSE(*flag) << text;
  }
}

TEST(EnvFlag, RejectsEverythingElse) {
  for (const char* text :
       {"", "2", "tru", "yess", " 1", "1 ", "enable", "y", "n", "01"}) {
    EXPECT_FALSE(parse_env_flag(text).has_value()) << "'" << text << "'";
  }
}

TEST(EnvUnsigned, ParsesPlainDecimal) {
  EXPECT_EQ(parse_env_unsigned("0"), 0u);
  EXPECT_EQ(parse_env_unsigned("8"), 8u);
  EXPECT_EQ(parse_env_unsigned("123"), 123u);
  EXPECT_EQ(parse_env_unsigned("999999999"), 999999999u);  // 9 digits: max
}

TEST(EnvUnsigned, RejectsMalformedText) {
  for (const char* text : {"", "-1", "+1", " 1", "1 ", "1x", "x1", "1.5",
                           "0x10", "1234567890" /* 10 digits */}) {
    EXPECT_FALSE(parse_env_unsigned(text).has_value()) << "'" << text << "'";
  }
}

TEST(EnvMalformed, RendersTheUniformWarning) {
  EXPECT_EQ(env_malformed("CS_THREADS", "lots", "a small unsigned integer"),
            "ignoring CS_THREADS='lots' (want a small unsigned integer)");
}

}  // namespace
}  // namespace cs::util
