#include "dns/message.h"

#include <gtest/gtest.h>

#include <vector>

namespace cs::dns {
namespace {

Message sample_response() {
  auto query = Message::query(0x1234, Name::must_parse("www.example.com"),
                              RrType::kA, true);
  Message resp = Message::response_to(query, Rcode::kNoError, true);
  resp.answers.push_back(ResourceRecord::cname(
      Name::must_parse("www.example.com"),
      Name::must_parse("lb-7.elb.amazonaws.com"), 60));
  resp.answers.push_back(ResourceRecord::a(
      Name::must_parse("lb-7.elb.amazonaws.com"), net::Ipv4(54, 1, 2, 3)));
  resp.authority.push_back(ResourceRecord::ns(
      Name::must_parse("example.com"), Name::must_parse("ns1.example.com")));
  resp.additional.push_back(ResourceRecord::a(
      Name::must_parse("ns1.example.com"), net::Ipv4(198, 51, 100, 1)));
  return resp;
}

TEST(Message, QueryEncodeDecodeRoundTrip) {
  const auto q =
      Message::query(7, Name::must_parse("example.com"), RrType::kNs, false);
  const auto decoded = Message::decode(q.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, q);
}

TEST(Message, ResponseRoundTripAllSections) {
  const auto resp = sample_response();
  const auto decoded = Message::decode(resp.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, resp);
}

TEST(Message, HeaderFlagsSurvive) {
  auto m = Message::query(0xBEEF, Name::must_parse("a.b"), RrType::kA, true);
  m.header.qr = true;
  m.header.aa = true;
  m.header.ra = true;
  m.header.tc = true;
  m.header.rcode = Rcode::kNxDomain;
  const auto decoded = Message::decode(m.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->header, m.header);
}

TEST(Message, CompressionShrinksRepeatedNames) {
  Message m = Message::query(1, Name::must_parse("www.example.com"),
                             RrType::kA, false);
  Message r = Message::response_to(m, Rcode::kNoError, true);
  for (int i = 0; i < 10; ++i)
    r.answers.push_back(ResourceRecord::a(
        Name::must_parse("www.example.com"), net::Ipv4(10, 0, 0, i)));
  const auto wire = r.encode();
  // With compression each repeated owner name is a 2-byte pointer; without
  // it each would be 17 bytes. 10 answers, so the total must be well under
  // the uncompressed size.
  const std::size_t uncompressed_estimate = 12 + 21 + 10 * (17 + 10 + 4);
  EXPECT_LT(wire.size(), uncompressed_estimate - 100);
  const auto decoded = Message::decode(wire);
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, r);
}

TEST(Message, CompressionAcrossRdataNames) {
  Message m = Message::query(1, Name::must_parse("example.com"), RrType::kNs,
                             false);
  Message r = Message::response_to(m, Rcode::kNoError, true);
  r.answers.push_back(ResourceRecord::ns(Name::must_parse("example.com"),
                                         Name::must_parse("ns.example.com")));
  const auto decoded = Message::decode(r.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, r);
}

TEST(Message, SoaAndTxtRoundTrip) {
  Message m = Message::query(2, Name::must_parse("example.com"), RrType::kAny,
                             false);
  Message r = Message::response_to(m, Rcode::kNoError, true);
  SoaRecord soa;
  soa.mname = Name::must_parse("ns1.example.com");
  soa.rname = Name::must_parse("hostmaster.example.com");
  soa.serial = 2013032701;
  r.answers.push_back(ResourceRecord::soa(Name::must_parse("example.com"),
                                          soa));
  r.answers.push_back(ResourceRecord::txt(Name::must_parse("example.com"),
                                          {"v=spf1 -all", "second"}));
  const auto decoded = Message::decode(r.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, r);
}

TEST(Message, DecodeRejectsTruncation) {
  const auto wire = sample_response().encode();
  for (std::size_t cut : {0ul, 5ul, 11ul, wire.size() / 2, wire.size() - 1}) {
    const auto truncated =
        std::span<const std::uint8_t>{wire.data(), cut};
    EXPECT_FALSE(Message::decode(truncated)) << "cut=" << cut;
  }
}

TEST(Message, DecodeRejectsCompressionLoop) {
  // Hand-craft: header with 1 question whose name is a pointer to itself.
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xC0, 0x0C,              // pointer to offset 12 = itself
      0x00, 0x01, 0x00, 0x01,  // type A, class IN
  };
  EXPECT_FALSE(Message::decode(wire));
}

TEST(Message, DecodeRejectsForwardPointer) {
  std::vector<std::uint8_t> wire = {
      0x00, 0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0xC0, 0x20,              // pointer past itself
      0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(Message::decode(wire));
}

TEST(Message, DecodeRejectsBadARdataLength) {
  auto r = sample_response();
  auto wire = r.encode();
  // Find the A rdlength (4) and corrupt it to 3. The A record for the ELB
  // name: search for the 2-byte big-endian 0x0004 preceding the address.
  bool corrupted = false;
  for (std::size_t i = 0; i + 6 < wire.size(); ++i) {
    if (wire[i] == 0x00 && wire[i + 1] == 0x04 && wire[i + 2] == 54 &&
        wire[i + 3] == 1 && wire[i + 4] == 2 && wire[i + 5] == 3) {
      wire[i + 1] = 0x03;
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_FALSE(Message::decode(wire));
}

TEST(Message, DecodeRejectsNonInClass) {
  auto q = Message::query(3, Name::must_parse("x.com"), RrType::kA, false);
  auto wire = q.encode();
  wire[wire.size() - 1] = 0x03;  // class CHAOS
  EXPECT_FALSE(Message::decode(wire));
}

TEST(Message, ResponseToEchoesIdAndQuestion) {
  const auto q =
      Message::query(0xAA55, Name::must_parse("foo.bar"), RrType::kCname,
                     true);
  const auto r = Message::response_to(q, Rcode::kRefused, false);
  EXPECT_EQ(r.header.id, q.header.id);
  EXPECT_TRUE(r.header.qr);
  EXPECT_TRUE(r.header.rd);
  EXPECT_EQ(r.header.rcode, Rcode::kRefused);
  ASSERT_EQ(r.questions.size(), 1u);
  EXPECT_EQ(r.questions[0], q.questions[0]);
}

TEST(Message, RcodeNames) {
  EXPECT_EQ(to_string(Rcode::kNoError), "NOERROR");
  EXPECT_EQ(to_string(Rcode::kNxDomain), "NXDOMAIN");
  EXPECT_EQ(to_string(Rcode::kRefused), "REFUSED");
}

TEST(ResourceRecord, TypeFromVariant) {
  EXPECT_EQ(ResourceRecord::a(Name::must_parse("x.y"), net::Ipv4(1, 2, 3, 4))
                .type(),
            RrType::kA);
  EXPECT_EQ(ResourceRecord::cname(Name::must_parse("x.y"),
                                  Name::must_parse("z.y"))
                .type(),
            RrType::kCname);
}

TEST(ResourceRecord, PresentationFormat) {
  const auto rr = ResourceRecord::a(Name::must_parse("www.example.com"),
                                    net::Ipv4(93, 184, 216, 34), 300);
  EXPECT_EQ(rr.to_string(), "www.example.com 300 IN A 93.184.216.34");
}

}  // namespace
}  // namespace cs::dns
