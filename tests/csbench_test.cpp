#include "csbench/csbench.h"

#include <gtest/gtest.h>

namespace cs::csbench {
namespace {

// A RunReport-shaped sidecar, the same JSON the bench binaries emit.
constexpr const char* kSidecar = R"({
  "bench": "Table 1: cloud share of capture traffic",
  "wall_ms": 160.441,
  "threads": 1,
  "resources": {"user_cpu_ms": 92.6, "system_cpu_ms": 57.9,
                "peak_rss_kb": 125236, "current_rss_kb": 121184},
  "pool": {"tasks": 0, "steals": 0, "max_queue_depth": 0},
  "snap": {"stages_built": 5, "stages_resumed": 0, "supervisor_retries": 0},
  "fault": {"total": 0},
  "stages": [
    {"name": "study.world", "count": 1, "total_ms": 5.858, "self_ms": 0.007},
    {"name": "study.capture", "count": 1, "total_ms": 153.1, "self_ms": 3.2}
  ],
  "percentiles": {},
  "counters": {"pcap.flow.flows": 8511}
})";

TEST(AggregateTest, MinMedianIqrOfKnownSamples) {
  const auto stats = aggregate({10.0, 30.0, 20.0, 40.0, 50.0});
  EXPECT_EQ(stats.reps, 5u);
  EXPECT_DOUBLE_EQ(stats.min, 10.0);
  EXPECT_DOUBLE_EQ(stats.median, 30.0);
  EXPECT_DOUBLE_EQ(stats.iqr, 20.0);  // p75=40, p25=20
}

TEST(AggregateTest, EvenCountInterpolates) {
  const auto stats = aggregate({10.0, 20.0});
  EXPECT_DOUBLE_EQ(stats.median, 15.0);
  EXPECT_DOUBLE_EQ(stats.iqr, 5.0);  // p75=17.5, p25=12.5
}

TEST(AggregateTest, EmptyIsZero) {
  const auto stats = aggregate({});
  EXPECT_EQ(stats.reps, 0u);
  EXPECT_DOUBLE_EQ(stats.median, 0.0);
}

TEST(SidecarTest, ParsesWallAndStages) {
  const auto sample = parse_sidecar(kSidecar);
  ASSERT_TRUE(sample.has_value());
  EXPECT_DOUBLE_EQ(sample->wall_ms, 160.441);
  ASSERT_EQ(sample->stage_total_ms.size(), 2u);
  EXPECT_EQ(sample->stage_total_ms[0].first, "study.world");
  EXPECT_DOUBLE_EQ(sample->stage_total_ms[0].second, 5.858);
  EXPECT_EQ(sample->stage_total_ms[1].first, "study.capture");
}

TEST(SidecarTest, RejectsNonSidecars) {
  EXPECT_FALSE(parse_sidecar("not json").has_value());
  EXPECT_FALSE(parse_sidecar("{}").has_value());  // no wall_ms
  EXPECT_FALSE(parse_sidecar(R"({"wall_ms": "fast"})").has_value());
}

TEST(AggregateBenchTest, PerStageStatsAcrossReps) {
  Sample a{100.0, {{"world", 10.0}, {"capture", 80.0}}};
  Sample b{120.0, {{"world", 14.0}, {"capture", 90.0}}};
  Sample c{110.0, {{"world", 12.0}}};  // capture missing from one rep
  const auto bench = aggregate_bench("bench_x", {a, b, c});
  EXPECT_EQ(bench.name, "bench_x");
  EXPECT_EQ(bench.wall.reps, 3u);
  EXPECT_DOUBLE_EQ(bench.wall.median, 110.0);
  ASSERT_EQ(bench.stages.size(), 2u);
  EXPECT_EQ(bench.stages[0].name, "world");
  EXPECT_DOUBLE_EQ(bench.stages[0].stats.median, 12.0);
  EXPECT_EQ(bench.stages[1].name, "capture");
  EXPECT_EQ(bench.stages[1].stats.reps, 2u);
  EXPECT_DOUBLE_EQ(bench.stages[1].stats.median, 85.0);
}

Manifest fixture_manifest() {
  Manifest manifest;
  manifest.tag = "smoke";
  manifest.machine = {4, 120, 2013, "gcc 12.2.0"};
  manifest.reps = 3;
  Sample a{100.0, {{"study.world", 10.0}}};
  Sample b{104.0, {{"study.world", 11.0}}};
  Sample c{102.0, {{"study.world", 10.5}}};
  manifest.benches.push_back(
      aggregate_bench("bench_table1_cloud_share", {a, b, c}));
  return manifest;
}

TEST(ManifestTest, RenderParseRoundTrip) {
  const Manifest manifest = fixture_manifest();
  const auto parsed = parse_manifest(render_manifest(manifest));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->tag, "smoke");
  EXPECT_EQ(parsed->machine.threads, 4u);
  EXPECT_EQ(parsed->machine.domains, 120u);
  EXPECT_EQ(parsed->machine.seed, 2013u);
  EXPECT_EQ(parsed->machine.compiler, "gcc 12.2.0");
  EXPECT_EQ(parsed->reps, 3u);
  ASSERT_EQ(parsed->benches.size(), 1u);
  const auto& bench = parsed->benches[0];
  EXPECT_EQ(bench.name, "bench_table1_cloud_share");
  EXPECT_EQ(bench.wall.reps, 3u);
  EXPECT_DOUBLE_EQ(bench.wall.median, 102.0);
  EXPECT_DOUBLE_EQ(bench.wall.min, 100.0);
  ASSERT_EQ(bench.stages.size(), 1u);
  EXPECT_EQ(bench.stages[0].name, "study.world");
  EXPECT_DOUBLE_EQ(bench.stages[0].stats.median, 10.5);
}

TEST(ManifestTest, RejectsNonManifests) {
  EXPECT_FALSE(parse_manifest("[]").has_value());
  EXPECT_FALSE(parse_manifest(R"({"tag": "x"})").has_value());  // no benches
  EXPECT_FALSE(
      parse_manifest(R"({"benches": [{"name": "b"}]})").has_value());
}

TEST(CheckTest, PassesOnItself) {
  const Manifest manifest = fixture_manifest();
  const auto& bench = manifest.benches[0];
  const auto outcome = check_bench(bench, bench.wall.median, CheckOptions{});
  EXPECT_FALSE(outcome.regressed);
  EXPECT_DOUBLE_EQ(outcome.baseline_ms, outcome.fresh_ms);
}

TEST(CheckTest, FiresOnDoctoredBaseline) {
  // Doctor the baseline median down 50%: the unchanged "fresh" time is
  // now a 2x regression, past the 50% floor.
  Manifest manifest = fixture_manifest();
  BenchStats doctored = manifest.benches[0];
  const double honest_median = doctored.wall.median;
  doctored.wall.median *= 0.5;
  doctored.wall.iqr *= 0.5;
  const auto outcome = check_bench(doctored, honest_median, CheckOptions{});
  EXPECT_TRUE(outcome.regressed);
  EXPECT_GT(outcome.fresh_ms, outcome.limit_ms);
}

TEST(CheckTest, IqrBandWinsOverFloorOnNoisyBenches) {
  BenchStats noisy;
  noisy.name = "bench_noisy";
  noisy.wall = {5, 90.0, 100.0, 40.0};  // IQR band: 3*40/100 = 120%
  CheckOptions options;
  options.floor_pct = 50.0;
  // +100% is within the 120% IQR band even though it exceeds the floor.
  EXPECT_FALSE(check_bench(noisy, 200.0, options).regressed);
  EXPECT_TRUE(check_bench(noisy, 230.0, options).regressed);
}

TEST(CheckTest, ZeroBaselineNeverRegresses) {
  BenchStats empty;
  empty.name = "bench_empty";
  EXPECT_FALSE(check_bench(empty, 100.0, CheckOptions{}).regressed);
}

TEST(FilterTest, SubstringAnyMatch) {
  const auto filters = split_filters("table1,fig5,");
  ASSERT_EQ(filters.size(), 2u);
  EXPECT_TRUE(matches_filter("bench_table1_cloud_share", filters));
  EXPECT_TRUE(matches_filter("bench_fig5_dns_cdf", filters));
  EXPECT_FALSE(matches_filter("bench_table9_regions", filters));
  EXPECT_TRUE(matches_filter("anything", {}));  // empty filter = all
}

}  // namespace
}  // namespace cs::csbench
