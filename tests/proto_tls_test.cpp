#include "proto/tls.h"

#include <gtest/gtest.h>

#include <string>

namespace cs::proto {
namespace {

TEST(Tls, ClientHelloSniRoundTrip) {
  const auto hello = build_client_hello("www.dropbox.com");
  EXPECT_TRUE(looks_like_tls(hello));
  const auto sni = extract_sni(hello);
  ASSERT_TRUE(sni);
  EXPECT_EQ(*sni, "www.dropbox.com");
}

TEST(Tls, CertificateCnRoundTrip) {
  const auto cert = build_certificate("*.dropbox.com");
  const auto cn = extract_certificate_cn(cert);
  ASSERT_TRUE(cn);
  EXPECT_EQ(*cn, "*.dropbox.com");
}

TEST(Tls, CertAfterOtherRecordsStillFound) {
  // Server streams: ServerHello-ish record (we reuse a ClientHello record
  // as an arbitrary non-certificate handshake), then the Certificate.
  auto stream = build_client_hello("ignored.example");
  const auto cert = build_certificate("cn.example.com");
  stream.insert(stream.end(), cert.begin(), cert.end());
  const auto cn = extract_certificate_cn(stream);
  ASSERT_TRUE(cn);
  EXPECT_EQ(*cn, "cn.example.com");
}

TEST(Tls, SniAbsentFromCertificateRecord) {
  EXPECT_FALSE(extract_sni(build_certificate("x.com")));
}

TEST(Tls, CnAbsentFromClientHello) {
  EXPECT_FALSE(extract_certificate_cn(build_client_hello("x.com")));
}

TEST(Tls, NotTlsRejected) {
  const std::string text = "GET / HTTP/1.1\r\n\r\n";
  const std::vector<std::uint8_t> data{text.begin(), text.end()};
  EXPECT_FALSE(looks_like_tls(data));
  EXPECT_FALSE(extract_sni(data));
  EXPECT_FALSE(extract_certificate_cn(data));
}

TEST(Tls, EmptyAndTinyBuffers) {
  EXPECT_FALSE(looks_like_tls({}));
  const std::vector<std::uint8_t> tiny = {0x16, 0x03};
  EXPECT_FALSE(looks_like_tls(tiny));
  EXPECT_FALSE(extract_sni(tiny));
}

TEST(Tls, TruncatedClientHelloRejected) {
  const auto hello = build_client_hello("host.example.com");
  for (std::size_t cut = 5; cut + 5 < hello.size(); cut += 7) {
    const std::span<const std::uint8_t> prefix{hello.data(), cut};
    EXPECT_FALSE(extract_sni(prefix)) << "cut=" << cut;
  }
}

TEST(Tls, LongSniNames) {
  const std::string host(200, 'a');
  const auto sni = extract_sni(build_client_hello(host + ".example.com"));
  ASSERT_TRUE(sni);
  EXPECT_EQ(sni->size(), host.size() + 12);
}

TEST(Tls, VersionGate) {
  auto hello = build_client_hello("x.com");
  hello[1] = 0x02;  // SSLv2-era version in the record layer
  hello[2] = 0x00;
  EXPECT_FALSE(looks_like_tls(hello));
}

}  // namespace
}  // namespace cs::proto
