#include "net/prefix_set.h"

#include <gtest/gtest.h>

#include <string>

namespace cs::net {
namespace {

TEST(PrefixMap, EmptyMatchesNothing) {
  PrefixMap<std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.lookup(Ipv4(1, 2, 3, 4)));
}

TEST(PrefixMap, ExactAndMiss) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("54.224.0.0/11"), "ec2.us-east-1");
  EXPECT_EQ(map.lookup(Ipv4(54, 230, 1, 1)).value_or(""), "ec2.us-east-1");
  EXPECT_FALSE(map.lookup(Ipv4(53, 0, 0, 1)));
}

TEST(PrefixMap, LongestPrefixWins) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("10.0.0.0/8"), "coarse");
  map.insert(*Cidr::parse("10.5.0.0/16"), "fine");
  map.insert(*Cidr::parse("10.5.5.0/24"), "finest");
  EXPECT_EQ(*map.lookup(Ipv4(10, 1, 1, 1)), "coarse");
  EXPECT_EQ(*map.lookup(Ipv4(10, 5, 1, 1)), "fine");
  EXPECT_EQ(*map.lookup(Ipv4(10, 5, 5, 1)), "finest");
}

TEST(PrefixMap, OverwriteSamePrefix) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("10.0.0.0/8"), "old");
  map.insert(*Cidr::parse("10.0.0.0/8"), "new");
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.lookup(Ipv4(10, 1, 1, 1)), "new");
}

TEST(PrefixMap, SlashZeroDefaultRoute) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("0.0.0.0/0"), "default");
  map.insert(*Cidr::parse("10.0.0.0/8"), "ten");
  EXPECT_EQ(*map.lookup(Ipv4(1, 1, 1, 1)), "default");
  EXPECT_EQ(*map.lookup(Ipv4(10, 1, 1, 1)), "ten");
}

TEST(PrefixMap, Slash32HostRoute) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("1.2.3.4/32"), "host");
  EXPECT_EQ(*map.lookup(Ipv4(1, 2, 3, 4)), "host");
  EXPECT_FALSE(map.lookup(Ipv4(1, 2, 3, 5)));
}

TEST(PrefixMap, LookupBlockReturnsCoveringCidr) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("172.16.0.0/12"), "rfc1918");
  const auto m = map.lookup_block(Ipv4(172, 20, 1, 1));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->block.to_string(), "172.16.0.0/12");
  EXPECT_EQ(m->tag, "rfc1918");
}

TEST(PrefixMap, EntriesListsAllBlocks) {
  PrefixMap<int> map;
  map.insert(*Cidr::parse("10.0.0.0/8"), 1);
  map.insert(*Cidr::parse("192.168.0.0/16"), 2);
  map.insert(*Cidr::parse("10.1.0.0/16"), 3);
  const auto entries = map.entries();
  EXPECT_EQ(entries.size(), 3u);
  EXPECT_EQ(map.size(), 3u);
}

TEST(PrefixMap, AdjacentBlocksDoNotBleed) {
  PrefixMap<std::string> map;
  map.insert(*Cidr::parse("10.0.0.0/9"), "low");
  map.insert(*Cidr::parse("10.128.0.0/9"), "high");
  EXPECT_EQ(*map.lookup(Ipv4(10, 127, 255, 255)), "low");
  EXPECT_EQ(*map.lookup(Ipv4(10, 128, 0, 0)), "high");
}

TEST(PrefixSet, MembershipAndCoveringBlock) {
  PrefixSet set;
  set.insert(*Cidr::parse("23.20.0.0/14"));
  EXPECT_TRUE(set.contains(Ipv4(23, 22, 1, 1)));
  EXPECT_FALSE(set.contains(Ipv4(23, 24, 0, 0)));
  const auto block = set.covering_block(Ipv4(23, 21, 0, 1));
  ASSERT_TRUE(block);
  EXPECT_EQ(block->to_string(), "23.20.0.0/14");
  EXPECT_FALSE(set.covering_block(Ipv4(9, 9, 9, 9)));
  EXPECT_EQ(set.size(), 1u);
}

}  // namespace
}  // namespace cs::net
