// The socket client's resilience state machines, exercised as pure
// units: RFC 6298 RTO estimation (including Karn's rule and backoff),
// the retransmit token bucket, the per-server circuit breaker's full
// closed -> open -> half-open cycle, and the chaos profile/link — every
// test deterministic, clock-free, and sleep-free (time is a scripted
// microsecond value).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netio/chaos.h"
#include "netio/resilience.h"

namespace cs::netio {
namespace {

// --- RtoEstimator (RFC 6298) ----------------------------------------------

RtoEstimator::Options wide_band() {
  RtoEstimator::Options options;
  options.initial_us = 100'000;
  options.min_us = 5'000;
  options.max_us = 2'000'000;
  return options;
}

TEST(RtoEstimator, FirstSampleSeedsSrttAndRttvar) {
  RtoEstimator est{wide_band()};
  EXPECT_FALSE(est.seeded());
  EXPECT_EQ(est.rto_us(), 100'000u);
  est.observe_rtt(40'000);
  EXPECT_TRUE(est.seeded());
  // SRTT <- R, RTTVAR <- R/2, RTO <- SRTT + 4*RTTVAR (§2.2).
  EXPECT_DOUBLE_EQ(est.srtt_us(), 40'000.0);
  EXPECT_DOUBLE_EQ(est.rttvar_us(), 20'000.0);
  EXPECT_EQ(est.rto_us(), 120'000u);
}

TEST(RtoEstimator, SubsequentSamplesUseStandardGains) {
  RtoEstimator est{wide_band()};
  est.observe_rtt(40'000);
  est.observe_rtt(80'000);
  // Variance first, from the pre-update SRTT (§2.3):
  //   RTTVAR = 0.75*20000 + 0.25*|40000-80000| = 25000
  //   SRTT   = 0.875*40000 + 0.125*80000       = 45000
  EXPECT_DOUBLE_EQ(est.rttvar_us(), 25'000.0);
  EXPECT_DOUBLE_EQ(est.srtt_us(), 45'000.0);
  EXPECT_EQ(est.rto_us(), 145'000u);
}

TEST(RtoEstimator, RtoClampsToConfiguredBand) {
  RtoEstimator est{wide_band()};
  // A steady stream of tiny identical samples drives RTTVAR toward zero;
  // the floor keeps the timer from becoming hair-triggered.
  for (int i = 0; i < 64; ++i) est.observe_rtt(100);
  EXPECT_EQ(est.rto_us(), 5'000u);
  RtoEstimator slow{wide_band()};
  slow.observe_rtt(5'000'000);  // one pathological sample
  EXPECT_EQ(slow.rto_us(), 2'000'000u);
}

TEST(RtoEstimator, TimeoutDoublesUpToCapWithoutOverflow) {
  RtoEstimator est{wide_band()};
  est.on_timeout();
  EXPECT_EQ(est.rto_us(), 200'000u);
  est.on_timeout();
  EXPECT_EQ(est.rto_us(), 400'000u);
  for (int i = 0; i < 80; ++i) est.on_timeout();  // far past the cap
  EXPECT_EQ(est.rto_us(), 2'000'000u);
}

TEST(RtoEstimator, CleanSampleClearsBackoff) {
  RtoEstimator est{wide_band()};
  est.observe_rtt(40'000);
  est.on_timeout();
  est.on_timeout();
  EXPECT_EQ(est.rto_us(), 480'000u);  // 120000 doubled twice
  // The next clean sample recomputes from SRTT/RTTVAR (§5.7): the
  // backed-off value is gone, not halved or remembered.
  est.observe_rtt(40'000);
  EXPECT_LT(est.rto_us(), 130'000u);
}

TEST(RtoEstimator, KarnExclusionKeepsAmbiguousSamplesOut) {
  // Karn's rule lives in the transport: an exchange that was ever
  // retransmitted yields no sample, because the client cannot tell which
  // transmission the response answered. This pins why: feeding the
  // ambiguous (first-send-to-late-response) measurement would poison the
  // estimator upward, while exclusion leaves it exactly where clean
  // samples put it.
  RtoEstimator excluded{wide_band()};
  RtoEstimator poisoned{wide_band()};
  for (const auto rtt : {20'000u, 22'000u, 21'000u}) {
    excluded.observe_rtt(rtt);
    poisoned.observe_rtt(rtt);
  }
  const auto clean_rto = excluded.rto_us();
  // A retransmitted exchange: the response arrives one full backed-off
  // RTO after the *first* send. The transport feeds neither estimator's
  // on_timeout here — only the sample policy differs.
  poisoned.observe_rtt(clean_rto + 200'000);
  EXPECT_EQ(excluded.rto_us(), clean_rto);
  EXPECT_GT(poisoned.rto_us(), clean_rto);
}

// --- RetryBudget ----------------------------------------------------------

TEST(RetryBudget, StartsFullAndRefusesWhenDry) {
  RetryBudget budget{RetryBudget::Options{0.0, 3.0}};
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // dry: refuse, don't go negative
  EXPECT_FALSE(budget.try_spend());
  EXPECT_DOUBLE_EQ(budget.tokens(), 0.0);
}

TEST(RetryBudget, FirstSendsEarnFractionalCreditUpToCap) {
  RetryBudget budget{RetryBudget::Options{0.25, 2.0}};
  EXPECT_TRUE(budget.try_spend());
  EXPECT_TRUE(budget.try_spend());
  EXPECT_FALSE(budget.try_spend());  // the two-token bucket is dry
  // Four first sends earn exactly one retransmit back.
  for (int i = 0; i < 3; ++i) {
    budget.on_send();
    EXPECT_FALSE(budget.try_spend());
  }
  budget.on_send();
  EXPECT_TRUE(budget.try_spend());
  // And the cap holds: no amount of sending banks more than max_tokens.
  for (int i = 0; i < 100; ++i) budget.on_send();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);
}

// --- CircuitBreaker -------------------------------------------------------

CircuitBreaker::Options quick_breaker() {
  CircuitBreaker::Options options;
  options.failure_threshold = 3;
  options.cooldown_us = 1'000;
  return options;
}

TEST(CircuitBreaker, OpensAtThresholdAndFailsFastUntilCooldown) {
  CircuitBreaker breaker{quick_breaker()};
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(0));
  breaker.on_failure(10);
  breaker.on_failure(20);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(30));  // below threshold: still admitting
  breaker.on_failure(30);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.allow(31));
  EXPECT_FALSE(breaker.allow(1'029));  // cooldown measured from the trip
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbeThenCloses) {
  CircuitBreaker breaker{quick_breaker()};
  for (int i = 0; i < 3; ++i) breaker.on_failure(100);
  EXPECT_TRUE(breaker.allow(1'200));  // cooldown elapsed: the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(1'201));  // probe slot is single-occupancy
  breaker.on_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0u);
  EXPECT_TRUE(breaker.allow(1'202));
}

TEST(CircuitBreaker, FailedProbeReopensImmediately) {
  CircuitBreaker breaker{quick_breaker()};
  for (int i = 0; i < 3; ++i) breaker.on_failure(100);
  EXPECT_TRUE(breaker.allow(1'200));
  // One failure re-opens a half-open breaker — no fresh threshold count.
  breaker.on_failure(1'300);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(1'301));
  // And the new cooldown is measured from the re-open.
  EXPECT_FALSE(breaker.allow(2'200));
  EXPECT_TRUE(breaker.allow(2'400));
}

TEST(CircuitBreaker, AbandonFreesTheProbeSlotWithoutVerdict) {
  CircuitBreaker breaker{quick_breaker()};
  for (int i = 0; i < 3; ++i) breaker.on_failure(100);
  EXPECT_TRUE(breaker.allow(1'200));
  EXPECT_FALSE(breaker.allow(1'201));
  // The probe ended with no verdict (budget refusal, shutdown): the slot
  // frees so the breaker is not wedged awaiting an answer that never
  // comes — but the breaker stays half-open, not closed.
  breaker.on_abandon();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_TRUE(breaker.allow(1'202));
  // on_abandon in other states is a no-op.
  breaker.on_success();
  breaker.on_abandon();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(1'203));
}

// --- ChaosProfile parsing -------------------------------------------------

TEST(ChaosProfile, ParsesFullSpec) {
  const auto profile = ChaosProfile::parse(
      "drop=0.05,dup=0.02,reorder=0.1,delay_us=300,jitter_us=150,"
      "corrupt=0.01,seed=42");
  ASSERT_TRUE(profile.has_value());
  EXPECT_DOUBLE_EQ(profile->drop, 0.05);
  EXPECT_DOUBLE_EQ(profile->dup, 0.02);
  EXPECT_DOUBLE_EQ(profile->reorder, 0.1);
  EXPECT_DOUBLE_EQ(profile->corrupt, 0.01);
  EXPECT_EQ(profile->delay_us, 300u);
  EXPECT_EQ(profile->jitter_us, 150u);
  EXPECT_EQ(profile->seed, 42u);
  EXPECT_TRUE(profile->any());
  EXPECT_FALSE(profile->survivable());  // corrupt > 0
}

TEST(ChaosProfile, SurvivabilityTracksCorruptOnly) {
  const auto lossy = ChaosProfile::parse("drop=1,dup=1,delay_us=5000");
  ASSERT_TRUE(lossy.has_value());
  EXPECT_TRUE(lossy->survivable());
  const auto corrupting = ChaosProfile::parse("corrupt=0.001");
  ASSERT_TRUE(corrupting.has_value());
  EXPECT_FALSE(corrupting->survivable());
}

TEST(ChaosProfile, RejectsMalformedSpecsWholesale) {
  // The same strictness as CS_FAULT: a half-read profile would silently
  // change what a chaos CI run proves.
  EXPECT_FALSE(ChaosProfile::parse("").has_value());
  EXPECT_FALSE(ChaosProfile::parse("drop").has_value());
  EXPECT_FALSE(ChaosProfile::parse("drop=").has_value());
  EXPECT_FALSE(ChaosProfile::parse("drop=0.1,").has_value());   // trailing
  EXPECT_FALSE(ChaosProfile::parse("drop=1.5").has_value());    // range
  EXPECT_FALSE(ChaosProfile::parse("drop=-0.1").has_value());
  EXPECT_FALSE(ChaosProfile::parse("drop=nan").has_value());
  EXPECT_FALSE(ChaosProfile::parse("drop=0.1,drop=0.2").has_value());
  EXPECT_FALSE(ChaosProfile::parse("loss=0.1").has_value());    // unknown
  EXPECT_FALSE(ChaosProfile::parse("delay_us=abc").has_value());
  EXPECT_FALSE(ChaosProfile::parse("delay_us=-1").has_value());
  EXPECT_FALSE(ChaosProfile::parse("drop=0.1 ,dup=0.2").has_value());
}

// --- ChaosLink ------------------------------------------------------------

TEST(ChaosLink, DecisionsAreAPureFunctionOfTheKeyTimeline) {
  // Two links with the same profile must produce identical verdict
  // sequences for the same (direction, key, attempt) timeline, whatever
  // else they decided in between — determinism at any CS_THREADS hangs
  // off this.
  ChaosProfile profile;
  profile.drop = 0.3;
  profile.dup = 0.3;
  profile.reorder = 0.3;
  profile.delay_us = 100;
  profile.jitter_us = 400;
  profile.seed = 7;
  ChaosLink a{profile, 3};
  ChaosLink b{profile, 3};
  // b also decides for unrelated keys first; a's timeline must not care.
  for (std::uint64_t noise = 900; noise < 940; ++noise)
    b.decide(ChaosDirection::kClientToServer, noise, 64);
  for (std::uint64_t key = 1; key <= 32; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      for (const auto dir : {ChaosDirection::kClientToServer,
                             ChaosDirection::kServerToClient}) {
        const auto va = a.decide(dir, key, 64);
        const auto vb = b.decide(dir, key, 64);
        EXPECT_EQ(va.deliver, vb.deliver);
        EXPECT_EQ(va.duplicate, vb.duplicate);
        EXPECT_EQ(va.delay_us, vb.delay_us);
        EXPECT_EQ(va.duplicate_delay_us, vb.duplicate_delay_us);
        EXPECT_EQ(va.corrupt_offset, vb.corrupt_offset);
        EXPECT_EQ(va.corrupt_mask, vb.corrupt_mask);
      }
    }
  }
}

TEST(ChaosLink, SeedChangesTheDecisionStream) {
  ChaosProfile base;
  base.drop = 0.5;
  ChaosProfile reseeded = base;
  reseeded.seed = base.seed ^ 0xFFFF;
  ChaosLink a{base, 8};
  ChaosLink b{reseeded, 8};
  int disagreements = 0;
  for (std::uint64_t key = 1; key <= 64; ++key)
    if (a.decide(ChaosDirection::kClientToServer, key, 64).deliver !=
        b.decide(ChaosDirection::kClientToServer, key, 64).deliver)
      ++disagreements;
  EXPECT_GT(disagreements, 0);
}

TEST(ChaosLink, DropBudgetClampsAtMaxAttemptsMinusOne) {
  // drop=1 wants to kill everything; the budget lets exactly
  // max_attempts-1 datagrams per key vanish (both directions pooled),
  // then force-delivers — so the final round always completes.
  ChaosProfile profile;
  profile.drop = 1.0;
  const unsigned max_attempts = 4;
  ChaosLink link{profile, max_attempts};
  for (std::uint64_t key = 50; key < 58; ++key) {
    unsigned dropped = 0;
    unsigned delivered = 0;
    for (int round = 0; round < 6; ++round) {
      if (link.decide(ChaosDirection::kClientToServer, key, 64).deliver)
        ++delivered;
      else
        ++dropped;
      if (link.decide(ChaosDirection::kServerToClient, key, 64).deliver)
        ++delivered;
      else
        ++dropped;
    }
    EXPECT_EQ(dropped, max_attempts - 1) << "key " << key;
    EXPECT_EQ(delivered, 12 - (max_attempts - 1)) << "key " << key;
  }
}

TEST(ChaosLink, CorruptionPicksOneInBoundsBit) {
  ChaosProfile profile;
  profile.corrupt = 1.0;
  ChaosLink link{profile, 3};
  for (std::uint64_t key = 1; key <= 64; ++key) {
    const auto verdict =
        link.decide(ChaosDirection::kClientToServer, key, 17);
    EXPECT_TRUE(verdict.deliver);
    ASSERT_NE(verdict.corrupt_mask, 0);
    // Exactly one bit, and an offset inside the frame.
    EXPECT_EQ(verdict.corrupt_mask & (verdict.corrupt_mask - 1), 0);
    EXPECT_LT(verdict.corrupt_offset, 17u);
  }
  // A zero-length frame cannot be corrupted, only delivered.
  const auto empty = link.decide(ChaosDirection::kClientToServer, 999, 0);
  EXPECT_TRUE(empty.deliver);
  EXPECT_EQ(empty.corrupt_mask, 0);
}

TEST(ChaosLink, DelayStaysInsideTheConfiguredBand) {
  ChaosProfile profile;
  profile.delay_us = 300;
  profile.jitter_us = 150;
  profile.reorder = 1.0;
  ChaosLink link{profile, 3};
  const std::uint64_t holdback = 2 * (300 + 150) + 200;
  for (std::uint64_t key = 1; key <= 32; ++key) {
    const auto verdict =
        link.decide(ChaosDirection::kServerToClient, key, 64);
    EXPECT_GE(verdict.delay_us, 300u + holdback);
    EXPECT_LE(verdict.delay_us, 300u + 150u + holdback);
    EXPECT_LE(verdict.delay_us, link.max_latency_us());
  }
}

}  // namespace
}  // namespace cs::netio
