#include "cslint/lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

// Fixture-driven coverage of cs-lint: for every check a true-positive, a
// clean look-alike, and a suppressed variant, plus the JSON shape and a
// self-check that the shipped tree lints clean. Fixtures are in-memory
// Sources, so the scanner/check registry is exercised without touching
// the filesystem.
namespace {

using cs::lint::Finding;
using cs::lint::Source;

std::vector<Finding> run(std::vector<Source> sources) {
  return cs::lint::lint(sources);
}

std::size_t count_check(const std::vector<Finding>& findings,
                        std::string_view check, bool suppressed = false) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [&](const Finding& f) {
        return f.check == check && f.suppressed == suppressed;
      }));
}

// The suppression marker, assembled so this file never contains it
// verbatim (the shipped tree must stay free of stray allows).
std::string allow(const std::string& args) {
  return std::string("// cslint:") + "allow(" + args + ")";
}

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

TEST(CslintScanner, IgnoresCommentsStringsAndRawStrings) {
  const Source source{"src/dns/fixture.cpp", R"cpp(
// std::random_device in a line comment is fine
/* getenv("HOME") in a block comment is fine */
const char* const a = "std::random_device getenv srand";
const char* const b = R"(time( clock( std::cout))";
constexpr char c = '"';
const char* const d = "after an escaped quote: \" srand(1) ";
)cpp"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintScanner, DigitSeparatorIsNotACharLiteral) {
  // A 1'000'000 separator must not open a char literal and swallow the
  // rest of the file (which would hide the violation on the next line).
  const Source source{"src/dns/fixture.cpp",
                      "int f() {\n  int n = 1'000'000;\n  return n + rand();\n}\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "D1");
  EXPECT_EQ(findings[0].line, 3);
}

// ---------------------------------------------------------------------------
// D1 determinism
// ---------------------------------------------------------------------------

TEST(CslintD1, FlagsAmbientRandomnessAndClocks) {
  const Source source{"src/synth/fixture.cpp", R"cpp(
#include <random>
std::mt19937 make() { return std::mt19937{std::random_device{}()}; }
long now() { return time(nullptr); }
void seed() { srand(42); }
long tick() { return std::chrono::steady_clock::now().time_since_epoch().count(); }
)cpp"};
  const auto findings = run({source});
  EXPECT_EQ(count_check(findings, "D1"), 4u);
}

TEST(CslintD1, CleanSeededCodeAndMemberCallsPass) {
  const Source source{"src/synth/fixture.cpp", R"cpp(
#include "util/rng.h"
double draw(cs::util::Rng& rng) { return rng.uniform(); }
struct Sim { long time(int) { return 0; } };
long use(Sim& s) { return s.time(1); }   // member call, not ::time
int lifetime(int x) { return x; }        // 'time' substring, distinct token
)cpp"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintD1, ObsSnapAndRngAreAllowlisted) {
  const std::string body =
      "long f() { return std::chrono::steady_clock::now()"
      ".time_since_epoch().count(); }\n";
  EXPECT_TRUE(run({{"src/obs/fixture.cpp", body}}).empty());
  EXPECT_TRUE(run({{"src/snap/fixture.cpp", body}}).empty());
  EXPECT_FALSE(run({{"src/core/fixture.cpp", body}}).empty());
}

TEST(CslintD1, SuppressionWithReasonCountsButPasses) {
  const Source source{"src/core/fixture.cpp",
                      allow("D1") + ": timing metric only, not in output\n" +
                          "long f() { return std::chrono::steady_clock::now()"
                          ".time_since_epoch().count(); }\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].reason, "timing metric only, not in output");
  EXPECT_EQ(cs::lint::count_unsuppressed(findings), 0u);
}

// ---------------------------------------------------------------------------
// E1 env hygiene
// ---------------------------------------------------------------------------

TEST(CslintE1, FlagsGetenvOutsideUtilEnv) {
  const Source source{"src/dns/fixture.cpp",
                      "const char* home() { return std::getenv(\"HOME\"); }\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "E1");
}

TEST(CslintE1, UtilEnvCppIsTheOneHome) {
  const Source source{"src/util/env.cpp",
                      "const char* get() { return std::getenv(\"CS_TRACE\"); }\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintE1, SuppressedGetenvCounts) {
  const Source source{
      "src/dns/fixture.cpp",
      "const char* tz() { return ::getenv(\"TZ\"); }  " + allow("E1") +
          ": not a CS_ knob\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// L1 logging
// ---------------------------------------------------------------------------

TEST(CslintL1, FlagsDirectOutputInLibraryCode) {
  const Source source{"src/analysis/fixture.cpp", R"cpp(
#include <iostream>
void report() { std::cout << "done\n"; }
void warn() { std::cerr << "oops\n"; }
void c_style() { printf("%d\n", 1); }
void c_stderr() { fprintf(stderr, "oops\n"); }
)cpp"};
  EXPECT_EQ(count_check(run({source}), "L1"), 4u);
}

TEST(CslintL1, ExamplesBenchTestsMayPrint) {
  const std::string body =
      "#include <iostream>\nvoid f() { std::cout << 1; }\n";
  EXPECT_TRUE(run({{"examples/fixture.cpp", body}}).empty());
  EXPECT_TRUE(run({{"bench/fixture.cpp", body}}).empty());
  EXPECT_TRUE(run({{"tests/fixture.cpp", body}}).empty());
}

TEST(CslintL1, FileDirectedFprintfIsFine) {
  const Source source{"src/core/fixture.cpp",
                      "void dump(std::FILE* f) { fprintf(f, \"x\"); }\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintL1, SuppressedSinkCounts) {
  const Source source{"src/obs/fixture.cpp",
                      allow("L1") + ": the log sink itself\n" +
                          "void sink() { fprintf(stderr, \"line\"); }\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// C1 shared state
// ---------------------------------------------------------------------------

TEST(CslintC1, FlagsMutableNamespaceScopeState) {
  const Source source{"src/carto/fixture.cpp", R"cpp(
namespace cs::carto {
int g_call_count = 0;
namespace { double g_last; }
}
)cpp"};
  EXPECT_EQ(count_check(run({source}), "C1"), 2u);
}

TEST(CslintC1, ConstAtomicMutexAndLocalsPass) {
  const Source source{"src/carto/fixture.cpp", R"cpp(
#include <atomic>
#include <mutex>
namespace cs::carto {
constexpr int kLimit = 8;
const char* const kName = "carto";
std::atomic<int> g_hits{0};
std::mutex g_lock;
int bump() { static int local = 0; return ++local; }
void touch() { int x = 0; (void)x; }
}
)cpp"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintC1, FlagsMutableClassStatics) {
  const Source source{"src/carto/fixture.cpp", R"cpp(
struct Estimator {
  static int instances_;          // mutable class-static: flagged
  static constexpr int kMax = 4;  // constant: fine
  int per_object_ = 0;            // instance state: fine
};
)cpp"};
  const auto findings = run({source});
  ASSERT_EQ(count_check(findings, "C1"), 1u);
  EXPECT_NE(findings[0].message.find("instances_"), std::string::npos);
}

TEST(CslintC1, FunctionsAndTypesAreNotState) {
  const Source source{"src/carto/fixture.cpp", R"cpp(
namespace cs::carto {
struct Point;
using Row = int;
int score(int x);
int score(int x) { return x; }
template <typename T> T id(T v) { return v; }
extern int g_elsewhere;
}
)cpp"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintC1, SuppressedThreadLocalCounts) {
  const Source source{"src/exec/fixture.cpp",
                      "thread_local int tls_depth = 0;  " + allow("C1") +
                          ": per-thread cursor, never shared\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// K1 knob registry
// ---------------------------------------------------------------------------

// A one-entry fixture registry (the doc header is why entries start at a
// known line: this one's entry is line 2).
const char* const kFixtureRegistry =
    "// fixture registry\n"
    "CS_KNOB(kFixtureKnob, \"CS_FIXTURE_KNOB\", flag, \"0\", \"fixture\")\n";

TEST(CslintK1, UnregisteredKnobIsFlaggedAtFirstReference) {
  const auto findings = run({
      {"src/core/fixture.cpp",
       "bool on() { return env_text(\"CS_UNREGISTERED\").has_value(); }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"src/core/other.cpp",
       "bool f() { return env_text(\"CS_FIXTURE_KNOB\").has_value(); }\n"},
      {"README.md", "`CS_FIXTURE_KNOB=1` documented.\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "K1");
  EXPECT_EQ(findings[0].file, "src/core/fixture.cpp");
  EXPECT_NE(findings[0].message.find("CS_UNREGISTERED"), std::string::npos);
  EXPECT_NE(findings[0].message.find("not registered"), std::string::npos);
}

TEST(CslintK1, DeadKnobIsFlaggedInTheRegistry) {
  const auto findings = run({
      {"src/core/fixture.cpp", "int f() { return 0; }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"README.md", "`CS_FIXTURE_KNOB=1` documented.\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "K1");
  EXPECT_EQ(findings[0].file, "src/util/knobs.def");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("dead knob"), std::string::npos);
}

TEST(CslintK1, EnumIdReferenceKeepsAKnobAlive) {
  const auto findings = run({
      {"src/core/fixture.cpp",
       "bool on() { return env_text(util::Knob::kFixtureKnob).has_value(); }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"README.md", "`CS_FIXTURE_KNOB=1` documented.\n"},
  });
  EXPECT_TRUE(findings.empty());
}

TEST(CslintK1, RegisteredButUndocumentedKnobIsFlagged) {
  const auto findings = run({
      {"src/core/fixture.cpp",
       "bool on() { return env_text(\"CS_FIXTURE_KNOB\").has_value(); }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"README.md", "no knobs documented\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "K1");
  EXPECT_EQ(findings[0].file, "src/util/knobs.def");
  EXPECT_NE(findings[0].message.find("README.md"), std::string::npos);
}

TEST(CslintK1, DocsMentioningAnUnregisteredKnobAreFlagged) {
  const auto findings = run({
      {"src/core/fixture.cpp",
       "bool f() { return env_text(\"CS_FIXTURE_KNOB\").has_value(); }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"README.md",
       "`CS_FIXTURE_KNOB=1` documented.\nSet `CS_REMOVED_KNOB=1` too.\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "K1");
  EXPECT_EQ(findings[0].file, "README.md");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(CslintK1, MacroDefinesAndPrefixMentionsAreExempt) {
  const auto findings = run({
      {"src/util/fixture.h",
       "#pragma once\n"
       "#define CS_FIXTURE_MACRO(x) x\n"
       "// tune the CS_NETIO_ family of knobs\n"
       "int f(int v) { return CS_FIXTURE_MACRO(v); }\n"
       "struct CS_Mixed {};\n"},
      {"src/core/fixture.cpp",
       "bool f() { return env_text(\"CS_FIXTURE_KNOB\").has_value(); }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"README.md",
       "`CS_FIXTURE_KNOB=1` documented; CS_FIXTURE_MACRO is a macro.\n"},
  });
  EXPECT_TRUE(findings.empty());
}

TEST(CslintK1, MalformedRegistryEntryIsFlagged) {
  const auto findings = run({
      {"src/util/knobs.def", "CS_KNOB(broken entry with no name)\n"},
      {"README.md", "no knobs\n"},
  });
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "K1");
  EXPECT_NE(findings[0].message.find("malformed"), std::string::npos);
}

TEST(CslintK1, TestsMayUseFixtureKnobs) {
  const auto findings = run({
      {"tests/fixture.cpp",
       "bool on() { return env_text(\"CS_ONLY_IN_TESTS\").has_value(); }\n"},
      {"src/util/knobs.def", kFixtureRegistry},
      {"src/core/fixture.cpp",
       "bool f() { return env_text(\"CS_FIXTURE_KNOB\").has_value(); }\n"},
      {"README.md", "`CS_FIXTURE_KNOB=1` documented.\n"},
  });
  EXPECT_TRUE(findings.empty());
}

TEST(CslintK1, WithoutARegistryTheCheckIsOff) {
  // Fixture corpora without a knobs.def (most tests above predate K1)
  // must not drown in registry findings.
  const auto findings = run({
      {"src/core/fixture.cpp",
       "bool on() { return env_text(\"CS_FIXTURE_KNOB\").has_value(); }\n"},
      {"README.md", "nothing documented\n"},
  });
  EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------------
// G1 module layering
// ---------------------------------------------------------------------------

TEST(CslintG1, BackEdgeUpTheLayerDagIsFlagged) {
  const Source source{"src/obs/fixture.h",
                      "#pragma once\n#include \"exec/thread_pool.h\"\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "G1");
  EXPECT_EQ(findings[0].line, 2);
  EXPECT_NE(findings[0].message.find("climbs"), std::string::npos);
}

TEST(CslintG1, DownwardAndSameModuleIncludesPass) {
  const Source source{"src/netio/fixture.cpp",
                      "#include \"netio/reactor.h\"\n"
                      "#include \"analysis/snapshot.h\"\n"
                      "#include \"util/sync.h\"\n"
                      "#include <vector>\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintG1, AcyclicSameRankEdgesPass) {
  // cloud -> dns is a sanctioned same-rank edge (both rank 5, no cycle).
  const Source source{"src/cloud/fixture.h",
                      "#pragma once\n#include \"dns/transport.h\"\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintG1, SameRankModuleCycleIsFlagged) {
  const auto findings = run({
      {"src/cloud/a.h", "#pragma once\n#include \"dns/b.h\"\n"},
      {"src/dns/b.h", "#pragma once\n#include \"cloud/a.h\"\n"},
  });
  // Both same-rank edges sit on the cycle, and the file-level cycle is
  // reported once on top.
  EXPECT_GE(count_check(findings, "G1"), 3u);
  bool names_modules = false;
  for (const auto& f : findings)
    if (f.message.find("cloud") != std::string::npos &&
        f.message.find("dns") != std::string::npos)
      names_modules = true;
  EXPECT_TRUE(names_modules);
}

TEST(CslintG1, HeaderCycleWithinAModuleIsFlagged) {
  const auto findings = run({
      {"src/net/a.h", "#pragma once\n#include \"net/b.h\"\n"},
      {"src/net/b.h", "#pragma once\n#include \"net/a.h\"\n"},
  });
  ASSERT_EQ(count_check(findings, "G1"), 1u);
  const auto it = std::find_if(findings.begin(), findings.end(),
                               [](const Finding& f) { return f.check == "G1"; });
  EXPECT_NE(it->message.find("include cycle"), std::string::npos);
}

TEST(CslintG1, SuppressedBackEdgeCounts) {
  const Source source{"src/obs/fixture.h",
                      "#pragma once\n#include \"exec/thread_pool.h\"  " +
                          allow("G1") + ": transitional, tracked in DESIGN\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// B1 reactor hygiene
// ---------------------------------------------------------------------------

TEST(CslintB1, SleepAnywhereInNetioIsFlagged) {
  const Source source{"src/netio/fixture.cpp",
                      "#include <thread>\n"
                      "void nap() { usleep(100); }\n"
                      "void doze() { std::this_thread::sleep_for(x); }\n"};
  EXPECT_EQ(count_check(run({source}), "B1"), 2u);
}

TEST(CslintB1, LockInInlineReactorCallbackIsFlagged) {
  const Source source{"src/netio/fixture.cpp",
                      "void Transport::arm() {\n"
                      "  reactor_.run_after(10, [this] {\n"
                      "    util::LockGuard lock{mutex_};\n"
                      "    resend();\n"
                      "  });\n"
                      "}\n"};
  const auto findings = run({source});
  ASSERT_EQ(count_check(findings, "B1"), 1u);
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_NE(findings[0].message.find("run_after"), std::string::npos);
}

TEST(CslintB1, BlockingSyscallAndBareLockInCallbackAreFlagged) {
  const Source source{"src/netio/fixture.cpp",
                      "void Server::watch(int fd) {\n"
                      "  reactor_.add_fd(fd, [this, fd] {\n"
                      "    mutex_.lock();\n"
                      "    recv(fd, buf_, sizeof(buf_), 0);\n"
                      "  });\n"
                      "}\n"};
  EXPECT_EQ(count_check(run({source}), "B1"), 2u);
}

TEST(CslintB1, LocksOutsideCallbacksAndNamedHandlersPass) {
  const Source source{"src/netio/fixture.cpp",
                      "void Transport::exchange() {\n"
                      "  util::LockGuard lock{mutex_};  // caller thread\n"
                      "}\n"
                      "void Transport::arm() {\n"
                      "  reactor_.run_after(10, retransmit_cb_);\n"
                      "}\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintB1, OtherModulesMaySleep) {
  const Source source{"src/snap/fixture.cpp",
                      "void backoff() { std::this_thread::sleep_for(d); }\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintB1, SuppressedCallbackLockCounts) {
  const Source source{"src/netio/fixture.cpp",
                      "void Transport::arm() {\n"
                      "  reactor_.add_fd(fd_, [this] {\n"
                      "    " + allow("B1") + ": try_lock only, never blocks\n"
                      "    mutex_.lock();\n"
                      "  });\n"
                      "}\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
}

// ---------------------------------------------------------------------------
// S1 header hygiene
// ---------------------------------------------------------------------------

TEST(CslintS1, MissingPragmaOnceAndUsingNamespace) {
  const Source source{"src/net/fixture.h",
                      "using namespace std;\nint f();\n"};
  const auto findings = run({source});
  EXPECT_EQ(count_check(findings, "S1"), 2u);
}

TEST(CslintS1, CleanHeaderPasses) {
  const Source source{"src/net/fixture.h",
                      "#pragma once\nnamespace cs::net { int f(); }\n"};
  EXPECT_TRUE(run({source}).empty());
}

TEST(CslintS1, CppFilesNeedNoPragma) {
  const Source source{"src/net/fixture.cpp", "int f() { return 0; }\n"};
  EXPECT_TRUE(run({source}).empty());
}

// ---------------------------------------------------------------------------
// A1 suppression hygiene
// ---------------------------------------------------------------------------

TEST(CslintA1, ReasonlessAllowDoesNotSuppress) {
  const Source source{"src/dns/fixture.cpp",
                      "int f() { return rand(); }  " + allow("D1") + "\n"};
  const auto findings = run({source});
  EXPECT_EQ(count_check(findings, "D1"), 1u);  // still unsuppressed
  EXPECT_EQ(count_check(findings, "A1"), 1u);  // and the allow is flagged
  EXPECT_EQ(cs::lint::count_unsuppressed(findings), 2u);
}

TEST(CslintA1, UnknownCheckIdIsFlagged) {
  const Source source{"src/dns/fixture.cpp",
                      allow("Z9") + ": no such check\nint f() { return 0; }\n"};
  const auto findings = run({source});
  ASSERT_EQ(count_check(findings, "A1"), 1u);
}

TEST(CslintA1, UnusedAllowIsFlagged) {
  const Source source{"src/dns/fixture.cpp",
                      "int f() { return 0; }  " + allow("D1") +
                          ": nothing here\n"};
  const auto findings = run({source});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "A1");
  EXPECT_NE(findings[0].message.find("unused"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Output shapes
// ---------------------------------------------------------------------------

TEST(CslintOutput, TextRendersFileLineCheckMessage) {
  const auto findings =
      run({{"src/dns/fixture.cpp", "int f() { return rand(); }\n"}});
  const std::string text = cs::lint::render_text(findings);
  EXPECT_NE(text.find("src/dns/fixture.cpp:1: [D1] "), std::string::npos);
  EXPECT_NE(text.find("1 unsuppressed"), std::string::npos);
}

TEST(CslintOutput, JsonShapeAndEscaping) {
  const auto findings = run({
      {"src/dns/fixture.cpp",
       "int f() { return rand(); }  " + allow("D1") +
           ": has \"quotes\" in reason\n"},
  });
  const std::string json = cs::lint::render_json(findings);
  EXPECT_NE(json.find("\"findings\":["), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/dns/fixture.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"D1\""), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\":true"), std::string::npos);
  EXPECT_NE(json.find("has \\\"quotes\\\" in reason"), std::string::npos);
  EXPECT_NE(json.find("\"total\":1,\"suppressed\":1,\"unsuppressed\":0"),
            std::string::npos);
}

TEST(CslintOutput, GithubFormatEmitsWorkflowCommands) {
  const auto findings = run({
      {"src/dns/fixture.cpp",
       "int f() { return rand(); }\n"
       "int g() { return rand(); }  " + allow("D1") + ": fixture\n"},
  });
  const std::string gh = cs::lint::render_github(findings);
  EXPECT_NE(gh.find("::error file=src/dns/fixture.cpp,line=1,"
                    "title=cslint D1::"),
            std::string::npos);
  // Suppressed findings never become annotations.
  EXPECT_EQ(gh.find("line=2,"), std::string::npos);
  EXPECT_NE(gh.find("1 unsuppressed"), std::string::npos);
  // The message body must escape the characters GitHub treats as
  // command delimiters.
  const std::string escaped = cs::lint::render_github(
      {{.file = "src/a.cpp", .line = 1, .check = "D1",
        .message = "100% broken\nsecond line"}});
  EXPECT_NE(escaped.find("100%25 broken%0Asecond line"), std::string::npos);
}

TEST(CslintOutput, FindingsAreSortedByFileLineCheck) {
  const auto findings = run({
      {"src/zz/fixture.cpp", "int f() { return rand(); }\n"},
      {"src/aa/fixture.cpp",
       "int f() { return rand(); }\nint g() { return rand(); }\n"},
  });
  ASSERT_EQ(findings.size(), 3u);
  EXPECT_EQ(findings[0].file, "src/aa/fixture.cpp");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].file, "src/zz/fixture.cpp");
}

// ---------------------------------------------------------------------------
// Self-check: the shipped tree lints clean
// ---------------------------------------------------------------------------

TEST(CslintSelfCheck, ShippedTreeHasNoUnsuppressedFindings) {
  std::vector<Source> sources;
  std::string error;
  ASSERT_TRUE(cs::lint::collect_sources(
      CSLINT_SOURCE_DIR, {"src", "tools", "examples", "bench", "tests"},
      &sources, &error))
      << error;
  ASSERT_GT(sources.size(), 100u);  // the walk actually found the tree
  const auto findings = cs::lint::lint(sources);
  std::string report;
  for (const auto& f : findings)
    if (!f.suppressed)
      report += f.file + ":" + std::to_string(f.line) + " [" + f.check +
                "] " + f.message + "\n";
  EXPECT_EQ(cs::lint::count_unsuppressed(findings), 0u) << report;
  // The intentional, annotated exceptions stay visible as suppressed
  // findings rather than vanishing.
  EXPECT_GE(findings.size(), 4u);
}

}  // namespace
