#include "analysis/dataset.h"

#include <gtest/gtest.h>

#include "analysis/cloud_usage.h"
#include "dns/wordlist.h"

namespace cs::analysis {
namespace {

class DatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig config;
    config.domain_count = 250;
    world_ = new synth::World{config};
    DatasetBuilder builder{*world_, {.lookup_vantages = 3}};
    dataset_ = new AlexaDataset{builder.build()};
    ranges_ = new CloudRanges{world_->ec2(), world_->azure()};
  }
  static void TearDownTestSuite() {
    delete ranges_;
    delete dataset_;
    delete world_;
  }

  static synth::World* world_;
  static AlexaDataset* dataset_;
  static CloudRanges* ranges_;
};

synth::World* DatasetTest::world_ = nullptr;
AlexaDataset* DatasetTest::dataset_ = nullptr;
CloudRanges* DatasetTest::ranges_ = nullptr;

TEST_F(DatasetTest, EveryDomainProbed) {
  EXPECT_EQ(dataset_->domains.size(), world_->domains().size());
  EXPECT_GT(dataset_->dns_queries_spent, 10000u);
}

TEST_F(DatasetTest, NoFalsePositives) {
  // Every dataset subdomain must be genuinely cloud-using per truth.
  for (const auto& obs : dataset_->cloud_subdomains) {
    const auto* truth = world_->subdomain_truth(obs.name);
    ASSERT_NE(truth, nullptr) << obs.name.to_string();
    EXPECT_TRUE(truth->on_cloud) << obs.name.to_string();
  }
}

TEST_F(DatasetTest, RecallOnDiscoverableSubdomains) {
  std::set<std::string> found;
  for (const auto& obs : dataset_->cloud_subdomains)
    found.insert(obs.name.to_string());
  std::size_t discoverable = 0, hit = 0;
  for (const auto* truth : world_->cloud_subdomains()) {
    const auto* domain = world_->domain(truth->name.parent().to_string());
    const bool axfr = domain && domain->axfr_open;
    if (!truth->discoverable && !axfr) continue;
    ++discoverable;
    if (found.contains(truth->name.to_string())) ++hit;
  }
  ASSERT_GT(discoverable, 50u);
  EXPECT_GT(static_cast<double>(hit) / discoverable, 0.95);
}

TEST_F(DatasetTest, LowerBoundProperty) {
  // Undiscoverable names of closed domains must be absent.
  std::set<std::string> found;
  for (const auto& obs : dataset_->cloud_subdomains)
    found.insert(obs.name.to_string());
  for (const auto& domain : world_->domains()) {
    if (domain.axfr_open) continue;
    for (const auto& sub : domain.subdomains)
      if (!sub.discoverable)
        EXPECT_FALSE(found.contains(sub.name.to_string()))
            << sub.name.to_string();
  }
}

TEST_F(DatasetTest, AxfrFlagsMatchWorldTruth) {
  for (std::size_t i = 0; i < dataset_->domains.size(); ++i) {
    const auto& obs = dataset_->domains[i];
    const auto* truth = world_->domain(obs.name.to_string());
    ASSERT_NE(truth, nullptr);
    // AXFR succeeds iff the domain is open (and its servers reachable).
    EXPECT_EQ(obs.axfr_succeeded, truth->axfr_open) << obs.name.to_string();
  }
}

TEST_F(DatasetTest, AddressClassificationFlagsConsistent) {
  for (const auto& obs : dataset_->cloud_subdomains) {
    bool ec2 = false, azure = false, cdn = false, other = false;
    for (const auto addr : obs.addresses) {
      const auto c = ranges_->classify(addr);
      ec2 |= c.kind == IpClassification::Kind::kEc2;
      azure |= c.kind == IpClassification::Kind::kAzure;
      cdn |= c.kind == IpClassification::Kind::kCloudFront;
      other |= c.kind == IpClassification::Kind::kOther;
    }
    EXPECT_EQ(obs.has_ec2_address, ec2);
    EXPECT_EQ(obs.has_azure_address, azure);
    EXPECT_EQ(obs.has_cloudfront_address, cdn);
    EXPECT_EQ(obs.has_other_address, other);
  }
}

TEST_F(DatasetTest, DirectARecordMatchesVmTruth) {
  for (const auto& obs : dataset_->cloud_subdomains) {
    const auto* truth = world_->subdomain_truth(obs.name);
    if (!truth) continue;
    if (truth->front_end == synth::FrontEnd::kVm)
      EXPECT_TRUE(obs.direct_a_record) << obs.name.to_string();
    if (truth->front_end == synth::FrontEnd::kElb ||
        truth->front_end == synth::FrontEnd::kHeroku)
      EXPECT_FALSE(obs.direct_a_record) << obs.name.to_string();
  }
}

TEST_F(DatasetTest, NameServersCollected) {
  std::size_t with_ns = 0;
  for (const auto& obs : dataset_->cloud_subdomains) {
    if (obs.name_servers.empty()) continue;
    ++with_ns;
    for (const auto& [name, addrs] : obs.name_servers)
      EXPECT_FALSE(addrs.empty()) << name.to_string();
  }
  EXPECT_GT(with_ns, dataset_->cloud_subdomains.size() / 2);
}

TEST_F(DatasetTest, MarqueeSubdomainsAllFound) {
  std::map<std::string, std::size_t> per_domain;
  for (const auto& obs : dataset_->cloud_subdomains)
    ++per_domain[obs.domain.to_string()];
  EXPECT_EQ(per_domain["pinterest.com"], 18u);
  EXPECT_EQ(per_domain["msn.com"], 89u);
  EXPECT_EQ(per_domain["live.com"], 18u);
  EXPECT_EQ(per_domain["amazon.com"], 2u);
}

TEST_F(DatasetTest, CloudUsageBreakdownShape) {
  const auto report = analyze_cloud_usage(*dataset_);
  EXPECT_EQ(report.subdomains.total, dataset_->cloud_subdomains.size());
  EXPECT_GT(report.domains.ec2_total(), report.domains.azure_total());
  // The buckets partition the totals.
  EXPECT_EQ(report.domains.ec2_only + report.domains.ec2_plus_other +
                report.domains.azure_only + report.domains.azure_plus_other +
                report.domains.ec2_plus_azure,
            report.domains.total);
  // Rank skew toward the top (paper: 42.3% vs 16.2%).
  EXPECT_GT(report.top_quartile_fraction, report.bottom_quartile_fraction);
}

TEST_F(DatasetTest, TopDomainsAreRankSorted) {
  const auto report = analyze_cloud_usage(*dataset_);
  ASSERT_FALSE(report.top_ec2_domains.empty());
  for (std::size_t i = 1; i < report.top_ec2_domains.size(); ++i)
    EXPECT_LT(report.top_ec2_domains[i - 1].rank,
              report.top_ec2_domains[i].rank);
  // Azure list headed by live.com (rank 7).
  ASSERT_FALSE(report.top_azure_domains.empty());
  EXPECT_EQ(report.top_azure_domains[0].domain, "live.com");
}

TEST_F(DatasetTest, WwwIsTheTopPrefix) {
  const auto report = analyze_cloud_usage(*dataset_);
  ASSERT_FALSE(report.top_prefixes.empty());
  EXPECT_EQ(report.top_prefixes[0].first, "www");
}

/// Field-by-field dataset equality (the structs carry no operator==; the
/// snapshot-byte comparison lives in snap_codec_test, which links snap).
void expect_same_dataset(const AlexaDataset& a, const AlexaDataset& b,
                         bool compare_records = true) {
  EXPECT_EQ(a.dns_queries_spent, b.dns_queries_spent);
  ASSERT_EQ(a.domains.size(), b.domains.size());
  ASSERT_EQ(a.cloud_subdomains.size(), b.cloud_subdomains.size());
  for (std::size_t i = 0; i < a.domains.size(); ++i) {
    const auto& da = a.domains[i];
    const auto& db = b.domains[i];
    EXPECT_EQ(da.name, db.name) << i;
    EXPECT_EQ(da.rank, db.rank) << i;
    EXPECT_EQ(da.axfr_succeeded, db.axfr_succeeded) << i;
    EXPECT_EQ(da.subdomains_probed, db.subdomains_probed) << i;
    EXPECT_EQ(da.cloud_subdomains, db.cloud_subdomains) << i;
    EXPECT_EQ(da.other_only_subdomains, db.other_only_subdomains) << i;
    EXPECT_EQ(da.unresolved_subdomains, db.unresolved_subdomains) << i;
    EXPECT_TRUE(da.failed_lookups == db.failed_lookups) << i;
  }
  for (std::size_t i = 0; i < a.cloud_subdomains.size(); ++i) {
    const auto& sa = a.cloud_subdomains[i];
    const auto& sb = b.cloud_subdomains[i];
    EXPECT_EQ(sa.name, sb.name) << i;
    EXPECT_EQ(sa.domain, sb.domain) << i;
    EXPECT_EQ(sa.domain_rank, sb.domain_rank) << i;
    if (compare_records) EXPECT_EQ(sa.records.size(), sb.records.size()) << i;
    EXPECT_EQ(sa.addresses, sb.addresses) << i;
    EXPECT_EQ(sa.cnames, sb.cnames) << i;
    EXPECT_EQ(sa.direct_a_record, sb.direct_a_record) << i;
    EXPECT_EQ(sa.has_other_address, sb.has_other_address) << i;
    EXPECT_EQ(sa.has_ec2_address, sb.has_ec2_address) << i;
    EXPECT_EQ(sa.has_azure_address, sb.has_azure_address) << i;
    EXPECT_EQ(sa.has_cloudfront_address, sb.has_cloudfront_address) << i;
    EXPECT_EQ(sa.name_servers, sb.name_servers) << i;
  }
}

// Chunking is a memory knob, never a result knob: per-domain probes are
// independent and merge in rank order, so any chunk size reproduces the
// single-chunk dataset exactly.
TEST_F(DatasetTest, ChunkSizeNeverChangesTheDataset) {
  DatasetBuilder builder{*world_, {.lookup_vantages = 3, .chunk_domains = 17}};
  EXPECT_EQ(builder.chunk_domains(), 17u);
  expect_same_dataset(builder.build(), *dataset_);
}

TEST_F(DatasetTest, OnChunkReportsMonotoneCheckpoints) {
  std::vector<std::size_t> boundaries;
  DatasetBuilder::Options options;
  options.lookup_vantages = 3;
  options.chunk_domains = 100;
  options.on_chunk = [&](const AlexaDataset& partial,
                         std::size_t next_domain) {
    // The partial holds exactly the domains probed so far.
    EXPECT_EQ(partial.domains.size(), next_domain);
    boundaries.push_back(next_domain);
  };
  DatasetBuilder builder{*world_, options};
  const auto dataset = builder.build();
  expect_same_dataset(dataset, *dataset_);
  ASSERT_GE(boundaries.size(), 2u);
  for (std::size_t i = 1; i < boundaries.size(); ++i)
    EXPECT_LT(boundaries[i - 1], boundaries[i]);
  // Completion itself is never a checkpoint — the stage snapshot covers it.
  EXPECT_LT(boundaries.back(), dataset.domains.size());
}

// Crash-resume: continuing from a mid-build checkpoint must land on the
// same dataset as an uninterrupted build.
TEST_F(DatasetTest, ResumeFromPartialMatchesFullBuild) {
  DatasetBuilder::Options options;
  options.lookup_vantages = 3;
  options.chunk_domains = 100;
  DatasetBuilder::Resume checkpoint;
  options.on_chunk = [&](const AlexaDataset& partial,
                         std::size_t next_domain) {
    if (checkpoint.next_domain == 0) {  // keep the first checkpoint only
      checkpoint.dataset = partial;
      checkpoint.next_domain = next_domain;
    }
  };
  DatasetBuilder{*world_, options}.build();
  ASSERT_GT(checkpoint.next_domain, 0u);
  ASSERT_LT(checkpoint.next_domain, world_->domains().size());

  DatasetBuilder resumed{*world_, {.lookup_vantages = 3}};
  expect_same_dataset(resumed.build(std::move(checkpoint)), *dataset_);
}

// keep_records=false is the paper-scale memory switch: it may drop ONLY
// the forensic record chains; every analysis-visible field stays put.
TEST_F(DatasetTest, KeepRecordsFalseDropsOnlyRecords) {
  DatasetBuilder builder{*world_,
                         {.lookup_vantages = 3, .keep_records = false}};
  const auto trimmed = builder.build();
  std::size_t retained_records = 0;
  for (const auto& obs : trimmed.cloud_subdomains)
    retained_records += obs.records.size();
  EXPECT_EQ(retained_records, 0u);
  std::size_t baseline_records = 0;
  for (const auto& obs : dataset_->cloud_subdomains)
    baseline_records += obs.records.size();
  EXPECT_GT(baseline_records, 0u);  // the default build does keep them
  expect_same_dataset(trimmed, *dataset_, /*compare_records=*/false);
}

}  // namespace
}  // namespace cs::analysis
