#include "dns/zone.h"

#include <gtest/gtest.h>

namespace cs::dns {
namespace {

SoaRecord test_soa() {
  SoaRecord soa;
  soa.mname = Name::must_parse("ns1.example.com");
  soa.rname = Name::must_parse("hostmaster.example.com");
  soa.serial = 1;
  return soa;
}

Zone make_zone() {
  Zone zone{Name::must_parse("example.com"), test_soa()};
  zone.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                             net::Ipv4(192, 0, 2, 1)));
  zone.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                             net::Ipv4(192, 0, 2, 2)));
  zone.add(ResourceRecord::cname(Name::must_parse("m.example.com"),
                                 Name::must_parse("www.example.com")));
  zone.add(ResourceRecord::ns(Name::must_parse("sub.example.com"),
                              Name::must_parse("ns.sub.example.com")));
  zone.add(ResourceRecord::a(Name::must_parse("ns.sub.example.com"),
                             net::Ipv4(192, 0, 2, 53)));
  return zone;
}

TEST(Zone, ApexSoaPresent) {
  const auto zone = make_zone();
  const auto soa = zone.find(zone.origin(), RrType::kSoa);
  ASSERT_EQ(soa.size(), 1u);
  EXPECT_EQ(std::get<SoaRecord>(soa[0].data).serial, 1u);
}

TEST(Zone, FindByType) {
  const auto zone = make_zone();
  const auto a = zone.find(Name::must_parse("www.example.com"), RrType::kA);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(zone.find(Name::must_parse("www.example.com"), RrType::kCname)
                  .empty());
}

TEST(Zone, FindAnyReturnsEverythingAtName) {
  const auto zone = make_zone();
  EXPECT_EQ(zone.find(Name::must_parse("www.example.com"), RrType::kAny)
                .size(),
            2u);
}

TEST(Zone, RejectsOutOfZoneRecords) {
  auto zone = make_zone();
  EXPECT_FALSE(zone.add(ResourceRecord::a(Name::must_parse("other.org"),
                                          net::Ipv4(1, 1, 1, 1))));
}

TEST(Zone, CnameExclusivity) {
  auto zone = make_zone();
  // Other data beside an existing CNAME is rejected.
  EXPECT_FALSE(zone.add(ResourceRecord::a(Name::must_parse("m.example.com"),
                                          net::Ipv4(2, 2, 2, 2))));
  // CNAME beside existing A data is rejected.
  EXPECT_FALSE(zone.add(ResourceRecord::cname(
      Name::must_parse("www.example.com"), Name::must_parse("x.example.com"))));
}

TEST(Zone, HasName) {
  const auto zone = make_zone();
  EXPECT_TRUE(zone.has_name(Name::must_parse("www.example.com")));
  EXPECT_FALSE(zone.has_name(Name::must_parse("missing.example.com")));
}

TEST(Zone, DelegationCutFindsNsOwner) {
  const auto zone = make_zone();
  const auto cut =
      zone.delegation_cut(Name::must_parse("deep.host.sub.example.com"));
  ASSERT_TRUE(cut);
  EXPECT_EQ(cut->to_string(), "sub.example.com");
  EXPECT_FALSE(zone.delegation_cut(Name::must_parse("www.example.com")));
}

TEST(Zone, DelegationCutIgnoresApexNs) {
  Zone zone{Name::must_parse("example.com"), test_soa()};
  zone.add(ResourceRecord::ns(Name::must_parse("example.com"),
                              Name::must_parse("ns1.example.com")));
  // Apex NS records are not a delegation away from this zone.
  const auto cut = zone.delegation_cut(Name::must_parse("www.example.com"));
  // delegation_cut may return the apex; the server filters that case — but
  // the Zone contract here reports only non-apex cuts for names below apex.
  if (cut) {
    EXPECT_EQ(*cut, zone.origin());
  }
}

TEST(Zone, AxfrFramedBySoa) {
  const auto zone = make_zone();
  const auto records = zone.axfr();
  ASSERT_GE(records.size(), 3u);
  EXPECT_EQ(records.front().type(), RrType::kSoa);
  EXPECT_EQ(records.back().type(), RrType::kSoa);
  // All five added records appear between the SOA frames.
  EXPECT_EQ(records.size(), 2u + 5u);
}

TEST(Zone, RecordCountTracksAdds) {
  auto zone = make_zone();
  const auto before = zone.record_count();
  zone.add(ResourceRecord::a(Name::must_parse("new.example.com"),
                             net::Ipv4(3, 3, 3, 3)));
  EXPECT_EQ(zone.record_count(), before + 1);
}

TEST(Zone, NamesInCanonicalOrder) {
  const auto zone = make_zone();
  const auto names = zone.names();
  for (std::size_t i = 1; i < names.size(); ++i)
    EXPECT_TRUE(Name::canonical_less(names[i - 1], names[i]));
}

}  // namespace
}  // namespace cs::dns
