#include "internet/vantage.h"

#include <gtest/gtest.h>

#include <set>

namespace cs::internet {
namespace {

TEST(Vantage, CountHonoredAndCapped) {
  EXPECT_EQ(planetlab_vantages(80).size(), 80u);
  EXPECT_EQ(planetlab_vantages(200).size(), 200u);
  EXPECT_EQ(planetlab_vantages(500).size(), 200u);
  EXPECT_TRUE(planetlab_vantages(0).empty());
}

TEST(Vantage, NamesAndAddressesUnique) {
  const auto vs = planetlab_vantages(200);
  std::set<std::string> names;
  std::set<std::uint32_t> addrs;
  for (const auto& v : vs) {
    EXPECT_TRUE(names.insert(v.name).second) << v.name;
    EXPECT_TRUE(addrs.insert(v.address.value()).second) << v.name;
  }
}

TEST(Vantage, GeographicSpreadCoversContinents) {
  const auto vs = planetlab_vantages(80);
  std::set<std::string> continents;
  for (const auto& v : vs) continents.insert(v.location.continent);
  EXPECT_TRUE(continents.contains("NA"));
  EXPECT_TRUE(continents.contains("EU"));
  EXPECT_TRUE(continents.contains("AS"));
  EXPECT_TRUE(continents.contains("SA"));
  EXPECT_TRUE(continents.contains("OC"));
}

TEST(Vantage, NorthAmericaSkew) {
  const auto vs = planetlab_vantages(80);
  int na = 0;
  for (const auto& v : vs)
    if (v.location.continent == "NA") ++na;
  EXPECT_GT(na, 20);  // PlanetLab's US-heavy footprint
}

TEST(Vantage, Deterministic) {
  const auto a = planetlab_vantages(50);
  const auto b = planetlab_vantages(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].address, b[i].address);
  }
}

TEST(Vantage, NamedLookup) {
  const auto boulder = vantage_named("boulder");
  EXPECT_NE(boulder.name.find("boulder"), std::string::npos);
  EXPECT_NEAR(boulder.location.point.lat_deg, 40.0, 0.5);
  EXPECT_THROW(vantage_named("atlantis"), std::invalid_argument);
}

TEST(Vantage, UniversityVantageIsMadison) {
  const auto uw = university_vantage();
  EXPECT_EQ(uw.location.country, "US");
  EXPECT_NEAR(uw.location.point.lat_deg, 43.07, 0.1);
}

TEST(Vantage, CitiesShareAsAcrossSites) {
  const auto vs = planetlab_vantages(100);  // two sites in 50 cities
  // Node i and node i+50 are the same city, different site, same AS.
  EXPECT_EQ(vs[0].asn, vs[50].asn);
  EXPECT_NE(vs[0].name, vs[50].name);
}

}  // namespace
}  // namespace cs::internet
