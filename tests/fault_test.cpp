#include "fault/fault.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace cs::fault {
namespace {

TEST(FaultSpec, ParsesFullSpec) {
  const auto spec = Spec::parse(
      "loss=0.02,timeout=0.01,truncate=0.005,servfail=0.01,corrupt=0.5,"
      "vantage_drop=0.25,seed=42");
  ASSERT_TRUE(spec);
  EXPECT_DOUBLE_EQ(spec->loss, 0.02);
  EXPECT_DOUBLE_EQ(spec->timeout, 0.01);
  EXPECT_DOUBLE_EQ(spec->truncate, 0.005);
  EXPECT_DOUBLE_EQ(spec->servfail, 0.01);
  EXPECT_DOUBLE_EQ(spec->corrupt, 0.5);
  EXPECT_DOUBLE_EQ(spec->vantage_drop, 0.25);
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_TRUE(spec->any());
}

TEST(FaultSpec, ParsesPartialSpec) {
  const auto spec = Spec::parse("loss=1");
  ASSERT_TRUE(spec);
  EXPECT_DOUBLE_EQ(spec->loss, 1.0);
  EXPECT_DOUBLE_EQ(spec->timeout, 0.0);
  EXPECT_TRUE(spec->any());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  // Strict in the env_size/CS_THREADS style: any defect rejects the whole
  // spec rather than silently injecting different faults than asked for.
  EXPECT_FALSE(Spec::parse(""));
  EXPECT_FALSE(Spec::parse("loss"));                 // no value
  EXPECT_FALSE(Spec::parse("loss=0.02x"));           // trailing garbage
  EXPECT_FALSE(Spec::parse("loss=1.5"));             // rate above 1
  EXPECT_FALSE(Spec::parse("loss=-0.1"));            // negative rate
  EXPECT_FALSE(Spec::parse("loss=nan"));             // non-finite
  EXPECT_FALSE(Spec::parse("drop=0.1"));             // unknown key
  EXPECT_FALSE(Spec::parse("loss=0.1,loss=0.2"));    // duplicate key
  EXPECT_FALSE(Spec::parse("loss=0.1,"));            // empty trailing entry
  EXPECT_FALSE(Spec::parse("seed=12beef"));          // non-decimal seed
}

TEST(FaultPlan, DecisionsAreDeterministic) {
  Spec spec;
  spec.loss = 0.3;
  spec.seed = 7;
  const Plan a{spec};
  const Plan b{spec};
  for (std::uint64_t key = 0; key < 2000; ++key)
    ASSERT_EQ(a.decide(Kind::kLoss, key), b.decide(Kind::kLoss, key)) << key;
}

TEST(FaultPlan, DecisionRateTracksSpec) {
  Spec spec;
  spec.loss = 0.2;
  spec.seed = 11;
  const Plan plan{spec};
  std::size_t hits = 0;
  constexpr std::size_t kTrials = 20000;
  for (std::uint64_t key = 0; key < kTrials; ++key)
    hits += plan.decide(Kind::kLoss, key);
  const double observed = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(observed, 0.2, 0.02);
}

TEST(FaultPlan, KindsDrawFromIndependentStreams) {
  Spec spec;
  spec.loss = 0.5;
  spec.timeout = 0.5;
  spec.seed = 3;
  const Plan plan{spec};
  std::size_t agree = 0;
  constexpr std::size_t kTrials = 4000;
  for (std::uint64_t key = 0; key < kTrials; ++key)
    agree += plan.decide(Kind::kLoss, key) == plan.decide(Kind::kTimeout, key);
  // Correlated streams would agree (or disagree) nearly always.
  EXPECT_GT(agree, kTrials / 3);
  EXPECT_LT(agree, 2 * kTrials / 3);
}

TEST(FaultPlan, SeedChangesDecisions) {
  Spec a, b;
  a.loss = b.loss = 0.5;
  a.seed = 1;
  b.seed = 2;
  const Plan plan_a{a}, plan_b{b};
  std::size_t differ = 0;
  for (std::uint64_t key = 0; key < 1000; ++key)
    differ += plan_a.decide(Kind::kLoss, key) != plan_b.decide(Kind::kLoss, key);
  EXPECT_GT(differ, 0u);
}

TEST(FaultPlan, ZeroRateNeverFires) {
  Spec spec;  // all rates zero
  const Plan plan{spec};
  for (std::uint64_t key = 0; key < 1000; ++key)
    ASSERT_FALSE(plan.decide(Kind::kServFail, key));
}

TEST(FaultPlan, StreamIsIndependentOfDecisionDraw) {
  Spec spec;
  spec.truncate = 1.0;
  const Plan plan{spec};
  auto rng_a = plan.stream(Kind::kTruncate, 99);
  auto rng_b = plan.stream(Kind::kTruncate, 99);
  EXPECT_EQ(rng_a(), rng_b());  // same key -> same stream
  auto rng_c = plan.stream(Kind::kTruncate, 100);
  auto rng_d = plan.stream(Kind::kTruncate, 99);
  EXPECT_NE(rng_c(), rng_d());  // different key -> different stream
}

TEST(FaultExchangeKey, SensitiveToAllInputs) {
  const std::vector<std::uint8_t> query = {0x12, 0x34, 0x01, 0x00};
  std::vector<std::uint8_t> other_query = query;
  other_query[0] ^= 1;
  const auto base = exchange_key(1, 2, query);
  EXPECT_EQ(base, exchange_key(1, 2, query));
  EXPECT_NE(base, exchange_key(3, 2, query));
  EXPECT_NE(base, exchange_key(1, 3, query));
  EXPECT_NE(base, exchange_key(1, 2, other_query));
}

TEST(FaultGlobalPlan, ScopedPlanInstallsAndRestores) {
  // CS_FAULT is unset in the test environment, so the default is off.
  EXPECT_EQ(active_plan(), nullptr);
  {
    ScopedPlan scoped{"loss=0.5,seed=9"};
    ASSERT_NE(active_plan(), nullptr);
    EXPECT_DOUBLE_EQ(active_plan()->spec().loss, 0.5);
    {
      Spec inner;
      inner.timeout = 0.25;
      ScopedPlan nested{inner};
      ASSERT_NE(active_plan(), nullptr);
      EXPECT_DOUBLE_EQ(active_plan()->spec().timeout, 0.25);
    }
    ASSERT_NE(active_plan(), nullptr);
    EXPECT_DOUBLE_EQ(active_plan()->spec().loss, 0.5);
  }
  EXPECT_EQ(active_plan(), nullptr);
}

TEST(FaultGlobalPlan, ScopedPlanRejectsMalformedSpec) {
  EXPECT_THROW(ScopedPlan{"bogus"}, std::invalid_argument);
}

}  // namespace
}  // namespace cs::fault
