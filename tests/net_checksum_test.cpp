#include "net/checksum.h"

#include <gtest/gtest.h>

#include <vector>

namespace cs::net {
namespace {

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum({}), 0xFFFF);
}

TEST(Checksum, Rfc1071WorkedExample) {
  // RFC 1071 example bytes: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2,
  // checksum = ~0xddf2 = 0x220d.
  const std::vector<std::uint8_t> data = {0x00, 0x01, 0xf2, 0x03,
                                          0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  const std::vector<std::uint8_t> odd = {0x12, 0x34, 0x56};
  const std::vector<std::uint8_t> padded = {0x12, 0x34, 0x56, 0x00};
  EXPECT_EQ(internet_checksum(odd), internet_checksum(padded));
}

TEST(Checksum, InsertingChecksumYieldsZeroVerification) {
  // A packet whose checksum field contains the computed checksum verifies
  // to zero — the standard receiver-side property.
  std::vector<std::uint8_t> header = {0x45, 0x00, 0x00, 0x28, 0x1c, 0x46,
                                      0x40, 0x00, 0x40, 0x06, 0x00, 0x00,
                                      0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8,
                                      0x00, 0xc7};
  const std::uint16_t sum = internet_checksum(header);
  header[10] = static_cast<std::uint8_t>(sum >> 8);
  header[11] = static_cast<std::uint8_t>(sum & 0xff);
  // Re-summing with the checksum in place folds to zero (all-ones before
  // complement).
  std::uint32_t acc = 0;
  for (std::size_t i = 0; i < header.size(); i += 2)
    acc += (std::uint32_t{header[i]} << 8) | header[i + 1];
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  EXPECT_EQ(acc, 0xffffu);
}

TEST(Checksum, TransportChecksumIncludesPseudoHeader) {
  const std::vector<std::uint8_t> segment = {0x00, 0x50, 0xc0, 0x01,
                                             0x00, 0x00, 0x00, 0x00};
  const auto a = transport_checksum(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 6,
                                    segment);
  const auto b = transport_checksum(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 3), 6,
                                    segment);
  EXPECT_NE(a, b);  // destination address participates
  const auto c = transport_checksum(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2), 17,
                                    segment);
  EXPECT_NE(a, c);  // protocol participates
}

TEST(Checksum, TransportChecksumDeterministic) {
  const std::vector<std::uint8_t> segment = {1, 2, 3, 4, 5};
  const auto a = transport_checksum(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 6,
                                    segment);
  const auto b = transport_checksum(Ipv4(1, 1, 1, 1), Ipv4(2, 2, 2, 2), 6,
                                    segment);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace cs::net
