#include "dns/name.h"

#include <gtest/gtest.h>

#include <string>

namespace cs::dns {
namespace {

TEST(Name, ParseBasic) {
  const auto n = Name::parse("www.example.com");
  ASSERT_TRUE(n);
  EXPECT_EQ(n->label_count(), 3u);
  EXPECT_EQ(n->to_string(), "www.example.com");
  EXPECT_EQ(n->leftmost(), "www");
}

TEST(Name, ParseIsCaseInsensitive) {
  EXPECT_EQ(Name::must_parse("WWW.Example.COM"),
            Name::must_parse("www.example.com"));
}

TEST(Name, TrailingDotAccepted) {
  EXPECT_EQ(Name::must_parse("example.com."),
            Name::must_parse("example.com"));
}

TEST(Name, RootForms) {
  const auto root = Name::parse(".");
  ASSERT_TRUE(root);
  EXPECT_TRUE(root->is_root());
  EXPECT_EQ(root->to_string(), ".");
  EXPECT_EQ(Name{}.to_string(), ".");
}

TEST(Name, RejectsInvalid) {
  EXPECT_FALSE(Name::parse(""));
  EXPECT_FALSE(Name::parse("a..b"));
  EXPECT_FALSE(Name::parse("exa mple.com"));
  EXPECT_FALSE(Name::parse(std::string(64, 'a') + ".com"));  // label > 63
  // Total wire length > 255.
  std::string big;
  for (int i = 0; i < 5; ++i) big += std::string(60, 'x') + ".";
  big += "com";
  EXPECT_FALSE(Name::parse(big));
}

TEST(Name, MustParseThrows) {
  EXPECT_THROW(Name::must_parse("bad..name"), std::invalid_argument);
  EXPECT_NO_THROW(Name::must_parse("good.name"));
}

TEST(Name, ParentWalk) {
  auto n = Name::must_parse("a.b.c.com");
  n = n.parent();
  EXPECT_EQ(n.to_string(), "b.c.com");
  n = n.parent();
  n = n.parent();
  EXPECT_EQ(n.to_string(), "com");
  n = n.parent();
  EXPECT_TRUE(n.is_root());
  EXPECT_TRUE(n.parent().is_root());
}

TEST(Name, Child) {
  const auto base = Name::must_parse("example.com");
  const auto www = base.child("www");
  ASSERT_TRUE(www);
  EXPECT_EQ(www->to_string(), "www.example.com");
  EXPECT_FALSE(base.child("bad label"));
  EXPECT_FALSE(base.child(""));
}

TEST(Name, SubdomainOf) {
  const auto apex = Name::must_parse("example.com");
  EXPECT_TRUE(Name::must_parse("www.example.com").is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(apex));
  EXPECT_TRUE(apex.is_subdomain_of(Name{}));  // everything under root
  EXPECT_FALSE(Name::must_parse("example.org").is_subdomain_of(apex));
  // The classic trap: notexample.com is NOT a subdomain of example.com.
  EXPECT_FALSE(Name::must_parse("notexample.com").is_subdomain_of(apex));
  EXPECT_FALSE(apex.is_subdomain_of(Name::must_parse("www.example.com")));
}

TEST(Name, WireLength) {
  EXPECT_EQ(Name{}.wire_length(), 1u);
  // 3www7example3com0 = 1+3 + 1+7 + 1+3 + 1 = 17.
  EXPECT_EQ(Name::must_parse("www.example.com").wire_length(), 17u);
}

TEST(Name, CanonicalOrdering) {
  const auto a = Name::must_parse("a.example.com");
  const auto b = Name::must_parse("b.example.com");
  const auto apex = Name::must_parse("example.com");
  EXPECT_TRUE(Name::canonical_less(apex, a));  // parent sorts before child
  EXPECT_TRUE(Name::canonical_less(a, b));
  EXPECT_FALSE(Name::canonical_less(b, a));
  EXPECT_FALSE(Name::canonical_less(a, a));
  // Different TLD dominates.
  EXPECT_TRUE(Name::canonical_less(Name::must_parse("z.com"),
                                   Name::must_parse("a.net")));
}

TEST(Name, HashConsistentWithEquality) {
  const NameHash h;
  EXPECT_EQ(h(Name::must_parse("Foo.COM")), h(Name::must_parse("foo.com")));
  EXPECT_NE(h(Name::must_parse("foo.com")), h(Name::must_parse("bar.com")));
}

TEST(Name, UnderscoreAndDigitsAllowed) {
  EXPECT_TRUE(Name::parse("_dmarc.example.com"));
  EXPECT_TRUE(Name::parse("ns1.route53.aws"));
  EXPECT_TRUE(Name::parse("163.com"));
}

}  // namespace
}  // namespace cs::dns
