#include "proto/http.h"

#include <gtest/gtest.h>

#include <string>

namespace cs::proto {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return {text.begin(), text.end()};
}

TEST(Http, ParseSimpleRequest) {
  const auto data = bytes_of(
      "GET /index.html HTTP/1.1\r\nHost: www.dropbox.com\r\n"
      "User-Agent: test\r\n\r\n");
  std::size_t offset = 0;
  const auto req = parse_request(data, offset);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/index.html");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->host().value_or(""), "www.dropbox.com");
  EXPECT_EQ(offset, data.size());
}

TEST(Http, HostCaseAndPortNormalized) {
  const auto data =
      bytes_of("GET / HTTP/1.1\r\nHoSt: WWW.Example.COM:8080\r\n\r\n");
  std::size_t offset = 0;
  const auto req = parse_request(data, offset);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->host().value_or(""), "www.example.com");
}

TEST(Http, MissingHostIsNullopt) {
  const auto data = bytes_of("GET / HTTP/1.1\r\nAccept: */*\r\n\r\n");
  std::size_t offset = 0;
  const auto req = parse_request(data, offset);
  ASSERT_TRUE(req);
  EXPECT_FALSE(req->host());
}

TEST(Http, IncompleteHeadRejected) {
  const auto data = bytes_of("GET / HTTP/1.1\r\nHost: x\r\n");  // no blank
  std::size_t offset = 0;
  EXPECT_FALSE(parse_request(data, offset));
  EXPECT_EQ(offset, 0u);
}

TEST(Http, NonHttpRejected) {
  const auto data = bytes_of("\x16\x03\x01random tls bytes\r\n\r\n");
  std::size_t offset = 0;
  EXPECT_FALSE(parse_request(data, offset));
}

TEST(Http, ParseResponseWithBody) {
  const auto data = bytes_of(
      "HTTP/1.1 200 OK\r\nContent-Type: text/html; charset=utf-8\r\n"
      "Content-Length: 5\r\n\r\nhello");
  std::size_t offset = 0;
  const auto resp = parse_response(data, offset);
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->reason, "OK");
  EXPECT_EQ(resp->content_type().value_or(""), "text/html");
  EXPECT_EQ(resp->content_length().value_or(0), 5u);
  EXPECT_EQ(offset, data.size());
}

TEST(Http, PipelinedResponses) {
  std::string text;
  text += "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n"
          "Content-Length: 3\r\n\r\nabc";
  text += "HTTP/1.1 404 Not Found\r\nContent-Type: image/png\r\n"
          "Content-Length: 0\r\n\r\n";
  const auto responses = parse_responses(bytes_of(text));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].status, 200);
  EXPECT_EQ(responses[1].status, 404);
  EXPECT_EQ(responses[1].content_type().value_or(""), "image/png");
}

TEST(Http, TruncatedBodyConsumesToEnd) {
  const auto data = bytes_of(
      "HTTP/1.1 200 OK\r\nContent-Length: 1000000\r\n\r\npartial");
  std::size_t offset = 0;
  const auto resp = parse_response(data, offset);
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->content_length().value_or(0), 1000000u);
  EXPECT_EQ(offset, data.size());
}

TEST(Http, BadStatusRejected) {
  for (const auto* line :
       {"HTTP/1.1 XX OK\r\n\r\n", "HTTP/1.1 99 Low\r\n\r\n",
        "HTTP/1.1 600 High\r\n\r\n", "NOTHTTP 200 OK\r\n\r\n"}) {
    std::size_t offset = 0;
    EXPECT_FALSE(parse_response(bytes_of(line), offset)) << line;
  }
}

TEST(Http, InvalidContentLengthIsNullopt) {
  const auto data =
      bytes_of("HTTP/1.1 200 OK\r\nContent-Length: 12x\r\n\r\n");
  std::size_t offset = 0;
  const auto resp = parse_response(data, offset);
  ASSERT_TRUE(resp);
  EXPECT_FALSE(resp->content_length());
}

TEST(Http, PipelinedRequests) {
  std::string text;
  text += "GET /a HTTP/1.1\r\nHost: a.com\r\n\r\n";
  text += "GET /b HTTP/1.1\r\nHost: b.com\r\n\r\n";
  const auto requests = parse_requests(bytes_of(text));
  ASSERT_EQ(requests.size(), 2u);
  EXPECT_EQ(requests[0].host().value_or(""), "a.com");
  EXPECT_EQ(requests[1].host().value_or(""), "b.com");
}

TEST(Http, BuildRequestParsesBack) {
  const auto data = build_request("GET", "cdn.pinterest.com", "/img/1.jpg");
  std::size_t offset = 0;
  const auto req = parse_request(data, offset);
  ASSERT_TRUE(req);
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/img/1.jpg");
  EXPECT_EQ(req->host().value_or(""), "cdn.pinterest.com");
}

TEST(Http, BuildResponseParsesBackWithLogicalLength) {
  // 1 MB logical body, 64-byte emitted body.
  const auto data = build_response(200, "application/pdf", 1 << 20, 64);
  std::size_t offset = 0;
  const auto resp = parse_response(data, offset);
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->content_type().value_or(""), "application/pdf");
  EXPECT_EQ(resp->content_length().value_or(0), 1u << 20);
  EXPECT_LT(data.size(), 1024u);
}

TEST(Http, HeaderLookupFirstMatchWins) {
  const auto data = bytes_of(
      "HTTP/1.1 200 OK\r\nX-Dup: first\r\nX-Dup: second\r\n\r\n");
  std::size_t offset = 0;
  const auto resp = parse_response(data, offset);
  ASSERT_TRUE(resp);
  EXPECT_EQ(resp->header("x-dup").value_or(""), "first");
}

}  // namespace
}  // namespace cs::proto
