#include "synth/world.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "dns/resolver.h"

namespace cs::synth {
namespace {

/// One shared small world; building is the expensive part.
class WorldTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig config;
    config.domain_count = 300;
    world_ = new World{config};
  }
  static void TearDownTestSuite() {
    delete world_;
    world_ = nullptr;
  }

  static World* world_;
};

World* WorldTest::world_ = nullptr;

TEST_F(WorldTest, UniverseSizeMatchesConfig) {
  EXPECT_EQ(world_->domains().size(), 300u);
  // Ranks are 1..N in order.
  for (std::size_t i = 0; i < world_->domains().size(); ++i)
    EXPECT_EQ(world_->domains()[i].rank, i + 1);
}

TEST_F(WorldTest, MarqueeDomainsPlantedAtTheirRanks) {
  const auto* pinterest = world_->domain("pinterest.com");
  ASSERT_NE(pinterest, nullptr);
  EXPECT_EQ(pinterest->rank, 35u);
  const auto* live = world_->domain("live.com");
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(live->rank, 7u);
  EXPECT_EQ(world_->domains()[34].name.to_string(), "pinterest.com");
}

TEST_F(WorldTest, MarqueeDeploymentShapes) {
  const auto* pinterest = world_->domain("pinterest.com");
  std::size_t cloud = 0, vm = 0;
  for (const auto& s : pinterest->subdomains) {
    if (s.on_cloud) ++cloud;
    if (s.front_end == FrontEnd::kVm) ++vm;
  }
  EXPECT_EQ(cloud, 18u);
  EXPECT_EQ(vm, 18u);

  const auto* msn = world_->domain("msn.com");
  std::size_t msn_cloud = 0;
  std::set<std::string> msn_regions;
  for (const auto& s : msn->subdomains)
    if (s.on_cloud) {
      ++msn_cloud;
      msn_regions.insert(s.regions.begin(), s.regions.end());
    }
  EXPECT_EQ(msn_cloud, 89u);
  EXPECT_EQ(msn_regions.size(), 5u);
}

TEST_F(WorldTest, CloudAdoptionInPlausibleBand) {
  std::size_t cloud_domains = 0;
  for (const auto& d : world_->domains())
    if (d.cloud_using()) ++cloud_domains;
  // adoption_scale=2 -> ~8%; allow a wide band for a 300-domain sample.
  EXPECT_GT(cloud_domains, 10u);
  EXPECT_LT(cloud_domains, 80u);
}

TEST_F(WorldTest, Ec2DominatesProviderChoiceOutsideMarquees) {
  // Marquee domains (msn.com's 89 Azure subdomains especially) distort
  // small universes; the generated population must still be EC2-heavy.
  std::size_t ec2 = 0, azure = 0;
  for (const auto& d : world_->domains()) {
    if (d.name.to_string().find("site") == std::string::npos) continue;
    for (const auto& s : d.subdomains) {
      if (!s.on_cloud) continue;
      if (s.provider == cloud::ProviderKind::kEc2)
        ++ec2;
      else
        ++azure;
    }
  }
  EXPECT_GT(ec2, azure * 3);  // paper: 99.1% vs 0.9% of subdomains
}

TEST_F(WorldTest, TruthIndexFindsEverySubdomain) {
  for (const auto& d : world_->domains())
    for (const auto& s : d.subdomains) {
      const auto* truth = world_->subdomain_truth(s.name);
      ASSERT_NE(truth, nullptr) << s.name.to_string();
      EXPECT_EQ(truth->front_end, s.front_end);
    }
  EXPECT_EQ(world_->subdomain_truth(dns::Name::must_parse("no.such.name")),
            nullptr);
}

TEST_F(WorldTest, EveryCloudSubdomainResolvesToItsFrontIps) {
  auto resolver = world_->make_resolver(net::Ipv4(199, 16, 0, 10));
  std::size_t checked = 0;
  for (const auto* s : world_->cloud_subdomains()) {
    if (checked >= 60) break;  // resolution is cheap but keep tests snappy
    ++checked;
    const auto result = resolver.resolve(s->name, dns::RrType::kA);
    ASSERT_TRUE(result.ok()) << s->name.to_string();
    const auto addrs = result.addresses();
    ASSERT_FALSE(addrs.empty()) << s->name.to_string();
    // Every truth front IP must be resolvable evidence.
    for (const auto expected : s->front_ips)
      EXPECT_NE(std::find(addrs.begin(), addrs.end(), expected), addrs.end())
          << s->name.to_string();
  }
  EXPECT_EQ(checked, 60u);
}

TEST_F(WorldTest, FrontEndDnsShapeMatchesTruth) {
  auto resolver = world_->make_resolver(net::Ipv4(199, 16, 0, 10));
  for (const auto* s : world_->cloud_subdomains()) {
    const auto result = resolver.resolve(s->name, dns::RrType::kA);
    if (!result.ok()) continue;
    const auto chain = result.cname_chain();
    switch (s->front_end) {
      case FrontEnd::kVm:
        EXPECT_TRUE(chain.empty()) << s->name.to_string();
        break;
      case FrontEnd::kElb:
        ASSERT_FALSE(chain.empty());
        EXPECT_NE(chain[0].to_string().find("elb.amazonaws.com"),
                  std::string::npos);
        break;
      case FrontEnd::kHeroku:
        ASSERT_FALSE(chain.empty());
        EXPECT_NE(chain[0].to_string().find("heroku"), std::string::npos);
        break;
      case FrontEnd::kBeanstalk:
        ASSERT_FALSE(chain.empty());
        EXPECT_NE(chain[0].to_string().find("elasticbeanstalk"),
                  std::string::npos);
        break;
      default:
        break;
    }
  }
}

TEST_F(WorldTest, ZoneTruthConsistentWithProvider) {
  for (const auto* s : world_->cloud_subdomains()) {
    if (s->provider != cloud::ProviderKind::kEc2) continue;
    for (const auto ip : s->front_ips) {
      const auto zone = world_->ec2().zone_of_public_ip(ip);
      if (zone) EXPECT_TRUE(s->zones.contains(*zone)) << s->name.to_string();
    }
  }
}

TEST_F(WorldTest, RegionsRecordedMatchAddressRanges) {
  for (const auto* s : world_->cloud_subdomains()) {
    if (s->front_end == FrontEnd::kCdnOnly) continue;
    const auto& provider = s->provider == cloud::ProviderKind::kEc2
                               ? world_->ec2()
                               : world_->azure();
    for (const auto ip : s->front_ips) {
      const auto region = provider.region_of(ip);
      if (!region) continue;  // hybrid extra address
      EXPECT_NE(std::find(s->regions.begin(), s->regions.end(), *region),
                s->regions.end())
          << s->name.to_string();
    }
  }
}

TEST_F(WorldTest, AxfrOpenDomainsTransferable) {
  auto resolver = world_->make_resolver(net::Ipv4(199, 16, 0, 10));
  std::size_t open = 0, closed_checked = 0;
  for (const auto& d : world_->domains()) {
    if (d.axfr_open && open < 3) {
      ++open;
      EXPECT_TRUE(resolver.try_axfr(d.name)) << d.name.to_string();
    } else if (!d.axfr_open && closed_checked < 3 && d.rank > 60) {
      ++closed_checked;
      EXPECT_FALSE(resolver.try_axfr(d.name)) << d.name.to_string();
    }
  }
  EXPECT_GT(open, 0u);
}

TEST_F(WorldTest, CustomerCountryAssigned) {
  for (const auto& d : world_->domains())
    EXPECT_FALSE(d.customer_country.empty()) << d.name.to_string();
}

TEST(WorldDeterminism, SameSeedSameWorld) {
  WorldConfig config;
  config.domain_count = 60;
  World a{config}, b{config};
  ASSERT_EQ(a.domains().size(), b.domains().size());
  for (std::size_t i = 0; i < a.domains().size(); ++i) {
    EXPECT_EQ(a.domains()[i].name, b.domains()[i].name);
    ASSERT_EQ(a.domains()[i].subdomains.size(),
              b.domains()[i].subdomains.size());
    for (std::size_t j = 0; j < a.domains()[i].subdomains.size(); ++j) {
      EXPECT_EQ(a.domains()[i].subdomains[j].front_ips,
                b.domains()[i].subdomains[j].front_ips);
    }
  }
}

TEST(WorldDeterminism, DifferentSeedDifferentWorld) {
  WorldConfig a_config, b_config;
  a_config.domain_count = b_config.domain_count = 60;
  b_config.seed = a_config.seed + 1;
  World a{a_config}, b{b_config};
  std::size_t differences = 0;
  for (std::size_t i = 0; i < 60; ++i)
    if (a.domains()[i].subdomains.size() != b.domains()[i].subdomains.size())
      ++differences;
  EXPECT_GT(differences, 5u);
}

TEST(WorldConfigKnobs, MarqueePlantingCanBeDisabled) {
  WorldConfig config;
  config.domain_count = 60;
  config.plant_marquee_domains = false;
  World world{config};
  EXPECT_EQ(world.domain("pinterest.com"), nullptr);
  EXPECT_EQ(world.domain("live.com"), nullptr);
}

TEST(WorldConfigKnobs, AdoptionScaleRaisesCloudUse) {
  WorldConfig low, high;
  low.domain_count = high.domain_count = 200;
  low.plant_marquee_domains = high.plant_marquee_domains = false;
  low.adoption_scale = 0.5;
  high.adoption_scale = 6.0;
  World lw{low}, hw{high};
  auto count = [](const World& w) {
    std::size_t n = 0;
    for (const auto& d : w.domains())
      if (d.cloud_using()) ++n;
    return n;
  };
  EXPECT_GT(count(hw), count(lw) * 2);
}

TEST(FrontEndNames, AllDistinct) {
  std::set<std::string> names;
  for (const auto fe :
       {FrontEnd::kVm, FrontEnd::kElb, FrontEnd::kBeanstalk,
        FrontEnd::kHerokuElb, FrontEnd::kHeroku, FrontEnd::kCloudService,
        FrontEnd::kTrafficManager, FrontEnd::kOpaqueCname,
        FrontEnd::kCdnOnly, FrontEnd::kOtherHosting})
    EXPECT_TRUE(names.insert(to_string(fe)).second);
}

}  // namespace
}  // namespace cs::synth
