#include "util/cdf.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace cs::util {
namespace {

TEST(Cdf, EmptyBehaviour) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.at(10.0), 0.0);
  EXPECT_EQ(cdf.value_at(0.5), 0.0);
  EXPECT_TRUE(cdf.points().empty());
}

TEST(Cdf, FractionAt) {
  Cdf cdf;
  for (double v : {1.0, 2.0, 3.0, 4.0}) cdf.add(v);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(4.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(Cdf, ValueAtQuantiles) {
  Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.5), 6.0);
}

TEST(Cdf, PointsDeduplicateValues) {
  Cdf cdf;
  for (double v : {1.0, 1.0, 1.0, 2.0}) cdf.add(v);
  const auto pts = cdf.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.0);
  EXPECT_DOUBLE_EQ(pts[0].fraction, 0.75);
  EXPECT_DOUBLE_EQ(pts[1].value, 2.0);
  EXPECT_DOUBLE_EQ(pts[1].fraction, 1.0);
}

TEST(Cdf, PointsMonotone) {
  Cdf cdf;
  for (int i = 0; i < 500; ++i) cdf.add((i * 37) % 97);
  const auto pts = cdf.points();
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].value, pts[i].value);
    EXPECT_LT(pts[i - 1].fraction, pts[i].fraction);
  }
  EXPECT_DOUBLE_EQ(pts.back().fraction, 1.0);
}

TEST(Cdf, SampledPointsCapped) {
  Cdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(i);
  const auto pts = cdf.sampled_points(10);
  EXPECT_EQ(pts.size(), 10u);
  EXPECT_DOUBLE_EQ(pts.front().value, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().value, 999.0);
}

TEST(Cdf, SampledPointsSmallInputUnchanged) {
  Cdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  EXPECT_EQ(cdf.sampled_points(10).size(), 2u);
}

TEST(Cdf, TsvContainsHeaderAndRows) {
  Cdf cdf;
  cdf.add(5.0);
  const auto tsv = cdf.to_tsv(8, "flows");
  EXPECT_NE(tsv.find("# flows (n=1)"), std::string::npos);
  EXPECT_NE(tsv.find("5\t1.0000"), std::string::npos);
}

TEST(Cdf, ComparisonRendersAllSeries) {
  Cdf a, b;
  for (int i = 0; i < 10; ++i) {
    a.add(i);
    b.add(i * 2);
  }
  const std::vector<std::pair<std::string, const Cdf*>> series = {
      {"EC2", &a}, {"Azure", &b}};
  const auto out = render_cdf_comparison(series, 4);
  EXPECT_NE(out.find("EC2"), std::string::npos);
  EXPECT_NE(out.find("Azure"), std::string::npos);
  // 1 header + 5 quantile rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 6);
}

}  // namespace
}  // namespace cs::util
