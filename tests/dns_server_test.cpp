#include "dns/server.h"

#include <gtest/gtest.h>

namespace cs::dns {
namespace {

SoaRecord soa_for(std::string_view origin) {
  SoaRecord soa;
  soa.mname = *Name::must_parse(origin).child("ns1");
  soa.rname = *Name::must_parse(origin).child("hostmaster");
  soa.serial = 42;
  return soa;
}

AuthoritativeServer make_server() {
  AuthoritativeServer server;
  auto& zone = server.add_zone(Name::must_parse("example.com"),
                               soa_for("example.com"));
  zone.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                             net::Ipv4(192, 0, 2, 10)));
  zone.add(ResourceRecord::cname(Name::must_parse("m.example.com"),
                                 Name::must_parse("www.example.com")));
  zone.add(ResourceRecord::cname(
      Name::must_parse("cdn.example.com"),
      Name::must_parse("d111.cloudfront.example-cdn.net")));
  zone.add(ResourceRecord::ns(Name::must_parse("api.example.com"),
                              Name::must_parse("ns.api.example.com")));
  zone.add(ResourceRecord::a(Name::must_parse("ns.api.example.com"),
                             net::Ipv4(192, 0, 2, 53)));
  zone.add(ResourceRecord::txt(Name::must_parse("txt-only.example.com"),
                               {"hello"}));
  return server;
}

Message ask(const AuthoritativeServer& server, std::string_view name,
            RrType type, net::Ipv4 client = net::Ipv4(198, 51, 100, 1)) {
  return server.handle(client,
                       Message::query(99, Name::must_parse(name), type));
}

TEST(Server, AuthoritativeAnswer) {
  const auto server = make_server();
  const auto r = ask(server, "www.example.com", RrType::kA);
  EXPECT_EQ(r.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(r.header.aa);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(std::get<ARecord>(r.answers[0].data).address,
            net::Ipv4(192, 0, 2, 10));
}

TEST(Server, InZoneCnameChase) {
  const auto server = make_server();
  const auto r = ask(server, "m.example.com", RrType::kA);
  ASSERT_EQ(r.answers.size(), 2u);
  EXPECT_EQ(r.answers[0].type(), RrType::kCname);
  EXPECT_EQ(r.answers[1].type(), RrType::kA);
}

TEST(Server, OutOfZoneCnameReturnsCnameOnly) {
  const auto server = make_server();
  const auto r = ask(server, "cdn.example.com", RrType::kA);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), RrType::kCname);
  EXPECT_EQ(r.header.rcode, Rcode::kNoError);
}

TEST(Server, CnameQueryNotChased) {
  const auto server = make_server();
  const auto r = ask(server, "m.example.com", RrType::kCname);
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), RrType::kCname);
}

TEST(Server, NxDomainCarriesSoa) {
  const auto server = make_server();
  const auto r = ask(server, "missing.example.com", RrType::kA);
  EXPECT_EQ(r.header.rcode, Rcode::kNxDomain);
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), RrType::kSoa);
}

TEST(Server, NodataIsNoErrorWithSoa) {
  const auto server = make_server();
  const auto r = ask(server, "txt-only.example.com", RrType::kA);
  EXPECT_EQ(r.header.rcode, Rcode::kNoError);
  EXPECT_TRUE(r.answers.empty());
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), RrType::kSoa);
}

TEST(Server, ReferralWithGlue) {
  const auto server = make_server();
  const auto r = ask(server, "deep.api.example.com", RrType::kA);
  EXPECT_EQ(r.header.rcode, Rcode::kNoError);
  EXPECT_FALSE(r.header.aa);
  EXPECT_TRUE(r.answers.empty());
  ASSERT_EQ(r.authority.size(), 1u);
  EXPECT_EQ(r.authority[0].type(), RrType::kNs);
  ASSERT_EQ(r.additional.size(), 1u);
  EXPECT_EQ(std::get<ARecord>(r.additional[0].data).address,
            net::Ipv4(192, 0, 2, 53));
}

TEST(Server, RefusesForeignZone) {
  const auto server = make_server();
  const auto r = ask(server, "www.other.org", RrType::kA);
  EXPECT_EQ(r.header.rcode, Rcode::kRefused);
}

TEST(Server, AxfrDeniedByDefault) {
  const auto server = make_server();
  const auto r = ask(server, "example.com", RrType::kAxfr);
  EXPECT_EQ(r.header.rcode, Rcode::kRefused);
}

TEST(Server, AxfrPolicyAllows) {
  auto server = make_server();
  server.set_axfr_policy(
      [](net::Ipv4 client, const Name&) { return client.octet(0) == 198; });
  const auto allowed = ask(server, "example.com", RrType::kAxfr,
                           net::Ipv4(198, 51, 100, 7));
  EXPECT_EQ(allowed.header.rcode, Rcode::kNoError);
  EXPECT_GE(allowed.answers.size(), 3u);
  EXPECT_EQ(allowed.answers.front().type(), RrType::kSoa);
  EXPECT_EQ(allowed.answers.back().type(), RrType::kSoa);

  const auto denied = ask(server, "example.com", RrType::kAxfr,
                          net::Ipv4(203, 0, 113, 7));
  EXPECT_EQ(denied.header.rcode, Rcode::kRefused);
}

TEST(Server, AxfrOnlyAtApex) {
  auto server = make_server();
  server.set_axfr_policy([](net::Ipv4, const Name&) { return true; });
  const auto r = ask(server, "www.example.com", RrType::kAxfr);
  EXPECT_EQ(r.header.rcode, Rcode::kRefused);
}

TEST(Server, MostSpecificZoneWins) {
  AuthoritativeServer server;
  server.add_zone(Name::must_parse("com"), soa_for("com"));
  auto& child =
      server.add_zone(Name::must_parse("example.com"), soa_for("example.com"));
  child.add(ResourceRecord::a(Name::must_parse("www.example.com"),
                              net::Ipv4(1, 2, 3, 4)));
  const auto r = ask(server, "www.example.com", RrType::kA);
  EXPECT_TRUE(r.header.aa);
  ASSERT_EQ(r.answers.size(), 1u);
}

TEST(Server, WireRoundTrip) {
  const auto server = make_server();
  const auto q = Message::query(7, Name::must_parse("www.example.com"),
                                RrType::kA);
  const auto wire = server.handle_wire(net::Ipv4(9, 9, 9, 9), q.encode());
  const auto r = Message::decode(wire);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->header.id, 7);
  EXPECT_EQ(r->answers.size(), 1u);
}

TEST(Server, MalformedWireYieldsFormErr) {
  const auto server = make_server();
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  const auto wire = server.handle_wire(net::Ipv4(9, 9, 9, 9), garbage);
  const auto r = Message::decode(wire);
  ASSERT_TRUE(r);
  EXPECT_EQ(r->header.rcode, Rcode::kFormErr);
}

TEST(Server, ResponseToQueryMessageWithQrSetIsFormErr) {
  const auto server = make_server();
  auto q = Message::query(7, Name::must_parse("www.example.com"), RrType::kA);
  q.header.qr = true;
  const auto r = server.handle(net::Ipv4(9, 9, 9, 9), q);
  EXPECT_EQ(r.header.rcode, Rcode::kFormErr);
}

}  // namespace
}  // namespace cs::dns
