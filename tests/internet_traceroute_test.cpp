#include "internet/traceroute.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace cs::internet {
namespace {

class TracerouteFixture : public ::testing::Test {
 protected:
  TracerouteFixture()
      : ec2(cloud::Provider::make_ec2(3)), topo(ec2, 17) {}

  cloud::Provider ec2;
  AsTopology topo;
};

TEST_F(TracerouteFixture, PoolSizesMatchTableSixteenShape) {
  EXPECT_GE(topo.region_pool("ec2.us-east-1").size(), 30u);
  EXPECT_LE(topo.region_pool("ec2.sa-east-1").size(), 5u);
  EXPECT_LE(topo.region_pool("ec2.ap-southeast-2").size(), 5u);
  EXPECT_GT(topo.region_pool("ec2.us-west-1").size(),
            topo.region_pool("ec2.eu-west-1").size());
}

TEST_F(TracerouteFixture, ZonesSeeAlmostTheSamePool) {
  const auto z0 = topo.downstream_of("ec2.us-east-1", 0);
  const auto z1 = topo.downstream_of("ec2.us-east-1", 1);
  const auto pool = topo.region_pool("ec2.us-east-1").size();
  EXPECT_GE(z0.size(), pool - 2);
  EXPECT_GE(z1.size(), pool - 2);
}

TEST_F(TracerouteFixture, UnknownRegionThrows) {
  EXPECT_THROW(topo.region_pool("ec2.moon-1"), std::invalid_argument);
}

TEST_F(TracerouteFixture, TracerouteShape) {
  const auto& inst = ec2.launch({.account = "t", .region = "ec2.us-east-1"});
  const auto v = vantage_named("seattle");
  const auto hops = topo.traceroute(inst, v);
  ASSERT_GE(hops.size(), 5u);
  // Internal hops first (10.x, unmapped).
  EXPECT_EQ(hops[0].address.octet(0), 10);
  EXPECT_EQ(hops[0].asn, 0u);
  // First non-cloud hop carries the downstream ISP ASN, recoverable by
  // whois on its address.
  const auto& border = hops[2];
  EXPECT_NE(border.asn, 0u);
  EXPECT_EQ(topo.asn_of(border.address).value_or(0), border.asn);
  // Last hop is the vantage.
  EXPECT_EQ(hops.back().address, v.address);
}

TEST_F(TracerouteFixture, RouteSpreadIsUneven) {
  const auto& inst = ec2.launch({.account = "t", .region = "ec2.us-west-1"});
  const auto vantages = planetlab_vantages(200);
  std::map<std::uint32_t, int> counts;
  for (const auto& v : vantages) {
    const auto as = topo.downstream_for_path(inst.region, inst.zone, v);
    ASSERT_TRUE(as);
    ++counts[as->asn];
  }
  int max_count = 0;
  for (const auto& [asn, count] : counts) max_count = std::max(max_count, count);
  // Top ISP should carry a disproportionate share (paper: up to ~31%).
  EXPECT_GT(max_count, 200 / static_cast<int>(counts.size()) * 2);
  // And multiple ISPs are in use.
  EXPECT_GE(counts.size(), 5u);
}

TEST_F(TracerouteFixture, PathSelectionIsStable) {
  const auto v = vantage_named("paris");
  const auto a = topo.downstream_for_path("ec2.eu-west-1", 0, v);
  const auto b = topo.downstream_for_path("ec2.eu-west-1", 0, v);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->asn, b->asn);
}

TEST_F(TracerouteFixture, AsFailureBlackholesPaths) {
  const auto& inst = ec2.launch({.account = "t", .region = "ec2.sa-east-1"});
  const auto vantages = planetlab_vantages(100);
  // Find the busiest downstream AS for this region.
  std::map<std::uint32_t, int> counts;
  for (const auto& v : vantages)
    ++counts[topo.downstream_for_path(inst.region, inst.zone, v)->asn];
  std::uint32_t top_asn = 0;
  int top = 0;
  for (const auto& [asn, count] : counts)
    if (count > top) {
      top = count;
      top_asn = asn;
    }
  topo.set_as_down(top_asn, true);
  EXPECT_TRUE(topo.is_down(top_asn));
  int blackholed = 0;
  for (const auto& v : vantages)
    if (topo.traceroute(inst, v).empty()) ++blackholed;
  EXPECT_EQ(blackholed, top);
  topo.set_as_down(top_asn, false);
  for (const auto& v : vantages)
    EXPECT_FALSE(topo.traceroute(inst, v).empty());
}

TEST_F(TracerouteFixture, WhoisMissesNonIspSpace) {
  EXPECT_FALSE(topo.asn_of(net::Ipv4(10, 0, 0, 1)));
  EXPECT_FALSE(topo.asn_of(net::Ipv4(54, 0, 0, 1)));
}

TEST_F(TracerouteFixture, DistinctRegionsUseDistinctAsns) {
  std::set<std::uint32_t> east, west;
  for (const auto& as : topo.region_pool("ec2.us-east-1")) east.insert(as.asn);
  for (const auto& as : topo.region_pool("ec2.us-west-1")) west.insert(as.asn);
  for (const auto asn : west) EXPECT_FALSE(east.contains(asn));
}

}  // namespace
}  // namespace cs::internet
