// Negative-compile fixture: reading a CS_GUARDED_BY member without its
// mutex must be rejected under -Werror=thread-safety. The ctest entry
// (tests/CMakeLists.txt, Clang-only) builds this target expecting
// FAILURE — if this file ever compiles under Clang, the annotation layer
// has stopped enforcing anything and the test fails.
#include "util/sync.h"

namespace {

struct Counter {
  mutable cs::util::Mutex mutex;
  int value CS_GUARDED_BY(mutex) = 0;

  void bump() {
    cs::util::LockGuard lock{mutex};
    ++value;
  }

  // The violation: a guarded read with no lock held.
  int read_unlocked() const { return value; }
};

}  // namespace

int main() {
  Counter counter;
  counter.bump();
  return counter.read_unlocked();
}
