#include "cloud/provider.h"

#include <gtest/gtest.h>

#include <set>

namespace cs::cloud {
namespace {

TEST(Provider, Ec2HasEightRegions) {
  const auto ec2 = Provider::make_ec2(1);
  EXPECT_EQ(ec2.regions().size(), 8u);
  EXPECT_EQ(ec2.kind(), ProviderKind::kEc2);
  ASSERT_NE(ec2.region("ec2.us-east-1"), nullptr);
  EXPECT_EQ(ec2.region("ec2.us-east-1")->zone_count, 3);
  EXPECT_EQ(ec2.region("nope"), nullptr);
}

TEST(Provider, AzureRegionsAreSingleZone) {
  const auto azure = Provider::make_azure(1);
  EXPECT_EQ(azure.regions().size(), 8u);
  for (const auto& r : azure.regions()) EXPECT_EQ(r.zone_count, 1);
}

TEST(Provider, PublishedRangesResolveRegions) {
  const auto ec2 = Provider::make_ec2(1);
  EXPECT_EQ(ec2.region_of(net::Ipv4(54, 1, 2, 3)).value_or(""),
            "ec2.us-east-1");
  EXPECT_EQ(ec2.region_of(net::Ipv4(23, 21, 0, 5)).value_or(""),
            "ec2.us-east-1");
  EXPECT_EQ(ec2.region_of(net::Ipv4(54, 33, 0, 1)).value_or(""),
            "ec2.eu-west-1");
  EXPECT_FALSE(ec2.region_of(net::Ipv4(8, 8, 8, 8)));
  // CDN space is NOT in the EC2 ranges, matching the paper.
  EXPECT_FALSE(ec2.region_of(net::Ipv4(205, 251, 192, 20)));
}

TEST(Provider, RegionRangesAreDisjointAcrossProviders) {
  const auto ec2 = Provider::make_ec2(1);
  const auto azure = Provider::make_azure(1);
  for (const auto& region : azure.regions())
    for (const auto& block : region.public_blocks)
      EXPECT_FALSE(ec2.region_of(block.first())) << region.name;
}

TEST(Provider, LaunchAssignsAddressesInRegion) {
  auto ec2 = Provider::make_ec2(7);
  const auto& inst = ec2.launch({.account = "acct-1",
                                 .region = "ec2.eu-west-1",
                                 .type = "m1.medium"});
  EXPECT_EQ(ec2.region_of(inst.public_ip).value_or(""), "ec2.eu-west-1");
  EXPECT_EQ(inst.internal_ip.octet(0), 10);
  EXPECT_EQ(inst.region, "ec2.eu-west-1");
  EXPECT_GE(inst.zone, 0);
  EXPECT_LT(inst.zone, 3);
}

TEST(Provider, LaunchUnknownRegionThrows) {
  auto ec2 = Provider::make_ec2(7);
  EXPECT_THROW(ec2.launch({.account = "a", .region = "ec2.moon-1"}),
               std::invalid_argument);
}

TEST(Provider, LaunchBadZoneLabelThrows) {
  auto ec2 = Provider::make_ec2(7);
  EXPECT_THROW(
      ec2.launch({.account = "a", .region = "ec2.us-east-1", .zone_label = 9}),
      std::invalid_argument);
}

TEST(Provider, UniqueAddressesAcrossManyLaunches) {
  auto ec2 = Provider::make_ec2(7);
  std::set<std::uint32_t> publics, internals;
  for (int i = 0; i < 2000; ++i) {
    const auto& inst = ec2.launch(
        {.account = "acct", .region = "ec2.us-east-1"});
    EXPECT_TRUE(publics.insert(inst.public_ip.value()).second);
    EXPECT_TRUE(internals.insert(inst.internal_ip.value()).second);
  }
}

TEST(Provider, LookupByAddress) {
  auto ec2 = Provider::make_ec2(7);
  const auto& inst = ec2.launch({.account = "a", .region = "ec2.us-west-2"});
  ASSERT_NE(ec2.find_by_public_ip(inst.public_ip), nullptr);
  EXPECT_EQ(ec2.find_by_public_ip(inst.public_ip)->id, inst.id);
  ASSERT_NE(ec2.find_by_internal_ip(inst.internal_ip), nullptr);
  EXPECT_EQ(ec2.internal_ip_of(inst.public_ip).value_or(net::Ipv4{}),
            inst.internal_ip);
  EXPECT_EQ(ec2.find_by_public_ip(net::Ipv4(1, 1, 1, 1)), nullptr);
}

TEST(Provider, InternalSlash16IsZonePure) {
  auto ec2 = Provider::make_ec2(7);
  // Ground-truth invariant exploited by the proximity method: all
  // instances inside one /16 share a physical zone.
  std::map<int, int> block_zone;
  for (int i = 0; i < 3000; ++i) {
    const auto& inst = ec2.launch(
        {.account = "acct", .region = "ec2.us-east-1"});
    const int block = inst.internal_ip.octet(1);
    const auto [it, fresh] = block_zone.emplace(block, inst.zone);
    if (!fresh) {
      EXPECT_EQ(it->second, inst.zone) << "block " << block;
    }
    EXPECT_EQ(ec2.zone_of_internal_block(inst.internal_ip).value_or(-1),
              inst.zone);
  }
  // With 3 zones over 32 /16s, many blocks should have been touched.
  EXPECT_GE(block_zone.size(), 10u);
}

TEST(Provider, ZoneGroundTruthByPublicIp) {
  auto ec2 = Provider::make_ec2(7);
  const auto& inst = ec2.launch({.account = "a", .region = "ec2.us-east-1"});
  EXPECT_EQ(ec2.zone_of_public_ip(inst.public_ip).value_or(-1), inst.zone);
  EXPECT_FALSE(ec2.zone_of_public_ip(net::Ipv4(9, 9, 9, 9)));
}

TEST(Provider, ZoneLabelsPermutePerAccount) {
  auto ec2 = Provider::make_ec2(7);
  // Labels must be a bijection per account.
  for (const auto* account : {"alice", "bob", "carol"}) {
    std::set<int> zones;
    for (int label = 0; label < 3; ++label)
      zones.insert(ec2.physical_zone(account, "ec2.us-east-1", label));
    EXPECT_EQ(zones.size(), 3u) << account;
  }
  // Stability.
  EXPECT_EQ(ec2.physical_zone("alice", "ec2.us-east-1", 0),
            ec2.physical_zone("alice", "ec2.us-east-1", 0));
  // Some pair of accounts must disagree on a label (with 3 accounts and 6
  // permutations, identical mappings for all would be suspicious but
  // possible; use more accounts to make this overwhelmingly likely).
  bool differs = false;
  for (int i = 0; i < 20 && !differs; ++i) {
    const std::string account = "acct-" + std::to_string(i);
    for (int label = 0; label < 3; ++label)
      differs |= ec2.physical_zone(account, "ec2.us-east-1", label) !=
                 ec2.physical_zone("alice", "ec2.us-east-1", label);
  }
  EXPECT_TRUE(differs);
}

TEST(Provider, ExplicitZoneLabelHonored) {
  auto ec2 = Provider::make_ec2(7);
  const int physical = ec2.physical_zone("dave", "ec2.us-west-1", 1);
  const auto& inst = ec2.launch(
      {.account = "dave", .region = "ec2.us-west-1", .zone_label = 1});
  EXPECT_EQ(inst.zone, physical);
}

TEST(Provider, RoundRobinSpreadsZones) {
  auto ec2 = Provider::make_ec2(7);
  std::map<int, int> counts;
  for (int i = 0; i < 30; ++i)
    ++counts[ec2.launch({.account = "a", .region = "ec2.us-east-1"}).zone];
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [zone, count] : counts) EXPECT_EQ(count, 10);
}

TEST(Provider, CdnAllocatorStaysInBlock) {
  auto ec2 = Provider::make_ec2(7);
  for (int i = 0; i < 100; ++i) {
    const auto ip = ec2.allocate_cdn_ip();
    EXPECT_TRUE(ec2.cdn_block().contains(ip));
  }
}

TEST(Provider, DeterministicAcrossConstructions) {
  auto a = Provider::make_ec2(42);
  auto b = Provider::make_ec2(42);
  for (int i = 0; i < 50; ++i) {
    const auto& ia = a.launch({.account = "x", .region = "ec2.us-east-1"});
    const auto& ib = b.launch({.account = "x", .region = "ec2.us-east-1"});
    EXPECT_EQ(ia.public_ip, ib.public_ip);
    EXPECT_EQ(ia.internal_ip, ib.internal_ip);
    EXPECT_EQ(ia.zone, ib.zone);
  }
}

}  // namespace
}  // namespace cs::cloud
