// Unit tests for the table renderers over hand-built reports: the numbers
// in the rendered text must be the right arithmetic, not just present.
#include <gtest/gtest.h>

#include "core/report.h"

namespace cs::core {
namespace {

analysis::CaptureReport tiny_capture() {
  analysis::CaptureReport report;
  auto& p = report.protocols;
  p.ec2_total = {800, 80};
  p.azure_total = {200, 20};
  p.total = {1000, 100};
  p.cloud_service["EC2"]["HTTP (TCP)"] = {100, 60};
  p.cloud_service["EC2"]["HTTPS (TCP)"] = {700, 20};
  p.cloud_service["Azure"]["HTTP (TCP)"] = {150, 15};
  p.cloud_service["Azure"]["DNS (UDP)"] = {50, 5};
  report.top_ec2_domains.push_back({"dropbox.com", 680, 68.0, 0});
  report.top_azure_domains.push_back({"msn.com", 24, 2.4, 18});
  report.content_types.push_back(
      {"text/html", 500, 50.0, 16.0, 3.7});
  return report;
}

TEST(Report, Table1Percentages) {
  const auto text = render_table1(tiny_capture());
  EXPECT_NE(text.find("EC2    80.00    80.00"), std::string::npos) << text;
  EXPECT_NE(text.find("Azure  20.00    20.00"), std::string::npos);
}

TEST(Report, Table2PerCloudPercentages) {
  const auto text = render_table2(tiny_capture());
  // EC2 HTTPS: 700/800 bytes = 87.50%, 20/80 flows = 25.00%.
  EXPECT_NE(text.find("87.50"), std::string::npos) << text;
  EXPECT_NE(text.find("25.00"), std::string::npos);
  // Azure DNS: 50/200 = 25.00% bytes — present via the DNS row.
  EXPECT_NE(text.find("DNS (UDP)"), std::string::npos);
}

TEST(Report, Table5RankDashForUnranked) {
  const auto text = render_table5(tiny_capture());
  EXPECT_NE(text.find("dropbox.com"), std::string::npos);
  // dropbox has rank 0 -> "-"; msn has rank 18.
  EXPECT_NE(text.find("-"), std::string::npos);
  EXPECT_NE(text.find("18"), std::string::npos);
}

TEST(Report, Table6Columns) {
  const auto text = render_table6(tiny_capture());
  EXPECT_NE(text.find("text/html"), std::string::npos);
  EXPECT_NE(text.find("50.00"), std::string::npos);
  EXPECT_NE(text.find("16.00"), std::string::npos);
}

TEST(Report, Table3TotalsRow) {
  analysis::CloudUsageReport usage;
  usage.domains = {.ec2_only = 2,
                   .ec2_plus_other = 6,
                   .azure_only = 1,
                   .azure_plus_other = 1,
                   .ec2_plus_azure = 0,
                   .total = 10};
  usage.subdomains = usage.domains;
  const auto text = render_table3(usage);
  // EC2 total = 8 of 10 = 80%.
  EXPECT_NE(text.find("EC2 total      8          80.00"),
            std::string::npos)
      << text;
}

TEST(Report, Fig12RegionsJoined) {
  std::vector<analysis::KRegionResult> results(2);
  results[0] = {1, {"ec2.us-east-1"}, 100.0, 500.0, {"ec2.us-east-1"}};
  results[1] = {2,
                {"ec2.us-east-1", "ec2.eu-west-1"},
                66.0,
                700.0,
                {"ec2.us-east-1", "ec2.eu-west-1"}};
  const auto text = render_fig12(results);
  EXPECT_NE(text.find("ec2.us-east-1, ec2.eu-west-1"), std::string::npos);
  EXPECT_NE(text.find("66.00"), std::string::npos);
}

TEST(Report, Fig11SamplesWinners) {
  analysis::FlappingSeries series;
  series.region_names = {"a", "b"};
  for (int i = 0; i < 10; ++i) {
    series.winner.push_back(i % 2);
    series.rtt_ms.push_back({1.0, 2.0});
  }
  series.winner_changes = 9;
  const auto text = render_fig11(series);
  EXPECT_NE(text.find("winner changed 9 times"), std::string::npos);
  EXPECT_NE(text.find("\ta\n"), std::string::npos);
  EXPECT_NE(text.find("\tb\n"), std::string::npos);
}

TEST(Report, Table12UnknownRate) {
  analysis::ZoneStudy study;
  analysis::LatencyZoneRow row;
  row.region = "ec2.us-east-1";
  row.target_ips = 10;
  row.responded = 8;
  row.per_zone[0] = 4;
  row.per_zone[2] = 2;
  row.unknown = 2;
  study.latency_rows.push_back(row);
  const auto text = render_table12(study);
  // 2 / 8 = 25.0% unknown; zone 1 has no probes -> N/A.
  EXPECT_NE(text.find("25.0"), std::string::npos) << text;
  EXPECT_NE(text.find("N/A"), std::string::npos);
}

TEST(Report, Table13AggregatesAllRow) {
  analysis::ZoneStudy study;
  analysis::VeracityRow a{"r1", 10, 8, 1, 1};
  analysis::VeracityRow b{"r2", 10, 5, 5, 0};
  study.veracity_rows = {a, b};
  const auto text = render_table13(study);
  // all: total 20, match 13, unknown 6, mismatch 1 -> error 1/14 = 7.1%.
  EXPECT_NE(text.find("all     20     13     6        1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("7.1%"), std::string::npos);
}

}  // namespace
}  // namespace cs::core
