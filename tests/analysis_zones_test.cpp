#include "analysis/zones.h"

#include <gtest/gtest.h>

namespace cs::analysis {
namespace {

class ZonesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig config;
    config.domain_count = 250;
    world_ = new synth::World{config};
    DatasetBuilder builder{
        *world_, {.lookup_vantages = 3, .collect_name_servers = false}};
    dataset_ = new AlexaDataset{builder.build()};
    ranges_ = new CloudRanges{world_->ec2(), world_->azure()};
    model_ = new internet::WideAreaModel{{.seed = 51}};
    proximity_ = new carto::ProximityEstimator{
        world_->ec2(), {.seed = 51, .total_samples = 900}};
    latency_ = new carto::LatencyZoneEstimator{world_->ec2(), *model_,
                                               {.seed = 51}};
    study_ = new ZoneStudy{run_zone_study(*dataset_, *ranges_, *world_,
                                          *proximity_, *latency_)};
  }
  static void TearDownTestSuite() {
    delete study_;
    delete latency_;
    delete proximity_;
    delete model_;
    delete ranges_;
    delete dataset_;
    delete world_;
  }

  static synth::World* world_;
  static AlexaDataset* dataset_;
  static CloudRanges* ranges_;
  static internet::WideAreaModel* model_;
  static carto::ProximityEstimator* proximity_;
  static carto::LatencyZoneEstimator* latency_;
  static ZoneStudy* study_;
};

synth::World* ZonesTest::world_ = nullptr;
AlexaDataset* ZonesTest::dataset_ = nullptr;
CloudRanges* ZonesTest::ranges_ = nullptr;
internet::WideAreaModel* ZonesTest::model_ = nullptr;
carto::ProximityEstimator* ZonesTest::proximity_ = nullptr;
carto::LatencyZoneEstimator* ZonesTest::latency_ = nullptr;
ZoneStudy* ZonesTest::study_ = nullptr;

TEST_F(ZonesTest, LatencyRowsCoverProbedRegions) {
  EXPECT_FALSE(study_->latency_rows.empty());
  for (const auto& row : study_->latency_rows) {
    EXPECT_GE(row.target_ips, row.responded);
    std::size_t identified = 0;
    for (const auto& [zone, count] : row.per_zone) identified += count;
    EXPECT_EQ(identified + row.unknown, row.responded) << row.region;
  }
}

TEST_F(ZonesTest, VeracityBookkeepingConsistent) {
  for (const auto& row : study_->veracity_rows) {
    EXPECT_EQ(row.match + row.unknown + row.mismatch, row.total)
        << row.region;
    EXPECT_LE(row.error_rate(), 1.0);
  }
}

TEST_F(ZonesTest, MethodsLargelyAgree) {
  std::size_t match = 0, mismatch = 0;
  for (const auto& row : study_->veracity_rows) {
    match += row.match;
    mismatch += row.mismatch;
  }
  ASSERT_GT(match + mismatch, 20u);
  // Paper overall error: 5.7%; require the same order of magnitude.
  EXPECT_LT(static_cast<double>(mismatch) / (match + mismatch), 0.2);
}

TEST_F(ZonesTest, AccuraciesVsTruthHigh) {
  EXPECT_GT(study_->latency_accuracy_vs_truth, 0.85);
  EXPECT_GT(study_->proximity_accuracy_vs_truth, 0.8);
}

TEST_F(ZonesTest, SubdomainZonesSubsetOfTruth) {
  std::size_t checked = 0, consistent = 0;
  for (std::size_t i = 0; i < dataset_->cloud_subdomains.size(); ++i) {
    const auto& obs = dataset_->cloud_subdomains[i];
    const auto* truth = world_->subdomain_truth(obs.name);
    if (!truth || truth->provider != cloud::ProviderKind::kEc2) continue;
    if (study_->subdomain_zones[i].empty()) continue;
    ++checked;
    bool all_in_truth = true;
    for (const auto zone : study_->subdomain_zones[i])
      all_in_truth &= truth->zones.contains(zone);
    consistent += all_in_truth;
  }
  ASSERT_GT(checked, 30u);
  // Estimation errors exist (that is the point), but most attributions
  // must match ground truth.
  EXPECT_GT(static_cast<double>(consistent) / checked, 0.8);
}

TEST_F(ZonesTest, ZoneCdfShapeMatchesPaper) {
  ASSERT_FALSE(study_->zones_per_subdomain.empty());
  // Paper: 33.2% one zone, 44.5% two, 22.3% three+ -> every bucket
  // populated and no bucket dominant beyond ~2/3.
  EXPECT_GT(study_->fraction_one_zone, 0.1);
  EXPECT_GT(study_->fraction_two_zones, 0.1);
  EXPECT_GT(study_->fraction_three_plus, 0.03);
  EXPECT_LT(study_->fraction_one_zone, 0.7);
  EXPECT_NEAR(study_->fraction_one_zone + study_->fraction_two_zones +
                  study_->fraction_three_plus,
              1.0, 1e-9);
}

TEST_F(ZonesTest, CombinedIdentificationHigh) {
  // Paper: 87% of instances identified by the combined method.
  EXPECT_GT(study_->combined_identified_fraction, 0.6);
}

TEST_F(ZonesTest, UsageSkewAcrossZones) {
  const auto it = study_->usage_per_region.find("ec2.us-east-1");
  ASSERT_NE(it, study_->usage_per_region.end());
  ASSERT_GE(it->second.subdomains.size(), 2u);
  std::size_t lo = SIZE_MAX, hi = 0;
  for (const auto& [zone, count] : it->second.subdomains) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  // Table 14: uneven zone usage within a region.
  EXPECT_GT(hi, lo);
}

TEST_F(ZonesTest, DomainsCountedPerZone) {
  for (const auto& [region, usage] : study_->usage_per_region)
    for (const auto& [zone, domains] : usage.domains)
      EXPECT_LE(domains.size(), usage.subdomains.at(zone)) << region;
}

}  // namespace
}  // namespace cs::analysis
