#include "util/table.h"

#include <gtest/gtest.h>

namespace cs::util {
namespace {

TEST(Table, RendersHeadersRuleAndRows) {
  Table t{{"Cloud", "Bytes", "Flows"}};
  t.add("EC2", 81.73, 80.70);
  t.add("Azure", 18.27, 19.30);
  const auto out = t.render();
  EXPECT_NE(out.find("Cloud"), std::string::npos);
  EXPECT_NE(out.find("81.73"), std::string::npos);
  EXPECT_NE(out.find("Azure"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, CaptionComesFirst) {
  Table t{{"a"}};
  t.caption("Table 1: share");
  const auto out = t.render();
  EXPECT_EQ(out.rfind("Table 1: share\n", 0), 0u);
}

TEST(Table, ShortRowsPad) {
  Table t{{"a", "b"}};
  t.row({"only"});
  EXPECT_EQ(t.row_count(), 1u);
  EXPECT_NO_THROW(t.render());
}

TEST(Table, TooManyCellsThrow) {
  Table t{{"a"}};
  EXPECT_THROW(t.row({"1", "2"}), std::invalid_argument);
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table{std::vector<std::string>{}}, std::invalid_argument);
}

TEST(Table, ColumnsAlign) {
  Table t{{"name", "v"}};
  t.add("x", 1);
  t.add("longer-name", 2);
  const auto out = t.render();
  // Both value cells must start at the same column.
  const auto line1 = out.find("x ");
  ASSERT_NE(line1, std::string::npos);
  // Width of first column = len("longer-name") = 11, so "x" is padded.
  EXPECT_NE(out.find("x            1"), std::string::npos);
}

TEST(Table, FloatFormattingTwoDecimals) {
  Table t{{"v"}};
  t.add(3.14159);
  EXPECT_NE(t.render().find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace cs::util
