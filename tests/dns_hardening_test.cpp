// Adversarial/failure-injection tests for the DNS stack: record cycles,
// delegation chains at the depth limit, servers dying mid-run. The
// measurement pipeline must degrade (fewer observations), never hang or
// crash — the property the paper's tooling needed across 34M lookups.
#include <gtest/gtest.h>

#include <memory>

#include "analysis/dataset.h"
#include "dns/resolver.h"
#include "synth/world.h"

namespace cs::dns {
namespace {

SoaRecord soa_of(std::string_view mname) {
  SoaRecord soa;
  soa.mname = Name::must_parse(mname);
  soa.rname = Name::must_parse(mname);
  return soa;
}

/// Root + com + a configurable leaf zone.
struct MiniTree {
  SimulatedDnsNetwork network;
  std::shared_ptr<AuthoritativeServer> leaf;
  Zone* leaf_zone = nullptr;

  MiniTree() {
    auto root = std::make_shared<AuthoritativeServer>();
    auto& root_zone = root->add_zone(Name{}, soa_of("a.root"));
    root_zone.add(ResourceRecord::ns(Name::must_parse("com"),
                                     Name::must_parse("a.gtld.net")));
    root_zone.add(ResourceRecord::a(Name::must_parse("a.gtld.net"),
                                    net::Ipv4(192, 5, 6, 30)));
    auto com = std::make_shared<AuthoritativeServer>();
    auto& com_zone = com->add_zone(Name::must_parse("com"),
                                   soa_of("a.gtld.net"));
    com_zone.add(ResourceRecord::ns(Name::must_parse("trap.com"),
                                    Name::must_parse("ns1.trap.com")));
    com_zone.add(ResourceRecord::a(Name::must_parse("ns1.trap.com"),
                                   net::Ipv4(192, 0, 2, 77)));
    leaf = std::make_shared<AuthoritativeServer>();
    leaf_zone = &leaf->add_zone(Name::must_parse("trap.com"),
                                soa_of("ns1.trap.com"));
    network.attach(net::Ipv4(198, 41, 0, 4), root);
    network.attach(net::Ipv4(192, 5, 6, 30), com);
    network.attach(net::Ipv4(192, 0, 2, 77), leaf);
  }

  Resolver make_resolver() {
    Resolver::Options options;
    options.root_servers = {net::Ipv4(198, 41, 0, 4)};
    return Resolver{network, options};
  }
};

TEST(DnsHardening, InZoneCnameCycleTerminates) {
  MiniTree tree;
  tree.leaf_zone->add(ResourceRecord::cname(
      Name::must_parse("a.trap.com"), Name::must_parse("b.trap.com")));
  tree.leaf_zone->add(ResourceRecord::cname(
      Name::must_parse("b.trap.com"), Name::must_parse("a.trap.com")));
  auto resolver = tree.make_resolver();
  const auto result =
      resolver.resolve(Name::must_parse("a.trap.com"), RrType::kA);
  // Terminates without an address; rcode is not the interesting part.
  EXPECT_TRUE(result.addresses().empty());
}

TEST(DnsHardening, CrossZoneCnameCycleTerminates) {
  MiniTree tree;
  // a -> x.other.com; other.com does not exist -> chase dies cleanly.
  tree.leaf_zone->add(ResourceRecord::cname(
      Name::must_parse("a.trap.com"), Name::must_parse("x.missing.com")));
  auto resolver = tree.make_resolver();
  const auto result =
      resolver.resolve(Name::must_parse("a.trap.com"), RrType::kA);
  EXPECT_TRUE(result.addresses().empty());
}

TEST(DnsHardening, SelfCnameTerminates) {
  MiniTree tree;
  tree.leaf_zone->add(ResourceRecord::cname(
      Name::must_parse("self.trap.com"), Name::must_parse("self.trap.com")));
  auto resolver = tree.make_resolver();
  const auto result =
      resolver.resolve(Name::must_parse("self.trap.com"), RrType::kA);
  EXPECT_TRUE(result.addresses().empty());
}

TEST(DnsHardening, LongCnameChainWithinLimitResolves) {
  MiniTree tree;
  for (int i = 0; i < 10; ++i) {
    tree.leaf_zone->add(ResourceRecord::cname(
        Name::must_parse("c" + std::to_string(i) + ".trap.com"),
        Name::must_parse("c" + std::to_string(i + 1) + ".trap.com")));
  }
  tree.leaf_zone->add(ResourceRecord::a(Name::must_parse("c10.trap.com"),
                                        net::Ipv4(9, 9, 9, 9)));
  auto resolver = tree.make_resolver();
  const auto result =
      resolver.resolve(Name::must_parse("c0.trap.com"), RrType::kA);
  EXPECT_TRUE(result.ok());
  ASSERT_EQ(result.addresses().size(), 1u);
}

TEST(DnsHardening, GluelessLoopDelegationFails) {
  // trap.com delegates deep.trap.com to a name server INSIDE the
  // delegated space with no glue — unresolvable by construction.
  MiniTree tree;
  tree.leaf_zone->add(ResourceRecord::ns(
      Name::must_parse("deep.trap.com"),
      Name::must_parse("ns.deep.trap.com")));
  auto resolver = tree.make_resolver();
  const auto result =
      resolver.resolve(Name::must_parse("www.deep.trap.com"), RrType::kA);
  EXPECT_EQ(result.rcode, Rcode::kServFail);
}

TEST(DnsHardening, ServerDiesMidRun) {
  MiniTree tree;
  tree.leaf_zone->add(ResourceRecord::a(Name::must_parse("www.trap.com"),
                                        net::Ipv4(9, 9, 9, 1)));
  auto resolver = tree.make_resolver();
  EXPECT_TRUE(
      resolver.resolve(Name::must_parse("www.trap.com"), RrType::kA).ok());
  tree.network.set_down(net::Ipv4(192, 0, 2, 77), true);
  resolver.flush_cache();
  const auto dead =
      resolver.resolve(Name::must_parse("www.trap.com"), RrType::kA);
  EXPECT_EQ(dead.rcode, Rcode::kServFail);
  tree.network.set_down(net::Ipv4(192, 0, 2, 77), false);
  resolver.flush_cache();
  EXPECT_TRUE(
      resolver.resolve(Name::must_parse("www.trap.com"), RrType::kA).ok());
}

TEST(DnsHardening, DatasetSurvivesDeadFleet) {
  // Kill a third of all attached DNS servers in a world; the dataset
  // builder must complete and simply observe fewer subdomains.
  synth::WorldConfig config;
  config.domain_count = 120;
  synth::World world{config};

  analysis::DatasetBuilder healthy_builder{
      world, {.lookup_vantages = 1, .collect_name_servers = false}};
  const auto healthy = healthy_builder.build();

  // Take down a band of the non-cloud hosting space where external DNS
  // fleets live (70.0.0.x addresses).
  for (std::uint32_t tail = 0; tail < 256; tail += 2)
    world.network().set_down(net::Ipv4{(70u << 24) + tail}, true);

  analysis::DatasetBuilder degraded_builder{
      world, {.lookup_vantages = 1, .collect_name_servers = false}};
  const auto degraded = degraded_builder.build();
  EXPECT_LE(degraded.cloud_subdomains.size(),
            healthy.cloud_subdomains.size());
  EXPECT_EQ(degraded.domains.size(), healthy.domains.size());
}

TEST(DnsHardening, QueryCounterMonotone) {
  MiniTree tree;
  tree.leaf_zone->add(ResourceRecord::a(Name::must_parse("www.trap.com"),
                                        net::Ipv4(9, 9, 9, 1)));
  auto resolver = tree.make_resolver();
  const auto before = tree.network.query_count();
  resolver.resolve(Name::must_parse("www.trap.com"), RrType::kA);
  EXPECT_GT(tree.network.query_count(), before);
}

}  // namespace
}  // namespace cs::dns
