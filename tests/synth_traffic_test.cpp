#include "synth/traffic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <map>

#include "pcap/decode.h"
#include "pcap/file.h"
#include "pcap/flow.h"
#include "proto/logs.h"

namespace cs::synth {
namespace {

/// Shared world + generated capture; generation dominates test time.
class TrafficTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    WorldConfig world_config;
    world_config.domain_count = 200;
    world_ = new World{world_config};
    TrafficConfig traffic_config;
    traffic_config.total_web_bytes = 8ull * 1024 * 1024;
    generator_ = new TrafficGenerator{*world_, traffic_config};
    packets_ = new std::vector<pcap::Packet>{generator_->generate()};
    pcap::FlowTable table;
    for (const auto& packet : *packets_) table.add(packet);
    logs_ = new proto::TraceLogs{proto::analyze_flows(table.finish())};
  }
  static void TearDownTestSuite() {
    delete logs_;
    delete packets_;
    delete generator_;
    delete world_;
  }

  static World* world_;
  static TrafficGenerator* generator_;
  static std::vector<pcap::Packet>* packets_;
  static proto::TraceLogs* logs_;
};

World* TrafficTest::world_ = nullptr;
TrafficGenerator* TrafficTest::generator_ = nullptr;
std::vector<pcap::Packet>* TrafficTest::packets_ = nullptr;
proto::TraceLogs* TrafficTest::logs_ = nullptr;

TEST_F(TrafficTest, EveryPacketDecodes) {
  pcap::FlowTable table;
  for (const auto& packet : *packets_) table.add(packet);
  EXPECT_EQ(table.undecodable_packets(), 0u);
}

TEST_F(TrafficTest, PacketsAreTimeSorted) {
  for (std::size_t i = 1; i < packets_->size(); ++i)
    EXPECT_LE((*packets_)[i - 1].timestamp, (*packets_)[i].timestamp);
}

TEST_F(TrafficTest, TimestampsInsideCaptureWindow) {
  const TrafficConfig defaults{};
  for (const auto& packet : *packets_) {
    EXPECT_GE(packet.timestamp, defaults.start_time);
    EXPECT_LE(packet.timestamp,
              defaults.start_time + defaults.duration_sec + 3600.0);
  }
}

TEST_F(TrafficTest, AllFlowsLeaveTheUniversity) {
  for (const auto& conn : logs_->conns)
    EXPECT_EQ(conn.tuple.src.addr.octet(0), 128) << conn.tuple.to_string();
}

TEST_F(TrafficTest, AllDestinationsAreCloudAddresses) {
  for (const auto& conn : logs_->conns) {
    const auto dst = conn.tuple.dst.addr;
    const bool cloud = world_->ec2().region_of(dst).has_value() ||
                       world_->azure().region_of(dst).has_value() ||
                       world_->ec2().cdn_block().contains(dst);
    EXPECT_TRUE(cloud) << conn.tuple.to_string();
  }
}

TEST_F(TrafficTest, Ec2CarriesMostBytes) {
  std::uint64_t ec2 = 0, azure = 0;
  for (const auto& conn : logs_->conns) {
    if (world_->ec2().region_of(conn.tuple.dst.addr))
      ec2 += conn.bytes;
    else if (world_->azure().region_of(conn.tuple.dst.addr))
      azure += conn.bytes;
  }
  // Table 1 shape: roughly 4:1.
  EXPECT_GT(ec2, azure * 2);
  EXPECT_LT(ec2, azure * 8);
}

TEST_F(TrafficTest, DropboxDominatesWebBytes) {
  std::map<std::string, std::uint64_t> volume;
  std::uint64_t web_total = 0;
  for (const auto& conn : logs_->conns) {
    if (conn.service != proto::Service::kHttp &&
        conn.service != proto::Service::kHttps)
      continue;
    web_total += conn.bytes;
    if (conn.hostname &&
        conn.hostname->find("dropbox") != std::string::npos)
      volume["dropbox"] += conn.bytes;
  }
  ASSERT_GT(web_total, 0u);
  const double share =
      static_cast<double>(volume["dropbox"]) / static_cast<double>(web_total);
  EXPECT_GT(share, 0.5);  // paper: 68%
  EXPECT_LT(share, 0.85);
}

TEST_F(TrafficTest, HttpFlowsOutnumberHttpsHeavily) {
  std::size_t http = 0, https = 0;
  for (const auto& conn : logs_->conns) {
    http += conn.service == proto::Service::kHttp;
    https += conn.service == proto::Service::kHttps;
  }
  EXPECT_GT(http, https * 4);  // paper: ~10.5x
}

TEST_F(TrafficTest, HttpsFlowsLargerThanHttp) {
  std::uint64_t http_bytes = 0, https_bytes = 0;
  std::size_t http = 0, https = 0;
  for (const auto& conn : logs_->conns) {
    if (conn.service == proto::Service::kHttp) {
      http_bytes += conn.bytes;
      ++http;
    } else if (conn.service == proto::Service::kHttps) {
      https_bytes += conn.bytes;
      ++https;
    }
  }
  ASSERT_GT(http, 0u);
  ASSERT_GT(https, 0u);
  EXPECT_GT(https_bytes / https, 5 * (http_bytes / http));
}

TEST_F(TrafficTest, DnsFlowsPresentInExpectedShare) {
  std::size_t dns = 0;
  for (const auto& conn : logs_->conns)
    dns += conn.service == proto::Service::kDns;
  const double share = static_cast<double>(dns) / logs_->conns.size();
  EXPECT_GT(share, 0.05);
  EXPECT_LT(share, 0.20);  // paper: 10.6%
}

TEST_F(TrafficTest, HostnamesRecoverableFromBothProtocols) {
  std::size_t with_host = 0, web = 0;
  for (const auto& conn : logs_->conns) {
    if (conn.service != proto::Service::kHttp &&
        conn.service != proto::Service::kHttps)
      continue;
    ++web;
    if (conn.hostname) ++with_host;
  }
  ASSERT_GT(web, 0u);
  // Every synthesized web flow carries a Host header or certificate.
  EXPECT_EQ(with_host, web);
}

TEST_F(TrafficTest, ContentTypesFollowPlan) {
  std::map<std::string, std::size_t> types;
  for (const auto& http : logs_->http)
    if (http.content_type) ++types[*http.content_type];
  EXPECT_GT(types["text/html"], 0u);
  EXPECT_GT(types["text/plain"], 0u);
  // Rare-but-huge types appear occasionally in a capture this size.
  EXPECT_GE(types.count("application/pdf") + types.count("application/zip") +
                types.count("video/mp4"),
            0u);
}

TEST_F(TrafficTest, EndpointsIncludeHeavyHittersAndTail) {
  bool dropbox = false, atdmt = false, alexa_tail = false, uonly = false;
  for (const auto& ep : generator_->endpoints()) {
    dropbox |= ep.domain == "dropbox.com";
    atdmt |= ep.domain == "atdmt.com";
    alexa_tail |= ep.in_alexa && ep.domain != "pinterest.com";
    uonly |= ep.domain.rfind("uonly", 0) == 0;
  }
  EXPECT_TRUE(dropbox);
  EXPECT_TRUE(atdmt);
  EXPECT_TRUE(alexa_tail);
  EXPECT_TRUE(uonly);
}

TEST_F(TrafficTest, DeterministicGeneration) {
  WorldConfig world_config;
  world_config.domain_count = 60;
  TrafficConfig traffic_config;
  traffic_config.total_web_bytes = 1ull * 1024 * 1024;
  World wa{world_config}, wb{world_config};
  TrafficGenerator ga{wa, traffic_config}, gb{wb, traffic_config};
  const auto pa = ga.generate();
  const auto pb = gb.generate();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(pa.size(), 500); ++i)
    EXPECT_EQ(pa[i].data, pb[i].data) << i;
}

TEST_F(TrafficTest, PcapFileRoundTrip) {
  const auto path = std::string{"/tmp/cs_traffic_test.pcap"};
  generator_->generate_to_file(path);
  const auto read = pcap::read_all(path);
  EXPECT_EQ(read.size(), packets_->size());
  std::remove(path.c_str());
}

// The tentpole streaming contract: generate_units() delivers per-unit
// time-sorted batches whose stable-sorted concatenation is byte-identical
// to the materialized generate() capture.
TEST_F(TrafficTest, StreamedUnitsRebuildTheExactCapture) {
  std::vector<pcap::Packet> collected;
  std::size_t units = 0;
  std::size_t unsorted_units = 0;
  const auto total =
      generator_->generate_units([&](std::vector<pcap::Packet>&& unit) {
        ++units;
        for (std::size_t i = 1; i < unit.size(); ++i)
          if (unit[i - 1].timestamp > unit[i].timestamp) {
            ++unsorted_units;
            break;
          }
        collected.insert(collected.end(),
                         std::make_move_iterator(unit.begin()),
                         std::make_move_iterator(unit.end()));
      });
  EXPECT_EQ(unsorted_units, 0u);
  EXPECT_GT(units, 1u);  // one per web endpoint plus the non-web tail
  EXPECT_EQ(total, packets_->size());
  std::stable_sort(collected.begin(), collected.end(),
                   [](const pcap::Packet& a, const pcap::Packet& b) {
                     return a.timestamp < b.timestamp;
                   });
  ASSERT_EQ(collected.size(), packets_->size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < collected.size(); ++i)
    if (collected[i].timestamp != (*packets_)[i].timestamp ||
        collected[i].data != (*packets_)[i].data)
      ++mismatches;
  EXPECT_EQ(mismatches, 0u);
}

// Every canonical five-tuple must live inside exactly one unit — the
// property that lets FlowAssembler consume units without a global sort.
TEST_F(TrafficTest, UnitsAreTupleDisjoint) {
  std::map<net::FiveTuple, std::size_t> owner;
  std::size_t unit_index = 0;
  std::size_t cross_unit_tuples = 0;
  generator_->generate_units([&](std::vector<pcap::Packet>&& unit) {
    for (const auto& packet : unit) {
      const auto decoded = pcap::decode_frame(packet.bytes());
      ASSERT_TRUE(decoded);
      const auto key = decoded->tuple.canonical();
      const auto [it, inserted] = owner.emplace(key, unit_index);
      if (!inserted && it->second != unit_index) ++cross_unit_tuples;
    }
    ++unit_index;
  });
  EXPECT_EQ(cross_unit_tuples, 0u);
}

// Feeding the streamed units straight into a FlowAssembler must produce
// the exact flows of whole-capture assembly — the paper-scale pipeline
// never holds the full packet vector.
TEST_F(TrafficTest, StreamedFlowAssemblyMatchesBatch) {
  pcap::FlowAssembler assembler;
  generator_->generate_units(
      [&](std::vector<pcap::Packet>&& unit) { assembler.feed(unit); });
  const auto streamed = assembler.finish();
  const auto batch = pcap::assemble_flows(*packets_);
  ASSERT_EQ(streamed.size(), batch.size());
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    if (streamed[i].tuple != batch[i].tuple ||
        streamed[i].first_ts != batch[i].first_ts ||
        streamed[i].last_ts != batch[i].last_ts ||
        streamed[i].packets != batch[i].packets ||
        streamed[i].bytes != batch[i].bytes ||
        streamed[i].payload_to_responder != batch[i].payload_to_responder ||
        streamed[i].payload_to_initiator != batch[i].payload_to_initiator)
      ++mismatches;
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_EQ(assembler.packets_fed(), packets_->size());
}

}  // namespace
}  // namespace cs::synth
