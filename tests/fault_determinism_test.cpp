// The cs::fault acceptance gate: with a fault plan installed, a study at
// CS_THREADS=8 renders byte-identically to the same study at CS_THREADS=1,
// on multiple seeds. Faults are keyed by stable event identities (query
// bytes, record index, vantage index), never by thread schedule, so the
// injected damage — and the data-quality accounting of it — must not move
// when the thread count does.
#include <gtest/gtest.h>

#include <string>
#include <string_view>

#include "analysis/widearea.h"
#include "core/report.h"
#include "core/study.h"
#include "exec/config.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace cs::core {
namespace {

constexpr std::string_view kFaultSpec =
    "loss=0.02,timeout=0.01,truncate=0.005,servfail=0.01,vantage_drop=0.02,"
    "seed=7";

StudyConfig small_config(std::uint64_t seed) {
  StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 100;
  config.traffic.total_web_bytes = 2ull * 1024 * 1024;
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = false;
  config.campaign_vantages = 6;
  config.campaign_days = 0.25;
  return config;
}

struct Rendered {
  std::string table1;
  std::string table3;
  std::string fig12;
  std::string quality;  ///< the fault-fed data-quality section
};

Rendered render_with_threads(std::uint64_t seed, unsigned threads) {
  // The data-quality table reads process-global counters; zero them so
  // each run reports only its own faults.
  obs::MetricsRegistry::instance().reset_values();
  exec::ScopedThreads guard{threads};
  Study study{small_config(seed)};
  Rendered out;
  out.table1 = render_table1(study.capture());
  out.table3 = render_table3(study.cloud_usage());
  out.fig12 = render_fig12(analysis::optimal_k_regions(study.campaign()));
  out.quality = render_data_quality(study);
  return out;
}

class FaultDeterminism : public testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultDeterminism, EightThreadsMatchesOneThreadUnderFaults) {
  fault::ScopedPlan plan{kFaultSpec};
  const auto sequential = render_with_threads(GetParam(), 1);
  const auto parallel = render_with_threads(GetParam(), 8);
  EXPECT_EQ(sequential.table1, parallel.table1);
  EXPECT_EQ(sequential.table3, parallel.table3);
  EXPECT_EQ(sequential.fig12, parallel.fig12);
  EXPECT_EQ(sequential.quality, parallel.quality);
}

INSTANTIATE_TEST_SUITE_P(TwoSeeds, FaultDeterminism,
                         testing::Values(2013ull, 777ull));

TEST(FaultDataQuality, StudyUnderFaultsCompletesWithPopulatedSection) {
  obs::MetricsRegistry::instance().reset_values();
  fault::ScopedPlan plan{"loss=0.02,timeout=0.01,seed=42"};
  Study study{small_config(2013)};
  const std::string quality = render_data_quality(study);
  EXPECT_NE(quality.find("Fault plan:"), std::string::npos);
  EXPECT_NE(quality.find("loss=0.02"), std::string::npos);
  // Thousands of simulated exchanges at 2-3% damage: faults definitely
  // fired, and the consumers recorded them.
  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  EXPECT_GT(snapshot.counter("fault.dns.loss") +
                snapshot.counter("fault.dns.timeout"),
            0u);
  EXPECT_GT(snapshot.counter("dns.resolver.timeouts"), 0u);
  EXPECT_GT(study.dataset().failed_lookup_count() +
                study.dataset().unresolved_subdomain_count(),
            0u);
}

TEST(FaultDataQuality, NoPlanReportsNone) {
  Study study{small_config(777)};
  const std::string quality = render_data_quality(study);
  EXPECT_NE(quality.find("none (CS_FAULT unset)"), std::string::npos);
}

}  // namespace
}  // namespace cs::core
