#include "analysis/cost.h"

#include <gtest/gtest.h>

namespace cs::analysis {
namespace {

class CostTest : public ::testing::Test {
 protected:
  CostTest()
      : ec2(cloud::Provider::make_ec2(71)),
        model(internet::WideAreaModel::Config{.seed = 71}) {
    const auto vantages = internet::planetlab_vantages(8);
    std::vector<const cloud::Region*> regions;
    for (const auto& region : ec2.regions()) regions.push_back(&region);
    campaign = run_campaign(model, vantages, regions, 0.25);
  }

  cloud::Provider ec2;
  internet::WideAreaModel model;
  Campaign campaign;
};

TEST_F(CostTest, FrontierCoversEveryK) {
  const auto frontier = cost_latency_frontier(campaign, {});
  ASSERT_EQ(frontier.size(), 8u);
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    EXPECT_EQ(frontier[i].k, static_cast<int>(i + 1));
    EXPECT_EQ(frontier[i].regions.size(), i + 1);
  }
}

TEST_F(CostTest, CostsMonotoneLatencyMonotone) {
  const auto frontier = cost_latency_frontier(campaign, {});
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].total_usd, frontier[i - 1].total_usd);
    EXPECT_LE(frontier[i].avg_rtt_ms, frontier[i - 1].avg_rtt_ms + 1e-9);
  }
}

TEST_F(CostTest, ComponentsAddUp) {
  CostModel model;
  model.demand_gb_per_month = 1000.0;
  const auto frontier = cost_latency_frontier(campaign, model);
  for (const auto& cost : frontier) {
    EXPECT_NEAR(cost.total_usd,
                cost.compute_usd + cost.egress_usd + cost.replication_usd,
                1e-9);
    // Egress is independent of k.
    EXPECT_NEAR(cost.egress_usd, 1000.0 * model.egress_per_gb_usd, 1e-9);
  }
  // Replication starts at zero for k=1 and grows linearly.
  EXPECT_NEAR(frontier[0].replication_usd, 0.0, 1e-9);
  EXPECT_NEAR(frontier[3].replication_usd,
              3 * model.replication_gb_per_month *
                  model.inter_region_per_gb_usd,
              1e-9);
}

TEST_F(CostTest, MarginalCostPerMsGrowsAtTheTail) {
  const auto frontier = cost_latency_frontier(campaign, {});
  // Early additions buy real latency; late ones buy little or nothing, so
  // $/ms either grows or becomes "no gain" (-1).
  const double early = frontier[1].usd_per_ms_saved;
  const double late = frontier[7].usd_per_ms_saved;
  ASSERT_GT(early, 0.0);
  EXPECT_TRUE(late < 0.0 || late > early);
}

TEST_F(CostTest, CustomModelScales) {
  CostModel expensive;
  expensive.instance_hour_usd = 1.2;  // 10x
  const auto cheap = cost_latency_frontier(campaign, {});
  const auto costly = cost_latency_frontier(campaign, expensive);
  for (std::size_t i = 0; i < cheap.size(); ++i)
    EXPECT_NEAR(costly[i].compute_usd, 10.0 * cheap[i].compute_usd, 1e-6);
}

}  // namespace
}  // namespace cs::analysis
