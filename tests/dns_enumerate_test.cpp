#include "dns/enumerate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "dns/wordlist.h"

namespace cs::dns {
namespace {

SoaRecord soa_of(std::string_view mname) {
  SoaRecord soa;
  soa.mname = Name::must_parse(mname);
  soa.rname = Name::must_parse(mname);
  return soa;
}

class EnumerateFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    auto root = std::make_shared<AuthoritativeServer>();
    auto& root_zone = root->add_zone(Name{}, soa_of("a.root"));
    root_zone.add(ResourceRecord::ns(Name::must_parse("com"),
                                     Name::must_parse("a.gtld.net")));
    root_zone.add(ResourceRecord::a(Name::must_parse("a.gtld.net"),
                                    net::Ipv4(192, 5, 6, 30)));

    auto com = std::make_shared<AuthoritativeServer>();
    auto& com_zone = com->add_zone(Name::must_parse("com"),
                                   soa_of("a.gtld.net"));
    for (const auto* domain : {"open.com", "closed.com"}) {
      com_zone.add(ResourceRecord::ns(
          Name::must_parse(domain),
          *Name::must_parse(domain).child("ns1")));
    }
    com_zone.add(ResourceRecord::a(Name::must_parse("ns1.open.com"),
                                   net::Ipv4(192, 0, 2, 10)));
    com_zone.add(ResourceRecord::a(Name::must_parse("ns1.closed.com"),
                                   net::Ipv4(192, 0, 2, 11)));

    auto make_domain = [](std::string_view apex, net::Ipv4 ns_addr,
                          bool allow_axfr) {
      auto server = std::make_shared<AuthoritativeServer>();
      auto& zone = server->add_zone(Name::must_parse(apex),
                                    soa_of(std::string{"ns1."} + std::string{apex}));
      const auto base = Name::must_parse(apex);
      zone.add(ResourceRecord::ns(base, *base.child("ns1")));
      zone.add(ResourceRecord::a(*base.child("ns1"), ns_addr));
      zone.add(ResourceRecord::a(*base.child("www"), net::Ipv4(10, 1, 1, 1)));
      zone.add(ResourceRecord::a(*base.child("mail"), net::Ipv4(10, 1, 1, 2)));
      // An exotic subdomain no wordlist would guess.
      zone.add(ResourceRecord::a(*base.child("zq9-secret"),
                                 net::Ipv4(10, 1, 1, 3)));
      if (allow_axfr)
        server->set_axfr_policy([](net::Ipv4, const Name&) { return true; });
      return server;
    };

    network.attach(net::Ipv4(198, 41, 0, 4), root);
    network.attach(net::Ipv4(192, 5, 6, 30), com);
    network.attach(net::Ipv4(192, 0, 2, 10),
                   make_domain("open.com", net::Ipv4(192, 0, 2, 10), true));
    network.attach(net::Ipv4(192, 0, 2, 11),
                   make_domain("closed.com", net::Ipv4(192, 0, 2, 11), false));
  }

  Resolver make_resolver() {
    Resolver::Options o;
    o.root_servers = {net::Ipv4(198, 41, 0, 4)};
    return Resolver{network, o};
  }

  // Spelled out (not designated-initialized) so -Wextra's
  // missing-field-initializers stays quiet about resolver_factory,
  // which these sequential tests deliberately leave unset.
  Enumerator::Options options(bool attempt_axfr = true) {
    Enumerator::Options o;
    o.wordlist = small_wordlist();
    o.attempt_axfr = attempt_axfr;
    return o;
  }

  SimulatedDnsNetwork network;
};

TEST_F(EnumerateFixture, AxfrFindsEverySubdomain) {
  auto resolver = make_resolver();
  Enumerator enumerator{resolver, options()};
  const auto result = enumerator.enumerate(Name::must_parse("open.com"));
  EXPECT_TRUE(result.axfr_succeeded);
  const auto names = result.subdomains;
  auto has = [&names](std::string_view n) {
    return std::find(names.begin(), names.end(), Name::must_parse(n)) !=
           names.end();
  };
  EXPECT_TRUE(has("www.open.com"));
  EXPECT_TRUE(has("mail.open.com"));
  EXPECT_TRUE(has("zq9-secret.open.com"));  // AXFR sees everything
}

TEST_F(EnumerateFixture, BruteForceLowerBound) {
  auto resolver = make_resolver();
  Enumerator enumerator{resolver, options()};
  const auto result = enumerator.enumerate(Name::must_parse("closed.com"));
  EXPECT_FALSE(result.axfr_succeeded);
  const auto names = result.subdomains;
  auto has = [&names](std::string_view n) {
    return std::find(names.begin(), names.end(), Name::must_parse(n)) !=
           names.end();
  };
  EXPECT_TRUE(has("www.closed.com"));
  EXPECT_TRUE(has("mail.closed.com"));
  // Brute force is a lower bound: the unguessable name is missed.
  EXPECT_FALSE(has("zq9-secret.closed.com"));
}

TEST_F(EnumerateFixture, AxfrDisabledFallsStraightToBruteForce) {
  auto resolver = make_resolver();
  Enumerator enumerator{resolver, options(/*attempt_axfr=*/false)};
  const auto result = enumerator.enumerate(Name::must_parse("open.com"));
  EXPECT_FALSE(result.axfr_succeeded);
  EXPECT_FALSE(result.subdomains.empty());
}

TEST_F(EnumerateFixture, QueriesSpentAccounted) {
  auto resolver = make_resolver();
  Enumerator enumerator{resolver, options()};
  const auto result = enumerator.enumerate(Name::must_parse("closed.com"));
  EXPECT_GT(result.queries_spent, small_wordlist().size());
}

TEST_F(EnumerateFixture, NonexistentDomainYieldsNothing) {
  auto resolver = make_resolver();
  Enumerator enumerator{resolver, options()};
  const auto result = enumerator.enumerate(Name::must_parse("ghost.com"));
  EXPECT_FALSE(result.axfr_succeeded);
  EXPECT_TRUE(result.subdomains.empty());
}

TEST(Wordlist, DefaultListShape) {
  const auto& words = default_wordlist();
  EXPECT_GT(words.size(), 100u);
  // The paper's top prefix order: www first.
  EXPECT_EQ(words.front(), "www");
  // No duplicates.
  auto sorted = words;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(Wordlist, SmallListIsSubsetSized) {
  EXPECT_LT(small_wordlist().size(), 20u);
}

}  // namespace
}  // namespace cs::dns
