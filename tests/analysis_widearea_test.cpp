#include "analysis/widearea.h"

#include <gtest/gtest.h>

namespace cs::analysis {
namespace {

class WideAreaTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ec2_ = new cloud::Provider{cloud::Provider::make_ec2(31)};
    model_ = new internet::WideAreaModel{{.seed = 31}};
    vantages_ = new std::vector<internet::VantagePoint>{
        internet::planetlab_vantages(12)};
    std::vector<const cloud::Region*> regions;
    for (const auto& region : ec2_->regions()) regions.push_back(&region);
    campaign_ = new Campaign{
        run_campaign(*model_, *vantages_, regions, /*days=*/0.5)};
  }
  static void TearDownTestSuite() {
    delete campaign_;
    delete vantages_;
    delete model_;
    delete ec2_;
  }

  static cloud::Provider* ec2_;
  static internet::WideAreaModel* model_;
  static std::vector<internet::VantagePoint>* vantages_;
  static Campaign* campaign_;
};

cloud::Provider* WideAreaTest::ec2_ = nullptr;
internet::WideAreaModel* WideAreaTest::model_ = nullptr;
std::vector<internet::VantagePoint>* WideAreaTest::vantages_ = nullptr;
Campaign* WideAreaTest::campaign_ = nullptr;

TEST_F(WideAreaTest, CampaignDimensions) {
  EXPECT_EQ(campaign_->vantages.size(), 12u);
  EXPECT_EQ(campaign_->region_names.size(), 8u);
  EXPECT_EQ(campaign_->rounds(), 48u);  // half a day of 15-min rounds
  EXPECT_EQ(campaign_->rtt_ms.size(), 12u);
  EXPECT_EQ(campaign_->tput_kbps.size(), 12u);
}

TEST_F(WideAreaTest, MostSamplesPresent) {
  std::size_t total = 0, present = 0;
  for (const auto& per_region : campaign_->rtt_ms)
    for (const auto& per_round : per_region)
      for (const auto& sample : per_round) {
        ++total;
        present += sample.has_value();
      }
  EXPECT_GT(static_cast<double>(present) / total, 0.9);
}

TEST_F(WideAreaTest, AveragesGeographicallySane) {
  const auto averages = average_matrix(*campaign_);
  // Seattle (vantage 0) should prefer a US-West region over Sydney.
  std::size_t west = 0, sydney = 0;
  for (std::size_t r = 0; r < averages.region_names.size(); ++r) {
    if (averages.region_names[r] == "ec2.us-west-2") west = r;
    if (averages.region_names[r] == "ec2.ap-southeast-2") sydney = r;
  }
  EXPECT_LT(averages.avg_rtt_ms[0][west], averages.avg_rtt_ms[0][sydney]);
  // And throughput the other way around.
  EXPECT_GT(averages.avg_tput_kbps[0][west],
            averages.avg_tput_kbps[0][sydney]);
}

TEST_F(WideAreaTest, OptimalKMonotone) {
  const auto results = optimal_k_regions(*campaign_);
  ASSERT_EQ(results.size(), 8u);
  for (std::size_t k = 1; k < results.size(); ++k) {
    // More regions can never hurt the optimal deployment.
    EXPECT_LE(results[k].avg_rtt_ms, results[k - 1].avg_rtt_ms + 1e-9);
    EXPECT_GE(results[k].avg_tput_kbps,
              results[k - 1].avg_tput_kbps - 1e-9);
    EXPECT_EQ(results[k].best_regions.size(), k + 1);
  }
}

TEST_F(WideAreaTest, DiminishingReturnsAfterK3) {
  const auto results = optimal_k_regions(*campaign_);
  const double gain_to_3 = results[0].avg_rtt_ms - results[2].avg_rtt_ms;
  const double gain_3_to_8 = results[2].avg_rtt_ms - results[7].avg_rtt_ms;
  // Paper: k=3 captures most of the achievable latency reduction.
  EXPECT_GT(gain_to_3, gain_3_to_8);
}

TEST_F(WideAreaTest, SubsetNesting) {
  const auto results = optimal_k_regions(*campaign_);
  // The best k=8 deployment is everything.
  EXPECT_EQ(results[7].best_regions.size(), 8u);
  // US East anchors the small deployments for this US-heavy vantage mix.
  EXPECT_FALSE(results[0].best_regions.empty());
}

TEST_F(WideAreaTest, FlappingSeriesWellFormed) {
  const auto series = flapping_series(*campaign_, "boulder");
  EXPECT_EQ(series.winner.size(), campaign_->rounds());
  for (const auto winner : series.winner) {
    EXPECT_GE(winner, -1);
    EXPECT_LT(winner, static_cast<int>(series.region_names.size()));
  }
}

TEST_F(WideAreaTest, FlappingUnknownVantageThrows) {
  EXPECT_THROW(flapping_series(*campaign_, "atlantis"),
               std::invalid_argument);
}

TEST_F(WideAreaTest, EmptyCampaignHandled) {
  Campaign empty;
  EXPECT_EQ(empty.rounds(), 0u);
  const auto averages = average_matrix(empty);
  EXPECT_TRUE(averages.vantage_names.empty());
  EXPECT_TRUE(optimal_k_regions(empty).empty());
}

}  // namespace
}  // namespace cs::analysis
