// Fuzz-style robustness properties: corrupted and truncated inputs to the
// file/wire parsers must produce clean errors, never crashes, hangs or
// out-of-bounds reads (run these under ASan/UBSan for full value).
#include <gtest/gtest.h>

#include <filesystem>

#include "dns/message.h"
#include "dns/zonefile.h"
#include "pcap/decode.h"
#include "pcap/file.h"
#include "proto/http.h"
#include "proto/logfile.h"
#include "proto/tls.h"
#include "util/rng.h"

namespace cs {
namespace {

// ---------------------------------------------------------------------
class DnsWireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DnsWireFuzz, RandomBytesNeverCrashDecoder) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(300));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    (void)dns::Message::decode(junk);  // any result is fine; no crash
  }
}

TEST_P(DnsWireFuzz, BitFlippedMessagesNeverCrash) {
  util::Rng rng{GetParam() * 3};
  auto message = dns::Message::query(
      9, dns::Name::must_parse("www.example.com"), dns::RrType::kA);
  message.answers.push_back(dns::ResourceRecord::cname(
      dns::Name::must_parse("www.example.com"),
      dns::Name::must_parse("lb.elb.amazonaws.com")));
  auto wire = message.encode();
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = wire;
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f)
      corrupted[rng.next_below(corrupted.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    (void)dns::Message::decode(corrupted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsWireFuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------
class FrameFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrameFuzz, CorruptedFramesNeverCrashDecoder) {
  util::Rng rng{GetParam()};
  const std::vector<std::uint8_t> payload(200, 'x');
  const auto packet = pcap::make_tcp_packet(
      1.0, {net::Ipv4(10, 0, 0, 1), 4000}, {net::Ipv4(54, 0, 0, 1), 80},
      {.ack = true}, 1, payload);
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = packet.data;
    // Random truncation plus random byte smashes.
    corrupted.resize(rng.next_below(corrupted.size() + 1));
    for (std::uint64_t s = 0; s < 5 && !corrupted.empty(); ++s)
      corrupted[rng.next_below(corrupted.size())] =
          static_cast<std::uint8_t>(rng());
    const auto decoded = pcap::decode_frame(corrupted);
    if (decoded) {
      // If it decodes, the payload view must stay inside the buffer.
      const auto* begin = corrupted.data();
      const auto* end = corrupted.data() + corrupted.size();
      if (!decoded->payload.empty()) {
        EXPECT_GE(decoded->payload.data(), begin);
        EXPECT_LE(decoded->payload.data() + decoded->payload.size(), end);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzz,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------
class TextParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TextParserFuzz, HttpParserSurvivesGarbage) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(400));
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(32 + rng.next_below(95));
    // Sprinkle CRLFs so the head-end scanner engages.
    for (std::uint64_t i = 0; i + 4 < junk.size(); i += 37) {
      junk[i] = '\r';
      junk[i + 1] = '\n';
    }
    (void)proto::parse_requests(junk);
    (void)proto::parse_responses(junk);
  }
}

TEST_P(TextParserFuzz, TlsExtractorsSurviveGarbage) {
  util::Rng rng{GetParam() * 7};
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::uint8_t> junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    if (!junk.empty()) junk[0] = 22;  // force the TLS content-type path
    (void)proto::extract_sni(junk);
    (void)proto::extract_certificate_cn(junk);
  }
}

TEST_P(TextParserFuzz, ZonefileParserSurvivesGarbage) {
  util::Rng rng{GetParam() * 13};
  static const char* kFragments[] = {
      "$ORIGIN x.net.", "@ 3600 IN SOA ns.x.net. r.x.net. 1 2 3 4 5",
      "www 60 IN A 1.2.3.4", "IN A", "}{", "60 IN", "@", ";;;",
      "a..b 60 IN A 1.1.1.1", "www 9999999999999 IN A 1.2.3.4"};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const auto lines = 1 + rng.next_below(12);
    for (std::uint64_t i = 0; i < lines; ++i) {
      text += kFragments[rng.next_below(std::size(kFragments))];
      text += '\n';
    }
    (void)dns::parse_zonefile(text);  // must not crash
  }
}

TEST_P(TextParserFuzz, ConnLogParserSurvivesGarbage) {
  util::Rng rng{GetParam() * 17};
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const auto lines = rng.next_below(12);
    for (std::uint64_t i = 0; i < lines; ++i) {
      const auto fields = rng.next_below(14);
      for (std::uint64_t f = 0; f < fields; ++f) {
        text += std::to_string(rng.next_below(1000));
        text += '\t';
      }
      text += '\n';
    }
    (void)proto::parse_conn_log(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TextParserFuzz,
                         ::testing::Range<std::uint64_t>(1, 5));

// ---------------------------------------------------------------------
TEST(PcapFileFuzz, TruncatedFilesErrorCleanly) {
  const auto path = std::filesystem::temp_directory_path() /
                    "cs_fuzz_trunc.pcap";
  const auto rewrite = [&path]() {
    pcap::PcapWriter writer{path.string()};
    for (int i = 0; i < 4; ++i) {
      pcap::Packet packet;
      packet.timestamp = i;
      packet.data.assign(64, static_cast<std::uint8_t>(i));
      writer.write(packet);
    }
  };
  rewrite();
  const auto full_size = std::filesystem::file_size(path);
  for (std::uintmax_t cut = 0; cut < full_size; cut += 7) {
    rewrite();
    std::filesystem::resize_file(path, cut);
    if (cut < 4) {
      // Not even the magic survives.
      EXPECT_THROW(pcap::PcapReader{path.string()}, std::runtime_error);
      continue;
    }
    // Anything longer must open-or-throw, and reading must either yield
    // packets or throw — never hang or crash.
    try {
      pcap::PcapReader reader{path.string()};
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace cs
