#include "analysis/patterns.h"

#include <gtest/gtest.h>

#include "analysis/regions.h"

namespace cs::analysis {
namespace {

class PatternsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    synth::WorldConfig config;
    config.domain_count = 250;
    world_ = new synth::World{config};
    DatasetBuilder builder{*world_, {.lookup_vantages = 3}};
    dataset_ = new AlexaDataset{builder.build()};
    ranges_ = new CloudRanges{world_->ec2(), world_->azure()};
    report_ = new PatternReport{analyze_patterns(*dataset_, *ranges_)};
  }
  static void TearDownTestSuite() {
    delete report_;
    delete ranges_;
    delete dataset_;
    delete world_;
  }

  static synth::World* world_;
  static AlexaDataset* dataset_;
  static CloudRanges* ranges_;
  static PatternReport* report_;
};

synth::World* PatternsTest::world_ = nullptr;
AlexaDataset* PatternsTest::dataset_ = nullptr;
CloudRanges* PatternsTest::ranges_ = nullptr;
PatternReport* PatternsTest::report_ = nullptr;

TEST_F(PatternsTest, DetectionMatchesGroundTruth) {
  using synth::FrontEnd;
  std::size_t checked = 0, correct = 0;
  for (std::size_t i = 0; i < dataset_->cloud_subdomains.size(); ++i) {
    const auto& obs = dataset_->cloud_subdomains[i];
    const auto& det = report_->detections[i];
    const auto* truth = world_->subdomain_truth(obs.name);
    ASSERT_NE(truth, nullptr);
    ++checked;
    bool ok = true;
    switch (truth->front_end) {
      case FrontEnd::kVm:
        ok = det.vm_front;
        break;
      case FrontEnd::kElb:
        ok = det.elb && !det.beanstalk && !det.heroku;
        break;
      case FrontEnd::kBeanstalk:
        ok = det.beanstalk && det.elb;  // Beanstalk always fronts an ELB
        break;
      case FrontEnd::kHerokuElb:
        ok = det.heroku && det.elb;
        break;
      case FrontEnd::kHeroku:
        ok = det.heroku && !det.elb;
        break;
      case FrontEnd::kCloudService:
        ok = det.azure_cs;
        break;
      case FrontEnd::kTrafficManager:
        ok = det.azure_tm;
        break;
      case FrontEnd::kOpaqueCname:
        ok = det.unclassified;
        break;
      case FrontEnd::kCdnOnly:
        ok = det.cloudfront || det.azure_cdn;
        break;
      case FrontEnd::kOtherHosting:
        ok = false;  // should never be in the dataset
        break;
    }
    correct += ok;
    EXPECT_TRUE(ok) << obs.name.to_string() << " truth="
                    << synth::to_string(truth->front_end);
  }
  EXPECT_EQ(checked, correct);
}

TEST_F(PatternsTest, VmIsTheDominantEc2FrontEnd) {
  EXPECT_GT(report_->ec2_vm.subdomains, report_->ec2_elb.subdomains);
  EXPECT_GT(report_->ec2_vm.subdomains,
            report_->ec2_heroku_no_elb.subdomains);
  // Paper: 71.5% of EC2 subdomains use a VM front end.
  const double vm_share = static_cast<double>(report_->ec2_vm.subdomains) /
                          report_->ec2_subdomains;
  EXPECT_GT(vm_share, 0.4);
}

TEST_F(PatternsTest, ElbInstancesSharedAcrossSubdomains) {
  if (report_->ec2_elb.subdomains < 5) GTEST_SKIP() << "too few ELB users";
  // Physical proxies are fewer than (logical ELB users x proxies-per-use).
  std::size_t assignments = 0;
  for (const auto& [ip, count] : report_->subdomains_per_physical_elb)
    assignments += count;
  EXPECT_GE(assignments, report_->ec2_elb.instances);
}

TEST_F(PatternsTest, HerokuFleetSmall) {
  if (report_->ec2_heroku_no_elb.subdomains == 0)
    GTEST_SKIP() << "no heroku users in this sample";
  // The Heroku fleet multiplexes subdomains over few IPs (paper: 58K / 94).
  EXPECT_LE(report_->ec2_heroku_no_elb.instances,
            cloud::HerokuManager::kFleetSize);
}

TEST_F(PatternsTest, NameServerLocationsClassified) {
  EXPECT_GT(report_->ns_total, 0u);
  EXPECT_EQ(report_->ns_total,
            report_->ns_in_cloudfront + report_->ns_in_ec2 +
                report_->ns_in_azure + report_->ns_external);
  // Paper: the overwhelming majority of name servers are outside the
  // clouds.
  EXPECT_GT(report_->ns_external, report_->ns_total / 2);
}

TEST_F(PatternsTest, NameServerCdfInPaperBand) {
  // Fig 5: most subdomains use 3-10 name servers.
  const auto& cdf = report_->name_servers_per_subdomain;
  ASSERT_FALSE(cdf.empty());
  EXPECT_GE(cdf.value_at(0.1), 3.0);
  EXPECT_LE(cdf.value_at(0.9), 10.0);
}

TEST_F(PatternsTest, Table8RowsConsistent) {
  const auto rows = analyze_top_domain_features(*dataset_, *report_, 10);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_LE(row.vm, row.cloud_subdomains);
    EXPECT_LE(row.elb, row.cloud_subdomains);
    // ELB IPs only present when some subdomain uses ELB.
    if (row.elb == 0) EXPECT_EQ(row.elb_ips, 0u);
  }
  // amazon.com (rank 9): ELB-heavy with zero VM front ends, per spec.
  for (const auto& row : rows)
    if (row.domain == "amazon.com") {
      EXPECT_EQ(row.vm, 0u);
      EXPECT_EQ(row.elb, 2u);
      EXPECT_GT(row.elb_ips, 10u);
    }
}

TEST_F(PatternsTest, RegionReportConsistentWithTruth) {
  const auto regions = analyze_regions(*dataset_, *ranges_);
  for (std::size_t i = 0; i < dataset_->cloud_subdomains.size(); ++i) {
    const auto& obs = dataset_->cloud_subdomains[i];
    const auto* truth = world_->subdomain_truth(obs.name);
    if (!truth || truth->front_end == synth::FrontEnd::kCdnOnly) continue;
    // Every detected region must be a truth region.
    for (const auto& region : regions.subdomain_regions[i])
      EXPECT_NE(std::find(truth->regions.begin(), truth->regions.end(),
                          region),
                truth->regions.end())
          << obs.name.to_string() << " " << region;
  }
}

TEST_F(PatternsTest, SingleRegionDominates) {
  const auto regions = analyze_regions(*dataset_, *ranges_);
  EXPECT_GT(regions.ec2_single_region_fraction, 0.9);   // paper: 97%
  EXPECT_GT(regions.azure_single_region_fraction, 0.8);  // paper: 92%
}

TEST_F(PatternsTest, UsEastDominatesEc2Regions) {
  const auto regions = analyze_regions(*dataset_, *ranges_);
  const auto it = regions.subdomains_per_region.find("ec2.us-east-1");
  ASSERT_NE(it, regions.subdomains_per_region.end());
  for (const auto& [region, count] : regions.subdomains_per_region)
    if (region.rfind("ec2.", 0) == 0) EXPECT_GE(it->second, count) << region;
}

TEST_F(PatternsTest, CustomerGeoMismatchInPaperBand) {
  const auto regions = analyze_regions(*dataset_, *ranges_);
  const auto geo = analyze_customer_geo(*dataset_, regions, *world_);
  ASSERT_GT(geo.classified_subdomains, 50u);
  const double country = static_cast<double>(geo.country_mismatch) /
                         geo.classified_subdomains;
  const double continent = static_cast<double>(geo.continent_mismatch) /
                           geo.classified_subdomains;
  // Paper: 47% / 32%; require the qualitative shape.
  EXPECT_GT(country, 0.3);
  EXPECT_LT(country, 0.75);
  EXPECT_LT(continent, country);
}

TEST_F(PatternsTest, Table10RegionRowsConsistent) {
  const auto regions = analyze_regions(*dataset_, *ranges_);
  const auto rows = analyze_top_domain_regions(*dataset_, regions, 14);
  for (const auto& row : rows) {
    EXPECT_GE(row.cloud_subdomains, row.k1 + row.k2);
    EXPECT_GE(row.total_regions, 1u);
    if (row.domain == "live.com") EXPECT_EQ(row.total_regions, 3u);
    if (row.domain == "msn.com") {
      EXPECT_EQ(row.total_regions, 5u);
      EXPECT_GT(row.k2, 0u);  // 11 of 89 subdomains use two regions
    }
  }
}

}  // namespace
}  // namespace cs::analysis
