// Whole-pipeline determinism: two studies built from the same config must
// produce bit-identical analysis results — the property that makes every
// bench and EXPERIMENTS.md number reproducible.
#include <gtest/gtest.h>

#include "core/report.h"
#include "core/study.h"

namespace cs::core {
namespace {

StudyConfig small_config() {
  StudyConfig config;
  config.world.domain_count = 120;
  config.traffic.total_web_bytes = 2ull * 1024 * 1024;
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = false;
  config.campaign_vantages = 6;
  config.campaign_days = 0.25;
  return config;
}

TEST(Determinism, DatasetIdenticalAcrossStudies) {
  Study a{small_config()};
  Study b{small_config()};
  const auto& da = a.dataset();
  const auto& db = b.dataset();
  ASSERT_EQ(da.cloud_subdomains.size(), db.cloud_subdomains.size());
  for (std::size_t i = 0; i < da.cloud_subdomains.size(); ++i) {
    EXPECT_EQ(da.cloud_subdomains[i].name, db.cloud_subdomains[i].name);
    EXPECT_EQ(da.cloud_subdomains[i].addresses,
              db.cloud_subdomains[i].addresses);
    EXPECT_EQ(da.cloud_subdomains[i].cnames, db.cloud_subdomains[i].cnames);
  }
  EXPECT_EQ(da.dns_queries_spent, db.dns_queries_spent);
}

TEST(Determinism, RenderedTablesIdentical) {
  Study a{small_config()};
  Study b{small_config()};
  EXPECT_EQ(render_table3(a.cloud_usage()), render_table3(b.cloud_usage()));
  EXPECT_EQ(render_table7(a.patterns()), render_table7(b.patterns()));
  EXPECT_EQ(render_table9(a.regions()), render_table9(b.regions()));
  EXPECT_EQ(render_table1(a.capture()), render_table1(b.capture()));
}

TEST(Determinism, CampaignIdentical) {
  Study a{small_config()};
  Study b{small_config()};
  const auto ka = analysis::optimal_k_regions(a.campaign());
  const auto kb = analysis::optimal_k_regions(b.campaign());
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) {
    EXPECT_DOUBLE_EQ(ka[i].avg_rtt_ms, kb[i].avg_rtt_ms);
    EXPECT_EQ(ka[i].best_regions, kb[i].best_regions);
  }
}

TEST(Determinism, SeedChangesResults) {
  auto config_a = small_config();
  auto config_b = small_config();
  config_b.world.seed = config_a.world.seed + 1;
  Study a{config_a};
  Study b{config_b};
  EXPECT_NE(render_table3(a.cloud_usage()), render_table3(b.cloud_usage()));
}

}  // namespace
}  // namespace cs::core
