#include "obs/report.h"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/json.h"

namespace cs::obs {
namespace {

TEST(ResourceUsageTest, FieldsAreNonZeroAndMonotone) {
  // Burn a visible slice of CPU so user+system time cannot round to zero.
  volatile double sink = 0.0;
  const auto before = resource_usage();
  for (int i = 0; i < 20'000'000; ++i) sink = sink + 1.0 / (i + 1);
  // Touch fresh memory so the resident set has something to grow into.
  std::vector<char> block(8 << 20, 1);
  sink = sink + std::accumulate(block.begin(), block.end(), 0.0);
  const auto after = resource_usage();

  EXPECT_GT(after.peak_rss_kb, 0);
  EXPECT_GT(after.user_cpu_us + after.system_cpu_us, 0u);
  // Monotone: CPU time and peak RSS never decrease across a measurement.
  EXPECT_GE(after.user_cpu_us, before.user_cpu_us);
  EXPECT_GE(after.system_cpu_us, before.system_cpu_us);
  EXPECT_GE(after.peak_rss_kb, before.peak_rss_kb);
  EXPECT_GT(after.user_cpu_us + after.system_cpu_us,
            before.user_cpu_us + before.system_cpu_us);
}

TEST(HistogramQuantileTest, InterpolatesInsideKnownBuckets) {
  HistogramSnapshot h;
  h.bounds = {10.0, 20.0, 30.0};
  h.buckets = {5, 5, 5, 0};
  h.count = 15;
  // Rank 7.5 of 15 lands halfway into the (10,20] bucket.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  // Rank 3 of 15 is 3/5 into the first bucket, which starts at 0.
  EXPECT_DOUBLE_EQ(h.quantile(0.2), 6.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);
  // Clamped below/above.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(2.0), 30.0);
}

TEST(HistogramQuantileTest, OverflowBucketReportsLastBound) {
  HistogramSnapshot h;
  h.bounds = {10.0, 20.0};
  h.buckets = {0, 0, 7};  // everything beyond the last bound
  h.count = 7;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 20.0);
}

TEST(HistogramQuantileTest, EmptyAndMalformedAreZero) {
  HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(empty.quantile(0.5), 0.0);
  HistogramSnapshot mismatched;
  mismatched.bounds = {1.0};
  mismatched.buckets = {1};  // should be bounds+1 entries
  mismatched.count = 1;
  EXPECT_DOUBLE_EQ(mismatched.quantile(0.5), 0.0);
}

TEST(RunReportTest, JsonCarriesOneConsistentSnapshot) {
  counter("report.test.widgets").inc(41);
  counter("fault.test.synthetic").inc(3);
  histogram("report.test.latency_us", {10.0, 100.0}).observe(5.0);

  auto report = RunReport::capture("report fixture");
  report.threads = 4;
  report.baseline_wall_ms = report.wall_ms * 2.0;
  const auto parsed = util::parse_json(report.to_json());
  ASSERT_TRUE(parsed.has_value());

  EXPECT_EQ(parsed->find("bench")->text, "report fixture");
  EXPECT_GT(parsed->find("wall_ms")->number, 0.0);
  EXPECT_DOUBLE_EQ(parsed->find("threads")->number, 4.0);
  EXPECT_NEAR(parsed->find("speedup")->number, 2.0, 0.01);
  EXPECT_GT(parsed->get("resources", "peak_rss_kb")->number, 0.0);
  ASSERT_NE(parsed->get("counters", "report.test.widgets"), nullptr);
  EXPECT_DOUBLE_EQ(parsed->get("counters", "report.test.widgets")->number,
                   41.0);
  // The fault block strips the prefix and totals every injected event.
  ASSERT_NE(parsed->get("fault", "test.synthetic"), nullptr);
  EXPECT_GE(parsed->get("fault", "total")->number, 3.0);
  // snap block always present, zero when nothing checkpointed.
  ASSERT_NE(parsed->get("snap", "stages_resumed"), nullptr);
  // Histogram percentiles ride along with their sample count.
  const auto* latency =
      parsed->get("percentiles", "report.test.latency_us");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->find("count")->number, 1.0);
  EXPECT_GT(latency->find("p99")->number, 0.0);
}

TEST(RunReportTest, CounterEventsRenderAsChromeCounterLanes) {
  auto& tracer = Tracer::instance();
  tracer.enable_collection();
  tracer.clear();
  tracer.record_counter("test.lane", 7.0);
  tracer.record_counter("test.lane", 9.5);
  const auto events = tracer.counter_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "test.lane");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_DOUBLE_EQ(events[1].value, 9.5);

  const auto parsed = util::parse_json(tracer.chrome_json());
  ASSERT_TRUE(parsed.has_value());
  const auto* trace_events = parsed->find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  int counter_lanes = 0;
  for (const auto& event : trace_events->items) {
    if (event.find("ph")->text_or("") != "C") continue;
    ++counter_lanes;
    EXPECT_EQ(event.find("name")->text, "test.lane");
    ASSERT_NE(event.get("args", "value"), nullptr);
    EXPECT_TRUE(event.get("args", "value")->is_number());
  }
  EXPECT_EQ(counter_lanes, 2);
  tracer.clear();
  tracer.disable();
}

TEST(RunReportTest, SampleCounterLaneFeedsRssLane) {
  auto& tracer = Tracer::instance();
  tracer.enable_collection();
  tracer.clear();
  RunReport::sample_counter_lane();
  bool saw_rss = false;
  for (const auto& event : tracer.counter_events())
    if (event.name == "proc.rss_kb" && event.value > 0.0) saw_rss = true;
  EXPECT_TRUE(saw_rss);
  tracer.clear();
  tracer.disable();

  // Disabled tracer: sampling is a no-op, not an error.
  RunReport::sample_counter_lane();
  EXPECT_TRUE(tracer.counter_events().empty());
}

}  // namespace
}  // namespace cs::obs
