#include "util/strings.h"

#include <gtest/gtest.h>

namespace cs::util {
namespace {

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", '.');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, SplitNonemptyDropsEmpties) {
  const auto parts = split_nonempty(".a..b.", '.');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, "."), "a.b.c");
  EXPECT_EQ(join({}, "."), "");
  EXPECT_EQ(join({"only"}, ", "), "only");
}

TEST(Strings, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("WwW.ExAmPle.COM"), "www.example.com");
  EXPECT_EQ(to_lower("123-_"), "123-_");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\nval\n"), "val");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, CaseInsensitiveEquals) {
  EXPECT_TRUE(iequals("HTTP", "http"));
  EXPECT_FALSE(iequals("http", "https"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(istarts_with("Content-Type: text/html", "content-type"));
  EXPECT_FALSE(istarts_with("abc", "abcd"));
  EXPECT_TRUE(iends_with("www.ELB.amazonaws.com", ".elb.amazonaws.com"));
  EXPECT_FALSE(iends_with("amazonaws.com", "xamazonaws.com"));
}

TEST(Strings, Contains) {
  EXPECT_TRUE(icontains("proxy.HEROKU.com", "heroku"));
  EXPECT_FALSE(icontains("example.com", "heroku"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("ab", "abc"));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512.00 B");
  EXPECT_EQ(human_bytes(2048), "2.00 KB");
  EXPECT_EQ(human_bytes(1024.0 * 1024 * 1024 * 1.5), "1.50 GB");
}

}  // namespace
}  // namespace cs::util
