#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "analysis/widearea.h"
#include "dns/resolver.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "pcap/file.h"
#include "pcap/flow.h"

/// End-to-end checks that injected faults flow through the real consumers:
/// the resolver degrades to SERVFAIL instead of crashing, the pcap reader
/// damages frames deterministically, and the campaign records vantage
/// dropout. Counters are asserted as deltas because the registry is
/// process-global.
namespace cs {
namespace {

std::uint64_t counter_value(std::string_view name) {
  return obs::MetricsRegistry::instance().snapshot().counter(name);
}

// --- DNS transport -------------------------------------------------------

constexpr net::Ipv4 kRoot{198, 41, 0, 4};

/// Single authoritative root serving www.example.com directly; one hop is
/// enough to observe every wire-level fault kind.
class FaultDnsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto root = std::make_shared<dns::AuthoritativeServer>();
    dns::SoaRecord soa;
    soa.mname = dns::Name::must_parse("a.root");
    soa.rname = dns::Name::must_parse("a.root");
    auto& zone = root->add_zone(dns::Name{}, soa);
    zone.add(dns::ResourceRecord::a(dns::Name::must_parse("www.example.com"),
                                    net::Ipv4(203, 0, 113, 80), 60));
    network.attach(kRoot, root);
  }

  dns::Resolver::Options options() {
    dns::Resolver::Options o;
    o.root_servers = {kRoot};
    o.client_address = net::Ipv4(192, 0, 2, 1);
    return o;
  }

  dns::ResolveResult resolve_www(dns::Resolver& resolver) {
    return resolver.resolve(dns::Name::must_parse("www.example.com"),
                            dns::RrType::kA);
  }

  dns::SimulatedDnsNetwork network;
};

TEST_F(FaultDnsTest, InjectedLossDegradesToServFail) {
  const auto before = counter_value("fault.dns.loss");
  fault::ScopedPlan plan{"loss=1"};
  dns::Resolver resolver{network, options()};
  const auto r = resolve_www(resolver);
  EXPECT_EQ(r.rcode, dns::Rcode::kServFail);
  EXPECT_GE(resolver.timeouts(), 1u);
  EXPECT_GT(counter_value("fault.dns.loss"), before);
}

TEST_F(FaultDnsTest, InjectedTimeoutDegradesToServFail) {
  const auto before = counter_value("fault.dns.timeout");
  fault::ScopedPlan plan{"timeout=1"};
  dns::Resolver resolver{network, options()};
  const auto r = resolve_www(resolver);
  EXPECT_EQ(r.rcode, dns::Rcode::kServFail);
  EXPECT_GE(resolver.timeouts(), 1u);
  EXPECT_GT(counter_value("fault.dns.timeout"), before);
}

TEST_F(FaultDnsTest, InjectedServFailResponsePropagates) {
  const auto before = counter_value("fault.dns.servfail");
  fault::ScopedPlan plan{"servfail=1"};
  dns::Resolver resolver{network, options()};
  const auto r = resolve_www(resolver);
  EXPECT_EQ(r.rcode, dns::Rcode::kServFail);
  // A SERVFAIL is a real (well-formed) response: no timeout, no retry.
  EXPECT_EQ(resolver.timeouts(), 0u);
  EXPECT_EQ(resolver.upstream_queries(), 1u);
  EXPECT_GT(counter_value("fault.dns.servfail"), before);
}

TEST_F(FaultDnsTest, InjectedTruncationRejectedByDecode) {
  const auto before = counter_value("fault.dns.truncate");
  fault::ScopedPlan plan{"truncate=1"};
  dns::Resolver resolver{network, options()};
  const auto r = resolve_www(resolver);
  EXPECT_EQ(r.rcode, dns::Rcode::kServFail);
  EXPECT_GE(resolver.timeouts(), 1u);
  EXPECT_GT(counter_value("fault.dns.truncate"), before);
}

TEST_F(FaultDnsTest, NoPlanMeansNoFaults) {
  const auto loss_before = counter_value("fault.dns.loss");
  dns::Resolver resolver{network, options()};
  const auto r = resolve_www(resolver);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(resolver.timeouts(), 0u);
  EXPECT_EQ(counter_value("fault.dns.loss"), loss_before);
}

TEST_F(FaultDnsTest, PartialLossIsReproducible) {
  // Identical query sequences hash to identical fault keys, so two fresh
  // resolvers under the same plan see exactly the same losses.
  fault::ScopedPlan plan{"loss=0.5,seed=123"};
  const std::vector<std::string> names = {
      "www.example.com", "a.example.com", "b.example.com",
      "www.example.com", "c.example.com"};
  std::vector<dns::Rcode> first, second;
  std::uint64_t queries_first = 0, queries_second = 0;
  {
    dns::Resolver resolver{network, options()};
    for (const auto& n : names)
      first.push_back(
          resolver.resolve(dns::Name::must_parse(n), dns::RrType::kA).rcode);
    queries_first = resolver.upstream_queries();
  }
  {
    dns::Resolver resolver{network, options()};
    for (const auto& n : names)
      second.push_back(
          resolver.resolve(dns::Name::must_parse(n), dns::RrType::kA).rcode);
    queries_second = resolver.upstream_queries();
  }
  EXPECT_EQ(first, second);
  EXPECT_EQ(queries_first, queries_second);
}

// --- pcap ----------------------------------------------------------------

class FaultPcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("cs_fault_pcap_test_" + std::to_string(::getpid()) + ".pcap");
    std::vector<pcap::Packet> packets(32);
    for (std::size_t i = 0; i < packets.size(); ++i) {
      packets[i].timestamp = 1340700000.0 + static_cast<double>(i);
      packets[i].data.resize(64);
      for (std::size_t b = 0; b < 64; ++b)
        packets[i].data[b] = static_cast<std::uint8_t>(i + b);
    }
    pcap::write_all(path_.string(), packets);
    pristine_ = packets;
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
  std::vector<pcap::Packet> pristine_;
};

TEST_F(FaultPcapTest, TruncationIsDeterministicAndCounted) {
  const auto before = counter_value("fault.pcap.truncated");
  fault::ScopedPlan plan{"truncate=1,seed=5"};
  const auto damaged = pcap::read_all(path_.string());
  EXPECT_EQ(counter_value("fault.pcap.truncated") - before, 32u);
  ASSERT_EQ(damaged.size(), pristine_.size());
  for (std::size_t i = 0; i < damaged.size(); ++i) {
    // Strict prefix of the original bytes.
    ASSERT_LT(damaged[i].data.size(), pristine_[i].data.size()) << i;
    EXPECT_TRUE(std::equal(damaged[i].data.begin(), damaged[i].data.end(),
                           pristine_[i].data.begin()))
        << i;
  }
  // Re-reading under the same plan reproduces the same damage byte for
  // byte: decisions are keyed by record index, not read order or state.
  const auto again = pcap::read_all(path_.string());
  ASSERT_EQ(again.size(), damaged.size());
  for (std::size_t i = 0; i < again.size(); ++i)
    EXPECT_EQ(again[i].data, damaged[i].data) << i;
}

TEST_F(FaultPcapTest, CorruptionFlipsExactlyOneByte) {
  fault::ScopedPlan plan{"corrupt=1,seed=5"};
  const auto damaged = pcap::read_all(path_.string());
  ASSERT_EQ(damaged.size(), pristine_.size());
  for (std::size_t i = 0; i < damaged.size(); ++i) {
    ASSERT_EQ(damaged[i].data.size(), pristine_[i].data.size()) << i;
    std::size_t diffs = 0;
    for (std::size_t b = 0; b < damaged[i].data.size(); ++b) {
      if (damaged[i].data[b] != pristine_[i].data[b]) {
        ++diffs;
        EXPECT_EQ(damaged[i].data[b],
                  static_cast<std::uint8_t>(pristine_[i].data[b] ^ 0xFF));
      }
    }
    EXPECT_EQ(diffs, 1u) << i;
  }
}

TEST_F(FaultPcapTest, FlowAssemblyToleratesDamagedCapture) {
  // Overwrite the capture with real TCP frames so damage hits a decoder
  // that actually validates structure.
  const net::Endpoint client{net::Ipv4(10, 0, 0, 1), 50123};
  const net::Endpoint server{net::Ipv4(54, 1, 2, 3), 443};
  std::vector<pcap::Packet> frames;
  frames.push_back(pcap::make_tcp_packet(1.0, client, server,
                                         pcap::TcpFlags{.syn = true}, 0, {}));
  const std::vector<std::uint8_t> body(100, 0x42);
  for (int i = 0; i < 20; ++i)
    frames.push_back(pcap::make_tcp_packet(
        2.0 + i, client, server, pcap::TcpFlags{.ack = true, .psh = true},
        1 + i * 100, body));
  frames.push_back(pcap::make_tcp_packet(30.0, client, server,
                                         pcap::TcpFlags{.fin = true}, 2001,
                                         {}));
  pcap::write_all(path_.string(), frames);

  fault::ScopedPlan plan{"truncate=0.3,corrupt=0.3,seed=9"};
  const auto damaged = pcap::read_all(path_.string());
  ASSERT_EQ(damaged.size(), frames.size());
  std::uint64_t undecodable = 0;
  const auto flows = pcap::assemble_flows(damaged, {}, &undecodable);
  // Damage may or may not land on validated header bytes, but assembly
  // must account for every frame without crashing.
  std::uint64_t assembled = 0;
  for (const auto& flow : flows) assembled += flow.packets;
  EXPECT_EQ(assembled + undecodable, frames.size());
}

// --- wide-area campaign --------------------------------------------------

TEST(FaultCampaignTest, VantageDropoutRecordedAndDeterministic) {
  const auto provider = cloud::Provider::make_ec2(31);
  internet::WideAreaModel model{{.seed = 31}};
  const auto vantages = internet::planetlab_vantages(4);
  std::vector<const cloud::Region*> regions;
  for (const auto& region : provider.regions()) regions.push_back(&region);

  const char* kSpec = "vantage_drop=0.3,seed=7";
  const auto before = counter_value("fault.campaign.dropped_rounds");
  fault::ScopedPlan plan{kSpec};
  const auto campaign =
      analysis::run_campaign(model, vantages, regions, /*days=*/0.25);
  ASSERT_EQ(campaign.dropped_rounds.size(), vantages.size());
  EXPECT_GT(campaign.total_dropped_rounds(), 0u);
  EXPECT_EQ(counter_value("fault.campaign.dropped_rounds") - before,
            campaign.total_dropped_rounds());

  // Recompute the per-vantage dropout oracle from an independent Plan
  // built from the same spec, and check dropped rounds produced no
  // samples at all.
  const auto spec = fault::Spec::parse(kSpec);
  ASSERT_TRUE(spec);
  const fault::Plan oracle{*spec};
  const std::size_t rounds = campaign.rounds();
  for (std::size_t v = 0; v < vantages.size(); ++v) {
    auto rng = oracle.stream(fault::Kind::kVantageDrop, v);
    std::uint64_t expected_drops = 0;
    for (std::size_t round = 0; round < rounds; ++round) {
      const bool offline = rng.chance(spec->vantage_drop);
      expected_drops += offline;
      if (!offline) continue;
      for (std::size_t r = 0; r < regions.size(); ++r) {
        EXPECT_FALSE(campaign.rtt_ms[v][r][round]) << v << " " << round;
        EXPECT_FALSE(campaign.tput_kbps[v][r][round]) << v << " " << round;
      }
    }
    EXPECT_EQ(campaign.dropped_rounds[v], expected_drops) << v;
  }

  // Same plan, same inputs: the re-run is identical, dropout included.
  const auto rerun =
      analysis::run_campaign(model, vantages, regions, /*days=*/0.25);
  EXPECT_EQ(rerun.dropped_rounds, campaign.dropped_rounds);
  EXPECT_EQ(rerun.rtt_ms, campaign.rtt_ms);
  EXPECT_EQ(rerun.tput_kbps, campaign.tput_kbps);
}

TEST(FaultCampaignTest, NoPlanMeansNoDropout) {
  const auto provider = cloud::Provider::make_ec2(31);
  internet::WideAreaModel model{{.seed = 31}};
  const auto vantages = internet::planetlab_vantages(2);
  std::vector<const cloud::Region*> regions;
  for (const auto& region : provider.regions()) regions.push_back(&region);
  const auto campaign =
      analysis::run_campaign(model, vantages, regions, /*days=*/0.25);
  EXPECT_EQ(campaign.total_dropped_rounds(), 0u);
}

}  // namespace
}  // namespace cs
