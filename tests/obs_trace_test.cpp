#include "obs/trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>

// Global allocation counter for the zero-allocation guarantee below. The
// override must live in exactly one TU of the test binary.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace cs::obs {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().clear();
  }
};

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  { Span span{"ignored"}; }
  EXPECT_TRUE(Tracer::instance().events().empty());
}

TEST_F(TraceTest, DisabledSpanIsAllocationFree) {
  Tracer::instance();  // settle the lazy singleton before measuring
  const auto before = g_allocations.load();
  for (int i = 0; i < 1000; ++i) Span span{"hot.path"};
  EXPECT_EQ(g_allocations.load(), before);
}

TEST_F(TraceTest, NestedSpansAreParentedAndOrdered) {
  Tracer::instance().enable_collection();
  {
    Span outer{"outer"};
    { Span inner{"inner"}; }
    { Span sibling{"sibling"}; }
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 3u);

  // Events are recorded at open time, so the order is pre-order.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "sibling");

  EXPECT_EQ(events[0].parent, -1);
  EXPECT_EQ(events[1].parent, 0);
  EXPECT_EQ(events[2].parent, 0);
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].depth, 1);

  // Children are contained in the parent's time range.
  for (int child : {1, 2}) {
    EXPECT_GE(events[child].start_us, events[0].start_us);
    EXPECT_LE(events[child].start_us + events[child].dur_us,
              events[0].start_us + events[0].dur_us);
  }
  // The sibling opens at or after the first child closed.
  EXPECT_GE(events[2].start_us, events[1].start_us + events[1].dur_us);
}

TEST_F(TraceTest, SpansOnAnotherThreadGetTheirOwnLane) {
  Tracer::instance().enable_collection();
  std::uint32_t main_tid = 0;
  {
    Span here{"main.span"};
    main_tid = Tracer::thread_ordinal();
    std::thread worker{[] { Span there{"worker.span"}; }};
    worker.join();
  }
  const auto events = Tracer::instance().events();
  ASSERT_EQ(events.size(), 2u);
  const auto& worker_event =
      events[0].name == "worker.span" ? events[0] : events[1];
  ASSERT_EQ(worker_event.name, "worker.span");
  EXPECT_NE(worker_event.tid, main_tid);
  // Nesting is per thread: the worker's span is a root, not a child of
  // the main thread's open span.
  EXPECT_EQ(worker_event.parent, -1);
  EXPECT_EQ(worker_event.depth, 0);
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  Tracer::instance().enable_collection();
  {
    Span outer{"stage \"quoted\""};
    Span inner{"study.dataset"};
  }
  const auto json = Tracer::instance().chrome_json();

  // Structure: one object with a traceEvents array of "X" phase events.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"study.dataset\""), std::string::npos);
  // The quote in the span name must be escaped.
  EXPECT_NE(json.find("stage \\\"quoted\\\""), std::string::npos);
  EXPECT_EQ(json.find("stage \"quoted\""), std::string::npos);

  // Braces and brackets balance (a cheap well-formedness proxy that
  // catches missing separators and unterminated events).
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{') ++braces;
    else if (c == '}') --braces;
    else if (c == '[') ++brackets;
    else if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TraceTest, StatsAggregateByName) {
  Tracer::instance().enable_collection();
  for (int i = 0; i < 3; ++i) Span span{"repeated"};
  {
    Span parent{"parent"};
    Span child{"repeated"};
  }
  const auto stats = Tracer::instance().stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "repeated");
  EXPECT_EQ(stats[0].count, 4u);
  EXPECT_EQ(stats[1].name, "parent");
  EXPECT_EQ(stats[1].count, 1u);
  // Parent self-time excludes the nested child's duration.
  EXPECT_LE(stats[1].self_us, stats[1].total_us);

  const auto summary = Tracer::instance().render_summary();
  EXPECT_NE(summary.find("repeated"), std::string::npos);
  EXPECT_NE(summary.find("parent"), std::string::npos);
}

TEST_F(TraceTest, ClearDropsEvents) {
  Tracer::instance().enable_collection();
  { Span span{"gone"}; }
  ASSERT_FALSE(Tracer::instance().events().empty());
  Tracer::instance().clear();
  EXPECT_TRUE(Tracer::instance().events().empty());
}

}  // namespace
}  // namespace cs::obs
