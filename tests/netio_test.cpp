// The live-socket DNS backend, bottom up: timing wheel and frame codec
// units, reactor timer/fd dispatch, then DnsSocketServer +
// SocketDnsTransport end to end over real localhost UDP — byte-equality
// against the in-process backend, unreachable fast-fail, retransmit
// expiry under injected loss, pipelined multi-threaded exchanges under a
// tiny in-flight cap, and a malformed-datagram corpus the server must
// survive. Runs under ASan/TSan in CI (socket-smoke and tsan jobs).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dns/message.h"
#include "dns/resolver.h"
#include "dns/transport.h"
#include "fault/fault.h"
#include "netio/chaos.h"
#include "netio/loopback.h"
#include "netio/reactor.h"
#include "netio/server.h"
#include "netio/socket.h"
#include "netio/timer_wheel.h"
#include "netio/transport.h"
#include "netio/wire.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace cs::netio {
namespace {

// --- timing wheel ---------------------------------------------------------

TEST(TimerWheel, FiresInDeadlineOrder) {
  TimerWheel wheel{/*tick_us=*/100, /*slots=*/16};
  std::vector<int> order;
  wheel.schedule(3000, [&] { order.push_back(3); });
  wheel.schedule(1000, [&] { order.push_back(1); });
  wheel.schedule(2000, [&] { order.push_back(2); });
  EXPECT_EQ(wheel.next_deadline(), 1000u);
  for (auto& fn : wheel.advance(5000)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(wheel.active(), 0u);
  EXPECT_FALSE(wheel.next_deadline().has_value());
}

TEST(TimerWheel, TiesFireInScheduleOrder) {
  TimerWheel wheel;
  std::vector<int> order;
  wheel.schedule(500, [&] { order.push_back(1); });
  wheel.schedule(500, [&] { order.push_back(2); });
  wheel.schedule(500, [&] { order.push_back(3); });
  for (auto& fn : wheel.advance(1000)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, CancelPreventsFiring) {
  TimerWheel wheel;
  bool fired = false;
  const auto token = wheel.schedule(100, [&] { fired = true; });
  EXPECT_TRUE(wheel.cancel(token));
  EXPECT_FALSE(wheel.cancel(token));  // already gone
  for (auto& fn : wheel.advance(1000)) fn();
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.active(), 0u);
}

TEST(TimerWheel, FutureTimersSurviveEarlyAdvances) {
  TimerWheel wheel{/*tick_us=*/100, /*slots=*/8};
  int fired = 0;
  // 5000 us is several full revolutions of an 8-slot, 100 us wheel: the
  // sweep must skip it (future lap) every pass until it is really due.
  wheel.schedule(5000, [&] { ++fired; });
  for (std::uint64_t now = 100; now < 5000; now += 100) {
    for (auto& fn : wheel.advance(now)) fn();
    ASSERT_EQ(fired, 0) << "fired early at " << now;
  }
  for (auto& fn : wheel.advance(5000)) fn();
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, PastDeadlineFiresOnNextAdvance) {
  TimerWheel wheel{/*tick_us=*/100, /*slots=*/8};
  for (auto& fn : wheel.advance(10'000)) fn();
  bool fired = false;
  // Deadline far behind the cursor: its natural slot was already swept.
  wheel.schedule(400, [&] { fired = true; });
  for (auto& fn : wheel.advance(10'100)) fn();
  EXPECT_TRUE(fired);
}

TEST(TimerWheel, EqualDeadlinesAcrossRotationsFireInScheduleOrder) {
  // The tie-break contract holds unconditionally: equal deadlines fire in
  // schedule order even when the schedules straddle cursor advances and
  // full revolutions of the wheel (5000 us is laps of an 8x100 wheel).
  TimerWheel wheel{/*tick_us=*/100, /*slots=*/8};
  std::vector<int> order;
  wheel.schedule(5000, [&] { order.push_back(1); });
  for (auto& fn : wheel.advance(900)) fn();
  wheel.schedule(5000, [&] { order.push_back(2); });
  for (auto& fn : wheel.advance(2500)) fn();
  wheel.schedule(5000, [&] { order.push_back(3); });
  for (auto& fn : wheel.advance(6000)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, SameSlotDifferentLapsFireInDeadlineOrder) {
  // 800 and 1600 share a slot on an 8x100 wheel but sit a lap apart;
  // scheduled in reverse, the sweep must still fire them deadline-first.
  TimerWheel wheel{/*tick_us=*/100, /*slots=*/8};
  std::vector<int> order;
  wheel.schedule(1600, [&] { order.push_back(2); });
  wheel.schedule(800, [&] { order.push_back(1); });
  for (auto& fn : wheel.advance(2000)) fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerWheel, AdvanceToleratesRegressingClock) {
  TimerWheel wheel{/*tick_us=*/100, /*slots=*/8};
  for (auto& fn : wheel.advance(10'000)) fn();
  int fired = 0;
  wheel.schedule(10'200, [&] { ++fired; });
  // A clock that runs backwards must neither fire the timer early nor
  // corrupt the sweep window: advance clamps to its high-water mark.
  for (auto& fn : wheel.advance(400)) fn();
  EXPECT_EQ(fired, 0);
  for (auto& fn : wheel.advance(10'200)) fn();
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheel, RandomizedFiringMatchesReferenceModel) {
  // Model check: under a seeded random interleaving of schedules and
  // advances, every advance fires exactly the due set, globally ordered
  // by (deadline, schedule sequence) — the invariant the transport's
  // retransmit determinism leans on.
  util::Rng rng{0xC10C4DE7EC7AB1EULL};
  TimerWheel wheel{/*tick_us=*/50, /*slots=*/16};
  struct Ref {
    std::uint64_t deadline;
    int seq;
  };
  std::vector<Ref> outstanding;
  std::vector<int> fired;
  std::uint64_t now = 0;
  int seq = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.uniform01() < 0.6) {
      const std::uint64_t deadline = now + 1 + rng.next_below(3000);
      const int id = seq++;
      wheel.schedule(deadline, [&fired, id] { fired.push_back(id); });
      outstanding.push_back({deadline, id});
    } else {
      now += 50 + rng.next_below(800);
      std::stable_sort(outstanding.begin(), outstanding.end(),
                       [](const Ref& a, const Ref& b) {
                         return a.deadline != b.deadline
                                    ? a.deadline < b.deadline
                                    : a.seq < b.seq;
                       });
      std::vector<int> want;
      std::vector<Ref> keep;
      for (const auto& r : outstanding) {
        if (r.deadline <= now)
          want.push_back(r.seq);
        else
          keep.push_back(r);
      }
      outstanding = std::move(keep);
      fired.clear();
      for (auto& fn : wheel.advance(now)) fn();
      ASSERT_EQ(fired, want) << "divergence at now=" << now;
    }
  }
}

// --- frame codec ----------------------------------------------------------

TEST(Wire, FrameRoundTrip) {
  const std::vector<std::uint8_t> payload = {0xAB, 0xCD, 0x01, 0x00, 0x42};
  const net::Ipv4 client{192, 0, 2, 1};
  const net::Ipv4 server{198, 41, 0, 4};
  const auto datagram =
      encode_frame(FrameKind::kQuery, client, server, payload);
  ASSERT_EQ(datagram.size(), kFrameHeaderSize + payload.size());
  const auto frame = decode_frame(datagram);
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::kQuery);
  EXPECT_EQ(frame->client.value(), client.value());
  EXPECT_EQ(frame->server.value(), server.value());
  EXPECT_TRUE(std::equal(frame->payload.begin(), frame->payload.end(),
                         payload.begin(), payload.end()));
}

TEST(Wire, DecodeRejectsJunk) {
  EXPECT_FALSE(decode_frame({}).has_value());
  const std::vector<std::uint8_t> short_header = {'C', 'S', 1, 0, 0};
  EXPECT_FALSE(decode_frame(short_header).has_value());
  auto bad = encode_frame(FrameKind::kQuery, net::Ipv4{1}, net::Ipv4{2}, {});
  bad[0] = 'X';  // magic
  EXPECT_FALSE(decode_frame(bad).has_value());
  auto version = encode_frame(FrameKind::kQuery, net::Ipv4{1}, net::Ipv4{2},
                              {});
  version[2] = 9;
  EXPECT_FALSE(decode_frame(version).has_value());
  auto kind = encode_frame(FrameKind::kQuery, net::Ipv4{1}, net::Ipv4{2}, {});
  kind[3] = 7;
  EXPECT_FALSE(decode_frame(kind).has_value());
}

TEST(Wire, DnsIdRewriteRoundTrips) {
  std::vector<std::uint8_t> payload = {0x12, 0x34, 0x01, 0x00};
  EXPECT_EQ(dns_id(payload), 0x1234);
  rewrite_dns_id(payload, 0xBEEF);
  EXPECT_EQ(dns_id(payload), 0xBEEF);
  EXPECT_EQ(payload[2], 0x01);  // rest untouched
  std::vector<std::uint8_t> tiny = {0x01};
  EXPECT_FALSE(dns_id(tiny).has_value());
  rewrite_dns_id(tiny, 0xFFFF);  // must not write out of bounds
  EXPECT_EQ(tiny[0], 0x01);
}

// --- reactor --------------------------------------------------------------

TEST(Reactor, RunAfterFiresOnLoopThread) {
  Reactor reactor{"netio-test"};
  std::mutex m;
  std::condition_variable cv;
  bool fired = false;
  reactor.start();
  reactor.run_after(1000, [&] {
    std::lock_guard lock{m};
    fired = true;
    cv.notify_one();
  });
  std::unique_lock lock{m};
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired; }));
  reactor.stop();
}

TEST(Reactor, CancelTimerSuppressesCallback) {
  Reactor reactor{"netio-test"};
  std::atomic<bool> fired{false};
  reactor.start();
  const auto token =
      reactor.run_after(200'000, [&] { fired.store(true); });
  EXPECT_TRUE(reactor.cancel_timer(token));
  reactor.stop();  // joins: any pending callback would have run by now
  EXPECT_FALSE(fired.load());
}

TEST(Reactor, DispatchesReadableFd) {
  UdpSocket rx;
  ASSERT_TRUE(rx.open_loopback(0, false));
  UdpSocket tx;
  ASSERT_TRUE(tx.open_loopback(0, false));
  ASSERT_TRUE(tx.connect_loopback(rx.local_port()));

  Reactor reactor{"netio-test"};
  std::mutex m;
  std::condition_variable cv;
  std::vector<std::uint8_t> got;
  ASSERT_TRUE(reactor.add_fd(rx.fd(), [&] {
    std::uint8_t buffer[64];
    while (const auto n = rx.recv_from(buffer, nullptr)) {
      std::lock_guard lock{m};
      got.assign(buffer, buffer + *n);
      cv.notify_one();
    }
  }));
  reactor.start();
  const std::vector<std::uint8_t> ping = {1, 2, 3};
  ASSERT_TRUE(tx.send(ping));
  std::unique_lock lock{m};
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return !got.empty(); }));
  EXPECT_EQ(got, ping);
  reactor.stop();
}

// --- server + transport end to end ----------------------------------------

constexpr net::Ipv4 kRoot{198, 41, 0, 4};
constexpr net::Ipv4 kClient{192, 0, 2, 1};

/// One authoritative root answering www.example.com, fronted by live
/// sockets; sim and socket backends share the routing table.
class SocketBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto root = std::make_shared<dns::AuthoritativeServer>();
    dns::SoaRecord soa;
    soa.mname = dns::Name::must_parse("a.root");
    soa.rname = dns::Name::must_parse("a.root");
    auto& zone = root->add_zone(dns::Name{}, soa);
    zone.add(dns::ResourceRecord::a(dns::Name::must_parse("www.example.com"),
                                    net::Ipv4(203, 0, 113, 80), 60));
    network.attach(kRoot, root);
  }

  /// A wire-format A query with the given DNS message ID.
  static std::vector<std::uint8_t> query_bytes(std::uint16_t id) {
    dns::Message query;
    query.header.id = id;
    query.header.rd = false;
    query.questions.push_back(dns::Question{
        dns::Name::must_parse("www.example.com"), dns::RrType::kA});
    return query.encode();
  }

  LoopbackDns::Options tight_options() {
    LoopbackDns::Options options;
    options.server_threads = 2;
    options.max_in_flight = 8;
    options.rto_us = 20'000;
    options.max_attempts = 3;
    return options;
  }

  dns::SimulatedDnsNetwork network;
};

TEST_F(SocketBackendTest, SocketExchangeMatchesSimBytes) {
  LoopbackDns loopback{network, tight_options()};
  ASSERT_TRUE(loopback.start());
  const auto query = query_bytes(0x1234);
  const auto sim = network.exchange(kClient, kRoot, query);
  const auto socket = loopback.transport().exchange(kClient, kRoot, query);
  ASSERT_TRUE(sim.has_value());
  ASSERT_TRUE(socket.has_value());
  // Identical bytes, DNS ID included: the mux ID never leaks upward.
  EXPECT_EQ(*sim, *socket);
}

TEST_F(SocketBackendTest, UnknownServerFailsFastAsUnreachable) {
  LoopbackDns loopback{network, tight_options()};
  ASSERT_TRUE(loopback.start());
  const auto before =
      obs::MetricsRegistry::instance().snapshot().counter(
          "netio.client.unreachable");
  const auto reply = loopback.transport().exchange(
      kClient, net::Ipv4{10, 9, 9, 9}, query_bytes(7));
  EXPECT_FALSE(reply.has_value());
  EXPECT_GT(obs::MetricsRegistry::instance().snapshot().counter(
                "netio.client.unreachable"),
            before);
}

TEST_F(SocketBackendTest, DownServerFailsFastAsUnreachable) {
  network.set_down(kRoot, true);
  LoopbackDns loopback{network, tight_options()};
  ASSERT_TRUE(loopback.start());
  EXPECT_FALSE(
      loopback.transport().exchange(kClient, kRoot, query_bytes(8)));
  network.set_down(kRoot, false);
  EXPECT_TRUE(
      loopback.transport().exchange(kClient, kRoot, query_bytes(9)));
}

TEST_F(SocketBackendTest, InjectedLossExpiresAfterRetransmits) {
  auto options = tight_options();
  options.rto_us = 2'000;  // keep attempts * rto tiny
  LoopbackDns loopback{network, options};
  ASSERT_TRUE(loopback.start());
  const auto snapshot_before = obs::MetricsRegistry::instance().snapshot();
  {
    fault::ScopedPlan plan{"loss=1"};
    EXPECT_FALSE(
        loopback.transport().exchange(kClient, kRoot, query_bytes(10)));
  }
  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  // All three attempts reached the server (loss re-decided identically),
  // the client retransmitted twice, then the exchange expired.
  EXPECT_GE(snapshot.counter("netio.client.retransmits") -
                snapshot_before.counter("netio.client.retransmits"),
            2u);
  EXPECT_GT(snapshot.counter("netio.client.expirations"),
            snapshot_before.counter("netio.client.expirations"));
  // And the backend recovers: the next exchange succeeds.
  EXPECT_TRUE(
      loopback.transport().exchange(kClient, kRoot, query_bytes(11)));
}

TEST_F(SocketBackendTest, PipelinedExchangesUnderTinyInFlightCap) {
  auto options = tight_options();
  options.max_in_flight = 2;  // force backpressure
  LoopbackDns loopback{network, options};
  ASSERT_TRUE(loopback.start());
  const auto expected = network.exchange(kClient, kRoot, query_bytes(0));
  ASSERT_TRUE(expected.has_value());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const auto id =
            static_cast<std::uint16_t>(t * kPerThread + i + 1);
        auto reply =
            loopback.transport().exchange(kClient, kRoot, query_bytes(id));
        if (!reply) {
          mismatches.fetch_add(1);
          continue;
        }
        // Each caller gets its own DNS ID back; the rest of the message
        // matches the sim answer byte for byte.
        auto normalized = *reply;
        rewrite_dns_id(normalized, 0);
        auto want = *expected;
        rewrite_dns_id(want, 0);
        if (dns_id(*reply) != id || normalized != want)
          mismatches.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(SocketBackendTest, ResolverRunsUnchangedOverSockets) {
  LoopbackDns loopback{network, tight_options()};
  ASSERT_TRUE(loopback.start());
  dns::Resolver::Options options;
  options.root_servers = {kRoot};
  options.client_address = kClient;
  dns::Resolver resolver{loopback.transport(), options};
  const auto result = resolver.resolve(
      dns::Name::must_parse("www.example.com"), dns::RrType::kA);
  ASSERT_TRUE(result.ok());
  const auto addresses = result.addresses();
  ASSERT_EQ(addresses.size(), 1u);
  EXPECT_EQ(addresses[0].value(), net::Ipv4(203, 0, 113, 80).value());
}

// --- malformed datagram corpus (satellite: server must not crash) ---------

TEST_F(SocketBackendTest, ServerSurvivesMalformedDatagramCorpus) {
  LoopbackDns loopback{network, tight_options()};
  ASSERT_TRUE(loopback.start());

  UdpSocket attacker;
  ASSERT_TRUE(attacker.open_loopback(0, false));
  ASSERT_TRUE(attacker.connect_loopback(loopback.server().port()));

  const auto framed = [&](FrameKind kind, std::vector<std::uint8_t> payload) {
    return encode_frame(kind, kClient, kRoot, payload);
  };
  std::vector<std::vector<std::uint8_t>> corpus;
  corpus.push_back({});                    // empty datagram
  corpus.push_back({0x00});                // single byte
  corpus.push_back({'C', 'S'});            // magic only
  corpus.push_back({'C', 'S', 1, 0});      // header truncated mid-address
  corpus.push_back({'X', 'Y', 1, 0, 0, 0, 0, 0, 0, 0, 0, 0});  // bad magic
  corpus.push_back({'C', 'S', 9, 0, 0, 0, 0, 0, 0, 0, 0, 0});  // bad version
  corpus.push_back({'C', 'S', 1, 7, 0, 0, 0, 0, 0, 0, 0, 0});  // bad kind
  // Response/unreachable kinds sent *to* the server (role confusion).
  corpus.push_back(framed(FrameKind::kResponse, {0x00, 0x01}));
  corpus.push_back(framed(FrameKind::kUnreachable, {0x00, 0x01}));
  // Valid frame, empty DNS payload (decoder must answer FORMERR or drop).
  corpus.push_back(framed(FrameKind::kQuery, {}));
  // Valid frame, garbage DNS payload.
  corpus.push_back(framed(FrameKind::kQuery,
                          {0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0xFF}));
  // Valid frame, truncated DNS header (shorter than 12 bytes).
  corpus.push_back(framed(FrameKind::kQuery, {0x00, 0x01, 0x02}));
  // A valid frame cut mid-header (header is 12 bytes): the decoder sees
  // real magic/version/kind but runs out of address bytes.
  const auto whole = framed(FrameKind::kQuery, query_bytes(0x55));
  for (const std::size_t cut : {6u, 8u, 10u})
    corpus.emplace_back(whole.begin(),
                        whole.begin() + static_cast<std::ptrdiff_t>(cut));
  // The same role-confused response twice: a duplicated stray must be
  // dropped cold both times, not tallied into any pending state.
  corpus.push_back(framed(FrameKind::kResponse, {0x00, 0x02}));
  corpus.push_back(framed(FrameKind::kResponse, {0x00, 0x02}));
  // A 64 KiB garbage blob (oversized but deliverable over loopback).
  corpus.push_back(std::vector<std::uint8_t>(60'000, 0xAA));

  for (const auto& datagram : corpus) attacker.send(datagram);

  // The server is still alive and correct: a well-formed exchange answers
  // with exactly the sim bytes, repeatedly (every worker still serves).
  const auto want = network.exchange(kClient, kRoot, query_bytes(0x77));
  ASSERT_TRUE(want.has_value());
  for (int i = 0; i < 8; ++i) {
    const auto got =
        loopback.transport().exchange(kClient, kRoot, query_bytes(0x77));
    ASSERT_TRUE(got.has_value()) << "exchange " << i;
    EXPECT_EQ(*got, *want) << "exchange " << i;
  }
}

// --- chaos link on the live path ------------------------------------------

TEST_F(SocketBackendTest, ChaosDuplicatesAnswerOnceAndLandAsStrays) {
  // dup=1 doubles every datagram in both directions; the held-back copies
  // of each response arrive after their exchange settled, carrying a mux
  // ID that is now stale. The FIFO free-list keeps released IDs cold and
  // the server check catches immediate reuse, so every late copy must be
  // counted a stray — never delivered, never corrupting a later answer.
  auto options = tight_options();
  options.chaos.dup = 1.0;
  options.chaos.delay_us = 500;
  options.chaos.jitter_us = 200;
  LoopbackDns loopback{network, options};
  ASSERT_TRUE(loopback.start());
  const auto want = network.exchange(kClient, kRoot, query_bytes(0));
  ASSERT_TRUE(want.has_value());
  const auto before = obs::MetricsRegistry::instance().snapshot();
  constexpr int kExchanges = 24;
  for (int i = 0; i < kExchanges; ++i) {
    const auto id = static_cast<std::uint16_t>(0x400 + i);
    const auto got =
        loopback.transport().exchange(kClient, kRoot, query_bytes(id));
    ASSERT_TRUE(got.has_value()) << "exchange " << i;
    EXPECT_EQ(dns_id(*got), id) << "exchange " << i;
    auto normalized = *got;
    rewrite_dns_id(normalized, 0);
    auto expected = *want;
    rewrite_dns_id(expected, 0);
    EXPECT_EQ(normalized, expected) << "exchange " << i;
  }
  // Let the held-back duplicates land before reading the counters.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const auto after = obs::MetricsRegistry::instance().snapshot();
  EXPECT_GT(after.counter("netio.chaos.dups"),
            before.counter("netio.chaos.dups"));
  EXPECT_GT(after.counter("netio.client.strays"),
            before.counter("netio.client.strays"));
  // Exactly one response settled each exchange: duplicates never matched
  // a pending slot, whatever their arrival timing.
  EXPECT_EQ(after.counter("netio.client.responses") -
                before.counter("netio.client.responses"),
            static_cast<std::uint64_t>(kExchanges));
}

TEST_F(SocketBackendTest, ChaosDropClampForcesEventualDelivery) {
  // drop=1 discards every datagram until the per-key budget
  // (max_attempts - 1, shared by both directions) is spent, then
  // force-delivers: the final attempt must get through and the answer
  // must be byte-identical to the sim — the survivability contract.
  auto options = tight_options();
  options.rto_us = 2'000;  // keep the forced retransmit schedule quick
  options.chaos.drop = 1.0;
  LoopbackDns loopback{network, options};
  ASSERT_TRUE(loopback.start());
  const auto before = obs::MetricsRegistry::instance().snapshot();
  const auto want = network.exchange(kClient, kRoot, query_bytes(0x99));
  const auto got =
      loopback.transport().exchange(kClient, kRoot, query_bytes(0x99));
  ASSERT_TRUE(want.has_value());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, *want);
  const auto after = obs::MetricsRegistry::instance().snapshot();
  EXPECT_GE(after.counter("netio.chaos.drops") -
                before.counter("netio.chaos.drops"),
            2u);
  EXPECT_GT(after.counter("netio.chaos.forced_deliveries"),
            before.counter("netio.chaos.forced_deliveries"));
  EXPECT_EQ(after.counter("netio.client.expirations"),
            before.counter("netio.client.expirations"));
}

TEST_F(SocketBackendTest, RunningFlagGatesExchangeAcrossTheLifecycle) {
  // Regression: running() used to read a plain bool that stop() wrote
  // under the transport mutex — a racy read for callers probing the
  // lifecycle from other threads. It is atomic now, and exchange() must
  // refuse (not crash, not touch the wire) outside the start/stop window.
  SocketDnsTransport::Options options;
  options.server_port = 1;  // never actually contacted
  SocketDnsTransport transport{options};
  EXPECT_FALSE(transport.running());
  EXPECT_FALSE(transport.exchange(kClient, kRoot, query_bytes(31)));
  ASSERT_TRUE(transport.start());
  EXPECT_TRUE(transport.running());
  transport.stop();
  EXPECT_FALSE(transport.running());
  EXPECT_FALSE(transport.exchange(kClient, kRoot, query_bytes(32)));
}

TEST_F(SocketBackendTest, StopFailsPendingExchangesInsteadOfHanging) {
  auto options = tight_options();
  options.rto_us = 500'000;  // long enough that stop() races the wait
  LoopbackDns loopback{network, options};
  ASSERT_TRUE(loopback.start());
  fault::ScopedPlan plan{"loss=1"};  // exchange would otherwise block
  std::thread caller{[&] {
    EXPECT_FALSE(
        loopback.transport().exchange(kClient, kRoot, query_bytes(21)));
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  loopback.stop();
  caller.join();
}

}  // namespace
}  // namespace cs::netio
