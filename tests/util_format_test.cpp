#include "util/format.h"

#include <gtest/gtest.h>

namespace cs::util {
namespace {

TEST(Format, PlainPassthrough) {
  EXPECT_EQ(fmt("hello"), "hello");
  EXPECT_EQ(fmt(""), "");
}

TEST(Format, BasicSubstitutions) {
  EXPECT_EQ(fmt("{} + {} = {}", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(fmt("host={}", "www.example.com"), "host=www.example.com");
  EXPECT_EQ(fmt("{}", std::string{"owned"}), "owned");
  EXPECT_EQ(fmt("{}", true), "true");
  EXPECT_EQ(fmt("{}", false), "false");
}

TEST(Format, IntegerTypes) {
  EXPECT_EQ(fmt("{}", -42), "-42");
  EXPECT_EQ(fmt("{}", 42u), "42");
  EXPECT_EQ(fmt("{}", std::uint64_t{18446744073709551615ull}),
            "18446744073709551615");
  EXPECT_EQ(fmt("{}", std::int64_t{-9223372036854775807ll}),
            "-9223372036854775807");
  EXPECT_EQ(fmt("{}", static_cast<std::uint8_t>(255)), "255");
}

TEST(Format, FloatSpecs) {
  EXPECT_EQ(fmt("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(fmt("{:.0f}", 2.71), "3");
  EXPECT_EQ(fmt("{:.4f}", 0.5), "0.5000");
  EXPECT_EQ(fmt("{:.3g}", 12345.678), "1.23e+04");
  // Default float formatting uses %g.
  EXPECT_EQ(fmt("{}", 0.25), "0.25");
}

TEST(Format, IntegerWithFloatSpecPromotes) {
  EXPECT_EQ(fmt("{:.1f}", 7), "7.0");
}

TEST(Format, HexSpec) {
  EXPECT_EQ(fmt("{:x}", 255), "ff");
}

TEST(Format, EscapedBraces) {
  EXPECT_EQ(fmt("{{}}"), "{}");
  EXPECT_EQ(fmt("a{{b}}c {} d", 1), "a{b}c 1 d");
}

TEST(Format, ArityMismatchThrows) {
  EXPECT_THROW(fmt("{} {}", 1), std::invalid_argument);
  EXPECT_THROW(fmt("no placeholders", 1), std::invalid_argument);
  EXPECT_THROW(fmt("{unterminated", 1), std::invalid_argument);
}

TEST(Format, MixedArguments) {
  EXPECT_EQ(fmt("{} / {:.1f} / {}", "x", 2.0, 3), "x / 2.0 / 3");
}

TEST(Format, LongStringsUnharmed) {
  const std::string big(5000, 'q');
  EXPECT_EQ(fmt("[{}]", big).size(), big.size() + 2);
}

}  // namespace
}  // namespace cs::util
