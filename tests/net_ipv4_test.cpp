#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace cs::net {
namespace {

TEST(Ipv4, ParseRoundTrip) {
  const auto addr = Ipv4::parse("203.0.113.9");
  ASSERT_TRUE(addr);
  EXPECT_EQ(addr->to_string(), "203.0.113.9");
  EXPECT_EQ(addr->octet(0), 203);
  EXPECT_EQ(addr->octet(3), 9);
}

TEST(Ipv4, ParseEdges) {
  EXPECT_TRUE(Ipv4::parse("0.0.0.0"));
  EXPECT_TRUE(Ipv4::parse("255.255.255.255"));
  EXPECT_FALSE(Ipv4::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4::parse("1.2.3"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4::parse(""));
  EXPECT_FALSE(Ipv4::parse("1..2.3"));
  EXPECT_FALSE(Ipv4::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4::parse("0001.2.3.4"));
}

TEST(Ipv4, OctetConstructor) {
  constexpr Ipv4 addr{10, 0, 1, 2};
  EXPECT_EQ(addr.value(), 0x0A000102u);
}

TEST(Ipv4, Ordering) {
  EXPECT_LT(Ipv4(10, 0, 0, 1), Ipv4(10, 0, 0, 2));
  EXPECT_LT(Ipv4(9, 255, 255, 255), Ipv4(10, 0, 0, 0));
}

TEST(Cidr, ParseAndBasics) {
  const auto block = Cidr::parse("10.12.0.0/16");
  ASSERT_TRUE(block);
  EXPECT_EQ(block->prefix_len(), 16);
  EXPECT_EQ(block->size(), 65536u);
  EXPECT_EQ(block->to_string(), "10.12.0.0/16");
  EXPECT_EQ(block->first().to_string(), "10.12.0.0");
  EXPECT_EQ(block->last().to_string(), "10.12.255.255");
}

TEST(Cidr, BareAddressIsSlash32) {
  const auto block = Cidr::parse("1.2.3.4");
  ASSERT_TRUE(block);
  EXPECT_EQ(block->prefix_len(), 32);
  EXPECT_EQ(block->size(), 1u);
  EXPECT_TRUE(block->contains(Ipv4(1, 2, 3, 4)));
  EXPECT_FALSE(block->contains(Ipv4(1, 2, 3, 5)));
}

TEST(Cidr, HostBitsMasked) {
  const Cidr block{Ipv4(10, 12, 34, 56), 16};
  EXPECT_EQ(block.base().to_string(), "10.12.0.0");
}

TEST(Cidr, ParseRejectsBadInput) {
  EXPECT_FALSE(Cidr::parse("10.0.0.0/33"));
  EXPECT_FALSE(Cidr::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Cidr::parse("10.0.0/8"));
  EXPECT_FALSE(Cidr::parse("10.0.0.0/"));
  EXPECT_FALSE(Cidr::parse("/8"));
}

TEST(Cidr, ContainsAddress) {
  const auto block = *Cidr::parse("192.168.0.0/24");
  EXPECT_TRUE(block.contains(Ipv4(192, 168, 0, 0)));
  EXPECT_TRUE(block.contains(Ipv4(192, 168, 0, 255)));
  EXPECT_FALSE(block.contains(Ipv4(192, 168, 1, 0)));
}

TEST(Cidr, ContainsBlock) {
  const auto outer = *Cidr::parse("10.0.0.0/8");
  const auto inner = *Cidr::parse("10.5.0.0/16");
  EXPECT_TRUE(outer.contains(inner));
  EXPECT_FALSE(inner.contains(outer));
  EXPECT_TRUE(outer.contains(outer));
}

TEST(Cidr, ZeroPrefixContainsEverything) {
  const auto all = *Cidr::parse("0.0.0.0/0");
  EXPECT_TRUE(all.contains(Ipv4(255, 255, 255, 255)));
  EXPECT_TRUE(all.contains(Ipv4(0, 0, 0, 0)));
}

TEST(Cidr, AtIndexesAddresses) {
  const auto block = *Cidr::parse("10.0.0.0/30");
  EXPECT_EQ(block.at(0).to_string(), "10.0.0.0");
  EXPECT_EQ(block.at(3).to_string(), "10.0.0.3");
}

}  // namespace
}  // namespace cs::net
