#include "cloud/features.h"

#include <gtest/gtest.h>

#include <set>

#include "util/strings.h"

namespace cs::cloud {
namespace {

class FeaturesFixture : public ::testing::Test {
 protected:
  FeaturesFixture()
      : ec2(Provider::make_ec2(11)), azure(Provider::make_azure(11)) {}

  Provider ec2;
  Provider azure;
};

TEST_F(FeaturesFixture, ElbCnameShapeAndProxies) {
  ElbManager elbs{ec2, 5};
  const auto lb = elbs.create("tenant-1", "ec2.us-east-1", 3);
  EXPECT_TRUE(util::iends_with(lb.cname.to_string(), ".elb.amazonaws.com"));
  EXPECT_TRUE(util::icontains(lb.cname.to_string(), "us-east-1"));
  EXPECT_GE(lb.proxy_ips.size(), 1u);
  EXPECT_LE(lb.proxy_ips.size(), 3u);
  for (const auto ip : lb.proxy_ips)
    EXPECT_EQ(ec2.region_of(ip).value_or(""), "ec2.us-east-1");
}

TEST_F(FeaturesFixture, ElbProxiesAreSharedAcrossTenants) {
  ElbManager elbs{ec2, 5};
  std::set<std::uint32_t> all_ips;
  std::size_t total_assignments = 0;
  for (int i = 0; i < 200; ++i) {
    const auto lb = elbs.create("tenant-" + std::to_string(i),
                                "ec2.us-east-1", 2);
    for (const auto ip : lb.proxy_ips) all_ips.insert(ip.value());
    total_assignments += lb.proxy_ips.size();
  }
  // Sharing: fewer distinct proxies than total assignments.
  EXPECT_LT(all_ips.size(), total_assignments);
  EXPECT_EQ(elbs.pool_size("ec2.us-east-1"), all_ips.size());
  EXPECT_EQ(elbs.total_proxies(), all_ips.size());
}

TEST_F(FeaturesFixture, ElbDistinctCnamesPerLogicalInstance) {
  ElbManager elbs{ec2, 5};
  const auto a = elbs.create("t", "ec2.eu-west-1", 1);
  const auto b = elbs.create("t", "ec2.eu-west-1", 1);
  EXPECT_NE(a.cname, b.cname);
}

TEST_F(FeaturesFixture, ElbRejectsZeroProxies) {
  ElbManager elbs{ec2, 5};
  EXPECT_THROW(elbs.create("t", "ec2.us-east-1", 0), std::invalid_argument);
}

TEST_F(FeaturesFixture, HerokuFleetIsCappedAndShared) {
  HerokuManager heroku{ec2, 5};
  std::set<std::uint32_t> ips;
  for (int i = 0; i < 3000; ++i) {
    const auto app = heroku.create(i % 3 == 0);
    for (const auto ip : app.ips) ips.insert(ip.value());
  }
  EXPECT_LE(ips.size(), HerokuManager::kFleetSize);
  EXPECT_GE(ips.size(), HerokuManager::kFleetSize / 2);
  EXPECT_EQ(heroku.fleet().size(), ips.size());
  // All fleet IPs live in EC2 us-east-1 (Heroku's 2013 home).
  for (const auto ip : heroku.fleet())
    EXPECT_EQ(ec2.region_of(net::Ipv4{ip}).value_or(""), "ec2.us-east-1");
}

TEST_F(FeaturesFixture, HerokuSharedProxyCname) {
  HerokuManager heroku{ec2, 5};
  const auto shared = heroku.create(true);
  EXPECT_EQ(shared.cname.to_string(), "proxy.heroku.com");
  const auto dedicated = heroku.create(false);
  EXPECT_TRUE(util::iends_with(dedicated.cname.to_string(), ".herokuapp.com"));
}

TEST_F(FeaturesFixture, BeanstalkAlwaysFrontsAnElb) {
  ElbManager elbs{ec2, 5};
  BeanstalkManager beanstalk{elbs, 5};
  const auto env = beanstalk.create("tenant", "ec2.us-east-1");
  EXPECT_TRUE(
      util::icontains(env.cname.to_string(), "elasticbeanstalk"));
  EXPECT_FALSE(env.elb.proxy_ips.empty());
}

TEST_F(FeaturesFixture, CloudFrontUsesDedicatedRange) {
  CloudFrontManager cdn{ec2, 5};
  const auto dist = cdn.create(2);
  EXPECT_TRUE(util::iends_with(dist.cname.to_string(), ".cloudfront.net"));
  ASSERT_EQ(dist.edge_ips.size(), 2u);
  for (const auto ip : dist.edge_ips) {
    EXPECT_TRUE(ec2.cdn_block().contains(ip));
    EXPECT_FALSE(ec2.region_of(ip));  // not in the EC2 ranges
  }
}

TEST_F(FeaturesFixture, CloudServiceHasAzureIp) {
  CloudServiceManager services{azure, 5};
  const auto cs = services.create("tenant", "az.us-south");
  EXPECT_TRUE(util::iends_with(cs.cname.to_string(), ".cloudapp.net"));
  EXPECT_EQ(azure.region_of(cs.ip).value_or(""), "az.us-south");
}

TEST_F(FeaturesFixture, TrafficManagerSpansRegions) {
  CloudServiceManager services{azure, 5};
  TrafficManagerManager tm{services, 5};
  const auto profile = tm.create("tenant", {"az.us-east", "az.eu-west"});
  EXPECT_TRUE(
      util::iends_with(profile.cname.to_string(), ".trafficmanager.net"));
  ASSERT_EQ(profile.members.size(), 2u);
  EXPECT_EQ(azure.region_of(profile.members[0].ip).value_or(""), "az.us-east");
  EXPECT_EQ(azure.region_of(profile.members[1].ip).value_or(""), "az.eu-west");
}

TEST_F(FeaturesFixture, TrafficManagerNeedsMembers) {
  CloudServiceManager services{azure, 5};
  TrafficManagerManager tm{services, 5};
  EXPECT_THROW(tm.create("tenant", {}), std::invalid_argument);
}

}  // namespace
}  // namespace cs::cloud
