// cs::snap supervision: bounded retries with deterministic backoff, the
// fail/degrade exhaustion policies, and the exception-safety contract —
// an attempt that dies (via the fault plan's stage_abort) leaves no
// partial artifact behind, and the retry rebuilds byte-identically.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/report.h"
#include "core/study.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "analysis/snapshot.h"
#include "snap/codec.h"
#include "snap/store.h"
#include "snap/supervisor.h"

namespace cs::snap {
namespace {

SupervisorOptions fast_options() {
  SupervisorOptions options;
  options.backoff_base_ms = 1;
  options.backoff_cap_ms = 2;
  return options;
}

TEST(Supervisor, FirstTrySucceedsWithOneAttempt) {
  Supervisor supervisor{fast_options()};
  StageRun run;
  run.stage = "demo";
  const int result = supervisor.run(run, [] { return 7; }, [] { return -1; });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(run.attempts, 1);
  EXPECT_FALSE(run.degraded);
  EXPECT_TRUE(run.last_error.empty());
}

TEST(Supervisor, TransientFailuresAreRetriedAway) {
  Supervisor supervisor{fast_options()};
  StageRun run;
  run.stage = "demo";
  int calls = 0;
  const int result = supervisor.run(
      run,
      [&] {
        if (++calls < 3) throw std::runtime_error{"transient"};
        return 7;
      },
      [] { return -1; });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(run.attempts, 3);
  EXPECT_FALSE(run.degraded);
  EXPECT_TRUE(run.last_error.empty());
}

TEST(Supervisor, FailPolicyRethrowsAfterExhaustion) {
  auto options = fast_options();
  options.max_attempts = 2;
  Supervisor supervisor{options};
  StageRun run;
  run.stage = "demo";
  try {
    supervisor.run(
        run, [&]() -> int { throw std::runtime_error{"persistent"}; },
        [] { return -1; });
    FAIL() << "exhaustion under kFail must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stage 'demo'"), std::string::npos) << what;
    EXPECT_NE(what.find("2 attempt(s)"), std::string::npos) << what;
    EXPECT_NE(what.find("persistent"), std::string::npos) << what;
  }
  EXPECT_EQ(run.attempts, 2);
  EXPECT_FALSE(run.degraded);
}

TEST(Supervisor, DegradePolicySubstitutesTheFallback) {
  auto options = fast_options();
  options.max_attempts = 2;
  options.on_exhausted = OnExhausted::kDegrade;
  Supervisor supervisor{options};
  StageRun run;
  run.stage = "demo";
  const int result = supervisor.run(
      run, [&]() -> int { throw std::runtime_error{"persistent"}; },
      [] { return 42; });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(run.attempts, 2);
  EXPECT_TRUE(run.degraded);
  EXPECT_EQ(run.last_error, "persistent");
}

TEST(Supervisor, MaxAttemptsIsClampedToAtLeastOne) {
  auto options = fast_options();
  options.max_attempts = 0;
  Supervisor supervisor{options};
  StageRun run;
  run.stage = "demo";
  EXPECT_EQ(supervisor.run(run, [] { return 5; }, [] { return -1; }), 5);
  EXPECT_EQ(run.attempts, 1);
}

TEST(Supervisor, BackoffDoublesFromBaseToCap) {
  Supervisor supervisor{SupervisorOptions{}};  // base 25, cap 1000
  EXPECT_EQ(supervisor.backoff_delay_ms(1), 25);
  EXPECT_EQ(supervisor.backoff_delay_ms(2), 50);
  EXPECT_EQ(supervisor.backoff_delay_ms(3), 100);
  EXPECT_EQ(supervisor.backoff_delay_ms(4), 200);
  EXPECT_EQ(supervisor.backoff_delay_ms(5), 400);
  EXPECT_EQ(supervisor.backoff_delay_ms(6), 800);
  EXPECT_EQ(supervisor.backoff_delay_ms(7), 1000);
  EXPECT_EQ(supervisor.backoff_delay_ms(20), 1000);  // saturates, no UB
}

TEST(Supervisor, DeadlineStopsFurtherRetries) {
  auto options = fast_options();
  options.max_attempts = 5;
  options.stage_deadline_ms = 1;
  options.on_exhausted = OnExhausted::kDegrade;
  Supervisor supervisor{options};
  StageRun run;
  run.stage = "demo";
  const int result = supervisor.run(
      run,
      [&]() -> int {
        std::this_thread::sleep_for(std::chrono::milliseconds{5});
        throw std::runtime_error{"slow failure"};
      },
      [] { return 42; });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(run.attempts, 1);  // the deadline fired before any retry
  EXPECT_TRUE(run.deadline_hit);
  EXPECT_TRUE(run.degraded);
}

TEST(StageAbortKey, IsAPureFunctionOfStageAndAttempt) {
  EXPECT_EQ(stage_abort_key("dataset", 0), stage_abort_key("dataset", 0));
  EXPECT_NE(stage_abort_key("dataset", 0), stage_abort_key("dataset", 1));
  EXPECT_NE(stage_abort_key("dataset", 0), stage_abort_key("capture", 0));
  // The 0xFF separator keeps (stage, attempt) framings distinct.
  EXPECT_NE(stage_abort_key("a", 1), stage_abort_key("b", 0));
}

// ---------------------------------------------------------------------
// End-to-end exception safety through a real Study stage.

core::StudyConfig small_config(std::uint64_t seed) {
  core::StudyConfig config;
  config.world.seed = seed;
  config.world.domain_count = 100;
  config.traffic.total_web_bytes = 2ull * 1024 * 1024;
  config.dataset.lookup_vantages = 2;
  config.dataset.collect_name_servers = false;
  config.campaign_vantages = 6;
  config.campaign_days = 0.25;
  config.isp_vantages = 10;
  return config;
}

template <typename T>
std::vector<std::uint8_t> encoded(const T& value) {
  Writer w;
  encode_artifact(w, value);
  return std::move(w).take();
}

std::filesystem::path fresh_dir(const std::string& name) {
  const auto dir = std::filesystem::path{testing::TempDir()} / name;
  std::filesystem::remove_all(dir);
  return dir;
}

bool has_tmp_files(const std::filesystem::path& dir) {
  for (const auto& entry : std::filesystem::directory_iterator{dir})
    if (entry.path().extension() == ".tmp") return true;
  return false;
}

/// Finds a fault seed where, at rate 0.5, the dataset stage aborts on
/// attempt 0 and survives attempt 1 — decisions are pure functions of
/// (seed, kind, key), so the search is deterministic and cheap.
std::uint64_t seed_aborting_first_dataset_attempt() {
  fault::Spec spec;
  spec.stage_abort = 0.5;
  for (std::uint64_t seed = 1; seed < 4096; ++seed) {
    spec.seed = seed;
    const fault::Plan plan{spec};
    if (plan.decide(fault::Kind::kStageAbort, stage_abort_key("dataset", 0)) &&
        !plan.decide(fault::Kind::kStageAbort, stage_abort_key("dataset", 1)))
      return seed;
  }
  ADD_FAILURE() << "no suitable fault seed below 4096";
  return 0;
}

TEST(StageAbortInjection, RetryRebuildsTheIdenticalArtifact) {
  obs::MetricsRegistry::instance().reset_values();

  // Reference: the same stage built with no fault plan installed.
  std::vector<std::uint8_t> reference;
  {
    core::Study study{small_config(2013)};
    reference = encoded(study.dataset());
  }

  fault::Spec spec;
  spec.stage_abort = 0.5;
  spec.seed = seed_aborting_first_dataset_attempt();

  const auto dir = fresh_dir("snap_abort_retry");
  auto config = small_config(2013);
  config.checkpoint_dir = dir.string();
  config.supervision.backoff_base_ms = 1;
  std::uint64_t hash = 0;
  {
    fault::ScopedPlan plan{spec};
    core::Study study{config};
    hash = study.config_hash();
    // Attempt 0 dies before the build body runs; the supervisor retries
    // and attempt 1 must produce exactly what a fault-free build does.
    EXPECT_EQ(encoded(study.dataset()), reference);
    ASSERT_FALSE(study.stage_runs().empty());
    const auto& run = study.stage_runs().front();
    EXPECT_EQ(run.stage, "dataset");
    EXPECT_EQ(run.attempts, 2);
    EXPECT_FALSE(run.degraded);
    EXPECT_TRUE(run.last_error.empty());
  }

  // No partial artifact: no leftover tmp file, and the one snapshot on
  // disk validates and decodes to the reference bytes.
  EXPECT_FALSE(has_tmp_files(dir));
  Store store{dir, hash};
  const auto loaded = store.load<analysis::AlexaDataset>("dataset");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(encoded(*loaded), reference);

  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  EXPECT_GE(snapshot.counter("fault.stage.abort"), 1u);
  EXPECT_GE(snapshot.counter("snap.supervisor.retries"), 1u);
}

TEST(StageAbortInjection, DegradedPipelineCompletesAndReportsItself) {
  obs::MetricsRegistry::instance().reset_values();
  // Every attempt of every stage aborts; under kDegrade the pipeline
  // must still run to completion on empty artifacts and say so.
  fault::ScopedPlan plan{"stage_abort=1.0,seed=9"};
  auto config = small_config(777);
  config.supervision.max_attempts = 2;
  config.supervision.backoff_base_ms = 1;
  config.supervision.on_exhausted = OnExhausted::kDegrade;
  core::Study study{config};
  study.build_all();

  for (const auto& run : study.stage_runs()) {
    EXPECT_TRUE(run.degraded) << run.stage;
    EXPECT_EQ(run.attempts, 2) << run.stage;
    EXPECT_FALSE(run.last_error.empty()) << run.stage;
  }

  const std::string quality = core::render_data_quality(study);
  EXPECT_NE(quality.find("DEGRADED"), std::string::npos);
  EXPECT_NE(quality.find("dataset"), std::string::npos);
  EXPECT_NE(quality.find("injected stage abort"), std::string::npos);

  const auto snapshot = obs::MetricsRegistry::instance().snapshot();
  EXPECT_GE(snapshot.counter("fault.stage.abort"),
            2u * core::Study::stage_table().size());
}

}  // namespace
}  // namespace cs::snap
