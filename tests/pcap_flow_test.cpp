#include "pcap/flow.h"

#include <gtest/gtest.h>

#include <string>

namespace cs::pcap {
namespace {

const net::Endpoint kClient{net::Ipv4(10, 0, 0, 1), 50123};
const net::Endpoint kServer{net::Ipv4(54, 1, 2, 3), 80};

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return {text.begin(), text.end()};
}

TEST(FlowTable, SingleDirectionFlow) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(1.1, kClient, kServer,
                            TcpFlags{.ack = true, .psh = true}, 1,
                            bytes_of("GET / HTTP/1.1\r\n\r\n")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_TRUE(flows[0].saw_syn);
  EXPECT_EQ(flows[0].tuple.src, kClient);
  EXPECT_NEAR(flows[0].duration(), 0.1, 1e-9);
}

TEST(FlowTable, BothDirectionsMergeToOneFlow) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(1.05, kServer, kClient,
                            TcpFlags{.syn = true, .ack = true}, 0, {}));
  table.add(make_tcp_packet(1.1, kClient, kServer, TcpFlags{.ack = true}, 1,
                            bytes_of("req")));
  table.add(make_tcp_packet(1.2, kServer, kClient,
                            TcpFlags{.ack = true, .psh = true}, 1,
                            bytes_of("resp")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  EXPECT_EQ(flow.packets, 4u);
  // Initiator is the SYN sender.
  EXPECT_EQ(flow.tuple.src, kClient);
  EXPECT_EQ(flow.payload_to_responder, bytes_of("req"));
  EXPECT_EQ(flow.payload_to_initiator, bytes_of("resp"));
  EXPECT_GT(flow.bytes_to_responder, 0u);
  EXPECT_GT(flow.bytes_to_initiator, 0u);
  EXPECT_EQ(flow.bytes, flow.bytes_to_responder + flow.bytes_to_initiator);
}

TEST(FlowTable, DistinctTuplesDistinctFlows) {
  FlowTable table;
  for (std::uint16_t port = 1000; port < 1005; ++port) {
    net::Endpoint src{kClient.addr, port};
    table.add(make_tcp_packet(1.0, src, kServer, TcpFlags{.syn = true}, 0,
                              {}));
  }
  EXPECT_EQ(table.open_flows(), 5u);
  EXPECT_EQ(table.finish().size(), 5u);
}

TEST(FlowTable, FinThenSynStartsNewLogicalFlow) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(2.0, kClient, kServer,
                            TcpFlags{.ack = true, .fin = true}, 10, {}));
  // Same 5-tuple reused for a brand-new connection.
  table.add(make_tcp_packet(3.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[1].packets, 1u);
}

TEST(FlowTable, IdleTimeoutSplitsFlows) {
  FlowTable table{FlowTable::Options{.idle_timeout_sec = 60.0}};
  table.add(make_udp_packet(1.0, kClient, {kServer.addr, 53}, bytes_of("q")));
  table.add(make_udp_packet(100.0, kClient, {kServer.addr, 53},
                            bytes_of("q2")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 2u);
}

TEST(FlowTable, WithinTimeoutStaysOneFlow) {
  FlowTable table{FlowTable::Options{.idle_timeout_sec = 60.0}};
  table.add(make_udp_packet(1.0, kClient, {kServer.addr, 53}, bytes_of("q")));
  table.add(make_udp_packet(30.0, kClient, {kServer.addr, 53},
                            bytes_of("q2")));
  EXPECT_EQ(table.finish().size(), 1u);
}

TEST(FlowTable, PayloadCapRespected) {
  FlowTable table{FlowTable::Options{.payload_cap = 10}};
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.psh = true}, 0,
                            bytes_of("0123456789ABCDEF")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].payload_to_responder.size(), 10u);
  // Byte accounting still counts the full packet.
  EXPECT_EQ(flows[0].bytes, 20u + 20u + 16u);
}

TEST(FlowTable, UndecodablePacketsCounted) {
  FlowTable table;
  Packet junk;
  junk.timestamp = 1.0;
  junk.data = {1, 2, 3};
  table.add(junk);
  EXPECT_EQ(table.undecodable_packets(), 1u);
  EXPECT_TRUE(table.finish().empty());
}

TEST(FlowTable, RstAlsoTerminatesForReopen) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(1.5, kServer, kClient, TcpFlags{.rst = true}, 0,
                            {}));
  table.add(make_tcp_packet(2.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  EXPECT_EQ(table.finish().size(), 2u);
}

TEST(FlowTable, FinishSortsByFirstTimestamp) {
  FlowTable table;
  net::Endpoint a{kClient.addr, 1111};
  net::Endpoint b{kClient.addr, 2222};
  table.add(make_tcp_packet(5.0, b, kServer, TcpFlags{.syn = true}, 0, {}));
  table.add(make_tcp_packet(1.0, a, kServer, TcpFlags{.syn = true}, 0, {}));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_LT(flows[0].first_ts, flows[1].first_ts);
}

TEST(FlowTable, IcmpTypeRecorded) {
  FlowTable table;
  table.add(make_icmp_packet(1.0, kClient.addr, kServer.addr, 8));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].icmp_type, 8);
}

}  // namespace
}  // namespace cs::pcap
