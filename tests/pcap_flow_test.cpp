#include "pcap/flow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>

namespace cs::pcap {
namespace {

const net::Endpoint kClient{net::Ipv4(10, 0, 0, 1), 50123};
const net::Endpoint kServer{net::Ipv4(54, 1, 2, 3), 80};

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return {text.begin(), text.end()};
}

TEST(FlowTable, SingleDirectionFlow) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(1.1, kClient, kServer,
                            TcpFlags{.ack = true, .psh = true}, 1,
                            bytes_of("GET / HTTP/1.1\r\n\r\n")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_TRUE(flows[0].saw_syn);
  EXPECT_EQ(flows[0].tuple.src, kClient);
  EXPECT_NEAR(flows[0].duration(), 0.1, 1e-9);
}

TEST(FlowTable, BothDirectionsMergeToOneFlow) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(1.05, kServer, kClient,
                            TcpFlags{.syn = true, .ack = true}, 0, {}));
  table.add(make_tcp_packet(1.1, kClient, kServer, TcpFlags{.ack = true}, 1,
                            bytes_of("req")));
  table.add(make_tcp_packet(1.2, kServer, kClient,
                            TcpFlags{.ack = true, .psh = true}, 1,
                            bytes_of("resp")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  const auto& flow = flows[0];
  EXPECT_EQ(flow.packets, 4u);
  // Initiator is the SYN sender.
  EXPECT_EQ(flow.tuple.src, kClient);
  EXPECT_EQ(flow.payload_to_responder, bytes_of("req"));
  EXPECT_EQ(flow.payload_to_initiator, bytes_of("resp"));
  EXPECT_GT(flow.bytes_to_responder, 0u);
  EXPECT_GT(flow.bytes_to_initiator, 0u);
  EXPECT_EQ(flow.bytes, flow.bytes_to_responder + flow.bytes_to_initiator);
}

TEST(FlowTable, DistinctTuplesDistinctFlows) {
  FlowTable table;
  for (std::uint16_t port = 1000; port < 1005; ++port) {
    net::Endpoint src{kClient.addr, port};
    table.add(make_tcp_packet(1.0, src, kServer, TcpFlags{.syn = true}, 0,
                              {}));
  }
  EXPECT_EQ(table.open_flows(), 5u);
  EXPECT_EQ(table.finish().size(), 5u);
}

TEST(FlowTable, FinThenSynStartsNewLogicalFlow) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(2.0, kClient, kServer,
                            TcpFlags{.ack = true, .fin = true}, 10, {}));
  // Same 5-tuple reused for a brand-new connection.
  table.add(make_tcp_packet(3.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets, 2u);
  EXPECT_EQ(flows[1].packets, 1u);
}

TEST(FlowTable, IdleTimeoutSplitsFlows) {
  FlowTable table{FlowTable::Options{.idle_timeout_sec = 60.0}};
  table.add(make_udp_packet(1.0, kClient, {kServer.addr, 53}, bytes_of("q")));
  table.add(make_udp_packet(100.0, kClient, {kServer.addr, 53},
                            bytes_of("q2")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 2u);
}

TEST(FlowTable, WithinTimeoutStaysOneFlow) {
  FlowTable table{FlowTable::Options{.idle_timeout_sec = 60.0}};
  table.add(make_udp_packet(1.0, kClient, {kServer.addr, 53}, bytes_of("q")));
  table.add(make_udp_packet(30.0, kClient, {kServer.addr, 53},
                            bytes_of("q2")));
  EXPECT_EQ(table.finish().size(), 1u);
}

TEST(FlowTable, PayloadCapRespected) {
  FlowTable table{FlowTable::Options{.payload_cap = 10}};
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.psh = true}, 0,
                            bytes_of("0123456789ABCDEF")));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].payload_to_responder.size(), 10u);
  // Byte accounting still counts the full packet.
  EXPECT_EQ(flows[0].bytes, 20u + 20u + 16u);
}

TEST(FlowTable, UndecodablePacketsCounted) {
  FlowTable table;
  Packet junk;
  junk.timestamp = 1.0;
  junk.data = {1, 2, 3};
  table.add(junk);
  EXPECT_EQ(table.undecodable_packets(), 1u);
  EXPECT_TRUE(table.finish().empty());
}

TEST(FlowTable, RstAlsoTerminatesForReopen) {
  FlowTable table;
  table.add(make_tcp_packet(1.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  table.add(make_tcp_packet(1.5, kServer, kClient, TcpFlags{.rst = true}, 0,
                            {}));
  table.add(make_tcp_packet(2.0, kClient, kServer, TcpFlags{.syn = true}, 0,
                            {}));
  EXPECT_EQ(table.finish().size(), 2u);
}

TEST(FlowTable, FinishSortsByFirstTimestamp) {
  FlowTable table;
  net::Endpoint a{kClient.addr, 1111};
  net::Endpoint b{kClient.addr, 2222};
  table.add(make_tcp_packet(5.0, b, kServer, TcpFlags{.syn = true}, 0, {}));
  table.add(make_tcp_packet(1.0, a, kServer, TcpFlags{.syn = true}, 0, {}));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_LT(flows[0].first_ts, flows[1].first_ts);
}

TEST(FlowTable, IcmpTypeRecorded) {
  FlowTable table;
  table.add(make_icmp_packet(1.0, kClient.addr, kServer.addr, 8));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].icmp_type, 8);
}

// Scale regression: a single flow's byte counters must keep counting past
// 2^31 (a paper-scale web endpoint crosses it easily). Feeds pre-decoded
// headers so the test doesn't have to materialize 2+ GB of frames.
TEST(FlowTable, ByteCountersPassTwoGigabytes) {
  FlowTable table;
  Decoded d;
  d.tuple = {kClient, kServer, net::IpProto::kTcp};
  d.tcp_flags = TcpFlags{.ack = true};
  d.ip_total_length = 60000;
  constexpr std::uint64_t kPackets = 40000;  // 2.4e9 bytes total
  for (std::uint64_t i = 0; i < kPackets; ++i)
    table.add_decoded(d, 1.0 + 0.001 * static_cast<double>(i));
  const auto flows = table.finish();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets, kPackets);
  EXPECT_EQ(flows[0].bytes, kPackets * 60000);
  EXPECT_GT(flows[0].bytes, std::uint64_t{1} << 31);
  EXPECT_EQ(flows[0].bytes_to_responder, kPackets * 60000);
}

std::vector<Packet> mixed_capture() {
  std::vector<Packet> packets;
  // ~50 interleaved tuples: TCP conversations with both directions, a UDP
  // query stream, and ICMP — timestamps deliberately shuffled across
  // tuples (the generator emits per-unit sorted batches, not globally
  // sorted ones, so the assembler must not depend on global order).
  for (std::uint16_t i = 0; i < 48; ++i) {
    const net::Endpoint src{net::Ipv4(10, 0, 1, static_cast<std::uint8_t>(i)),
                            static_cast<std::uint16_t>(40000 + i)};
    const net::Endpoint dst{net::Ipv4(54, 2, 3, static_cast<std::uint8_t>(i % 7)),
                            static_cast<std::uint16_t>(i % 2 ? 443 : 80)};
    const double base = 1.0 + 0.37 * ((i * 13) % 48);
    packets.push_back(
        make_tcp_packet(base, src, dst, TcpFlags{.syn = true}, 0, {}));
    packets.push_back(make_tcp_packet(base + 0.01, dst, src,
                                      TcpFlags{.syn = true, .ack = true}, 0,
                                      {}));
    packets.push_back(make_tcp_packet(base + 0.02, src, dst,
                                      TcpFlags{.ack = true, .psh = true}, 1,
                                      bytes_of("GET / HTTP/1.1\r\n\r\n")));
    packets.push_back(make_tcp_packet(
        base + 0.03, dst, src, TcpFlags{.ack = true, .psh = true}, 1,
        std::vector<std::uint8_t>(200 + i, 'x')));
    packets.push_back(make_tcp_packet(base + 0.04, src, dst,
                                      TcpFlags{.ack = true, .fin = true}, 20,
                                      {}));
  }
  packets.push_back(make_udp_packet(2.5, kClient, {kServer.addr, 53},
                                    bytes_of("query")));
  packets.push_back(make_icmp_packet(3.5, kClient.addr, kServer.addr, 8));
  return packets;
}

void expect_same_flows(const std::vector<Flow>& a, const std::vector<Flow>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tuple, b[i].tuple) << "flow " << i;
    EXPECT_EQ(a[i].first_ts, b[i].first_ts) << "flow " << i;
    EXPECT_EQ(a[i].last_ts, b[i].last_ts) << "flow " << i;
    EXPECT_EQ(a[i].packets, b[i].packets) << "flow " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "flow " << i;
    EXPECT_EQ(a[i].payload_to_responder, b[i].payload_to_responder)
        << "flow " << i;
    EXPECT_EQ(a[i].payload_to_initiator, b[i].payload_to_initiator)
        << "flow " << i;
  }
}

// The streaming contract the paper-scale pipeline rests on: feeding ANY
// batch split of a capture through a FlowAssembler yields exactly the
// flows one assemble_flows() call produces.
TEST(FlowAssembler, AnyBatchSplitMatchesWholeCaptureAssembly) {
  const auto packets = mixed_capture();
  const auto whole = assemble_flows(packets);
  ASSERT_FALSE(whole.empty());
  for (const std::size_t batch : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, packets.size()}) {
    FlowAssembler assembler;
    for (std::size_t off = 0; off < packets.size(); off += batch) {
      const auto n = std::min(batch, packets.size() - off);
      assembler.feed(std::span<const Packet>{packets}.subspan(off, n));
    }
    expect_same_flows(assembler.finish(), whole);
    EXPECT_EQ(assembler.packets_fed(), packets.size());
  }
}

// A tuple that idles past the timeout across a batch boundary must still
// split into two logical flows — shard tables persist between feeds.
TEST(FlowAssembler, IdleTimeoutSpansBatchBoundaries) {
  std::vector<Packet> first{
      make_udp_packet(1.0, kClient, {kServer.addr, 53}, bytes_of("q"))};
  std::vector<Packet> second{
      make_udp_packet(500.0, kClient, {kServer.addr, 53}, bytes_of("q2"))};
  FlowAssembler assembler;  // default idle timeout 300 s
  assembler.feed(first);
  assembler.feed(second);
  EXPECT_EQ(assembler.finish().size(), 2u);
}

}  // namespace
}  // namespace cs::pcap
