#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <map>
#include <vector>

namespace cs::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{42}, b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng{7};
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng{123};
  std::array<int, 8> counts{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / 8 * 0.9);
    EXPECT_LT(c, kDraws / 8 * 1.1);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng{9};
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntInvalidRangeThrows) {
  Rng rng{9};
  EXPECT_THROW(rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-1.0));
    EXPECT_TRUE(rng.chance(2.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng{17};
  int hits = 0;
  constexpr int kTrials = 50000;
  for (int i = 0; i < kTrials; ++i)
    if (rng.chance(0.3)) ++hits;
  const double p = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(p, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng{19};
  double sum = 0.0, sumsq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.normal(5.0, 2.0);
    sum += v;
    sumsq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sumsq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng{23};
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kDraws, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsBadRate) {
  Rng rng{23};
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ParetoNeverBelowScale) {
  Rng rng{29};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(3.0, 1.2), 3.0);
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng rng{29};
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(1.0, 0.0), std::invalid_argument);
}

TEST(Rng, ZipfStaysInRange) {
  Rng rng{31};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.zipf(100, 1.0);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 100u);
  }
}

TEST(Rng, ZipfRankOneIsMostFrequent) {
  Rng rng{37};
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[rng.zipf(1000, 1.1)];
  int max_count = 0;
  std::uint64_t max_rank = 0;
  for (const auto& [rank, count] : counts)
    if (count > max_count) {
      max_count = count;
      max_rank = rank;
    }
  EXPECT_EQ(max_rank, 1u);
  // Zipf(1.1): rank 1 should beat rank 10 by roughly 10^1.1.
  EXPECT_GT(counts[1], counts[10] * 5);
}

TEST(Rng, ZipfSingletonAlwaysOne) {
  Rng rng{41};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.zipf(1, 1.2), 1u);
}

TEST(Rng, WeightedPickHonorsWeights) {
  Rng rng{43};
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.weighted_pick(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedPickRejectsDegenerateInput) {
  Rng rng{47};
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_pick(zeros), std::invalid_argument);
  const std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(rng.weighted_pick(negative), std::invalid_argument);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{53};
  Rng child = parent.fork();
  // The child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(StableHash, DeterministicAndSensitive) {
  EXPECT_EQ(stable_hash("example.com"), stable_hash("example.com"));
  EXPECT_NE(stable_hash("example.com"), stable_hash("example.org"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

}  // namespace
}  // namespace cs::util
