#include <gtest/gtest.h>

#include "analysis/outage.h"
#include "analysis/routing.h"

namespace cs::analysis {
namespace {

// ---------------------------------------------------------------------
// Outage impact on a hand-built dataset (no world needed).
AlexaDataset tiny_dataset() {
  AlexaDataset dataset;
  auto add_sub = [&dataset](const char* name, const char* domain) {
    SubdomainObservation obs;
    obs.name = dns::Name::must_parse(name);
    obs.domain = dns::Name::must_parse(domain);
    dataset.cloud_subdomains.push_back(std::move(obs));
    return dataset.cloud_subdomains.size() - 1;
  };
  DomainObservation a;
  a.name = dns::Name::must_parse("a.com");
  a.cloud_subdomains = {add_sub("www.a.com", "a.com"),
                        add_sub("m.a.com", "a.com")};
  DomainObservation b;
  b.name = dns::Name::must_parse("b.com");
  b.cloud_subdomains = {add_sub("www.b.com", "b.com")};
  dataset.domains = {a, b};
  return dataset;
}

RegionReport tiny_regions() {
  RegionReport regions;
  regions.subdomain_regions = {
      {"ec2.us-east-1"},                    // www.a.com: single region
      {"ec2.us-east-1", "ec2.eu-west-1"},   // m.a.com: two regions
      {"ec2.eu-west-1"},                    // www.b.com: single region
  };
  return regions;
}

TEST(Outage, RegionImpactCountsDownAndDegraded) {
  const auto dataset = tiny_dataset();
  const auto impacts = region_outage_impact(dataset, tiny_regions());
  ASSERT_EQ(impacts.size(), 2u);
  std::map<std::string, OutageImpact> by_region;
  for (const auto& impact : impacts) by_region[impact.failed_unit] = impact;

  const auto& east = by_region.at("ec2.us-east-1");
  EXPECT_EQ(east.subdomains_down, 1u);      // www.a.com
  EXPECT_EQ(east.subdomains_degraded, 1u);  // m.a.com survives via eu-west
  EXPECT_EQ(east.domains_affected, 1u);     // a.com
  EXPECT_DOUBLE_EQ(east.domains_affected_fraction, 0.5);

  const auto& west = by_region.at("ec2.eu-west-1");
  EXPECT_EQ(west.subdomains_down, 1u);  // www.b.com
  EXPECT_EQ(west.subdomains_degraded, 1u);
}

TEST(Outage, SortedByImpact) {
  const auto dataset = tiny_dataset();
  auto regions = tiny_regions();
  regions.subdomain_regions[1] = {"ec2.us-east-1"};  // now single region too
  const auto impacts = region_outage_impact(dataset, regions);
  ASSERT_EQ(impacts.size(), 2u);
  EXPECT_EQ(impacts[0].failed_unit, "ec2.us-east-1");
  EXPECT_GE(impacts[0].subdomains_down, impacts[1].subdomains_down);
}

TEST(Outage, ZoneImpact) {
  const auto dataset = tiny_dataset();
  const std::vector<std::set<int>> zones = {{0}, {0, 1}, {2}};
  const std::vector<std::string> primary = {
      "ec2.us-east-1", "ec2.us-east-1", "ec2.eu-west-1"};
  const auto impacts = zone_outage_impact(
      dataset, {.subdomain_zones = zones, .subdomain_primary_region = primary});
  ASSERT_EQ(impacts.size(), 3u);  // east/0, east/1, west/2
  std::map<std::string, OutageImpact> by_unit;
  for (const auto& impact : impacts) by_unit[impact.failed_unit] = impact;
  EXPECT_EQ(by_unit.at("ec2.us-east-1/zone-0").subdomains_down, 1u);
  EXPECT_EQ(by_unit.at("ec2.us-east-1/zone-0").subdomains_degraded, 1u);
  EXPECT_EQ(by_unit.at("ec2.us-east-1/zone-1").subdomains_down, 0u);
  EXPECT_EQ(by_unit.at("ec2.eu-west-1/zone-2").subdomains_down, 1u);
}

// ---------------------------------------------------------------------
// Routing strategies over a real (small) campaign.
class RoutingTest : public ::testing::Test {
 protected:
  RoutingTest()
      : ec2(cloud::Provider::make_ec2(61)),
        model(internet::WideAreaModel::Config{.seed = 61}) {
    const auto vantages = internet::planetlab_vantages(10);
    std::vector<const cloud::Region*> regions;
    for (const auto& region : ec2.regions()) regions.push_back(&region);
    campaign = run_campaign(model, vantages, regions, 0.5);
  }

  cloud::Provider ec2;
  internet::WideAreaModel model;
  Campaign campaign;
};

TEST_F(RoutingTest, OracleDominatesEverything) {
  const auto outcomes = evaluate_routing(
      campaign, {"ec2.us-east-1", "ec2.eu-west-1", "ec2.ap-northeast-1"});
  ASSERT_EQ(outcomes.size(), 5u);
  double oracle = 0.0;
  for (const auto& outcome : outcomes)
    if (outcome.strategy == RoutingStrategy::kDynamicBest)
      oracle = outcome.avg_rtt_ms;
  ASSERT_GT(oracle, 0.0);
  for (const auto& outcome : outcomes)
    EXPECT_GE(outcome.avg_rtt_ms + 1e-9, oracle)
        << to_string(outcome.strategy);
  // Results are sorted best-first, so the oracle leads.
  EXPECT_EQ(outcomes.front().strategy, RoutingStrategy::kDynamicBest);
}

TEST_F(RoutingTest, RaceTwoBeatsStaticPinningAtDoubleLoad) {
  const auto outcomes = evaluate_routing(
      campaign, {"ec2.us-east-1", "ec2.eu-west-1", "ec2.us-west-2"});
  std::map<RoutingStrategy, RoutingOutcome> by_strategy;
  for (const auto& outcome : outcomes)
    by_strategy[outcome.strategy] = outcome;
  EXPECT_LE(by_strategy.at(RoutingStrategy::kRaceTwo).avg_rtt_ms,
            by_strategy.at(RoutingStrategy::kStaticBest).avg_rtt_ms + 1e-9);
  EXPECT_NEAR(
      by_strategy.at(RoutingStrategy::kRaceTwo).request_amplification, 2.0,
      1e-9);
  EXPECT_NEAR(
      by_strategy.at(RoutingStrategy::kStaticBest).request_amplification,
      1.0, 1e-9);
}

TEST_F(RoutingTest, RoundRobinIsWorstOrClose) {
  const auto outcomes = evaluate_routing(
      campaign, {"ec2.us-east-1", "ec2.sa-east-1", "ec2.ap-southeast-2"});
  // With a geographically extreme deployment, rotation must lose badly to
  // the oracle.
  std::map<RoutingStrategy, double> rtt;
  for (const auto& outcome : outcomes)
    rtt[outcome.strategy] = outcome.avg_rtt_ms;
  EXPECT_GT(rtt.at(RoutingStrategy::kRoundRobin),
            rtt.at(RoutingStrategy::kDynamicBest) * 1.5);
}

TEST_F(RoutingTest, SingleRegionDeploymentDegenerates) {
  const auto outcomes = evaluate_routing(campaign, {"ec2.us-east-1"});
  // All strategies coincide when there is nothing to choose between.
  for (const auto& outcome : outcomes)
    EXPECT_NEAR(outcome.avg_rtt_ms, outcomes.front().avg_rtt_ms,
                outcomes.front().avg_rtt_ms * 0.05)
        << to_string(outcome.strategy);
}

TEST_F(RoutingTest, UnknownRegionThrows) {
  EXPECT_THROW(evaluate_routing(campaign, {"ec2.moon-1"}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_routing(campaign, {}), std::invalid_argument);
}

TEST(RoutingNames, Distinct) {
  std::set<std::string> names;
  for (const auto strategy :
       {RoutingStrategy::kStaticBest, RoutingStrategy::kGeoNearest,
        RoutingStrategy::kDynamicBest, RoutingStrategy::kRaceTwo,
        RoutingStrategy::kRoundRobin})
    EXPECT_TRUE(names.insert(to_string(strategy)).second);
}

}  // namespace
}  // namespace cs::analysis
