#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cs::obs {
namespace {

TEST(MetricsTest, CounterStartsAtZeroAndIncrements) {
  MetricsRegistry registry;
  auto& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  auto& a = registry.counter("shared");
  auto& b = registry.counter("shared");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  // Gauges and histograms live in separate namespaces from counters.
  auto& g = registry.gauge("shared");
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(a.value(), 1u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  MetricsRegistry registry;
  auto& g = registry.gauge("test.gauge");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(MetricsTest, HistogramBucketSemantics) {
  MetricsRegistry registry;
  auto& h = registry.histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1       -> bucket 0
  h.observe(1.0);    // == bound   -> bucket 0 (upper bounds are inclusive)
  h.observe(5.0);    // <= 10      -> bucket 1
  h.observe(50.0);   // <= 100     -> bucket 2
  h.observe(1000.0);  // > last    -> overflow bucket
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 50.0 + 1000.0);
}

TEST(MetricsTest, HistogramRejectsEmptyBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {}), std::invalid_argument);
}

TEST(MetricsTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  auto& c = registry.counter("concurrent.counter");
  auto& h = registry.histogram("concurrent.hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        c.inc();
        h.observe(1.0);
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kIncrements);
}

TEST(MetricsTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i)
        registry.counter("race." + std::to_string(i)).inc();
    });
  for (auto& t : threads) t.join();
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 200u);
  for (const auto& c : snap.counters) EXPECT_EQ(c.value, 8u);
}

TEST(MetricsTest, SnapshotIsIsolatedFromLaterWrites) {
  MetricsRegistry registry;
  auto& c = registry.counter("snap.counter");
  auto& h = registry.histogram("snap.hist", {10.0});
  c.inc(5);
  h.observe(3.0);
  const auto snap = registry.snapshot();
  c.inc(100);
  h.observe(3.0);
  EXPECT_EQ(snap.counter("snap.counter"), 5u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(c.value(), 105u);
}

TEST(MetricsTest, ResetValuesKeepsHandlesValid) {
  MetricsRegistry registry;
  auto& c = registry.counter("reset.counter");
  auto& h = registry.histogram("reset.hist", {1.0});
  c.inc(9);
  h.observe(0.5);
  registry.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // the cached reference still points at the live instrument
  EXPECT_EQ(registry.snapshot().counter("reset.counter"), 1u);
}

TEST(MetricsTest, DetailedMetricsGateTogglesAndSticks) {
  set_detailed_metrics(false);
  EXPECT_FALSE(detailed_metrics());
  set_detailed_metrics(true);
  EXPECT_TRUE(detailed_metrics());
  set_detailed_metrics(false);
  EXPECT_FALSE(detailed_metrics());
}

TEST(MetricsTest, GlobalRegistryShorthand) {
  counter("global.test").inc(3);
  EXPECT_EQ(MetricsRegistry::instance().snapshot().counter("global.test"),
            3u);
}

}  // namespace
}  // namespace cs::obs
