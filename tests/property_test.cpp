// Property-based sweeps (TEST_P) over randomized inputs: invariants that
// must hold for every seed, not just the fixtures' hand-picked cases.
#include <gtest/gtest.h>

#include "analysis/ranges.h"
#include "dns/message.h"
#include "net/prefix_set.h"
#include "pcap/decode.h"
#include "pcap/flow.h"
#include "proto/http.h"
#include "proto/tls.h"
#include "util/rng.h"
#include "util/stats.h"

namespace cs {
namespace {

// ---------------------------------------------------------------------
// DNS wire-format round trip over randomly generated messages.
class DnsCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

dns::Name random_name(util::Rng& rng) {
  static const char* kWords[] = {"www", "api", "cdn", "lb-1",  "edge",
                                 "ns1", "m",   "a",   "x9-q7", "svc"};
  static const char* kTlds[] = {"com", "net", "org"};
  std::vector<std::string> labels;
  const int depth = 1 + static_cast<int>(rng.next_below(4));
  for (int i = 0; i < depth; ++i)
    labels.emplace_back(kWords[rng.next_below(std::size(kWords))]);
  labels.emplace_back(kTlds[rng.next_below(std::size(kTlds))]);
  return *dns::Name::from_labels(std::move(labels));
}

dns::ResourceRecord random_rr(util::Rng& rng) {
  const auto name = random_name(rng);
  switch (rng.next_below(5)) {
    case 0:
      return dns::ResourceRecord::a(
          name, net::Ipv4{static_cast<std::uint32_t>(rng())},
          static_cast<std::uint32_t>(rng.next_below(86400)));
    case 1:
      return dns::ResourceRecord::ns(name, random_name(rng));
    case 2:
      return dns::ResourceRecord::cname(name, random_name(rng));
    case 3: {
      dns::SoaRecord soa;
      soa.mname = random_name(rng);
      soa.rname = random_name(rng);
      soa.serial = static_cast<std::uint32_t>(rng());
      return dns::ResourceRecord::soa(name, soa);
    }
    default: {
      std::vector<std::string> strings;
      const int n = 1 + static_cast<int>(rng.next_below(3));
      for (int i = 0; i < n; ++i)
        strings.push_back(std::string(rng.next_below(40), 't'));
      return dns::ResourceRecord::txt(name, std::move(strings));
    }
  }
}

TEST_P(DnsCodecProperty, EncodeDecodeIsIdentity) {
  util::Rng rng{GetParam()};
  auto query = dns::Message::query(
      static_cast<std::uint16_t>(rng()), random_name(rng),
      rng.chance(0.5) ? dns::RrType::kA : dns::RrType::kNs, rng.chance(0.5));
  auto message = dns::Message::response_to(
      query, static_cast<dns::Rcode>(rng.next_below(6)), rng.chance(0.5));
  const int answers = static_cast<int>(rng.next_below(6));
  for (int i = 0; i < answers; ++i)
    message.answers.push_back(random_rr(rng));
  const int authority = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < authority; ++i)
    message.authority.push_back(random_rr(rng));
  const int additional = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < additional; ++i)
    message.additional.push_back(random_rr(rng));

  const auto decoded = dns::Message::decode(message.encode());
  ASSERT_TRUE(decoded);
  EXPECT_EQ(*decoded, message);
}

TEST_P(DnsCodecProperty, TruncationNeverDecodes) {
  util::Rng rng{GetParam() * 31};
  auto message = dns::Message::query(7, random_name(rng), dns::RrType::kA);
  message.answers.push_back(random_rr(rng));
  const auto wire = message.encode();
  // Any strict prefix must be rejected (or decode to a different message,
  // never crash) — exhaustive over all cut points.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const std::span<const std::uint8_t> prefix{wire.data(), cut};
    const auto decoded = dns::Message::decode(prefix);
    if (decoded) EXPECT_NE(*decoded, message);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnsCodecProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------
// PrefixMap agrees with a brute-force linear scan.
class PrefixMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrefixMapProperty, MatchesLinearScan) {
  util::Rng rng{GetParam()};
  net::PrefixMap<int> map;
  std::vector<std::pair<net::Cidr, int>> blocks;
  for (int i = 0; i < 40; ++i) {
    const net::Cidr block{net::Ipv4{static_cast<std::uint32_t>(rng())},
                          static_cast<int>(rng.next_below(33))};
    // Skip duplicate prefixes: insert() overwrites, the scan must too.
    bool duplicate = false;
    for (auto& [existing, tag] : blocks)
      if (existing == block) {
        tag = i;
        duplicate = true;
      }
    if (!duplicate) blocks.emplace_back(block, i);
    map.insert(block, i);
  }
  for (int trial = 0; trial < 300; ++trial) {
    const net::Ipv4 addr{static_cast<std::uint32_t>(rng())};
    // Linear longest-prefix scan.
    int best_len = -1, best_tag = -1;
    for (const auto& [block, tag] : blocks) {
      if (block.contains(addr) && block.prefix_len() > best_len) {
        best_len = block.prefix_len();
        best_tag = tag;
      }
    }
    const auto got = map.lookup(addr);
    if (best_tag < 0) {
      EXPECT_FALSE(got);
    } else {
      ASSERT_TRUE(got);
      EXPECT_EQ(*got, best_tag);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixMapProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------
// Flow-table conservation: bytes and packets in == bytes and packets out.
class FlowConservationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservationProperty, NothingLostNothingInvented) {
  util::Rng rng{GetParam()};
  pcap::FlowTable table;
  std::uint64_t total_ip_bytes = 0;
  std::size_t total_packets = 0;
  for (int i = 0; i < 400; ++i) {
    const net::Endpoint src{net::Ipv4{10, 0, 0,
                                      static_cast<std::uint8_t>(
                                          1 + rng.next_below(5))},
                            static_cast<std::uint16_t>(
                                1000 + rng.next_below(20))};
    const net::Endpoint dst{net::Ipv4{54, 0, 0, 1},
                            rng.chance(0.5) ? std::uint16_t{80}
                                            : std::uint16_t{443}};
    const std::vector<std::uint8_t> payload(rng.next_below(900), 'p');
    pcap::Packet packet;
    if (rng.chance(0.8)) {
      packet = pcap::make_tcp_packet(
          i * 0.5, src, dst,
          {.syn = rng.chance(0.1), .ack = true, .fin = rng.chance(0.05)},
          static_cast<std::uint32_t>(i), payload);
    } else {
      packet = pcap::make_udp_packet(i * 0.5, src, dst, payload);
    }
    total_ip_bytes += packet.size() - 14;  // minus Ethernet header
    ++total_packets;
    table.add(packet);
  }
  const auto flows = table.finish();
  std::uint64_t flow_bytes = 0, flow_packets = 0;
  for (const auto& flow : flows) {
    flow_bytes += flow.bytes;
    flow_packets += flow.packets;
    EXPECT_GE(flow.last_ts, flow.first_ts);
    EXPECT_EQ(flow.bytes, flow.bytes_to_responder + flow.bytes_to_initiator);
  }
  EXPECT_EQ(flow_bytes, total_ip_bytes);
  EXPECT_EQ(flow_packets, total_packets);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlowConservationProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------
// HTTP build->parse is lossless for the fields the study extracts.
class HttpRoundTripProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HttpRoundTripProperty, FieldsSurvive) {
  util::Rng rng{GetParam()};
  static const char* kTypes[] = {"text/html", "application/pdf",
                                 "image/png", "video/mp4"};
  for (int trial = 0; trial < 30; ++trial) {
    const std::string host =
        "h" + std::to_string(rng.next_below(1000)) + ".example.com";
    const auto request = proto::build_request("GET", host, "/p");
    std::size_t offset = 0;
    const auto parsed_request = proto::parse_request(request, offset);
    ASSERT_TRUE(parsed_request);
    EXPECT_EQ(parsed_request->host().value_or(""), host);

    const auto* type = kTypes[rng.next_below(std::size(kTypes))];
    const auto length = rng.next_below(1 << 24);
    const auto response = proto::build_response(
        200, type, length, static_cast<std::size_t>(rng.next_below(2048)));
    offset = 0;
    const auto parsed_response = proto::parse_response(response, offset);
    ASSERT_TRUE(parsed_response);
    EXPECT_EQ(parsed_response->content_type().value_or(""), type);
    EXPECT_EQ(parsed_response->content_length().value_or(~0ull), length);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HttpRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 6));

// ---------------------------------------------------------------------
// TLS SNI/CN extraction round-trips for arbitrary host names.
class TlsRoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TlsRoundTripProperty, SniAndCnSurvive) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 40; ++trial) {
    std::string host = "s" + std::to_string(rng());
    host += rng.chance(0.5) ? ".dropbox.com" : ".cloudapp.net";
    EXPECT_EQ(proto::extract_sni(proto::build_client_hello(host)).value_or(""),
              host);
    const std::string cn = "*." + host;
    EXPECT_EQ(
        proto::extract_certificate_cn(proto::build_certificate(cn))
            .value_or(""),
        cn);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlsRoundTripProperty,
                         ::testing::Range<std::uint64_t>(1, 5));

// ---------------------------------------------------------------------
// Cloud range classification is a partition: an address belongs to at
// most one provider, and every published block classifies to itself.
class RangePartitionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangePartitionProperty, ClassificationIsAPartition) {
  auto ec2 = cloud::Provider::make_ec2(GetParam());
  auto azure = cloud::Provider::make_azure(GetParam());
  analysis::CloudRanges ranges{ec2, azure};
  util::Rng rng{GetParam() * 7};
  for (int trial = 0; trial < 2000; ++trial) {
    const net::Ipv4 addr{static_cast<std::uint32_t>(rng())};
    const auto c = ranges.classify(addr);
    const bool in_ec2 = ec2.region_of(addr).has_value();
    const bool in_azure = azure.region_of(addr).has_value();
    const bool in_cdn = ec2.cdn_block().contains(addr);
    switch (c.kind) {
      case analysis::IpClassification::Kind::kEc2:
        EXPECT_TRUE(in_ec2);
        EXPECT_EQ(c.region, *ec2.region_of(addr));
        break;
      case analysis::IpClassification::Kind::kAzure:
        EXPECT_TRUE(in_azure);
        break;
      case analysis::IpClassification::Kind::kCloudFront:
        EXPECT_TRUE(in_cdn);
        break;
      case analysis::IpClassification::Kind::kOther:
        EXPECT_FALSE(in_ec2 || in_azure || in_cdn);
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangePartitionProperty,
                         ::testing::Range<std::uint64_t>(1, 5));

// ---------------------------------------------------------------------
// Quantiles are monotone for arbitrary samples.
class QuantileProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuantileProperty, MonotoneAndBounded) {
  util::Rng rng{GetParam()};
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.pareto(1.0, 1.2));
  double last = -1.0;
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    const double v = util::quantile(xs, q);
    EXPECT_GE(v, last);
    EXPECT_GE(v, util::min_of(xs));
    EXPECT_LE(v, util::max_of(xs));
    last = v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantileProperty,
                         ::testing::Range<std::uint64_t>(1, 5));

}  // namespace
}  // namespace cs
