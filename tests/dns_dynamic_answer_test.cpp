#include <gtest/gtest.h>

#include "dns/server.h"

namespace cs::dns {
namespace {

SoaRecord soa_of(std::string_view mname) {
  SoaRecord soa;
  soa.mname = Name::must_parse(mname);
  soa.rname = Name::must_parse(mname);
  return soa;
}

/// A trafficmanager.net-style zone: tm-1 answered dynamically, members
/// are static names in the same zone.
AuthoritativeServer make_server() {
  AuthoritativeServer server;
  auto& zone = server.add_zone(Name::must_parse("trafficmanager.net"),
                               soa_of("ns1.trafficmanager.net"));
  zone.add(ResourceRecord::a(Name::must_parse("cs-a.trafficmanager.net"),
                             net::Ipv4(138, 91, 0, 10)));
  zone.add(ResourceRecord::a(Name::must_parse("cs-b.trafficmanager.net"),
                             net::Ipv4(138, 95, 0, 20)));
  server.set_dynamic_answer(
      [](net::Ipv4 client, const Name& qname)
          -> std::optional<ResourceRecord> {
        if (qname != Name::must_parse("tm-1.trafficmanager.net"))
          return std::nullopt;
        const auto member = client.value() % 2 == 0 ? "cs-a" : "cs-b";
        return ResourceRecord::cname(
            qname, *Name::must_parse("trafficmanager.net").child(member),
            30);
      });
  return server;
}

Message ask(const AuthoritativeServer& server, net::Ipv4 client) {
  return server.handle(
      client, Message::query(5, Name::must_parse("tm-1.trafficmanager.net"),
                             RrType::kA));
}

TEST(DynamicAnswer, ClientDependentMemberSelection) {
  const auto server = make_server();
  const auto even = ask(server, net::Ipv4(10, 0, 0, 2));
  ASSERT_EQ(even.answers.size(), 2u);
  EXPECT_EQ(even.answers[0].type(), RrType::kCname);
  EXPECT_EQ(std::get<CnameRecord>(even.answers[0].data).target.to_string(),
            "cs-a.trafficmanager.net");
  EXPECT_EQ(std::get<ARecord>(even.answers[1].data).address,
            net::Ipv4(138, 91, 0, 10));

  const auto odd = ask(server, net::Ipv4(10, 0, 0, 3));
  ASSERT_EQ(odd.answers.size(), 2u);
  EXPECT_EQ(std::get<ARecord>(odd.answers[1].data).address,
            net::Ipv4(138, 95, 0, 20));
}

TEST(DynamicAnswer, StableForSameClient) {
  const auto server = make_server();
  const auto a = ask(server, net::Ipv4(199, 16, 0, 10));
  const auto b = ask(server, net::Ipv4(199, 16, 0, 10));
  EXPECT_EQ(a.answers, b.answers);
}

TEST(DynamicAnswer, FallsThroughToStaticData) {
  const auto server = make_server();
  const auto r = server.handle(
      net::Ipv4(1, 1, 1, 1),
      Message::query(6, Name::must_parse("cs-a.trafficmanager.net"),
                     RrType::kA));
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(r.answers[0].type(), RrType::kA);
}

TEST(DynamicAnswer, NonCnameDynamicRecordTerminates) {
  AuthoritativeServer server;
  server.add_zone(Name::must_parse("x.net"), soa_of("ns1.x.net"));
  server.set_dynamic_answer(
      [](net::Ipv4 client, const Name& qname)
          -> std::optional<ResourceRecord> {
        if (qname != Name::must_parse("geo.x.net")) return std::nullopt;
        return ResourceRecord::a(qname,
                                 net::Ipv4(9, 9, 9, client.octet(3)));
      });
  const auto r = server.handle(
      net::Ipv4(1, 2, 3, 42),
      Message::query(7, Name::must_parse("geo.x.net"), RrType::kA));
  ASSERT_EQ(r.answers.size(), 1u);
  EXPECT_EQ(std::get<ARecord>(r.answers[0].data).address,
            net::Ipv4(9, 9, 9, 42));
}

}  // namespace
}  // namespace cs::dns
