#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace cs::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasic) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Stats, StddevConstantIsZero) {
  const std::vector<double> xs = {5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(stddev(xs), 0.0);
}

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);  // classic textbook sample
}

TEST(Stats, MedianOddAndEven) {
  const std::vector<double> odd = {3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 5.0);
}

TEST(Stats, QuantileClampsOutOfRange) {
  const std::vector<double> xs = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile(xs, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.5), 3.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3, -1, 7, 2};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
  EXPECT_DOUBLE_EQ(min_of({}), 0.0);
  EXPECT_DOUBLE_EQ(max_of({}), 0.0);
}

TEST(Stats, SummaryConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_LT(s.p25, s.median);
  EXPECT_LT(s.median, s.p75);
  EXPECT_LT(s.p75, s.p95);
  EXPECT_LT(s.p95, s.p99);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

// Regression: NaN samples used to reach std::sort, whose strict-weak-
// ordering contract NaN violates (undefined behaviour — in practice,
// garbage percentiles). Every helper now computes over the non-NaN
// subset; none may ever return NaN for NaN-laced input.
TEST(Stats, NanLacedSamplesAreIgnored) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs = {nan, 10, nan, 20, 30, nan, 40, nan};
  EXPECT_DOUBLE_EQ(mean(xs), 25.0);
  EXPECT_FALSE(std::isnan(stddev(xs)));
  EXPECT_DOUBLE_EQ(median(xs), 25.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 10.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 40.0);
}

TEST(Stats, AllNanBehavesLikeEmpty) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> xs = {nan, nan, nan};
  EXPECT_DOUBLE_EQ(mean(xs), 0.0);
  EXPECT_DOUBLE_EQ(median(xs), 0.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.95), 0.0);
  EXPECT_DOUBLE_EQ(min_of(xs), 0.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 0.0);
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.dropped_nans, 3u);
  EXPECT_FALSE(std::isnan(s.mean));
}

TEST(Stats, SummaryCountsDroppedNans) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  std::vector<double> laced = xs;
  laced.insert(laced.begin(), nan);
  laced.insert(laced.begin() + 50, nan);
  laced.push_back(nan);
  const Summary clean = summarize(xs);
  const Summary s = summarize(laced);
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.dropped_nans, 3u);
  EXPECT_DOUBLE_EQ(s.mean, clean.mean);
  EXPECT_DOUBLE_EQ(s.median, clean.median);
  EXPECT_DOUBLE_EQ(s.p95, clean.p95);
  EXPECT_DOUBLE_EQ(s.min, clean.min);
  EXPECT_DOUBLE_EQ(s.max, clean.max);
}

TEST(Stats, InfinitiesAreKept) {
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> xs = {1, 2, inf, 3};
  EXPECT_DOUBLE_EQ(max_of(xs), inf);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), inf);
  EXPECT_EQ(summarize(xs).count, 4u);
}

TEST(RunningStats, NanSamplesCountedNotAccumulated) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  RunningStats rs;
  rs.add(1.0);
  rs.add(nan);
  rs.add(3.0);
  rs.add(nan);
  EXPECT_EQ(rs.count(), 2u);
  EXPECT_EQ(rs.nan_count(), 2u);
  EXPECT_DOUBLE_EQ(rs.mean(), 2.0);
  EXPECT_FALSE(std::isnan(rs.stddev()));
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 4.0);
}

TEST(RunningStats, MatchesBatch) {
  const std::vector<double> xs = {1.5, 2.5, -3.0, 4.0, 0.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
  EXPECT_DOUBLE_EQ(rs.sum(), 5.0);
}

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
  EXPECT_EQ(rs.min(), 0.0);
  EXPECT_EQ(rs.max(), 0.0);
}

}  // namespace
}  // namespace cs::util
