#include "util/json.h"

#include <gtest/gtest.h>

namespace cs::util {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(parse_json("null")->kind, JsonValue::Kind::kNull);
  EXPECT_TRUE(parse_json("true")->boolean);
  EXPECT_FALSE(parse_json("false")->boolean);
  EXPECT_DOUBLE_EQ(parse_json("42")->number, 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5e2")->number, -350.0);
  EXPECT_EQ(parse_json("\"hi\"")->text, "hi");
}

TEST(JsonTest, ParsesNestedObjectAndChainedGet) {
  const auto v = parse_json(
      R"({"bench": "t9", "wall_ms": 12.625,
          "pool": {"tasks": 100, "steals": 3},
          "stages": [{"name": "study.world", "total_ms": 7.5}]})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("bench")->text, "t9");
  EXPECT_DOUBLE_EQ(v->find("wall_ms")->number, 12.625);
  ASSERT_NE(v->get("pool", "steals"), nullptr);
  EXPECT_DOUBLE_EQ(v->get("pool", "steals")->number, 3.0);
  ASSERT_TRUE(v->find("stages")->is_array());
  const auto& stage = v->find("stages")->items.at(0);
  EXPECT_EQ(stage.find("name")->text, "study.world");
  EXPECT_DOUBLE_EQ(stage.find("total_ms")->number_or(0.0), 7.5);
}

TEST(JsonTest, FindOnMissingKeyAndWrongKind) {
  const auto v = parse_json(R"({"a": 1})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("b"), nullptr);
  EXPECT_EQ(v->get("a", "nested"), nullptr);  // "a" is a number, not object
  EXPECT_DOUBLE_EQ(v->find("a")->number_or(-1.0), 1.0);
  EXPECT_EQ(v->find("a")->text_or("fallback"), "fallback");
}

TEST(JsonTest, StringEscapes) {
  const auto v = parse_json(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->text, "a\"b\\c\ndA\xC3\xA9");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("").has_value());
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json("{\"a\" 1}").has_value());
  EXPECT_FALSE(parse_json("[1,]").has_value());
  EXPECT_FALSE(parse_json("01").has_value());
  EXPECT_FALSE(parse_json("1.").has_value());
  EXPECT_FALSE(parse_json("+1").has_value());
  EXPECT_FALSE(parse_json("nul").has_value());
  EXPECT_FALSE(parse_json("\"unterminated").has_value());
  EXPECT_FALSE(parse_json("1 2").has_value());  // trailing garbage
  EXPECT_FALSE(parse_json("{} x").has_value());
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(parse_json(deep).has_value());
}

TEST(JsonTest, DuplicateKeysResolveToFirst) {
  const auto v = parse_json(R"({"k": 1, "k": 2})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->find("k")->number, 1.0);
}

TEST(JsonTest, WhitespaceTolerant) {
  const auto v = parse_json("  {\n  \"a\" :\t[ 1 , 2 ]\n}  ");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("a")->items.size(), 2u);
}

}  // namespace
}  // namespace cs::util
