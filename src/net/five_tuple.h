#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ipv4.h"

/// Transport-layer identifiers shared by the pcap and analysis layers.
namespace cs::net {

/// IP protocol numbers we care about (IANA values).
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kOther = 255,
};

std::string to_string(IpProto proto);

/// A transport endpoint.
struct Endpoint {
  Ipv4 addr;
  std::uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string to_string() const;
};

/// Classic 5-tuple. `canonical()` orders the endpoints so that both
/// directions of a conversation map to the same key.
struct FiveTuple {
  Endpoint src;
  Endpoint dst;
  IpProto proto = IpProto::kOther;

  auto operator<=>(const FiveTuple&) const = default;

  /// Direction-insensitive key: smaller endpoint first.
  FiveTuple canonical() const {
    if (dst < src) return {dst, src, proto};
    return *this;
  }

  std::string to_string() const;
};

struct FiveTupleHash {
  std::size_t operator()(const FiveTuple& t) const noexcept {
    std::uint64_t h = t.src.addr.value();
    h = h * 0x9e3779b97f4a7c15ULL + t.dst.addr.value();
    h = h * 0x9e3779b97f4a7c15ULL +
        ((std::uint64_t{t.src.port} << 24) | (std::uint64_t{t.dst.port} << 8) |
         static_cast<std::uint64_t>(t.proto));
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

}  // namespace cs::net
