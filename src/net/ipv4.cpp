#include "net/ipv4.h"

#include <charconv>
#include "util/format.h"

namespace cs::net {

std::optional<Ipv4> Ipv4::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* p = text.data();
  const char* end = p + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    if (octet > 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    unsigned v = 0;
    const auto [next, ec] = std::from_chars(p, end, v);
    if (ec != std::errc{} || v > 255 || next == p || next - p > 3)
      return std::nullopt;
    p = next;
    value = (value << 8) | v;
  }
  if (p != end) return std::nullopt;
  return Ipv4{value};
}

std::string Ipv4::to_string() const {
  return cs::util::fmt("{}.{}.{}.{}", octet(0), octet(1), octet(2), octet(3));
}

std::optional<Cidr> Cidr::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    const auto addr = Ipv4::parse(text);
    if (!addr) return std::nullopt;
    return Cidr{*addr, 32};
  }
  const auto addr = Ipv4::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = -1;
  const auto tail = text.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(tail.data(), tail.data() + tail.size(), len);
  if (ec != std::errc{} || next != tail.data() + tail.size() || len < 0 ||
      len > 32)
    return std::nullopt;
  return Cidr{*addr, len};
}

std::string Cidr::to_string() const {
  return cs::util::fmt("{}/{}", base_.to_string(), prefix_len_);
}

}  // namespace cs::net
