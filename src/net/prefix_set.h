#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"

/// Longest-prefix-match set of CIDR blocks with per-block tags.
///
/// This is the workhorse of the study: "is this IP inside EC2, and if so in
/// which region?" is a tagged longest-prefix match against the provider's
/// published ranges. Implemented as a binary trie over address bits, the
/// same structure routers use for FIB lookups.
namespace cs::net {

template <typename Tag>
class PrefixMap {
 public:
  PrefixMap() : root_(std::make_unique<Node>()) {}

  /// Inserts (or overwrites) a block with its tag.
  void insert(const Cidr& block, Tag tag) {
    Node* node = root_.get();
    for (int depth = 0; depth < block.prefix_len(); ++depth) {
      const int bit = (block.base().value() >> (31 - depth)) & 1;
      auto& child = node->children[bit];
      if (!child) child = std::make_unique<Node>();
      node = child.get();
    }
    if (!node->tag) ++size_;
    node->tag = std::move(tag);
    node->block = block;
  }

  /// Longest-prefix match; nullopt when no block covers the address.
  std::optional<Tag> lookup(Ipv4 addr) const {
    const Node* best = nullptr;
    const Node* node = root_.get();
    for (int depth = 0; node != nullptr && depth <= 32; ++depth) {
      if (node->tag) best = node;
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->children[bit].get();
    }
    return best ? best->tag : std::optional<Tag>{};
  }

  /// The matched block itself along with its tag.
  struct Match {
    Cidr block;
    Tag tag;
  };
  std::optional<Match> lookup_block(Ipv4 addr) const {
    const Node* best = nullptr;
    const Node* node = root_.get();
    for (int depth = 0; node != nullptr && depth <= 32; ++depth) {
      if (node->tag) best = node;
      if (depth == 32) break;
      const int bit = (addr.value() >> (31 - depth)) & 1;
      node = node->children[bit].get();
    }
    if (!best) return std::nullopt;
    return Match{best->block, *best->tag};
  }

  bool contains(Ipv4 addr) const { return lookup(addr).has_value(); }

  /// Number of inserted blocks.
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// All blocks in trie (address) order.
  std::vector<Match> entries() const {
    std::vector<Match> out;
    collect(root_.get(), out);
    return out;
  }

 private:
  struct Node {
    std::unique_ptr<Node> children[2];
    std::optional<Tag> tag;
    Cidr block;
  };

  static void collect(const Node* node, std::vector<Match>& out) {
    if (!node) return;
    if (node->tag) out.push_back({node->block, *node->tag});
    collect(node->children[0].get(), out);
    collect(node->children[1].get(), out);
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

/// Untagged convenience wrapper: pure membership testing.
class PrefixSet {
 public:
  void insert(const Cidr& block) { map_.insert(block, true); }
  bool contains(Ipv4 addr) const { return map_.contains(addr); }
  std::optional<Cidr> covering_block(Ipv4 addr) const {
    const auto m = map_.lookup_block(addr);
    if (!m) return std::nullopt;
    return m->block;
  }
  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }

 private:
  PrefixMap<bool> map_;
};

}  // namespace cs::net
