#include "net/checksum.h"

#include <vector>

namespace cs::net {
namespace {

std::uint32_t sum16(std::span<const std::uint8_t> data,
                    std::uint32_t acc) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2)
    acc += (std::uint32_t{data[i]} << 8) | data[i + 1];
  if (i < data.size()) acc += std::uint32_t{data[i]} << 8;
  return acc;
}

std::uint16_t fold(std::uint32_t acc) noexcept {
  while (acc >> 16) acc = (acc & 0xffff) + (acc >> 16);
  return static_cast<std::uint16_t>(~acc & 0xffff);
}

}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  return fold(sum16(data, 0));
}

std::uint16_t transport_checksum(Ipv4 src, Ipv4 dst, std::uint8_t proto,
                                 std::span<const std::uint8_t> segment)
    noexcept {
  std::uint32_t acc = 0;
  acc += src.value() >> 16;
  acc += src.value() & 0xffff;
  acc += dst.value() >> 16;
  acc += dst.value() & 0xffff;
  acc += proto;
  acc += static_cast<std::uint32_t>(segment.size());
  return fold(sum16(segment, acc));
}

}  // namespace cs::net
