#include "net/five_tuple.h"

#include "util/format.h"

namespace cs::net {

std::string to_string(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp:
      return "icmp";
    case IpProto::kTcp:
      return "tcp";
    case IpProto::kUdp:
      return "udp";
    case IpProto::kOther:
      return "other";
  }
  return "other";
}

std::string Endpoint::to_string() const {
  return cs::util::fmt("{}:{}", addr.to_string(), port);
}

std::string FiveTuple::to_string() const {
  return cs::util::fmt("{} -> {} ({})", src.to_string(), dst.to_string(),
                     cs::net::to_string(proto));
}

}  // namespace cs::net
