#pragma once

#include <cstdint>
#include <span>

#include "net/ipv4.h"

/// Internet checksum (RFC 1071) used by our IPv4/TCP/UDP encoders so that
/// traces we synthesize are well-formed for third-party tools too.
namespace cs::net {

/// One's-complement sum over the buffer, folded to 16 bits. An odd final
/// byte is padded with zero, per the RFC.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// TCP/UDP checksum with the IPv4 pseudo-header prepended.
std::uint16_t transport_checksum(Ipv4 src, Ipv4 dst, std::uint8_t proto,
                                 std::span<const std::uint8_t> segment)
    noexcept;

}  // namespace cs::net
