#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

/// IPv4 value types. The study only concerns IPv4 (the 2013 EC2/Azure
/// published ranges were IPv4-only), so we keep a dedicated, cheap value
/// type rather than a protocol-generic address class.
namespace cs::net {

/// An IPv4 address stored in host byte order.
class Ipv4 {
 public:
  constexpr Ipv4() = default;
  constexpr explicit Ipv4(std::uint32_t host_order) : value_(host_order) {}
  constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                 std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad notation ("203.0.113.9"). Rejects anything else.
  static std::optional<Ipv4> parse(std::string_view text);

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Ipv4&) const = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR block, e.g. 10.12.0.0/16.
class Cidr {
 public:
  constexpr Cidr() = default;

  /// Builds a block from any address inside it; host bits are masked off.
  constexpr Cidr(Ipv4 addr, int prefix_len)
      : base_(Ipv4{prefix_len == 0 ? 0 : addr.value() & mask(prefix_len)}),
        prefix_len_(prefix_len) {}

  /// Parses "a.b.c.d/len". A bare address parses as a /32.
  static std::optional<Cidr> parse(std::string_view text);

  constexpr Ipv4 base() const noexcept { return base_; }
  constexpr int prefix_len() const noexcept { return prefix_len_; }

  /// First and last addresses in the block.
  constexpr Ipv4 first() const noexcept { return base_; }
  constexpr Ipv4 last() const noexcept {
    return Ipv4{base_.value() | ~mask(prefix_len_)};
  }

  /// Number of addresses covered (2^(32-len); 2^32 clamps to 0xFFFFFFFF+1
  /// via a 64-bit return type).
  constexpr std::uint64_t size() const noexcept {
    return 1ULL << (32 - prefix_len_);
  }

  constexpr bool contains(Ipv4 addr) const noexcept {
    if (prefix_len_ == 0) return true;
    return (addr.value() & mask(prefix_len_)) == base_.value();
  }

  constexpr bool contains(const Cidr& other) const noexcept {
    return other.prefix_len_ >= prefix_len_ && contains(other.base_);
  }

  /// The i-th address inside the block (i < size()).
  constexpr Ipv4 at(std::uint64_t i) const noexcept {
    return Ipv4{static_cast<std::uint32_t>(base_.value() + i)};
  }

  std::string to_string() const;

  constexpr auto operator<=>(const Cidr&) const = default;

 private:
  static constexpr std::uint32_t mask(int len) noexcept {
    return len == 0 ? 0 : ~std::uint32_t{0} << (32 - len);
  }

  Ipv4 base_{};
  int prefix_len_ = 0;
};

}  // namespace cs::net
