#include "cloud/provider.h"

#include <algorithm>
#include <stdexcept>

namespace cs::cloud {
namespace {

constexpr int kSlash16sPerRegion = 32;

Region make_region(std::string name, double lat, double lon,
                   std::string country, std::string continent, int zones,
                   std::vector<std::string> blocks) {
  Region r;
  r.name = std::move(name);
  r.location = {{lat, lon}, std::move(country), std::move(continent)};
  r.zone_count = zones;
  for (const auto& b : blocks) r.public_blocks.push_back(*net::Cidr::parse(b));
  return r;
}

}  // namespace

std::string to_string(ProviderKind kind) {
  return kind == ProviderKind::kEc2 ? "EC2" : "Azure";
}

Provider Provider::make_ec2(std::uint64_t seed) {
  // Synthetic address plan shaped like the 2013 published EC2 ranges: a
  // few large blocks per region, heavily skewed toward US East.
  std::vector<Region> regions = {
      make_region("ec2.us-east-1", 38.95, -77.45, "US", "NA", 3,
                  {"54.0.0.0/11", "23.20.0.0/14"}),
      make_region("ec2.eu-west-1", 53.33, -6.25, "IE", "EU", 3,
                  {"54.32.0.0/12"}),
      make_region("ec2.us-west-1", 37.35, -121.95, "US", "NA", 2,
                  {"54.48.0.0/13"}),
      make_region("ec2.us-west-2", 45.84, -119.70, "US", "NA", 3,
                  {"54.56.0.0/13"}),
      make_region("ec2.ap-southeast-1", 1.35, 103.99, "SG", "AS", 2,
                  {"54.64.0.0/13"}),
      make_region("ec2.ap-northeast-1", 35.62, 139.74, "JP", "AS", 2,
                  {"54.72.0.0/13"}),
      make_region("ec2.sa-east-1", -23.55, -46.63, "BR", "SA", 2,
                  {"54.80.0.0/13"}),
      make_region("ec2.ap-southeast-2", -33.87, 151.21, "AU", "OC", 2,
                  {"54.88.0.0/13"}),
  };
  return Provider{ProviderKind::kEc2, seed, std::move(regions),
                  *net::Cidr::parse("205.251.192.0/18")};
}

Provider Provider::make_azure(std::uint64_t seed) {
  std::vector<Region> regions = {
      make_region("az.us-east", 38.95, -77.45, "US", "NA", 1,
                  {"138.91.0.0/16"}),
      make_region("az.us-west", 37.50, -122.00, "US", "NA", 1,
                  {"138.92.0.0/16"}),
      make_region("az.us-north", 41.88, -87.63, "US", "NA", 1,
                  {"138.93.0.0/16"}),
      make_region("az.us-south", 29.42, -98.49, "US", "NA", 1,
                  {"138.94.0.0/16"}),
      make_region("az.eu-west", 53.33, -6.25, "IE", "EU", 1,
                  {"138.95.0.0/16"}),
      make_region("az.eu-north", 52.37, 4.90, "NL", "EU", 1,
                  {"138.96.0.0/16"}),
      make_region("az.ap-southeast", 1.35, 103.99, "SG", "AS", 1,
                  {"138.97.0.0/16"}),
      make_region("az.ap-east", 22.32, 114.17, "HK", "AS", 1,
                  {"138.98.0.0/16"}),
  };
  // Azure's CDN shares the provider ranges (per the paper), so the distinct
  // CDN block goes unused for Azure; give it an empty-ish sentinel block.
  return Provider{ProviderKind::kAzure, seed, std::move(regions),
                  *net::Cidr::parse("138.99.0.0/24")};
}

Provider::Provider(ProviderKind kind, std::uint64_t seed,
                   std::vector<Region> regions, net::Cidr cdn_block)
    : kind_(kind),
      seed_(seed),
      regions_(std::move(regions)),
      cdn_block_(cdn_block),
      rng_(seed ^ (kind == ProviderKind::kEc2 ? 0xEC2ULL : 0xA2BEULL)) {
  // Publish ranges and carve internal /16 space. Region i owns second
  // octets [i*32, i*32+32) of 10.0.0.0/8, pre-dealt to zones in a shuffled
  // interleaving (this is what makes Figure 7's banding non-trivial).
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    const auto& region = regions_[i];
    for (const auto& block : region.public_blocks)
      public_ranges_.insert(block, region.name);

    RegionState state;
    state.region_index = i;
    state.zone_slash16s.resize(region.zone_count);
    std::vector<int> octets(kSlash16sPerRegion);
    for (int k = 0; k < kSlash16sPerRegion; ++k)
      octets[k] = static_cast<int>(i) * kSlash16sPerRegion + k;
    // Shuffle, then deal round-robin so each zone's /16s are scattered.
    for (int k = kSlash16sPerRegion - 1; k > 0; --k)
      std::swap(octets[k], octets[rng_.next_below(k + 1)]);
    for (int k = 0; k < kSlash16sPerRegion; ++k) {
      const int zone = k % region.zone_count;
      state.zone_slash16s[zone].push_back(octets[k]);
      slash16_zone_[octets[k]] = zone;
    }
    region_state_[region.name] = std::move(state);
  }
}

const Region* Provider::region(std::string_view name) const {
  for (const auto& r : regions_)
    if (r.name == name) return &r;
  return nullptr;
}

std::optional<std::string> Provider::region_of(net::Ipv4 addr) const {
  return public_ranges_.lookup(addr);
}

net::Ipv4 Provider::allocate_cdn_ip() {
  if (next_cdn_offset_ >= cdn_block_.size())
    throw std::runtime_error{"Provider: CDN block exhausted"};
  return cdn_block_.at(next_cdn_offset_++);
}

net::Ipv4 Provider::allocate_public_ip(const Region& region,
                                       RegionState& state) {
  std::uint64_t offset = state.next_public_offset++;
  for (const auto& block : region.public_blocks) {
    if (offset < block.size()) return block.at(offset);
    offset -= block.size();
  }
  throw std::runtime_error{"Provider: public ranges exhausted in " +
                           region.name};
}

net::Ipv4 Provider::allocate_internal_ip(RegionState& state, int zone,
                                         util::Rng& rng) {
  auto& blocks = state.zone_slash16s.at(zone);
  // Prefer a random /16 of the zone; fall back to scanning for room.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const int octet = blocks[rng.next_below(blocks.size())];
    auto& next = state.next_host[octet];
    if (next < 65534) {
      ++next;
      return net::Ipv4{(10u << 24) | (static_cast<std::uint32_t>(octet) << 16) |
                       next};
    }
  }
  for (const int octet : blocks) {
    auto& next = state.next_host[octet];
    if (next < 65534) {
      ++next;
      return net::Ipv4{(10u << 24) | (static_cast<std::uint32_t>(octet) << 16) |
                       next};
    }
  }
  throw std::runtime_error{"Provider: internal space exhausted"};
}

const Instance& Provider::launch(const LaunchRequest& request) {
  const Region* region = this->region(request.region);
  if (!region)
    throw std::invalid_argument{"Provider::launch: unknown region " +
                                request.region};
  if (request.zone_label >= region->zone_count)
    throw std::invalid_argument{"Provider::launch: bad zone label"};

  auto& state = region_state_.at(region->name);
  int zone;
  if (request.zone_label < 0) {
    zone = static_cast<int>(state.round_robin++ %
                            static_cast<std::uint64_t>(region->zone_count));
  } else {
    zone = physical_zone(request.account, request.region, request.zone_label);
  }

  Instance inst;
  inst.id = next_instance_id_++;
  inst.provider = kind_;
  inst.region = region->name;
  inst.zone = zone;
  inst.account = request.account;
  inst.type = request.type;
  inst.public_ip = allocate_public_ip(*region, state);
  inst.internal_ip = allocate_internal_ip(state, zone, rng_);

  instances_.push_back(std::move(inst));
  Instance* stored = &instances_.back();
  by_public_ip_[stored->public_ip.value()] = stored;
  by_internal_ip_[stored->internal_ip.value()] = stored;
  return *stored;
}

const Instance* Provider::find_by_public_ip(net::Ipv4 addr) const {
  const auto it = by_public_ip_.find(addr.value());
  return it == by_public_ip_.end() ? nullptr : it->second;
}

const Instance* Provider::find_by_internal_ip(net::Ipv4 addr) const {
  const auto it = by_internal_ip_.find(addr.value());
  return it == by_internal_ip_.end() ? nullptr : it->second;
}

std::optional<net::Ipv4> Provider::internal_ip_of(net::Ipv4 public_ip) const {
  const auto* inst = find_by_public_ip(public_ip);
  if (!inst) return std::nullopt;
  return inst->internal_ip;
}

std::optional<int> Provider::zone_of_public_ip(net::Ipv4 addr) const {
  const auto* inst = find_by_public_ip(addr);
  if (!inst) return std::nullopt;
  return inst->zone;
}

std::optional<int> Provider::zone_of_internal_ip(net::Ipv4 addr) const {
  return zone_of_internal_block(addr);
}

std::optional<int> Provider::zone_of_internal_block(
    net::Ipv4 any_addr_in_block) const {
  if (any_addr_in_block.octet(0) != 10) return std::nullopt;
  const auto it = slash16_zone_.find(any_addr_in_block.octet(1));
  if (it == slash16_zone_.end()) return std::nullopt;
  return it->second;
}

int Provider::physical_zone(const std::string& account,
                            const std::string& region, int zone_label) const {
  const Region* r = this->region(region);
  if (!r || zone_label < 0 || zone_label >= r->zone_count)
    throw std::invalid_argument{"Provider::physical_zone: bad arguments"};
  // Derive a stable permutation of [0, zone_count) per (account, region).
  util::Rng rng{seed_ ^ util::stable_hash(account) * 3 ^
                util::stable_hash(region)};
  std::vector<int> perm(r->zone_count);
  for (int i = 0; i < r->zone_count; ++i) perm[i] = i;
  for (int i = r->zone_count - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.next_below(i + 1)]);
  return perm[zone_label];
}

}  // namespace cs::cloud
