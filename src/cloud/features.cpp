#include "cloud/features.h"

#include <algorithm>
#include <stdexcept>

#include "util/format.h"

namespace cs::cloud {
namespace {

std::string short_region(const std::string& region) {
  // "ec2.us-east-1" -> "us-east-1"
  const auto dot = region.find('.');
  return dot == std::string::npos ? region : region.substr(dot + 1);
}

}  // namespace

ElbManager::ElbManager(Provider& ec2, std::uint64_t seed)
    : ec2_(ec2), rng_(seed ^ 0xE1BULL) {}

LogicalElb ElbManager::create(const std::string& account,
                              const std::string& region, int proxy_count) {
  if (proxy_count < 1)
    throw std::invalid_argument{"ElbManager::create: proxy_count < 1"};
  auto& pool = pools_[region];
  LogicalElb lb;
  lb.region = region;
  lb.cname = dns::Name::must_parse(util::fmt(
      "lb-{}.{}.elb.amazonaws.com", next_lb_id_++, short_region(region)));

  // Grow-or-reuse: roughly 60% of picks mint a new shared proxy, so the
  // proxy:subdomain ratio and the heavy-sharing tail match §4.1.
  for (int i = 0; i < proxy_count; ++i) {
    const bool grow = pool.empty() || rng_.chance(0.6);
    net::Ipv4 ip;
    if (grow) {
      const auto& proxy = ec2_.launch(
          {.account = "amazon-elb", .region = region, .type = "elb-proxy"});
      pool.push_back(proxy.public_ip);
      ++total_proxies_;
      ip = proxy.public_ip;
    } else {
      ip = pool[rng_.next_below(pool.size())];
    }
    if (std::find(lb.proxy_ips.begin(), lb.proxy_ips.end(), ip) ==
        lb.proxy_ips.end())
      lb.proxy_ips.push_back(ip);
  }
  (void)account;  // the logical ELB belongs to the tenant; proxies to Amazon
  return lb;
}

std::size_t ElbManager::pool_size(const std::string& region) const {
  const auto it = pools_.find(region);
  return it == pools_.end() ? 0 : it->second.size();
}

HerokuManager::HerokuManager(Provider& ec2, std::uint64_t seed)
    : ec2_(ec2), rng_(seed ^ 0x4E40ULL) {}

net::Ipv4 HerokuManager::fleet_ip() {
  if (fleet_.size() < kFleetSize && (fleet_.empty() || rng_.chance(0.15))) {
    const auto& node = ec2_.launch({.account = "heroku",
                                    .region = "ec2.us-east-1",
                                    .type = "paas-node"});
    fleet_.push_back(node.public_ip);
    return node.public_ip;
  }
  return fleet_[rng_.next_below(fleet_.size())];
}

HerokuApp HerokuManager::create(bool shared_proxy) {
  HerokuApp app;
  if (shared_proxy) {
    app.cname = dns::Name::must_parse("proxy.heroku.com");
  } else {
    app.cname = dns::Name::must_parse(
        util::fmt("app-{}.herokuapp.com", next_app_id_++));
  }
  const int ip_count = 1 + static_cast<int>(rng_.next_below(2));
  for (int i = 0; i < ip_count; ++i) {
    const auto ip = fleet_ip();
    if (std::find(app.ips.begin(), app.ips.end(), ip) == app.ips.end())
      app.ips.push_back(ip);
  }
  return app;
}

BeanstalkManager::BeanstalkManager(ElbManager& elbs, std::uint64_t seed)
    : elbs_(elbs), rng_(seed ^ 0xBEA7ULL) {}

BeanstalkEnv BeanstalkManager::create(const std::string& account,
                                      const std::string& region) {
  BeanstalkEnv env;
  env.cname = dns::Name::must_parse(
      util::fmt("app-{}.elasticbeanstalk.com", next_env_id_++));
  env.elb = elbs_.create(account, region,
                         1 + static_cast<int>(rng_.next_below(3)));
  return env;
}

CloudFrontManager::CloudFrontManager(Provider& ec2, std::uint64_t seed)
    : ec2_(ec2), rng_(seed ^ 0xCDFULL) {}

CdnDistribution CloudFrontManager::create(int edge_count) {
  if (edge_count < 1)
    throw std::invalid_argument{"CloudFrontManager::create: edge_count < 1"};
  CdnDistribution dist;
  dist.cname = dns::Name::must_parse(
      util::fmt("d{}.cloudfront.net", 100000 + next_dist_id_++));
  for (int i = 0; i < edge_count; ++i)
    dist.edge_ips.push_back(ec2_.allocate_cdn_ip());
  return dist;
}

CloudServiceManager::CloudServiceManager(Provider& azure, std::uint64_t seed)
    : azure_(azure), rng_(seed ^ 0xC5ULL) {}

CloudService CloudServiceManager::create(const std::string& account,
                                         const std::string& region) {
  CloudService cs;
  cs.cname = dns::Name::must_parse(
      util::fmt("cs-{}.cloudapp.net", next_cs_id_++));
  cs.region = region;
  const auto& inst = azure_.launch(
      {.account = account, .region = region, .type = "cloud-service"});
  cs.ip = inst.public_ip;
  return cs;
}

TrafficManagerManager::TrafficManagerManager(CloudServiceManager& services,
                                             std::uint64_t seed)
    : services_(services), rng_(seed ^ 0x73ULL) {}

TrafficManagerProfile TrafficManagerManager::create(
    const std::string& account, const std::vector<std::string>& regions) {
  if (regions.empty())
    throw std::invalid_argument{"TrafficManager: no member regions"};
  TrafficManagerProfile profile;
  profile.cname = dns::Name::must_parse(
      util::fmt("tm-{}.trafficmanager.net", next_profile_id_++));
  for (const auto& region : regions)
    profile.members.push_back(services_.create(account, region));
  return profile;
}

}  // namespace cs::cloud
