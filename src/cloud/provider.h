#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix_set.h"
#include "util/geo.h"
#include "util/rng.h"

/// Simulated IaaS providers (EC2 and Azure, 2013-era shape).
///
/// This is the stand-in for the real clouds the paper measured. It owns:
///  - regions with geographic locations and *published* public IP ranges
///    (the lists the paper matched DNS answers against),
///  - availability zones with zone-correlated internal /16 networks (the
///    structure the address-proximity cartography of §4.3 exploits),
///  - instance launch with per-account zone labels that are PERMUTED per
///    account, reproducing the real-EC2 property that account A's
///    "us-east-1a" may be account B's "us-east-1c",
///  - a CloudFront-like CDN address space distinct from EC2's ranges.
///
/// Ground-truth accessors let experiments score the estimators exactly.
namespace cs::cloud {

enum class ProviderKind { kEc2, kAzure };

std::string to_string(ProviderKind kind);

/// A geographically distinct data center.
struct Region {
  std::string name;          ///< e.g. "ec2.us-east-1"
  util::Location location;   ///< geo coordinates + country/continent
  int zone_count = 1;        ///< Azure regions have 1 (no zone concept)
  std::vector<net::Cidr> public_blocks;
};

/// One virtual machine (or ELB proxy / PaaS node — they are all instances
/// at the addressing level).
struct Instance {
  std::uint64_t id = 0;
  ProviderKind provider = ProviderKind::kEc2;
  std::string region;
  int zone = 0;  ///< physical zone index (ground truth)
  std::string account;
  std::string type;  ///< "m1.medium", "elb-proxy", ...
  net::Ipv4 public_ip;
  net::Ipv4 internal_ip;
};

struct LaunchRequest {
  std::string account;
  std::string region;
  /// Zone *label* index as the account sees it ('a' == 0); -1 lets the
  /// provider pick. Labels are translated per account to physical zones.
  int zone_label = -1;
  std::string type = "m1.medium";
};

class Provider {
 public:
  /// The eight 2013 EC2 regions with synthetic-but-shaped address plans.
  static Provider make_ec2(std::uint64_t seed);
  /// The eight 2013 Azure regions (single-zone).
  static Provider make_azure(std::uint64_t seed);

  ProviderKind kind() const noexcept { return kind_; }
  const std::vector<Region>& regions() const noexcept { return regions_; }
  const Region* region(std::string_view name) const;

  /// The published public ranges: block -> region name. This is what the
  /// analysis pipeline treats as the downloaded range list.
  const net::PrefixMap<std::string>& published_ranges() const noexcept {
    return public_ranges_;
  }
  /// Region attribution for an address (nullopt if outside the cloud).
  std::optional<std::string> region_of(net::Ipv4 addr) const;

  /// CDN address block (CloudFront analogue; EC2 only). Distinct from the
  /// EC2 ranges, matching the paper's observation.
  const net::Cidr& cdn_block() const noexcept { return cdn_block_; }
  net::Ipv4 allocate_cdn_ip();

  /// Launches an instance; throws std::invalid_argument for an unknown
  /// region or out-of-range zone label.
  const Instance& launch(const LaunchRequest& request);

  const Instance* find_by_public_ip(net::Ipv4 addr) const;
  const Instance* find_by_internal_ip(net::Ipv4 addr) const;

  /// The region-internal DNS view: public IP -> internal IP of the same
  /// instance (the paper resolved this from probe instances in-region).
  std::optional<net::Ipv4> internal_ip_of(net::Ipv4 public_ip) const;

  /// Ground truth: physical zone of an instance address.
  std::optional<int> zone_of_public_ip(net::Ipv4 addr) const;
  std::optional<int> zone_of_internal_ip(net::Ipv4 addr) const;

  /// Ground truth: physical zone that a /16 internal block belongs to.
  std::optional<int> zone_of_internal_block(net::Ipv4 any_addr_in_block) const;

  /// Translates an account's zone label index to the physical zone. The
  /// permutation is stable per (account, region).
  int physical_zone(const std::string& account, const std::string& region,
                    int zone_label) const;

  std::size_t instance_count() const noexcept { return instances_.size(); }
  const std::deque<Instance>& instances() const noexcept { return instances_; }

 private:
  Provider(ProviderKind kind, std::uint64_t seed, std::vector<Region> regions,
           net::Cidr cdn_block);

  struct RegionState {
    std::size_t region_index = 0;
    /// Next offset inside public_blocks for address assignment.
    std::size_t next_public_offset = 0;
    /// /16 internal blocks (second octet values) owned per zone.
    std::vector<std::vector<int>> zone_slash16s;
    /// Next host offset within each /16 (keyed by second octet).
    std::map<int, std::uint32_t> next_host;
    std::uint64_t round_robin = 0;
  };

  net::Ipv4 allocate_public_ip(const Region& region, RegionState& state);
  net::Ipv4 allocate_internal_ip(RegionState& state, int zone,
                                 util::Rng& rng);

  ProviderKind kind_;
  std::uint64_t seed_;
  std::vector<Region> regions_;
  net::PrefixMap<std::string> public_ranges_;
  net::Cidr cdn_block_;
  std::uint32_t next_cdn_offset_ = 16;  // leave room for NS addresses

  std::deque<Instance> instances_;
  std::unordered_map<std::uint32_t, Instance*> by_public_ip_;
  std::unordered_map<std::uint32_t, Instance*> by_internal_ip_;
  std::unordered_map<std::string, RegionState> region_state_;
  /// (second octet of internal /16) -> physical zone, global across regions
  /// because each region owns a disjoint second-octet range.
  std::map<int, int> slash16_zone_;
  std::uint64_t next_instance_id_ = 1;
  util::Rng rng_;
};

}  // namespace cs::cloud
