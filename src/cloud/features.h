#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "dns/name.h"
#include "util/rng.h"

/// Value-added cloud features from §2 of the paper: Elastic Load Balancers,
/// PaaS (Elastic Beanstalk / Heroku), CloudFront, Azure Cloud Services and
/// Traffic Manager. Each manager allocates real instances/addresses from a
/// Provider and returns the DNS-visible artifacts (CNAME targets and the
/// addresses they resolve to); the world generator installs these into the
/// simulated DNS tree.
namespace cs::cloud {

/// A tenant-facing logical ELB: one CNAME backed by shared physical
/// proxies ("physical ELB instances" in the paper's terminology).
struct LogicalElb {
  dns::Name cname;  ///< e.g. lb-42.us-east-1.elb.amazonaws.com
  std::string region;
  std::vector<net::Ipv4> proxy_ips;
};

class ElbManager {
 public:
  ElbManager(Provider& ec2, std::uint64_t seed);

  /// Creates a logical ELB with `proxy_count` physical proxies drawn from
  /// the regional shared pool (growing it as needed, so unrelated tenants
  /// come to share proxies — §4.1's observation).
  LogicalElb create(const std::string& account, const std::string& region,
                    int proxy_count);

  /// All physical proxies launched so far in a region.
  std::size_t pool_size(const std::string& region) const;
  std::size_t total_proxies() const noexcept { return total_proxies_; }

 private:
  Provider& ec2_;
  util::Rng rng_;
  std::uint64_t next_lb_id_ = 1;
  std::map<std::string, std::vector<net::Ipv4>> pools_;
  std::size_t total_proxies_ = 0;
};

/// Heroku: a PaaS whose many customer apps share a small proxy fleet
/// (the paper found 58K subdomains behind just 94 IPs, a third of them on
/// the single CNAME proxy.heroku.com).
struct HerokuApp {
  dns::Name cname;  ///< proxy.heroku.com or <app>.herokuapp.com
  std::vector<net::Ipv4> ips;
};

class HerokuManager {
 public:
  /// The fleet size the paper measured.
  static constexpr std::size_t kFleetSize = 94;

  HerokuManager(Provider& ec2, std::uint64_t seed);

  /// Registers one customer app; `shared_proxy` selects the
  /// proxy.heroku.com style (vs a dedicated app CNAME).
  HerokuApp create(bool shared_proxy);

  const std::vector<net::Ipv4>& fleet() const noexcept { return fleet_; }

 private:
  net::Ipv4 fleet_ip();

  Provider& ec2_;
  util::Rng rng_;
  std::vector<net::Ipv4> fleet_;
  std::uint64_t next_app_id_ = 1;
};

/// Elastic Beanstalk: an app CNAME that always fronts an ELB.
struct BeanstalkEnv {
  dns::Name cname;  ///< <app>.elasticbeanstalk.com
  LogicalElb elb;
};

class BeanstalkManager {
 public:
  BeanstalkManager(ElbManager& elbs, std::uint64_t seed);
  BeanstalkEnv create(const std::string& account, const std::string& region);

 private:
  ElbManager& elbs_;
  util::Rng rng_;
  std::uint64_t next_env_id_ = 1;
};

/// CloudFront-like CDN distribution: a CNAME into a dedicated IP range.
struct CdnDistribution {
  dns::Name cname;  ///< d<id>.cloudfront.net
  std::vector<net::Ipv4> edge_ips;
};

class CloudFrontManager {
 public:
  CloudFrontManager(Provider& ec2, std::uint64_t seed);
  CdnDistribution create(int edge_count);

 private:
  Provider& ec2_;
  util::Rng rng_;
  std::uint64_t next_dist_id_ = 1;
};

/// Azure Cloud Service: one public IP behind the provider NAT; clients
/// cannot tell VM / PaaS / LB apart (§4.1).
struct CloudService {
  dns::Name cname;  ///< <name>.cloudapp.net
  net::Ipv4 ip;
  std::string region;
};

class CloudServiceManager {
 public:
  CloudServiceManager(Provider& azure, std::uint64_t seed);
  CloudService create(const std::string& account, const std::string& region);

 private:
  Provider& azure_;
  util::Rng rng_;
  std::uint64_t next_cs_id_ = 1;
};

/// Azure Traffic Manager: a DNS-level balancer whose CNAME resolves to a
/// member Cloud Service CNAME.
struct TrafficManagerProfile {
  dns::Name cname;  ///< <name>.trafficmanager.net
  std::vector<CloudService> members;
};

class TrafficManagerManager {
 public:
  TrafficManagerManager(CloudServiceManager& services, std::uint64_t seed);
  TrafficManagerProfile create(const std::string& account,
                               const std::vector<std::string>& regions);

 private:
  CloudServiceManager& services_;
  util::Rng rng_;
  std::uint64_t next_profile_id_ = 1;
};

}  // namespace cs::cloud
