#include "proto/tls.h"

namespace cs::proto {
namespace {

constexpr std::uint8_t kContentTypeHandshake = 22;
constexpr std::uint8_t kHandshakeClientHello = 1;
constexpr std::uint8_t kHandshakeCertificate = 11;
constexpr std::uint16_t kVersionTls12 = 0x0303;
constexpr std::uint16_t kExtensionServerName = 0;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put_u24(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

/// Wraps a handshake message body in handshake + record framing.
std::vector<std::uint8_t> wrap(std::uint8_t handshake_type,
                               const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> handshake;
  handshake.push_back(handshake_type);
  put_u24(handshake, static_cast<std::uint32_t>(body.size()));
  handshake.insert(handshake.end(), body.begin(), body.end());

  std::vector<std::uint8_t> record;
  record.push_back(kContentTypeHandshake);
  put_u16(record, kVersionTls12);
  put_u16(record, static_cast<std::uint16_t>(handshake.size()));
  record.insert(record.end(), handshake.begin(), handshake.end());
  return record;
}

/// Bounds-checked big-endian reads.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}
  bool ok() const noexcept { return ok_; }
  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept {
    return ok_ ? data_.size() - pos_ : 0;
  }

  std::uint8_t u8() { return take(1) ? data_[pos_ - 1] : 0; }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    return static_cast<std::uint16_t>((data_[pos_ - 2] << 8) |
                                      data_[pos_ - 1]);
  }
  std::uint32_t u24() {
    if (!take(3)) return 0;
    return (std::uint32_t{data_[pos_ - 3]} << 16) |
           (std::uint32_t{data_[pos_ - 2]} << 8) | data_[pos_ - 1];
  }
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!take(n)) return {};
    return data_.subspan(pos_ - n, n);
  }
  void skip(std::size_t n) { take(n); }

 private:
  bool take(std::size_t n) {
    if (!ok_ || pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

std::vector<std::uint8_t> build_client_hello(const std::string& server_name) {
  std::vector<std::uint8_t> body;
  put_u16(body, kVersionTls12);
  body.insert(body.end(), 32, 0xAB);  // client random (fixed; no crypto here)
  body.push_back(0);                  // session id length
  put_u16(body, 2);                   // cipher suites length
  put_u16(body, 0x002F);              // TLS_RSA_WITH_AES_128_CBC_SHA
  body.push_back(1);                  // compression methods length
  body.push_back(0);                  // null compression

  // server_name extension (RFC 6066).
  std::vector<std::uint8_t> ext;
  put_u16(ext, kExtensionServerName);
  std::vector<std::uint8_t> sni_list;
  sni_list.push_back(0);  // name_type host_name
  put_u16(sni_list, static_cast<std::uint16_t>(server_name.size()));
  sni_list.insert(sni_list.end(), server_name.begin(), server_name.end());
  std::vector<std::uint8_t> sni_ext;
  put_u16(sni_ext, static_cast<std::uint16_t>(sni_list.size()));
  sni_ext.insert(sni_ext.end(), sni_list.begin(), sni_list.end());
  put_u16(ext, static_cast<std::uint16_t>(sni_ext.size()));
  ext.insert(ext.end(), sni_ext.begin(), sni_ext.end());

  put_u16(body, static_cast<std::uint16_t>(ext.size()));
  body.insert(body.end(), ext.begin(), ext.end());

  return wrap(kHandshakeClientHello, body);
}

std::vector<std::uint8_t> build_certificate(const std::string& common_name) {
  // Simplified certificate body: [u16 cn_len][cn bytes], wrapped in the
  // real certificate_list framing (u24 list length, u24 cert length).
  std::vector<std::uint8_t> cert;
  put_u16(cert, static_cast<std::uint16_t>(common_name.size()));
  cert.insert(cert.end(), common_name.begin(), common_name.end());

  std::vector<std::uint8_t> body;
  put_u24(body, static_cast<std::uint32_t>(cert.size() + 3));
  put_u24(body, static_cast<std::uint32_t>(cert.size()));
  body.insert(body.end(), cert.begin(), cert.end());
  return wrap(kHandshakeCertificate, body);
}

bool looks_like_tls(std::span<const std::uint8_t> data) noexcept {
  if (data.size() < 6) return false;
  if (data[0] != kContentTypeHandshake) return false;
  const std::uint16_t version =
      static_cast<std::uint16_t>((data[1] << 8) | data[2]);
  return version >= 0x0301 && version <= 0x0304;
}

std::optional<std::string> extract_sni(std::span<const std::uint8_t> data) {
  if (!looks_like_tls(data)) return std::nullopt;
  Cursor c{data};
  c.skip(1);  // content type
  c.skip(2);  // version
  const std::uint16_t record_len = c.u16();
  (void)record_len;
  const std::uint8_t handshake_type = c.u8();
  if (!c.ok() || handshake_type != kHandshakeClientHello) return std::nullopt;
  c.skip(3);   // handshake length
  c.skip(2);   // client version
  c.skip(32);  // random
  const std::uint8_t session_len = c.u8();
  c.skip(session_len);
  const std::uint16_t cipher_len = c.u16();
  c.skip(cipher_len);
  const std::uint8_t compression_len = c.u8();
  c.skip(compression_len);
  if (!c.ok()) return std::nullopt;
  if (c.remaining() < 2) return std::nullopt;  // no extensions block
  std::uint16_t ext_total = c.u16();
  while (c.ok() && ext_total >= 4) {
    const std::uint16_t ext_type = c.u16();
    const std::uint16_t ext_len = c.u16();
    ext_total = static_cast<std::uint16_t>(
        ext_total >= ext_len + 4 ? ext_total - ext_len - 4 : 0);
    if (ext_type == kExtensionServerName) {
      c.skip(2);  // server_name_list length
      const std::uint8_t name_type = c.u8();
      if (name_type != 0) return std::nullopt;
      const std::uint16_t name_len = c.u16();
      const auto bytes = c.bytes(name_len);
      if (!c.ok()) return std::nullopt;
      return std::string{reinterpret_cast<const char*>(bytes.data()),
                         bytes.size()};
    }
    c.skip(ext_len);
  }
  return std::nullopt;
}

std::optional<std::string> extract_certificate_cn(
    std::span<const std::uint8_t> data) {
  Cursor c{data};
  // Scan consecutive TLS records for a Certificate handshake message.
  while (c.ok() && c.remaining() >= 5) {
    const std::uint8_t content_type = c.u8();
    c.skip(2);  // version
    const std::uint16_t record_len = c.u16();
    if (!c.ok() || content_type != kContentTypeHandshake) return std::nullopt;
    const std::size_t record_end = c.pos() + record_len;
    const std::uint8_t handshake_type = c.u8();
    const std::uint32_t handshake_len = c.u24();
    if (!c.ok()) return std::nullopt;
    if (handshake_type == kHandshakeCertificate) {
      c.skip(3);  // certificate_list length
      const std::uint32_t cert_len = c.u24();
      (void)cert_len;
      const std::uint16_t cn_len = c.u16();
      const auto bytes = c.bytes(cn_len);
      if (!c.ok()) return std::nullopt;
      return std::string{reinterpret_cast<const char*>(bytes.data()),
                         bytes.size()};
    }
    // Skip the rest of this record's handshake message and any padding.
    const std::size_t skip_to =
        std::max(record_end, c.pos() + handshake_len);
    if (skip_to < c.pos()) return std::nullopt;
    c.skip(skip_to - c.pos());
  }
  return std::nullopt;
}

}  // namespace cs::proto
