#include "proto/classify.h"

#include "proto/http.h"
#include "proto/tls.h"
#include "util/strings.h"

namespace cs::proto {
namespace {

bool payload_is_http_request(std::span<const std::uint8_t> data) {
  static constexpr std::string_view kMethods[] = {
      "GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "PATCH "};
  if (data.size() < 4) return false;
  const std::string_view head{reinterpret_cast<const char*>(data.data()),
                              std::min<std::size_t>(data.size(), 8)};
  for (const auto method : kMethods)
    if (util::istarts_with(head, method)) return true;
  return false;
}

}  // namespace

std::string to_string(Service service) {
  switch (service) {
    case Service::kIcmp:
      return "ICMP";
    case Service::kHttp:
      return "HTTP (TCP)";
    case Service::kHttps:
      return "HTTPS (TCP)";
    case Service::kDns:
      return "DNS (UDP)";
    case Service::kOtherTcp:
      return "Other (TCP)";
    case Service::kOtherUdp:
      return "Other (UDP)";
  }
  return "?";
}

Service classify(const pcap::Flow& flow) {
  switch (flow.tuple.proto) {
    case net::IpProto::kIcmp:
      return Service::kIcmp;
    case net::IpProto::kTcp: {
      if (payload_is_http_request(flow.payload_to_responder))
        return Service::kHttp;
      if (looks_like_tls(flow.payload_to_responder))
        return Service::kHttps;
      const auto port = flow.tuple.dst.port;
      if (port == 80 || port == 8080) return Service::kHttp;
      if (port == 443) return Service::kHttps;
      return Service::kOtherTcp;
    }
    case net::IpProto::kUdp: {
      if (flow.tuple.dst.port == 53 || flow.tuple.src.port == 53)
        return Service::kDns;
      return Service::kOtherUdp;
    }
    case net::IpProto::kOther:
      return Service::kOtherTcp;
  }
  return Service::kOtherTcp;
}

}  // namespace cs::proto
