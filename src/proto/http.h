#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

/// HTTP/1.1 message parsing and synthesis — the fields Bro extracted for
/// the study: request hostnames (Table 5), response Content-Type and
/// Content-Length (Table 6).
namespace cs::proto {

struct HttpHeader {
  std::string name;   ///< original case preserved
  std::string value;  ///< trimmed
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  ///< "HTTP/1.1"
  std::vector<HttpHeader> headers;

  /// Case-insensitive header lookup; first match.
  std::optional<std::string> header(std::string_view name) const;
  /// The Host header (lower-cased), if present.
  std::optional<std::string> host() const;
};

struct HttpResponse {
  std::string version;
  int status = 0;
  std::string reason;
  std::vector<HttpHeader> headers;

  std::optional<std::string> header(std::string_view name) const;
  /// Content-Type with any ";charset=..." parameters stripped, lower-cased.
  std::optional<std::string> content_type() const;
  /// Parsed Content-Length, if present and valid.
  std::optional<std::uint64_t> content_length() const;
};

/// Parses one request head starting at `offset` in `data`. On success
/// returns the request and advances `offset` past the blank line (request
/// bodies are not consumed; the study's requests are GETs).
std::optional<HttpRequest> parse_request(std::span<const std::uint8_t> data,
                                         std::size_t& offset);

/// Parses one response head at `offset` and advances past the head AND
/// `Content-Length` body bytes (so consecutive responses in a reassembled
/// stream can be iterated). A body longer than the buffer consumes to end.
std::optional<HttpResponse> parse_response(std::span<const std::uint8_t> data,
                                           std::size_t& offset);

/// Parses all pipelined requests / responses in a payload buffer.
std::vector<HttpRequest> parse_requests(std::span<const std::uint8_t> data);
std::vector<HttpResponse> parse_responses(std::span<const std::uint8_t> data);

/// Serializers used by the traffic generator.
std::vector<std::uint8_t> build_request(const std::string& method,
                                        const std::string& host,
                                        const std::string& target);
/// Builds a response head plus `body_bytes` of filler body (capped by
/// `emit_body_cap` to keep trace sizes manageable while Content-Length
/// still reports the logical size).
std::vector<std::uint8_t> build_response(int status,
                                         const std::string& content_type,
                                         std::uint64_t body_bytes,
                                         std::size_t emit_body_cap = 1024);

}  // namespace cs::proto
