#pragma once

#include <string>

#include "pcap/flow.h"

/// Protocol classification of assembled flows — the breakdown behind
/// Table 2 (ICMP / HTTP / HTTPS / DNS / other TCP / other UDP).
namespace cs::proto {

enum class Service {
  kIcmp,
  kHttp,      ///< TCP with an HTTP request line (or port 80/8080 fallback)
  kHttps,     ///< TCP with a TLS handshake (or port 443 fallback)
  kDns,       ///< UDP port 53
  kOtherTcp,
  kOtherUdp,
};

std::string to_string(Service service);

/// Classifies a flow by payload evidence first, well-known port second —
/// the same precedence Bro's detectors use.
Service classify(const pcap::Flow& flow);

}  // namespace cs::proto
