#include "proto/logs.h"

#include "proto/tls.h"
#include "util/strings.h"

namespace cs::proto {

TraceLogs analyze_flows(const std::vector<pcap::Flow>& flows) {
  TraceLogs logs;
  logs.conns.reserve(flows.size());

  for (const auto& flow : flows) {
    ConnRecord conn;
    conn.tuple = flow.tuple;
    conn.service = classify(flow);
    conn.first_ts = flow.first_ts;
    conn.duration = flow.duration();
    conn.bytes = flow.bytes;
    conn.packets = flow.packets;

    if (conn.service == Service::kHttp) {
      const auto requests = parse_requests(flow.payload_to_responder);
      const auto responses = parse_responses(flow.payload_to_initiator);
      for (std::size_t i = 0; i < responses.size(); ++i) {
        HttpRecord rec;
        if (i < requests.size()) {
          rec.host = requests[i].host().value_or("");
          rec.method = requests[i].method;
          rec.target = requests[i].target;
        } else if (!requests.empty()) {
          rec.host = requests.front().host().value_or("");
        }
        rec.status = responses[i].status;
        rec.content_type = responses[i].content_type();
        rec.content_length = responses[i].content_length();
        logs.http.push_back(std::move(rec));
      }
      // Requests without responses (capture truncation) still record hosts.
      if (responses.empty()) {
        for (const auto& req : requests) {
          HttpRecord rec;
          rec.host = req.host().value_or("");
          rec.method = req.method;
          rec.target = req.target;
          logs.http.push_back(std::move(rec));
        }
      }
      if (!requests.empty()) conn.hostname = requests.front().host();
    } else if (conn.service == Service::kHttps) {
      SslRecord rec;
      rec.sni = extract_sni(flow.payload_to_responder);
      rec.certificate_cn = extract_certificate_cn(flow.payload_to_initiator);
      // The paper used the certificate CN as the hostname proxy for HTTPS;
      // fall back to SNI when the certificate is unreadable.
      conn.hostname = rec.certificate_cn ? rec.certificate_cn : rec.sni;
      logs.ssl.push_back(std::move(rec));
    }

    logs.conns.push_back(std::move(conn));
  }
  return logs;
}

}  // namespace cs::proto
