#include "proto/logfile.h"

#include <charconv>

#include "util/format.h"
#include "util/strings.h"

namespace cs::proto {
namespace {

const char* service_token(Service service) {
  switch (service) {
    case Service::kIcmp:
      return "icmp";
    case Service::kHttp:
      return "http";
    case Service::kHttps:
      return "ssl";
    case Service::kDns:
      return "dns";
    case Service::kOtherTcp:
      return "other-tcp";
    case Service::kOtherUdp:
      return "other-udp";
  }
  return "-";
}

std::optional<Service> service_from_token(std::string_view token) {
  if (token == "icmp") return Service::kIcmp;
  if (token == "http") return Service::kHttp;
  if (token == "ssl") return Service::kHttps;
  if (token == "dns") return Service::kDns;
  if (token == "other-tcp") return Service::kOtherTcp;
  if (token == "other-udp") return Service::kOtherUdp;
  return std::nullopt;
}

std::string opt(const std::optional<std::string>& value) {
  return value && !value->empty() ? *value : "-";
}

template <typename T>
std::optional<T> number_of(std::string_view token) {
  T value{};
  const auto [p, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || p != token.data() + token.size())
    return std::nullopt;
  return value;
}

}  // namespace

std::string to_conn_log(const TraceLogs& logs) {
  std::string out =
      "#fields\tts\tid.orig_h\tid.orig_p\tid.resp_h\tid.resp_p\tproto\t"
      "service\tduration\ttotal_bytes\ttotal_pkts\thost\n";
  for (const auto& conn : logs.conns) {
    out += util::fmt("{:.6f}\t{}\t{}\t{}\t{}\t{}\t{}\t{:.6f}\t{}\t{}\t{}\n",
                     conn.first_ts, conn.tuple.src.addr.to_string(),
                     conn.tuple.src.port, conn.tuple.dst.addr.to_string(),
                     conn.tuple.dst.port, net::to_string(conn.tuple.proto),
                     service_token(conn.service), conn.duration, conn.bytes,
                     conn.packets, opt(conn.hostname));
  }
  return out;
}

std::string to_http_log(const TraceLogs& logs) {
  std::string out =
      "#fields\thost\tmethod\turi\tstatus_code\tresp_mime_types\t"
      "response_body_len\n";
  for (const auto& http : logs.http) {
    out += util::fmt(
        "{}\t{}\t{}\t{}\t{}\t{}\n", http.host.empty() ? "-" : http.host,
        http.method.empty() ? "-" : http.method,
        http.target.empty() ? "-" : http.target, http.status,
        opt(http.content_type),
        http.content_length ? std::to_string(*http.content_length) : "-");
  }
  return out;
}

std::string to_ssl_log(const TraceLogs& logs) {
  std::string out = "#fields\tserver_name\tsubject_cn\n";
  for (const auto& ssl : logs.ssl)
    out += util::fmt("{}\t{}\n", opt(ssl.sni), opt(ssl.certificate_cn));
  return out;
}

std::vector<ConnRecord> parse_conn_log(std::string_view text) {
  std::vector<ConnRecord> out;
  for (const auto line : util::split(text, '\n')) {
    if (line.empty() || line.front() == '#') continue;
    const auto fields = util::split(line, '\t');
    if (fields.size() != 11) continue;
    ConnRecord conn;
    const auto ts = number_of<double>(fields[0]);
    const auto src = net::Ipv4::parse(fields[1]);
    const auto sport = number_of<std::uint16_t>(fields[2]);
    const auto dst = net::Ipv4::parse(fields[3]);
    const auto dport = number_of<std::uint16_t>(fields[4]);
    const auto service = service_from_token(fields[6]);
    const auto duration = number_of<double>(fields[7]);
    const auto bytes = number_of<std::uint64_t>(fields[8]);
    const auto packets = number_of<std::uint64_t>(fields[9]);
    if (!ts || !src || !sport || !dst || !dport || !service || !duration ||
        !bytes || !packets)
      continue;
    conn.first_ts = *ts;
    conn.tuple.src = {*src, *sport};
    conn.tuple.dst = {*dst, *dport};
    if (fields[5] == "tcp")
      conn.tuple.proto = net::IpProto::kTcp;
    else if (fields[5] == "udp")
      conn.tuple.proto = net::IpProto::kUdp;
    else if (fields[5] == "icmp")
      conn.tuple.proto = net::IpProto::kIcmp;
    conn.service = *service;
    conn.duration = *duration;
    conn.bytes = *bytes;
    conn.packets = *packets;
    if (fields[10] != "-") conn.hostname = std::string{fields[10]};
    out.push_back(std::move(conn));
  }
  return out;
}

}  // namespace cs::proto
