#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

/// Minimal TLS handshake codec.
///
/// The paper could not see inside HTTPS payloads; Bro instead surfaced the
/// SNI from ClientHello and the common name (CN) from the server
/// Certificate message, and the study keyed HTTPS traffic on those. We
/// implement real TLS record and handshake framing (record header,
/// HandshakeType, 24-bit lengths, ClientHello structure with the
/// server_name extension per RFC 6066). The certificate *body* is a
/// simplified stand-in for DER X.509: a length-prefixed CN string behind
/// the standard 3-byte certificate_list framing — enough to exercise the
/// same extraction path without a full ASN.1 stack (documented
/// substitution; see DESIGN.md).
namespace cs::proto {

/// Builds a TLS record containing a ClientHello with the given SNI.
std::vector<std::uint8_t> build_client_hello(const std::string& server_name);

/// Builds a TLS record containing a Certificate handshake message whose
/// (simplified) certificate carries the given common name.
std::vector<std::uint8_t> build_certificate(const std::string& common_name);

/// Extracts the SNI host from a byte stream that starts with a TLS
/// ClientHello record; nullopt if the stream is not such a record or
/// carries no server_name extension.
std::optional<std::string> extract_sni(std::span<const std::uint8_t> data);

/// Extracts the certificate common name from a server-to-client TLS byte
/// stream (scans records for a Certificate handshake message).
std::optional<std::string> extract_certificate_cn(
    std::span<const std::uint8_t> data);

/// True if the stream plausibly begins with a TLS handshake record
/// (content type 22, recognized version) — the classifier's HTTPS check.
bool looks_like_tls(std::span<const std::uint8_t> data) noexcept;

}  // namespace cs::proto
