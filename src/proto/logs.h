#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pcap/flow.h"
#include "proto/classify.h"
#include "proto/http.h"

/// Bro-style log records distilled from assembled flows: one conn record
/// per flow plus HTTP/SSL application records. These are the inputs to
/// every packet-capture analysis in §3.
namespace cs::proto {

/// Per-flow connection record (Bro's conn.log analogue).
struct ConnRecord {
  net::FiveTuple tuple;
  Service service = Service::kOtherTcp;
  double first_ts = 0.0;
  double duration = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  /// Hostname evidence: HTTP Host header, or TLS SNI, or the certificate
  /// common name — whichever the flow yields first (Table 5's keying).
  std::optional<std::string> hostname;
};

/// One HTTP response observed inside a flow (http.log analogue).
struct HttpRecord {
  std::string host;             ///< from the paired request (may be empty)
  std::string method;
  std::string target;
  int status = 0;
  std::optional<std::string> content_type;
  std::optional<std::uint64_t> content_length;
};

/// One TLS handshake observed (ssl.log analogue).
struct SslRecord {
  std::optional<std::string> sni;
  std::optional<std::string> certificate_cn;
};

struct TraceLogs {
  std::vector<ConnRecord> conns;
  std::vector<HttpRecord> http;
  std::vector<SslRecord> ssl;
};

/// Runs classification plus HTTP/TLS extraction over all flows.
TraceLogs analyze_flows(const std::vector<pcap::Flow>& flows);

}  // namespace cs::proto
