#pragma once

#include <string>

#include "proto/logs.h"

/// Bro/Zeek-style TSV log serialization for the analyzer output, so the
/// library's results can be exported to (and re-imported from) the format
/// downstream network-analysis tooling expects: a `#fields` header line
/// followed by one tab-separated record per line, `-` for unset fields.
namespace cs::proto {

/// conn.log-style rendering of the connection records.
std::string to_conn_log(const TraceLogs& logs);

/// http.log-style rendering.
std::string to_http_log(const TraceLogs& logs);

/// ssl.log-style rendering.
std::string to_ssl_log(const TraceLogs& logs);

/// Parses a conn.log produced by to_conn_log back into records (fields
/// this library did not write are ignored). Malformed lines are skipped.
std::vector<ConnRecord> parse_conn_log(std::string_view text);

}  // namespace cs::proto
