#include "proto/http.h"

#include <algorithm>
#include <charconv>

#include "util/format.h"
#include "util/strings.h"

namespace cs::proto {
namespace {

/// Finds the end of a header block (the "\r\n\r\n"); npos when incomplete.
std::size_t find_head_end(std::span<const std::uint8_t> data,
                          std::size_t offset) {
  for (std::size_t i = offset; i + 3 < data.size(); ++i) {
    if (data[i] == '\r' && data[i + 1] == '\n' && data[i + 2] == '\r' &&
        data[i + 3] == '\n')
      return i;
  }
  return std::string::npos;
}

std::vector<std::string_view> head_lines(std::span<const std::uint8_t> data,
                                         std::size_t begin, std::size_t end) {
  const std::string_view text{
      reinterpret_cast<const char*>(data.data()) + begin, end - begin};
  std::vector<std::string_view> lines;
  std::size_t start = 0;
  while (start < text.size()) {
    auto eol = text.find("\r\n", start);
    if (eol == std::string_view::npos) eol = text.size();
    lines.push_back(text.substr(start, eol - start));
    start = eol + 2;
  }
  return lines;
}

std::vector<HttpHeader> parse_headers(
    const std::vector<std::string_view>& lines) {
  std::vector<HttpHeader> headers;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto colon = lines[i].find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    headers.push_back(HttpHeader{
        std::string{util::trim(lines[i].substr(0, colon))},
        std::string{util::trim(lines[i].substr(colon + 1))}});
  }
  return headers;
}

std::optional<std::string> find_header(const std::vector<HttpHeader>& headers,
                                       std::string_view name) {
  for (const auto& h : headers)
    if (util::iequals(h.name, name)) return h.value;
  return std::nullopt;
}

}  // namespace

std::optional<std::string> HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

std::optional<std::string> HttpRequest::host() const {
  const auto h = header("host");
  if (!h) return std::nullopt;
  // Strip an optional port.
  const auto colon = h->find(':');
  return util::to_lower(colon == std::string::npos ? *h
                                                   : h->substr(0, colon));
}

std::optional<std::string> HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

std::optional<std::string> HttpResponse::content_type() const {
  const auto h = header("content-type");
  if (!h) return std::nullopt;
  const auto semi = h->find(';');
  return util::to_lower(std::string{util::trim(
      semi == std::string::npos ? *h : h->substr(0, semi))});
}

std::optional<std::uint64_t> HttpResponse::content_length() const {
  const auto h = header("content-length");
  if (!h) return std::nullopt;
  std::uint64_t value = 0;
  const auto [p, ec] =
      std::from_chars(h->data(), h->data() + h->size(), value);
  if (ec != std::errc{} || p != h->data() + h->size()) return std::nullopt;
  return value;
}

std::optional<HttpRequest> parse_request(std::span<const std::uint8_t> data,
                                         std::size_t& offset) {
  const auto head_end = find_head_end(data, offset);
  if (head_end == std::string::npos) return std::nullopt;
  const auto lines = head_lines(data, offset, head_end);
  if (lines.empty()) return std::nullopt;
  const auto parts = util::split_nonempty(lines[0], ' ');
  if (parts.size() != 3) return std::nullopt;
  if (!util::istarts_with(parts[2], "HTTP/")) return std::nullopt;
  HttpRequest req;
  req.method = std::string{parts[0]};
  req.target = std::string{parts[1]};
  req.version = std::string{parts[2]};
  req.headers = parse_headers(lines);
  offset = head_end + 4;
  return req;
}

std::optional<HttpResponse> parse_response(std::span<const std::uint8_t> data,
                                           std::size_t& offset) {
  const auto head_end = find_head_end(data, offset);
  if (head_end == std::string::npos) return std::nullopt;
  const auto lines = head_lines(data, offset, head_end);
  if (lines.empty()) return std::nullopt;
  const auto parts = util::split_nonempty(lines[0], ' ');
  if (parts.size() < 2 || !util::istarts_with(parts[0], "HTTP/"))
    return std::nullopt;
  HttpResponse resp;
  resp.version = std::string{parts[0]};
  const auto [p, ec] = std::from_chars(
      parts[1].data(), parts[1].data() + parts[1].size(), resp.status);
  if (ec != std::errc{} || resp.status < 100 || resp.status > 599)
    return std::nullopt;
  for (std::size_t i = 2; i < parts.size(); ++i) {
    if (!resp.reason.empty()) resp.reason += ' ';
    resp.reason += parts[i];
  }
  resp.headers = parse_headers(lines);
  offset = head_end + 4;
  // Skip the body so pipelined responses can be parsed; a truncated body
  // (payload cap) simply consumes to the end of the buffer.
  if (const auto len = resp.content_length())
    offset = std::min(data.size(), offset + *len);
  return resp;
}

std::vector<HttpRequest> parse_requests(std::span<const std::uint8_t> data) {
  std::vector<HttpRequest> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto req = parse_request(data, offset);
    if (!req) break;
    out.push_back(*std::move(req));
  }
  return out;
}

std::vector<HttpResponse> parse_responses(
    std::span<const std::uint8_t> data) {
  std::vector<HttpResponse> out;
  std::size_t offset = 0;
  while (offset < data.size()) {
    auto resp = parse_response(data, offset);
    if (!resp) break;
    out.push_back(*std::move(resp));
  }
  return out;
}

std::vector<std::uint8_t> build_request(const std::string& method,
                                        const std::string& host,
                                        const std::string& target) {
  const std::string text = util::fmt(
      "{} {} HTTP/1.1\r\nHost: {}\r\nUser-Agent: cloudscope/1.0\r\n"
      "Accept: */*\r\n\r\n",
      method, target, host);
  return {text.begin(), text.end()};
}

std::vector<std::uint8_t> build_response(int status,
                                         const std::string& content_type,
                                         std::uint64_t body_bytes,
                                         std::size_t emit_body_cap) {
  const std::string head = util::fmt(
      "HTTP/1.1 {} {}\r\nServer: cloudscope\r\nContent-Type: {}\r\n"
      "Content-Length: {}\r\n\r\n",
      status, status == 200 ? "OK" : "Status", content_type, body_bytes);
  std::vector<std::uint8_t> out{head.begin(), head.end()};
  const std::size_t emit =
      static_cast<std::size_t>(std::min<std::uint64_t>(body_bytes,
                                                       emit_body_cap));
  out.insert(out.end(), emit, static_cast<std::uint8_t>('x'));
  return out;
}

}  // namespace cs::proto
