#include "analysis/routing.h"

#include <algorithm>
#include <stdexcept>

#include "cloud/provider.h"
#include "util/geo.h"

namespace cs::analysis {
namespace {

/// Geographic coordinates for the EC2 regions (for kGeoNearest); taken
/// from the provider definitions to avoid a provider dependency here.
util::GeoPoint region_point(const std::string& name) {
  static const auto ec2 = cloud::Provider::make_ec2(0);
  if (const auto* region = ec2.region(name)) return region->location.point;
  throw std::invalid_argument{"evaluate_routing: unknown region " + name};
}

}  // namespace

std::string to_string(RoutingStrategy strategy) {
  switch (strategy) {
    case RoutingStrategy::kStaticBest:
      return "static-best";
    case RoutingStrategy::kGeoNearest:
      return "geo-nearest";
    case RoutingStrategy::kDynamicBest:
      return "dynamic-best (oracle)";
    case RoutingStrategy::kRaceTwo:
      return "race-two";
    case RoutingStrategy::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

std::vector<RoutingOutcome> evaluate_routing(
    const Campaign& campaign, const std::vector<std::string>& deployment) {
  // Map deployment names to campaign indices.
  std::vector<std::size_t> members;
  for (const auto& name : deployment) {
    const auto it = std::find(campaign.region_names.begin(),
                              campaign.region_names.end(), name);
    if (it == campaign.region_names.end())
      throw std::invalid_argument{
          "evaluate_routing: region not in campaign: " + name};
    members.push_back(
        static_cast<std::size_t>(it - campaign.region_names.begin()));
  }
  if (members.empty())
    throw std::invalid_argument{"evaluate_routing: empty deployment"};

  const std::size_t rounds = campaign.rounds();
  const std::size_t vantages = campaign.vantages.size();

  // Per-client long-run averages (for static-best) and geo choices.
  std::vector<std::size_t> static_choice(vantages);
  std::vector<std::vector<std::size_t>> ranked_members(vantages);
  std::vector<std::size_t> geo_choice(vantages);
  for (std::size_t v = 0; v < vantages; ++v) {
    std::vector<std::pair<double, std::size_t>> avg;
    for (const auto r : members) {
      double sum = 0.0;
      std::size_t n = 0;
      for (std::size_t round = 0; round < rounds; ++round) {
        if (const auto& s = campaign.rtt_ms[v][r][round]) {
          sum += *s;
          ++n;
        }
      }
      avg.emplace_back(n ? sum / n : 1e18, r);
    }
    std::sort(avg.begin(), avg.end());
    static_choice[v] = avg.front().second;
    for (const auto& [rtt, r] : avg) ranked_members[v].push_back(r);

    double best_km = 1e18;
    for (const auto r : members) {
      const double km = util::haversine_km(
          campaign.vantages[v].location.point,
          region_point(campaign.region_names[r]));
      if (km < best_km) {
        best_km = km;
        geo_choice[v] = r;
      }
    }
  }

  struct Acc {
    double rtt_sum = 0.0;
    std::size_t served = 0;
    std::size_t near_optimal = 0;
    std::size_t requests = 0;
  };
  std::map<RoutingStrategy, Acc> accs;

  for (std::size_t v = 0; v < vantages; ++v) {
    for (std::size_t round = 0; round < rounds; ++round) {
      // Per-round optimum among members.
      double optimum = 1e18;
      for (const auto r : members)
        if (const auto& s = campaign.rtt_ms[v][r][round])
          optimum = std::min(optimum, *s);
      if (optimum >= 1e17) continue;  // everything lost this round

      auto record = [&](RoutingStrategy strategy, double rtt,
                        std::size_t requests) {
        auto& acc = accs[strategy];
        acc.rtt_sum += rtt;
        ++acc.served;
        acc.requests += requests;
        if (rtt <= optimum * 1.1) ++acc.near_optimal;
      };

      auto sample_or_worst = [&](std::size_t r) {
        const auto& s = campaign.rtt_ms[v][r][round];
        // A lost probe means the request had to be retried elsewhere or
        // timed out; penalize with twice the worst member RTT this round.
        if (s) return *s;
        double worst = optimum;
        for (const auto m : members)
          if (const auto& sm = campaign.rtt_ms[v][m][round])
            worst = std::max(worst, *sm);
        return worst * 2.0;
      };

      record(RoutingStrategy::kStaticBest, sample_or_worst(static_choice[v]),
             1);
      record(RoutingStrategy::kGeoNearest, sample_or_worst(geo_choice[v]),
             1);
      record(RoutingStrategy::kDynamicBest, optimum, 1);
      // Race-two: the better of the client's two historically best members.
      {
        const auto first = ranked_members[v][0];
        const auto second =
            ranked_members[v][std::min<std::size_t>(1,
                                                    ranked_members[v].size() -
                                                        1)];
        const double rtt =
            std::min(sample_or_worst(first), sample_or_worst(second));
        record(RoutingStrategy::kRaceTwo, rtt, members.size() > 1 ? 2 : 1);
      }
      record(RoutingStrategy::kRoundRobin,
             sample_or_worst(members[round % members.size()]), 1);
    }
  }

  std::vector<RoutingOutcome> outcomes;
  for (const auto& [strategy, acc] : accs) {
    RoutingOutcome outcome;
    outcome.strategy = strategy;
    outcome.avg_rtt_ms = acc.served ? acc.rtt_sum / acc.served : 0.0;
    outcome.near_optimal_fraction =
        acc.served ? static_cast<double>(acc.near_optimal) / acc.served
                   : 0.0;
    outcome.request_amplification =
        acc.served ? static_cast<double>(acc.requests) / acc.served : 0.0;
    outcomes.push_back(outcome);
  }
  std::sort(outcomes.begin(), outcomes.end(),
            [](const RoutingOutcome& a, const RoutingOutcome& b) {
              return a.avg_rtt_ms < b.avg_rtt_ms;
            });
  return outcomes;
}

}  // namespace cs::analysis
