#pragma once

#include <optional>
#include <string>

#include "cloud/provider.h"
#include "net/prefix_set.h"

/// The "published IP ranges" view of the clouds — what the paper
/// downloaded from the EC2 forum post and the Azure datacenter-range
/// page, including CloudFront's distinct block.
namespace cs::analysis {

struct IpClassification {
  enum class Kind { kEc2, kAzure, kCloudFront, kOther };
  Kind kind = Kind::kOther;
  std::string region;  ///< empty for CloudFront / Other

  bool is_cloud() const noexcept { return kind != Kind::kOther; }
};

class CloudRanges {
 public:
  /// Snapshots the published ranges of both providers.
  CloudRanges(const cloud::Provider& ec2, const cloud::Provider& azure);

  IpClassification classify(net::Ipv4 addr) const;
  bool is_cloud(net::Ipv4 addr) const { return classify(addr).is_cloud(); }
  bool is_ec2(net::Ipv4 addr) const {
    return classify(addr).kind == IpClassification::Kind::kEc2;
  }
  bool is_azure(net::Ipv4 addr) const {
    return classify(addr).kind == IpClassification::Kind::kAzure;
  }
  bool is_cloudfront(net::Ipv4 addr) const {
    return classify(addr).kind == IpClassification::Kind::kCloudFront;
  }
  /// Region attribution (EC2 or Azure region name), if any.
  std::optional<std::string> region_of(net::Ipv4 addr) const;

 private:
  net::PrefixMap<std::string> ec2_;
  net::PrefixMap<std::string> azure_;
  net::Cidr cloudfront_;
};

}  // namespace cs::analysis
