#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "carto/combined.h"
#include "util/cdf.h"

/// §4.3: availability-zone usage — the latency-method evaluation
/// (Tables 11-13) and the zone-usage tables (Table 14/15, Figure 8).
namespace cs::analysis {

/// Table 12 row: latency-method outcome for one region.
struct LatencyZoneRow {
  std::string region;
  std::size_t target_ips = 0;
  std::size_t responded = 0;
  std::map<int, std::size_t> per_zone;  ///< label -> identified count
  std::size_t unknown = 0;

  double unknown_rate() const {
    return responded ? static_cast<double>(unknown) / responded : 0.0;
  }
};

/// Table 13 row: latency vs proximity agreement for one region.
struct VeracityRow {
  std::string region;
  std::size_t total = 0;
  std::size_t match = 0;
  std::size_t unknown = 0;  ///< one or both methods undecided
  std::size_t mismatch = 0;

  double error_rate() const {
    const auto decided = total - unknown;
    return decided ? static_cast<double>(mismatch) / decided : 0.0;
  }
};

struct ZoneStudy {
  /// The distinct EC2 instance addresses (VM/ELB/PaaS front ends) per
  /// region that were probed — Table 12's target populations.
  std::vector<LatencyZoneRow> latency_rows;
  std::vector<VeracityRow> veracity_rows;
  /// Extra (beyond the paper): both methods scored against simulator
  /// ground truth.
  double latency_accuracy_vs_truth = 0.0;
  double proximity_accuracy_vs_truth = 0.0;

  /// Combined-method zone per subdomain, parallel to
  /// dataset.cloud_subdomains: physical-zone sets (empty when unknown).
  std::vector<std::set<int>> subdomain_zones;
  std::vector<std::string> subdomain_primary_region;

  /// Table 14: per (region, zone label) -> domains / subdomains.
  struct ZoneUsage {
    std::map<int, std::set<std::string>> domains;
    std::map<int, std::size_t> subdomains;
  };
  std::map<std::string, ZoneUsage> usage_per_region;

  /// Figure 8 inputs.
  util::Cdf zones_per_subdomain;
  util::Cdf zones_per_domain;  ///< average over subdomains
  double fraction_one_zone = 0.0;
  double fraction_two_zones = 0.0;
  double fraction_three_plus = 0.0;
  /// Identification rate across all probed EC2 instances.
  double combined_identified_fraction = 0.0;
};

/// Runs the full zone study: probes every distinct EC2 front-end address
/// in the dataset with both estimators, evaluates them, and aggregates
/// zone usage with the combined method.
ZoneStudy run_zone_study(const AlexaDataset& dataset,
                         const CloudRanges& ranges, synth::World& world,
                         carto::ProximityEstimator& proximity,
                         carto::LatencyZoneEstimator& latency);

}  // namespace cs::analysis
