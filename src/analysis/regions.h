#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "analysis/patterns.h"
#include "util/cdf.h"

/// §4.2: region usage (Table 9/10, Figure 6) and the customer-location
/// mismatch analysis.
namespace cs::analysis {

struct RegionReport {
  /// Regions per subdomain, parallel to dataset.cloud_subdomains. Only
  /// VM/PaaS/ELB/TM addresses are attributed (CDN addresses excluded),
  /// per the paper's §4.2 method.
  std::vector<std::vector<std::string>> subdomain_regions;

  /// Table 9: (sub)domain counts per region.
  std::map<std::string, std::size_t> domains_per_region;
  std::map<std::string, std::size_t> subdomains_per_region;

  /// Figure 6 inputs.
  util::Cdf regions_per_ec2_subdomain;
  util::Cdf regions_per_azure_subdomain;
  util::Cdf regions_per_ec2_domain;    ///< average over its subdomains
  util::Cdf regions_per_azure_domain;

  /// Headline fractions: subdomains using exactly one region.
  double ec2_single_region_fraction = 0.0;
  double azure_single_region_fraction = 0.0;
};

RegionReport analyze_regions(const AlexaDataset& dataset,
                             const CloudRanges& ranges);

/// Table 10 rows: region usage for the top cloud-using domains.
struct DomainRegionRow {
  std::size_t rank = 0;
  std::string domain;
  std::size_t cloud_subdomains = 0;
  std::size_t total_regions = 0;
  std::size_t k1 = 0;  ///< subdomains using one region
  std::size_t k2 = 0;  ///< subdomains using two regions
};
std::vector<DomainRegionRow> analyze_top_domain_regions(
    const AlexaDataset& dataset, const RegionReport& report,
    std::size_t top_n = 14);

/// Customer-location analysis: fraction of subdomains hosted outside the
/// customer country / continent. Country truth comes from the world (the
/// AWIS stand-in); region geography from the providers.
struct CustomerGeoReport {
  std::size_t classified_subdomains = 0;
  std::size_t country_mismatch = 0;
  std::size_t continent_mismatch = 0;
};
CustomerGeoReport analyze_customer_geo(const AlexaDataset& dataset,
                                       const RegionReport& report,
                                       const synth::World& world);

}  // namespace cs::analysis
