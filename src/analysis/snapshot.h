#pragma once

#include "analysis/capture.h"
#include "analysis/cloud_usage.h"
#include "analysis/columns.h"
#include "analysis/dataset.h"
#include "analysis/isp.h"
#include "analysis/patterns.h"
#include "analysis/regions.h"
#include "analysis/widearea.h"
#include "analysis/zones.h"
#include "proto/logs.h"
#include "snap/codec.h"

/// Snapshot codecs for every cached stage result in core::Study. One
/// encode/decode pair per artifact type; the store picks the overload by
/// the slot's static type, via ADL on snap::Writer/Reader, which is why
/// these stay in namespace cs::snap even though the file lives in
/// analysis/ — the codecs depend on every artifact type, and the include
/// graph must point analysis -> snap, never snap -> analysis (cslint G1). Decoding validates as it goes (DNS names are
/// re-parsed through their own validators, enums are range-checked) and
/// throws SnapshotError rather than materialising nonsense.
///
/// Round-trip contract, pinned by snap_codec_test: for every artifact
/// `a`, encode(decode(encode(a))) produces the same bytes as encode(a).
namespace cs::snap {

void encode_artifact(Writer& w, const analysis::AlexaDataset& v);
void decode_artifact(Reader& r, analysis::AlexaDataset& v);

/// The dataset's native snapshot form (see analysis/columns.h); the
/// AlexaDataset overloads above convert through it, so the two encode to
/// identical bytes for equal data.
void encode_artifact(Writer& w, const analysis::DatasetColumns& v);
void decode_artifact(Reader& r, analysis::DatasetColumns& v);

/// Mid-stage checkpoint of a chunked dataset build ("dataset.partial").
void encode_artifact(Writer& w, const analysis::PartialDataset& v);
void decode_artifact(Reader& r, analysis::PartialDataset& v);

void encode_artifact(Writer& w, const analysis::CloudUsageReport& v);
void decode_artifact(Reader& r, analysis::CloudUsageReport& v);

void encode_artifact(Writer& w, const analysis::PatternReport& v);
void decode_artifact(Reader& r, analysis::PatternReport& v);

void encode_artifact(Writer& w, const analysis::RegionReport& v);
void decode_artifact(Reader& r, analysis::RegionReport& v);

void encode_artifact(Writer& w, const proto::TraceLogs& v);
void decode_artifact(Reader& r, proto::TraceLogs& v);

void encode_artifact(Writer& w, const analysis::CaptureReport& v);
void decode_artifact(Reader& r, analysis::CaptureReport& v);

void encode_artifact(Writer& w, const analysis::ZoneStudy& v);
void decode_artifact(Reader& r, analysis::ZoneStudy& v);

void encode_artifact(Writer& w, const analysis::Campaign& v);
void decode_artifact(Reader& r, analysis::Campaign& v);

void encode_artifact(Writer& w, const analysis::IspStudy& v);
void decode_artifact(Reader& r, analysis::IspStudy& v);

}  // namespace cs::snap
