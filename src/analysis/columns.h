#pragma once

#include <cstdint>
#include <vector>

#include "analysis/dataset.h"
#include "util/arena.h"

/// Columnar (SoA) form of the Alexa dataset.
///
/// AlexaDataset is the working representation every analysis consumes: a
/// vector of structs whose owning strings repeat each domain name once
/// per subdomain. At paper scale (1M domains / ~34M subdomains) those
/// repeats dominate memory, so the snapshot codec and the mid-stage
/// partial checkpoints use this layout instead: every distinct name is
/// interned once in a StringArena and referenced by u32 id, per-field
/// data lives in parallel columns, and variable-length attachments are
/// flattened into shared pools addressed by [off[i], off[i+1]) ranges.
///
/// The conversion is exactly lossless: to_dataset(from_dataset(d)) == d
/// field for field (pinned by snap_codec_test), so the columnar form can
/// sit on either side of a snapshot without changing study results.
namespace cs::analysis {

struct DatasetColumns {
  /// Interned presentation-format names. Ids are assigned in column scan
  /// order by from_dataset / the codec, so equal datasets produce equal
  /// arenas (and equal snapshot bytes).
  util::StringArena names;

  /// Parallel columns, one entry per cloud subdomain. Every *_off column
  /// holds count+1 offsets (off[0] = 0) into its flattened pool.
  struct Subdomains {
    std::vector<std::uint32_t> name;    ///< arena ids
    std::vector<std::uint32_t> domain;  ///< arena ids
    std::vector<std::uint64_t> domain_rank;
    std::vector<std::uint8_t> flags;  ///< kDirectA .. kCloudFront bits
    std::vector<std::uint64_t> record_off;
    std::vector<dns::ResourceRecord> record_pool;
    std::vector<std::uint64_t> address_off;
    std::vector<net::Ipv4> address_pool;
    std::vector<std::uint64_t> cname_off;
    std::vector<std::uint32_t> cname_pool;  ///< arena ids
    /// Name servers: subdomain i owns ns entries [ns_off[i], ns_off[i+1]);
    /// ns entry j owns addresses [ns_addr_off[j], ns_addr_off[j+1]).
    std::vector<std::uint64_t> ns_off;
    std::vector<std::uint32_t> ns_name_pool;  ///< arena ids
    std::vector<std::uint64_t> ns_addr_off;
    std::vector<net::Ipv4> ns_addr_pool;
  } subdomains;

  /// Parallel columns, one entry per probed domain.
  struct Domains {
    std::vector<std::uint32_t> name;  ///< arena ids
    std::vector<std::uint64_t> rank;
    std::vector<std::uint8_t> axfr;
    std::vector<std::uint64_t> subdomains_probed;
    std::vector<std::uint64_t> cloud_off;
    std::vector<std::uint64_t> cloud_pool;  ///< indices into subdomain columns
    std::vector<std::uint64_t> other_only;
    std::vector<std::uint64_t> unresolved;
    /// Failed-lookup ledgers as sparse (rcode, count) runs in rcode index
    /// order.
    std::vector<std::uint64_t> failed_off;
    std::vector<std::uint8_t> failed_rcode_pool;
    std::vector<std::uint64_t> failed_count_pool;
  } domains;

  std::uint64_t dns_queries_spent = 0;

  /// Bit positions in Subdomains::flags.
  enum Flag : std::uint8_t {
    kDirectA = 1u << 0,
    kOtherAddress = 1u << 1,
    kEc2Address = 1u << 2,
    kAzureAddress = 1u << 3,
    kCloudFrontAddress = 1u << 4,
  };

  std::size_t subdomain_count() const { return subdomains.name.size(); }
  std::size_t domain_count() const { return domains.name.size(); }

  static DatasetColumns from_dataset(const AlexaDataset& dataset);

  /// Rebuilds the row-oriented dataset. Throws std::invalid_argument if a
  /// stored name fails to re-parse (possible only for corrupt columns).
  AlexaDataset to_dataset() const;
};

/// A chunked dataset build captured mid-stage: columns for every domain
/// before `next_domain`, checkpointed by core::Study so a killed
/// paper-scale run resumes where it stopped instead of re-probing.
struct PartialDataset {
  DatasetColumns columns;
  std::uint64_t next_domain = 0;
};

}  // namespace cs::analysis
