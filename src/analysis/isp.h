#pragma once

#include <map>
#include <string>
#include <vector>

#include "internet/traceroute.h"

/// §5.2: downstream-ISP diversity (Table 16) and the availability impact
/// of single-ISP failures.
namespace cs::analysis {

/// Table 16 row: distinct downstream ISPs seen per zone of a region.
struct IspDiversityRow {
  std::string region;
  /// zone label -> distinct downstream AS count (absent zones omitted).
  std::map<int, std::size_t> per_zone;
  /// Fraction of routes using the busiest single downstream ISP
  /// (the "uneven spread" observation).
  double max_single_isp_share = 0.0;
};

struct IspStudy {
  std::vector<IspDiversityRow> rows;
};

/// Launches the §5.2 probe fleet — three "isp-probe" instances per zone
/// of every region, in region/zone order. Split out from run_isp_study so
/// a snapshot-resumed run can replay exactly these launches (and keep the
/// provider's address allocation identical) without redoing the
/// traceroutes.
std::vector<const cloud::Instance*> launch_probe_fleet(cloud::Provider& ec2);

/// Runs the §5.2 methodology: instances per zone traceroute to every
/// vantage; the first non-cloud hop is whois'ed to an AS.
IspStudy run_isp_study(cloud::Provider& ec2,
                       const internet::AsTopology& topology,
                       const std::vector<internet::VantagePoint>& vantages,
                       int traceroutes_per_pair = 5);

/// Availability experiment: fail each region's busiest downstream ISP and
/// measure the fraction of vantage paths blackholed for a single-region
/// deployment vs. a k-region deployment with failover.
struct FailureImpact {
  std::string region;
  std::uint32_t failed_asn = 0;
  double single_region_unreachable = 0.0;
  double multi_region_unreachable = 0.0;  ///< with a failover region
  std::string failover_region;
};
std::vector<FailureImpact> single_isp_failure_impact(
    cloud::Provider& ec2, internet::AsTopology& topology,
    const std::vector<internet::VantagePoint>& vantages);

}  // namespace cs::analysis
