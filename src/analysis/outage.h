#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "analysis/regions.h"

/// Region- and zone-outage impact (§4.2/§4.3 implications): the paper's
/// headline that a US East outage would take down critical components of
/// 61% of EC2-using domains, and that a single-zone failure fully
/// disables every subdomain confined to that zone.
namespace cs::analysis {

struct OutageImpact {
  std::string failed_unit;  ///< region name, or "region/zone-k"
  /// Subdomains with every front-end address inside the failed unit.
  std::size_t subdomains_down = 0;
  /// Subdomains with some but not all front ends inside it.
  std::size_t subdomains_degraded = 0;
  /// Domains with at least one fully-down subdomain.
  std::size_t domains_affected = 0;
  /// ... as a fraction of cloud-using domains.
  double domains_affected_fraction = 0.0;
};

/// Simulates failing each region: a subdomain is down when all of its
/// region-attributed addresses fall inside the failed region.
std::vector<OutageImpact> region_outage_impact(const AlexaDataset& dataset,
                                               const RegionReport& regions);

/// Simulates failing each (region, physical zone): requires the zone
/// attribution from the cartography study. Subdomains whose zone set is
/// exactly {zone} go down; multi-zone users degrade.
struct ZoneOutageInput {
  /// Per subdomain: primary region and identified physical zones.
  const std::vector<std::set<int>>& subdomain_zones;
  const std::vector<std::string>& subdomain_primary_region;
};
std::vector<OutageImpact> zone_outage_impact(const AlexaDataset& dataset,
                                             const ZoneOutageInput& zones);

}  // namespace cs::analysis
