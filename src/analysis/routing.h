#pragma once

#include <string>
#include <vector>

#include "analysis/widearea.h"

/// Client-to-region request-routing strategies (§5.1's closing
/// discussion): once a tenant deploys in k regions, how should clients be
/// steered? The paper contrasts global request scheduling ("effective,
/// but complex") with racing requests to several regions ("simple, but
/// increases server load"). This module quantifies that trade-off on a
/// measured campaign.
namespace cs::analysis {

enum class RoutingStrategy {
  kStaticBest,     ///< each client pinned to its long-run best region
  kGeoNearest,     ///< each client pinned to the geographically closest
  kDynamicBest,    ///< per-round oracle scheduling (upper bound)
  kRaceTwo,        ///< request races between the client's top two regions
  kRoundRobin,     ///< naive rotation across the deployment
};

std::string to_string(RoutingStrategy strategy);

struct RoutingOutcome {
  RoutingStrategy strategy;
  double avg_rtt_ms = 0.0;
  /// Fraction of (client, round) pairs where the choice was within 10% of
  /// the per-round optimum.
  double near_optimal_fraction = 0.0;
  /// Requests issued per served round (1.0 except for racing).
  double request_amplification = 1.0;
};

/// Evaluates each strategy over the campaign restricted to `deployment`
/// (region names; must be a subset of the campaign's regions).
std::vector<RoutingOutcome> evaluate_routing(
    const Campaign& campaign, const std::vector<std::string>& deployment);

}  // namespace cs::analysis
