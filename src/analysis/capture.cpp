#include "analysis/capture.h"

#include <algorithm>

#include "util/strings.h"

namespace cs::analysis {
namespace {

/// Which cloud the flow's remote endpoint belongs to; the capture filter
/// kept only cloud-destined flows, so "neither" means skip. The remote
/// side is the destination of university-initiated flows.
std::optional<std::string> cloud_of(const proto::ConnRecord& conn,
                                    const CloudRanges& ranges) {
  const auto c = ranges.classify(conn.tuple.dst.addr);
  switch (c.kind) {
    case IpClassification::Kind::kEc2:
    case IpClassification::Kind::kCloudFront:
      return "EC2";
    case IpClassification::Kind::kAzure:
      return "Azure";
    case IpClassification::Kind::kOther:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::string registered_domain(std::string_view hostname) {
  std::string host = util::to_lower(hostname);
  if (host.rfind("*.", 0) == 0) host = host.substr(2);
  const auto labels = util::split_nonempty(host, '.');
  if (labels.size() <= 2) return host;
  return std::string{labels[labels.size() - 2]} + "." +
         std::string{labels[labels.size() - 1]};
}

CaptureReport analyze_capture(const proto::TraceLogs& logs,
                              const CloudRanges& ranges,
                              const std::map<std::string, std::size_t>& rank_of,
                              std::size_t top_n) {
  CaptureReport report;

  // Per-domain volume and flow-count accumulators.
  std::map<std::string, std::uint64_t> web_bytes_ec2, web_bytes_azure;
  std::map<std::string, std::size_t> http_flows_ec2, http_flows_azure;
  std::map<std::string, std::size_t> https_flows_ec2, https_flows_azure;
  std::uint64_t total_web_bytes = 0;

  for (const auto& conn : logs.conns) {
    const auto cloud = cloud_of(conn, ranges);
    if (!cloud) continue;
    const auto service = proto::to_string(conn.service);

    auto& share = report.protocols.cloud_service[*cloud][service];
    share.bytes += conn.bytes;
    ++share.flows;
    auto& cloud_total = *cloud == "EC2" ? report.protocols.ec2_total
                                        : report.protocols.azure_total;
    cloud_total.bytes += conn.bytes;
    ++cloud_total.flows;
    report.protocols.total.bytes += conn.bytes;
    ++report.protocols.total.flows;

    const bool is_http = conn.service == proto::Service::kHttp;
    const bool is_https = conn.service == proto::Service::kHttps;
    if (!is_http && !is_https) continue;
    total_web_bytes += conn.bytes;

    if (!conn.hostname) continue;
    const auto domain = registered_domain(*conn.hostname);
    auto& volume = *cloud == "EC2" ? web_bytes_ec2 : web_bytes_azure;
    volume[domain] += conn.bytes;
    if (is_http) {
      auto& flows = *cloud == "EC2" ? http_flows_ec2 : http_flows_azure;
      ++flows[domain];
      (*cloud == "EC2" ? report.http_flow_size_ec2
                       : report.http_flow_size_azure)
          .add(static_cast<double>(conn.bytes));
    } else {
      auto& flows = *cloud == "EC2" ? https_flows_ec2 : https_flows_azure;
      ++flows[domain];
      (*cloud == "EC2" ? report.https_flow_size_ec2
                       : report.https_flow_size_azure)
          .add(static_cast<double>(conn.bytes));
    }
  }

  report.unique_domains_ec2 = web_bytes_ec2.size();
  report.unique_domains_azure = web_bytes_azure.size();
  for (const auto& [domain, bytes] : web_bytes_ec2)
    if (rank_of.contains(domain)) ++report.domains_in_alexa;
  for (const auto& [domain, bytes] : web_bytes_azure)
    if (rank_of.contains(domain)) ++report.domains_in_alexa;

  auto emit_top = [&](const std::map<std::string, std::uint64_t>& volumes,
                      std::vector<DomainVolumeRow>& out) {
    std::vector<std::pair<std::uint64_t, std::string>> sorted;
    for (const auto& [domain, bytes] : volumes)
      sorted.emplace_back(bytes, domain);
    std::sort(sorted.rbegin(), sorted.rend());
    for (std::size_t i = 0; i < std::min(top_n, sorted.size()); ++i) {
      DomainVolumeRow row;
      row.domain = sorted[i].second;
      row.bytes = sorted[i].first;
      row.percent_of_web =
          total_web_bytes
              ? 100.0 * static_cast<double>(row.bytes) / total_web_bytes
              : 0.0;
      if (const auto it = rank_of.find(row.domain); it != rank_of.end())
        row.alexa_rank = it->second;
      out.push_back(std::move(row));
    }
  };
  emit_top(web_bytes_ec2, report.top_ec2_domains);
  emit_top(web_bytes_azure, report.top_azure_domains);

  // Figure 3a/3b: flows per domain / per common name.
  auto fill_flow_cdf = [](const std::map<std::string, std::size_t>& counts,
                          util::Cdf& cdf) {
    for (const auto& [domain, flows] : counts)
      cdf.add(static_cast<double>(flows));
  };
  fill_flow_cdf(http_flows_ec2, report.http_flows_per_domain_ec2);
  fill_flow_cdf(http_flows_azure, report.http_flows_per_domain_azure);
  fill_flow_cdf(https_flows_ec2, report.https_flows_per_cn_ec2);
  fill_flow_cdf(https_flows_azure, report.https_flows_per_cn_azure);

  auto top100_share = [](const std::map<std::string, std::size_t>& counts) {
    std::vector<std::size_t> flows;
    std::size_t total = 0;
    for (const auto& [domain, n] : counts) {
      flows.push_back(n);
      total += n;
    }
    std::sort(flows.rbegin(), flows.rend());
    std::size_t top = 0;
    for (std::size_t i = 0; i < std::min<std::size_t>(100, flows.size()); ++i)
      top += flows[i];
    return total ? static_cast<double>(top) / total : 0.0;
  };
  report.top100_http_flow_share_ec2 = top100_share(http_flows_ec2);
  report.top100_http_flow_share_azure = top100_share(http_flows_azure);

  // Table 6: content types by Content-Length.
  struct TypeAcc {
    std::uint64_t bytes = 0;
    std::uint64_t count = 0;
    std::uint64_t max = 0;
  };
  std::map<std::string, TypeAcc> types;
  std::uint64_t type_total = 0;
  for (const auto& http : logs.http) {
    if (!http.content_type || !http.content_length) continue;
    auto& acc = types[*http.content_type];
    acc.bytes += *http.content_length;
    ++acc.count;
    acc.max = std::max(acc.max, *http.content_length);
    type_total += *http.content_length;
  }
  for (const auto& [type, acc] : types) {
    ContentTypeRow row;
    row.content_type = type;
    row.bytes = acc.bytes;
    row.percent =
        type_total ? 100.0 * static_cast<double>(acc.bytes) / type_total
                   : 0.0;
    row.mean_kb = acc.count ? static_cast<double>(acc.bytes) / acc.count /
                                  1024.0
                            : 0.0;
    row.max_mb = static_cast<double>(acc.max) / (1024.0 * 1024.0);
    report.content_types.push_back(std::move(row));
  }
  std::sort(report.content_types.begin(), report.content_types.end(),
            [](const ContentTypeRow& a, const ContentTypeRow& b) {
              return a.bytes > b.bytes;
            });
  if (report.content_types.size() > 10) report.content_types.resize(10);

  return report;
}

}  // namespace cs::analysis
