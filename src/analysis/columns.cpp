#include "analysis/columns.h"

namespace cs::analysis {
namespace {

std::uint8_t pack_flags(const SubdomainObservation& s) {
  std::uint8_t f = 0;
  if (s.direct_a_record) f |= DatasetColumns::kDirectA;
  if (s.has_other_address) f |= DatasetColumns::kOtherAddress;
  if (s.has_ec2_address) f |= DatasetColumns::kEc2Address;
  if (s.has_azure_address) f |= DatasetColumns::kAzureAddress;
  if (s.has_cloudfront_address) f |= DatasetColumns::kCloudFrontAddress;
  return f;
}

dns::Name name_of(const util::StringArena& names, std::uint32_t id) {
  return dns::Name::must_parse(names.view(id));
}

}  // namespace

DatasetColumns DatasetColumns::from_dataset(const AlexaDataset& dataset) {
  DatasetColumns c;
  c.dns_queries_spent = dataset.dns_queries_spent;

  auto& sub = c.subdomains;
  const std::size_t subs = dataset.cloud_subdomains.size();
  sub.name.reserve(subs);
  sub.domain.reserve(subs);
  sub.domain_rank.reserve(subs);
  sub.flags.reserve(subs);
  sub.record_off.reserve(subs + 1);
  sub.address_off.reserve(subs + 1);
  sub.cname_off.reserve(subs + 1);
  sub.ns_off.reserve(subs + 1);
  sub.record_off.push_back(0);
  sub.address_off.push_back(0);
  sub.cname_off.push_back(0);
  sub.ns_off.push_back(0);
  sub.ns_addr_off.push_back(0);
  for (const auto& s : dataset.cloud_subdomains) {
    sub.name.push_back(c.names.intern(s.name.to_string()));
    sub.domain.push_back(c.names.intern(s.domain.to_string()));
    sub.domain_rank.push_back(s.domain_rank);
    sub.flags.push_back(pack_flags(s));
    sub.record_pool.insert(sub.record_pool.end(), s.records.begin(),
                           s.records.end());
    sub.record_off.push_back(sub.record_pool.size());
    sub.address_pool.insert(sub.address_pool.end(), s.addresses.begin(),
                            s.addresses.end());
    sub.address_off.push_back(sub.address_pool.size());
    for (const auto& cname : s.cnames)
      sub.cname_pool.push_back(c.names.intern(cname.to_string()));
    sub.cname_off.push_back(sub.cname_pool.size());
    for (const auto& [ns_name, addrs] : s.name_servers) {
      sub.ns_name_pool.push_back(c.names.intern(ns_name.to_string()));
      sub.ns_addr_pool.insert(sub.ns_addr_pool.end(), addrs.begin(),
                              addrs.end());
      sub.ns_addr_off.push_back(sub.ns_addr_pool.size());
    }
    sub.ns_off.push_back(sub.ns_name_pool.size());
  }

  auto& dom = c.domains;
  const std::size_t doms = dataset.domains.size();
  dom.name.reserve(doms);
  dom.rank.reserve(doms);
  dom.axfr.reserve(doms);
  dom.subdomains_probed.reserve(doms);
  dom.cloud_off.reserve(doms + 1);
  dom.other_only.reserve(doms);
  dom.unresolved.reserve(doms);
  dom.failed_off.reserve(doms + 1);
  dom.cloud_off.push_back(0);
  dom.failed_off.push_back(0);
  for (const auto& d : dataset.domains) {
    dom.name.push_back(c.names.intern(d.name.to_string()));
    dom.rank.push_back(d.rank);
    dom.axfr.push_back(d.axfr_succeeded ? 1 : 0);
    dom.subdomains_probed.push_back(d.subdomains_probed);
    dom.cloud_pool.insert(dom.cloud_pool.end(), d.cloud_subdomains.begin(),
                          d.cloud_subdomains.end());
    dom.cloud_off.push_back(dom.cloud_pool.size());
    dom.other_only.push_back(d.other_only_subdomains);
    dom.unresolved.push_back(d.unresolved_subdomains);
    for (std::size_t i = 0; i < FailedLookups::kRcodeCount; ++i) {
      const auto rcode = static_cast<dns::Rcode>(i);
      if (const auto count = d.failed_lookups.count(rcode)) {
        dom.failed_rcode_pool.push_back(static_cast<std::uint8_t>(i));
        dom.failed_count_pool.push_back(count);
      }
    }
    dom.failed_off.push_back(dom.failed_rcode_pool.size());
  }
  return c;
}

AlexaDataset DatasetColumns::to_dataset() const {
  AlexaDataset dataset;
  dataset.dns_queries_spent = dns_queries_spent;

  const auto& sub = subdomains;
  dataset.cloud_subdomains.resize(subdomain_count());
  for (std::size_t i = 0; i < subdomain_count(); ++i) {
    auto& s = dataset.cloud_subdomains[i];
    s.name = name_of(names, sub.name[i]);
    s.domain = name_of(names, sub.domain[i]);
    s.domain_rank = static_cast<std::size_t>(sub.domain_rank[i]);
    const auto flags = sub.flags[i];
    s.direct_a_record = (flags & kDirectA) != 0;
    s.has_other_address = (flags & kOtherAddress) != 0;
    s.has_ec2_address = (flags & kEc2Address) != 0;
    s.has_azure_address = (flags & kAzureAddress) != 0;
    s.has_cloudfront_address = (flags & kCloudFrontAddress) != 0;
    s.records.assign(sub.record_pool.begin() + sub.record_off[i],
                     sub.record_pool.begin() + sub.record_off[i + 1]);
    s.addresses.assign(sub.address_pool.begin() + sub.address_off[i],
                       sub.address_pool.begin() + sub.address_off[i + 1]);
    s.cnames.reserve(sub.cname_off[i + 1] - sub.cname_off[i]);
    for (auto j = sub.cname_off[i]; j < sub.cname_off[i + 1]; ++j)
      s.cnames.push_back(name_of(names, sub.cname_pool[j]));
    s.name_servers.reserve(sub.ns_off[i + 1] - sub.ns_off[i]);
    for (auto j = sub.ns_off[i]; j < sub.ns_off[i + 1]; ++j)
      s.name_servers.emplace_back(
          name_of(names, sub.ns_name_pool[j]),
          std::vector<net::Ipv4>(
              sub.ns_addr_pool.begin() + sub.ns_addr_off[j],
              sub.ns_addr_pool.begin() + sub.ns_addr_off[j + 1]));
  }

  const auto& dom = domains;
  dataset.domains.resize(domain_count());
  for (std::size_t i = 0; i < domain_count(); ++i) {
    auto& d = dataset.domains[i];
    d.name = name_of(names, dom.name[i]);
    d.rank = static_cast<std::size_t>(dom.rank[i]);
    d.axfr_succeeded = dom.axfr[i] != 0;
    d.subdomains_probed = static_cast<std::size_t>(dom.subdomains_probed[i]);
    d.cloud_subdomains.assign(dom.cloud_pool.begin() + dom.cloud_off[i],
                              dom.cloud_pool.begin() + dom.cloud_off[i + 1]);
    d.other_only_subdomains = static_cast<std::size_t>(dom.other_only[i]);
    d.unresolved_subdomains = static_cast<std::size_t>(dom.unresolved[i]);
    for (auto j = dom.failed_off[i]; j < dom.failed_off[i + 1]; ++j)
      d.failed_lookups.set(static_cast<dns::Rcode>(dom.failed_rcode_pool[j]),
                           dom.failed_count_pool[j]);
  }
  return dataset;
}

}  // namespace cs::analysis
