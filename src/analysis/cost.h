#pragma once

#include <string>
#include <vector>

#include "analysis/widearea.h"

/// Deployment cost/latency frontier (§5.1's closing caveat: "cloud
/// providers charge for inter-region network traffic, potentially causing
/// tenants to incur additional charges when switching to a multi-region
/// deployment", plus the S3 single-region replication constraint).
///
/// For each k we take Figure 12's latency-optimal k-region subset and
/// price it with a 2013-flavored cost model: per-instance hours, internet
/// egress (unchanged by k), and inter-region replication traffic that
/// grows with k-1 copies of the dataset. The output is the frontier a
/// tenant actually chooses on.
namespace cs::analysis {

struct CostModel {
  double instance_hour_usd = 0.12;        ///< m1.medium-era on-demand
  double instances_per_region = 2.0;      ///< front-end redundancy
  double egress_per_gb_usd = 0.12;
  double inter_region_per_gb_usd = 0.02;
  double hours_per_month = 730.0;
  /// Client demand served per month (egress) in GB.
  double demand_gb_per_month = 2000.0;
  /// Fraction of the dataset rewritten per month (drives replication).
  double replication_gb_per_month = 500.0;
};

struct DeploymentCost {
  int k = 0;
  std::vector<std::string> regions;
  double avg_rtt_ms = 0.0;
  double compute_usd = 0.0;
  double egress_usd = 0.0;
  double replication_usd = 0.0;
  double total_usd = 0.0;
  /// Marginal dollars per millisecond of average latency saved relative
  /// to the k-1 deployment (infinity encoded as <0 when no gain).
  double usd_per_ms_saved = 0.0;
};

/// Prices the latency-optimal deployment for every k in the campaign.
std::vector<DeploymentCost> cost_latency_frontier(const Campaign& campaign,
                                                  const CostModel& model);

}  // namespace cs::analysis
