#include "analysis/cloud_usage.h"

#include <algorithm>

namespace cs::analysis {
namespace {

/// Classifies one subdomain observation into a Table 3 bucket and
/// updates the counters.
void count_subdomain(const SubdomainObservation& obs, ProviderBreakdown& b) {
  ++b.total;
  // CloudFront addresses count toward EC2 for the provider breakdown
  // (they are Amazon ranges in the published list).
  const bool ec2 = obs.has_ec2_address || obs.has_cloudfront_address;
  const bool azure = obs.has_azure_address;
  const bool other = obs.has_other_address;
  if (ec2 && azure)
    ++b.ec2_plus_azure;
  else if (ec2 && other)
    ++b.ec2_plus_other;
  else if (ec2)
    ++b.ec2_only;
  else if (azure && other)
    ++b.azure_plus_other;
  else if (azure)
    ++b.azure_only;
}

}  // namespace

CloudUsageReport analyze_cloud_usage(const AlexaDataset& dataset,
                                     std::size_t top_n) {
  CloudUsageReport report;

  for (const auto& obs : dataset.cloud_subdomains)
    count_subdomain(obs, report.subdomains);

  // Domain granularity: a domain is EC2-only iff every *subdomain* of it
  // uses only EC2 — any non-cloud subdomain makes it EC2+Other, etc.
  std::size_t cloud_domains = 0;
  std::vector<std::pair<std::size_t, const DomainObservation*>> ranked;
  for (const auto& domain : dataset.domains) {
    if (domain.cloud_subdomains.empty()) continue;
    ++cloud_domains;
    ranked.emplace_back(domain.rank, &domain);
    bool ec2 = false, azure = false, other = domain.other_only_subdomains > 0;
    for (const auto idx : domain.cloud_subdomains) {
      const auto& obs = dataset.cloud_subdomains[idx];
      ec2 |= obs.has_ec2_address || obs.has_cloudfront_address;
      azure |= obs.has_azure_address;
      other |= obs.has_other_address;
    }
    ++report.domains.total;
    if (ec2 && azure)
      ++report.domains.ec2_plus_azure;
    else if (ec2 && other)
      ++report.domains.ec2_plus_other;
    else if (ec2)
      ++report.domains.ec2_only;
    else if (azure && other)
      ++report.domains.azure_plus_other;
    else if (azure)
      ++report.domains.azure_only;
  }

  // Top-N tables per provider, by Alexa rank.
  std::sort(ranked.begin(), ranked.end());
  auto emit_top = [&](bool want_azure,
                      std::vector<CloudUsageReport::TopDomain>& out) {
    for (const auto& [rank, domain] : ranked) {
      if (out.size() >= top_n) break;
      bool azure = false, ec2 = false;
      for (const auto idx : domain->cloud_subdomains) {
        azure |= dataset.cloud_subdomains[idx].has_azure_address;
        ec2 |= dataset.cloud_subdomains[idx].has_ec2_address ||
               dataset.cloud_subdomains[idx].has_cloudfront_address;
      }
      if (want_azure != azure) continue;
      if (!want_azure && !ec2) continue;
      out.push_back({domain->rank, domain->name.to_string(),
                     domain->subdomains_probed,
                     domain->cloud_subdomains.size()});
    }
  };
  emit_top(false, report.top_ec2_domains);
  emit_top(true, report.top_azure_domains);

  // Rank skew: fraction of cloud-using domains in the first vs last
  // quartile of the universe.
  if (!dataset.domains.empty() && cloud_domains > 0) {
    const std::size_t universe = dataset.domains.size();
    std::size_t top_q = 0, bottom_q = 0;
    for (const auto& [rank, domain] : ranked) {
      if (rank * 4 <= universe) ++top_q;
      if (rank * 4 > universe * 3) ++bottom_q;
    }
    report.top_quartile_fraction =
        static_cast<double>(top_q) / static_cast<double>(cloud_domains);
    report.bottom_quartile_fraction =
        static_cast<double>(bottom_q) / static_cast<double>(cloud_domains);
  }

  // Prefix frequencies.
  std::map<std::string, std::size_t> prefixes;
  for (const auto& obs : dataset.cloud_subdomains)
    ++prefixes[std::string{obs.name.leftmost()}];
  std::vector<std::pair<std::string, std::size_t>> sorted_prefixes(
      prefixes.begin(), prefixes.end());
  std::sort(sorted_prefixes.begin(), sorted_prefixes.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (sorted_prefixes.size() > top_n) sorted_prefixes.resize(top_n);
  report.top_prefixes = std::move(sorted_prefixes);

  return report;
}

}  // namespace cs::analysis
