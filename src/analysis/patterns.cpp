#include "analysis/patterns.h"

#include <algorithm>

#include "util/strings.h"

namespace cs::analysis {
namespace {

bool cname_matches(const std::vector<dns::Name>& cnames,
                   std::string_view marker) {
  for (const auto& cname : cnames)
    if (util::icontains(cname.to_string(), marker)) return true;
  return false;
}

}  // namespace

PatternReport analyze_patterns(const AlexaDataset& dataset,
                               const CloudRanges& ranges) {
  PatternReport report;
  report.detections.reserve(dataset.cloud_subdomains.size());

  // Feature -> set of domains / instance addresses for Table 7 totals.
  std::set<std::string> vm_domains, elb_domains, beanstalk_domains,
      heroku_elb_domains, heroku_domains, cs_domains, tm_domains,
      cloudfront_domains, azure_cdn_domains;
  std::set<std::uint32_t> vm_instances, elb_instances, beanstalk_instances,
      heroku_elb_instances, heroku_instances, cs_instances,
      cloudfront_instances, azure_cdn_instances;
  std::set<std::string> tm_profiles, logical_elbs_global;
  std::set<std::uint32_t> all_ns_addrs_seen;

  for (const auto& obs : dataset.cloud_subdomains) {
    PatternDetection det;
    const std::string domain = obs.domain.to_string();

    const bool is_azure = obs.has_azure_address;
    const bool is_ec2 = obs.has_ec2_address;
    if (is_ec2) ++report.ec2_subdomains;
    if (is_azure) ++report.azure_subdomains;
    if (!obs.cnames.empty()) {
      if (is_ec2) ++report.ec2_subdomains_with_cname;
      if (is_azure) ++report.azure_subdomains_with_cname;
    }

    // CDN checks (orthogonal to front-end checks).
    if (obs.has_cloudfront_address) {
      det.cloudfront = true;
      cloudfront_domains.insert(domain);
      ++report.cloudfront.subdomains;
      for (const auto addr : obs.addresses)
        if (ranges.is_cloudfront(addr))
          cloudfront_instances.insert(addr.value());
    }
    if (cname_matches(obs.cnames, "msecnd.net")) {
      det.azure_cdn = true;
      azure_cdn_domains.insert(domain);
      ++report.azure_cdn.subdomains;
      for (const auto addr : obs.addresses)
        if (ranges.is_azure(addr)) azure_cdn_instances.insert(addr.value());
    }

    // EC2 heuristics.
    if (is_ec2) {
      const bool heroku_marker = cname_matches(obs.cnames, "heroku");
      const bool beanstalk_marker =
          cname_matches(obs.cnames, "elasticbeanstalk");
      bool elb_marker = false;
      for (const auto& cname : obs.cnames) {
        if (util::iends_with(cname.to_string(), ".elb.amazonaws.com")) {
          elb_marker = true;
          det.logical_elbs.push_back(cname);
          logical_elbs_global.insert(cname.to_string());
        }
      }

      if (obs.direct_a_record && !elb_marker && !heroku_marker &&
          !beanstalk_marker) {
        det.vm_front = true;
        vm_domains.insert(domain);
        ++report.ec2_vm.subdomains;
        for (const auto addr : obs.addresses) {
          if (ranges.is_ec2(addr)) {
            ++det.vm_instances;
            vm_instances.insert(addr.value());
          }
        }
        report.vm_instances_per_subdomain.add(
            static_cast<double>(det.vm_instances));
      }

      if (elb_marker) {
        det.elb = true;
        elb_domains.insert(domain);
        ++report.ec2_elb.subdomains;
        for (const auto addr : obs.addresses) {
          if (ranges.is_ec2(addr)) {
            ++det.physical_elbs;
            elb_instances.insert(addr.value());
            ++report.subdomains_per_physical_elb[addr.value()];
          }
        }
        report.physical_elbs_per_subdomain.add(
            static_cast<double>(det.physical_elbs));
      }

      if (beanstalk_marker) {
        det.beanstalk = true;
        beanstalk_domains.insert(domain);
        ++report.ec2_beanstalk.subdomains;
        for (const auto addr : obs.addresses)
          if (ranges.is_ec2(addr)) beanstalk_instances.insert(addr.value());
      }
      if (heroku_marker) {
        det.heroku = true;
        if (elb_marker) {
          heroku_elb_domains.insert(domain);
          ++report.ec2_heroku_elb.subdomains;
          for (const auto addr : obs.addresses)
            if (ranges.is_ec2(addr))
              heroku_elb_instances.insert(addr.value());
        } else {
          heroku_domains.insert(domain);
          ++report.ec2_heroku_no_elb.subdomains;
          for (const auto addr : obs.addresses)
            if (ranges.is_ec2(addr)) heroku_instances.insert(addr.value());
        }
      }

      if (!det.vm_front && !elb_marker && !beanstalk_marker &&
          !heroku_marker) {
        det.unclassified = true;
        ++report.ec2_unclassified_subdomains;
      }
    }

    // Azure heuristics.
    if (is_azure) {
      if (obs.direct_a_record && obs.cnames.empty())
        ++report.azure_direct_ip_subdomains;
      const bool cloudapp = cname_matches(obs.cnames, "cloudapp.net");
      const bool tm = cname_matches(obs.cnames, "trafficmanager.net");
      if (tm) {
        det.azure_tm = true;
        tm_domains.insert(domain);
        ++report.azure_tm.subdomains;
        for (const auto& cname : obs.cnames)
          if (util::iends_with(cname.to_string(), ".trafficmanager.net"))
            tm_profiles.insert(cname.to_string());
      }
      if (cloudapp || (obs.direct_a_record && obs.cnames.empty())) {
        det.azure_cs = true;
        cs_domains.insert(domain);
        ++report.azure_cs.subdomains;
        for (const auto addr : obs.addresses)
          if (ranges.is_azure(addr)) cs_instances.insert(addr.value());
      }
      if (!det.azure_cs && !det.azure_tm && !det.azure_cdn) {
        det.unclassified = true;
        ++report.azure_unclassified_subdomains;
      }
    }

    // Figure 5: distinct name servers per subdomain.
    if (!obs.name_servers.empty())
      report.name_servers_per_subdomain.add(
          static_cast<double>(obs.name_servers.size()));
    for (const auto& [ns_name, ns_addrs] : obs.name_servers) {
      for (const auto addr : ns_addrs) {
        if (!all_ns_addrs_seen.insert(addr.value()).second) continue;
        ++report.ns_total;
        const auto c = ranges.classify(addr);
        switch (c.kind) {
          case IpClassification::Kind::kCloudFront:
            ++report.ns_in_cloudfront;
            break;
          case IpClassification::Kind::kEc2:
            ++report.ns_in_ec2;
            break;
          case IpClassification::Kind::kAzure:
            ++report.ns_in_azure;
            break;
          case IpClassification::Kind::kOther:
            ++report.ns_external;
            break;
        }
      }
    }

    report.detections.push_back(std::move(det));
  }

  report.ec2_vm.domains = vm_domains.size();
  report.ec2_vm.instances = vm_instances.size();
  report.ec2_elb.domains = elb_domains.size();
  report.ec2_elb.instances = elb_instances.size();
  report.ec2_beanstalk.domains = beanstalk_domains.size();
  report.ec2_beanstalk.instances = beanstalk_instances.size();
  report.ec2_heroku_elb.domains = heroku_elb_domains.size();
  report.ec2_heroku_elb.instances = heroku_elb_instances.size();
  report.ec2_heroku_no_elb.domains = heroku_domains.size();
  report.ec2_heroku_no_elb.instances = heroku_instances.size();
  report.azure_cs.domains = cs_domains.size();
  report.azure_cs.instances = cs_instances.size();
  report.azure_tm.domains = tm_domains.size();
  report.azure_tm.instances = tm_profiles.size();
  report.cloudfront.domains = cloudfront_domains.size();
  report.cloudfront.instances = cloudfront_instances.size();
  report.azure_cdn.domains = azure_cdn_domains.size();
  report.azure_cdn.instances = azure_cdn_instances.size();
  return report;
}

std::vector<DomainFeatureRow> analyze_top_domain_features(
    const AlexaDataset& dataset, const PatternReport& report,
    std::size_t top_n) {
  std::vector<std::pair<std::size_t, const DomainObservation*>> ranked;
  for (const auto& domain : dataset.domains)
    if (!domain.cloud_subdomains.empty())
      ranked.emplace_back(domain.rank, &domain);
  std::sort(ranked.begin(), ranked.end());

  std::vector<DomainFeatureRow> rows;
  for (const auto& [rank, domain] : ranked) {
    if (rows.size() >= top_n) break;
    // Match the paper's Table 8: EC2-using domains only.
    bool any_ec2 = false;
    for (const auto idx : domain->cloud_subdomains)
      any_ec2 |= dataset.cloud_subdomains[idx].has_ec2_address ||
                 dataset.cloud_subdomains[idx].has_cloudfront_address;
    if (!any_ec2) continue;

    DomainFeatureRow row;
    row.rank = rank;
    row.domain = domain->name.to_string();
    row.cloud_subdomains = domain->cloud_subdomains.size();
    std::set<std::uint32_t> elb_ips;
    for (const auto idx : domain->cloud_subdomains) {
      const auto& det = report.detections[idx];
      const auto& obs = dataset.cloud_subdomains[idx];
      if (det.vm_front) ++row.vm;
      if (det.beanstalk || det.heroku) ++row.paas;
      if (det.elb) {
        ++row.elb;
        for (const auto addr : obs.addresses)
          if (!obs.has_azure_address) elb_ips.insert(addr.value());
      }
      if (det.cloudfront || det.azure_cdn) ++row.cdn;
    }
    row.elb_ips = elb_ips.size();
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace cs::analysis
