#pragma once

#include <optional>
#include <string>
#include <vector>

#include "internet/model.h"
#include "internet/vantage.h"

/// §5.1: wide-area performance — the PlanetLab measurement campaign and
/// the optimal-k-region analysis (Figures 9-12).
namespace cs::analysis {

/// Raw campaign output: samples[v][r][round] (nullopt = lost / timed out).
struct Campaign {
  std::vector<internet::VantagePoint> vantages;
  std::vector<std::string> region_names;
  double round_seconds = 900.0;
  std::vector<std::vector<std::vector<std::optional<double>>>> rtt_ms;
  std::vector<std::vector<std::vector<std::optional<double>>>> tput_kbps;
  /// Rounds each vantage sat out entirely (PlanetLab-node dropout,
  /// injected by cs::fault); every consumer already treats the resulting
  /// nullopt samples as lost probes.
  std::vector<std::uint64_t> dropped_rounds;

  std::size_t rounds() const {
    return rtt_ms.empty() || rtt_ms[0].empty() ? 0 : rtt_ms[0][0].size();
  }
  std::uint64_t total_dropped_rounds() const {
    std::uint64_t total = 0;
    for (const auto n : dropped_rounds) total += n;
    return total;
  }
};

/// Runs the §5.1 methodology: every 15 minutes for `days`, each vantage
/// TCP-pings and HTTP-GETs instances in each region.
Campaign run_campaign(internet::WideAreaModel& model,
                      const std::vector<internet::VantagePoint>& vantages,
                      const std::vector<const cloud::Region*>& regions,
                      double days, std::uint64_t start_time = 0);

/// Figure 9/10: average latency/throughput per (vantage, region).
struct ClientRegionAverages {
  std::vector<std::string> vantage_names;
  std::vector<std::string> region_names;
  /// [vantage][region], 0 when no sample survived.
  std::vector<std::vector<double>> avg_rtt_ms;
  std::vector<std::vector<double>> avg_tput_kbps;
};
ClientRegionAverages average_matrix(const Campaign& campaign);

/// Figure 12: optimal k-region deployment for k = 1..regions. For each k
/// the best subset (clients always routed to their momentary best member)
/// and the resulting client-average metric.
struct KRegionResult {
  int k = 0;
  std::vector<std::string> best_regions;
  double avg_rtt_ms = 0.0;       ///< for the latency-optimal subset
  double avg_tput_kbps = 0.0;    ///< for the throughput-optimal subset
  std::vector<std::string> best_regions_tput;
};
std::vector<KRegionResult> optimal_k_regions(const Campaign& campaign);

/// Figure 11: per-round best region for one vantage (region flapping).
struct FlappingSeries {
  std::vector<std::string> region_names;
  /// Per round: index into region_names of the winner (-1 = all lost).
  std::vector<int> winner;
  /// Per round per region RTT (0 when lost).
  std::vector<std::vector<double>> rtt_ms;
  std::size_t winner_changes = 0;
};
FlappingSeries flapping_series(const Campaign& campaign,
                               std::string_view vantage_name);

}  // namespace cs::analysis
