#include "analysis/regions.h"

#include <algorithm>
#include <set>

namespace cs::analysis {
namespace {

/// Country -> continent for the customer-geo analysis.
std::string continent_of(const std::string& country) {
  static const std::map<std::string, std::string> kMap = {
      {"US", "NA"}, {"CA", "NA"}, {"MX", "NA"}, {"BR", "SA"}, {"CL", "SA"},
      {"AR", "SA"}, {"GB", "EU"}, {"DE", "EU"}, {"FR", "EU"}, {"ES", "EU"},
      {"IT", "EU"}, {"NL", "EU"}, {"IE", "EU"}, {"RU", "EU"}, {"PL", "EU"},
      {"SE", "EU"}, {"CN", "AS"}, {"JP", "AS"}, {"KR", "AS"}, {"IN", "AS"},
      {"SG", "AS"}, {"HK", "AS"}, {"ID", "AS"}, {"AU", "OC"}, {"NZ", "OC"},
  };
  const auto it = kMap.find(country);
  return it == kMap.end() ? "??" : it->second;
}

}  // namespace

RegionReport analyze_regions(const AlexaDataset& dataset,
                             const CloudRanges& ranges) {
  RegionReport report;
  report.subdomain_regions.reserve(dataset.cloud_subdomains.size());

  // Per-domain region sets and per-subdomain counts for domain averages.
  std::map<std::string, std::set<std::string>> domain_regions;
  std::map<std::string, std::vector<std::size_t>> domain_sub_region_counts;
  std::map<std::string, bool> domain_is_azure;

  std::size_t ec2_subs = 0, ec2_single = 0;
  std::size_t azure_subs = 0, azure_single = 0;

  for (const auto& obs : dataset.cloud_subdomains) {
    std::set<std::string> regions;
    for (const auto addr : obs.addresses) {
      // CDN addresses are excluded: CloudFront has no region attribution
      // and the classifier returns no region for it.
      if (const auto region = ranges.region_of(addr)) regions.insert(*region);
    }
    report.subdomain_regions.emplace_back(regions.begin(), regions.end());

    if (!regions.empty()) {
      for (const auto& region : regions)
        ++report.subdomains_per_region[region];
      const auto domain = obs.domain.to_string();
      auto& dr = domain_regions[domain];
      dr.insert(regions.begin(), regions.end());
      domain_sub_region_counts[domain].push_back(regions.size());
      domain_is_azure[domain] =
          domain_is_azure[domain] || obs.has_azure_address;

      if (obs.has_ec2_address) {
        ++ec2_subs;
        if (regions.size() == 1) ++ec2_single;
        report.regions_per_ec2_subdomain.add(
            static_cast<double>(regions.size()));
      }
      if (obs.has_azure_address) {
        ++azure_subs;
        if (regions.size() == 1) ++azure_single;
        report.regions_per_azure_subdomain.add(
            static_cast<double>(regions.size()));
      }
    }
  }

  for (const auto& [domain, regions] : domain_regions)
    for (const auto& region : regions) ++report.domains_per_region[region];

  for (const auto& [domain, counts] : domain_sub_region_counts) {
    double sum = 0.0;
    for (const auto c : counts) sum += static_cast<double>(c);
    const double avg = sum / static_cast<double>(counts.size());
    if (domain_is_azure[domain])
      report.regions_per_azure_domain.add(avg);
    else
      report.regions_per_ec2_domain.add(avg);
  }

  report.ec2_single_region_fraction =
      ec2_subs ? static_cast<double>(ec2_single) / ec2_subs : 0.0;
  report.azure_single_region_fraction =
      azure_subs ? static_cast<double>(azure_single) / azure_subs : 0.0;
  return report;
}

std::vector<DomainRegionRow> analyze_top_domain_regions(
    const AlexaDataset& dataset, const RegionReport& report,
    std::size_t top_n) {
  std::vector<std::pair<std::size_t, const DomainObservation*>> ranked;
  for (const auto& domain : dataset.domains)
    if (!domain.cloud_subdomains.empty())
      ranked.emplace_back(domain.rank, &domain);
  std::sort(ranked.begin(), ranked.end());

  std::vector<DomainRegionRow> rows;
  for (const auto& [rank, domain] : ranked) {
    if (rows.size() >= top_n) break;
    DomainRegionRow row;
    row.rank = rank;
    row.domain = domain->name.to_string();
    row.cloud_subdomains = domain->cloud_subdomains.size();
    std::set<std::string> all_regions;
    for (const auto idx : domain->cloud_subdomains) {
      const auto& regions = report.subdomain_regions[idx];
      all_regions.insert(regions.begin(), regions.end());
      if (regions.size() == 1) ++row.k1;
      if (regions.size() == 2) ++row.k2;
    }
    row.total_regions = all_regions.size();
    rows.push_back(std::move(row));
  }
  return rows;
}

CustomerGeoReport analyze_customer_geo(const AlexaDataset& dataset,
                                       const RegionReport& report,
                                       const synth::World& world) {
  CustomerGeoReport geo;
  auto region_location = [&world](const std::string& region)
      -> const util::Location* {
    if (const auto* r = world.ec2().region(region)) return &r->location;
    if (const auto* r = world.azure().region(region)) return &r->location;
    return nullptr;
  };

  for (std::size_t i = 0; i < dataset.cloud_subdomains.size(); ++i) {
    const auto& obs = dataset.cloud_subdomains[i];
    const auto& regions = report.subdomain_regions[i];
    if (regions.empty()) continue;
    const auto* domain_truth = world.domain(obs.domain.to_string());
    if (!domain_truth || domain_truth->customer_country.empty()) continue;
    ++geo.classified_subdomains;

    bool country_match = false, continent_match = false;
    const auto customer_continent =
        continent_of(domain_truth->customer_country);
    for (const auto& region : regions) {
      const auto* loc = region_location(region);
      if (!loc) continue;
      country_match |= loc->country == domain_truth->customer_country;
      continent_match |= loc->continent == customer_continent;
    }
    if (!country_match) ++geo.country_mismatch;
    if (!continent_match) ++geo.continent_mismatch;
  }
  return geo;
}

}  // namespace cs::analysis
