#include "analysis/zones.h"

#include <algorithm>

namespace cs::analysis {

ZoneStudy run_zone_study(const AlexaDataset& dataset,
                         const CloudRanges& ranges, synth::World& world,
                         carto::ProximityEstimator& proximity,
                         carto::LatencyZoneEstimator& latency) {
  ZoneStudy study;

  // Collect the distinct EC2 instance addresses per region.
  std::map<std::string, std::vector<net::Ipv4>> targets;
  {
    std::set<std::uint32_t> seen;
    for (const auto& obs : dataset.cloud_subdomains) {
      for (const auto addr : obs.addresses) {
        const auto c = ranges.classify(addr);
        if (c.kind != IpClassification::Kind::kEc2) continue;
        if (seen.insert(addr.value()).second)
          targets[c.region].push_back(addr);
      }
    }
  }

  // Probe every target with both methods; remember per-address results.
  std::map<std::uint32_t, std::optional<int>> latency_label;
  std::map<std::uint32_t, std::optional<int>> proximity_label;
  std::size_t truth_latency_match = 0, truth_latency_total = 0;
  std::size_t truth_prox_match = 0, truth_prox_total = 0;

  for (const auto& [region, addrs] : targets) {
    LatencyZoneRow lat_row;
    lat_row.region = region;
    lat_row.target_ips = addrs.size();
    VeracityRow ver_row;
    ver_row.region = region;

    for (const auto addr : addrs) {
      const auto lat = latency.estimate(addr, region);
      const auto prox = proximity.zone_of(addr);
      proximity_label[addr.value()] = prox;
      if (!lat.responded) {
        latency_label[addr.value()] = std::nullopt;
        continue;
      }
      ++lat_row.responded;
      latency_label[addr.value()] = lat.zone_label;
      if (lat.zone_label)
        ++lat_row.per_zone[*lat.zone_label];
      else
        ++lat_row.unknown;

      // Table 13: latency vs proximity (proximity treated as truth).
      ++ver_row.total;
      if (!lat.zone_label || !prox)
        ++ver_row.unknown;
      else if (*lat.zone_label == *prox)
        ++ver_row.match;
      else
        ++ver_row.mismatch;

      // Score both against simulator ground truth (our extra column).
      const auto true_zone = world.ec2().zone_of_public_ip(addr);
      if (true_zone) {
        if (lat.zone_label) {
          ++truth_latency_total;
          if (latency.label_to_physical(region, *lat.zone_label) ==
              *true_zone)
            ++truth_latency_match;
        }
        if (prox) {
          ++truth_prox_total;
          if (proximity.label_to_physical(region, *prox) == *true_zone)
            ++truth_prox_match;
        }
      }
    }
    study.latency_rows.push_back(std::move(lat_row));
    study.veracity_rows.push_back(std::move(ver_row));
  }

  study.latency_accuracy_vs_truth =
      truth_latency_total
          ? static_cast<double>(truth_latency_match) / truth_latency_total
          : 0.0;
  study.proximity_accuracy_vs_truth =
      truth_prox_total
          ? static_cast<double>(truth_prox_match) / truth_prox_total
          : 0.0;

  // Combined per-subdomain zone attribution (proximity first, latency as
  // fallback), expressed in physical zones via the shared account space.
  std::size_t ec2_instances_seen = 0, ec2_instances_identified = 0;
  std::size_t one = 0, two = 0, three_plus = 0, with_zones = 0;
  std::map<std::string, std::vector<double>> domain_zone_counts;

  study.subdomain_zones.resize(dataset.cloud_subdomains.size());
  study.subdomain_primary_region.resize(dataset.cloud_subdomains.size());

  for (std::size_t i = 0; i < dataset.cloud_subdomains.size(); ++i) {
    const auto& obs = dataset.cloud_subdomains[i];
    std::set<int> zones;
    std::string primary_region;
    for (const auto addr : obs.addresses) {
      const auto c = ranges.classify(addr);
      if (c.kind != IpClassification::Kind::kEc2) continue;
      if (primary_region.empty()) primary_region = c.region;
      ++ec2_instances_seen;
      std::optional<int> label;
      if (const auto prox = proximity_label.find(addr.value());
          prox != proximity_label.end())
        label = prox->second;
      if (!label)
        if (const auto lat = latency_label.find(addr.value());
            lat != latency_label.end())
          label = lat->second;
      if (!label) continue;
      ++ec2_instances_identified;
      zones.insert(proximity.label_to_physical(c.region, *label));
    }
    study.subdomain_primary_region[i] = primary_region;
    if (!zones.empty()) {
      ++with_zones;
      if (zones.size() == 1)
        ++one;
      else if (zones.size() == 2)
        ++two;
      else
        ++three_plus;
      study.zones_per_subdomain.add(static_cast<double>(zones.size()));
      domain_zone_counts[obs.domain.to_string()].push_back(
          static_cast<double>(zones.size()));
      auto& usage = study.usage_per_region[primary_region];
      for (const auto zone : zones) {
        ++usage.subdomains[zone];
        usage.domains[zone].insert(obs.domain.to_string());
      }
    }
    study.subdomain_zones[i] = std::move(zones);
  }

  for (const auto& [domain, counts] : domain_zone_counts) {
    double sum = 0.0;
    for (const auto c : counts) sum += c;
    study.zones_per_domain.add(sum / static_cast<double>(counts.size()));
  }

  if (with_zones) {
    study.fraction_one_zone = static_cast<double>(one) / with_zones;
    study.fraction_two_zones = static_cast<double>(two) / with_zones;
    study.fraction_three_plus = static_cast<double>(three_plus) / with_zones;
  }
  study.combined_identified_fraction =
      ec2_instances_seen ? static_cast<double>(ec2_instances_identified) /
                               ec2_instances_seen
                         : 0.0;
  return study;
}

}  // namespace cs::analysis
