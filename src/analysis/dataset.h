#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/ranges.h"
#include "dns/enumerate.h"
#include "synth/world.h"

/// The Alexa subdomains dataset (§2.1): the product of AXFR attempts,
/// dnsmap-style brute forcing from distributed vantages, and per-subdomain
/// DNS lookups filtered against the published cloud ranges. This is the
/// input to every deployment-posture analysis in §4.
namespace cs::analysis {

/// One cloud-using subdomain with its observed DNS evidence.
struct SubdomainObservation {
  dns::Name name;
  dns::Name domain;
  std::size_t domain_rank = 0;
  /// Full record chains gathered across vantages (CNAMEs + A records).
  std::vector<dns::ResourceRecord> records;
  /// Deduplicated resolved addresses.
  std::vector<net::Ipv4> addresses;
  /// Deduplicated CNAME targets in chase order.
  std::vector<dns::Name> cnames;
  /// Whether the query returned an address with no CNAME indirection.
  bool direct_a_record = false;
  /// Any resolved address outside the cloud ranges (hybrid hosting).
  bool has_other_address = false;
  bool has_ec2_address = false;
  bool has_azure_address = false;
  bool has_cloudfront_address = false;
  /// Name servers serving this subdomain's zone, with resolved addresses.
  std::vector<std::pair<dns::Name, std::vector<net::Ipv4>>> name_servers;
};

struct DomainObservation {
  dns::Name name;
  std::size_t rank = 0;
  bool axfr_succeeded = false;
  std::size_t subdomains_probed = 0;  ///< names found to exist
  /// Indices into AlexaDataset::cloud_subdomains.
  std::vector<std::size_t> cloud_subdomains;
  /// Count of discovered subdomains with only non-cloud addresses.
  std::size_t other_only_subdomains = 0;
  /// Failed per-vantage subdomain lookups, keyed by rcode name
  /// ("SERVFAIL", "NXDOMAIN", ...) — the data-quality ledger for this
  /// domain under flaky servers / injected faults.
  std::map<std::string, std::size_t> failed_lookups;
  /// Discovered subdomains where every vantage lookup failed. These are
  /// deliberately *not* folded into other_only_subdomains: an unresolved
  /// name is missing data, not evidence of non-cloud hosting.
  std::size_t unresolved_subdomains = 0;
};

struct AlexaDataset {
  std::vector<SubdomainObservation> cloud_subdomains;
  std::vector<DomainObservation> domains;
  std::uint64_t dns_queries_spent = 0;

  std::size_t cloud_using_domain_count() const {
    std::size_t n = 0;
    for (const auto& d : domains)
      if (!d.cloud_subdomains.empty()) ++n;
    return n;
  }
  std::uint64_t failed_lookup_count() const {
    std::uint64_t n = 0;
    for (const auto& d : domains)
      for (const auto& [reason, count] : d.failed_lookups) n += count;
    return n;
  }
  std::size_t unresolved_subdomain_count() const {
    std::size_t n = 0;
    for (const auto& d : domains) n += d.unresolved_subdomains;
    return n;
  }
};

class DatasetBuilder {
 public:
  struct Options {
    std::vector<std::string> wordlist;  ///< empty = default wordlist
    bool attempt_axfr = true;
    /// Number of vantage points used for the distributed lookups (the
    /// paper used 200) and for NS location probing (50).
    std::size_t lookup_vantages = 8;
    bool collect_name_servers = true;
  };

  DatasetBuilder(const synth::World& world, Options options);

  /// Runs the full §2.1 pipeline over every domain in the world. Domains
  /// fan out across the exec pool (each probe task owns its resolver);
  /// results merge in rank order, so the dataset is byte-identical for
  /// every CS_THREADS value.
  AlexaDataset build();

 private:
  /// Everything one domain's probe produces, merged by build() in order.
  struct DomainProbe {
    DomainObservation domain;
    std::vector<SubdomainObservation> cloud_subdomains;
    std::uint64_t queries_spent = 0;
  };

  DomainProbe probe_domain(const synth::DomainTruth& domain_truth,
                           dns::Resolver& resolver,
                           dns::Enumerator& enumerator) const;

  const synth::World& world_;
  CloudRanges ranges_;
  Options options_;
};

}  // namespace cs::analysis
