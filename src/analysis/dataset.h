#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/ranges.h"
#include "dns/enumerate.h"
#include "synth/world.h"

/// The Alexa subdomains dataset (§2.1): the product of AXFR attempts,
/// dnsmap-style brute forcing from distributed vantages, and per-subdomain
/// DNS lookups filtered against the published cloud ranges. This is the
/// input to every deployment-posture analysis in §4.
namespace cs::analysis {

/// One cloud-using subdomain with its observed DNS evidence.
struct SubdomainObservation {
  dns::Name name;
  dns::Name domain;
  std::size_t domain_rank = 0;
  /// Full record chains gathered across vantages (CNAMEs + A records).
  /// Never consumed by any analysis; retained by default for forensics
  /// and dropped at paper scale (DatasetBuilder::Options::keep_records).
  std::vector<dns::ResourceRecord> records;
  /// Deduplicated resolved addresses.
  std::vector<net::Ipv4> addresses;
  /// Deduplicated CNAME targets in chase order.
  std::vector<dns::Name> cnames;
  /// Whether the query returned an address with no CNAME indirection.
  bool direct_a_record = false;
  /// Any resolved address outside the cloud ranges (hybrid hosting).
  bool has_other_address = false;
  bool has_ec2_address = false;
  bool has_azure_address = false;
  bool has_cloudfront_address = false;
  /// Name servers serving this subdomain's zone, with resolved addresses.
  std::vector<std::pair<dns::Name, std::vector<net::Ipv4>>> name_servers;
};

/// Per-domain ledger of failed per-vantage lookups, indexed by rcode.
///
/// This replaces a std::map<std::string, std::size_t> keyed by rcode
/// *name*, which allocated a fresh string (plus a map node) per failure
/// on the enumeration hot path — at 34M subdomains x 8 vantages that
/// allocation dominated faulty runs. The ledger is a fixed array with no
/// allocation at all; iteration order for the report and the snapshot
/// codec is rcode-name alphabetical, exactly the order the old std::map
/// produced, so the data-quality report bytes and snapshot bytes are
/// unchanged (pinned by analysis_dataset_test and snap_codec_test).
class FailedLookups {
 public:
  /// The six RFC 1035 rcodes dns::Rcode models.
  static constexpr std::size_t kRcodeCount = 6;

  void record(dns::Rcode rcode) noexcept {
    const auto i = static_cast<std::size_t>(rcode);
    if (i < kRcodeCount) ++counts_[i];
  }
  void set(dns::Rcode rcode, std::uint64_t count) noexcept {
    const auto i = static_cast<std::size_t>(rcode);
    if (i < kRcodeCount) counts_[i] = count;
  }
  std::uint64_t count(dns::Rcode rcode) const noexcept {
    const auto i = static_cast<std::size_t>(rcode);
    return i < kRcodeCount ? counts_[i] : 0;
  }
  std::uint64_t total() const noexcept {
    std::uint64_t n = 0;
    for (const auto c : counts_) n += c;
    return n;
  }
  bool empty() const noexcept { return total() == 0; }
  void merge(const FailedLookups& other) noexcept {
    for (std::size_t i = 0; i < kRcodeCount; ++i) counts_[i] += other.counts_[i];
  }
  /// Nonzero entries (the old map's size()).
  std::size_t distinct() const noexcept {
    std::size_t n = 0;
    for (const auto c : counts_) n += c != 0 ? 1 : 0;
    return n;
  }

  /// Visits nonzero (rcode, name, count) entries in rcode-name
  /// alphabetical order — the std::map<string,...> iteration order the
  /// report and codec byte-compatibility contracts depend on.
  template <typename Fn>
  void for_each_named(Fn&& fn) const {
    for (const auto& [rcode, name] : kAlphabetical) {
      const auto c = counts_[static_cast<std::size_t>(rcode)];
      if (c != 0) fn(rcode, name, c);
    }
  }

  bool operator==(const FailedLookups&) const = default;

 private:
  /// (rcode, dns::to_string(rcode)) sorted by the name strings.
  static constexpr std::array<std::pair<dns::Rcode, const char*>, kRcodeCount>
      kAlphabetical{{{dns::Rcode::kFormErr, "FORMERR"},
                     {dns::Rcode::kNoError, "NOERROR"},
                     {dns::Rcode::kNotImp, "NOTIMP"},
                     {dns::Rcode::kNxDomain, "NXDOMAIN"},
                     {dns::Rcode::kRefused, "REFUSED"},
                     {dns::Rcode::kServFail, "SERVFAIL"}}};

  std::array<std::uint64_t, kRcodeCount> counts_{};
};

struct DomainObservation {
  dns::Name name;
  std::size_t rank = 0;
  bool axfr_succeeded = false;
  std::size_t subdomains_probed = 0;  ///< names found to exist
  /// Indices into AlexaDataset::cloud_subdomains.
  std::vector<std::size_t> cloud_subdomains;
  /// Count of discovered subdomains with only non-cloud addresses.
  std::size_t other_only_subdomains = 0;
  /// Failed per-vantage subdomain lookups by rcode — the data-quality
  /// ledger for this domain under flaky servers / injected faults.
  FailedLookups failed_lookups;
  /// Discovered subdomains where every vantage lookup failed. These are
  /// deliberately *not* folded into other_only_subdomains: an unresolved
  /// name is missing data, not evidence of non-cloud hosting.
  std::size_t unresolved_subdomains = 0;
};

struct AlexaDataset {
  std::vector<SubdomainObservation> cloud_subdomains;
  std::vector<DomainObservation> domains;
  std::uint64_t dns_queries_spent = 0;

  std::size_t cloud_using_domain_count() const {
    std::size_t n = 0;
    for (const auto& d : domains)
      if (!d.cloud_subdomains.empty()) ++n;
    return n;
  }
  std::uint64_t failed_lookup_count() const {
    std::uint64_t n = 0;
    for (const auto& d : domains) n += d.failed_lookups.total();
    return n;
  }
  std::size_t unresolved_subdomain_count() const {
    std::size_t n = 0;
    for (const auto& d : domains) n += d.unresolved_subdomains;
    return n;
  }
};

class DatasetBuilder {
 public:
  struct Options {
    std::vector<std::string> wordlist;  ///< empty = default wordlist
    bool attempt_axfr = true;
    /// Number of vantage points used for the distributed lookups (the
    /// paper used 200) and for NS location probing (50).
    std::size_t lookup_vantages = 8;
    bool collect_name_servers = true;
    /// Retain SubdomainObservation::records. No analysis reads them; at
    /// paper scale (34M subdomains) they are the dataset's largest
    /// allocation, so the scale path turns them off. Participates in the
    /// study config hash (it changes the artifact bytes).
    bool keep_records = true;
    /// Domains probed per parallel chunk of the streaming build. 0 defers
    /// to CS_CHUNK_DOMAINS (default 4096). Chunking never changes the
    /// artifact — per-domain probes are independent and merge in rank
    /// order — so this is deliberately absent from the config hash.
    std::size_t chunk_domains = 0;
    /// Invoked after chunk boundaries with the dataset built so far and
    /// the index of the next unprobed domain; core::Study wires this to a
    /// "dataset.partial" snapshot so a killed paper-scale build resumes
    /// mid-stage instead of restarting. Null = no partial checkpoints.
    std::function<void(const AlexaDataset& partial, std::size_t next_domain)>
        on_chunk;
  };

  /// A mid-stage resume point: everything built for domains before
  /// `next_domain`.
  struct Resume {
    AlexaDataset dataset;
    std::size_t next_domain = 0;
  };

  DatasetBuilder(const synth::World& world, Options options);

  /// Runs the full §2.1 pipeline over every domain in the world, in
  /// bounded chunks. Domains fan out across the exec pool (each probe
  /// task owns its resolver); results merge in rank order, so the dataset
  /// is byte-identical for every CS_THREADS value, for every chunk size,
  /// and across a mid-stage crash-resume.
  AlexaDataset build();

  /// Continues a build from a partial checkpoint.
  AlexaDataset build(Resume resume);

  /// The chunk size build() will use (option, else CS_CHUNK_DOMAINS,
  /// else the default).
  std::size_t chunk_domains() const;

 private:
  /// Everything one domain's probe produces, merged by build() in order.
  struct DomainProbe {
    DomainObservation domain;
    std::vector<SubdomainObservation> cloud_subdomains;
    std::uint64_t queries_spent = 0;
  };

  DomainProbe probe_domain(const synth::DomainTruth& domain_truth,
                           dns::Resolver& resolver,
                           dns::Enumerator& enumerator) const;

  const synth::World& world_;
  CloudRanges ranges_;
  Options options_;
};

}  // namespace cs::analysis
