#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/dataset.h"
#include "util/cdf.h"

/// §4.1: front-end deployment-pattern detection via the paper's CNAME/IP
/// heuristics (Table 7/8, Figures 4-5) plus name-server location.
namespace cs::analysis {

/// What the heuristics concluded for one subdomain.
struct PatternDetection {
  bool vm_front = false;         ///< direct A record(s) in EC2
  bool elb = false;              ///< CNAME *.elb.amazonaws.com
  bool beanstalk = false;        ///< CNAME contains 'elasticbeanstalk'
  bool heroku = false;           ///< CNAME contains a heroku marker
  bool azure_cs = false;         ///< direct Azure IP or *.cloudapp.net
  bool azure_tm = false;         ///< CNAME *.trafficmanager.net
  bool cloudfront = false;       ///< any address in the CloudFront range
  bool azure_cdn = false;        ///< CNAME contains 'msecnd.net'
  bool unclassified = false;     ///< cloud-using but no filter matched
  std::size_t vm_instances = 0;       ///< A-record front-end addresses
  std::size_t physical_elbs = 0;      ///< distinct ELB proxy addresses
  std::vector<dns::Name> logical_elbs;
};

/// Aggregated Table 7 counts for one feature.
struct FeatureUsage {
  std::size_t domains = 0;
  std::size_t subdomains = 0;
  std::size_t instances = 0;  ///< distinct addresses (or logical units)
};

struct PatternReport {
  /// Per-subdomain detections, parallel to dataset.cloud_subdomains.
  std::vector<PatternDetection> detections;

  // Table 7 rows.
  FeatureUsage ec2_vm;
  FeatureUsage ec2_elb;
  FeatureUsage ec2_beanstalk;      ///< always with ELB
  FeatureUsage ec2_heroku_elb;
  FeatureUsage ec2_heroku_no_elb;
  FeatureUsage azure_cs;
  FeatureUsage azure_tm;
  FeatureUsage cloudfront;
  FeatureUsage azure_cdn;
  std::size_t ec2_unclassified_subdomains = 0;
  std::size_t azure_unclassified_subdomains = 0;
  std::size_t ec2_subdomains = 0;
  std::size_t azure_subdomains = 0;
  std::size_t ec2_subdomains_with_cname = 0;
  std::size_t azure_subdomains_with_cname = 0;
  std::size_t azure_direct_ip_subdomains = 0;

  /// Figure 4a/4b inputs.
  util::Cdf vm_instances_per_subdomain;
  util::Cdf physical_elbs_per_subdomain;
  /// Figure 5 input.
  util::Cdf name_servers_per_subdomain;
  /// Sharing: subdomain count per physical ELB address.
  std::map<std::uint32_t, std::size_t> subdomains_per_physical_elb;

  /// Name-server location classification (§4.1 "Domain name servers").
  std::size_t ns_total = 0;
  std::size_t ns_in_cloudfront = 0;  ///< route53-style
  std::size_t ns_in_ec2 = 0;
  std::size_t ns_in_azure = 0;
  std::size_t ns_external = 0;
};

/// Runs all detections over a dataset.
PatternReport analyze_patterns(const AlexaDataset& dataset,
                               const CloudRanges& ranges);

/// Table 8: per-domain feature usage for the given (top) domains.
struct DomainFeatureRow {
  std::size_t rank = 0;
  std::string domain;
  std::size_t cloud_subdomains = 0;
  std::size_t vm = 0, paas = 0, elb = 0;
  std::size_t elb_ips = 0;
  std::size_t cdn = 0;
};
std::vector<DomainFeatureRow> analyze_top_domain_features(
    const AlexaDataset& dataset, const PatternReport& report,
    std::size_t top_n = 10);

}  // namespace cs::analysis
