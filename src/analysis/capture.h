#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/ranges.h"
#include "proto/logs.h"
#include "util/cdf.h"

/// §3: packet-capture analytics — Tables 1/2/5/6 and Figure 3, computed
/// from Bro-style logs over assembled flows.
namespace cs::analysis {

/// Table 1 + Table 2 in one structure.
struct ProtocolReport {
  struct Share {
    std::uint64_t bytes = 0;
    std::uint64_t flows = 0;
  };
  /// Per cloud, per service (Table 2); the kind index also totals
  /// Table 1's cloud split.
  std::map<std::string, std::map<std::string, Share>> cloud_service;
  Share ec2_total;
  Share azure_total;
  Share total;
};

/// Table 5 row: one domain's HTTP(S) traffic volume.
struct DomainVolumeRow {
  std::string domain;
  std::uint64_t bytes = 0;
  double percent_of_web = 0.0;  ///< of total HTTP(S) bytes, both clouds
  std::size_t alexa_rank = 0;   ///< 0 when not in the ranked universe
};

/// Table 6 row.
struct ContentTypeRow {
  std::string content_type;
  std::uint64_t bytes = 0;  ///< sum of Content-Length
  double percent = 0.0;
  double mean_kb = 0.0;
  double max_mb = 0.0;
};

struct CaptureReport {
  ProtocolReport protocols;
  std::vector<DomainVolumeRow> top_ec2_domains;
  std::vector<DomainVolumeRow> top_azure_domains;
  std::size_t unique_domains_ec2 = 0;
  std::size_t unique_domains_azure = 0;
  std::size_t domains_in_alexa = 0;
  std::vector<ContentTypeRow> content_types;

  /// Figure 3 inputs.
  util::Cdf http_flows_per_domain_ec2;
  util::Cdf http_flows_per_domain_azure;
  util::Cdf https_flows_per_cn_ec2;
  util::Cdf https_flows_per_cn_azure;
  util::Cdf http_flow_size_ec2;
  util::Cdf http_flow_size_azure;
  util::Cdf https_flow_size_ec2;
  util::Cdf https_flow_size_azure;
  /// Share of HTTP flows carried by the 100 busiest domains.
  double top100_http_flow_share_ec2 = 0.0;
  double top100_http_flow_share_azure = 0.0;
};

/// Reduces a hostname to its registered domain ("a.b.example.com" ->
/// "example.com"; certificate wildcards are stripped first).
std::string registered_domain(std::string_view hostname);

/// Runs the full capture analysis. `rank_of` maps a registered domain to
/// its Alexa-style rank (empty map = no rank joins).
CaptureReport analyze_capture(
    const proto::TraceLogs& logs, const CloudRanges& ranges,
    const std::map<std::string, std::size_t>& rank_of = {},
    std::size_t top_n = 15);

}  // namespace cs::analysis
