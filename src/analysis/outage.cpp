#include "analysis/outage.h"

#include <algorithm>
#include <set>

#include "util/format.h"

namespace cs::analysis {

std::vector<OutageImpact> region_outage_impact(const AlexaDataset& dataset,
                                               const RegionReport& regions) {
  // Collect the region universe.
  std::set<std::string> region_names;
  for (const auto& region_list : regions.subdomain_regions)
    region_names.insert(region_list.begin(), region_list.end());

  const std::size_t cloud_domains = dataset.cloud_using_domain_count();
  std::vector<OutageImpact> impacts;
  for (const auto& failed : region_names) {
    OutageImpact impact;
    impact.failed_unit = failed;
    std::set<std::string> affected_domains;
    for (std::size_t i = 0; i < dataset.cloud_subdomains.size(); ++i) {
      const auto& attributed = regions.subdomain_regions[i];
      if (attributed.empty()) continue;
      const bool uses = std::find(attributed.begin(), attributed.end(),
                                  failed) != attributed.end();
      if (!uses) continue;
      if (attributed.size() == 1) {
        ++impact.subdomains_down;
        affected_domains.insert(
            dataset.cloud_subdomains[i].domain.to_string());
      } else {
        ++impact.subdomains_degraded;
      }
    }
    impact.domains_affected = affected_domains.size();
    impact.domains_affected_fraction =
        cloud_domains ? static_cast<double>(impact.domains_affected) /
                            cloud_domains
                      : 0.0;
    impacts.push_back(std::move(impact));
  }
  std::sort(impacts.begin(), impacts.end(),
            [](const OutageImpact& a, const OutageImpact& b) {
              return a.subdomains_down > b.subdomains_down;
            });
  return impacts;
}

std::vector<OutageImpact> zone_outage_impact(const AlexaDataset& dataset,
                                             const ZoneOutageInput& zones) {
  // Universe of (region, zone) units with identified users.
  std::set<std::pair<std::string, int>> units;
  for (std::size_t i = 0; i < zones.subdomain_zones.size(); ++i)
    for (const auto zone : zones.subdomain_zones[i])
      if (!zones.subdomain_primary_region[i].empty())
        units.insert({zones.subdomain_primary_region[i], zone});

  const std::size_t cloud_domains = dataset.cloud_using_domain_count();
  std::vector<OutageImpact> impacts;
  for (const auto& [region, zone] : units) {
    OutageImpact impact;
    impact.failed_unit = util::fmt("{}/zone-{}", region, zone);
    std::set<std::string> affected_domains;
    for (std::size_t i = 0; i < zones.subdomain_zones.size(); ++i) {
      if (zones.subdomain_primary_region[i] != region) continue;
      const auto& zone_set = zones.subdomain_zones[i];
      if (!zone_set.contains(zone)) continue;
      if (zone_set.size() == 1) {
        ++impact.subdomains_down;
        affected_domains.insert(
            dataset.cloud_subdomains[i].domain.to_string());
      } else {
        ++impact.subdomains_degraded;
      }
    }
    impact.domains_affected = affected_domains.size();
    impact.domains_affected_fraction =
        cloud_domains ? static_cast<double>(impact.domains_affected) /
                            cloud_domains
                      : 0.0;
    impacts.push_back(std::move(impact));
  }
  std::sort(impacts.begin(), impacts.end(),
            [](const OutageImpact& a, const OutageImpact& b) {
              return a.subdomains_down > b.subdomains_down;
            });
  return impacts;
}

}  // namespace cs::analysis
