#include "analysis/cost.h"

namespace cs::analysis {

std::vector<DeploymentCost> cost_latency_frontier(const Campaign& campaign,
                                                  const CostModel& model) {
  const auto k_results = optimal_k_regions(campaign);
  std::vector<DeploymentCost> frontier;
  for (const auto& result : k_results) {
    DeploymentCost cost;
    cost.k = result.k;
    cost.regions = result.best_regions;
    cost.avg_rtt_ms = result.avg_rtt_ms;
    cost.compute_usd = result.k * model.instances_per_region *
                       model.instance_hour_usd * model.hours_per_month;
    cost.egress_usd = model.demand_gb_per_month * model.egress_per_gb_usd;
    cost.replication_usd = (result.k - 1) * model.replication_gb_per_month *
                           model.inter_region_per_gb_usd;
    cost.total_usd =
        cost.compute_usd + cost.egress_usd + cost.replication_usd;
    if (!frontier.empty()) {
      const auto& prev = frontier.back();
      const double ms_saved = prev.avg_rtt_ms - cost.avg_rtt_ms;
      const double extra_usd = cost.total_usd - prev.total_usd;
      cost.usd_per_ms_saved = ms_saved > 1e-9 ? extra_usd / ms_saved : -1.0;
    }
    frontier.push_back(std::move(cost));
  }
  return frontier;
}

}  // namespace cs::analysis
