#include "analysis/snapshot.h"

#include <stdexcept>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/format.h"

namespace cs::snap {
namespace {

// --- generic helpers ------------------------------------------------------

template <typename T, typename Fn>
void encode_vec(Writer& w, const std::vector<T>& v, Fn&& element) {
  w.count(v.size());
  for (const auto& e : v) element(w, e);
}

template <typename T, typename Fn>
void decode_vec(Reader& r, std::vector<T>& v, Fn&& element) {
  const auto n = r.count();
  v.clear();
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) element(r, v.emplace_back());
}

// std::size_t is serialized as u64 (the count field) on every platform.
void encode_size(Writer& w, std::size_t v) { w.u64(v); }
void decode_size(Reader& r, std::size_t& v) {
  v = static_cast<std::size_t>(r.u64());
}

void encode(Writer& w, int v) {
  w.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}
void decode(Reader& r, int& v) {
  v = static_cast<int>(static_cast<std::int64_t>(r.u64()));
}

template <typename K, typename V, typename EncK, typename EncV>
void encode_map(Writer& w, const std::map<K, V>& m, EncK&& key, EncV&& value) {
  w.count(m.size());
  for (const auto& [k, v] : m) {
    key(w, k);
    value(w, v);
  }
}

template <typename K, typename V, typename DecK, typename DecV>
void decode_map(Reader& r, std::map<K, V>& m, DecK&& key, DecV&& value) {
  const auto n = r.count();
  m.clear();
  for (std::size_t i = 0; i < n; ++i) {
    K k{};
    key(r, k);
    V v{};
    value(r, v);
    m.emplace(std::move(k), std::move(v));
  }
}

void encode_opt_f64(Writer& w, const std::optional<double>& v) {
  w.boolean(v.has_value());
  if (v) w.f64(*v);
}
void decode_opt_f64(Reader& r, std::optional<double>& v) {
  v.reset();
  if (r.boolean()) v = r.f64();
}

void encode_opt_str(Writer& w, const std::optional<std::string>& v) {
  w.boolean(v.has_value());
  if (v) w.str(*v);
}
void decode_opt_str(Reader& r, std::optional<std::string>& v) {
  v.reset();
  if (r.boolean()) v = r.str();
}

void encode_opt_u64(Writer& w, const std::optional<std::uint64_t>& v) {
  w.boolean(v.has_value());
  if (v) w.u64(*v);
}
void decode_opt_u64(Reader& r, std::optional<std::uint64_t>& v) {
  v.reset();
  if (r.boolean()) v = r.u64();
}

// --- leaf value types -----------------------------------------------------

void encode(Writer& w, net::Ipv4 v) { w.u32(v.value()); }
void decode(Reader& r, net::Ipv4& v) { v = net::Ipv4{r.u32()}; }

void encode(Writer& w, const dns::Name& v) {
  w.count(v.labels().size());
  for (const auto& label : v.labels()) w.str(label);
}
void decode(Reader& r, dns::Name& v) {
  const auto n = r.count();
  std::vector<std::string> labels;
  labels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) labels.push_back(r.str());
  auto name = dns::Name::from_labels(std::move(labels));
  if (!name) throw SnapshotError{"snapshot holds an invalid DNS name"};
  v = std::move(*name);
}

void encode(Writer& w, const dns::ResourceRecord& v) {
  encode(w, v.name);
  w.u32(v.ttl);
  w.u8(static_cast<std::uint8_t>(v.data.index()));
  std::visit(
      [&](const auto& data) {
        using D = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<D, dns::ARecord>) {
          encode(w, data.address);
        } else if constexpr (std::is_same_v<D, dns::NsRecord>) {
          encode(w, data.nameserver);
        } else if constexpr (std::is_same_v<D, dns::CnameRecord>) {
          encode(w, data.target);
        } else if constexpr (std::is_same_v<D, dns::SoaRecord>) {
          encode(w, data.mname);
          encode(w, data.rname);
          w.u32(data.serial);
          w.u32(data.refresh);
          w.u32(data.retry);
          w.u32(data.expire);
          w.u32(data.minimum);
        } else {
          static_assert(std::is_same_v<D, dns::TxtRecord>);
          encode_vec(w, data.strings,
                     [](Writer& wr, const std::string& s) { wr.str(s); });
        }
      },
      v.data);
}
void decode(Reader& r, dns::ResourceRecord& v) {
  decode(r, v.name);
  v.ttl = r.u32();
  const auto tag = r.u8();
  switch (tag) {
    case 0: {
      dns::ARecord data;
      decode(r, data.address);
      v.data = data;
      break;
    }
    case 1: {
      dns::NsRecord data;
      decode(r, data.nameserver);
      v.data = data;
      break;
    }
    case 2: {
      dns::CnameRecord data;
      decode(r, data.target);
      v.data = data;
      break;
    }
    case 3: {
      dns::SoaRecord data;
      decode(r, data.mname);
      decode(r, data.rname);
      data.serial = r.u32();
      data.refresh = r.u32();
      data.retry = r.u32();
      data.expire = r.u32();
      data.minimum = r.u32();
      v.data = data;
      break;
    }
    case 4: {
      dns::TxtRecord data;
      decode_vec(r, data.strings,
                 [](Reader& rd, std::string& s) { s = rd.str(); });
      v.data = data;
      break;
    }
    default:
      throw SnapshotError{
          util::fmt("snapshot resource record has unknown rdata tag {}", tag)};
  }
}

void encode(Writer& w, const util::Cdf& v) {
  const auto samples = v.sorted_samples();
  w.count(samples.size());
  for (const auto sample : samples) w.f64(sample);
}
void decode(Reader& r, util::Cdf& v) {
  const auto n = r.count(sizeof(double));
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(r.f64());
  v = util::Cdf{samples};
}

// --- dataset (columnar) ---------------------------------------------------
//
// The dataset snapshots in its columnar form (analysis::DatasetColumns):
// every distinct name interned once, fixed-width columns, variable-length
// attachments flattened into pools behind count+1 offset columns. At
// paper scale the old row form repeated each domain name per subdomain;
// the columnar bytes are a fraction of the size and decode validates the
// whole shape (column lengths, offset monotonicity, name ids, enum
// ranges) before any row is materialised.

void encode_ids(Writer& w, const std::vector<std::uint32_t>& v) {
  w.count(v.size());
  for (const auto id : v) w.u32(id);
}
void decode_ids(Reader& r, std::vector<std::uint32_t>& v,
                const util::StringArena& names) {
  const auto n = r.count(sizeof(std::uint32_t));
  v.clear();
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto id = r.u32();
    if (id >= names.size())
      throw SnapshotError{
          "snapshot dataset column references an unknown interned name"};
    v.push_back(id);
  }
}

void encode_u64s(Writer& w, const std::vector<std::uint64_t>& v) {
  w.count(v.size());
  for (const auto x : v) w.u64(x);
}
void decode_u64s(Reader& r, std::vector<std::uint64_t>& v) {
  const auto n = r.count(sizeof(std::uint64_t));
  v.clear();
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(r.u64());
}

void encode_u8s(Writer& w, const std::vector<std::uint8_t>& v) {
  w.count(v.size());
  for (const auto x : v) w.u8(x);
}
void decode_u8s(Reader& r, std::vector<std::uint8_t>& v) {
  const auto n = r.count(sizeof(std::uint8_t));
  v.clear();
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.push_back(r.u8());
}

void encode(Writer& w, const util::StringArena& names) {
  w.count(names.size());
  for (std::size_t id = 0; id < names.size(); ++id)
    w.str(names.view(static_cast<std::uint32_t>(id)));
}
void decode(Reader& r, util::StringArena& names) {
  const auto n = r.count();
  if (n == 0) throw SnapshotError{"snapshot string arena is empty"};
  names = util::StringArena{};
  // Re-interning in id order reproduces the ids exactly; a duplicate
  // string (or a nonempty string at id 0) breaks the id == index
  // invariant and is rejected as corruption.
  for (std::size_t id = 0; id < n; ++id)
    if (names.intern(r.str()) != id)
      throw SnapshotError{"snapshot string arena is not in first-intern order"};
}

/// Offset columns hold count+1 monotone offsets covering the whole pool.
void require_offsets(const std::vector<std::uint64_t>& off, std::size_t rows,
                     std::size_t pool, const char* what) {
  bool ok = off.size() == rows + 1 && off.front() == 0 && off.back() == pool;
  for (std::size_t i = 0; ok && i + 1 < off.size(); ++i)
    ok = off[i] <= off[i + 1];
  if (!ok)
    throw SnapshotError{util::fmt(
        "snapshot dataset columns have inconsistent {} offsets", what)};
}

void require_columns(bool ok, const char* what) {
  if (!ok)
    throw SnapshotError{
        util::fmt("snapshot dataset columns are inconsistent: {}", what)};
}

constexpr std::uint8_t kAllSubdomainFlags =
    analysis::DatasetColumns::kDirectA | analysis::DatasetColumns::kOtherAddress |
    analysis::DatasetColumns::kEc2Address |
    analysis::DatasetColumns::kAzureAddress |
    analysis::DatasetColumns::kCloudFrontAddress;

void encode(Writer& w, const analysis::DatasetColumns& v) {
  encode(w, v.names);
  const auto& sub = v.subdomains;
  encode_ids(w, sub.name);
  encode_ids(w, sub.domain);
  encode_u64s(w, sub.domain_rank);
  encode_u8s(w, sub.flags);
  encode_u64s(w, sub.record_off);
  encode_vec(w, sub.record_pool,
             [](Writer& wr, const dns::ResourceRecord& rr) { encode(wr, rr); });
  encode_u64s(w, sub.address_off);
  encode_vec(w, sub.address_pool,
             [](Writer& wr, net::Ipv4 a) { encode(wr, a); });
  encode_u64s(w, sub.cname_off);
  encode_ids(w, sub.cname_pool);
  encode_u64s(w, sub.ns_off);
  encode_ids(w, sub.ns_name_pool);
  encode_u64s(w, sub.ns_addr_off);
  encode_vec(w, sub.ns_addr_pool,
             [](Writer& wr, net::Ipv4 a) { encode(wr, a); });
  const auto& dom = v.domains;
  encode_ids(w, dom.name);
  encode_u64s(w, dom.rank);
  encode_u8s(w, dom.axfr);
  encode_u64s(w, dom.subdomains_probed);
  encode_u64s(w, dom.cloud_off);
  encode_u64s(w, dom.cloud_pool);
  encode_u64s(w, dom.other_only);
  encode_u64s(w, dom.unresolved);
  encode_u64s(w, dom.failed_off);
  encode_u8s(w, dom.failed_rcode_pool);
  encode_u64s(w, dom.failed_count_pool);
  w.u64(v.dns_queries_spent);
}
void decode(Reader& r, analysis::DatasetColumns& v) {
  v = analysis::DatasetColumns{};
  decode(r, v.names);
  auto& sub = v.subdomains;
  decode_ids(r, sub.name, v.names);
  decode_ids(r, sub.domain, v.names);
  decode_u64s(r, sub.domain_rank);
  decode_u8s(r, sub.flags);
  decode_u64s(r, sub.record_off);
  decode_vec(r, sub.record_pool,
             [](Reader& rd, dns::ResourceRecord& rr) { decode(rd, rr); });
  decode_u64s(r, sub.address_off);
  decode_vec(r, sub.address_pool,
             [](Reader& rd, net::Ipv4& a) { decode(rd, a); });
  decode_u64s(r, sub.cname_off);
  decode_ids(r, sub.cname_pool, v.names);
  decode_u64s(r, sub.ns_off);
  decode_ids(r, sub.ns_name_pool, v.names);
  decode_u64s(r, sub.ns_addr_off);
  decode_vec(r, sub.ns_addr_pool,
             [](Reader& rd, net::Ipv4& a) { decode(rd, a); });
  auto& dom = v.domains;
  decode_ids(r, dom.name, v.names);
  decode_u64s(r, dom.rank);
  decode_u8s(r, dom.axfr);
  decode_u64s(r, dom.subdomains_probed);
  decode_u64s(r, dom.cloud_off);
  decode_u64s(r, dom.cloud_pool);
  decode_u64s(r, dom.other_only);
  decode_u64s(r, dom.unresolved);
  decode_u64s(r, dom.failed_off);
  decode_u8s(r, dom.failed_rcode_pool);
  decode_u64s(r, dom.failed_count_pool);
  v.dns_queries_spent = r.u64();

  const std::size_t subs = sub.name.size();
  require_columns(sub.domain.size() == subs && sub.domain_rank.size() == subs &&
                      sub.flags.size() == subs,
                  "subdomain column lengths differ");
  require_offsets(sub.record_off, subs, sub.record_pool.size(), "record");
  require_offsets(sub.address_off, subs, sub.address_pool.size(), "address");
  require_offsets(sub.cname_off, subs, sub.cname_pool.size(), "cname");
  require_offsets(sub.ns_off, subs, sub.ns_name_pool.size(), "name-server");
  require_offsets(sub.ns_addr_off, sub.ns_name_pool.size(),
                  sub.ns_addr_pool.size(), "name-server address");
  for (const auto flags : sub.flags)
    require_columns((flags & ~kAllSubdomainFlags) == 0,
                    "unknown subdomain flag bits");

  const std::size_t doms = dom.name.size();
  require_columns(dom.rank.size() == doms && dom.axfr.size() == doms &&
                      dom.subdomains_probed.size() == doms &&
                      dom.other_only.size() == doms &&
                      dom.unresolved.size() == doms,
                  "domain column lengths differ");
  require_offsets(dom.cloud_off, doms, dom.cloud_pool.size(),
                  "cloud-subdomain");
  require_offsets(dom.failed_off, doms, dom.failed_count_pool.size(),
                  "failed-lookup");
  require_columns(dom.failed_rcode_pool.size() == dom.failed_count_pool.size(),
                  "failed-lookup pools differ in length");
  for (const auto flag : dom.axfr)
    require_columns(flag <= 1, "axfr flag out of range");
  for (const auto index : dom.cloud_pool)
    require_columns(index < subs, "cloud subdomain index out of range");
  for (const auto rcode : dom.failed_rcode_pool)
    require_columns(rcode < analysis::FailedLookups::kRcodeCount,
                    "failed-lookup rcode out of range");
}

}  // namespace

void encode_artifact(Writer& w, const analysis::AlexaDataset& v) {
  encode(w, analysis::DatasetColumns::from_dataset(v));
}
void decode_artifact(Reader& r, analysis::AlexaDataset& v) {
  analysis::DatasetColumns columns;
  decode(r, columns);
  try {
    v = columns.to_dataset();
  } catch (const std::invalid_argument& e) {
    throw SnapshotError{
        util::fmt("snapshot dataset holds an invalid DNS name: {}", e.what())};
  }
}

void encode_artifact(Writer& w, const analysis::DatasetColumns& v) {
  encode(w, v);
}
void decode_artifact(Reader& r, analysis::DatasetColumns& v) { decode(r, v); }

void encode_artifact(Writer& w, const analysis::PartialDataset& v) {
  encode(w, v.columns);
  w.u64(v.next_domain);
}
void decode_artifact(Reader& r, analysis::PartialDataset& v) {
  decode(r, v.columns);
  v.next_domain = r.u64();
  // A partial checkpoint covers exactly the domains before next_domain.
  if (v.next_domain != v.columns.domain_count())
    throw SnapshotError{util::fmt(
        "snapshot partial dataset resume point {} does not match its {} "
        "probed domains",
        v.next_domain, v.columns.domain_count())};
}

// --- cloud usage ----------------------------------------------------------

namespace {

void encode(Writer& w, const analysis::ProviderBreakdown& v) {
  encode_size(w, v.ec2_only);
  encode_size(w, v.ec2_plus_other);
  encode_size(w, v.azure_only);
  encode_size(w, v.azure_plus_other);
  encode_size(w, v.ec2_plus_azure);
  encode_size(w, v.total);
}
void decode(Reader& r, analysis::ProviderBreakdown& v) {
  decode_size(r, v.ec2_only);
  decode_size(r, v.ec2_plus_other);
  decode_size(r, v.azure_only);
  decode_size(r, v.azure_plus_other);
  decode_size(r, v.ec2_plus_azure);
  decode_size(r, v.total);
}

void encode(Writer& w, const analysis::CloudUsageReport::TopDomain& v) {
  encode_size(w, v.rank);
  w.str(v.domain);
  encode_size(w, v.total_subdomains);
  encode_size(w, v.cloud_subdomains);
}
void decode(Reader& r, analysis::CloudUsageReport::TopDomain& v) {
  decode_size(r, v.rank);
  v.domain = r.str();
  decode_size(r, v.total_subdomains);
  decode_size(r, v.cloud_subdomains);
}

}  // namespace

void encode_artifact(Writer& w, const analysis::CloudUsageReport& v) {
  encode(w, v.domains);
  encode(w, v.subdomains);
  encode_vec(w, v.top_ec2_domains,
             [](Writer& wr, const analysis::CloudUsageReport::TopDomain& d) {
               encode(wr, d);
             });
  encode_vec(w, v.top_azure_domains,
             [](Writer& wr, const analysis::CloudUsageReport::TopDomain& d) {
               encode(wr, d);
             });
  w.f64(v.top_quartile_fraction);
  w.f64(v.bottom_quartile_fraction);
  w.count(v.top_prefixes.size());
  for (const auto& [prefix, count] : v.top_prefixes) {
    w.str(prefix);
    encode_size(w, count);
  }
}
void decode_artifact(Reader& r, analysis::CloudUsageReport& v) {
  decode(r, v.domains);
  decode(r, v.subdomains);
  decode_vec(r, v.top_ec2_domains,
             [](Reader& rd, analysis::CloudUsageReport::TopDomain& d) {
               decode(rd, d);
             });
  decode_vec(r, v.top_azure_domains,
             [](Reader& rd, analysis::CloudUsageReport::TopDomain& d) {
               decode(rd, d);
             });
  v.top_quartile_fraction = r.f64();
  v.bottom_quartile_fraction = r.f64();
  const auto n = r.count();
  v.top_prefixes.clear();
  v.top_prefixes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& [prefix, count] = v.top_prefixes.emplace_back();
    prefix = r.str();
    decode_size(r, count);
  }
}

// --- patterns -------------------------------------------------------------

namespace {

void encode(Writer& w, const analysis::PatternDetection& v) {
  w.boolean(v.vm_front);
  w.boolean(v.elb);
  w.boolean(v.beanstalk);
  w.boolean(v.heroku);
  w.boolean(v.azure_cs);
  w.boolean(v.azure_tm);
  w.boolean(v.cloudfront);
  w.boolean(v.azure_cdn);
  w.boolean(v.unclassified);
  encode_size(w, v.vm_instances);
  encode_size(w, v.physical_elbs);
  encode_vec(w, v.logical_elbs,
             [](Writer& wr, const dns::Name& n) { encode(wr, n); });
}
void decode(Reader& r, analysis::PatternDetection& v) {
  v.vm_front = r.boolean();
  v.elb = r.boolean();
  v.beanstalk = r.boolean();
  v.heroku = r.boolean();
  v.azure_cs = r.boolean();
  v.azure_tm = r.boolean();
  v.cloudfront = r.boolean();
  v.azure_cdn = r.boolean();
  v.unclassified = r.boolean();
  decode_size(r, v.vm_instances);
  decode_size(r, v.physical_elbs);
  decode_vec(r, v.logical_elbs,
             [](Reader& rd, dns::Name& n) { decode(rd, n); });
}

void encode(Writer& w, const analysis::FeatureUsage& v) {
  encode_size(w, v.domains);
  encode_size(w, v.subdomains);
  encode_size(w, v.instances);
}
void decode(Reader& r, analysis::FeatureUsage& v) {
  decode_size(r, v.domains);
  decode_size(r, v.subdomains);
  decode_size(r, v.instances);
}

}  // namespace

void encode_artifact(Writer& w, const analysis::PatternReport& v) {
  encode_vec(w, v.detections,
             [](Writer& wr, const analysis::PatternDetection& d) {
               encode(wr, d);
             });
  encode(w, v.ec2_vm);
  encode(w, v.ec2_elb);
  encode(w, v.ec2_beanstalk);
  encode(w, v.ec2_heroku_elb);
  encode(w, v.ec2_heroku_no_elb);
  encode(w, v.azure_cs);
  encode(w, v.azure_tm);
  encode(w, v.cloudfront);
  encode(w, v.azure_cdn);
  encode_size(w, v.ec2_unclassified_subdomains);
  encode_size(w, v.azure_unclassified_subdomains);
  encode_size(w, v.ec2_subdomains);
  encode_size(w, v.azure_subdomains);
  encode_size(w, v.ec2_subdomains_with_cname);
  encode_size(w, v.azure_subdomains_with_cname);
  encode_size(w, v.azure_direct_ip_subdomains);
  encode(w, v.vm_instances_per_subdomain);
  encode(w, v.physical_elbs_per_subdomain);
  encode(w, v.name_servers_per_subdomain);
  encode_map(w, v.subdomains_per_physical_elb,
             [](Writer& wr, std::uint32_t k) { wr.u32(k); },
             [](Writer& wr, std::size_t c) { encode_size(wr, c); });
  encode_size(w, v.ns_total);
  encode_size(w, v.ns_in_cloudfront);
  encode_size(w, v.ns_in_ec2);
  encode_size(w, v.ns_in_azure);
  encode_size(w, v.ns_external);
}
void decode_artifact(Reader& r, analysis::PatternReport& v) {
  decode_vec(r, v.detections,
             [](Reader& rd, analysis::PatternDetection& d) { decode(rd, d); });
  decode(r, v.ec2_vm);
  decode(r, v.ec2_elb);
  decode(r, v.ec2_beanstalk);
  decode(r, v.ec2_heroku_elb);
  decode(r, v.ec2_heroku_no_elb);
  decode(r, v.azure_cs);
  decode(r, v.azure_tm);
  decode(r, v.cloudfront);
  decode(r, v.azure_cdn);
  decode_size(r, v.ec2_unclassified_subdomains);
  decode_size(r, v.azure_unclassified_subdomains);
  decode_size(r, v.ec2_subdomains);
  decode_size(r, v.azure_subdomains);
  decode_size(r, v.ec2_subdomains_with_cname);
  decode_size(r, v.azure_subdomains_with_cname);
  decode_size(r, v.azure_direct_ip_subdomains);
  decode(r, v.vm_instances_per_subdomain);
  decode(r, v.physical_elbs_per_subdomain);
  decode(r, v.name_servers_per_subdomain);
  decode_map(r, v.subdomains_per_physical_elb,
             [](Reader& rd, std::uint32_t& k) { k = rd.u32(); },
             [](Reader& rd, std::size_t& c) { decode_size(rd, c); });
  decode_size(r, v.ns_total);
  decode_size(r, v.ns_in_cloudfront);
  decode_size(r, v.ns_in_ec2);
  decode_size(r, v.ns_in_azure);
  decode_size(r, v.ns_external);
}

// --- regions --------------------------------------------------------------

void encode_artifact(Writer& w, const analysis::RegionReport& v) {
  encode_vec(w, v.subdomain_regions,
             [](Writer& wr, const std::vector<std::string>& regions) {
               encode_vec(wr, regions, [](Writer& w2, const std::string& s) {
                 w2.str(s);
               });
             });
  encode_map(w, v.domains_per_region,
             [](Writer& wr, const std::string& k) { wr.str(k); },
             [](Writer& wr, std::size_t c) { encode_size(wr, c); });
  encode_map(w, v.subdomains_per_region,
             [](Writer& wr, const std::string& k) { wr.str(k); },
             [](Writer& wr, std::size_t c) { encode_size(wr, c); });
  encode(w, v.regions_per_ec2_subdomain);
  encode(w, v.regions_per_azure_subdomain);
  encode(w, v.regions_per_ec2_domain);
  encode(w, v.regions_per_azure_domain);
  w.f64(v.ec2_single_region_fraction);
  w.f64(v.azure_single_region_fraction);
}
void decode_artifact(Reader& r, analysis::RegionReport& v) {
  decode_vec(r, v.subdomain_regions,
             [](Reader& rd, std::vector<std::string>& regions) {
               decode_vec(rd, regions, [](Reader& r2, std::string& s) {
                 s = r2.str();
               });
             });
  decode_map(r, v.domains_per_region,
             [](Reader& rd, std::string& k) { k = rd.str(); },
             [](Reader& rd, std::size_t& c) { decode_size(rd, c); });
  decode_map(r, v.subdomains_per_region,
             [](Reader& rd, std::string& k) { k = rd.str(); },
             [](Reader& rd, std::size_t& c) { decode_size(rd, c); });
  decode(r, v.regions_per_ec2_subdomain);
  decode(r, v.regions_per_azure_subdomain);
  decode(r, v.regions_per_ec2_domain);
  decode(r, v.regions_per_azure_domain);
  v.ec2_single_region_fraction = r.f64();
  v.azure_single_region_fraction = r.f64();
}

// --- trace logs -----------------------------------------------------------

namespace {

void encode(Writer& w, const net::FiveTuple& v) {
  encode(w, v.src.addr);
  w.u16(v.src.port);
  encode(w, v.dst.addr);
  w.u16(v.dst.port);
  w.u8(static_cast<std::uint8_t>(v.proto));
}
void decode(Reader& r, net::FiveTuple& v) {
  decode(r, v.src.addr);
  v.src.port = r.u16();
  decode(r, v.dst.addr);
  v.dst.port = r.u16();
  v.proto = static_cast<net::IpProto>(r.u8());
}

void encode(Writer& w, const proto::ConnRecord& v) {
  encode(w, v.tuple);
  w.u8(static_cast<std::uint8_t>(v.service));
  w.f64(v.first_ts);
  w.f64(v.duration);
  w.u64(v.bytes);
  w.u64(v.packets);
  encode_opt_str(w, v.hostname);
}
void decode(Reader& r, proto::ConnRecord& v) {
  decode(r, v.tuple);
  const auto service = r.u8();
  if (service > static_cast<std::uint8_t>(proto::Service::kOtherUdp))
    throw SnapshotError{
        util::fmt("snapshot conn record has unknown service {}", service)};
  v.service = static_cast<proto::Service>(service);
  v.first_ts = r.f64();
  v.duration = r.f64();
  v.bytes = r.u64();
  v.packets = r.u64();
  decode_opt_str(r, v.hostname);
}

void encode(Writer& w, const proto::HttpRecord& v) {
  w.str(v.host);
  w.str(v.method);
  w.str(v.target);
  encode(w, v.status);
  encode_opt_str(w, v.content_type);
  encode_opt_u64(w, v.content_length);
}
void decode(Reader& r, proto::HttpRecord& v) {
  v.host = r.str();
  v.method = r.str();
  v.target = r.str();
  decode(r, v.status);
  decode_opt_str(r, v.content_type);
  decode_opt_u64(r, v.content_length);
}

void encode(Writer& w, const proto::SslRecord& v) {
  encode_opt_str(w, v.sni);
  encode_opt_str(w, v.certificate_cn);
}
void decode(Reader& r, proto::SslRecord& v) {
  decode_opt_str(r, v.sni);
  decode_opt_str(r, v.certificate_cn);
}

}  // namespace

void encode_artifact(Writer& w, const proto::TraceLogs& v) {
  encode_vec(w, v.conns,
             [](Writer& wr, const proto::ConnRecord& c) { encode(wr, c); });
  encode_vec(w, v.http,
             [](Writer& wr, const proto::HttpRecord& h) { encode(wr, h); });
  encode_vec(w, v.ssl,
             [](Writer& wr, const proto::SslRecord& s) { encode(wr, s); });
}
void decode_artifact(Reader& r, proto::TraceLogs& v) {
  decode_vec(r, v.conns,
             [](Reader& rd, proto::ConnRecord& c) { decode(rd, c); });
  decode_vec(r, v.http,
             [](Reader& rd, proto::HttpRecord& h) { decode(rd, h); });
  decode_vec(r, v.ssl, [](Reader& rd, proto::SslRecord& s) { decode(rd, s); });
}

// --- capture report -------------------------------------------------------

namespace {

void encode(Writer& w, const analysis::ProtocolReport::Share& v) {
  w.u64(v.bytes);
  w.u64(v.flows);
}
void decode(Reader& r, analysis::ProtocolReport::Share& v) {
  v.bytes = r.u64();
  v.flows = r.u64();
}

void encode(Writer& w, const analysis::DomainVolumeRow& v) {
  w.str(v.domain);
  w.u64(v.bytes);
  w.f64(v.percent_of_web);
  encode_size(w, v.alexa_rank);
}
void decode(Reader& r, analysis::DomainVolumeRow& v) {
  v.domain = r.str();
  v.bytes = r.u64();
  v.percent_of_web = r.f64();
  decode_size(r, v.alexa_rank);
}

void encode(Writer& w, const analysis::ContentTypeRow& v) {
  w.str(v.content_type);
  w.u64(v.bytes);
  w.f64(v.percent);
  w.f64(v.mean_kb);
  w.f64(v.max_mb);
}
void decode(Reader& r, analysis::ContentTypeRow& v) {
  v.content_type = r.str();
  v.bytes = r.u64();
  v.percent = r.f64();
  v.mean_kb = r.f64();
  v.max_mb = r.f64();
}

}  // namespace

void encode_artifact(Writer& w, const analysis::CaptureReport& v) {
  encode_map(
      w, v.protocols.cloud_service,
      [](Writer& wr, const std::string& k) { wr.str(k); },
      [](Writer& wr,
         const std::map<std::string, analysis::ProtocolReport::Share>& m) {
        encode_map(wr, m,
                   [](Writer& w2, const std::string& k) { w2.str(k); },
                   [](Writer& w2, const analysis::ProtocolReport::Share& s) {
                     encode(w2, s);
                   });
      });
  encode(w, v.protocols.ec2_total);
  encode(w, v.protocols.azure_total);
  encode(w, v.protocols.total);
  encode_vec(w, v.top_ec2_domains,
             [](Writer& wr, const analysis::DomainVolumeRow& d) {
               encode(wr, d);
             });
  encode_vec(w, v.top_azure_domains,
             [](Writer& wr, const analysis::DomainVolumeRow& d) {
               encode(wr, d);
             });
  encode_size(w, v.unique_domains_ec2);
  encode_size(w, v.unique_domains_azure);
  encode_size(w, v.domains_in_alexa);
  encode_vec(w, v.content_types,
             [](Writer& wr, const analysis::ContentTypeRow& c) {
               encode(wr, c);
             });
  encode(w, v.http_flows_per_domain_ec2);
  encode(w, v.http_flows_per_domain_azure);
  encode(w, v.https_flows_per_cn_ec2);
  encode(w, v.https_flows_per_cn_azure);
  encode(w, v.http_flow_size_ec2);
  encode(w, v.http_flow_size_azure);
  encode(w, v.https_flow_size_ec2);
  encode(w, v.https_flow_size_azure);
  w.f64(v.top100_http_flow_share_ec2);
  w.f64(v.top100_http_flow_share_azure);
}
void decode_artifact(Reader& r, analysis::CaptureReport& v) {
  decode_map(
      r, v.protocols.cloud_service,
      [](Reader& rd, std::string& k) { k = rd.str(); },
      [](Reader& rd,
         std::map<std::string, analysis::ProtocolReport::Share>& m) {
        decode_map(rd, m, [](Reader& r2, std::string& k) { k = r2.str(); },
                   [](Reader& r2, analysis::ProtocolReport::Share& s) {
                     decode(r2, s);
                   });
      });
  decode(r, v.protocols.ec2_total);
  decode(r, v.protocols.azure_total);
  decode(r, v.protocols.total);
  decode_vec(r, v.top_ec2_domains,
             [](Reader& rd, analysis::DomainVolumeRow& d) { decode(rd, d); });
  decode_vec(r, v.top_azure_domains,
             [](Reader& rd, analysis::DomainVolumeRow& d) { decode(rd, d); });
  decode_size(r, v.unique_domains_ec2);
  decode_size(r, v.unique_domains_azure);
  decode_size(r, v.domains_in_alexa);
  decode_vec(r, v.content_types,
             [](Reader& rd, analysis::ContentTypeRow& c) { decode(rd, c); });
  decode(r, v.http_flows_per_domain_ec2);
  decode(r, v.http_flows_per_domain_azure);
  decode(r, v.https_flows_per_cn_ec2);
  decode(r, v.https_flows_per_cn_azure);
  decode(r, v.http_flow_size_ec2);
  decode(r, v.http_flow_size_azure);
  decode(r, v.https_flow_size_ec2);
  decode(r, v.https_flow_size_azure);
  v.top100_http_flow_share_ec2 = r.f64();
  v.top100_http_flow_share_azure = r.f64();
}

// --- zone study -----------------------------------------------------------

namespace {

void encode(Writer& w, const analysis::LatencyZoneRow& v) {
  w.str(v.region);
  encode_size(w, v.target_ips);
  encode_size(w, v.responded);
  encode_map(w, v.per_zone, [](Writer& wr, int k) { encode(wr, k); },
             [](Writer& wr, std::size_t c) { encode_size(wr, c); });
  encode_size(w, v.unknown);
}
void decode(Reader& r, analysis::LatencyZoneRow& v) {
  v.region = r.str();
  decode_size(r, v.target_ips);
  decode_size(r, v.responded);
  decode_map(r, v.per_zone, [](Reader& rd, int& k) { decode(rd, k); },
             [](Reader& rd, std::size_t& c) { decode_size(rd, c); });
  decode_size(r, v.unknown);
}

void encode(Writer& w, const analysis::VeracityRow& v) {
  w.str(v.region);
  encode_size(w, v.total);
  encode_size(w, v.match);
  encode_size(w, v.unknown);
  encode_size(w, v.mismatch);
}
void decode(Reader& r, analysis::VeracityRow& v) {
  v.region = r.str();
  decode_size(r, v.total);
  decode_size(r, v.match);
  decode_size(r, v.unknown);
  decode_size(r, v.mismatch);
}

void encode(Writer& w, const analysis::ZoneStudy::ZoneUsage& v) {
  encode_map(w, v.domains, [](Writer& wr, int k) { encode(wr, k); },
             [](Writer& wr, const std::set<std::string>& names) {
               wr.count(names.size());
               for (const auto& name : names) wr.str(name);
             });
  encode_map(w, v.subdomains, [](Writer& wr, int k) { encode(wr, k); },
             [](Writer& wr, std::size_t c) { encode_size(wr, c); });
}
void decode(Reader& r, analysis::ZoneStudy::ZoneUsage& v) {
  decode_map(r, v.domains, [](Reader& rd, int& k) { decode(rd, k); },
             [](Reader& rd, std::set<std::string>& names) {
               const auto n = rd.count();
               names.clear();
               for (std::size_t i = 0; i < n; ++i) names.insert(rd.str());
             });
  decode_map(r, v.subdomains, [](Reader& rd, int& k) { decode(rd, k); },
             [](Reader& rd, std::size_t& c) { decode_size(rd, c); });
}

}  // namespace

void encode_artifact(Writer& w, const analysis::ZoneStudy& v) {
  encode_vec(w, v.latency_rows,
             [](Writer& wr, const analysis::LatencyZoneRow& row) {
               encode(wr, row);
             });
  encode_vec(w, v.veracity_rows,
             [](Writer& wr, const analysis::VeracityRow& row) {
               encode(wr, row);
             });
  w.f64(v.latency_accuracy_vs_truth);
  w.f64(v.proximity_accuracy_vs_truth);
  encode_vec(w, v.subdomain_zones, [](Writer& wr, const std::set<int>& zones) {
    wr.count(zones.size());
    for (const auto zone : zones) encode(wr, zone);
  });
  encode_vec(w, v.subdomain_primary_region,
             [](Writer& wr, const std::string& s) { wr.str(s); });
  encode_map(w, v.usage_per_region,
             [](Writer& wr, const std::string& k) { wr.str(k); },
             [](Writer& wr, const analysis::ZoneStudy::ZoneUsage& u) {
               encode(wr, u);
             });
  encode(w, v.zones_per_subdomain);
  encode(w, v.zones_per_domain);
  w.f64(v.fraction_one_zone);
  w.f64(v.fraction_two_zones);
  w.f64(v.fraction_three_plus);
  w.f64(v.combined_identified_fraction);
}
void decode_artifact(Reader& r, analysis::ZoneStudy& v) {
  decode_vec(r, v.latency_rows,
             [](Reader& rd, analysis::LatencyZoneRow& row) {
               decode(rd, row);
             });
  decode_vec(r, v.veracity_rows,
             [](Reader& rd, analysis::VeracityRow& row) { decode(rd, row); });
  v.latency_accuracy_vs_truth = r.f64();
  v.proximity_accuracy_vs_truth = r.f64();
  decode_vec(r, v.subdomain_zones, [](Reader& rd, std::set<int>& zones) {
    const auto n = rd.count();
    zones.clear();
    for (std::size_t i = 0; i < n; ++i) {
      int zone = 0;
      decode(rd, zone);
      zones.insert(zone);
    }
  });
  decode_vec(r, v.subdomain_primary_region,
             [](Reader& rd, std::string& s) { s = rd.str(); });
  decode_map(r, v.usage_per_region,
             [](Reader& rd, std::string& k) { k = rd.str(); },
             [](Reader& rd, analysis::ZoneStudy::ZoneUsage& u) {
               decode(rd, u);
             });
  decode(r, v.zones_per_subdomain);
  decode(r, v.zones_per_domain);
  v.fraction_one_zone = r.f64();
  v.fraction_two_zones = r.f64();
  v.fraction_three_plus = r.f64();
  v.combined_identified_fraction = r.f64();
}

// --- campaign -------------------------------------------------------------

namespace {

void encode(Writer& w, const internet::VantagePoint& v) {
  w.str(v.name);
  w.f64(v.location.point.lat_deg);
  w.f64(v.location.point.lon_deg);
  w.str(v.location.country);
  w.str(v.location.continent);
  encode(w, v.address);
  w.u32(v.asn);
}
void decode(Reader& r, internet::VantagePoint& v) {
  v.name = r.str();
  v.location.point.lat_deg = r.f64();
  v.location.point.lon_deg = r.f64();
  v.location.country = r.str();
  v.location.continent = r.str();
  decode(r, v.address);
  v.asn = r.u32();
}

void encode_samples(
    Writer& w,
    const std::vector<std::vector<std::vector<std::optional<double>>>>& v) {
  encode_vec(w, v, [](Writer& w1, const auto& per_region) {
    encode_vec(w1, per_region, [](Writer& w2, const auto& rounds) {
      encode_vec(w2, rounds, [](Writer& w3, const std::optional<double>& s) {
        encode_opt_f64(w3, s);
      });
    });
  });
}
void decode_samples(
    Reader& r,
    std::vector<std::vector<std::vector<std::optional<double>>>>& v) {
  decode_vec(r, v, [](Reader& r1, auto& per_region) {
    decode_vec(r1, per_region, [](Reader& r2, auto& rounds) {
      decode_vec(r2, rounds, [](Reader& r3, std::optional<double>& s) {
        decode_opt_f64(r3, s);
      });
    });
  });
}

}  // namespace

void encode_artifact(Writer& w, const analysis::Campaign& v) {
  encode_vec(w, v.vantages,
             [](Writer& wr, const internet::VantagePoint& p) {
               encode(wr, p);
             });
  encode_vec(w, v.region_names,
             [](Writer& wr, const std::string& s) { wr.str(s); });
  w.f64(v.round_seconds);
  encode_samples(w, v.rtt_ms);
  encode_samples(w, v.tput_kbps);
  encode_vec(w, v.dropped_rounds,
             [](Writer& wr, std::uint64_t n) { wr.u64(n); });
}
void decode_artifact(Reader& r, analysis::Campaign& v) {
  decode_vec(r, v.vantages,
             [](Reader& rd, internet::VantagePoint& p) { decode(rd, p); });
  decode_vec(r, v.region_names,
             [](Reader& rd, std::string& s) { s = rd.str(); });
  v.round_seconds = r.f64();
  decode_samples(r, v.rtt_ms);
  decode_samples(r, v.tput_kbps);
  decode_vec(r, v.dropped_rounds,
             [](Reader& rd, std::uint64_t& n) { n = rd.u64(); });
}

// --- isp study ------------------------------------------------------------

void encode_artifact(Writer& w, const analysis::IspStudy& v) {
  encode_vec(w, v.rows, [](Writer& wr, const analysis::IspDiversityRow& row) {
    wr.str(row.region);
    encode_map(wr, row.per_zone, [](Writer& w2, int k) { encode(w2, k); },
               [](Writer& w2, std::size_t c) { encode_size(w2, c); });
    wr.f64(row.max_single_isp_share);
  });
}
void decode_artifact(Reader& r, analysis::IspStudy& v) {
  decode_vec(r, v.rows, [](Reader& rd, analysis::IspDiversityRow& row) {
    row.region = rd.str();
    decode_map(rd, row.per_zone, [](Reader& r2, int& k) { decode(r2, k); },
               [](Reader& r2, std::size_t& c) { decode_size(r2, c); });
    row.max_single_isp_share = rd.f64();
  });
}

}  // namespace cs::snap
