#include "analysis/widearea.h"

#include <algorithm>
#include <stdexcept>

#include "exec/parallel.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace cs::analysis {
namespace {

/// Mean of present samples; nullopt when everything was lost.
std::optional<double> mean_of(
    const std::vector<std::optional<double>>& samples) {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples)
    if (s) {
      sum += *s;
      ++n;
    }
  if (!n) return std::nullopt;
  return sum / static_cast<double>(n);
}

/// Enumerates all size-k subsets of [0, n) and calls fn on each.
template <typename Fn>
void for_each_subset(std::size_t n, std::size_t k, Fn&& fn) {
  std::vector<std::size_t> idx(k);
  for (std::size_t i = 0; i < k; ++i) idx[i] = i;
  for (;;) {
    fn(idx);
    // Advance to the next combination.
    std::size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) {
        ++idx[i];
        for (std::size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
    if (k == 0) return;
  }
}

}  // namespace

Campaign run_campaign(internet::WideAreaModel& model,
                      const std::vector<internet::VantagePoint>& vantages,
                      const std::vector<const cloud::Region*>& regions,
                      double days, std::uint64_t start_time) {
  Campaign campaign;
  campaign.vantages = vantages;
  for (const auto* r : regions) campaign.region_names.push_back(r->name);
  const auto rounds = static_cast<std::size_t>(
      days * 86400.0 / campaign.round_seconds);

  campaign.rtt_ms.assign(
      vantages.size(),
      std::vector<std::vector<std::optional<double>>>(
          regions.size(), std::vector<std::optional<double>>(rounds)));
  campaign.tput_kbps = campaign.rtt_ms;
  campaign.dropped_rounds.assign(vantages.size(), 0);

  // Vantages probe in parallel: every sample is a pure function of
  // (model seed, path, time) and each task writes only its own [v] rows,
  // so the campaign matrix is identical at any CS_THREADS value. Fault
  // dropout keeps that property by drawing each vantage's offline rounds
  // from a per-vantage stream (shard = vantage index), never from shared
  // state.
  obs::Span span{"analysis.widearea.campaign"};
  const auto* plan = fault::active_plan();
  exec::parallel_for(vantages.size(), [&](std::size_t v) {
    std::vector<bool> offline;
    if (plan && plan->spec().vantage_drop > 0.0) {
      offline.resize(rounds);
      auto rng = plan->stream(fault::Kind::kVantageDrop, v);
      for (std::size_t round = 0; round < rounds; ++round) {
        offline[round] = rng.chance(plan->spec().vantage_drop);
        if (offline[round]) ++campaign.dropped_rounds[v];
      }
      static auto& dropped_metric =
          obs::counter("fault.campaign.dropped_rounds");
      dropped_metric.inc(campaign.dropped_rounds[v]);
    }
    for (std::size_t r = 0; r < regions.size(); ++r) {
      for (std::size_t round = 0; round < rounds; ++round) {
        if (!offline.empty() && offline[round]) continue;
        const double t = static_cast<double>(start_time) +
                         round * campaign.round_seconds;
        // 5 TCP pings, averaged, timeouts excluded (§5.1).
        double sum = 0.0;
        int ok = 0;
        for (int ping = 0; ping < 5; ++ping) {
          if (const auto s =
                  model.rtt_sample(vantages[v], *regions[r], t + ping))
            sum += *s, ++ok;
        }
        if (ok) campaign.rtt_ms[v][r][round] = sum / ok;
        campaign.tput_kbps[v][r][round] =
            model.throughput_sample(vantages[v], *regions[r], t + 10.0);
      }
    }
  });
  return campaign;
}

ClientRegionAverages average_matrix(const Campaign& campaign) {
  ClientRegionAverages out;
  for (const auto& v : campaign.vantages) out.vantage_names.push_back(v.name);
  out.region_names = campaign.region_names;
  out.avg_rtt_ms.assign(campaign.vantages.size(),
                        std::vector<double>(campaign.region_names.size()));
  out.avg_tput_kbps = out.avg_rtt_ms;
  for (std::size_t v = 0; v < campaign.vantages.size(); ++v) {
    for (std::size_t r = 0; r < campaign.region_names.size(); ++r) {
      out.avg_rtt_ms[v][r] = mean_of(campaign.rtt_ms[v][r]).value_or(0.0);
      out.avg_tput_kbps[v][r] =
          mean_of(campaign.tput_kbps[v][r]).value_or(0.0);
    }
  }
  return out;
}

std::vector<KRegionResult> optimal_k_regions(const Campaign& campaign) {
  const std::size_t regions = campaign.region_names.size();
  const std::size_t rounds = campaign.rounds();
  const std::size_t vantages = campaign.vantages.size();
  std::vector<KRegionResult> results;

  // Client-average of the per-round best member of the subset.
  auto score = [&](const std::vector<std::size_t>& subset, bool latency) {
    double client_sum = 0.0;
    std::size_t client_n = 0;
    for (std::size_t v = 0; v < vantages; ++v) {
      double round_sum = 0.0;
      std::size_t round_n = 0;
      for (std::size_t round = 0; round < rounds; ++round) {
        std::optional<double> best;
        for (const auto r : subset) {
          const auto& sample = latency ? campaign.rtt_ms[v][r][round]
                                       : campaign.tput_kbps[v][r][round];
          if (!sample) continue;
          if (!best || (latency ? *sample < *best : *sample > *best))
            best = sample;
        }
        if (best) {
          round_sum += *best;
          ++round_n;
        }
      }
      if (round_n) {
        client_sum += round_sum / round_n;
        ++client_n;
      }
    }
    return client_n ? client_sum / client_n
                    : (latency ? 1e18 : 0.0);
  };

  for (std::size_t k = 1; k <= regions; ++k) {
    KRegionResult result;
    result.k = static_cast<int>(k);
    // Materialize the size-k subsets in lexicographic order, score them
    // in parallel, then pick winners sequentially with strict (first
    // wins) comparisons — the same lexicographically-first tie-breaking
    // the sequential exhaustive search had.
    std::vector<std::vector<std::size_t>> subsets;
    for_each_subset(regions, k, [&](const std::vector<std::size_t>& subset) {
      subsets.push_back(subset);
    });
    struct SubsetScore {
      double rtt = 0.0;
      double tput = 0.0;
    };
    const auto scores =
        exec::parallel_map(subsets.size(), [&](std::size_t i) {
          return SubsetScore{score(subsets[i], true),
                             score(subsets[i], false)};
        });
    double best_rtt = 1e18, best_tput = -1.0;
    std::vector<std::size_t> best_lat_subset, best_tput_subset;
    for (std::size_t i = 0; i < subsets.size(); ++i) {
      if (scores[i].rtt < best_rtt) {
        best_rtt = scores[i].rtt;
        best_lat_subset = subsets[i];
      }
      if (scores[i].tput > best_tput) {
        best_tput = scores[i].tput;
        best_tput_subset = subsets[i];
      }
    }
    result.avg_rtt_ms = best_rtt;
    result.avg_tput_kbps = best_tput;
    for (const auto r : best_lat_subset)
      result.best_regions.push_back(campaign.region_names[r]);
    for (const auto r : best_tput_subset)
      result.best_regions_tput.push_back(campaign.region_names[r]);
    results.push_back(std::move(result));
  }
  return results;
}

FlappingSeries flapping_series(const Campaign& campaign,
                               std::string_view vantage_name) {
  std::size_t v = campaign.vantages.size();
  for (std::size_t i = 0; i < campaign.vantages.size(); ++i)
    if (util::icontains(campaign.vantages[i].name, vantage_name)) {
      v = i;
      break;
    }
  if (v == campaign.vantages.size())
    throw std::invalid_argument{"flapping_series: unknown vantage " +
                                std::string{vantage_name}};

  FlappingSeries series;
  series.region_names = campaign.region_names;
  const std::size_t rounds = campaign.rounds();
  int last_winner = -1;
  for (std::size_t round = 0; round < rounds; ++round) {
    int winner = -1;
    double best = 1e18;
    std::vector<double> row(campaign.region_names.size(), 0.0);
    for (std::size_t r = 0; r < campaign.region_names.size(); ++r) {
      const auto& sample = campaign.rtt_ms[v][r][round];
      if (!sample) continue;
      row[r] = *sample;
      if (*sample < best) {
        best = *sample;
        winner = static_cast<int>(r);
      }
    }
    if (winner >= 0 && last_winner >= 0 && winner != last_winner)
      ++series.winner_changes;
    if (winner >= 0) last_winner = winner;
    series.winner.push_back(winner);
    series.rtt_ms.push_back(std::move(row));
  }
  return series;
}

}  // namespace cs::analysis
