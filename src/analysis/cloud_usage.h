#pragma once

#include <map>
#include <string>
#include <vector>

#include "analysis/dataset.h"

/// §3.2: who uses the cloud — Table 3's provider breakdown, Table 4's
/// top EC2-using domains, rank skew, and subdomain-prefix statistics.
namespace cs::analysis {

/// Table 3 rows. "Other" means an address outside both clouds.
struct ProviderBreakdown {
  std::size_t ec2_only = 0;
  std::size_t ec2_plus_other = 0;
  std::size_t azure_only = 0;
  std::size_t azure_plus_other = 0;
  std::size_t ec2_plus_azure = 0;
  std::size_t total = 0;

  std::size_t ec2_total() const {
    return ec2_only + ec2_plus_other + ec2_plus_azure;
  }
  std::size_t azure_total() const {
    return azure_only + azure_plus_other + ec2_plus_azure;
  }
};

struct CloudUsageReport {
  ProviderBreakdown domains;     ///< Table 3, domain granularity
  ProviderBreakdown subdomains;  ///< Table 3, subdomain granularity
  /// Table 4: top cloud-using domains by rank with subdomain counts.
  struct TopDomain {
    std::size_t rank;
    std::string domain;
    std::size_t total_subdomains;  ///< all discovered (cloud + other)
    std::size_t cloud_subdomains;
  };
  std::vector<TopDomain> top_ec2_domains;
  std::vector<TopDomain> top_azure_domains;
  /// Fraction of cloud-using domains in the top / bottom rank quartile.
  double top_quartile_fraction = 0.0;
  double bottom_quartile_fraction = 0.0;
  /// Most frequent subdomain prefixes among cloud-using subdomains.
  std::vector<std::pair<std::string, std::size_t>> top_prefixes;
};

/// Computes the §3.2 report from the dataset.
CloudUsageReport analyze_cloud_usage(const AlexaDataset& dataset,
                                     std::size_t top_n = 10);

}  // namespace cs::analysis
