#include "analysis/ranges.h"

namespace cs::analysis {

CloudRanges::CloudRanges(const cloud::Provider& ec2,
                         const cloud::Provider& azure)
    : cloudfront_(ec2.cdn_block()) {
  for (const auto& entry : ec2.published_ranges().entries())
    ec2_.insert(entry.block, entry.tag);
  for (const auto& entry : azure.published_ranges().entries())
    azure_.insert(entry.block, entry.tag);
}

IpClassification CloudRanges::classify(net::Ipv4 addr) const {
  if (const auto region = ec2_.lookup(addr))
    return {IpClassification::Kind::kEc2, *region};
  if (const auto region = azure_.lookup(addr))
    return {IpClassification::Kind::kAzure, *region};
  if (cloudfront_.contains(addr))
    return {IpClassification::Kind::kCloudFront, {}};
  return {};
}

std::optional<std::string> CloudRanges::region_of(net::Ipv4 addr) const {
  const auto c = classify(addr);
  if (c.region.empty()) return std::nullopt;
  return c.region;
}

}  // namespace cs::analysis
