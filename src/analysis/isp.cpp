#include "analysis/isp.h"

#include <algorithm>
#include <set>

namespace cs::analysis {

std::vector<const cloud::Instance*> launch_probe_fleet(cloud::Provider& ec2) {
  std::vector<const cloud::Instance*> fleet;
  for (const auto& region : ec2.regions())
    for (int zone = 0; zone < region.zone_count; ++zone)
      // Three instances per zone, as in the paper.
      for (int i = 0; i < 3; ++i)
        fleet.push_back(&ec2.launch({.account = "isp-probe",
                                     .region = region.name,
                                     .zone_label = zone,
                                     .type = "m1.medium"}));
  return fleet;
}

IspStudy run_isp_study(cloud::Provider& ec2,
                       const internet::AsTopology& topology,
                       const std::vector<internet::VantagePoint>& vantages,
                       int traceroutes_per_pair) {
  IspStudy study;
  const auto fleet = launch_probe_fleet(ec2);
  std::size_t next_probe = 0;
  for (const auto& region : ec2.regions()) {
    IspDiversityRow row;
    row.region = region.name;
    std::map<std::uint32_t, std::size_t> route_counts;
    std::size_t total_routes = 0;

    for (int zone = 0; zone < region.zone_count; ++zone) {
      std::vector<const cloud::Instance*> probes{
          fleet.begin() + static_cast<std::ptrdiff_t>(next_probe),
          fleet.begin() + static_cast<std::ptrdiff_t>(next_probe + 3)};
      next_probe += 3;
      std::set<std::uint32_t> distinct;
      for (const auto* probe : probes) {
        for (const auto& vantage : vantages) {
          for (int rep = 0; rep < traceroutes_per_pair; ++rep) {
            const auto hops = topology.traceroute(*probe, vantage);
            // First non-cloud hop = first hop with a whois answer.
            for (const auto& hop : hops) {
              if (const auto asn = topology.asn_of(hop.address)) {
                if (*asn == vantage.asn) break;  // reached the client AS
                distinct.insert(*asn);
                ++route_counts[*asn];
                ++total_routes;
                break;
              }
            }
          }
        }
      }
      row.per_zone[probes[0]->zone] = distinct.size();
    }

    for (const auto& [asn, count] : route_counts)
      row.max_single_isp_share =
          std::max(row.max_single_isp_share,
                   total_routes ? static_cast<double>(count) / total_routes
                                : 0.0);
    study.rows.push_back(std::move(row));
  }
  return study;
}

std::vector<FailureImpact> single_isp_failure_impact(
    cloud::Provider& ec2, internet::AsTopology& topology,
    const std::vector<internet::VantagePoint>& vantages) {
  std::vector<FailureImpact> impacts;
  for (const auto& region : ec2.regions()) {
    const auto& probe = ec2.launch({.account = "fail-probe",
                                    .region = region.name,
                                    .type = "m1.medium"});
    // The failover deployment adds a second region (the geographically
    // complementary heavy hitter).
    const std::string failover = region.name == "ec2.us-east-1"
                                     ? "ec2.eu-west-1"
                                     : "ec2.us-east-1";
    const auto& failover_probe = ec2.launch(
        {.account = "fail-probe", .region = failover, .type = "m1.medium"});

    // Find the busiest downstream AS for this region.
    std::map<std::uint32_t, std::size_t> counts;
    for (const auto& vantage : vantages) {
      if (const auto as = topology.downstream_for_path(region.name,
                                                       probe.zone, vantage))
        ++counts[as->asn];
    }
    std::uint32_t busiest = 0;
    std::size_t top = 0;
    for (const auto& [asn, count] : counts)
      if (count > top) {
        top = count;
        busiest = asn;
      }
    if (!busiest) continue;

    topology.set_as_down(busiest, true);
    std::size_t single_dead = 0, multi_dead = 0;
    for (const auto& vantage : vantages) {
      const bool primary_dead = topology.traceroute(probe, vantage).empty();
      if (primary_dead) ++single_dead;
      const bool failover_dead =
          topology.traceroute(failover_probe, vantage).empty();
      if (primary_dead && failover_dead) ++multi_dead;
    }
    topology.set_as_down(busiest, false);

    FailureImpact impact;
    impact.region = region.name;
    impact.failed_asn = busiest;
    impact.failover_region = failover;
    impact.single_region_unreachable =
        static_cast<double>(single_dead) / vantages.size();
    impact.multi_region_unreachable =
        static_cast<double>(multi_dead) / vantages.size();
    impacts.push_back(std::move(impact));
  }
  return impacts;
}

}  // namespace cs::analysis
