#include "analysis/dataset.h"

#include <algorithm>
#include <set>

#include "dns/wordlist.h"
#include "internet/vantage.h"

namespace cs::analysis {

DatasetBuilder::DatasetBuilder(const synth::World& world, Options options)
    : world_(world),
      ranges_(world.ec2(), world.azure()),
      options_(std::move(options)) {
  if (options_.wordlist.empty()) options_.wordlist = dns::default_wordlist();
}

AlexaDataset DatasetBuilder::build() {
  AlexaDataset dataset;
  auto resolver = world_.make_resolver(net::Ipv4{199, 16, 0, 10});
  dns::Enumerator enumerator{
      resolver,
      {.wordlist = options_.wordlist, .attempt_axfr = options_.attempt_axfr}};
  for (const auto& domain : world_.domains())
    probe_domain(domain, dataset, resolver, enumerator);
  dataset.dns_queries_spent = resolver.upstream_queries();
  return dataset;
}

void DatasetBuilder::probe_domain(const synth::DomainTruth& domain_truth,
                                  AlexaDataset& dataset,
                                  dns::Resolver& resolver,
                                  dns::Enumerator& enumerator) {
  DomainObservation domain_obs;
  domain_obs.name = domain_truth.name;
  domain_obs.rank = domain_truth.rank;

  const auto enumerated = enumerator.enumerate(domain_truth.name);
  domain_obs.axfr_succeeded = enumerated.axfr_succeeded;
  domain_obs.subdomains_probed = enumerated.subdomains.size();

  const auto vantages = internet::planetlab_vantages(
      std::max<std::size_t>(1, options_.lookup_vantages));

  for (const auto& subdomain : enumerated.subdomains) {
    SubdomainObservation obs;
    obs.name = subdomain;
    obs.domain = domain_truth.name;
    obs.domain_rank = domain_truth.rank;

    std::set<net::Ipv4> addresses;
    std::set<dns::Name> cnames;
    // First a single-vantage lookup (the filtering query), then the
    // distributed lookups from every vantage to capture geo-specific
    // records; caches are flushed between vantages, as the paper did.
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      resolver.flush_cache();
      resolver.set_client_address(vantages[v].address);
      const auto result = resolver.resolve(subdomain, dns::RrType::kA);
      if (!result.ok()) continue;
      for (const auto& rr : result.records) obs.records.push_back(rr);
      for (const auto addr : result.addresses()) addresses.insert(addr);
      for (const auto& cname : result.cname_chain()) cnames.insert(cname);
      if (v == 0 && result.cname_chain().empty() &&
          !result.addresses().empty())
        obs.direct_a_record = true;
    }
    resolver.flush_cache();

    bool any_cloud = false;
    for (const auto addr : addresses) {
      const auto c = ranges_.classify(addr);
      switch (c.kind) {
        case IpClassification::Kind::kEc2:
          obs.has_ec2_address = true;
          any_cloud = true;
          break;
        case IpClassification::Kind::kAzure:
          obs.has_azure_address = true;
          any_cloud = true;
          break;
        case IpClassification::Kind::kCloudFront:
          obs.has_cloudfront_address = true;
          any_cloud = true;
          break;
        case IpClassification::Kind::kOther:
          obs.has_other_address = true;
          break;
      }
    }
    if (!any_cloud) {
      ++domain_obs.other_only_subdomains;
      continue;
    }

    obs.addresses.assign(addresses.begin(), addresses.end());
    obs.cnames.assign(cnames.begin(), cnames.end());

    if (options_.collect_name_servers) {
      const auto ns_result =
          resolver.resolve(domain_truth.name, dns::RrType::kNs);
      for (const auto& rr : ns_result.records) {
        const auto* ns = std::get_if<dns::NsRecord>(&rr.data);
        if (!ns) continue;
        resolver.flush_cache();
        const auto addr_result =
            resolver.resolve(ns->nameserver, dns::RrType::kA);
        obs.name_servers.emplace_back(ns->nameserver,
                                      addr_result.addresses());
      }
    }

    domain_obs.cloud_subdomains.push_back(dataset.cloud_subdomains.size());
    dataset.cloud_subdomains.push_back(std::move(obs));
  }
  dataset.domains.push_back(std::move(domain_obs));
}

}  // namespace cs::analysis
