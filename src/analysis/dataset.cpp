#include "analysis/dataset.h"

#include <algorithm>
#include <set>

#include "dns/wordlist.h"
#include "exec/parallel.h"
#include "internet/vantage.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/env.h"

namespace cs::analysis {
namespace {

/// The measurement host's resolver address (arbitrary non-cloud space).
constexpr net::Ipv4 kProbeClient{199, 16, 0, 10};

/// Default domains per chunk when neither the option nor CS_CHUNK_DOMAINS
/// says otherwise: small enough to bound in-flight probe state at paper
/// scale, large enough that chunk turnaround doesn't starve the pool.
constexpr std::size_t kDefaultChunkDomains = 4096;

}  // namespace

DatasetBuilder::DatasetBuilder(const synth::World& world, Options options)
    : world_(world),
      ranges_(world.ec2(), world.azure()),
      options_(std::move(options)) {
  if (options_.wordlist.empty()) options_.wordlist = dns::default_wordlist();
}

std::size_t DatasetBuilder::chunk_domains() const {
  if (options_.chunk_domains != 0) return options_.chunk_domains;
  if (const auto text = util::env_text(util::Knob::kChunkDomains)) {
    const auto parsed = util::parse_env_unsigned(*text);
    if (parsed && *parsed > 0) return *parsed;
    obs::log_warn("analysis", "{}",
                  util::env_malformed(util::Knob::kChunkDomains, *text,
                                      "a positive integer"));
  }
  return kDefaultChunkDomains;
}

AlexaDataset DatasetBuilder::build() { return build(Resume{}); }

AlexaDataset DatasetBuilder::build(Resume resume) {
  obs::Span span{"analysis.dataset.build"};
  const auto& domains = world_.domains();
  const std::size_t chunk = std::max<std::size_t>(1, chunk_domains());

  dns::Enumerator::Options enum_options{.wordlist = options_.wordlist,
                                        .attempt_axfr = options_.attempt_axfr,
                                        .resolver_factory = [this] {
                                          return world_.make_resolver(
                                              kProbeClient);
                                        }};

  AlexaDataset dataset = std::move(resume.dataset);
  std::size_t next = std::min(resume.next_domain, domains.size());
  dataset.domains.reserve(domains.size());

  // Each partial checkpoint re-encodes everything built so far, so cap
  // the count (≤ ~8 per build) instead of snapshotting every chunk.
  const std::size_t checkpoint_every =
      std::max(chunk, (domains.size() + 7) / 8);
  std::size_t last_checkpoint = next;

  // One task per domain, each with its own resolver + enumerator (resolver
  // caches are stateful, so tasks cannot share one). The enumerator's
  // brute force additionally fans out inside the task via the factory; on
  // a pool worker that nested region runs inline, which is exactly right —
  // domains are the coarser, better-balanced unit. Chunking bounds the
  // probes held in flight; because every domain's probe is independent and
  // the reduction below merges in rank order, the dataset is identical for
  // any chunk size, thread count, or resume point.
  while (next < domains.size()) {
    const std::size_t end = std::min(domains.size(), next + chunk);
    auto probes = exec::parallel_map(end - next, [&](std::size_t i) {
      auto resolver = world_.make_resolver(kProbeClient);
      dns::Enumerator enumerator{resolver, enum_options};
      return probe_domain(domains[next + i], resolver, enumerator);
    });

    // Ordered reduction: domains stay in rank order and subdomain indices
    // are rebased onto the merged vector, so the result matches what a
    // sequential pass over `domains` would build.
    for (auto& probe : probes) {
      const std::size_t base = dataset.cloud_subdomains.size();
      for (std::size_t s = 0; s < probe.cloud_subdomains.size(); ++s)
        probe.domain.cloud_subdomains.push_back(base + s);
      std::move(probe.cloud_subdomains.begin(), probe.cloud_subdomains.end(),
                std::back_inserter(dataset.cloud_subdomains));
      dataset.domains.push_back(std::move(probe.domain));
      dataset.dns_queries_spent += probe.queries_spent;
    }
    next = end;

    if (options_.on_chunk && next < domains.size() &&
        next - last_checkpoint >= checkpoint_every) {
      options_.on_chunk(dataset, next);
      last_checkpoint = next;
    }
  }
  return dataset;
}

DatasetBuilder::DomainProbe DatasetBuilder::probe_domain(
    const synth::DomainTruth& domain_truth, dns::Resolver& resolver,
    dns::Enumerator& enumerator) const {
  DomainProbe probe;
  DomainObservation& domain_obs = probe.domain;
  domain_obs.name = domain_truth.name;
  domain_obs.rank = domain_truth.rank;

  const auto enumerated = enumerator.enumerate(domain_truth.name);
  domain_obs.axfr_succeeded = enumerated.axfr_succeeded;
  domain_obs.subdomains_probed = enumerated.subdomains.size();
  probe.queries_spent += enumerated.queries_spent;
  const std::uint64_t queries_before = resolver.upstream_queries();

  const auto vantages = internet::planetlab_vantages(
      std::max<std::size_t>(1, options_.lookup_vantages));

  for (const auto& subdomain : enumerated.subdomains) {
    SubdomainObservation obs;
    obs.name = subdomain;
    obs.domain = domain_truth.name;
    obs.domain_rank = domain_truth.rank;

    std::set<net::Ipv4> addresses;
    std::set<dns::Name> cnames;
    // First a single-vantage lookup (the filtering query), then the
    // distributed lookups from every vantage to capture geo-specific
    // records; caches are flushed between vantages, as the paper did.
    std::size_t lookups_ok = 0;
    for (std::size_t v = 0; v < vantages.size(); ++v) {
      resolver.flush_cache();
      resolver.set_client_address(vantages[v].address);
      const auto result = resolver.resolve(subdomain, dns::RrType::kA);
      if (!result.ok()) {
        domain_obs.failed_lookups.record(result.rcode);
        continue;
      }
      ++lookups_ok;
      if (options_.keep_records)
        for (const auto& rr : result.records) obs.records.push_back(rr);
      for (const auto addr : result.addresses()) addresses.insert(addr);
      for (const auto& cname : result.cname_chain()) cnames.insert(cname);
      if (v == 0 && result.cname_chain().empty() &&
          !result.addresses().empty())
        obs.direct_a_record = true;
    }
    resolver.flush_cache();

    // A name every vantage failed to resolve is missing data — recording
    // it as "other hosting" would corrupt the §3 aggregates, so it goes
    // to the unresolved ledger instead.
    if (lookups_ok == 0) {
      ++domain_obs.unresolved_subdomains;
      continue;
    }

    bool any_cloud = false;
    for (const auto addr : addresses) {
      const auto c = ranges_.classify(addr);
      switch (c.kind) {
        case IpClassification::Kind::kEc2:
          obs.has_ec2_address = true;
          any_cloud = true;
          break;
        case IpClassification::Kind::kAzure:
          obs.has_azure_address = true;
          any_cloud = true;
          break;
        case IpClassification::Kind::kCloudFront:
          obs.has_cloudfront_address = true;
          any_cloud = true;
          break;
        case IpClassification::Kind::kOther:
          obs.has_other_address = true;
          break;
      }
    }
    if (!any_cloud) {
      ++domain_obs.other_only_subdomains;
      continue;
    }

    obs.addresses.assign(addresses.begin(), addresses.end());
    obs.cnames.assign(cnames.begin(), cnames.end());

    if (options_.collect_name_servers) {
      const auto ns_result =
          resolver.resolve(domain_truth.name, dns::RrType::kNs);
      for (const auto& rr : ns_result.records) {
        const auto* ns = std::get_if<dns::NsRecord>(&rr.data);
        if (!ns) continue;
        resolver.flush_cache();
        const auto addr_result =
            resolver.resolve(ns->nameserver, dns::RrType::kA);
        obs.name_servers.emplace_back(ns->nameserver,
                                      addr_result.addresses());
      }
    }

    probe.cloud_subdomains.push_back(std::move(obs));
  }
  probe.queries_spent += resolver.upstream_queries() - queries_before;
  return probe;
}

}  // namespace cs::analysis
