#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <type_traits>
#include <vector>

#include "exec/thread_pool.h"
#include "util/sync.h"

/// Fork-join building blocks over the global thread pool.
///
/// parallel_for_chunks(n, grain, fn) runs fn(begin, end) over a chunked
/// [0, n); parallel_for(n, fn) is the per-index form; parallel_map(n, fn)
/// collects fn(i) into a vector *in index order* (the ordered reduction
/// every pipeline stage uses to stay deterministic).
///
/// Guarantees:
///  - The calling thread participates, so a region completes even when
///    every worker is busy, and nested regions (a parallel_for inside a
///    pool task) simply run inline — no deadlock, no oversubscription.
///  - Work is claimed from a shared chunk counter, so threads never idle
///    while chunks remain, but *results* are keyed by index, which makes
///    the output independent of which worker ran what.
///  - The first exception thrown by any chunk is rethrown on the calling
///    thread after the region drains; remaining chunks are abandoned.
///
/// Determinism caveat: the default grain adapts to the pool size. That is
/// fine for pure per-index work, but when per-chunk state influences the
/// result (a resolver cache shared by a chunk, a chunk-seeded RNG), pass
/// an explicit grain so the chunking — and therefore the output — does not
/// change with CS_THREADS.
namespace cs::exec {

namespace detail {

struct RegionState {
  std::atomic<std::size_t> next_chunk{0};
  std::size_t chunk_count = 0;
  std::atomic<unsigned> live_runners{0};
  util::Mutex mutex;
  util::CondVar done;
  std::exception_ptr error CS_GUARDED_BY(mutex);  ///< first failure

  void abandon_remaining() noexcept {
    next_chunk.store(chunk_count, std::memory_order_relaxed);
  }
};

}  // namespace detail

/// Chunked parallel loop: fn(begin, end) for consecutive [begin, end)
/// slices of [0, n). grain == 0 picks ~4 chunks per pool lane.
template <typename Fn>
void parallel_for_chunks(std::size_t n, std::size_t grain, Fn&& fn) {
  if (n == 0) return;
  ThreadPool& pool = ThreadPool::global();
  if (grain == 0) {
    const std::size_t lanes = pool.size();
    grain = std::max<std::size_t>(1, n / (lanes * 4));
  }
  const std::size_t chunks = (n + grain - 1) / grain;

  auto run_chunk = [&fn, grain, n](std::size_t chunk) {
    const std::size_t begin = chunk * grain;
    const std::size_t end = begin + grain < n ? begin + grain : n;
    fn(begin, end);
  };

  if (pool.worker_count() == 0 || chunks <= 1 ||
      ThreadPool::on_worker_thread()) {
    // Sequential mode or a nested region: run inline, in chunk order.
    for (std::size_t chunk = 0; chunk < chunks; ++chunk) run_chunk(chunk);
    return;
  }

  detail::RegionState state;
  state.chunk_count = chunks;
  auto drain = [&state, &run_chunk]() noexcept {
    for (;;) {
      const std::size_t chunk =
          state.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= state.chunk_count) return;
      try {
        run_chunk(chunk);
      } catch (...) {
        util::LockGuard lock{state.mutex};
        if (!state.error) state.error = std::current_exception();
        state.abandon_remaining();
      }
    }
  };

  const unsigned runners = static_cast<unsigned>(
      std::min<std::size_t>(pool.worker_count(), chunks - 1));
  state.live_runners.store(runners, std::memory_order_relaxed);
  for (unsigned r = 0; r < runners; ++r) {
    pool.submit([&state, &drain] {
      drain();
      util::LockGuard lock{state.mutex};
      if (state.live_runners.fetch_sub(1, std::memory_order_acq_rel) == 1)
        state.done.notify_one();
    });
  }

  drain();  // the caller is a lane too
  std::exception_ptr error;
  {
    util::LockGuard lock{state.mutex};
    while (state.live_runners.load(std::memory_order_acquire) != 0)
      state.done.wait(state.mutex);
    error = state.error;
  }
  if (error) std::rethrow_exception(error);
}

/// Per-index parallel loop: fn(i) for every i in [0, n).
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  parallel_for_chunks(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Ordered parallel map: returns {fn(0), fn(1), ..., fn(n-1)}. The result
/// type must be default-constructible (results are written by index).
template <typename Fn>
auto parallel_map(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<Result> out(n);
  parallel_for_chunks(n, grain, [&fn, &out](std::size_t begin,
                                            std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace cs::exec
