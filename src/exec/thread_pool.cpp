#include "exec/thread_pool.h"

#include <utility>

#include "exec/config.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/format.h"
#include "util/sync.h"

namespace cs::exec {
namespace {

// Per-thread worker flag: never shared across threads.
thread_local bool tls_on_worker = false;  // cslint:allow(C1): thread_local worker marker, not shared state

obs::Histogram& task_latency_histogram() {
  static auto& histogram = obs::histogram(
      "exec.pool.task_us", {10.0, 100.0, 1000.0, 10000.0, 100000.0, 1e6});
  return histogram;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) : size_(threads == 0 ? 1 : threads) {
  if (size_ <= 1) return;
  // Construct the tracer from the controlling thread before any worker
  // can: its constructor names the constructing thread's lane "main", and
  // a lazily-started worker would otherwise claim (then clobber) it.
  obs::Tracer::instance();
  queues_.reserve(size_);
  for (unsigned i = 0; i < size_; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(size_);
  for (unsigned i = 0; i < size_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    util::LockGuard lock{sleep_mutex_};
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::submit(Task task) {
  static auto& tasks_metric = obs::counter("exec.pool.tasks");
  tasks_metric.inc();
  if (threads_.empty()) {
    // Sequential mode: no workers to hand the task to.
    task();
    return;
  }
  const unsigned target =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % size_;
  std::size_t depth;
  {
    util::LockGuard lock{queues_[target]->mutex};
    queues_[target]->tasks.push_back(std::move(task));
    depth = queues_[target]->tasks.size();
  }
  const auto pending = pending_.fetch_add(1, std::memory_order_release) + 1;
  // Track the high-water queue depth (pool-wide pending is the more
  // meaningful "queue" for a stealing pool; per-deque depth understates
  // bursts that round-robin spreads out).
  std::int64_t seen = max_depth_.load(std::memory_order_relaxed);
  const auto candidate =
      static_cast<std::int64_t>(std::max<std::size_t>(pending, depth));
  while (candidate > seen &&
         !max_depth_.compare_exchange_weak(seen, candidate,
                                           std::memory_order_relaxed)) {
  }
  static auto& depth_metric = obs::gauge("exec.pool.max_queue_depth");
  depth_metric.set(max_depth_.load(std::memory_order_relaxed));
  {
    // Lock-step with the sleeper's wait-condition check so a worker that
    // just saw an empty pool cannot miss this wakeup.
    util::LockGuard lock{sleep_mutex_};
  }
  wake_.notify_one();
}

bool ThreadPool::try_run_one(unsigned self) {
  static auto& steals_metric = obs::counter("exec.pool.steals");
  Task task;
  bool stolen = false;
  {
    // Own deque first, newest-first (cache-warm).
    auto& mine = *queues_[self];
    util::LockGuard lock{mine.mutex};
    if (!mine.tasks.empty()) {
      task = std::move(mine.tasks.back());
      mine.tasks.pop_back();
    }
  }
  if (!task) {
    // Steal oldest-first from the other deques.
    for (unsigned k = 1; k < size_ && !task; ++k) {
      auto& victim = *queues_[(self + k) % size_];
      util::LockGuard lock{victim.mutex};
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
        stolen = true;
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1, std::memory_order_acquire);
  if (stolen) steals_metric.inc();
  const auto started_us = obs::steady_now_us();
  task();
  task_latency_histogram().observe(
      static_cast<double>(obs::steady_now_us() - started_us));
  return true;
}

void ThreadPool::worker_loop(unsigned index) {
  tls_on_worker = true;
  // Stable, human-readable lane in Chrome-trace exports instead of a raw
  // thread ordinal.
  obs::Tracer::instance().set_thread_name(
      util::fmt("exec-worker-{}", index));
  for (;;) {
    if (try_run_one(index)) continue;
    util::LockGuard lock{sleep_mutex_};
    while (!stop_.load(std::memory_order_relaxed) &&
           pending_.load(std::memory_order_acquire) == 0)
      wake_.wait(sleep_mutex_);
    if (stop_.load(std::memory_order_relaxed) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

bool ThreadPool::on_worker_thread() noexcept { return tls_on_worker; }

namespace {

util::Mutex g_global_mutex;
std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  util::LockGuard lock{g_global_mutex};
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(thread_count());
  return *slot;
}

void ThreadPool::rebuild_global() {
  util::LockGuard lock{g_global_mutex};
  global_slot().reset();
}

}  // namespace cs::exec
