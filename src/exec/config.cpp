#include "exec/config.h"

#include <atomic>
#include <thread>

#include "exec/thread_pool.h"
#include "obs/log.h"
#include "util/env.h"

namespace cs::exec {
namespace {

/// 0 = no override; otherwise the forced thread count.
std::atomic<unsigned> g_override{0};

}  // namespace

std::optional<unsigned> parse_threads(std::string_view text) noexcept {
  const auto value = util::parse_env_unsigned(text);
  if (!value) return std::nullopt;
  return *value == 0 ? hardware_threads() : *value;
}

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

unsigned thread_count() noexcept {
  if (const unsigned forced = g_override.load(std::memory_order_relaxed))
    return forced;
  const auto value = util::env_text(util::Knob::kThreads);
  if (!value) return hardware_threads();
  if (const auto parsed = parse_threads(*value)) return *parsed;
  obs::log_warn("exec", "{}",
                util::env_malformed(util::Knob::kThreads, *value,
                                    "a non-negative integer; 0 = hardware "
                                    "concurrency"));
  return hardware_threads();
}

void set_thread_count(unsigned n) noexcept {
  g_override.store(n, std::memory_order_relaxed);
}

ScopedThreads::ScopedThreads(unsigned n)
    : previous_(g_override.load(std::memory_order_relaxed)) {
  set_thread_count(n);
  ThreadPool::rebuild_global();
}

ScopedThreads::~ScopedThreads() {
  set_thread_count(previous_);
  ThreadPool::rebuild_global();
}

}  // namespace cs::exec
