#include "exec/sharded_rng.h"

namespace cs::exec {
namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t ShardedRng::stream_seed(std::uint64_t shard) const noexcept {
  // Two scramble rounds so that shard indices (small, sequential) land far
  // apart before they seed the xoshiro state.
  return splitmix64(splitmix64(base_seed_ ^ 0x5E4D12C0FFEE00ABULL) +
                    splitmix64(shard));
}

}  // namespace cs::exec
