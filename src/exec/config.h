#pragma once

#include <optional>
#include <string_view>

/// Execution-engine configuration: how many threads the study pipeline may
/// use. The single knob is CS_THREADS:
///
///   CS_THREADS=1   sequential (the pool runs everything inline)
///   CS_THREADS=8   eight workers
///   CS_THREADS=0   hardware concurrency (also the default when unset)
///
/// Parsing is strict in the env_size style: values with trailing garbage
/// ("4x"), signs, or non-digits are rejected with a warning rather than
/// silently misread, because a misparsed thread count would quietly change
/// every bench's scaling story.
namespace cs::exec {

/// Strictly parses a thread-count string. Returns nullopt for anything but
/// a plain non-negative decimal integer; 0 is mapped to the hardware
/// concurrency. Exposed for tests.
std::optional<unsigned> parse_threads(std::string_view text) noexcept;

/// std::thread::hardware_concurrency with a floor of 1.
unsigned hardware_threads() noexcept;

/// The resolved thread count: a set_thread_count override if present,
/// else CS_THREADS (strictly parsed, warned + ignored when malformed),
/// else hardware concurrency. Always >= 1.
unsigned thread_count() noexcept;

/// Programmatic override (tests, benches, the determinism harness).
/// Passing 0 clears the override, returning control to CS_THREADS. Takes
/// effect on the next ThreadPool::global() rebuild — callers normally use
/// ScopedThreads, which handles the rebuild.
void set_thread_count(unsigned n) noexcept;

/// RAII thread-count override that rebuilds the global pool on entry and
/// restores the previous configuration (rebuilding again) on exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(unsigned n);
  ~ScopedThreads();

  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  unsigned previous_ = 0;
};

}  // namespace cs::exec
