#pragma once

#include <cstdint>

#include "util/rng.h"

/// Deterministic RNG sharding for parallel stages.
///
/// A sequential stage that threads one util::Rng through all its work
/// cannot be parallelized without changing the draw order. ShardedRng is
/// the contract that replaces it: the stage is first re-expressed as
/// independent shards (an endpoint, a domain, a wordlist chunk), each
/// shard draws from its own stream derived *only* from (base seed, shard
/// index), and shard outputs are merged in index order. The result is then
/// byte-identical for any CS_THREADS — the sharding, not the scheduler,
/// decides every random draw.
///
/// Streams are derived by a double splitmix64 scramble of the shard index
/// into the base seed, the same construction util::Rng itself uses for
/// seeding, so sibling streams start statistically uncorrelated even for
/// adjacent indices.
namespace cs::exec {

class ShardedRng {
 public:
  explicit ShardedRng(std::uint64_t base_seed) noexcept
      : base_seed_(base_seed) {}

  /// Seed of the shard's stream (exposed so callers can persist it).
  std::uint64_t stream_seed(std::uint64_t shard) const noexcept;

  /// An independent generator for one shard. Equal (base seed, shard)
  /// always yields an equal stream.
  util::Rng stream(std::uint64_t shard) const noexcept {
    return util::Rng{stream_seed(shard)};
  }

  std::uint64_t base_seed() const noexcept { return base_seed_; }

 private:
  std::uint64_t base_seed_;
};

}  // namespace cs::exec
