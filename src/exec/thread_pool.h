#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/sync.h"

/// A work-stealing thread pool sized by CS_THREADS.
///
/// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
/// cache-warm), idle workers steal from the front of a victim's deque
/// (FIFO, oldest first). External submissions round-robin across workers
/// so the load spreads even before stealing kicks in.
///
/// The pool never promises *where* a task runs, so anything built on it
/// must be deterministic by construction — see exec/parallel.h, which
/// assigns work by index and merges results in index order, and
/// exec/sharded_rng.h, which derives per-shard RNG streams that are
/// independent of the worker that consumes them.
///
/// Observability: every worker names its trace lane ("exec-worker-0" ...)
/// so Chrome-trace exports stay readable, and the pool feeds the metrics
/// registry (exec.pool.tasks, exec.pool.steals, exec.pool.max_queue_depth,
/// exec.pool.task_us).
namespace cs::exec {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `threads` workers when threads > 1; with threads <= 1 the pool
  /// has no workers and submit() runs tasks inline (sequential mode).
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured lane count (>= 1). Parallel algorithms use this to pick
  /// their fan-out.
  unsigned size() const noexcept { return size_; }
  /// Number of spawned worker threads (0 in sequential mode).
  unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Enqueues one task. In sequential mode the task runs before submit
  /// returns. Tasks must not block waiting for other pool tasks — use
  /// parallel_for, whose caller participates, for fork-join work.
  void submit(Task task);

  /// True when the calling thread is one of this process's pool workers
  /// (any pool). Parallel algorithms use it to run nested regions inline.
  static bool on_worker_thread() noexcept;

  /// The process-wide pool, built on first use with exec::thread_count()
  /// lanes.
  static ThreadPool& global();

  /// Tears down and lazily rebuilds the global pool (used after
  /// set_thread_count). Must only be called while no pool work is in
  /// flight.
  static void rebuild_global();

 private:
  struct WorkerQueue {
    util::Mutex mutex;
    std::deque<Task> tasks CS_GUARDED_BY(mutex);
  };

  void worker_loop(unsigned index);
  bool try_run_one(unsigned self);

  unsigned size_ = 1;
  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;
  util::Mutex sleep_mutex_;
  util::CondVar wake_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};
  std::atomic<unsigned> next_queue_{0};
  std::atomic<std::int64_t> max_depth_{0};
};

}  // namespace cs::exec
