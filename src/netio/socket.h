#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "net/ipv4.h"

/// Thin RAII wrappers over non-blocking loopback UDP sockets.
///
/// netio speaks real sockets so the enumerator's query load exercises the
/// kernel datagram path — send/recv syscalls, socket buffers, EAGAIN —
/// instead of an in-process function call. Everything here is loopback
/// only: the synthetic world is served on 127.0.0.1 and the simulated
/// topology (client/server IPs from the paper's address plan) rides inside
/// the datagram framing (see netio/wire.h), not in the IP header.
namespace cs::netio {

/// One datagram's worth of peer identity (loopback address + real port).
struct Endpoint {
  std::uint32_t addr = 0;  ///< host order, 127.0.0.1 in practice
  std::uint16_t port = 0;

  bool operator==(const Endpoint&) const = default;
};

/// A non-blocking UDP/IPv4 socket. Move-only; closes on destruction.
class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(UdpSocket&& other) noexcept;
  UdpSocket& operator=(UdpSocket&& other) noexcept;
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Opens a non-blocking loopback socket bound to 127.0.0.1:`port`
  /// (0 = kernel-assigned). `reuse_port` opts into SO_REUSEPORT so several
  /// sockets can share one port — the server's listener fan-out. Returns
  /// false (and stores nothing) on any syscall failure.
  bool open_loopback(std::uint16_t port, bool reuse_port,
                     std::string* error = nullptr);

  /// Connects the socket to a loopback peer, enabling send()/plain recv().
  bool connect_loopback(std::uint16_t port, std::string* error = nullptr);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }
  /// The locally bound port (after open_loopback).
  std::uint16_t local_port() const noexcept { return local_port_; }

  /// One datagram to a loopback peer; false on EAGAIN/EMSGSIZE/error.
  bool send_to(const Endpoint& peer, std::span<const std::uint8_t> payload);
  /// One datagram on a connected socket; false on would-block/error.
  bool send(std::span<const std::uint8_t> payload);

  /// One datagram into `buffer`; nullopt on EAGAIN (nothing pending).
  /// `peer`, when non-null, receives the sender's endpoint.
  std::optional<std::size_t> recv_from(std::span<std::uint8_t> buffer,
                                       Endpoint* peer);

  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
};

}  // namespace cs::netio
