#pragma once

#include <cstdint>
#include <memory>

#include "dns/transport.h"
#include "netio/chaos.h"
#include "netio/server.h"
#include "netio/transport.h"

/// One-call harness pairing a DnsSocketServer with its client transport,
/// plus the CS_* knobs that select and size the live-socket backend:
///
///   CS_TRANSPORT                sim (default) | socket
///   CS_NETIO_THREADS            server reactor threads (default 2)
///   CS_NETIO_INFLIGHT           client in-flight cap (default 256)
///   CS_NETIO_RTO_US             initial retransmit timeout (default 100000)
///   CS_NETIO_MAX_ATTEMPTS       sends before an exchange expires (default 3)
///   CS_NETIO_RETRY_BUDGET       retry token-bucket capacity (default 1000)
///   CS_NETIO_BREAKER_FAILS      expiries that open a breaker (default 16)
///   CS_NETIO_BREAKER_COOLDOWN_US open -> half-open delay (default 250000)
///   CS_CHAOS                    wire impairment profile (chaos.h)
///
/// core::Study consults transport_mode_from_env() and, in socket mode,
/// stands up a LoopbackDns over the world's SimulatedDnsNetwork and
/// points every resolver at it — the enumerator, resolver, and dataset
/// builder run unchanged over real localhost UDP. When the chaos profile
/// is active, one ChaosLink is shared by both directions of the wire so
/// its per-exchange drop budget spans the whole round trip.
namespace cs::netio {

enum class TransportMode { kSim, kSocket };

/// CS_TRANSPORT, strictly parsed: unset/empty or "sim" -> kSim, "socket"
/// -> kSocket, anything else warns (the uniform util::env message) and
/// falls back to kSim.
TransportMode transport_mode_from_env();

class LoopbackDns {
 public:
  struct Options {
    unsigned server_threads = 2;   ///< CS_NETIO_THREADS
    unsigned max_in_flight = 256;  ///< CS_NETIO_INFLIGHT
    unsigned client_sockets = 0;   ///< 0 = match server_threads
    std::uint64_t rto_us = 100'000;         ///< CS_NETIO_RTO_US
    unsigned max_attempts = 3;              ///< CS_NETIO_MAX_ATTEMPTS
    std::uint64_t min_rto_us = 5'000;       ///< adaptive-RTO floor
    std::uint64_t max_rto_us = 2'000'000;   ///< adaptive-RTO/backoff cap
    double retry_budget_credit = 0.2;       ///< earned per first send
    double retry_budget_cap = 1000.0;       ///< CS_NETIO_RETRY_BUDGET
    unsigned breaker_threshold = 16;        ///< CS_NETIO_BREAKER_FAILS
    std::uint64_t breaker_cooldown_us = 250'000;  ///< ..._COOLDOWN_US
    ChaosProfile chaos;  ///< inactive by default; CS_CHAOS via env
  };

  /// Options with the CS_NETIO_* knobs and CS_CHAOS applied (strict
  /// parses; malformed values warn and keep the defaults).
  static Options options_from_env();

  /// `network` must outlive this harness; its routing table must be fully
  /// built before start().
  explicit LoopbackDns(const dns::SimulatedDnsNetwork& network,
                       Options options);
  ~LoopbackDns();

  /// Brings up server then client; false (logged) leaves both stopped so
  /// the caller can fall back to the in-process transport.
  bool start();
  void stop();

  bool running() const noexcept { return transport_ && transport_->running(); }

  /// The DnsTransport resolvers should use; valid while running().
  SocketDnsTransport& transport() noexcept { return *transport_; }
  DnsSocketServer& server() noexcept { return server_; }
  const Options& options() const noexcept { return options_; }
  /// The shared impairment layer, or nullptr when the profile is inactive.
  ChaosLink* chaos() noexcept { return chaos_.get(); }

 private:
  Options options_;
  /// Shared by server and client; must outlive both (declared first).
  std::unique_ptr<ChaosLink> chaos_;
  DnsSocketServer server_;
  /// Built in start(), once the server's bound port is known.
  std::unique_ptr<SocketDnsTransport> transport_;
};

}  // namespace cs::netio
