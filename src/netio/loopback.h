#pragma once

#include <cstdint>
#include <memory>

#include "dns/transport.h"
#include "netio/server.h"
#include "netio/transport.h"

/// One-call harness pairing a DnsSocketServer with its client transport,
/// plus the CS_* knobs that select and size the live-socket backend:
///
///   CS_TRANSPORT      sim (default) | socket
///   CS_NETIO_THREADS  server reactor threads (default 2)
///   CS_NETIO_INFLIGHT client in-flight cap (default 256)
///
/// core::Study consults transport_mode_from_env() and, in socket mode,
/// stands up a LoopbackDns over the world's SimulatedDnsNetwork and
/// points every resolver at it — the enumerator, resolver, and dataset
/// builder run unchanged over real localhost UDP.
namespace cs::netio {

enum class TransportMode { kSim, kSocket };

/// CS_TRANSPORT, strictly parsed: unset/empty or "sim" -> kSim, "socket"
/// -> kSocket, anything else warns (the uniform util::env message) and
/// falls back to kSim.
TransportMode transport_mode_from_env();

class LoopbackDns {
 public:
  struct Options {
    unsigned server_threads = 2;   ///< CS_NETIO_THREADS
    unsigned max_in_flight = 256;  ///< CS_NETIO_INFLIGHT
    unsigned client_sockets = 0;   ///< 0 = match server_threads
    std::uint64_t rto_us = 100'000;
    unsigned max_attempts = 3;
  };

  /// Options with CS_NETIO_THREADS / CS_NETIO_INFLIGHT applied (strict
  /// parses; malformed values warn and keep the defaults).
  static Options options_from_env();

  /// `network` must outlive this harness; its routing table must be fully
  /// built before start().
  explicit LoopbackDns(const dns::SimulatedDnsNetwork& network,
                       Options options);
  ~LoopbackDns();

  /// Brings up server then client; false (logged) leaves both stopped so
  /// the caller can fall back to the in-process transport.
  bool start();
  void stop();

  bool running() const noexcept { return transport_ && transport_->running(); }

  /// The DnsTransport resolvers should use; valid while running().
  SocketDnsTransport& transport() noexcept { return *transport_; }
  DnsSocketServer& server() noexcept { return server_; }

 private:
  Options options_;
  DnsSocketServer server_;
  /// Built in start(), once the server's bound port is known.
  std::unique_ptr<SocketDnsTransport> transport_;
};

}  // namespace cs::netio
