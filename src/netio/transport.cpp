#include "netio/transport.h"

#include <chrono>
#include <string>

#include "fault/fault.h"
#include "netio/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/sync.h"

namespace cs::netio {
namespace {

constexpr std::size_t kRecvBufferSize = 65536 + kFrameHeaderSize;
constexpr std::size_t kMuxIds = 65536;  // the DNS header ID space

/// Salt for the deterministic decorrelated backoff jitter stream.
constexpr std::uint64_t kBackoffSalt = 0xBAC0FFBAC0FFBAC0ULL;

obs::Histogram& exchange_histogram() {
  static auto& h = obs::histogram(
      "netio.client.exchange_us",
      {50, 100, 200, 500, 1000, 2000, 5000, 10000, 25000, 50000, 100000,
       250000, 500000});
  return h;
}

obs::Histogram& rto_histogram() {
  static auto& h = obs::histogram(
      "netio.client.rto_us",
      {1000, 2000, 5000, 10000, 25000, 50000, 100000, 250000, 500000,
       1000000, 2000000});
  return h;
}

/// Decorrelated jitter over the backed-off RTO: delay in [rto, 1.5*rto),
/// drawn from a stream keyed only by (exchange key, attempt) so the
/// schedule is a property of the exchange, not of scheduler timing.
std::uint64_t jittered_delay(std::uint64_t rto_us, std::uint64_t exchange_key,
                             unsigned attempt) noexcept {
  util::Rng rng{exchange_key ^ kBackoffSalt ^
                (static_cast<std::uint64_t>(attempt) *
                 0x9E3779B97F4A7C15ULL)};
  return rto_us + static_cast<std::uint64_t>(0.5 * static_cast<double>(rto_us) *
                                             rng.uniform01());
}

}  // namespace

SocketDnsTransport::SocketDnsTransport(Options options)
    : options_(options),
      budget_(RetryBudget::Options{options.retry_budget_credit,
                                   options.retry_budget_cap}) {
  if (options_.max_in_flight == 0) options_.max_in_flight = 1;
  if (options_.max_in_flight > kMuxIds)
    options_.max_in_flight = static_cast<unsigned>(kMuxIds);
  if (options_.client_sockets == 0) options_.client_sockets = 1;
  if (options_.max_attempts == 0) options_.max_attempts = 1;
  if (options_.rto_us == 0) options_.rto_us = 1;
  // The adaptive band must bracket the initial RTO: tests that pin a tiny
  // rto_us get a floor below it, and the backoff cap never undercuts it.
  if (options_.min_rto_us > options_.rto_us)
    options_.min_rto_us = options_.rto_us;
  if (options_.min_rto_us == 0) options_.min_rto_us = 1;
  if (options_.max_rto_us < options_.rto_us)
    options_.max_rto_us = options_.rto_us;
}

SocketDnsTransport::~SocketDnsTransport() { stop(); }

bool SocketDnsTransport::start() {
  if (running()) return true;
  if (options_.server_port == 0) {
    obs::log_error("netio.client", "no server port configured");
    return false;
  }
  sockets_.clear();
  sockets_.resize(options_.client_sockets);
  for (std::size_t i = 0; i < sockets_.size(); ++i) {
    std::string error;
    // Each socket binds its own ephemeral source port, so the server's
    // SO_REUSEPORT hash spreads this client across its reactor workers.
    if (!sockets_[i].open_loopback(0, /*reuse_port=*/false, &error) ||
        !sockets_[i].connect_loopback(options_.server_port, &error)) {
      obs::log_error("netio.client", "client socket {} failed: {}", i, error);
      sockets_.clear();
      return false;
    }
    if (!reactor_.add_fd(sockets_[i].fd(), [this, i] { drain(i); })) {
      obs::log_error("netio.client", "epoll registration failed");
      sockets_.clear();
      return false;
    }
  }
  {
    util::LockGuard lock{mutex_};
    free_ids_.clear();
    for (std::size_t id = 0; id < kMuxIds; ++id)
      free_ids_.push_back(static_cast<std::uint16_t>(id));
  }
  running_.store(true, std::memory_order_release);
  reactor_.start();
  obs::log_info("netio.client",
                "connected {} sockets to 127.0.0.1:{} (in-flight cap {}, "
                "rto {} us x{}, adaptive band [{}, {}] us)",
                sockets_.size(), options_.server_port, options_.max_in_flight,
                options_.rto_us, options_.max_attempts, options_.min_rto_us,
                options_.max_rto_us);
  return true;
}

void SocketDnsTransport::stop() {
  {
    util::LockGuard lock{mutex_};
    if (!running_.load(std::memory_order_relaxed)) return;
    running_.store(false, std::memory_order_release);
    // Fail every still-blocked exchange; their callers wake with nullopt.
    std::vector<std::uint16_t> live;
    live.reserve(pending_.size());
    for (const auto& [mux_id, p] : pending_) live.push_back(mux_id);
    for (const auto mux_id : live) {
      // No verdict on the server either way; free any half-open probe.
      server_state_locked(pending_[mux_id]->server.value())
          .breaker.on_abandon();
      settle_locked(mux_id, std::nullopt);
    }
  }
  slot_free_.notify_all();
  reactor_.stop();
  sockets_.clear();
}

SocketDnsTransport::ServerState& SocketDnsTransport::server_state_locked(
    std::uint32_t server) {
  auto it = servers_.find(server);
  if (it == servers_.end())
    it = servers_.emplace(server, ServerState{options_}).first;
  return it->second;
}

void SocketDnsTransport::breaker_failure_locked(ServerState& state) {
  static auto& trips = obs::counter("netio.client.breaker_trips");
  static auto& open_gauge = obs::gauge("netio.client.breakers_open");
  const bool was_open = state.breaker.state() == CircuitBreaker::State::kOpen;
  const bool was_tripped =
      state.breaker.state() != CircuitBreaker::State::kClosed;
  state.breaker.on_failure(Reactor::now_us());
  if (!was_open && state.breaker.state() == CircuitBreaker::State::kOpen)
    trips.inc();
  if (!was_tripped &&
      state.breaker.state() != CircuitBreaker::State::kClosed)
    open_gauge.set(++breakers_open_);
}

void SocketDnsTransport::breaker_success_locked(ServerState& state) {
  static auto& open_gauge = obs::gauge("netio.client.breakers_open");
  const bool was_tripped =
      state.breaker.state() != CircuitBreaker::State::kClosed;
  state.breaker.on_success();
  if (was_tripped && breakers_open_ > 0) open_gauge.set(--breakers_open_);
}

void SocketDnsTransport::send_query_locked(Pending& p) {
  if (!options_.chaos) {
    // A failed send (full socket buffer) is just a lost datagram: the
    // retransmit timer recovers it.
    sockets_[p.socket_index].send(p.datagram);
    return;
  }
  const auto verdict = options_.chaos->decide(ChaosDirection::kClientToServer,
                                              p.exchange_key,
                                              p.datagram.size());
  if (!verdict.deliver) return;
  const auto emit = [this, index = p.socket_index](
                        std::vector<std::uint8_t> bytes,
                        std::uint64_t delay_us) {
    if (delay_us == 0) {
      sockets_[index].send(bytes);
      return;
    }
    // Held-back copies go out through the reactor's own timer wheel.
    // Lock-free on purpose: B1 bans mutex acquisition inside reactor
    // callbacks, and none is needed — the atomic running_ check plus
    // stop()'s join-before-close ordering (the reactor joins before the
    // sockets close) keep the send inside the sockets' lifetime.
    reactor_.run_after(delay_us, [this, index, bytes = std::move(bytes)] {
      if (running_.load(std::memory_order_acquire))
        sockets_[index].send(bytes);
    });
  };
  auto bytes = p.datagram;
  if (verdict.corrupt_mask != 0)
    bytes[verdict.corrupt_offset] ^= verdict.corrupt_mask;
  if (verdict.duplicate) emit(bytes, verdict.duplicate_delay_us);
  emit(std::move(bytes), verdict.delay_us);
}

std::optional<std::vector<std::uint8_t>> SocketDnsTransport::exchange(
    net::Ipv4 client, net::Ipv4 server, std::span<const std::uint8_t> query) {
  static auto& exchanges = obs::counter("netio.client.exchanges");
  static auto& fastfails = obs::counter("netio.client.breaker_fastfails");
  static auto& in_flight_gauge = obs::gauge("netio.client.in_flight");
  static auto& budget_gauge = obs::gauge("netio.client.retry_budget_tokens");
  static auto& guard_trips = obs::counter("netio.client.hang_guard_trips");

  std::shared_ptr<Pending> p;
  std::uint16_t mux_id = 0;
  {
    util::LockGuard lock{mutex_};
    // Bounded in-flight backpressure: hold the caller until a slot frees.
    while (running_.load(std::memory_order_relaxed) &&
           in_flight_ >= options_.max_in_flight)
      slot_free_.wait(mutex_);
    if (!running_.load(std::memory_order_relaxed)) return std::nullopt;
    exchanges.inc();
    // Fail fast while the server's breaker is open: no slot, no send, no
    // retransmit schedule — the caller sees the same nullopt a timeout
    // would produce, a few RTOs sooner and without wire pressure.
    if (!server_state_locked(server.value())
             .breaker.allow(Reactor::now_us())) {
      fastfails.inc();
      return std::nullopt;
    }
    ++in_flight_;
    in_flight_gauge.set(in_flight_);
    mux_id = free_ids_.front();
    free_ids_.pop_front();

    p = std::make_shared<Pending>();
    p->server = server;
    p->original_id = dns_id(query).value_or(0);
    // Keyed before the mux rewrite and without the ID bytes: retransmits,
    // the response, and a re-ask of the same question all share the key.
    p->exchange_key = fault::exchange_key(
        client.value(), server.value(),
        query.size() >= 2 ? query.subspan(2) : query);
    std::vector<std::uint8_t> payload{query.begin(), query.end()};
    rewrite_dns_id(payload, mux_id);
    p->datagram = encode_frame(FrameKind::kQuery, client, server, payload);
    p->socket_index = mux_id % sockets_.size();
    p->sent_us = Reactor::now_us();
    p->attempts = 1;
    pending_.emplace(mux_id, p);

    auto& state = server_state_locked(server.value());
    const auto rto_us = state.rto.rto_us();
    rto_histogram().observe(static_cast<double>(rto_us));
    budget_.on_send();
    budget_gauge.set(static_cast<std::int64_t>(budget_.tokens()));
    send_query_locked(*p);
    p->timer = reactor_.run_after(
        rto_us, [this, mux_id] { on_retransmit_deadline(mux_id); });
  }

  // Hang guard: the retransmit schedule bounds every exchange, so waiting
  // past it (a lost timer would be a netio bug, not an injected fault)
  // must not deadlock the resolver; reclaim the slot and fail the lookup.
  // The bound uses the adaptive cap: every armed delay is <= 1.5 *
  // max_rto_us.
  // cslint:allow(D1): hang-guard deadline needs the raw monotonic clock for cv::wait_until; transport timing never shapes artifacts
  const auto guard_deadline = std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          options_.max_rto_us * 2 * options_.max_attempts + 1'000'000);
  bool done = false;
  {
    util::LockGuard pl{p->m};
    while (!p->done && p->cv.wait_until(p->m, guard_deadline) !=
                           std::cv_status::timeout) {
    }
    done = p->done;
  }
  if (!done) {
    util::LockGuard lock{mutex_};
    if (const auto it = pending_.find(mux_id);
        it != pending_.end() && it->second == p) {
      guard_trips.inc();
      obs::log_warn("netio.client",
                    "exchange hang guard tripped (mux id {})", mux_id);
      // A wedged exchange says nothing about the server; free the probe.
      server_state_locked(p->server.value()).breaker.on_abandon();
      settle_locked(mux_id, std::nullopt);
    }
  }
  util::LockGuard pl{p->m};
  return std::move(p->result);
}

void SocketDnsTransport::drain(std::size_t socket_index) {
  std::uint8_t buffer[kRecvBufferSize];
  while (const auto n = sockets_[socket_index].recv_from(buffer, nullptr))
    on_frame(std::span<const std::uint8_t>{buffer, *n});
}

void SocketDnsTransport::on_frame(std::span<const std::uint8_t> datagram) {
  static auto& responses = obs::counter("netio.client.responses");
  static auto& unreachable = obs::counter("netio.client.unreachable");
  static auto& strays = obs::counter("netio.client.strays");

  const auto frame = decode_frame(datagram);
  if (!frame || (frame->kind != FrameKind::kResponse &&
                 frame->kind != FrameKind::kUnreachable)) {
    strays.inc();
    return;
  }
  const auto mux_id = dns_id(frame->payload);
  if (!mux_id) {
    strays.inc();
    return;
  }

  util::LockGuard lock{mutex_};
  const auto it = pending_.find(*mux_id);
  // A missing or mismatched slot is a straggler from an already-settled
  // exchange (e.g. a retransmit raced its own first response); the FIFO
  // free-list keeps released IDs cold, and the server check catches the
  // rare immediate reuse.
  if (it == pending_.end() || it->second->server != frame->server) {
    strays.inc();
    return;
  }
  auto& state = server_state_locked(it->second->server.value());
  if (frame->kind == FrameKind::kUnreachable) {
    unreachable.inc();
    // The path answered — the *server* is down. Breaker success keeps
    // set_down semantics identical between the sim and socket backends.
    breaker_success_locked(state);
    settle_locked(*mux_id, std::nullopt);
    return;
  }
  responses.inc();
  // Karn's rule: only a never-retransmitted exchange yields a clean RTT
  // sample (a retransmitted one cannot tell which send was answered).
  if (!it->second->retransmitted)
    state.rto.observe_rtt(Reactor::now_us() - it->second->sent_us);
  breaker_success_locked(state);
  std::vector<std::uint8_t> bytes{frame->payload.begin(),
                                  frame->payload.end()};
  // Hand the resolver back its own DNS ID; the mux ID was transport-local.
  rewrite_dns_id(bytes, it->second->original_id);
  settle_locked(*mux_id, std::move(bytes));
}

void SocketDnsTransport::on_retransmit_deadline(std::uint16_t mux_id) {
  static auto& retransmits = obs::counter("netio.client.retransmits");
  static auto& expirations = obs::counter("netio.client.expirations");
  static auto& rejections = obs::counter("netio.client.retry_budget_rejections");
  static auto& budget_gauge = obs::gauge("netio.client.retry_budget_tokens");

  util::LockGuard lock{mutex_};
  const auto it = pending_.find(mux_id);
  if (it == pending_.end()) return;  // settled while the timer fired
  auto& p = *it->second;
  auto& state = server_state_locked(p.server.value());
  // Karn backoff: every expiry doubles this server's RTO (capped); the
  // next clean sample resets it.
  state.rto.on_timeout();
  if (p.attempts >= options_.max_attempts) {
    expirations.inc();
    breaker_failure_locked(state);
    settle_locked(mux_id, std::nullopt);
    return;
  }
  if (!budget_.try_spend()) {
    // Correlated loss has drained the retry budget: refuse the retransmit
    // and fail the exchange now — a storm of retries into a lossy path
    // only feeds the loss. Counted, and no server verdict (the breaker
    // only trusts full expiries).
    rejections.inc();
    budget_gauge.set(static_cast<std::int64_t>(budget_.tokens()));
    state.breaker.on_abandon();
    settle_locked(mux_id, std::nullopt);
    return;
  }
  budget_gauge.set(static_cast<std::int64_t>(budget_.tokens()));
  ++p.attempts;
  p.retransmitted = true;
  retransmits.inc();
  // Same bytes, same mux ID: the server replays the same seeded fault
  // decision, so an injected loss stays lost across every attempt.
  send_query_locked(p);
  const auto delay_us =
      jittered_delay(state.rto.rto_us(), p.exchange_key, p.attempts);
  rto_histogram().observe(static_cast<double>(delay_us));
  p.timer = reactor_.run_after(
      delay_us, [this, mux_id] { on_retransmit_deadline(mux_id); });
}

void SocketDnsTransport::settle_locked(
    std::uint16_t mux_id, std::optional<std::vector<std::uint8_t>> result) {
  const auto it = pending_.find(mux_id);
  if (it == pending_.end()) return;
  const auto p = it->second;
  pending_.erase(it);
  // Back of the FIFO: a released ID stays out of circulation for as long
  // as the free-list allows, so stragglers find an empty slot.
  free_ids_.push_back(mux_id);
  --in_flight_;
  static auto& in_flight_gauge = obs::gauge("netio.client.in_flight");
  in_flight_gauge.set(in_flight_);
  reactor_.cancel_timer(p->timer);
  exchange_histogram().observe(
      static_cast<double>(Reactor::now_us() - p->sent_us));
  {
    util::LockGuard pl{p->m};
    p->done = true;
    p->result = std::move(result);
  }
  p->cv.notify_one();
  slot_free_.notify_one();
}

}  // namespace cs::netio
