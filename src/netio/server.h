#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dns/transport.h"
#include "netio/chaos.h"
#include "netio/reactor.h"
#include "netio/socket.h"

/// Authoritative DNS over real localhost UDP.
///
/// DnsSocketServer fronts a fully built SimulatedDnsNetwork routing table
/// with live sockets: one UDP port, N SO_REUSEPORT listeners, each owned
/// by its own epoll reactor thread. Every datagram is a netio frame
/// (wire.h) whose header names the simulated client and server addresses;
/// the worker answers from the shared read-only zone data via
/// SimulatedDnsNetwork::serve(), so the answer bytes — and every seeded
/// fault decision — are identical to what the in-process backend would
/// have produced. Injected loss/timeout is served as genuine silence
/// (the client really retransmits); a down or unknown server address is
/// answered with a kUnreachable control frame so the client can fail the
/// exchange fast instead of waiting out its retransmit schedule.
///
/// With a ChaosLink installed, every outgoing response/unreachable frame
/// takes a seeded impairment verdict (the server-to-client direction);
/// held-back copies go out through the owning worker's reactor timers.
namespace cs::netio {

class DnsSocketServer {
 public:
  struct Options {
    unsigned threads = 2;        ///< reactor workers (CS_NETIO_THREADS)
    ChaosLink* chaos = nullptr;  ///< non-owning; shared with the client
  };

  /// `network` must outlive the server and stay quiescent (no attach /
  /// set_observer) while the server runs; see the concurrency contract in
  /// dns/transport.h.
  explicit DnsSocketServer(const dns::SimulatedDnsNetwork& network);
  DnsSocketServer(const dns::SimulatedDnsNetwork& network, Options options);
  ~DnsSocketServer();

  DnsSocketServer(const DnsSocketServer&) = delete;
  DnsSocketServer& operator=(const DnsSocketServer&) = delete;

  /// Binds the listeners and starts the reactor threads; false (with the
  /// reason logged) when the sockets cannot be set up.
  bool start();

  /// Stops and joins every worker. Safe to call repeatedly.
  void stop();

  /// The bound localhost UDP port (0 until start() succeeds).
  std::uint16_t port() const noexcept { return port_; }

  unsigned thread_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

 private:
  struct Worker {
    UdpSocket socket;
    std::unique_ptr<Reactor> reactor;
  };

  void drain(Worker& worker);
  /// Sends one outgoing frame through the chaos verdict (if any).
  void send_frame(Worker& worker, const Endpoint& peer,
                  std::uint64_t exchange_key,
                  std::vector<std::uint8_t> frame);

  const dns::SimulatedDnsNetwork& network_;
  Options options_;
  std::vector<Worker> workers_;
  std::uint16_t port_ = 0;
  bool started_ = false;
};

}  // namespace cs::netio
