#pragma once

#include <cstdint>

/// The socket client's resilience state machines, each deliberately
/// clock-free: time is a microsecond value the caller passes in (the
/// reactor's monotonic now), so every machine is unit-testable with a
/// scripted timeline and never reads a clock itself.
///
///  - RtoEstimator: RFC 6298 adaptive retransmission timeout. One per
///    server; SRTT/RTTVAR from clean samples only (Karn's rule — the
///    transport must not feed RTTs measured on retransmitted exchanges),
///    exponential backoff on timer expiry, backoff cleared by the next
///    clean sample.
///  - RetryBudget: token bucket bounding the global retransmit rate.
///    First sends earn fractional credit, each retransmit spends one
///    token; under correlated loss the bucket drains and retransmits are
///    refused — pressure degrades to fast failure instead of a retry
///    storm amplifying the congestion that caused it.
///  - CircuitBreaker: per-server closed -> open -> half-open health
///    gate. Only silent expiries count as failures: a kUnreachable
///    answer proves the path works (the server said no), so it feeds
///    on_success and keeps a down-but-reachable server failing fast via
///    the unreachable frame, not the breaker — which is what keeps
///    sim-vs-socket artifacts identical.
namespace cs::netio {

/// RFC 6298 with the standard gains (alpha 1/8, beta 1/4, K=4).
class RtoEstimator {
 public:
  struct Options {
    std::uint64_t initial_us = 100'000;  ///< RTO before the first sample
    std::uint64_t min_us = 5'000;
    std::uint64_t max_us = 2'000'000;
  };

  explicit RtoEstimator(Options options) noexcept;

  /// Feeds one clean (never-retransmitted) sample; clears any backoff.
  void observe_rtt(std::uint64_t rtt_us) noexcept;

  /// Timer expiry: doubles the RTO up to max_us (Karn backoff).
  void on_timeout() noexcept;

  std::uint64_t rto_us() const noexcept { return rto_us_; }
  bool seeded() const noexcept { return seeded_; }
  double srtt_us() const noexcept { return srtt_us_; }
  double rttvar_us() const noexcept { return rttvar_us_; }

 private:
  Options options_;
  bool seeded_ = false;
  double srtt_us_ = 0.0;
  double rttvar_us_ = 0.0;
  std::uint64_t rto_us_ = 0;
};

/// Token bucket over retransmissions (not first sends).
class RetryBudget {
 public:
  struct Options {
    double credit_per_send = 0.2;  ///< earned by every first transmission
    double max_tokens = 1000.0;    ///< bucket capacity; starts full
  };

  explicit RetryBudget(Options options) noexcept;

  /// A first transmission happened; earns credit up to the cap.
  void on_send() noexcept;

  /// Spends one token for a retransmit; false refuses it (bucket dry).
  bool try_spend() noexcept;

  double tokens() const noexcept { return tokens_; }

 private:
  Options options_;
  double tokens_;
};

/// Consecutive-failure breaker with a single half-open probe.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  struct Options {
    unsigned failure_threshold = 16;  ///< consecutive failures to open
    std::uint64_t cooldown_us = 250'000;  ///< open -> half-open delay
  };

  explicit CircuitBreaker(Options options) noexcept;

  /// May a new exchange start now? Closed: yes. Open: no until the
  /// cooldown elapses, then the breaker half-opens and admits exactly
  /// one probe. Half-open: only the single probe slot.
  bool allow(std::uint64_t now_us) noexcept;

  /// A response arrived (including kUnreachable — the path is alive).
  void on_success() noexcept;

  /// A silent expiry. Opens at the threshold, or instantly re-opens a
  /// half-open breaker whose probe failed.
  void on_failure(std::uint64_t now_us) noexcept;

  /// The exchange ended without a verdict on the server (retry budget
  /// refused, hang guard, shutdown): frees the half-open probe slot so
  /// the breaker is not wedged waiting on an answer that never comes.
  void on_abandon() noexcept;

  State state() const noexcept { return state_; }
  unsigned consecutive_failures() const noexcept { return failures_; }
  /// Count of transitions into kOpen.
  std::uint64_t trips() const noexcept { return trips_; }

 private:
  Options options_;
  State state_ = State::kClosed;
  unsigned failures_ = 0;
  std::uint64_t opened_at_us_ = 0;
  bool probe_in_flight_ = false;
  std::uint64_t trips_ = 0;
};

}  // namespace cs::netio
