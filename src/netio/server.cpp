#include "netio/server.h"

#include <string>
#include <utility>

#include "fault/fault.h"
#include "netio/wire.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace cs::netio {
namespace {

/// Loopback UDP comfortably carries 64 KiB datagrams; anything larger
/// fails at send time (EMSGSIZE) and is counted, not crashed on.
constexpr std::size_t kRecvBufferSize = 65536;

}  // namespace

DnsSocketServer::DnsSocketServer(const dns::SimulatedDnsNetwork& network)
    : DnsSocketServer(network, Options{}) {}

DnsSocketServer::DnsSocketServer(const dns::SimulatedDnsNetwork& network,
                                 Options options)
    : network_(network), options_(options) {
  if (options_.threads == 0) options_.threads = 1;
}

DnsSocketServer::~DnsSocketServer() { stop(); }

bool DnsSocketServer::start() {
  if (started_) return true;
  workers_.clear();
  port_ = 0;
  for (unsigned i = 0; i < options_.threads; ++i) {
    Worker worker;
    std::string error;
    // Every listener (including the first) opts into SO_REUSEPORT; the
    // kernel then spreads client source ports across them.
    if (!worker.socket.open_loopback(port_, /*reuse_port=*/true, &error)) {
      obs::log_error("netio.server", "listener {} failed: {}", i, error);
      workers_.clear();
      port_ = 0;
      return false;
    }
    if (i == 0) port_ = worker.socket.local_port();
    worker.reactor = std::make_unique<Reactor>(
        "netio-server-" + std::to_string(i));
    workers_.push_back(std::move(worker));
  }
  for (auto& worker : workers_) {
    auto* w = &worker;
    if (!worker.reactor->add_fd(worker.socket.fd(),
                                [this, w] { drain(*w); })) {
      obs::log_error("netio.server", "epoll registration failed");
      workers_.clear();
      port_ = 0;
      return false;
    }
  }
  for (auto& worker : workers_) worker.reactor->start();
  started_ = true;
  obs::log_info("netio.server", "serving {} zones on 127.0.0.1:{} with {} "
                "reactor threads",
                network_.server_count(), port_, workers_.size());
  return true;
}

void DnsSocketServer::stop() {
  if (!started_) return;
  for (auto& worker : workers_)
    if (worker.reactor) worker.reactor->stop();
  workers_.clear();
  started_ = false;
}

void DnsSocketServer::drain(Worker& worker) {
  static auto& queries = obs::counter("netio.server.queries");
  static auto& dropped = obs::counter("netio.server.malformed");
  static auto& unreachable = obs::counter("netio.server.unreachable");
  static auto& silent = obs::counter("netio.server.fault_silence");

  std::uint8_t buffer[kRecvBufferSize];
  Endpoint peer;
  while (const auto n = worker.socket.recv_from(buffer, &peer)) {
    const std::span<const std::uint8_t> datagram{buffer, *n};
    const auto frame = decode_frame(datagram);
    // Anything that is not a well-formed query frame — truncated header,
    // bad magic, unexpected kind — is dropped and counted, exactly like a
    // real authoritative ignoring junk datagrams. Malformed *DNS* inside a
    // valid frame flows on to serve(), whose decoder answers FORMERR.
    if (!frame || frame->kind != FrameKind::kQuery) {
      dropped.inc();
      continue;
    }
    queries.inc();
    // The chaos key must match the client's: the exchange with the DNS ID
    // bytes (mux-rewritten there) stripped.
    const auto payload = frame->payload;
    const std::uint64_t key =
        options_.chaos
            ? fault::exchange_key(
                  frame->client.value(), frame->server.value(),
                  payload.size() >= 2 ? payload.subspan(2) : payload)
            : 0;
    const auto reply =
        network_.serve(frame->client, frame->server, frame->payload);
    switch (reply.verdict) {
      case dns::WireVerdict::kAnswer: {
        send_frame(worker, peer, key,
                   encode_frame(FrameKind::kResponse, frame->client,
                                frame->server, reply.bytes));
        break;
      }
      case dns::WireVerdict::kDrop:
        // Injected loss/timeout: real silence, the client's retransmit
        // timer does the rest (and its retry replays the same decision).
        silent.inc();
        break;
      case dns::WireVerdict::kUnreachable: {
        unreachable.inc();
        // Echo the query's DNS ID so the client settles the right
        // in-flight exchange immediately (the ICMP-unreachable analog).
        std::uint8_t echo[2] = {0, 0};
        if (frame->payload.size() >= 2) {
          echo[0] = frame->payload[0];
          echo[1] = frame->payload[1];
        }
        send_frame(worker, peer, key,
                   encode_frame(FrameKind::kUnreachable, frame->client,
                                frame->server, echo));
        break;
      }
    }
  }
}

void DnsSocketServer::send_frame(Worker& worker, const Endpoint& peer,
                                 std::uint64_t exchange_key,
                                 std::vector<std::uint8_t> frame) {
  static auto& send_drops = obs::counter("netio.server.send_drops");
  if (!options_.chaos) {
    if (!worker.socket.send_to(peer, frame)) send_drops.inc();
    return;
  }
  const auto verdict = options_.chaos->decide(
      ChaosDirection::kServerToClient, exchange_key, frame.size());
  if (!verdict.deliver) return;
  auto* w = &worker;  // workers_ is stable after start()
  const auto emit = [this, w, peer](std::vector<std::uint8_t> bytes,
                                    std::uint64_t delay_us) {
    static auto& drops = obs::counter("netio.server.send_drops");
    if (delay_us == 0) {
      if (!w->socket.send_to(peer, bytes)) drops.inc();
      return;
    }
    // Held-back copies ride the worker's own reactor timers; stop() joins
    // that reactor before the socket is closed, so the capture is safe.
    w->reactor->run_after(
        delay_us, [w, peer, bytes = std::move(bytes)] {
          static auto& late_drops = obs::counter("netio.server.send_drops");
          if (!w->socket.send_to(peer, bytes)) late_drops.inc();
        });
  };
  if (verdict.corrupt_mask != 0)
    frame[verdict.corrupt_offset] ^= verdict.corrupt_mask;
  if (verdict.duplicate) emit(frame, verdict.duplicate_delay_us);
  emit(std::move(frame), verdict.delay_us);
}

}  // namespace cs::netio
