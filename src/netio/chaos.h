#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <unordered_map>

#include "exec/sharded_rng.h"
#include "util/sync.h"

/// Deterministic wire-level impairment for the loopback UDP path.
///
/// ChaosLink sits on both directions of the netio socket backend and
/// decides, per datagram, whether to drop, duplicate, reorder (a bounded
/// holdback delay on the reactor's timer wheel), delay/jitter, or
/// byte-corrupt it. It extends the `fault` seeding discipline to the
/// wire: every decision is a pure function of (profile seed, direction,
/// ID-stripped frame key, attempt) — never of thread identity or call
/// order — so a chaos run is reproducible and, for survivable profiles,
/// byte-identical to a chaos-off run at any CS_THREADS.
///
/// Survivability by construction: the only state ChaosLink keeps is a
/// per-key attempt counter per direction plus a per-key drop budget of
/// max_attempts-1 shared by both directions. Once the budget is spent,
/// further would-be drops are force-delivered (and counted). Every round
/// of an exchange that fails consumes at least one unit of budget, and
/// the client sends up to max_attempts rounds, so a profile without
/// `corrupt` can never kill an exchange outright — the resilience
/// machinery (retry budget, circuit breaker) observes pressure but never
/// a terminal failure, which is exactly what keeps the dataset artifact
/// invariant. `corrupt` bypasses the clamp by design: a flipped byte can
/// change answer bytes or kill the frame, so corrupting profiles are
/// declared unsurvivable and must degrade with exact accounting instead.
///
/// Configured by CS_CHAOS
/// (`drop=P,dup=P,reorder=P,delay_us=N,jitter_us=N,corrupt=P,seed=N`),
/// parsed with the same strictness as CS_FAULT. With no profile the
/// transport never constructs a ChaosLink and pays one null-pointer
/// branch per frame.
namespace cs::netio {

/// Which way the datagram is travelling; part of every decision's key so
/// the two directions draw from unrelated streams.
enum class ChaosDirection : std::uint8_t {
  kClientToServer = 0,
  kServerToClient = 1,
};

/// Impairment rates and shaping parameters plus the decision-stream seed.
struct ChaosProfile {
  double drop = 0.0;     ///< datagram silently discarded (budgeted)
  double dup = 0.0;      ///< a second, later copy of the datagram
  double reorder = 0.0;  ///< held back past its successors
  double corrupt = 0.0;  ///< one byte XOR-flipped (unsurvivable)
  std::uint64_t delay_us = 0;   ///< fixed one-way delay
  std::uint64_t jitter_us = 0;  ///< uniform extra delay in [0, jitter_us]
  std::uint64_t seed = 0xC4A05BADC0DEULL;

  bool any() const noexcept;
  /// True when the drop clamp guarantees every exchange still completes
  /// with unchanged bytes; only `corrupt` breaks the guarantee.
  bool survivable() const noexcept { return corrupt <= 0.0; }

  /// Strictly parses the CS_CHAOS syntax. Unknown keys, out-of-range
  /// rates, duplicate keys, or trailing garbage reject the whole profile
  /// — a half-read chaos spec would silently change what a CI run proves.
  static std::optional<ChaosProfile> parse(std::string_view text) noexcept;
};

/// CS_CHAOS with the uniform strict-knob behaviour: unset or empty is an
/// inactive profile; a malformed value warns once and stays inactive.
ChaosProfile chaos_profile_from_env();

class ChaosLink {
 public:
  /// What to do with one datagram. The caller owns execution: skip the
  /// send on !deliver, schedule delayed copies on its own timer wheel,
  /// and XOR datagram[corrupt_offset] with corrupt_mask when nonzero
  /// (on a copy — retransmits must resend pristine bytes so the next
  /// attempt's decision is independent).
  struct Verdict {
    bool deliver = true;
    bool duplicate = false;
    std::uint64_t delay_us = 0;            ///< holdback for the datagram
    std::uint64_t duplicate_delay_us = 0;  ///< holdback for the extra copy
    std::size_t corrupt_offset = 0;
    std::uint8_t corrupt_mask = 0;  ///< nonzero: flip one byte
  };

  /// `max_attempts` is the client's retransmit schedule length; the
  /// per-key drop budget is max_attempts-1 (see the clamp contract above).
  ChaosLink(const ChaosProfile& profile, unsigned max_attempts);

  ChaosLink(const ChaosLink&) = delete;
  ChaosLink& operator=(const ChaosLink&) = delete;

  /// The verdict for one datagram. `exchange_key` must be the
  /// fault::exchange_key of the exchange with the DNS ID bytes stripped,
  /// so retransmits and responses share one key regardless of mux-ID
  /// rewriting. Thread-safe.
  Verdict decide(ChaosDirection direction, std::uint64_t exchange_key,
                 std::size_t frame_size);

  const ChaosProfile& profile() const noexcept { return profile_; }

  /// Worst-case injected one-way latency for the primary copy:
  /// delay + jitter + the reorder holdback. Survivable profiles must keep
  /// this under the client's minimum RTO or delay starts looking like
  /// loss (still correct, just noisier).
  std::uint64_t max_latency_us() const noexcept;

 private:
  /// Per-exchange-key impairment state; never garbage-collected. This is
  /// a test/CI facility sized for bounded suites, not a resident proxy.
  struct KeyState {
    std::uint32_t attempts[2] = {0, 0};  ///< per direction
    std::uint32_t drops = 0;             ///< budget spent, both directions
  };

  std::uint64_t holdback_us() const noexcept;

  ChaosProfile profile_;
  std::uint32_t drop_budget_;
  exec::ShardedRng drop_root_;
  exec::ShardedRng dup_root_;
  exec::ShardedRng reorder_root_;
  exec::ShardedRng corrupt_root_;
  exec::ShardedRng delay_root_;
  util::Mutex mutex_;
  std::unordered_map<std::uint64_t, KeyState> keys_ CS_GUARDED_BY(mutex_);
};

}  // namespace cs::netio
