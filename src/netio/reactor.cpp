#include "netio/reactor.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "obs/log.h"
#include "obs/trace.h"
#include "util/sync.h"

namespace cs::netio {
namespace {

/// Idle sleep cap: with no timers pending the loop still wakes at this
/// cadence to re-check the stop flag (stop() also wakes it eagerly).
constexpr int kIdleSleepMs = 200;

}  // namespace

std::uint64_t Reactor::now_us() noexcept {
  // src/netio/reactor is D1-sanctioned: the event loop's time base is the
  // raw monotonic clock, read without the obs indirection because this is
  // the innermost wait loop. Transport timing never shapes artifacts.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Reactor::Reactor(std::string thread_name)
    : thread_name_(std::move(thread_name)) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ >= 0 && wake_fd_ >= 0) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u32 = ~0u;  // sentinel: the wake fd
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  }
}

Reactor::~Reactor() {
  stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Reactor::add_fd(int fd, std::function<void()> on_readable) {
  if (epoll_fd_ < 0 || running()) return false;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u32 = static_cast<std::uint32_t>(fds_.size());
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
  fds_.emplace_back(fd, std::move(on_readable));
  return true;
}

TimerWheel::Token Reactor::run_after(std::uint64_t delay_us,
                                     std::function<void()> fn) {
  const std::uint64_t deadline = now_us() + delay_us;
  TimerWheel::Token token;
  {
    util::LockGuard lock{wheel_mutex_};
    token = wheel_.schedule(deadline, std::move(fn));
  }
  const std::uint64_t sleeping_until =
      sleep_until_us_.load(std::memory_order_acquire);
  if (sleeping_until == 0 || deadline < sleeping_until) wake();
  return token;
}

bool Reactor::cancel_timer(TimerWheel::Token token) {
  util::LockGuard lock{wheel_mutex_};
  return wheel_.cancel(token);
}

void Reactor::start() {
  if (running()) return;
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop(); });
}

void Reactor::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  wake();
  if (thread_.joinable()) thread_.join();
}

void Reactor::wake() {
  if (wake_fd_ < 0) return;
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof(one));
}

void Reactor::loop() {
  obs::Tracer::instance().set_thread_name(thread_name_);
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    // Sleep until the earliest timer (capped) or a readable fd/wakeup.
    int timeout_ms = kIdleSleepMs;
    {
      util::LockGuard lock{wheel_mutex_};
      if (const auto deadline = wheel_.next_deadline()) {
        const std::uint64_t now = now_us();
        timeout_ms = *deadline <= now
                         ? 0
                         : static_cast<int>(
                               std::min<std::uint64_t>(
                                   (*deadline - now + 999) / 1000,
                                   kIdleSleepMs));
        sleep_until_us_.store(*deadline, std::memory_order_release);
      } else {
        sleep_until_us_.store(0, std::memory_order_release);
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    sleep_until_us_.store(0, std::memory_order_release);
    if (n < 0 && errno != EINTR) {
      obs::log_error("netio.reactor", "epoll_wait failed on {}: errno {}",
                     thread_name_, errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint32_t idx = events[i].data.u32;
      if (idx == ~0u) {
        std::uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (idx < fds_.size()) fds_[idx].second();
    }
    std::vector<std::function<void()>> fired;
    {
      util::LockGuard lock{wheel_mutex_};
      fired = wheel_.advance(now_us());
    }
    for (auto& fn : fired) fn();
  }
}

}  // namespace cs::netio
