#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/transport.h"
#include "netio/chaos.h"
#include "netio/reactor.h"
#include "netio/resilience.h"
#include "netio/socket.h"
#include "util/sync.h"

/// The client half of the live-socket DNS backend.
///
/// SocketDnsTransport is a dns::DnsTransport whose exchange() really puts
/// the query on a localhost UDP socket and blocks the calling resolver
/// thread until the response datagram comes back (or the retransmit
/// schedule expires). Many resolver threads share one transport, so the
/// wire is pipelined: each exchange claims a 16-bit mux ID from a FIFO
/// free-list, rewrites the DNS header ID to it on the way out, and a
/// single client reactor demultiplexes responses back to the blocked
/// callers by that ID, restoring the resolver's original ID before
/// returning the bytes. The FIFO free-list keeps a just-released ID cold
/// for as long as possible, so a straggler response for a completed
/// exchange almost always finds its slot empty (and is counted, not
/// misdelivered — the slot also pins the expected server address).
///
/// Loss recovery is adaptive (resilience.h): each server gets an RFC 6298
/// RTO estimator fed only by clean samples (Karn's rule), retransmits
/// back off exponentially with deterministic decorrelated jitter keyed by
/// the exchange, a global token-bucket retry budget refuses retransmits
/// under correlated loss, and a per-server circuit breaker fails new
/// exchanges fast once a server has expired enough exchanges in a row.
/// Every fast-fail path is a named counter surfaced in the data-quality
/// report — degradation is accounted, never silent. A kUnreachable
/// control frame from the server settles the exchange immediately and
/// counts as breaker *success*: the path answered, the server said no.
///
/// Backpressure: at most max_in_flight exchanges may hold the wire; the
/// next caller blocks until a slot frees, bounding socket-buffer pressure
/// no matter how many resolver threads pile on.
///
/// When a ChaosLink is installed (chaos.h) every outgoing datagram takes
/// a seeded impairment verdict first; without one the cost is a single
/// null-pointer branch.
namespace cs::netio {

class SocketDnsTransport final : public dns::DnsTransport {
 public:
  struct Options {
    std::uint16_t server_port = 0;    ///< DnsSocketServer::port()
    unsigned max_in_flight = 256;     ///< CS_NETIO_INFLIGHT
    unsigned client_sockets = 2;      ///< spread over SO_REUSEPORT workers
    std::uint64_t rto_us = 100'000;   ///< initial RTO (CS_NETIO_RTO_US)
    unsigned max_attempts = 3;        ///< CS_NETIO_MAX_ATTEMPTS
    std::uint64_t min_rto_us = 5'000;     ///< adaptive-RTO floor
    std::uint64_t max_rto_us = 2'000'000;  ///< adaptive-RTO + backoff cap
    double retry_budget_credit = 0.2;  ///< earned per first send
    double retry_budget_cap = 1000.0;  ///< CS_NETIO_RETRY_BUDGET
    unsigned breaker_threshold = 16;   ///< CS_NETIO_BREAKER_FAILS
    std::uint64_t breaker_cooldown_us = 250'000;  ///< open -> half-open
    ChaosLink* chaos = nullptr;  ///< non-owning; shared with the server
  };

  explicit SocketDnsTransport(Options options);
  ~SocketDnsTransport() override;

  SocketDnsTransport(const SocketDnsTransport&) = delete;
  SocketDnsTransport& operator=(const SocketDnsTransport&) = delete;

  /// Opens the client sockets and starts the reactor; false (logged) when
  /// socket setup fails.
  bool start();

  /// Fails every still-blocked exchange and joins the reactor.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Blocking send-and-wait; thread-safe, pipelined across callers.
  std::optional<std::vector<std::uint8_t>> exchange(
      net::Ipv4 client, net::Ipv4 server,
      std::span<const std::uint8_t> query) override;

 private:
  struct Pending {
    util::Mutex m;
    util::CondVar cv;
    bool done CS_GUARDED_BY(m) = false;
    std::optional<std::vector<std::uint8_t>> result CS_GUARDED_BY(m);

    net::Ipv4 server;                  ///< expected responder
    std::uint16_t original_id = 0;     ///< resolver's DNS header ID
    std::vector<std::uint8_t> datagram;  ///< framed query, mux ID applied
    std::size_t socket_index = 0;
    unsigned attempts = 0;
    TimerWheel::Token timer = 0;
    std::uint64_t sent_us = 0;  ///< first send, for the latency histogram
    /// fault::exchange_key over the ID-stripped query: the chaos-decision
    /// and backoff-jitter key, invariant across mux rewrites/retransmits.
    std::uint64_t exchange_key = 0;
    /// Karn's rule: once true, this exchange's RTT never feeds SRTT.
    bool retransmitted = false;
  };

  /// Per-server adaptive state, keyed by the simulated server address.
  struct ServerState {
    RtoEstimator rto;
    CircuitBreaker breaker;
    explicit ServerState(const Options& options)
        : rto(RtoEstimator::Options{options.rto_us, options.min_rto_us,
                                    options.max_rto_us}),
          breaker(CircuitBreaker::Options{options.breaker_threshold,
                                          options.breaker_cooldown_us}) {}
  };

  void drain(std::size_t socket_index);
  void on_frame(std::span<const std::uint8_t> datagram) CS_EXCLUDES(mutex_);
  void on_retransmit_deadline(std::uint16_t mux_id) CS_EXCLUDES(mutex_);
  /// Completes and unblocks one exchange.
  void settle_locked(std::uint16_t mux_id,
                     std::optional<std::vector<std::uint8_t>> result)
      CS_REQUIRES(mutex_);
  /// Sends (or chaos-impairs) one copy of the pending query's datagram.
  void send_query_locked(Pending& p) CS_REQUIRES(mutex_);
  ServerState& server_state_locked(std::uint32_t server) CS_REQUIRES(mutex_);
  /// Breaker failure with trip/open accounting.
  void breaker_failure_locked(ServerState& state) CS_REQUIRES(mutex_);
  void breaker_success_locked(ServerState& state) CS_REQUIRES(mutex_);

  Options options_;
  Reactor reactor_{"netio-client"};
  std::vector<UdpSocket> sockets_;
  /// Lifecycle flag. Reads are lock-free (the running() accessor and the
  /// chaos-delayed send path); every transition happens under mutex_, so
  /// exchange()'s locked re-check still rules out a send-after-stop.
  std::atomic<bool> running_{false};

  util::Mutex mutex_;
  util::CondVar slot_free_;
  std::deque<std::uint16_t> free_ids_ CS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint16_t, std::shared_ptr<Pending>> pending_
      CS_GUARDED_BY(mutex_);
  std::unordered_map<std::uint32_t, ServerState> servers_
      CS_GUARDED_BY(mutex_);
  RetryBudget budget_ CS_GUARDED_BY(mutex_);
  unsigned in_flight_ CS_GUARDED_BY(mutex_) = 0;
  unsigned breakers_open_ CS_GUARDED_BY(mutex_) = 0;
};

}  // namespace cs::netio
