#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dns/transport.h"
#include "netio/reactor.h"
#include "netio/socket.h"

/// The client half of the live-socket DNS backend.
///
/// SocketDnsTransport is a dns::DnsTransport whose exchange() really puts
/// the query on a localhost UDP socket and blocks the calling resolver
/// thread until the response datagram comes back (or the retransmit
/// schedule expires). Many resolver threads share one transport, so the
/// wire is pipelined: each exchange claims a 16-bit mux ID from a FIFO
/// free-list, rewrites the DNS header ID to it on the way out, and a
/// single client reactor demultiplexes responses back to the blocked
/// callers by that ID, restoring the resolver's original ID before
/// returning the bytes. The FIFO free-list keeps a just-released ID cold
/// for as long as possible, so a straggler response for a completed
/// exchange almost always finds its slot empty (and is counted, not
/// misdelivered — the slot also pins the expected server address).
///
/// Lost datagrams — injected faults served as silence, or genuine kernel
/// buffer drops under load — are recovered by a per-exchange retransmit
/// timer on the reactor's hashed timing wheel: same bytes, same mux ID,
/// up to max_attempts sends rto_us apart, then the exchange expires as
/// nullopt exactly like the in-process backend's timeout. A kUnreachable
/// control frame from the server settles the exchange immediately.
///
/// Backpressure: at most max_in_flight exchanges may hold the wire; the
/// next caller blocks until a slot frees, bounding socket-buffer pressure
/// no matter how many resolver threads pile on.
namespace cs::netio {

class SocketDnsTransport final : public dns::DnsTransport {
 public:
  struct Options {
    std::uint16_t server_port = 0;    ///< DnsSocketServer::port()
    unsigned max_in_flight = 256;     ///< CS_NETIO_INFLIGHT
    unsigned client_sockets = 2;      ///< spread over SO_REUSEPORT workers
    std::uint64_t rto_us = 100'000;   ///< retransmit timeout per attempt
    unsigned max_attempts = 3;        ///< sends before the exchange expires
  };

  explicit SocketDnsTransport(Options options);
  ~SocketDnsTransport() override;

  SocketDnsTransport(const SocketDnsTransport&) = delete;
  SocketDnsTransport& operator=(const SocketDnsTransport&) = delete;

  /// Opens the client sockets and starts the reactor; false (logged) when
  /// socket setup fails.
  bool start();

  /// Fails every still-blocked exchange and joins the reactor.
  void stop();

  bool running() const noexcept { return running_; }

  /// Blocking send-and-wait; thread-safe, pipelined across callers.
  std::optional<std::vector<std::uint8_t>> exchange(
      net::Ipv4 client, net::Ipv4 server,
      std::span<const std::uint8_t> query) override;

 private:
  struct Pending {
    std::mutex m;
    std::condition_variable cv;
    bool done = false;
    std::optional<std::vector<std::uint8_t>> result;

    net::Ipv4 server;                  ///< expected responder
    std::uint16_t original_id = 0;     ///< resolver's DNS header ID
    std::vector<std::uint8_t> datagram;  ///< framed query, mux ID applied
    std::size_t socket_index = 0;
    unsigned attempts = 0;
    TimerWheel::Token timer = 0;
    std::uint64_t sent_us = 0;  ///< first send, for the latency histogram
  };

  void drain(std::size_t socket_index);
  void on_frame(std::span<const std::uint8_t> datagram);
  void on_retransmit_deadline(std::uint16_t mux_id);
  /// Completes and unblocks one exchange; caller holds mutex_.
  void settle_locked(std::uint16_t mux_id,
                     std::optional<std::vector<std::uint8_t>> result);

  Options options_;
  Reactor reactor_{"netio-client"};
  std::vector<UdpSocket> sockets_;
  bool running_ = false;

  std::mutex mutex_;
  std::condition_variable slot_free_;
  std::deque<std::uint16_t> free_ids_;
  std::unordered_map<std::uint16_t, std::shared_ptr<Pending>> pending_;
  unsigned in_flight_ = 0;
};

}  // namespace cs::netio
