#include "netio/loopback.h"

#include "obs/log.h"
#include "util/env.h"

namespace cs::netio {
namespace {

/// Strict unsigned knob with a floor of 1; malformed or zero values warn
/// once through the uniform util::env message and keep `fallback`.
unsigned env_unsigned_knob(util::Knob knob, unsigned fallback,
                           const char* expected) {
  const auto text = util::env_text(knob);
  if (!text) return fallback;
  const auto parsed = util::parse_env_unsigned(*text);
  if (!parsed || *parsed == 0) {
    obs::log_warn("netio", "{}", util::env_malformed(knob, *text, expected));
    return fallback;
  }
  return *parsed;
}

}  // namespace

TransportMode transport_mode_from_env() {
  const auto text = util::env_text(util::Knob::kTransport);
  if (!text || *text == "sim") return TransportMode::kSim;
  if (*text == "socket") return TransportMode::kSocket;
  obs::log_warn(
      "netio", "{}",
      util::env_malformed(util::Knob::kTransport, *text, "sim|socket"));
  return TransportMode::kSim;
}

LoopbackDns::Options LoopbackDns::options_from_env() {
  Options options;
  options.server_threads =
      env_unsigned_knob(util::Knob::kNetioThreads, options.server_threads,
                        "reactor thread count >= 1");
  options.max_in_flight =
      env_unsigned_knob(util::Knob::kNetioInflight, options.max_in_flight,
                        "in-flight query cap >= 1");
  options.rto_us = env_unsigned_knob(
      util::Knob::kNetioRtoUs, static_cast<unsigned>(options.rto_us),
      "initial retransmit timeout in us >= 1");
  options.max_attempts =
      env_unsigned_knob(util::Knob::kNetioMaxAttempts, options.max_attempts,
                        "send attempts per exchange >= 1");
  options.retry_budget_cap = env_unsigned_knob(
      util::Knob::kNetioRetryBudget,
      static_cast<unsigned>(options.retry_budget_cap),
      "retry token bucket capacity >= 1");
  options.breaker_threshold = env_unsigned_knob(
      util::Knob::kNetioBreakerFails, options.breaker_threshold,
      "consecutive expiries to open the breaker >= 1");
  options.breaker_cooldown_us = env_unsigned_knob(
      util::Knob::kNetioBreakerCooldownUs,
      static_cast<unsigned>(options.breaker_cooldown_us),
      "breaker open->half-open delay in us >= 1");
  options.chaos = chaos_profile_from_env();
  return options;
}

LoopbackDns::LoopbackDns(const dns::SimulatedDnsNetwork& network,
                         Options options)
    : options_(options),
      chaos_(options.chaos.any()
                 ? std::make_unique<ChaosLink>(options.chaos,
                                               options.max_attempts)
                 : nullptr),
      server_(network,
              DnsSocketServer::Options{
                  options.server_threads ? options.server_threads : 1,
                  chaos_.get()}) {
  if (chaos_) {
    const auto& p = chaos_->profile();
    obs::log_info("netio.chaos",
                  "wire impairment active: drop={} dup={} reorder={} "
                  "corrupt={} delay_us={} jitter_us={} seed={} ({})",
                  p.drop, p.dup, p.reorder, p.corrupt, p.delay_us,
                  p.jitter_us, p.seed,
                  p.survivable() ? "survivable" : "UNSURVIVABLE");
    if (p.survivable() && chaos_->max_latency_us() >= options_.min_rto_us)
      obs::log_warn("netio.chaos",
                    "injected latency (up to {} us) reaches the RTO floor "
                    "({} us); delays will look like loss",
                    chaos_->max_latency_us(), options_.min_rto_us);
  }
}

LoopbackDns::~LoopbackDns() { stop(); }

bool LoopbackDns::start() {
  if (running()) return true;
  if (!server_.start()) return false;
  SocketDnsTransport::Options client;
  client.server_port = server_.port();
  client.max_in_flight = options_.max_in_flight;
  client.client_sockets = options_.client_sockets
                              ? options_.client_sockets
                              : server_.thread_count();
  client.rto_us = options_.rto_us;
  client.max_attempts = options_.max_attempts;
  client.min_rto_us = options_.min_rto_us;
  client.max_rto_us = options_.max_rto_us;
  client.retry_budget_credit = options_.retry_budget_credit;
  client.retry_budget_cap = options_.retry_budget_cap;
  client.breaker_threshold = options_.breaker_threshold;
  client.breaker_cooldown_us = options_.breaker_cooldown_us;
  client.chaos = chaos_.get();
  transport_ = std::make_unique<SocketDnsTransport>(client);
  if (!transport_->start()) {
    transport_.reset();
    server_.stop();
    return false;
  }
  return true;
}

void LoopbackDns::stop() {
  // Client first so no exchange is waiting when the listeners go away.
  if (transport_) transport_->stop();
  transport_.reset();
  server_.stop();
}

}  // namespace cs::netio
