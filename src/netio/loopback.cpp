#include "netio/loopback.h"

#include "obs/log.h"
#include "util/env.h"

namespace cs::netio {
namespace {

/// Strict unsigned knob with a floor of 1; malformed or zero values warn
/// once through the uniform util::env message and keep `fallback`.
unsigned env_unsigned_knob(const char* name, unsigned fallback,
                           const char* expected) {
  const auto text = util::env_text(name);
  if (!text) return fallback;
  const auto parsed = util::parse_env_unsigned(*text);
  if (!parsed || *parsed == 0) {
    obs::log_warn("netio", "{}", util::env_malformed(name, *text, expected));
    return fallback;
  }
  return *parsed;
}

}  // namespace

TransportMode transport_mode_from_env() {
  const auto text = util::env_text("CS_TRANSPORT");
  if (!text || *text == "sim") return TransportMode::kSim;
  if (*text == "socket") return TransportMode::kSocket;
  obs::log_warn("netio", "{}",
                util::env_malformed("CS_TRANSPORT", *text, "sim|socket"));
  return TransportMode::kSim;
}

LoopbackDns::Options LoopbackDns::options_from_env() {
  Options options;
  options.server_threads =
      env_unsigned_knob("CS_NETIO_THREADS", options.server_threads,
                        "reactor thread count >= 1");
  options.max_in_flight =
      env_unsigned_knob("CS_NETIO_INFLIGHT", options.max_in_flight,
                        "in-flight query cap >= 1");
  return options;
}

LoopbackDns::LoopbackDns(const dns::SimulatedDnsNetwork& network,
                         Options options)
    : options_(options),
      server_(network, DnsSocketServer::Options{
                           options.server_threads ? options.server_threads
                                                  : 1}) {}

LoopbackDns::~LoopbackDns() { stop(); }

bool LoopbackDns::start() {
  if (running()) return true;
  if (!server_.start()) return false;
  SocketDnsTransport::Options client;
  client.server_port = server_.port();
  client.max_in_flight = options_.max_in_flight;
  client.client_sockets = options_.client_sockets
                              ? options_.client_sockets
                              : server_.thread_count();
  client.rto_us = options_.rto_us;
  client.max_attempts = options_.max_attempts;
  transport_ = std::make_unique<SocketDnsTransport>(client);
  if (!transport_->start()) {
    transport_.reset();
    server_.stop();
    return false;
  }
  return true;
}

void LoopbackDns::stop() {
  // Client first so no exchange is waiting when the listeners go away.
  if (transport_) transport_->stop();
  transport_.reset();
  server_.stop();
}

}  // namespace cs::netio
