#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

/// Hashed timing wheel for the reactor's retransmit/expiry timers.
///
/// The client transport schedules one timer per in-flight query and
/// cancels it when the response lands — the overwhelmingly common case —
/// so the structure is optimized for cheap schedule/cancel: O(1) insert
/// into a hashed slot, O(1) cancel by erasing the owning map entry (the
/// slot keeps a stale token that the sweep skips). Time is an opaque
/// microsecond counter supplied by the caller on every advance(), so the
/// wheel itself never reads a clock and is unit-testable with a scripted
/// timeline.
namespace cs::netio {

class TimerWheel {
 public:
  using Token = std::uint64_t;

  /// `tick_us` is the wheel granularity (timers fire up to one tick
  /// late); `slots` the wheel circumference. Deadlines further out than
  /// slots*tick_us are parked in their hash slot and re-checked each
  /// revolution — correct, just swept more than once.
  explicit TimerWheel(std::uint64_t tick_us = 1000, std::size_t slots = 256);

  /// Schedules `fn` for `deadline_us`; past deadlines fire on the next
  /// advance. Tokens are never reused.
  Token schedule(std::uint64_t deadline_us, std::function<void()> fn);

  /// True if the timer was still pending (its callback will not run).
  bool cancel(Token token);

  /// Earliest pending deadline — the reactor's epoll sleep bound.
  /// O(active); the active set is bounded by the in-flight cap.
  std::optional<std::uint64_t> next_deadline() const;

  /// Collects every timer due at `now_us`, in deadline order (ties by
  /// schedule order). Callbacks are returned, not run: the reactor drops
  /// its lock first, so a callback may schedule/cancel freely.
  std::vector<std::function<void()>> advance(std::uint64_t now_us);

  std::size_t active() const noexcept { return timers_.size(); }

 private:
  struct Timer {
    std::uint64_t deadline_us = 0;
    std::uint64_t sequence = 0;
    std::function<void()> fn;
  };

  std::size_t slot_of(std::uint64_t deadline_us) const noexcept {
    return static_cast<std::size_t>(deadline_us / tick_us_) % slots_.size();
  }

  std::uint64_t tick_us_;
  std::vector<std::vector<Token>> slots_;
  std::unordered_map<Token, Timer> timers_;
  Token next_token_ = 1;
  std::uint64_t last_advance_us_ = 0;
};

}  // namespace cs::netio
