#include "netio/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace cs::netio {
namespace {

constexpr std::uint32_t kLoopback = 0x7F000001;  // 127.0.0.1

sockaddr_in loopback_sockaddr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(kLoopback);
  addr.sin_port = htons(port);
  return addr;
}

void set_error(std::string* error, const char* what) {
  if (error) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

UdpSocket::~UdpSocket() { close(); }

UdpSocket::UdpSocket(UdpSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      local_port_(std::exchange(other.local_port_, 0)) {}

UdpSocket& UdpSocket::operator=(UdpSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    local_port_ = std::exchange(other.local_port_, 0);
  }
  return *this;
}

bool UdpSocket::open_loopback(std::uint16_t port, bool reuse_port,
                              std::string* error) {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    set_error(error, "socket");
    return false;
  }
  if (reuse_port) {
    const int one = 1;
    if (::setsockopt(fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      set_error(error, "setsockopt(SO_REUSEPORT)");
      close();
      return false;
    }
  }
  // Deep socket buffers: the client deliberately keeps hundreds of
  // queries in flight, and a dropped datagram costs a retransmit timeout.
  // Best effort — the kernel clamps to its limits.
  const int bytes = 1 << 20;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
  sockaddr_in addr = loopback_sockaddr(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "bind");
    close();
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    set_error(error, "getsockname");
    close();
    return false;
  }
  local_port_ = ntohs(addr.sin_port);
  return true;
}

bool UdpSocket::connect_loopback(std::uint16_t port, std::string* error) {
  sockaddr_in addr = loopback_sockaddr(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    set_error(error, "connect");
    return false;
  }
  return true;
}

bool UdpSocket::send_to(const Endpoint& peer,
                        std::span<const std::uint8_t> payload) {
  sockaddr_in addr = loopback_sockaddr(peer.port);
  addr.sin_addr.s_addr = htonl(peer.addr);
  const auto sent =
      ::sendto(fd_, payload.data(), payload.size(), 0,
               reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (sent < 0) {
    static auto& failures = obs::counter("netio.socket.send_failures");
    failures.inc();
    return false;
  }
  return static_cast<std::size_t>(sent) == payload.size();
}

bool UdpSocket::send(std::span<const std::uint8_t> payload) {
  const auto sent = ::send(fd_, payload.data(), payload.size(), 0);
  if (sent < 0) {
    static auto& failures = obs::counter("netio.socket.send_failures");
    failures.inc();
    return false;
  }
  return static_cast<std::size_t>(sent) == payload.size();
}

std::optional<std::size_t> UdpSocket::recv_from(std::span<std::uint8_t> buffer,
                                                Endpoint* peer) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  const auto got = ::recvfrom(fd_, buffer.data(), buffer.size(), 0,
                              reinterpret_cast<sockaddr*>(&addr), &len);
  if (got < 0) return std::nullopt;  // EAGAIN and transient errors alike
  if (peer) {
    peer->addr = ntohl(addr.sin_addr.s_addr);
    peer->port = ntohs(addr.sin_port);
  }
  return static_cast<std::size_t>(got);
}

void UdpSocket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    local_port_ = 0;
  }
}

}  // namespace cs::netio
