#include "netio/resilience.h"

#include <algorithm>

namespace cs::netio {
namespace {

std::uint64_t clamp_rto(std::uint64_t rto_us,
                        const RtoEstimator::Options& options) noexcept {
  return std::clamp(rto_us, options.min_us, options.max_us);
}

}  // namespace

RtoEstimator::RtoEstimator(Options options) noexcept : options_(options) {
  if (options_.min_us == 0) options_.min_us = 1;
  if (options_.max_us < options_.min_us) options_.max_us = options_.min_us;
  rto_us_ = clamp_rto(options_.initial_us, options_);
}

void RtoEstimator::observe_rtt(std::uint64_t rtt_us) noexcept {
  const double rtt = static_cast<double>(rtt_us);
  if (!seeded_) {
    // First sample: SRTT <- R, RTTVAR <- R/2 (RFC 6298 §2.2).
    seeded_ = true;
    srtt_us_ = rtt;
    rttvar_us_ = rtt / 2.0;
  } else {
    // RTTVAR <- (1-beta)RTTVAR + beta|SRTT-R|, SRTT <- (1-alpha)SRTT +
    // alpha R, with beta 1/4 and alpha 1/8 (§2.3) — variance first, from
    // the pre-update SRTT.
    const double err = srtt_us_ > rtt ? srtt_us_ - rtt : rtt - srtt_us_;
    rttvar_us_ = 0.75 * rttvar_us_ + 0.25 * err;
    srtt_us_ = 0.875 * srtt_us_ + 0.125 * rtt;
  }
  // A fresh clean sample replaces any backed-off RTO (§5.7).
  rto_us_ = clamp_rto(
      static_cast<std::uint64_t>(srtt_us_ + 4.0 * rttvar_us_), options_);
}

void RtoEstimator::on_timeout() noexcept {
  rto_us_ = clamp_rto(
      rto_us_ > options_.max_us / 2 ? options_.max_us : rto_us_ * 2,
      options_);
}

RetryBudget::RetryBudget(Options options) noexcept
    : options_(options), tokens_(options.max_tokens) {
  if (options_.max_tokens < 1.0) options_.max_tokens = 1.0;
  if (options_.credit_per_send < 0.0) options_.credit_per_send = 0.0;
  tokens_ = options_.max_tokens;
}

void RetryBudget::on_send() noexcept {
  tokens_ = std::min(options_.max_tokens, tokens_ + options_.credit_per_send);
}

bool RetryBudget::try_spend() noexcept {
  if (tokens_ < 1.0) return false;
  tokens_ -= 1.0;
  return true;
}

CircuitBreaker::CircuitBreaker(Options options) noexcept
    : options_(options) {
  if (options_.failure_threshold == 0) options_.failure_threshold = 1;
}

bool CircuitBreaker::allow(std::uint64_t now_us) noexcept {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now_us - opened_at_us_ < options_.cooldown_us) return false;
      state_ = State::kHalfOpen;
      probe_in_flight_ = true;
      return true;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::on_success() noexcept {
  state_ = State::kClosed;
  failures_ = 0;
  probe_in_flight_ = false;
}

void CircuitBreaker::on_failure(std::uint64_t now_us) noexcept {
  ++failures_;
  if (state_ == State::kHalfOpen || failures_ >= options_.failure_threshold) {
    if (state_ != State::kOpen) ++trips_;
    state_ = State::kOpen;
    opened_at_us_ = now_us;
    probe_in_flight_ = false;
  }
}

void CircuitBreaker::on_abandon() noexcept {
  if (state_ == State::kHalfOpen) probe_in_flight_ = false;
}

}  // namespace cs::netio
