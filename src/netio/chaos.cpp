#include "netio/chaos.h"

#include <charconv>
#include <cmath>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/rng.h"

namespace cs::netio {
namespace {

/// Per-impairment salts (the fault::Plan construction): one profile seed
/// yields five unrelated ShardedRng roots.
constexpr std::uint64_t kDropSalt = 0xD209D209D209D209ULL;
constexpr std::uint64_t kDupSalt = 0xD0B1ED0B1ED0B1EDULL;
constexpr std::uint64_t kReorderSalt = 0x2E02DE22E02DE20AULL;
constexpr std::uint64_t kCorruptSalt = 0xC0221271C0221271ULL;
constexpr std::uint64_t kDelaySalt = 0xDE1A7DE1A7DE1A70ULL;

/// Folded into the stream shard for server->client decisions so the two
/// directions of one exchange draw from unrelated streams.
constexpr std::uint64_t kServerDirSalt = 0x5E22E25E22E25E22ULL;

/// Fixed-point golden-ratio step; attempt n shifts the shard far from
/// attempt n-1 so retransmit decisions are independent draws.
constexpr std::uint64_t kAttemptStep = 0x9E3779B97F4A7C15ULL;

/// Floor under the reorder/dup holdback so a zero-delay profile still
/// moves the held datagram behind its successors on the timer wheel.
constexpr std::uint64_t kHoldbackFloorUs = 200;

std::uint64_t shard_of(ChaosDirection direction, std::uint64_t key,
                       std::uint32_t attempt) noexcept {
  std::uint64_t shard = key ^ ((attempt + 1) * kAttemptStep);
  if (direction == ChaosDirection::kServerToClient) shard ^= kServerDirSalt;
  return shard;
}

bool bernoulli(const exec::ShardedRng& root, std::uint64_t shard,
               double rate) noexcept {
  util::Rng rng{root.stream_seed(shard)};
  return rng.uniform01() < rate;
}

/// Value stream for one decision, independent of the decision draw
/// (the fault::Plan::stream idiom).
util::Rng value_stream(const exec::ShardedRng& root,
                       std::uint64_t shard) noexcept {
  util::Rng rng{root.stream_seed(shard)};
  rng();
  return rng;
}

std::optional<double> parse_rate(std::string_view text) noexcept {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (!std::isfinite(value) || value < 0.0 || value > 1.0)
    return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) noexcept {
  std::uint64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

bool ChaosProfile::any() const noexcept {
  return drop > 0.0 || dup > 0.0 || reorder > 0.0 || corrupt > 0.0 ||
         delay_us > 0 || jitter_us > 0;
}

std::optional<ChaosProfile> ChaosProfile::parse(
    std::string_view text) noexcept {
  ChaosProfile profile;
  if (text.empty()) return std::nullopt;
  enum Field { kDrop, kDup, kReorder, kCorrupt, kDelay, kJitter, kSeed };
  bool seen[kSeed + 1] = {};
  while (!text.empty()) {
    const auto comma = text.find(',');
    const auto entry = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    // A comma must be followed by another entry; "drop=0.1," is malformed.
    if (comma != std::string_view::npos && text.empty()) return std::nullopt;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = entry.substr(0, eq);
    const auto value = entry.substr(eq + 1);

    double* rate_slot = nullptr;
    std::uint64_t* u64_slot = nullptr;
    Field field = kDrop;
    if (key == "drop") rate_slot = &profile.drop, field = kDrop;
    else if (key == "dup") rate_slot = &profile.dup, field = kDup;
    else if (key == "reorder") rate_slot = &profile.reorder, field = kReorder;
    else if (key == "corrupt") rate_slot = &profile.corrupt, field = kCorrupt;
    else if (key == "delay_us") u64_slot = &profile.delay_us, field = kDelay;
    else if (key == "jitter_us")
      u64_slot = &profile.jitter_us, field = kJitter;
    else if (key == "seed") u64_slot = &profile.seed, field = kSeed;
    else
      return std::nullopt;
    if (seen[field]) return std::nullopt;
    seen[field] = true;
    if (rate_slot) {
      const auto parsed = parse_rate(value);
      if (!parsed) return std::nullopt;
      *rate_slot = *parsed;
    } else {
      const auto parsed = parse_u64(value);
      if (!parsed) return std::nullopt;
      *u64_slot = *parsed;
    }
  }
  return profile;
}

ChaosProfile chaos_profile_from_env() {
  const auto text = util::env_text(util::Knob::kChaos);
  if (!text) return ChaosProfile{};
  const auto parsed = ChaosProfile::parse(*text);
  if (!parsed) {
    obs::log_warn(
        "netio.chaos", "{}",
        util::env_malformed(
            util::Knob::kChaos, *text,
            "drop=P,dup=P,reorder=P,delay_us=N,jitter_us=N,corrupt=P,seed=N "
            "with P in [0,1]"));
    return ChaosProfile{};
  }
  return *parsed;
}

ChaosLink::ChaosLink(const ChaosProfile& profile, unsigned max_attempts)
    : profile_(profile),
      drop_budget_(max_attempts > 1 ? max_attempts - 1 : 0),
      drop_root_(profile.seed ^ kDropSalt),
      dup_root_(profile.seed ^ kDupSalt),
      reorder_root_(profile.seed ^ kReorderSalt),
      corrupt_root_(profile.seed ^ kCorruptSalt),
      delay_root_(profile.seed ^ kDelaySalt) {}

std::uint64_t ChaosLink::holdback_us() const noexcept {
  return 2 * (profile_.delay_us + profile_.jitter_us) + kHoldbackFloorUs;
}

std::uint64_t ChaosLink::max_latency_us() const noexcept {
  std::uint64_t latency = profile_.delay_us + profile_.jitter_us;
  if (profile_.reorder > 0.0) latency += holdback_us();
  return latency;
}

ChaosLink::Verdict ChaosLink::decide(ChaosDirection direction,
                                     std::uint64_t exchange_key,
                                     std::size_t frame_size) {
  static auto& drops = obs::counter("netio.chaos.drops");
  static auto& forced = obs::counter("netio.chaos.forced_deliveries");
  static auto& dups = obs::counter("netio.chaos.dups");
  static auto& reorders = obs::counter("netio.chaos.reorders");
  static auto& delays = obs::counter("netio.chaos.delays");
  static auto& corrupts = obs::counter("netio.chaos.corrupts");

  Verdict verdict;
  util::LockGuard lock{mutex_};
  auto& state = keys_[exchange_key];
  const std::uint32_t attempt =
      state.attempts[static_cast<std::size_t>(direction)]++;
  const std::uint64_t shard = shard_of(direction, exchange_key, attempt);

  if (profile_.drop > 0.0 && bernoulli(drop_root_, shard, profile_.drop)) {
    if (state.drops < drop_budget_) {
      ++state.drops;
      drops.inc();
      verdict.deliver = false;
      return verdict;
    }
    // Budget spent: the clamp force-delivers so the exchange's final
    // round always completes — the survivability contract.
    forced.inc();
  }
  if (profile_.delay_us > 0 || profile_.jitter_us > 0) {
    verdict.delay_us = profile_.delay_us;
    if (profile_.jitter_us > 0)
      verdict.delay_us +=
          value_stream(delay_root_, shard).next_below(profile_.jitter_us + 1);
    if (verdict.delay_us > 0) delays.inc();
  }
  if (profile_.reorder > 0.0 &&
      bernoulli(reorder_root_, shard, profile_.reorder)) {
    // Bounded holdback: the datagram falls behind anything sent within
    // the next holdback window, then goes out — reordering, not loss.
    verdict.delay_us += holdback_us();
    reorders.inc();
  }
  if (profile_.dup > 0.0 && bernoulli(dup_root_, shard, profile_.dup)) {
    verdict.duplicate = true;
    verdict.duplicate_delay_us = verdict.delay_us + holdback_us();
    dups.inc();
  }
  if (profile_.corrupt > 0.0 && frame_size > 0 &&
      bernoulli(corrupt_root_, shard, profile_.corrupt)) {
    auto stream = value_stream(corrupt_root_, shard);
    verdict.corrupt_offset =
        static_cast<std::size_t>(stream.next_below(frame_size));
    verdict.corrupt_mask =
        static_cast<std::uint8_t>(1u << stream.next_below(8));
    corrupts.inc();
  }
  return verdict;
}

}  // namespace cs::netio
