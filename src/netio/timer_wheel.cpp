#include "netio/timer_wheel.h"

#include <algorithm>
#include <tuple>

namespace cs::netio {

TimerWheel::TimerWheel(std::uint64_t tick_us, std::size_t slots)
    : tick_us_(tick_us ? tick_us : 1), slots_(slots ? slots : 1) {}

TimerWheel::Token TimerWheel::schedule(std::uint64_t deadline_us,
                                       std::function<void()> fn) {
  const Token token = next_token_++;
  // Park already-due timers in the current tick's slot so the next
  // advance() sweep finds them; their true slot may be behind the cursor.
  slots_[slot_of(std::max(deadline_us, last_advance_us_))].push_back(token);
  timers_.emplace(token, Timer{deadline_us, token, std::move(fn)});
  return token;
}

bool TimerWheel::cancel(Token token) { return timers_.erase(token) > 0; }

std::optional<std::uint64_t> TimerWheel::next_deadline() const {
  std::optional<std::uint64_t> earliest;
  for (const auto& [token, timer] : timers_)
    if (!earliest || timer.deadline_us < *earliest)
      earliest = timer.deadline_us;
  return earliest;
}

std::vector<std::function<void()>> TimerWheel::advance(std::uint64_t now_us) {
  // Time never runs backwards here even if the caller's clock does: a
  // regressed now would underflow the span arithmetic below into a
  // skipped sweep, leaving due timers stranded for up to a revolution.
  if (now_us < last_advance_us_) now_us = last_advance_us_;
  std::vector<Timer> due;
  if (!timers_.empty()) {
    // Sweep each slot between the last advance and now once; when the
    // elapsed span laps the wheel, one full revolution covers everything.
    // Every due timer is always in the swept window — it parked at
    // slot_of(max(deadline, last_advance)), and consecutive windows tile
    // the tick line with a one-revolution clamp covering any gap — so one
    // batch holds *all* timers due at `now_us`, and the (deadline,
    // sequence) sort below makes the firing order unconditional: equal
    // deadlines fire in schedule order no matter how many rotations apart
    // they were scheduled.
    const std::uint64_t first_tick = last_advance_us_ / tick_us_;
    const std::uint64_t last_tick = now_us / tick_us_;
    const std::uint64_t span =
        std::min<std::uint64_t>(last_tick - first_tick, slots_.size() - 1);
    for (std::uint64_t t = last_tick - span; t <= last_tick; ++t) {
      auto& slot = slots_[static_cast<std::size_t>(t % slots_.size())];
      std::erase_if(slot, [&](Token token) {
        const auto it = timers_.find(token);
        if (it == timers_.end()) return true;  // cancelled: drop the stub
        if (it->second.deadline_us > now_us) return false;  // future lap
        due.push_back(std::move(it->second));
        timers_.erase(it);
        return true;
      });
    }
  }
  last_advance_us_ = std::max(last_advance_us_, now_us);
  std::sort(due.begin(), due.end(), [](const Timer& a, const Timer& b) {
    return std::tie(a.deadline_us, a.sequence) <
           std::tie(b.deadline_us, b.sequence);
  });
  std::vector<std::function<void()>> fired;
  fired.reserve(due.size());
  for (auto& timer : due) fired.push_back(std::move(timer.fn));
  return fired;
}

}  // namespace cs::netio
