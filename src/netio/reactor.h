#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "netio/timer_wheel.h"
#include "util/sync.h"

/// Single-threaded epoll event loop: the heart of the netio subsystem.
///
/// One Reactor owns one epoll instance and one loop thread. File
/// descriptors are registered (before start) with a readable-callback;
/// timers are scheduled from any thread onto a hashed TimerWheel and fire
/// on the loop thread. An eventfd wakes the loop when a cross-thread
/// schedule moves the earliest deadline closer than the loop's current
/// sleep — in the steady state (retransmit timers far out, responses
/// arriving promptly) schedules are lock-insert-unlock with no syscall.
///
/// Timing here is the monotonic clock read directly (not through a seeded
/// source): epoll timeouts and retransmit deadlines are *transport*
/// timing, which the determinism story explicitly leaves free to vary —
/// answer content stays a pure function of the world seed. cslint's D1
/// check sanctions src/netio/reactor for exactly this reason, the same
/// way obs/ is sanctioned for span timing.
namespace cs::netio {

class Reactor {
 public:
  /// `thread_name` becomes the loop thread's obs trace lane
  /// ("netio-server-0", "netio-client", ...).
  explicit Reactor(std::string thread_name);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Registers `fd` for readable events; `on_readable` runs on the loop
  /// thread and must drain the fd to EAGAIN (level-triggered would be
  /// forgiving, but we register edge-agnostic level mode anyway — drain
  /// keeps the loop from spinning). Must be called before start().
  bool add_fd(int fd, std::function<void()> on_readable);

  /// Schedules `fn` on the loop thread after `delay_us`. Thread-safe.
  TimerWheel::Token run_after(std::uint64_t delay_us,
                              std::function<void()> fn);

  /// Cancels a pending timer; true if it had not fired. Thread-safe.
  bool cancel_timer(TimerWheel::Token token);

  /// Starts the loop thread. No-op if already running.
  void start();

  /// Signals the loop to exit and joins it. Safe to call repeatedly.
  void stop();

  bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// Monotonic microseconds, the loop's time base (exposed so server and
  /// transport stamp latencies on the same clock).
  static std::uint64_t now_us() noexcept;

 private:
  void loop();
  void wake();

  std::string thread_name_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::vector<std::pair<int, std::function<void()>>> fds_;
  std::thread thread_;
  std::atomic<bool> running_{false};

  mutable util::Mutex wheel_mutex_;
  TimerWheel wheel_ CS_GUARDED_BY(wheel_mutex_);
  /// The deadline the loop is currently sleeping toward (us, 0 = none);
  /// run_after only pays the eventfd wakeup when it beats this.
  std::atomic<std::uint64_t> sleep_until_us_{0};
};

}  // namespace cs::netio
