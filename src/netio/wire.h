#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/ipv4.h"

/// Datagram framing for the loopback DNS wire.
///
/// Real sockets carry loopback addresses, but the synthetic world speaks
/// the paper's address plan — vantage-point clients querying authoritative
/// servers at their simulated IPs. A 12-byte frame header carries that
/// identity alongside every DNS payload:
///
///   0      2      3      4        8        12
///   +------+------+------+--------+--------+----------------+
///   | "CS" | ver  | kind | client | server | DNS payload... |
///   +------+------+------+--------+--------+----------------+
///                          u32 BE   u32 BE
///
/// kQuery travels client->server; kResponse carries the authoritative
/// answer back; kUnreachable is the server's fast-fail for a simulated-
/// down or unknown server address (the stand-in for an ICMP port
/// unreachable), its payload echoing the query's 2-byte DNS ID so the
/// client can settle the right in-flight exchange immediately instead of
/// waiting out the retransmit schedule.
namespace cs::netio {

inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::uint8_t kFrameVersion = 1;

enum class FrameKind : std::uint8_t {
  kQuery = 0,
  kResponse = 1,
  kUnreachable = 2,
};

struct Frame {
  FrameKind kind = FrameKind::kQuery;
  net::Ipv4 client;
  net::Ipv4 server;
  std::span<const std::uint8_t> payload;  ///< view into the datagram
};

/// Renders header + payload into one datagram buffer.
std::vector<std::uint8_t> encode_frame(FrameKind kind, net::Ipv4 client,
                                       net::Ipv4 server,
                                       std::span<const std::uint8_t> payload);

/// Parses a datagram; nullopt on short input, bad magic, unknown version,
/// or unknown kind. The payload span aliases `datagram`.
std::optional<Frame> decode_frame(std::span<const std::uint8_t> datagram);

/// The DNS message ID of a wire-format payload (first two bytes,
/// big-endian); nullopt when the payload is too short to carry one.
std::optional<std::uint16_t> dns_id(std::span<const std::uint8_t> payload);

/// Overwrites the DNS message ID in place — the client transport's
/// query-ID multiplexing rewrites outbound IDs to its own in-flight slot
/// and restores the resolver's original ID on the way back.
void rewrite_dns_id(std::span<std::uint8_t> payload, std::uint16_t id);

}  // namespace cs::netio
