#include "netio/wire.h"

namespace cs::netio {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value >> 24));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value));
}

std::uint32_t get_u32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(in[at]) << 24) |
         (static_cast<std::uint32_t>(in[at + 1]) << 16) |
         (static_cast<std::uint32_t>(in[at + 2]) << 8) |
         static_cast<std::uint32_t>(in[at + 3]);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(FrameKind kind, net::Ipv4 client,
                                       net::Ipv4 server,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.push_back('C');
  out.push_back('S');
  out.push_back(kFrameVersion);
  out.push_back(static_cast<std::uint8_t>(kind));
  put_u32(out, client.value());
  put_u32(out, server.value());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<Frame> decode_frame(std::span<const std::uint8_t> datagram) {
  if (datagram.size() < kFrameHeaderSize) return std::nullopt;
  if (datagram[0] != 'C' || datagram[1] != 'S') return std::nullopt;
  if (datagram[2] != kFrameVersion) return std::nullopt;
  if (datagram[3] > static_cast<std::uint8_t>(FrameKind::kUnreachable))
    return std::nullopt;
  Frame frame;
  frame.kind = static_cast<FrameKind>(datagram[3]);
  frame.client = net::Ipv4{get_u32(datagram, 4)};
  frame.server = net::Ipv4{get_u32(datagram, 8)};
  frame.payload = datagram.subspan(kFrameHeaderSize);
  return frame;
}

std::optional<std::uint16_t> dns_id(std::span<const std::uint8_t> payload) {
  if (payload.size() < 2) return std::nullopt;
  return static_cast<std::uint16_t>((payload[0] << 8) | payload[1]);
}

void rewrite_dns_id(std::span<std::uint8_t> payload, std::uint16_t id) {
  if (payload.size() < 2) return;
  payload[0] = static_cast<std::uint8_t>(id >> 8);
  payload[1] = static_cast<std::uint8_t>(id & 0xFF);
}

}  // namespace cs::netio
