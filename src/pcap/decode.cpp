#include "pcap/decode.h"

#include <stdexcept>

#include "net/checksum.h"

namespace cs::pcap {
namespace {

constexpr std::size_t kEthHeaderLen = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
constexpr std::size_t kIpv4MinHeaderLen = 20;
constexpr std::size_t kTcpMinHeaderLen = 20;
constexpr std::size_t kUdpHeaderLen = 8;
constexpr std::size_t kIcmpMinHeaderLen = 8;

// Synthetic MAC addresses for generated frames (locally administered).
constexpr std::uint8_t kSrcMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
constexpr std::uint8_t kDstMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};

std::uint16_t read_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | p[3];
}
void write_u16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
void write_u32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

/// Fills the Ethernet + IPv4 envelope; returns the buffer with the
/// transport segment appended and checksums finalized.
std::vector<std::uint8_t> build_frame(net::Ipv4 src, net::Ipv4 dst,
                                      std::uint8_t proto,
                                      std::span<const std::uint8_t> segment) {
  // The IPv4 total-length field is u16; a larger segment used to wrap it
  // silently and emit a frame decode_frame would reject as short.
  if (kIpv4MinHeaderLen + segment.size() > 0xFFFF)
    throw std::length_error{"pcap: transport segment exceeds IPv4 max length"};
  std::vector<std::uint8_t> frame(kEthHeaderLen + kIpv4MinHeaderLen +
                                  segment.size());
  std::uint8_t* eth = frame.data();
  std::copy(std::begin(kDstMac), std::end(kDstMac), eth);
  std::copy(std::begin(kSrcMac), std::end(kSrcMac), eth + 6);
  write_u16(eth + 12, kEtherTypeIpv4);

  std::uint8_t* ip = eth + kEthHeaderLen;
  ip[0] = 0x45;  // version 4, IHL 5
  ip[1] = 0;     // DSCP/ECN
  write_u16(ip + 2,
            static_cast<std::uint16_t>(kIpv4MinHeaderLen + segment.size()));
  write_u16(ip + 4, 0);       // identification
  write_u16(ip + 6, 0x4000);  // DF
  ip[8] = 64;                 // TTL
  ip[9] = proto;
  write_u16(ip + 10, 0);  // checksum placeholder
  write_u32(ip + 12, src.value());
  write_u32(ip + 16, dst.value());
  const auto ip_cksum =
      net::internet_checksum({ip, kIpv4MinHeaderLen});
  write_u16(ip + 10, ip_cksum);

  std::copy(segment.begin(), segment.end(), ip + kIpv4MinHeaderLen);
  return frame;
}

}  // namespace

// Deliberately uninstrumented: this parser runs in ~6 ns and even a gated
// counter is measurable here. The pipeline counts packets one layer up,
// in FlowTable::add.
std::optional<Decoded> decode_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthHeaderLen + kIpv4MinHeaderLen) return std::nullopt;
  if (read_u16(frame.data() + 12) != kEtherTypeIpv4) return std::nullopt;

  const std::uint8_t* ip = frame.data() + kEthHeaderLen;
  const std::size_t ip_avail = frame.size() - kEthHeaderLen;
  if ((ip[0] >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0F) * 4;
  if (ihl < kIpv4MinHeaderLen || ihl > ip_avail) return std::nullopt;
  const std::size_t total_len = read_u16(ip + 2);
  if (total_len < ihl || total_len > ip_avail) return std::nullopt;

  Decoded out;
  out.ip_total_length = total_len;
  out.tuple.src.addr = net::Ipv4{read_u32(ip + 12)};
  out.tuple.dst.addr = net::Ipv4{read_u32(ip + 16)};

  const std::uint8_t* transport = ip + ihl;
  const std::size_t transport_len = total_len - ihl;

  switch (ip[9]) {
    case 6: {  // TCP
      if (transport_len < kTcpMinHeaderLen) return std::nullopt;
      out.tuple.proto = net::IpProto::kTcp;
      out.tuple.src.port = read_u16(transport);
      out.tuple.dst.port = read_u16(transport + 2);
      out.tcp_seq = read_u32(transport + 4);
      const std::size_t data_offset =
          static_cast<std::size_t>(transport[12] >> 4) * 4;
      if (data_offset < kTcpMinHeaderLen || data_offset > transport_len)
        return std::nullopt;
      out.tcp_flags = TcpFlags::from_byte(transport[13]);
      out.payload = std::span<const std::uint8_t>{
          transport + data_offset, transport_len - data_offset};
      break;
    }
    case 17: {  // UDP
      if (transport_len < kUdpHeaderLen) return std::nullopt;
      out.tuple.proto = net::IpProto::kUdp;
      out.tuple.src.port = read_u16(transport);
      out.tuple.dst.port = read_u16(transport + 2);
      const std::size_t udp_len = read_u16(transport + 4);
      if (udp_len < kUdpHeaderLen || udp_len > transport_len)
        return std::nullopt;
      out.payload = std::span<const std::uint8_t>{transport + kUdpHeaderLen,
                                                  udp_len - kUdpHeaderLen};
      break;
    }
    case 1: {  // ICMP
      if (transport_len < kIcmpMinHeaderLen) return std::nullopt;
      out.tuple.proto = net::IpProto::kIcmp;
      out.icmp_type = transport[0];
      out.payload = std::span<const std::uint8_t>{
          transport + kIcmpMinHeaderLen, transport_len - kIcmpMinHeaderLen};
      break;
    }
    default:
      out.tuple.proto = net::IpProto::kOther;
      out.payload =
          std::span<const std::uint8_t>{transport, transport_len};
      break;
  }
  return out;
}

Packet make_tcp_packet(double timestamp, net::Endpoint src, net::Endpoint dst,
                       TcpFlags flags, std::uint32_t seq,
                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> segment(kTcpMinHeaderLen + payload.size());
  std::uint8_t* tcp = segment.data();
  write_u16(tcp, src.port);
  write_u16(tcp + 2, dst.port);
  write_u32(tcp + 4, seq);
  write_u32(tcp + 8, 0);  // ack number (synthetic traces don't track it)
  tcp[12] = 5 << 4;       // data offset: 5 words
  tcp[13] = flags.to_byte();
  write_u16(tcp + 14, 65535);  // window
  write_u16(tcp + 16, 0);      // checksum placeholder
  write_u16(tcp + 18, 0);      // urgent
  std::copy(payload.begin(), payload.end(), tcp + kTcpMinHeaderLen);
  write_u16(tcp + 16,
            net::transport_checksum(src.addr, dst.addr, 6, segment));
  Packet p;
  p.timestamp = timestamp;
  p.data = build_frame(src.addr, dst.addr, 6, segment);
  return p;
}

Packet make_udp_packet(double timestamp, net::Endpoint src, net::Endpoint dst,
                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> segment(kUdpHeaderLen + payload.size());
  std::uint8_t* udp = segment.data();
  write_u16(udp, src.port);
  write_u16(udp + 2, dst.port);
  write_u16(udp + 4, static_cast<std::uint16_t>(segment.size()));
  write_u16(udp + 6, 0);
  std::copy(payload.begin(), payload.end(), udp + kUdpHeaderLen);
  write_u16(udp + 6,
            net::transport_checksum(src.addr, dst.addr, 17, segment));
  Packet p;
  p.timestamp = timestamp;
  p.data = build_frame(src.addr, dst.addr, 17, segment);
  return p;
}

Packet make_icmp_packet(double timestamp, net::Ipv4 src, net::Ipv4 dst,
                        std::uint8_t type,
                        std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> segment(kIcmpMinHeaderLen + payload.size());
  segment[0] = type;
  segment[1] = 0;  // code
  std::copy(payload.begin(), payload.end(),
            segment.begin() + kIcmpMinHeaderLen);
  const auto cksum = net::internet_checksum(segment);
  segment[2] = static_cast<std::uint8_t>(cksum >> 8);
  segment[3] = static_cast<std::uint8_t>(cksum);
  Packet p;
  p.timestamp = timestamp;
  p.data = build_frame(src, dst, 1, segment);
  return p;
}

}  // namespace cs::pcap
