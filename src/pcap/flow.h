#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "pcap/decode.h"
#include "pcap/packet.h"

/// Flow assembly: groups decoded packets into logical bidirectional flows,
/// the unit Bro reports on and the unit of every flow statistic in §3 of
/// the paper (counts, sizes, durations).
namespace cs::pcap {

/// One assembled flow.
struct Flow {
  /// 5-tuple oriented from the initiator's perspective (the sender of the
  /// first packet / SYN).
  net::FiveTuple tuple;
  double first_ts = 0.0;
  double last_ts = 0.0;
  std::uint64_t packets = 0;
  /// Sum of IP total lengths in both directions (the byte-volume measure
  /// used for Tables 1-2).
  std::uint64_t bytes = 0;
  std::uint64_t bytes_to_responder = 0;    ///< initiator -> responder
  std::uint64_t bytes_to_initiator = 0;    ///< responder -> initiator
  bool saw_syn = false;
  bool saw_fin = false;
  bool saw_rst = false;
  std::uint8_t icmp_type = 0;

  /// Reassembled application payloads per direction, capped by the table's
  /// payload limit (enough for header-level HTTP/TLS analysis).
  std::vector<std::uint8_t> payload_to_responder;
  std::vector<std::uint8_t> payload_to_initiator;

  double duration() const noexcept { return last_ts - first_ts; }
};

class FlowTable {
 public:
  struct Options {
    /// Gap after which a tuple reuse starts a new logical flow.
    double idle_timeout_sec = 300.0;
    /// Per-direction payload retention cap.
    std::size_t payload_cap = 256 * 1024;
  };

  FlowTable();
  explicit FlowTable(Options options);

  /// Feeds one captured packet; undecodable frames are counted and dropped.
  void add(const Packet& packet);

  /// Feeds a decoded packet directly (used when the caller already parsed).
  void add_decoded(const Decoded& decoded, double timestamp);

  /// Flushes every open flow and returns all completed flows, ordered by
  /// first timestamp.
  std::vector<Flow> finish();

  std::uint64_t undecodable_packets() const noexcept { return undecodable_; }
  std::size_t open_flows() const noexcept { return open_.size(); }

 private:
  void finalize(Flow&& flow);

  Options options_;
  std::unordered_map<net::FiveTuple, Flow, net::FiveTupleHash> open_;
  std::vector<Flow> done_;
  std::uint64_t undecodable_ = 0;
};

/// Incremental flow assembly for streaming captures: feed() batches of
/// packets as the generator produces them, finish() once at the end.
/// Each batch decodes in parallel over the exec pool and lands in fixed
/// hash-sharded FlowTables that persist across batches (a canonical
/// 5-tuple always owns one shard, so every flow still sees its packets
/// in capture order). Feeding any batch split of a capture produces
/// byte-identical flows to one assemble_flows() call over the whole
/// thing — assemble_flows is in fact a single feed — which is what lets
/// the paper-scale pipeline turn a multi-hundred-GB synthetic trace into
/// flows without ever materializing it.
class FlowAssembler {
 public:
  explicit FlowAssembler(FlowTable::Options options = {});

  /// Decodes and shards one batch. The packet buffers only need to stay
  /// alive through the call (payload bytes are copied into open flows).
  void feed(std::span<const Packet> packets);

  /// Flushes every shard and returns all flows under the same total
  /// order assemble_flows uses: (first_ts, tuple, packets, bytes), so
  /// the result is independent of batching, sharding, and CS_THREADS.
  std::vector<Flow> finish();

  std::uint64_t packets_fed() const noexcept { return packets_fed_; }
  /// Wire bytes across every batch fed so far (u64: a paper-scale
  /// capture passes 2^32 bytes within the first endpoint).
  std::uint64_t bytes_fed() const noexcept { return bytes_fed_; }
  std::uint64_t undecodable_packets() const noexcept { return undecodable_; }

 private:
  std::vector<FlowTable> tables_;  ///< one per fixed hash shard
  std::uint64_t packets_fed_ = 0;
  std::uint64_t bytes_fed_ = 0;
  std::uint64_t undecodable_ = 0;
};

/// Assembles a whole capture into flows in one call, fanning out over the
/// exec pool: packets decode in parallel, then flows build in hash-sharded
/// FlowTables (a canonical 5-tuple always lands in one shard, so every
/// flow is assembled from its packets in timestamp order exactly as a
/// single table would). The shard count is fixed — never derived from
/// CS_THREADS — and the merged result is sorted by a total order
/// (first_ts, tuple, packets, bytes), so output is byte-identical at any
/// thread count. `undecodable`, when non-null, receives the dropped-frame
/// count a single FlowTable would have reported. Implemented as one
/// FlowAssembler feed, so the streaming and batch paths cannot diverge.
std::vector<Flow> assemble_flows(std::span<const Packet> packets,
                                 FlowTable::Options options = {},
                                 std::uint64_t* undecodable = nullptr);

}  // namespace cs::pcap
