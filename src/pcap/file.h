#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "pcap/packet.h"

/// Classic libpcap file format (magic 0xa1b2c3d4, microsecond timestamps,
/// LINKTYPE_ETHERNET). Traces synthesized by cs_synth are written through
/// PcapWriter and re-read by PcapReader, so the analysis pipeline consumes
/// the same on-disk artifact tcpdump would have produced.
namespace cs::pcap {

/// Streaming writer. All packets are written with equal capture and wire
/// lengths (we synthesize full packets; there is no snaplen truncation).
class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the global header.
  /// Throws std::runtime_error if the file cannot be opened.
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  void write(const Packet& packet);
  std::uint64_t packets_written() const noexcept { return count_; }

  /// Flushes and closes early (also done by the destructor).
  void close();

 private:
  struct Impl;
  Impl* impl_;
  std::uint64_t count_ = 0;
};

/// Streaming reader. When a cs::fault plan is active (CS_FAULT), read
/// frames may come back deterministically truncated or corrupted, keyed
/// by record index — the decode layer rejects them cleanly.
class PcapReader {
 public:
  /// Opens `path` and validates the global header.
  /// Throws std::runtime_error on open failure or bad magic.
  explicit PcapReader(const std::string& path);
  ~PcapReader();

  PcapReader(const PcapReader&) = delete;
  PcapReader& operator=(const PcapReader&) = delete;

  /// Next packet, or nullopt at end of file. Throws on a corrupt record.
  std::optional<Packet> next();

  std::uint64_t packets_read() const noexcept { return count_; }

 private:
  struct Impl;
  Impl* impl_;
  std::uint64_t count_ = 0;
};

/// Convenience: reads a whole file into memory.
std::vector<Packet> read_all(const std::string& path);

/// Convenience: writes a whole vector.
void write_all(const std::string& path, const std::vector<Packet>& packets);

}  // namespace cs::pcap
