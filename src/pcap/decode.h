#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/five_tuple.h"
#include "pcap/packet.h"

/// Ethernet/IPv4/TCP/UDP/ICMP encoders and decoders.
///
/// Encoders produce fully-formed frames with correct lengths and Internet
/// checksums; decoders validate structure and bounds (but tolerate bad
/// checksums, as capture analyzers conventionally do).
namespace cs::pcap {

/// TCP flag bits (subset we use).
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::uint8_t to_byte() const noexcept {
    return static_cast<std::uint8_t>((fin ? 0x01 : 0) | (syn ? 0x02 : 0) |
                                     (rst ? 0x04 : 0) | (psh ? 0x08 : 0) |
                                     (ack ? 0x10 : 0));
  }
  static TcpFlags from_byte(std::uint8_t b) noexcept {
    return {.syn = (b & 0x02) != 0,
            .ack = (b & 0x10) != 0,
            .fin = (b & 0x01) != 0,
            .rst = (b & 0x04) != 0,
            .psh = (b & 0x08) != 0};
  }
};

/// A decoded packet: transport identifiers plus a view of the payload
/// within the original frame buffer (valid only while that buffer lives).
struct Decoded {
  net::FiveTuple tuple;
  TcpFlags tcp_flags;           ///< meaningful only when proto == kTcp
  std::uint32_t tcp_seq = 0;    ///< meaningful only when proto == kTcp
  std::uint8_t icmp_type = 0;   ///< meaningful only when proto == kIcmp
  std::size_t ip_total_length = 0;
  std::span<const std::uint8_t> payload;
};

/// Parses an Ethernet/IPv4 frame. Returns nullopt for non-IPv4 ethertypes,
/// truncated headers, bad IHL, or lengths inconsistent with the buffer.
std::optional<Decoded> decode_frame(std::span<const std::uint8_t> frame);

/// Builders (all produce complete Ethernet frames).
Packet make_tcp_packet(double timestamp, net::Endpoint src, net::Endpoint dst,
                       TcpFlags flags, std::uint32_t seq,
                       std::span<const std::uint8_t> payload);
Packet make_udp_packet(double timestamp, net::Endpoint src, net::Endpoint dst,
                       std::span<const std::uint8_t> payload);
Packet make_icmp_packet(double timestamp, net::Ipv4 src, net::Ipv4 dst,
                        std::uint8_t type,
                        std::span<const std::uint8_t> payload = {});

}  // namespace cs::pcap
