#pragma once

#include <cstdint>
#include <span>
#include <vector>

/// A captured (or synthesized) packet: a timestamp plus raw link-layer
/// bytes, exactly what one libpcap record holds.
namespace cs::pcap {

struct Packet {
  /// Seconds since the epoch; sub-second precision carried in the double
  /// (written to pcap as sec/usec).
  double timestamp = 0.0;
  std::vector<std::uint8_t> data;

  std::size_t size() const noexcept { return data.size(); }
  std::span<const std::uint8_t> bytes() const noexcept { return data; }
};

}  // namespace cs::pcap
