#include "pcap/file.h"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "fault/fault.h"
#include "obs/metrics.h"

namespace cs::pcap {
namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // usec timestamps, host order
constexpr std::uint32_t kLinkTypeEthernet = 1;
constexpr std::uint32_t kSnapLen = 262144;

void put_u32(std::FILE* f, std::uint32_t v) {
  std::fwrite(&v, sizeof(v), 1, f);
}
void put_u16(std::FILE* f, std::uint16_t v) {
  std::fwrite(&v, sizeof(v), 1, f);
}

bool get_u32(std::FILE* f, std::uint32_t& v) {
  return std::fread(&v, sizeof(v), 1, f) == 1;
}

}  // namespace

struct PcapWriter::Impl {
  std::FILE* file = nullptr;
};

PcapWriter::PcapWriter(const std::string& path) : impl_(new Impl) {
  impl_->file = std::fopen(path.c_str(), "wb");
  if (!impl_->file) {
    delete impl_;
    throw std::runtime_error{"PcapWriter: cannot open " + path};
  }
  put_u32(impl_->file, kMagic);
  put_u16(impl_->file, 2);  // version major
  put_u16(impl_->file, 4);  // version minor
  put_u32(impl_->file, 0);  // thiszone
  put_u32(impl_->file, 0);  // sigfigs
  put_u32(impl_->file, kSnapLen);
  put_u32(impl_->file, kLinkTypeEthernet);
}

PcapWriter::~PcapWriter() {
  close();
  delete impl_;
}

void PcapWriter::close() {
  if (impl_->file) {
    std::fclose(impl_->file);
    impl_->file = nullptr;
  }
}

void PcapWriter::write(const Packet& packet) {
  if (!impl_->file) throw std::runtime_error{"PcapWriter: already closed"};
  // The record header's length fields are u32 and our own reader rejects
  // anything past the advertised snaplen; writing such a frame would
  // produce a file we (and tcpdump) refuse to read back, so fail loudly
  // at the source instead.
  if (packet.data.size() > kSnapLen)
    throw std::length_error{"PcapWriter: frame exceeds snaplen"};
  const auto sec = static_cast<std::uint32_t>(packet.timestamp);
  const auto usec = static_cast<std::uint32_t>(
      std::llround((packet.timestamp - sec) * 1e6) % 1000000);
  put_u32(impl_->file, sec);
  put_u32(impl_->file, usec);
  put_u32(impl_->file, static_cast<std::uint32_t>(packet.data.size()));
  put_u32(impl_->file, static_cast<std::uint32_t>(packet.data.size()));
  if (!packet.data.empty())
    std::fwrite(packet.data.data(), 1, packet.data.size(), impl_->file);
  ++count_;
}

struct PcapReader::Impl {
  std::FILE* file = nullptr;
};

PcapReader::PcapReader(const std::string& path) : impl_(new Impl) {
  impl_->file = std::fopen(path.c_str(), "rb");
  if (!impl_->file) {
    delete impl_;
    throw std::runtime_error{"PcapReader: cannot open " + path};
  }
  std::uint32_t magic = 0;
  if (!get_u32(impl_->file, magic) || magic != kMagic) {
    std::fclose(impl_->file);
    delete impl_;
    throw std::runtime_error{"PcapReader: bad magic in " + path};
  }
  // Skip the remaining 20 header bytes.
  if (std::fseek(impl_->file, 20, SEEK_CUR) != 0) {
    std::fclose(impl_->file);
    delete impl_;
    throw std::runtime_error{"PcapReader: truncated header in " + path};
  }
}

PcapReader::~PcapReader() {
  if (impl_->file) std::fclose(impl_->file);
  delete impl_;
}

std::optional<Packet> PcapReader::next() {
  std::uint32_t sec = 0;
  if (!get_u32(impl_->file, sec)) return std::nullopt;  // clean EOF
  std::uint32_t usec = 0, caplen = 0, wirelen = 0;
  if (!get_u32(impl_->file, usec) || !get_u32(impl_->file, caplen) ||
      !get_u32(impl_->file, wirelen))
    throw std::runtime_error{"PcapReader: truncated record header"};
  if (caplen > kSnapLen)
    throw std::runtime_error{"PcapReader: capture length exceeds snaplen"};
  Packet packet;
  packet.timestamp = sec + usec * 1e-6;
  packet.data.resize(caplen);
  if (caplen &&
      std::fread(packet.data.data(), 1, caplen, impl_->file) != caplen)
    throw std::runtime_error{"PcapReader: truncated packet body"};

  // Seeded capture damage, keyed by record index: a short snaplen-style
  // cut or a flipped byte, exactly what a lossy capture host produces.
  // Downstream decode rejects the frame; flow assembly counts it and
  // moves on.
  if (const auto* plan = fault::active_plan(); plan && !packet.data.empty())
      [[unlikely]] {
    const std::uint64_t index = count_;
    if (plan->decide(fault::Kind::kTruncate, index)) {
      static auto& truncated = obs::counter("fault.pcap.truncated");
      truncated.inc();
      auto rng = plan->stream(fault::Kind::kTruncate, index);
      packet.data.resize(rng.next_below(packet.data.size()));
    }
    if (!packet.data.empty() && plan->decide(fault::Kind::kCorrupt, index)) {
      static auto& corrupted = obs::counter("fault.pcap.corrupted");
      corrupted.inc();
      auto rng = plan->stream(fault::Kind::kCorrupt, index);
      packet.data[rng.next_below(packet.data.size())] ^= 0xFF;
    }
  }
  ++count_;
  return packet;
}

std::vector<Packet> read_all(const std::string& path) {
  PcapReader reader{path};
  std::vector<Packet> out;
  while (auto p = reader.next()) out.push_back(*std::move(p));
  return out;
}

void write_all(const std::string& path, const std::vector<Packet>& packets) {
  PcapWriter writer{path};
  for (const auto& p : packets) writer.write(p);
}

}  // namespace cs::pcap
