#include "pcap/flow.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cs::pcap {

FlowTable::FlowTable() : FlowTable(Options{}) {}

FlowTable::FlowTable(Options options) : options_(options) {}

void FlowTable::add(const Packet& packet) {
  const auto decoded = decode_frame(packet.bytes());
  // Per-packet counters hide behind the detailed-metrics gate; the flag
  // check is noise next to the flow-table hash lookup below.
  if (obs::detailed_metrics()) {
    static auto& packets_metric = obs::counter("pcap.decode.packets");
    static auto& bytes_metric = obs::counter("pcap.decode.bytes");
    packets_metric.inc();
    bytes_metric.inc(packet.data.size());
    if (!decoded) {
      static auto& truncated_metric = obs::counter("pcap.decode.truncated");
      truncated_metric.inc();
    }
  }
  if (!decoded) {
    ++undecodable_;
    return;
  }
  add_decoded(*decoded, packet.timestamp);
}

void FlowTable::add_decoded(const Decoded& decoded, double timestamp) {
  const auto key = decoded.tuple.canonical();
  auto it = open_.find(key);

  if (it != open_.end()) {
    Flow& flow = it->second;
    const bool idle =
        timestamp - flow.last_ts > options_.idle_timeout_sec;
    const bool reopened = flow.tuple.proto == net::IpProto::kTcp &&
                          (flow.saw_fin || flow.saw_rst) &&
                          decoded.tcp_flags.syn && !decoded.tcp_flags.ack;
    if (idle || reopened) {
      finalize(std::move(flow));
      open_.erase(it);
      it = open_.end();
    }
  }

  if (it == open_.end()) {
    Flow flow;
    flow.tuple = decoded.tuple;  // first packet's direction = initiator
    flow.first_ts = timestamp;
    flow.last_ts = timestamp;
    it = open_.emplace(key, std::move(flow)).first;
  }

  Flow& flow = it->second;
  flow.last_ts = std::max(flow.last_ts, timestamp);
  ++flow.packets;
  flow.bytes += decoded.ip_total_length;

  const bool from_initiator = decoded.tuple == flow.tuple;
  auto& dir_bytes =
      from_initiator ? flow.bytes_to_responder : flow.bytes_to_initiator;
  dir_bytes += decoded.ip_total_length;

  if (decoded.tuple.proto == net::IpProto::kTcp) {
    flow.saw_syn |= decoded.tcp_flags.syn;
    flow.saw_fin |= decoded.tcp_flags.fin;
    flow.saw_rst |= decoded.tcp_flags.rst;
  } else if (decoded.tuple.proto == net::IpProto::kIcmp && flow.packets == 1) {
    flow.icmp_type = decoded.icmp_type;
  }

  if (!decoded.payload.empty()) {
    auto& buf = from_initiator ? flow.payload_to_responder
                               : flow.payload_to_initiator;
    const std::size_t room =
        buf.size() < options_.payload_cap ? options_.payload_cap - buf.size()
                                          : 0;
    const std::size_t take = std::min(room, decoded.payload.size());
    buf.insert(buf.end(), decoded.payload.begin(),
               decoded.payload.begin() + take);
  }
}

void FlowTable::finalize(Flow&& flow) { done_.push_back(std::move(flow)); }

std::vector<Flow> FlowTable::finish() {
  obs::Span span{"pcap.flow.finish"};
  for (auto& [key, flow] : open_) done_.push_back(std::move(flow));
  open_.clear();
  std::sort(done_.begin(), done_.end(),
            [](const Flow& a, const Flow& b) {
              return a.first_ts < b.first_ts;
            });
  static auto& flows_metric = obs::counter("pcap.flow.flows");
  flows_metric.inc(done_.size());
  return std::move(done_);
}

}  // namespace cs::pcap
