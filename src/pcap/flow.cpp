#include "pcap/flow.h"

#include <algorithm>
#include <optional>
#include <tuple>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cs::pcap {

FlowTable::FlowTable() : FlowTable(Options{}) {}

FlowTable::FlowTable(Options options) : options_(options) {}

void FlowTable::add(const Packet& packet) {
  const auto decoded = decode_frame(packet.bytes());
  // Per-packet counters hide behind the detailed-metrics gate; the flag
  // check is noise next to the flow-table hash lookup below.
  if (obs::detailed_metrics()) {
    static auto& packets_metric = obs::counter("pcap.decode.packets");
    static auto& bytes_metric = obs::counter("pcap.decode.bytes");
    packets_metric.inc();
    bytes_metric.inc(packet.data.size());
    if (!decoded) {
      static auto& truncated_metric = obs::counter("pcap.decode.truncated");
      truncated_metric.inc();
    }
  }
  if (!decoded) {
    ++undecodable_;
    return;
  }
  add_decoded(*decoded, packet.timestamp);
}

void FlowTable::add_decoded(const Decoded& decoded, double timestamp) {
  const auto key = decoded.tuple.canonical();
  auto it = open_.find(key);

  if (it != open_.end()) {
    Flow& flow = it->second;
    const bool idle =
        timestamp - flow.last_ts > options_.idle_timeout_sec;
    const bool reopened = flow.tuple.proto == net::IpProto::kTcp &&
                          (flow.saw_fin || flow.saw_rst) &&
                          decoded.tcp_flags.syn && !decoded.tcp_flags.ack;
    if (idle || reopened) {
      finalize(std::move(flow));
      open_.erase(it);
      it = open_.end();
    }
  }

  if (it == open_.end()) {
    Flow flow;
    flow.tuple = decoded.tuple;  // first packet's direction = initiator
    flow.first_ts = timestamp;
    flow.last_ts = timestamp;
    it = open_.emplace(key, std::move(flow)).first;
  }

  Flow& flow = it->second;
  flow.last_ts = std::max(flow.last_ts, timestamp);
  ++flow.packets;
  flow.bytes += decoded.ip_total_length;

  const bool from_initiator = decoded.tuple == flow.tuple;
  auto& dir_bytes =
      from_initiator ? flow.bytes_to_responder : flow.bytes_to_initiator;
  dir_bytes += decoded.ip_total_length;

  if (decoded.tuple.proto == net::IpProto::kTcp) {
    flow.saw_syn |= decoded.tcp_flags.syn;
    flow.saw_fin |= decoded.tcp_flags.fin;
    flow.saw_rst |= decoded.tcp_flags.rst;
  } else if (decoded.tuple.proto == net::IpProto::kIcmp && flow.packets == 1) {
    flow.icmp_type = decoded.icmp_type;
  }

  if (!decoded.payload.empty()) {
    auto& buf = from_initiator ? flow.payload_to_responder
                               : flow.payload_to_initiator;
    const std::size_t room =
        buf.size() < options_.payload_cap ? options_.payload_cap - buf.size()
                                          : 0;
    const std::size_t take = std::min(room, decoded.payload.size());
    buf.insert(buf.end(), decoded.payload.begin(),
               decoded.payload.begin() + take);
  }
}

void FlowTable::finalize(Flow&& flow) { done_.push_back(std::move(flow)); }

std::vector<Flow> FlowTable::finish() {
  obs::Span span{"pcap.flow.finish"};
  for (auto& [key, flow] : open_) done_.push_back(std::move(flow));
  open_.clear();
  std::sort(done_.begin(), done_.end(),
            [](const Flow& a, const Flow& b) {
              return a.first_ts < b.first_ts;
            });
  static auto& flows_metric = obs::counter("pcap.flow.flows");
  flows_metric.inc(done_.size());
  return std::move(done_);
}

namespace {

/// Flow-table shard count for assemble_flows. Fixed (never the pool
/// size): shard membership only depends on the tuple hash, so the
/// decomposition — and with it the output — is the same at every
/// CS_THREADS value.
constexpr std::size_t kFlowShards = 16;

}  // namespace

FlowAssembler::FlowAssembler(FlowTable::Options options) {
  tables_.reserve(kFlowShards);
  for (std::size_t s = 0; s < kFlowShards; ++s) tables_.emplace_back(options);
}

void FlowAssembler::feed(std::span<const Packet> packets) {
  obs::Span span{"pcap.flow.feed"};

  // Stage 1: decode every frame of the batch in parallel. Decoded payload
  // views point into the caller's packet buffers, which outlive the call.
  auto decoded = exec::parallel_map(packets.size(), [&](std::size_t i) {
    return decode_frame(packets[i].bytes());
  });

  std::uint64_t dropped = 0;
  std::uint64_t wire_bytes = 0;
  for (std::size_t i = 0; i < packets.size(); ++i) {
    wire_bytes += packets[i].data.size();
    if (!decoded[i]) ++dropped;
  }
  if (obs::detailed_metrics()) {
    obs::counter("pcap.decode.packets").inc(packets.size());
    obs::counter("pcap.decode.bytes").inc(wire_bytes);
    obs::counter("pcap.decode.truncated").inc(dropped);
  }
  undecodable_ += dropped;
  packets_fed_ += packets.size();
  bytes_fed_ += wire_bytes;

  // Stage 2: partition packet indices by canonical-tuple hash. All of a
  // flow's packets share a canonical tuple, so across every batch they
  // land in the same shard and feed that shard's table in capture order —
  // idle-timeout splits and initiator orientation come out exactly as
  // with a single table over the whole capture.
  std::vector<std::vector<std::size_t>> shards(kFlowShards);
  const net::FiveTupleHash hasher;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (!decoded[i]) continue;
    shards[hasher(decoded[i]->tuple.canonical()) % kFlowShards].push_back(i);
  }

  // Stage 3: extend the persistent per-shard tables, in parallel.
  exec::parallel_for(
      kFlowShards,
      [&](std::size_t s) {
        for (const std::size_t i : shards[s])
          tables_[s].add_decoded(*decoded[i], packets[i].timestamp);
      },
      /*grain=*/1);
}

std::vector<Flow> FlowAssembler::finish() {
  obs::Span span{"pcap.flow.merge"};
  auto shard_flows = exec::parallel_map(
      tables_.size(), [&](std::size_t s) { return tables_[s].finish(); },
      /*grain=*/1);

  // Merge and impose a total order. first_ts alone (the single table's
  // sort key) leaves equal-timestamp flows in hash order; the extra keys
  // make the result independent of the sharding entirely.
  std::vector<Flow> flows;
  std::size_t total = 0;
  for (const auto& sf : shard_flows) total += sf.size();
  flows.reserve(total);
  for (auto& sf : shard_flows)
    flows.insert(flows.end(), std::make_move_iterator(sf.begin()),
                 std::make_move_iterator(sf.end()));
  std::sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    return std::tie(a.first_ts, a.tuple, a.packets, a.bytes) <
           std::tie(b.first_ts, b.tuple, b.packets, b.bytes);
  });
  return flows;
}

std::vector<Flow> assemble_flows(std::span<const Packet> packets,
                                 FlowTable::Options options,
                                 std::uint64_t* undecodable) {
  obs::Span span{"pcap.flow.assemble"};
  FlowAssembler assembler{options};
  assembler.feed(packets);
  if (undecodable) *undecodable = assembler.undecodable_packets();
  return assembler.finish();
}

}  // namespace cs::pcap
