#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "exec/sharded_rng.h"
#include "util/rng.h"

/// Deterministic, seed-driven fault injection for the whole pipeline.
///
/// The paper's measurements ran against a hostile real world — flaky
/// PlanetLab vantages, timing-out authoritative servers, truncated
/// captures. This module recreates that hostility on demand so the
/// consumers (resolver, flow assembly, campaign aggregation) can prove
/// they degrade gracefully instead of corrupting aggregates.
///
/// Contract:
///  - Faults are configured by CS_FAULT
///    (`CS_FAULT=loss=0.02,timeout=0.01,truncate=0.005,servfail=0.01`) or
///    programmatically via a Spec + ScopedPlan.
///  - Every decision is a pure function of (plan seed, fault kind, event
///    key): the key identifies the event (a DNS exchange, a capture
///    record index, a campaign vantage), never the thread or call order,
///    so an injected run is byte-identical at any CS_THREADS. Streams are
///    derived through exec::ShardedRng, the same per-shard construction
///    the parallel stages use for their own randomness.
///  - With CS_FAULT unset the injector is a no-op: active_plan() is one
///    relaxed atomic load + branch, cheap enough for per-exchange and
///    per-record call sites (the ~6 ns decode_frame loop stays
///    uninstrumented; injection happens one layer up).
namespace cs::fault {

/// What the injector can do to one event.
enum class Kind : std::uint8_t {
  kLoss = 0,     ///< query/probe dropped in flight (caller sees a timeout)
  kTimeout,      ///< server reached but never answers
  kTruncate,     ///< response/frame cut short
  kServFail,     ///< authoritative server answers SERVFAIL
  kCorrupt,      ///< frame bytes flipped in place
  kVantageDrop,  ///< campaign vantage offline for a whole round
  kStageAbort,   ///< pipeline stage dies before producing its artifact
};
inline constexpr std::size_t kKindCount = 7;

const char* to_string(Kind kind) noexcept;

/// Per-kind fault rates plus the seed the decision streams derive from.
struct Spec {
  double loss = 0.0;
  double timeout = 0.0;
  double truncate = 0.0;
  double servfail = 0.0;
  double corrupt = 0.0;
  double vantage_drop = 0.0;
  double stage_abort = 0.0;
  std::uint64_t seed = 0xC10D5FA17ULL;

  double rate(Kind kind) const noexcept;
  bool any() const noexcept;

  /// Strictly parses a `key=value,key=value` spec (the CS_FAULT syntax).
  /// Keys: loss, timeout, truncate, servfail, corrupt, vantage_drop,
  /// stage_abort (probabilities in [0,1]) and seed (u64). Unknown keys,
  /// out-of-range
  /// rates, duplicate keys, or trailing garbage reject the whole spec —
  /// a misread fault rate would silently change every downstream number.
  static std::optional<Spec> parse(std::string_view text) noexcept;
};

/// An immutable fault plan: the Spec compiled into per-kind ShardedRng
/// roots. Decisions are stateless — see the determinism contract above.
class Plan {
 public:
  explicit Plan(Spec spec) noexcept;

  const Spec& spec() const noexcept { return spec_; }

  /// Bernoulli decision for one event. Equal (spec, kind, key) always
  /// decides the same way.
  bool decide(Kind kind, std::uint64_t key) const noexcept;

  /// A per-event generator for faults that need more than a yes/no (the
  /// truncation point, the corrupted byte offset). Sibling keys yield
  /// uncorrelated streams via the ShardedRng scramble.
  util::Rng stream(Kind kind, std::uint64_t key) const noexcept;

 private:
  Spec spec_;
  std::array<exec::ShardedRng, kKindCount> roots_;
};

/// Stable key for a DNS exchange: mixes client, server, and the query
/// wire bytes (qname/qtype/id), so the key is a property of the exchange
/// itself, not of which thread or in which order it ran.
std::uint64_t exchange_key(std::uint32_t client, std::uint32_t server,
                           std::span<const std::uint8_t> query) noexcept;

namespace detail {
/// -1 = CS_FAULT not yet read; 0 = no plan; 1 = plan installed.
extern std::atomic<int> g_state;
extern std::atomic<const Plan*> g_plan;
const Plan* init_plan_from_env() noexcept;
}  // namespace detail

/// The process-wide plan, or nullptr when injection is off (the common
/// case: one relaxed load + predictable branch).
inline const Plan* active_plan() noexcept {
  const int s = detail::g_state.load(std::memory_order_acquire);
  if (s == 0) [[likely]] return nullptr;
  if (s == 1) return detail::g_plan.load(std::memory_order_acquire);
  return detail::init_plan_from_env();
}

/// Installs `plan` (nullptr disables injection). The caller keeps
/// ownership and must keep the plan alive while installed. Not safe to
/// call while parallel stages are in flight — swap between phases, which
/// is how ScopedPlan and the tests use it.
void set_plan(const Plan* plan) noexcept;

/// RAII plan for tests and examples: installs on construction, restores
/// the previous plan on destruction.
class ScopedPlan {
 public:
  explicit ScopedPlan(const Spec& spec);
  /// Parses `spec_text` (CS_FAULT syntax); throws std::invalid_argument
  /// on a malformed spec.
  explicit ScopedPlan(std::string_view spec_text);
  ~ScopedPlan();

  ScopedPlan(const ScopedPlan&) = delete;
  ScopedPlan& operator=(const ScopedPlan&) = delete;

  const Plan& plan() const noexcept { return *plan_; }

 private:
  std::unique_ptr<Plan> plan_;
  const Plan* previous_ = nullptr;
  int previous_state_ = 0;
};

}  // namespace cs::fault
