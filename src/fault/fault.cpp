#include "fault/fault.h"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "obs/log.h"
#include "util/env.h"
#include "util/sync.h"

namespace cs::fault {
namespace {

/// Per-kind salts so the seven decision families draw from unrelated
/// ShardedRng roots even under one spec seed.
constexpr std::uint64_t kKindSalt[kKindCount] = {
    0x10551055F001F001ULL,  // loss
    0x71ED0071ED00DEADULL,  // timeout
    0x7255CA7E7255CA7EULL,  // truncate
    0x5EF41150BADC0DE5ULL,  // servfail
    0xC0442070C0442070ULL,  // corrupt
    0xD20902D20902FA11ULL,  // vantage drop
    0x57A6EAB027ABA6E5ULL,  // stage abort
};

constexpr std::size_t index(Kind kind) noexcept {
  return static_cast<std::size_t>(kind);
}

/// Strict double in [0,1]: the full token must parse and be finite.
std::optional<double> parse_rate(std::string_view text) noexcept {
  double value = 0.0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  if (!std::isfinite(value) || value < 0.0 || value > 1.0)
    return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_seed(std::string_view text) noexcept {
  std::uint64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

const char* to_string(Kind kind) noexcept {
  switch (kind) {
    case Kind::kLoss: return "loss";
    case Kind::kTimeout: return "timeout";
    case Kind::kTruncate: return "truncate";
    case Kind::kServFail: return "servfail";
    case Kind::kCorrupt: return "corrupt";
    case Kind::kVantageDrop: return "vantage_drop";
    case Kind::kStageAbort: return "stage_abort";
  }
  return "unknown";
}

double Spec::rate(Kind kind) const noexcept {
  switch (kind) {
    case Kind::kLoss: return loss;
    case Kind::kTimeout: return timeout;
    case Kind::kTruncate: return truncate;
    case Kind::kServFail: return servfail;
    case Kind::kCorrupt: return corrupt;
    case Kind::kVantageDrop: return vantage_drop;
    case Kind::kStageAbort: return stage_abort;
  }
  return 0.0;
}

bool Spec::any() const noexcept {
  return loss > 0.0 || timeout > 0.0 || truncate > 0.0 || servfail > 0.0 ||
         corrupt > 0.0 || vantage_drop > 0.0 || stage_abort > 0.0;
}

std::optional<Spec> Spec::parse(std::string_view text) noexcept {
  Spec spec;
  if (text.empty()) return std::nullopt;
  bool seen[kKindCount + 1] = {};
  while (!text.empty()) {
    const auto comma = text.find(',');
    const auto entry = text.substr(0, comma);
    text = comma == std::string_view::npos ? std::string_view{}
                                           : text.substr(comma + 1);
    // A comma must be followed by another entry; "loss=0.1," is malformed.
    if (comma != std::string_view::npos && text.empty()) return std::nullopt;
    const auto eq = entry.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = entry.substr(0, eq);
    const auto value = entry.substr(eq + 1);

    if (key == "seed") {
      if (seen[kKindCount]) return std::nullopt;
      seen[kKindCount] = true;
      const auto parsed = parse_seed(value);
      if (!parsed) return std::nullopt;
      spec.seed = *parsed;
      continue;
    }

    double* slot = nullptr;
    std::size_t kind = 0;
    if (key == "loss") slot = &spec.loss, kind = index(Kind::kLoss);
    else if (key == "timeout") slot = &spec.timeout, kind = index(Kind::kTimeout);
    else if (key == "truncate") slot = &spec.truncate, kind = index(Kind::kTruncate);
    else if (key == "servfail") slot = &spec.servfail, kind = index(Kind::kServFail);
    else if (key == "corrupt") slot = &spec.corrupt, kind = index(Kind::kCorrupt);
    else if (key == "vantage_drop")
      slot = &spec.vantage_drop, kind = index(Kind::kVantageDrop);
    else if (key == "stage_abort")
      slot = &spec.stage_abort, kind = index(Kind::kStageAbort);
    else
      return std::nullopt;
    if (seen[kind]) return std::nullopt;
    seen[kind] = true;
    const auto parsed = parse_rate(value);
    if (!parsed) return std::nullopt;
    *slot = *parsed;
  }
  return spec;
}

Plan::Plan(Spec spec) noexcept
    : spec_(spec),
      roots_{exec::ShardedRng{spec.seed ^ kKindSalt[0]},
             exec::ShardedRng{spec.seed ^ kKindSalt[1]},
             exec::ShardedRng{spec.seed ^ kKindSalt[2]},
             exec::ShardedRng{spec.seed ^ kKindSalt[3]},
             exec::ShardedRng{spec.seed ^ kKindSalt[4]},
             exec::ShardedRng{spec.seed ^ kKindSalt[5]},
             exec::ShardedRng{spec.seed ^ kKindSalt[6]}} {}

bool Plan::decide(Kind kind, std::uint64_t key) const noexcept {
  const double rate = spec_.rate(kind);
  if (rate <= 0.0) return false;
  util::Rng rng{roots_[index(kind)].stream_seed(key)};
  return rng.uniform01() < rate;
}

util::Rng Plan::stream(Kind kind, std::uint64_t key) const noexcept {
  util::Rng rng{roots_[index(kind)].stream_seed(key)};
  rng();  // skip the decision draw so stream values are independent of it
  return rng;
}

std::uint64_t exchange_key(std::uint32_t client, std::uint32_t server,
                           std::span<const std::uint8_t> query) noexcept {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a offset basis
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(client >> (8 * i)));
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(server >> (8 * i)));
  for (const auto byte : query) mix(byte);
  return h;
}

namespace detail {

std::atomic<int> g_state{-1};
std::atomic<const Plan*> g_plan{nullptr};

const Plan* init_plan_from_env() noexcept {
  static util::Mutex mutex;
  util::LockGuard lock{mutex};
  const int current = g_state.load(std::memory_order_acquire);
  if (current >= 0)  // another thread (or a ScopedPlan) won the race
    return current == 1 ? g_plan.load(std::memory_order_acquire) : nullptr;

  const auto env = util::env_text(util::Knob::kFault);
  if (!env) {
    g_state.store(0, std::memory_order_release);
    return nullptr;
  }
  const auto spec = Spec::parse(*env);
  if (!spec || !spec->any()) {
    if (!spec)
      obs::log_warn(
          "fault", "{}",
          util::env_malformed(
              util::Knob::kFault, *env,
              "loss=P,timeout=P,truncate=P,servfail=P[,corrupt=P]"
              "[,vantage_drop=P][,stage_abort=P][,seed=N] with P in [0,1]"));
    g_state.store(0, std::memory_order_release);
    return nullptr;
  }
  // Intentionally leaked: the env-derived plan lives for the process,
  // like the metrics registry.
  const Plan* plan = new Plan{*spec};
  g_plan.store(plan, std::memory_order_release);
  g_state.store(1, std::memory_order_release);
  return plan;
}

}  // namespace detail

void set_plan(const Plan* plan) noexcept {
  detail::g_plan.store(plan, std::memory_order_release);
  detail::g_state.store(plan ? 1 : 0, std::memory_order_release);
}

ScopedPlan::ScopedPlan(const Spec& spec) : plan_(std::make_unique<Plan>(spec)) {
  previous_state_ = detail::g_state.load(std::memory_order_acquire);
  previous_ = detail::g_plan.load(std::memory_order_acquire);
  set_plan(plan_.get());
}

ScopedPlan::ScopedPlan(std::string_view spec_text) {
  const auto spec = Spec::parse(spec_text);
  if (!spec)
    throw std::invalid_argument{"ScopedPlan: malformed fault spec '" +
                                std::string{spec_text} + "'"};
  plan_ = std::make_unique<Plan>(*spec);
  previous_state_ = detail::g_state.load(std::memory_order_acquire);
  previous_ = detail::g_plan.load(std::memory_order_acquire);
  set_plan(plan_.get());
}

ScopedPlan::~ScopedPlan() {
  detail::g_plan.store(previous_, std::memory_order_release);
  detail::g_state.store(previous_state_, std::memory_order_release);
}

}  // namespace cs::fault
