#pragma once

#include <string>

#include "core/study.h"

/// Renderers that turn analysis results into the paper's tables and
/// figure series (fixed-width text). One function per table/figure keeps
/// bench binaries tiny and the output uniform.
namespace cs::core {

std::string render_table1(const analysis::CaptureReport& report);
std::string render_table2(const analysis::CaptureReport& report);
std::string render_table3(const analysis::CloudUsageReport& report);
std::string render_table4(const analysis::CloudUsageReport& report);
std::string render_table5(const analysis::CaptureReport& report);
std::string render_table6(const analysis::CaptureReport& report);
std::string render_table7(const analysis::PatternReport& report);
std::string render_table8(Study& study);
std::string render_table9(const analysis::RegionReport& report);
std::string render_table10(Study& study);

/// Table 11 is its own experiment: RTTs from a micro instance in one
/// us-east-1 zone to instances of several types in each zone.
std::string render_table11(Study& study);

std::string render_table12(const analysis::ZoneStudy& study);
std::string render_table13(const analysis::ZoneStudy& study);
std::string render_table14(const analysis::ZoneStudy& study);
std::string render_table15(Study& study);
std::string render_table16(const analysis::IspStudy& study);

std::string render_fig3(const analysis::CaptureReport& report);
std::string render_fig4(const analysis::PatternReport& report);
std::string render_fig5(const analysis::PatternReport& report);
std::string render_fig6(const analysis::RegionReport& report);
std::string render_fig7(Study& study);
std::string render_fig8(const analysis::ZoneStudy& study);
std::string render_fig9_10(const analysis::ClientRegionAverages& averages);
std::string render_fig11(const analysis::FlappingSeries& series);
std::string render_fig12(const std::vector<analysis::KRegionResult>& results);

/// Data-quality appendix: how much raw signal the study lost to drops,
/// retries, truncation, dead vantage rounds, and unresolved names — fed
/// by the dataset/campaign ledgers plus the obs fault counters. Under an
/// active cs::fault plan this is the proof the pipeline degraded
/// gracefully instead of corrupting its aggregates.
std::string render_data_quality(Study& study);

}  // namespace cs::core
