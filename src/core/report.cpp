#include "core/report.h"

#include <algorithm>
#include <set>

#include "carto/proximity.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "util/format.h"
#include "util/table.h"

namespace cs::core {
namespace {

using util::Table;

double pct(std::uint64_t part, std::uint64_t whole) {
  return whole ? 100.0 * static_cast<double>(part) /
                     static_cast<double>(whole)
               : 0.0;
}

}  // namespace

std::string render_table1(const analysis::CaptureReport& report) {
  const auto& p = report.protocols;
  Table t{{"Cloud", "Bytes %", "Flows %"}};
  t.caption("Table 1: traffic volume and flows per cloud");
  t.add("EC2", pct(p.ec2_total.bytes, p.total.bytes),
        pct(p.ec2_total.flows, p.total.flows));
  t.add("Azure", pct(p.azure_total.bytes, p.total.bytes),
        pct(p.azure_total.flows, p.total.flows));
  t.add("Total", 100.0, 100.0);
  return t.render();
}

std::string render_table2(const analysis::CaptureReport& report) {
  const auto& p = report.protocols;
  static const char* kServices[] = {"ICMP",        "HTTP (TCP)",
                                    "HTTPS (TCP)", "DNS (UDP)",
                                    "Other (TCP)", "Other (UDP)"};
  Table t{{"Protocol", "EC2 Bytes %", "EC2 Flows %", "Azure Bytes %",
           "Azure Flows %", "Overall Bytes %", "Overall Flows %"}};
  t.caption("Table 2: protocol mix per cloud");
  for (const auto* service : kServices) {
    analysis::ProtocolReport::Share ec2, azure;
    if (const auto c = p.cloud_service.find("EC2");
        c != p.cloud_service.end()) {
      if (const auto s = c->second.find(service); s != c->second.end())
        ec2 = s->second;
    }
    if (const auto c = p.cloud_service.find("Azure");
        c != p.cloud_service.end()) {
      if (const auto s = c->second.find(service); s != c->second.end())
        azure = s->second;
    }
    t.add(service, pct(ec2.bytes, p.ec2_total.bytes),
          pct(ec2.flows, p.ec2_total.flows),
          pct(azure.bytes, p.azure_total.bytes),
          pct(azure.flows, p.azure_total.flows),
          pct(ec2.bytes + azure.bytes, p.total.bytes),
          pct(ec2.flows + azure.flows, p.total.flows));
  }
  return t.render();
}

std::string render_table3(const analysis::CloudUsageReport& report) {
  Table t{{"Provider", "# Domains", "(%)", "# Subdomains", "(%)"}};
  t.caption("Table 3: breakdown by EC2 / Azure / other hosting");
  const auto& d = report.domains;
  const auto& s = report.subdomains;
  auto row = [&](const char* name, std::size_t dn, std::size_t sn) {
    t.add(name, dn, pct(dn, d.total), sn, pct(sn, s.total));
  };
  row("EC2 only", d.ec2_only, s.ec2_only);
  row("EC2 + Other", d.ec2_plus_other, s.ec2_plus_other);
  row("Azure only", d.azure_only, s.azure_only);
  row("Azure + Other", d.azure_plus_other, s.azure_plus_other);
  row("EC2 + Azure", d.ec2_plus_azure, s.ec2_plus_azure);
  row("Total", d.total, s.total);
  row("EC2 total", d.ec2_total(), s.ec2_total());
  row("Azure total", d.azure_total(), s.azure_total());
  return t.render();
}

std::string render_table4(const analysis::CloudUsageReport& report) {
  Table t{{"Rank", "Domain", "Total # Subdom", "# EC2 Subdom"}};
  t.caption("Table 4: top EC2-using domains by Alexa rank");
  for (const auto& row : report.top_ec2_domains)
    t.add(row.rank, row.domain, row.total_subdomains, row.cloud_subdomains);
  return t.render();
}

std::string render_table5(const analysis::CaptureReport& report) {
  Table t{{"EC2 Domain", "Rank", "Web %", "Azure Domain", "Rank", "Web %"}};
  t.caption("Table 5: domains with highest HTTP(S) traffic volume");
  const auto rows = std::max(report.top_ec2_domains.size(),
                             report.top_azure_domains.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> cells(6);
    if (i < report.top_ec2_domains.size()) {
      const auto& r = report.top_ec2_domains[i];
      cells[0] = r.domain;
      cells[1] = r.alexa_rank ? std::to_string(r.alexa_rank) : "-";
      cells[2] = util::fmt("{:.2f}", r.percent_of_web);
    }
    if (i < report.top_azure_domains.size()) {
      const auto& r = report.top_azure_domains[i];
      cells[3] = r.domain;
      cells[4] = r.alexa_rank ? std::to_string(r.alexa_rank) : "-";
      cells[5] = util::fmt("{:.2f}", r.percent_of_web);
    }
    t.row(std::move(cells));
  }
  return t.render();
}

std::string render_table6(const analysis::CaptureReport& report) {
  Table t{{"Content type", "Bytes %", "mean (KB)", "max (MB)"}};
  t.caption("Table 6: HTTP content types by byte count");
  for (const auto& row : report.content_types)
    t.add(row.content_type, row.percent, row.mean_kb, row.max_mb);
  return t.render();
}

std::string render_table7(const analysis::PatternReport& report) {
  Table t{{"Cloud", "Feature", "# Domains", "# Subdomains", "# Inst."}};
  t.caption("Table 7: summary of cloud feature usage");
  auto row = [&](const char* cloud, const char* feature,
                 const analysis::FeatureUsage& usage) {
    t.add(cloud, feature, usage.domains, usage.subdomains, usage.instances);
  };
  row("EC2", "VM", report.ec2_vm);
  row("EC2", "ELB", report.ec2_elb);
  row("EC2", "Beanstalk (w/ ELB)", report.ec2_beanstalk);
  row("EC2", "Heroku (w/ ELB)", report.ec2_heroku_elb);
  row("EC2", "Heroku (no ELB)", report.ec2_heroku_no_elb);
  row("Azure", "CS", report.azure_cs);
  row("Azure", "TM", report.azure_tm);
  row("EC2", "CloudFront", report.cloudfront);
  row("Azure", "Azure CDN", report.azure_cdn);
  t.add("EC2", "(unclassified)", "-", report.ec2_unclassified_subdomains,
        "-");
  t.add("Azure", "(unclassified)", "-",
        report.azure_unclassified_subdomains, "-");
  return t.render();
}

std::string render_table8(Study& study) {
  const auto rows =
      analysis::analyze_top_domain_features(study.dataset(), study.patterns());
  Table t{{"Rank", "Domain", "# Cloud Subdom", "VM", "PaaS", "ELB",
           "ELB IPs", "CDN"}};
  t.caption("Table 8: cloud feature usage of top EC2-using domains");
  for (const auto& row : rows)
    t.add(row.rank, row.domain, row.cloud_subdomains, row.vm, row.paas,
          row.elb, row.elb_ips, row.cdn);
  return t.render();
}

std::string render_table9(const analysis::RegionReport& report) {
  Table t{{"Region", "# Dom", "# Subdom"}};
  t.caption("Table 9: EC2 and Azure region usage");
  // The paper lists the EC2 block first, then Azure.
  for (const bool want_ec2 : {true, false}) {
    for (const auto& [region, subdomains] : report.subdomains_per_region) {
      if ((region.rfind("ec2.", 0) == 0) != want_ec2) continue;
      std::size_t domains = 0;
      if (const auto it = report.domains_per_region.find(region);
          it != report.domains_per_region.end())
        domains = it->second;
      t.add(region, domains, subdomains);
    }
  }
  return t.render();
}

std::string render_table10(Study& study) {
  const auto rows =
      analysis::analyze_top_domain_regions(study.dataset(), study.regions());
  Table t{{"Rank", "Domain", "# Cloud Subdom", "Total # Regions", "k=1",
           "k=2"}};
  t.caption("Table 10: region usage of top cloud-using domains");
  for (const auto& row : rows)
    t.add(row.rank, row.domain, row.cloud_subdomains, row.total_regions,
          row.k1, row.k2);
  return t.render();
}

std::string render_table11(Study& study) {
  auto& ec2 = study.world().ec2();
  auto& model = study.wan_model();
  const std::string region = "ec2.us-east-1";
  const auto& probe = ec2.launch({.account = "table11",
                                  .region = region,
                                  .zone_label = 0,
                                  .type = "t1.micro"});
  static const char* kTypes[] = {"t1.micro", "m1.medium", "m1.xlarge",
                                 "m3.2xlarge"};
  Table t{{"Instance type", "zone a (least/med ms)", "zone b",
           "zone c"}};
  t.caption(
      "Table 11: RTT from a us-east-1a micro instance to instances by type "
      "and zone");
  double clock = 0.0;
  for (const auto* type : kTypes) {
    std::vector<std::string> cells;
    cells.push_back(type);
    for (int label = 0; label < 3; ++label) {
      const auto& target = ec2.launch({.account = "table11",
                                       .region = region,
                                       .zone_label = label,
                                       .type = type});
      std::vector<double> samples;
      for (int i = 0; i < 10; ++i) {
        clock += 1.0;
        samples.push_back(
            model.instance_rtt_sample(ec2, probe, target, clock));
      }
      std::sort(samples.begin(), samples.end());
      cells.push_back(util::fmt("{:.1f} / {:.1f}", samples.front(),
                                samples[samples.size() / 2]));
    }
    t.row(std::move(cells));
  }
  return t.render();
}

std::string render_table12(const analysis::ZoneStudy& study) {
  Table t{{"Region", "# tgt IPs", "# resp.", "1st zn", "2nd zn", "3rd zn",
           "% unk"}};
  t.caption("Table 12: latency-method zone estimates (T = 1.1 ms)");
  for (const auto& row : study.latency_rows) {
    std::vector<std::string> cells = {row.region,
                                      std::to_string(row.target_ips),
                                      std::to_string(row.responded)};
    for (int zone = 0; zone < 3; ++zone) {
      if (const auto it = row.per_zone.find(zone); it != row.per_zone.end())
        cells.push_back(std::to_string(it->second));
      else
        cells.push_back("N/A");
    }
    cells.push_back(util::fmt("{:.1f}", 100.0 * row.unknown_rate()));
    t.row(std::move(cells));
  }
  return t.render();
}

std::string render_table13(const analysis::ZoneStudy& study) {
  Table t{{"Region", "count", "match", "unknown", "mismat.", "error rate"}};
  t.caption("Table 13: veracity of latency-based zone identification");
  std::size_t count = 0, match = 0, unknown = 0, mismatch = 0;
  for (const auto& row : study.veracity_rows) {
    count += row.total;
    match += row.match;
    unknown += row.unknown;
    mismatch += row.mismatch;
  }
  analysis::VeracityRow all;
  all.region = "all";
  all.total = count;
  all.match = match;
  all.unknown = unknown;
  all.mismatch = mismatch;
  auto emit = [&t](const analysis::VeracityRow& row) {
    t.add(row.region, row.total, row.match, row.unknown, row.mismatch,
          util::fmt("{:.1f}%", 100.0 * row.error_rate()));
  };
  emit(all);
  for (const auto& row : study.veracity_rows) emit(row);
  return t.render();
}

std::string render_table14(const analysis::ZoneStudy& study) {
  Table t{{"Region", "zone", "# Dom", "# Subdom"}};
  t.caption("Table 14: estimated (sub)domains per EC2 zone");
  for (const auto& [region, usage] : study.usage_per_region) {
    for (const auto& [zone, subdomains] : usage.subdomains) {
      std::size_t domains = 0;
      if (const auto it = usage.domains.find(zone);
          it != usage.domains.end())
        domains = it->second.size();
      t.add(region, zone, domains, subdomains);
    }
  }
  return t.render();
}

std::string render_table15(Study& study) {
  const auto& dataset = study.dataset();
  const auto& zones = study.zone_study();
  std::vector<std::pair<std::size_t, const analysis::DomainObservation*>>
      ranked;
  for (const auto& domain : dataset.domains)
    if (!domain.cloud_subdomains.empty())
      ranked.emplace_back(domain.rank, &domain);
  std::sort(ranked.begin(), ranked.end());

  Table t{{"Rank", "Domain", "# subdom", "# zones", "k=1", "k=2", "k=3+"}};
  t.caption("Table 15: zone usage estimates for top EC2-using domains");
  std::size_t emitted = 0;
  for (const auto& [rank, domain] : ranked) {
    if (emitted >= 10) break;
    std::set<int> all_zones;
    std::size_t k1 = 0, k2 = 0, k3 = 0;
    bool any_ec2 = false;
    for (const auto idx : domain->cloud_subdomains) {
      const auto& zone_set = zones.subdomain_zones[idx];
      any_ec2 |= dataset.cloud_subdomains[idx].has_ec2_address;
      if (zone_set.empty()) continue;
      all_zones.insert(zone_set.begin(), zone_set.end());
      if (zone_set.size() == 1)
        ++k1;
      else if (zone_set.size() == 2)
        ++k2;
      else
        ++k3;
    }
    if (!any_ec2) continue;
    t.add(rank, domain->name.to_string(), domain->cloud_subdomains.size(),
          all_zones.size(), k1, k2, k3);
    ++emitted;
  }
  return t.render();
}

std::string render_table16(const analysis::IspStudy& study) {
  Table t{{"Region", "AZ1", "AZ2", "AZ3", "max single-ISP share"}};
  t.caption("Table 16: downstream ISPs per EC2 region and zone");
  for (const auto& row : study.rows) {
    std::vector<std::string> cells = {row.region};
    for (int zone = 0; zone < 3; ++zone) {
      if (const auto it = row.per_zone.find(zone); it != row.per_zone.end())
        cells.push_back(std::to_string(it->second));
      else
        cells.push_back("n/a");
    }
    cells.push_back(util::fmt("{:.0f}%", 100.0 * row.max_single_isp_share));
    t.row(std::move(cells));
  }
  return t.render();
}

std::string render_fig3(const analysis::CaptureReport& report) {
  std::string out = "Figure 3: flow count and size CDFs\n";
  const std::vector<std::pair<std::string, const util::Cdf*>> count_series =
      {{"EC2", &report.http_flows_per_domain_ec2},
       {"Azure", &report.http_flows_per_domain_azure}};
  out += "(a) HTTP flows per domain\n" +
         util::render_cdf_comparison(count_series, 10);
  const std::vector<std::pair<std::string, const util::Cdf*>> cn_series = {
      {"EC2", &report.https_flows_per_cn_ec2},
      {"Azure", &report.https_flows_per_cn_azure}};
  out += "(b) HTTPS flows per common name\n" +
         util::render_cdf_comparison(cn_series, 10);
  const std::vector<std::pair<std::string, const util::Cdf*>> http_size = {
      {"EC2", &report.http_flow_size_ec2},
      {"Azure", &report.http_flow_size_azure}};
  out += "(c) HTTP flow size (bytes)\n" +
         util::render_cdf_comparison(http_size, 10);
  const std::vector<std::pair<std::string, const util::Cdf*>> https_size = {
      {"EC2", &report.https_flow_size_ec2},
      {"Azure", &report.https_flow_size_azure}};
  out += "(d) HTTPS flow size (bytes)\n" +
         util::render_cdf_comparison(https_size, 10);
  return out;
}

std::string render_fig4(const analysis::PatternReport& report) {
  std::string out = "Figure 4: feature instances per subdomain\n";
  out += report.vm_instances_per_subdomain.to_tsv(12, "(a) VM instances");
  out += report.physical_elbs_per_subdomain.to_tsv(
      12, "(b) physical ELB instances");
  return out;
}

std::string render_fig5(const analysis::PatternReport& report) {
  return "Figure 5:\n" + report.name_servers_per_subdomain.to_tsv(
                             12, "DNS servers per subdomain");
}

std::string render_fig6(const analysis::RegionReport& report) {
  std::string out = "Figure 6: regions per (sub)domain\n";
  out += report.regions_per_ec2_subdomain.to_tsv(8, "(a) EC2 subdomains");
  out += report.regions_per_azure_subdomain.to_tsv(8,
                                                   "(a) Azure subdomains");
  out += report.regions_per_ec2_domain.to_tsv(8, "(b) EC2 domains (avg)");
  out += report.regions_per_azure_domain.to_tsv(8,
                                                "(b) Azure domains (avg)");
  return out;
}

std::string render_fig7(Study& study) {
  carto::ProximityEstimator proximity{
      study.world().ec2(),
      carto::ProximityEstimator::Options{.seed = study.config().world.seed ^
                                                 0xF16}};
  std::string out =
      "Figure 7: internal /16 blocks by merged zone label "
      "(second octet -> zone)\n";
  for (const auto& point : proximity.sample_map())
    out += util::fmt("10.{}.0.0/16\tzone-{}\n", point.internal_ip.octet(1),
                     point.merged_label);
  return out;
}

std::string render_fig8(const analysis::ZoneStudy& study) {
  std::string out = "Figure 8: zones per (sub)domain\n";
  out += study.zones_per_subdomain.to_tsv(8, "(a) subdomains");
  out += study.zones_per_domain.to_tsv(8, "(b) domains (avg)");
  out += util::fmt("one zone: {:.1f}%  two zones: {:.1f}%  3+: {:.1f}%\n",
                   100.0 * study.fraction_one_zone,
                   100.0 * study.fraction_two_zones,
                   100.0 * study.fraction_three_plus);
  return out;
}

std::string render_fig9_10(const analysis::ClientRegionAverages& averages) {
  Table lat{[&] {
    std::vector<std::string> headers = {"Vantage"};
    for (const auto& r : averages.region_names) headers.push_back(r);
    return headers;
  }()};
  lat.caption("Figure 10: average RTT (ms) per vantage and region");
  Table tput{[&] {
    std::vector<std::string> headers = {"Vantage"};
    for (const auto& r : averages.region_names) headers.push_back(r);
    return headers;
  }()};
  tput.caption("Figure 9: average throughput (KB/s) per vantage and region");
  for (std::size_t v = 0; v < averages.vantage_names.size(); ++v) {
    std::vector<std::string> lat_cells = {averages.vantage_names[v]};
    std::vector<std::string> tput_cells = {averages.vantage_names[v]};
    for (std::size_t r = 0; r < averages.region_names.size(); ++r) {
      lat_cells.push_back(util::fmt("{:.0f}", averages.avg_rtt_ms[v][r]));
      tput_cells.push_back(
          util::fmt("{:.0f}", averages.avg_tput_kbps[v][r]));
    }
    lat.row(std::move(lat_cells));
    tput.row(std::move(tput_cells));
  }
  return tput.render() + "\n" + lat.render();
}

std::string render_fig11(const analysis::FlappingSeries& series) {
  std::string out = util::fmt(
      "Figure 11: best-region flapping (winner changed {} times over {} "
      "rounds)\nround\twinner\n",
      series.winner_changes, series.winner.size());
  for (std::size_t round = 0; round < series.winner.size();
       round += std::max<std::size_t>(1, series.winner.size() / 48)) {
    const int w = series.winner[round];
    out += util::fmt("{}\t{}\n", round,
                     w >= 0 ? series.region_names[w] : "(lost)");
  }
  return out;
}

std::string render_fig12(const std::vector<analysis::KRegionResult>& results) {
  Table t{{"k", "best regions (latency)", "avg RTT (ms)",
           "avg tput (KB/s)"}};
  t.caption("Figure 12: optimal k-region deployments");
  for (const auto& result : results) {
    std::string regions;
    for (const auto& r : result.best_regions) {
      if (!regions.empty()) regions += ", ";
      regions += r;
    }
    t.add(result.k, regions, result.avg_rtt_ms, result.avg_tput_kbps);
  }
  return t.render();
}

std::string render_data_quality(Study& study) {
  const auto& dataset = study.dataset();
  const auto& campaign = study.campaign();
  const auto snapshot = obs::MetricsRegistry::instance().snapshot();

  std::string head = "Fault plan: ";
  if (const auto* plan = fault::active_plan()) {
    const auto& s = plan->spec();
    head += util::fmt(
        "loss={} timeout={} truncate={} servfail={} corrupt={} "
        "vantage_drop={} stage_abort={} seed={}",
        s.loss, s.timeout, s.truncate, s.servfail, s.corrupt,
        s.vantage_drop, s.stage_abort, s.seed);
  } else {
    head += "none (CS_FAULT unset)";
  }
  head += "\n";
  head += "Chaos profile: ";
  if (const auto* loopback = study.loopback();
      loopback && loopback->options().chaos.any()) {
    const auto& c = loopback->options().chaos;
    head += util::fmt(
        "drop={} dup={} reorder={} corrupt={} delay_us={} jitter_us={} "
        "seed={} ({})",
        c.drop, c.dup, c.reorder, c.corrupt, c.delay_us, c.jitter_us, c.seed,
        c.survivable() ? "survivable" : "UNSURVIVABLE");
  } else {
    head += "none (CS_CHAOS unset or sim transport)";
  }
  head += "\n";
  if (const auto& store = study.checkpoint_store())
    head += util::fmt("Checkpoints: {} (config hash 0x{:x})\n",
                      store->dir().string(), store->config_hash());
  else
    head += "Checkpoints: off (no --checkpoint / CS_CHECKPOINT)\n";

  Table t{{"Signal", "Count"}};
  t.caption("Data quality: losses, retries, and unresolved names");
  t.add("DNS queries spent", dataset.dns_queries_spent);
  t.add("DNS lookups failed", dataset.failed_lookup_count());
  // Aggregate the per-domain failure ledgers by reason. The ledger's
  // alphabetical-by-name visit order matches the std::map this code used
  // to build, keeping the report bytes unchanged.
  {
    analysis::FailedLookups by_reason;
    for (const auto& domain : dataset.domains)
      by_reason.merge(domain.failed_lookups);
    by_reason.for_each_named(
        [&t](dns::Rcode, const char* reason, std::uint64_t count) {
          t.add(std::string{"  failed with "} + reason, count);
        });
  }
  t.add("Unresolved subdomains", dataset.unresolved_subdomain_count());
  t.add("Resolver retries", snapshot.counter("dns.resolver.retries"));
  t.add("Resolver timeouts", snapshot.counter("dns.resolver.timeouts"));
  // The socket client's degradation ledger: every fast-fail path is a
  // named row, so an unsurvivable chaos profile (or a genuinely sick
  // wire) shows up as accounted failure, never silent data loss.
  t.add("Socket retransmits", snapshot.counter("netio.client.retransmits"));
  t.add("Socket exchange expirations",
        snapshot.counter("netio.client.expirations"));
  t.add("Retry budget rejections",
        snapshot.counter("netio.client.retry_budget_rejections"));
  t.add("Circuit breaker trips",
        snapshot.counter("netio.client.breaker_trips"));
  t.add("Circuit breaker fast-fails",
        snapshot.counter("netio.client.breaker_fastfails"));
  t.add("Chaos frames dropped", snapshot.counter("netio.chaos.drops"));
  t.add("Chaos frames duplicated", snapshot.counter("netio.chaos.dups"));
  t.add("Chaos frames corrupted", snapshot.counter("netio.chaos.corrupts"));
  t.add("Chaos forced deliveries",
        snapshot.counter("netio.chaos.forced_deliveries"));
  t.add("Injected DNS loss", snapshot.counter("fault.dns.loss"));
  t.add("Injected DNS timeouts", snapshot.counter("fault.dns.timeout"));
  t.add("Injected DNS truncations", snapshot.counter("fault.dns.truncate"));
  t.add("Injected DNS SERVFAILs", snapshot.counter("fault.dns.servfail"));
  t.add("Truncated capture frames", snapshot.counter("fault.pcap.truncated"));
  t.add("Corrupted capture frames", snapshot.counter("fault.pcap.corrupted"));
  t.add("Campaign vantage-rounds dropped", campaign.total_dropped_rounds());
  t.add("Injected stage aborts", snapshot.counter("fault.stage.abort"));
  t.add("Stage retries", snapshot.counter("snap.supervisor.retries"));

  // Per-stage supervision ledger: how each artifact came to be.
  Table stages{{"Stage", "Status", "Attempts", "Notes"}};
  stages.caption("Stage supervision: builds, resumes, and degradations");
  for (const auto& desc : Study::stage_table()) {
    const snap::StageRun* run = nullptr;
    for (const auto& r : study.stage_runs())
      if (r.stage == desc.name) run = &r;
    if (!run) {
      stages.add(desc.name, "not built", 0, "");
      continue;
    }
    const char* status = run->degraded       ? "DEGRADED"
                         : run->from_snapshot ? "resumed"
                                              : "built";
    std::string notes;
    if (run->deadline_hit) notes += "deadline hit; ";
    if (!run->last_error.empty()) notes += run->last_error;
    stages.add(run->stage, status, run->attempts, notes);
  }
  std::string rejected;
  if (const auto& store = study.checkpoint_store())
    for (const auto& event : store->events())
      if (event.kind == snap::Event::Kind::kRejected)
        rejected += util::fmt("Rejected snapshot '{}': {}\n", event.stage,
                              event.detail);
  return head + t.render() + "\n" + stages.render() + rejected;
}

}  // namespace cs::core
