#include "core/study.h"

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pcap/flow.h"

namespace cs::core {
namespace {

/// Marks one pipeline-stage build: a span for the trace, a counter for the
/// sidecars, and a debug log line on completion.
class StageScope {
 public:
  explicit StageScope(const char* stage) : stage_(stage), span_(stage) {
    start_us_ = obs::Tracer::instance().epoch_now_us();
  }
  ~StageScope() {
    obs::counter("study.stages_built").inc();
    obs::log_debug("core.study", "built {} in {:.1f} ms", stage_,
                   (obs::Tracer::instance().epoch_now_us() - start_us_) /
                       1000.0);
  }

 private:
  const char* stage_;
  obs::Span span_;
  std::uint64_t start_us_ = 0;
};

}  // namespace

Study::Study(StudyConfig config) : config_(std::move(config)) {
  StageScope stage{"study.world"};
  world_ = std::make_unique<synth::World>(config_.world);
}

const analysis::CloudRanges& Study::ranges() {
  if (!ranges_) {
    StageScope stage{"study.ranges"};
    ranges_.emplace(world_->ec2(), world_->azure());
  }
  return *ranges_;
}

const std::map<std::string, std::size_t>& Study::rank_map() {
  if (!rank_map_) {
    StageScope stage{"study.rank_map"};
    rank_map_.emplace();
    for (const auto& domain : world_->domains())
      (*rank_map_)[domain.name.to_string()] = domain.rank;
  }
  return *rank_map_;
}

const analysis::AlexaDataset& Study::dataset() {
  if (!dataset_) {
    StageScope stage{"study.dataset"};
    analysis::DatasetBuilder builder{*world_, config_.dataset};
    dataset_ = builder.build();
  }
  return *dataset_;
}

const analysis::CloudUsageReport& Study::cloud_usage() {
  if (!cloud_usage_) {
    StageScope stage{"study.cloud_usage"};
    cloud_usage_ = analysis::analyze_cloud_usage(dataset());
  }
  return *cloud_usage_;
}

const analysis::PatternReport& Study::patterns() {
  if (!patterns_) {
    StageScope stage{"study.patterns"};
    patterns_ = analysis::analyze_patterns(dataset(), ranges());
  }
  return *patterns_;
}

const analysis::RegionReport& Study::regions() {
  if (!regions_) {
    StageScope stage{"study.regions"};
    regions_ = analysis::analyze_regions(dataset(), ranges());
  }
  return *regions_;
}

const proto::TraceLogs& Study::capture_logs() {
  if (!capture_logs_) {
    StageScope stage{"study.capture_logs"};
    synth::TrafficGenerator generator{*world_, config_.traffic};
    const auto packets = generator.generate();
    capture_logs_ = proto::analyze_flows(pcap::assemble_flows(packets));
  }
  return *capture_logs_;
}

const analysis::CaptureReport& Study::capture() {
  if (!capture_) {
    StageScope stage{"study.capture"};
    capture_ = analysis::analyze_capture(capture_logs(), ranges(),
                                         rank_map());
  }
  return *capture_;
}

internet::WideAreaModel& Study::wan_model() {
  if (!wan_model_)
    wan_model_.emplace(
        internet::WideAreaModel::Config{.seed = config_.world.seed ^ 0x3A});
  return *wan_model_;
}

internet::AsTopology& Study::as_topology() {
  if (!as_topology_)
    as_topology_.emplace(world_->ec2(), config_.world.seed ^ 0xA5);
  return *as_topology_;
}

const analysis::ZoneStudy& Study::zone_study() {
  if (!zone_study_) {
    StageScope stage{"study.zone_study"};
    if (!proximity_)
      proximity_.emplace(
          world_->ec2(),
          carto::ProximityEstimator::Options{.seed = config_.world.seed ^ 1});
    if (!latency_)
      latency_.emplace(
          world_->ec2(), wan_model(),
          carto::LatencyZoneEstimator::Options{.seed =
                                                   config_.world.seed ^ 2});
    zone_study_ = analysis::run_zone_study(dataset(), ranges(), *world_,
                                           *proximity_, *latency_);
  }
  return *zone_study_;
}

const analysis::Campaign& Study::campaign() {
  if (!campaign_) {
    StageScope stage{"study.campaign"};
    const auto vantages =
        internet::planetlab_vantages(config_.campaign_vantages);
    std::vector<const cloud::Region*> regions;
    for (const auto& region : world_->ec2().regions())
      regions.push_back(&region);
    campaign_ = analysis::run_campaign(wan_model(), vantages, regions,
                                       config_.campaign_days);
  }
  return *campaign_;
}

const analysis::IspStudy& Study::isp_study() {
  if (!isp_study_) {
    StageScope stage{"study.isp_study"};
    const auto vantages = internet::planetlab_vantages(config_.isp_vantages);
    isp_study_ =
        analysis::run_isp_study(world_->ec2(), as_topology(), vantages);
  }
  return *isp_study_;
}

}  // namespace cs::core
