#include "core/study.h"

#include "analysis/columns.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "pcap/flow.h"
#include "util/env.h"

namespace cs::core {
namespace {

/// Marks one pipeline-stage build: a span for the trace, a counter for the
/// sidecars, and a debug log line on completion.
class StageScope {
 public:
  explicit StageScope(std::string stage)
      : stage_(std::move(stage)), span_(stage_) {
    start_us_ = obs::Tracer::instance().epoch_now_us();
  }
  ~StageScope() {
    obs::counter("study.stages_built").inc();
    // One RSS/queue-depth counter sample per stage boundary: enough to
    // draw memory and pool-pressure lanes under the span lanes in
    // Perfetto without taxing inner loops. No-op when collection is off.
    obs::RunReport::sample_counter_lane();
    obs::log_debug("core.study", "built {} in {:.1f} ms", stage_,
                   (obs::Tracer::instance().epoch_now_us() - start_us_) /
                       1000.0);
  }

 private:
  std::string stage_;
  obs::Span span_;
  std::uint64_t start_us_ = 0;
};

constexpr const char* kDepsDataset[] = {"dataset"};
constexpr const char* kDepsCaptureLogs[] = {"capture_logs"};

/// Canonical build order. Every supervised stage appears here; deps name
/// the stages forced first (both when building and when resuming, so the
/// world mutates in the same order either way).
constexpr Study::StageDesc kStageTable[] = {
    {"dataset", {}},
    {"cloud_usage", kDepsDataset},
    {"patterns", kDepsDataset},
    {"regions", kDepsDataset},
    {"capture_logs", {}},
    {"capture", kDepsCaptureLogs},
    {"zone_study", kDepsDataset},
    {"campaign", {}},
    {"isp_study", {}},
};

}  // namespace

Study::Study(StudyConfig config)
    : config_(std::move(config)), supervisor_(config_.supervision) {
  {
    StageScope stage{"study.world"};
    world_ = std::make_unique<synth::World>(config_.world);
  }
  const auto mode =
      config_.transport.value_or(netio::transport_mode_from_env());
  if (mode == netio::TransportMode::kSocket) {
    loopback_ = std::make_unique<netio::LoopbackDns>(
        world_->network(),
        config_.netio.value_or(netio::LoopbackDns::options_from_env()));
    if (loopback_->start()) {
      world_->set_transport_override(&loopback_->transport());
      obs::log_info("core.study",
                    "resolver traffic over localhost UDP (port {})",
                    loopback_->server().port());
    } else {
      obs::log_warn("core.study",
                    "socket transport unavailable; falling back to the "
                    "in-process network");
      loopback_.reset();
    }
  }
  std::string dir = config_.checkpoint_dir;
  if (dir.empty())
    if (const auto env = util::env_text(util::Knob::kCheckpoint)) dir = *env;
  if (!dir.empty()) {
    store_.emplace(dir, config_hash());
    obs::log_info("core.study", "checkpointing to {} (config hash 0x{:x})",
                  dir, store_->config_hash());
  }
}

Study::~Study() {
  // Unhook resolvers before the socket backend goes away (new resolvers
  // made during teardown fall back to the in-process network).
  if (loopback_ && world_) world_->set_transport_override(nullptr);
}

std::uint64_t Study::config_hash() const {
  // Only fields that shape stage artifacts participate; checkpoint_dir,
  // supervision, and transport steer *how* stages run (or which wire
  // carries the bytes), never what a completed stage produced.
  snap::Writer w;
  w.u64(config_.world.seed);
  w.u64(config_.world.domain_count);
  w.f64(config_.world.adoption_scale);
  w.boolean(config_.world.plant_marquee_domains);
  w.u64(config_.traffic.seed);
  w.f64(config_.traffic.start_time);
  w.f64(config_.traffic.duration_sec);
  w.u64(config_.traffic.total_web_bytes);
  w.u64(config_.traffic.emitted_flow_cap);
  w.count(config_.dataset.wordlist.size());
  for (const auto& word : config_.dataset.wordlist) w.str(word);
  w.boolean(config_.dataset.attempt_axfr);
  w.u64(config_.dataset.lookup_vantages);
  w.boolean(config_.dataset.collect_name_servers);
  // keep_records changes the dataset artifact's contents; chunk_domains
  // and on_chunk deliberately do NOT participate — chunking is
  // artifact-invariant, so any chunk size may resume any checkpoint.
  w.boolean(config_.dataset.keep_records);
  w.u64(config_.campaign_vantages);
  w.f64(config_.campaign_days);
  w.u64(config_.isp_vantages);
  return snap::fnv1a(w.bytes());
}

template <typename T, typename Build, typename Replay>
const T& Study::stage(const char* name, std::optional<T>& slot, Build&& build,
                      Replay&& replay) {
  if (slot) return *slot;
  auto& run = stage_runs_.emplace_back();
  run.stage = name;
  if (store_) {
    if (auto loaded = store_->template load<T>(name)) {
      // The artifact is done, but its builder's world side effects (the
      // instance launches that shift every later address allocation) are
      // not in the snapshot — replay them so downstream stages see the
      // same world an uninterrupted run would have.
      replay();
      run.from_snapshot = true;
      slot = std::move(*loaded);
      obs::counter("study.stages_resumed").inc();
      return *slot;
    }
  }
  {
    StageScope scope{std::string{"study."} + name};
    slot = supervisor_.run(run, build, [] { return T{}; });
  }
  if (store_ && !run.degraded) store_->save(name, *slot);
  return *slot;
}

const analysis::CloudRanges& Study::ranges() {
  if (!ranges_) {
    StageScope stage{"study.ranges"};
    ranges_.emplace(world_->ec2(), world_->azure());
  }
  return *ranges_;
}

const std::map<std::string, std::size_t>& Study::rank_map() {
  if (!rank_map_) {
    StageScope stage{"study.rank_map"};
    rank_map_.emplace();
    for (const auto& domain : world_->domains())
      (*rank_map_)[domain.name.to_string()] = domain.rank;
  }
  return *rank_map_;
}

const analysis::AlexaDataset& Study::dataset() {
  return stage(
      "dataset", dataset_,
      [&] {
        auto options = config_.dataset;
        analysis::DatasetBuilder::Resume resume;
        if (store_) {
          // Mid-stage checkpoint: a chunked build leaves "dataset.partial"
          // at chunk boundaries, so a crash inside the (paper-scale: hours
          // long) dataset stage only loses the current chunk. Resuming
          // from any chunk size is byte-identical — per-domain probes are
          // independent and merge in rank order.
          if (auto partial = store_->template load<analysis::PartialDataset>(
                  "dataset.partial")) {
            resume.next_domain =
                static_cast<std::size_t>(partial->next_domain);
            resume.dataset = partial->columns.to_dataset();
          }
          options.on_chunk = [this](const analysis::AlexaDataset& so_far,
                                    std::size_t next_domain) {
            analysis::PartialDataset partial;
            partial.columns = analysis::DatasetColumns::from_dataset(so_far);
            partial.next_domain = next_domain;
            store_->save("dataset.partial", partial);
          };
        }
        analysis::DatasetBuilder builder{*world_, options};
        auto built = builder.build(std::move(resume));
        // The full "dataset" snapshot saved by stage() supersedes any
        // partial; retire it so a config change can't leave one around.
        if (store_) store_->remove("dataset.partial");
        return built;
      },
      [] {});
}

const analysis::CloudUsageReport& Study::cloud_usage() {
  return stage(
      "cloud_usage", cloud_usage_,
      [&] {
        const auto& data = dataset();
        return analysis::analyze_cloud_usage(data);
      },
      [&] { dataset(); });
}

const analysis::PatternReport& Study::patterns() {
  return stage(
      "patterns", patterns_,
      [&] {
        const auto& data = dataset();
        return analysis::analyze_patterns(data, ranges());
      },
      [&] { dataset(); });
}

const analysis::RegionReport& Study::regions() {
  return stage(
      "regions", regions_,
      [&] {
        const auto& data = dataset();
        return analysis::analyze_regions(data, ranges());
      },
      [&] { dataset(); });
}

const proto::TraceLogs& Study::capture_logs() {
  return stage(
      "capture_logs", capture_logs_,
      [&] {
        // Streamed: each traffic unit feeds the flow assembler and is
        // freed before the next one is generated, so the capture never
        // materializes. Byte-identical to analyze_flows(assemble_flows(
        // generator.generate())) — units are tuple-disjoint and the
        // assembler imposes a batching-independent total order.
        synth::TrafficGenerator generator{*world_, config_.traffic};
        pcap::FlowAssembler assembler;
        generator.generate_units(
            [&](std::vector<pcap::Packet>&& unit) { assembler.feed(unit); });
        return proto::analyze_flows(assembler.finish());
      },
      [&] {
        // The generator's constructor launches the heavy-hitter tenants;
        // replaying just the construction keeps provider address
        // allocation identical without regenerating a week of traffic.
        synth::TrafficGenerator generator{*world_, config_.traffic};
      });
}

const analysis::CaptureReport& Study::capture() {
  return stage(
      "capture", capture_,
      [&] {
        const auto& logs = capture_logs();
        return analysis::analyze_capture(logs, ranges(), rank_map());
      },
      [&] { capture_logs(); });
}

internet::WideAreaModel& Study::wan_model() {
  if (!wan_model_)
    wan_model_.emplace(
        internet::WideAreaModel::Config{.seed = config_.world.seed ^ 0x3A});
  return *wan_model_;
}

internet::AsTopology& Study::as_topology() {
  if (!as_topology_)
    as_topology_.emplace(world_->ec2(), config_.world.seed ^ 0xA5);
  return *as_topology_;
}

const analysis::ZoneStudy& Study::zone_study() {
  // Idempotent across retries and shared with the replay path: the
  // estimator constructors launch carto probe fleets into EC2.
  const auto ensure_estimators = [&] {
    if (!proximity_)
      proximity_.emplace(
          world_->ec2(),
          carto::ProximityEstimator::Options{.seed = config_.world.seed ^ 1});
    if (!latency_)
      latency_.emplace(
          world_->ec2(), wan_model(),
          carto::LatencyZoneEstimator::Options{.seed =
                                                   config_.world.seed ^ 2});
  };
  return stage(
      "zone_study", zone_study_,
      [&] {
        const auto& data = dataset();
        ensure_estimators();
        return analysis::run_zone_study(data, ranges(), *world_, *proximity_,
                                        *latency_);
      },
      [&] {
        dataset();
        ensure_estimators();
      });
}

const analysis::Campaign& Study::campaign() {
  return stage(
      "campaign", campaign_,
      [&] {
        const auto vantages =
            internet::planetlab_vantages(config_.campaign_vantages);
        std::vector<const cloud::Region*> regions;
        for (const auto& region : world_->ec2().regions())
          regions.push_back(&region);
        return analysis::run_campaign(wan_model(), vantages, regions,
                                      config_.campaign_days);
      },
      [] {});
}

const analysis::IspStudy& Study::isp_study() {
  return stage(
      "isp_study", isp_study_,
      [&] {
        const auto vantages =
            internet::planetlab_vantages(config_.isp_vantages);
        return analysis::run_isp_study(world_->ec2(), as_topology(),
                                       vantages);
      },
      [&] { analysis::launch_probe_fleet(world_->ec2()); });
}

std::span<const Study::StageDesc> Study::stage_table() { return kStageTable; }

bool Study::build_stage(std::string_view name) {
  if (name == "dataset") dataset();
  else if (name == "cloud_usage") cloud_usage();
  else if (name == "patterns") patterns();
  else if (name == "regions") regions();
  else if (name == "capture_logs") capture_logs();
  else if (name == "capture") capture();
  else if (name == "zone_study") zone_study();
  else if (name == "campaign") campaign();
  else if (name == "isp_study") isp_study();
  else return false;
  return true;
}

void Study::build_all() {
  for (const auto& desc : stage_table()) build_stage(desc.name);
}

std::size_t Study::stages_resumed() const noexcept {
  std::size_t n = 0;
  for (const auto& run : stage_runs_)
    if (run.from_snapshot) ++n;
  return n;
}

}  // namespace cs::core
