#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analysis/capture.h"
#include "analysis/cloud_usage.h"
#include "analysis/dataset.h"
#include "analysis/isp.h"
#include "analysis/patterns.h"
#include "analysis/regions.h"
#include "analysis/widearea.h"
#include "analysis/zones.h"
#include "internet/traceroute.h"
#include "synth/traffic.h"
#include "synth/world.h"

/// CloudScope's front door: one object that owns the simulated universe
/// and lazily runs each stage of the paper's pipeline, caching results so
/// several experiments can share one expensive build.
///
/// Typical use:
///   cs::core::Study study{cs::core::StudyConfig{}};
///   const auto& usage = study.cloud_usage();     // §3.2
///   const auto& patterns = study.patterns();     // §4.1
///   const auto& zones = study.zone_study();      // §4.3
namespace cs::core {

struct StudyConfig {
  synth::WorldConfig world;
  synth::TrafficConfig traffic;
  analysis::DatasetBuilder::Options dataset;
  /// Scale for §5 experiments.
  std::size_t campaign_vantages = 40;
  double campaign_days = 1.0;
  std::size_t isp_vantages = 100;
};

class Study {
 public:
  explicit Study(StudyConfig config);

  const StudyConfig& config() const noexcept { return config_; }
  synth::World& world() noexcept { return *world_; }
  const analysis::CloudRanges& ranges();

  /// Alexa-style rank per registered domain (for capture-table joins).
  const std::map<std::string, std::size_t>& rank_map();

  // --- pipeline stages, built on first use and cached -------------------
  const analysis::AlexaDataset& dataset();
  const analysis::CloudUsageReport& cloud_usage();
  const analysis::PatternReport& patterns();
  const analysis::RegionReport& regions();
  const proto::TraceLogs& capture_logs();
  const analysis::CaptureReport& capture();
  const analysis::ZoneStudy& zone_study();
  const analysis::Campaign& campaign();
  const analysis::IspStudy& isp_study();
  internet::WideAreaModel& wan_model();
  internet::AsTopology& as_topology();

 private:
  StudyConfig config_;
  std::unique_ptr<synth::World> world_;
  std::optional<analysis::CloudRanges> ranges_;
  std::optional<std::map<std::string, std::size_t>> rank_map_;
  std::optional<analysis::AlexaDataset> dataset_;
  std::optional<analysis::CloudUsageReport> cloud_usage_;
  std::optional<analysis::PatternReport> patterns_;
  std::optional<analysis::RegionReport> regions_;
  std::optional<proto::TraceLogs> capture_logs_;
  std::optional<analysis::CaptureReport> capture_;
  std::optional<analysis::ZoneStudy> zone_study_;
  std::optional<analysis::Campaign> campaign_;
  std::optional<analysis::IspStudy> isp_study_;
  std::optional<internet::WideAreaModel> wan_model_;
  std::optional<internet::AsTopology> as_topology_;
  std::optional<carto::ProximityEstimator> proximity_;
  std::optional<carto::LatencyZoneEstimator> latency_;
};

}  // namespace cs::core
