#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "analysis/capture.h"
#include "analysis/cloud_usage.h"
#include "analysis/dataset.h"
#include "analysis/isp.h"
#include "analysis/patterns.h"
#include "analysis/regions.h"
#include "analysis/snapshot.h"
#include "analysis/widearea.h"
#include "analysis/zones.h"
#include "internet/traceroute.h"
#include "netio/loopback.h"
#include "snap/store.h"
#include "snap/supervisor.h"
#include "synth/traffic.h"
#include "synth/world.h"

/// CloudScope's front door: one object that owns the simulated universe
/// and runs each stage of the paper's pipeline under supervision —
/// bounded retries, optional graceful degradation — caching results in
/// memory and, when a checkpoint directory is configured, on disk so a
/// killed run resumes instead of starting over.
///
/// Typical use:
///   cs::core::Study study{cs::core::StudyConfig{}};
///   const auto& usage = study.cloud_usage();     // §3.2
///   const auto& patterns = study.patterns();     // §4.1
///   const auto& zones = study.zone_study();      // §4.3
namespace cs::core {

struct StudyConfig {
  synth::WorldConfig world;
  synth::TrafficConfig traffic;
  analysis::DatasetBuilder::Options dataset;
  /// Scale for §5 experiments.
  std::size_t campaign_vantages = 40;
  double campaign_days = 1.0;
  std::size_t isp_vantages = 100;

  /// Where stage snapshots live; empty defers to CS_CHECKPOINT (and when
  /// that is unset too, checkpointing is off). Deliberately excluded from
  /// the config hash: pointing two runs of the same study at different
  /// directories must not invalidate their snapshots.
  std::string checkpoint_dir;
  /// Retry/deadline/degradation policy for every supervised stage.
  /// Also excluded from the hash — supervision changes how a stage is
  /// driven, never what a completed stage produced.
  snap::SupervisorOptions supervision;

  /// Which wire carries resolver traffic: the in-process simulated
  /// network or the netio live-socket backend (real localhost UDP).
  /// nullopt defers to CS_TRANSPORT. Excluded from the config hash — the
  /// dataset is byte-identical over either backend at the same seed, so
  /// switching transports must not invalidate snapshots.
  std::optional<netio::TransportMode> transport;
  /// Socket-backend sizing, resilience thresholds, and chaos profile.
  /// nullopt defers to the CS_NETIO_* / CS_CHAOS knobs; a set value (even
  /// the defaults) overrides the environment entirely, which is how the
  /// chaos determinism tests stay immune to an ambient CS_CHAOS. Excluded
  /// from the config hash for the same reason as `transport`: the wire's
  /// behaviour never shapes what a completed stage produced.
  std::optional<netio::LoopbackDns::Options> netio;
};

class Study {
 public:
  explicit Study(StudyConfig config);
  ~Study();

  const StudyConfig& config() const noexcept { return config_; }
  synth::World& world() noexcept { return *world_; }
  const analysis::CloudRanges& ranges();

  /// Alexa-style rank per registered domain (for capture-table joins).
  const std::map<std::string, std::size_t>& rank_map();

  // --- pipeline stages, built on first use and cached -------------------
  const analysis::AlexaDataset& dataset();
  const analysis::CloudUsageReport& cloud_usage();
  const analysis::PatternReport& patterns();
  const analysis::RegionReport& regions();
  const proto::TraceLogs& capture_logs();
  const analysis::CaptureReport& capture();
  const analysis::ZoneStudy& zone_study();
  const analysis::Campaign& campaign();
  const analysis::IspStudy& isp_study();
  internet::WideAreaModel& wan_model();
  internet::AsTopology& as_topology();

  // --- stage table & supervision ----------------------------------------

  /// One supervised stage: its name and the stages it forces first.
  struct StageDesc {
    const char* name;
    std::span<const char* const> deps;
  };
  /// Every supervised stage in canonical build order. (ranges/rank_map/
  /// wan_model/as_topology are cheap derived views, not stages.)
  static std::span<const StageDesc> stage_table();

  /// Builds (or resumes) the named stage; false if the name is unknown.
  bool build_stage(std::string_view name);
  /// Builds (or resumes) every stage in table order.
  void build_all();

  /// Per-stage supervision records, in the order stages were entered.
  /// A deque so records stay stable while nested stage builds append.
  const std::deque<snap::StageRun>& stage_runs() const noexcept {
    return stage_runs_;
  }
  std::size_t stages_resumed() const noexcept;

  /// FNV-1a over every config field that shapes stage artifacts (world,
  /// traffic, dataset options, campaign and ISP scale). Snapshots bind to
  /// this; checkpoint_dir and supervision do not participate.
  std::uint64_t config_hash() const;

  /// The active checkpoint store, or nullopt when checkpointing is off.
  const std::optional<snap::Store>& checkpoint_store() const noexcept {
    return store_;
  }

  /// The live-socket backend, or nullptr when resolver traffic rides the
  /// in-process network (its options carry the active chaos profile).
  const netio::LoopbackDns* loopback() const noexcept {
    return loopback_.get();
  }

 private:
  /// The lazy-build skeleton every stage accessor shares. `build` runs
  /// the stage under the supervisor; `replay` re-applies the stage's
  /// world side effects (dependency forcing + instance launches) when the
  /// artifact itself came from a snapshot, so downstream stages see an
  /// identical world either way.
  template <typename T, typename Build, typename Replay>
  const T& stage(const char* name, std::optional<T>& slot, Build&& build,
                 Replay&& replay);

  StudyConfig config_;
  std::unique_ptr<synth::World> world_;
  /// Live-socket backend (CS_TRANSPORT=socket); declared after world_ so
  /// it stops before the network it serves is torn down.
  std::unique_ptr<netio::LoopbackDns> loopback_;
  std::optional<snap::Store> store_;
  snap::Supervisor supervisor_;
  std::deque<snap::StageRun> stage_runs_;
  std::optional<analysis::CloudRanges> ranges_;
  std::optional<std::map<std::string, std::size_t>> rank_map_;
  std::optional<analysis::AlexaDataset> dataset_;
  std::optional<analysis::CloudUsageReport> cloud_usage_;
  std::optional<analysis::PatternReport> patterns_;
  std::optional<analysis::RegionReport> regions_;
  std::optional<proto::TraceLogs> capture_logs_;
  std::optional<analysis::CaptureReport> capture_;
  std::optional<analysis::ZoneStudy> zone_study_;
  std::optional<analysis::Campaign> campaign_;
  std::optional<analysis::IspStudy> isp_study_;
  std::optional<internet::WideAreaModel> wan_model_;
  std::optional<internet::AsTopology> as_topology_;
  std::optional<carto::ProximityEstimator> proximity_;
  std::optional<carto::LatencyZoneEstimator> latency_;
};

}  // namespace cs::core
