#include "dns/transport.h"

#include "dns/message.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace cs::dns {

void SimulatedDnsNetwork::attach(net::Ipv4 address,
                                 std::shared_ptr<AuthoritativeServer> server) {
  servers_[address.value()] = Entry{std::move(server), false};
}

void SimulatedDnsNetwork::set_down(net::Ipv4 address, bool down) {
  if (const auto it = servers_.find(address.value()); it != servers_.end())
    it->second.down = down;
}

std::optional<std::vector<std::uint8_t>> SimulatedDnsNetwork::exchange(
    net::Ipv4 client, net::Ipv4 server, std::span<const std::uint8_t> query) {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (observer_) observer_(client, server);
  const auto it = servers_.find(server.value());
  if (it == servers_.end() || it->second.down) return std::nullopt;

  // Fault injection sits on the wire, not in the server: the resolver
  // sees exactly what a lossy network would show it. Decisions key off
  // the exchange itself (client, server, query bytes), so the same study
  // seed injects the same faults at any CS_THREADS.
  const auto* plan = fault::active_plan();
  std::uint64_t key = 0;
  if (plan) [[unlikely]] {
    key = fault::exchange_key(client.value(), server.value(), query);
    if (plan->decide(fault::Kind::kLoss, key)) {
      static auto& losses = obs::counter("fault.dns.loss");
      losses.inc();
      return std::nullopt;  // query never arrived
    }
    if (plan->decide(fault::Kind::kTimeout, key)) {
      static auto& timeouts = obs::counter("fault.dns.timeout");
      timeouts.inc();
      return std::nullopt;  // server reached, answer never came back
    }
    if (plan->decide(fault::Kind::kServFail, key)) {
      static auto& servfails = obs::counter("fault.dns.servfail");
      servfails.inc();
      if (const auto parsed = Message::decode(query))
        return Message::response_to(*parsed, Rcode::kServFail, false)
            .encode();
      return std::nullopt;
    }
  }

  auto response = it->second.server->handle_wire(client, query);
  if (plan && plan->decide(fault::Kind::kTruncate, key)) [[unlikely]] {
    static auto& truncations = obs::counter("fault.dns.truncate");
    truncations.inc();
    // A strict prefix of the response; the resolver's decode rejects it
    // and treats the exchange as lost.
    auto rng = plan->stream(fault::Kind::kTruncate, key);
    response.resize(rng.next_below(response.size()));
  }
  return response;
}

std::shared_ptr<AuthoritativeServer> SimulatedDnsNetwork::server_at(
    net::Ipv4 address) const {
  const auto it = servers_.find(address.value());
  return it == servers_.end() ? nullptr : it->second.server;
}

}  // namespace cs::dns
