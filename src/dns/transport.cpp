#include "dns/transport.h"

#include "dns/message.h"
#include "fault/fault.h"
#include "obs/metrics.h"

namespace cs::dns {

/// RAII guard counting in-flight serve() calls (debug builds only), so
/// the mutators can assert the build-phase / query-phase separation.
class SimulatedDnsNetwork::ExchangeScope {
 public:
  explicit ExchangeScope(const SimulatedDnsNetwork& net) : net_(net) {
#ifndef NDEBUG
    net_.active_exchanges_.fetch_add(1, std::memory_order_acq_rel);
#endif
  }
  ~ExchangeScope() {
#ifndef NDEBUG
    net_.active_exchanges_.fetch_sub(1, std::memory_order_acq_rel);
#endif
  }
  ExchangeScope(const ExchangeScope&) = delete;
  ExchangeScope& operator=(const ExchangeScope&) = delete;

 private:
  [[maybe_unused]] const SimulatedDnsNetwork& net_;
};

void SimulatedDnsNetwork::assert_quiescent() const {
#ifndef NDEBUG
  assert(active_exchanges_.load(std::memory_order_acquire) == 0 &&
         "SimulatedDnsNetwork mutated while exchanges are in flight; "
         "attach/set_down/set_observer are build-phase only");
#endif
}

void SimulatedDnsNetwork::attach(net::Ipv4 address,
                                 std::shared_ptr<AuthoritativeServer> server) {
  assert_quiescent();
  // try_emplace so Entry (which holds an atomic) never needs to move;
  // unordered_map nodes are address-stable across rehashes.
  const auto [it, inserted] = servers_.try_emplace(address.value());
  it->second.server = std::move(server);
  it->second.down.store(false, std::memory_order_relaxed);
}

void SimulatedDnsNetwork::set_down(net::Ipv4 address, bool down) {
  if (const auto it = servers_.find(address.value()); it != servers_.end())
    it->second.down.store(down, std::memory_order_release);
}

void SimulatedDnsNetwork::set_observer(Observer observer) {
  assert_quiescent();
  observer_ = std::move(observer);
}

WireReply SimulatedDnsNetwork::serve(net::Ipv4 client, net::Ipv4 server,
                                     std::span<const std::uint8_t> query)
    const {
  ExchangeScope scope{*this};
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (observer_) observer_(client, server);
  const auto it = servers_.find(server.value());
  if (it == servers_.end() ||
      it->second.down.load(std::memory_order_acquire))
    return WireReply{WireVerdict::kUnreachable, {}};

  // Fault injection sits on the wire, not in the server: the resolver
  // sees exactly what a lossy network would show it. Decisions key off
  // the exchange itself (client, server, query bytes), so the same study
  // seed injects the same faults at any CS_THREADS — and a socket-mode
  // retransmit of the same query replays the same decision.
  const auto* plan = fault::active_plan();
  std::uint64_t key = 0;
  if (plan) [[unlikely]] {
    // Key past the 2-byte DNS message ID: the socket backend's client
    // rewrites that field for query-ID multiplexing, and fault decisions
    // must not depend on which transport carried the bytes.
    const auto keyed = query.size() >= 2 ? query.subspan(2) : query;
    key = fault::exchange_key(client.value(), server.value(), keyed);
    if (plan->decide(fault::Kind::kLoss, key)) {
      static auto& losses = obs::counter("fault.dns.loss");
      losses.inc();
      return WireReply{WireVerdict::kDrop, {}};  // query never arrived
    }
    if (plan->decide(fault::Kind::kTimeout, key)) {
      static auto& timeouts = obs::counter("fault.dns.timeout");
      timeouts.inc();
      // Server reached, answer never came back.
      return WireReply{WireVerdict::kDrop, {}};
    }
    if (plan->decide(fault::Kind::kServFail, key)) {
      static auto& servfails = obs::counter("fault.dns.servfail");
      servfails.inc();
      if (const auto parsed = Message::decode(query))
        return WireReply{
            WireVerdict::kAnswer,
            Message::response_to(*parsed, Rcode::kServFail, false).encode()};
      return WireReply{WireVerdict::kDrop, {}};
    }
  }

  auto response = it->second.server->handle_wire(client, query);
  if (plan && plan->decide(fault::Kind::kTruncate, key)) [[unlikely]] {
    static auto& truncations = obs::counter("fault.dns.truncate");
    truncations.inc();
    // A strict prefix of the response; the resolver's decode rejects it
    // and treats the exchange as lost.
    auto rng = plan->stream(fault::Kind::kTruncate, key);
    response.resize(rng.next_below(response.size()));
  }
  return WireReply{WireVerdict::kAnswer, std::move(response)};
}

std::optional<std::vector<std::uint8_t>> SimulatedDnsNetwork::exchange(
    net::Ipv4 client, net::Ipv4 server, std::span<const std::uint8_t> query) {
  auto reply = serve(client, server, query);
  if (reply.verdict != WireVerdict::kAnswer) return std::nullopt;
  return std::move(reply.bytes);
}

std::shared_ptr<AuthoritativeServer> SimulatedDnsNetwork::server_at(
    net::Ipv4 address) const {
  const auto it = servers_.find(address.value());
  return it == servers_.end() ? nullptr : it->second.server;
}

}  // namespace cs::dns
