#include "dns/transport.h"

namespace cs::dns {

void SimulatedDnsNetwork::attach(net::Ipv4 address,
                                 std::shared_ptr<AuthoritativeServer> server) {
  servers_[address.value()] = Entry{std::move(server), false};
}

void SimulatedDnsNetwork::set_down(net::Ipv4 address, bool down) {
  if (const auto it = servers_.find(address.value()); it != servers_.end())
    it->second.down = down;
}

std::optional<std::vector<std::uint8_t>> SimulatedDnsNetwork::exchange(
    net::Ipv4 client, net::Ipv4 server, std::span<const std::uint8_t> query) {
  query_count_.fetch_add(1, std::memory_order_relaxed);
  if (observer_) observer_(client, server);
  const auto it = servers_.find(server.value());
  if (it == servers_.end() || it->second.down) return std::nullopt;
  return it->second.server->handle_wire(client, query);
}

std::shared_ptr<AuthoritativeServer> SimulatedDnsNetwork::server_at(
    net::Ipv4 address) const {
  const auto it = servers_.find(address.value());
  return it == servers_.end() ? nullptr : it->second.server;
}

}  // namespace cs::dns
