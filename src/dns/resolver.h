#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dns/message.h"
#include "dns/transport.h"

/// Iterative caching resolver (the role `dig` + the local resolver played
/// in the paper's measurement pipeline).
///
/// Resolution starts from root hints and follows referrals down the
/// delegation tree, resolving out-of-bailiwick name servers as needed,
/// chasing CNAME chains across zones, and caching by TTL against a
/// simulated clock. The cache can be flushed and recursion-desired can be
/// cleared, mirroring the paper's `norecurse` + cache-reset methodology
/// for locating authoritative name servers.
namespace cs::dns {

/// Outcome of one resolution.
struct ResolveResult {
  Rcode rcode = Rcode::kServFail;
  /// Full record chain as a client would see it: CNAMEs first (in chase
  /// order), then the terminal records.
  std::vector<ResourceRecord> records;

  /// Convenience: all A-record addresses in `records`.
  std::vector<net::Ipv4> addresses() const;
  /// Convenience: all CNAME targets in chase order.
  std::vector<Name> cname_chain() const;
  bool ok() const noexcept { return rcode == Rcode::kNoError; }
};

class Resolver {
 public:
  struct Options {
    std::vector<net::Ipv4> root_servers;
    net::Ipv4 client_address{net::Ipv4{192, 0, 2, 1}};
    bool use_cache = true;
    bool recursion_desired = false;  ///< the paper queried with norecurse
    int max_referrals = 32;          ///< delegation-depth guard
    int max_cname_hops = 12;
    /// Total servers tried per delegation step before giving up: the
    /// first attempt plus up to (max_server_attempts - 1) retries against
    /// alternate servers. (This was previously named `server_retries`,
    /// which undersold the bound by one — the loop always admitted
    /// retries + 1 attempts. The count is now named for what it bounds.)
    int max_server_attempts = 3;
  };

  /// TTL for negatively cached timeout-driven SERVFAIL: long enough that
  /// repeated lookups of a dead delegation don't re-probe the whole
  /// server list every time, short enough that recovery is noticed.
  static constexpr std::uint32_t kServFailCacheTtl = 30;

  Resolver(DnsTransport& transport, Options options);

  /// Counter discipline: per-query tallies accumulate in plain members
  /// and reach the shared obs counters as one delta when the resolver
  /// dies (or on flush_metrics()). A paper-scale enumeration pushes tens
  /// of millions of queries through short-lived chunk resolvers; one
  /// shared atomic increment per query measurably dominated that hot
  /// path. A copy only flushes tallies it accrues after the copy; a
  /// moved-from resolver flushes nothing.
  Resolver(const Resolver& other);
  Resolver(Resolver&& other) noexcept;
  Resolver& operator=(const Resolver&) = delete;
  Resolver& operator=(Resolver&&) = delete;
  ~Resolver();

  /// Pushes not-yet-reported tallies to the obs counters now. Useful for
  /// long-lived resolvers whose metrics should appear before teardown.
  void flush_metrics();

  /// Resolves (name, type) iteratively from the roots.
  ResolveResult resolve(const Name& name, RrType type);

  /// Attempts a zone transfer directly against each authoritative server
  /// of `zone_origin`; returns records on the first success.
  std::optional<std::vector<ResourceRecord>> try_axfr(const Name& zone_origin);

  /// Changes the source address used for upstream queries — the dataset
  /// builder re-homes the resolver onto each vantage point so
  /// client-dependent answers (Traffic Manager) are observed from every
  /// location, as the paper's 200-node lookups did.
  void set_client_address(net::Ipv4 address) {
    options_.client_address = address;
  }

  /// Drops all cached entries (the paper flushed caches between NS probes).
  void flush_cache();

  /// Advances the simulated clock, expiring cache entries whose TTL passed.
  void advance_time(std::uint32_t seconds);

  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  std::uint64_t upstream_queries() const noexcept {
    return upstream_queries_;
  }
  /// Exchanges that produced no usable response (timeout / lost / bad
  /// decode) and attempts beyond the first within one delegation step.
  std::uint64_t timeouts() const noexcept { return timeouts_; }
  std::uint64_t retries() const noexcept { return retries_; }

 private:
  struct CacheKey {
    Name name;
    RrType type;
    bool operator<(const CacheKey& other) const {
      if (name != other.name) return Name::canonical_less(name, other.name);
      return type < other.type;
    }
  };
  struct CacheEntry {
    std::vector<ResourceRecord> records;
    Rcode rcode = Rcode::kNoError;
    std::uint64_t expires_at = 0;
  };

  /// One full iterative walk for (name, type); appends to `chain`.
  Rcode resolve_step(const Name& name, RrType type,
                     std::vector<ResourceRecord>& chain, int depth);

  /// Queries one server over the transport; nullopt on timeout/decode error.
  std::optional<Message> ask(net::Ipv4 server, const Name& name, RrType type);

  /// Finds usable name-server addresses from a referral, resolving NS
  /// targets without glue as needed.
  std::vector<net::Ipv4> referral_addresses(const Message& response,
                                            int depth);

  /// `ttl_override` pins the entry's lifetime (negative caching); when
  /// absent the TTL is the minimum record TTL, capped at 300 s.
  void cache_put(const Name& name, RrType type, Rcode rcode,
                 const std::vector<ResourceRecord>& records,
                 std::optional<std::uint32_t> ttl_override = std::nullopt);
  const CacheEntry* cache_get(const Name& name, RrType type);

  DnsTransport& transport_;
  Options options_;
  std::map<CacheKey, CacheEntry> cache_;
  std::uint64_t now_ = 0;
  std::uint16_t next_id_ = 1;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t upstream_queries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t retries_ = 0;
  /// Watermarks: the portion of each tally already flushed to obs.
  std::uint64_t reported_cache_hits_ = 0;
  std::uint64_t reported_upstream_queries_ = 0;
  std::uint64_t reported_timeouts_ = 0;
  std::uint64_t reported_retries_ = 0;
};

}  // namespace cs::dns
