#include "dns/zonefile.h"

#include <charconv>

#include "util/format.h"
#include "util/strings.h"

namespace cs::dns {
namespace {

/// Renders an owner name relative to the origin where possible.
std::string present_owner(const Name& name, const Name& origin) {
  if (name == origin) return "@";
  if (name.is_subdomain_of(origin) && !origin.is_root()) {
    // Strip the origin's labels.
    const auto& labels = name.labels();
    const std::size_t keep = labels.size() - origin.label_count();
    std::string out;
    for (std::size_t i = 0; i < keep; ++i) {
      if (i) out += '.';
      out += labels[i];
    }
    return out;
  }
  return name.to_string() + ".";
}

std::string present_rdata(const ResourceRecord& rr) {
  struct Visitor {
    std::string operator()(const ARecord& r) const {
      return r.address.to_string();
    }
    std::string operator()(const NsRecord& r) const {
      return r.nameserver.to_string() + ".";
    }
    std::string operator()(const CnameRecord& r) const {
      return r.target.to_string() + ".";
    }
    std::string operator()(const SoaRecord& r) const {
      return util::fmt("{}. {}. {} {} {} {} {}", r.mname.to_string(),
                       r.rname.to_string(), r.serial, r.refresh, r.retry,
                       r.expire, r.minimum);
    }
    std::string operator()(const TxtRecord& r) const {
      std::string out;
      for (const auto& s : r.strings) {
        if (!out.empty()) out += ' ';
        out += '"' + s + '"';
      }
      return out;
    }
  };
  return std::visit(Visitor{}, rr.data);
}

/// Resolves an owner token against the origin.
std::optional<Name> parse_owner(std::string_view token, const Name& origin) {
  if (token == "@") return origin;
  if (!token.empty() && token.back() == '.') return Name::parse(token);
  const auto relative = Name::parse(token);
  if (!relative) return std::nullopt;
  // Append the origin's labels.
  std::vector<std::string> labels = relative->labels();
  for (const auto& label : origin.labels()) labels.push_back(label);
  return Name::from_labels(std::move(labels));
}

std::optional<std::uint32_t> parse_u32(std::string_view token) {
  std::uint32_t value = 0;
  const auto [p, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || p != token.data() + token.size())
    return std::nullopt;
  return value;
}

}  // namespace

std::string to_zonefile(const Zone& zone) {
  std::string out = util::fmt("$ORIGIN {}.\n", zone.origin().to_string());
  // SOA first.
  const auto& soa = zone.soa();
  out += util::fmt("@ 3600 IN SOA {}. {}. {} {} {} {} {}\n",
                   soa.mname.to_string(), soa.rname.to_string(), soa.serial,
                   soa.refresh, soa.retry, soa.expire, soa.minimum);
  for (const auto& name : zone.names()) {
    for (const auto& rr : zone.find_all(name)) {
      if (rr.type() == RrType::kSoa) continue;
      out += util::fmt("{} {} IN {} {}\n",
                       present_owner(rr.name, zone.origin()), rr.ttl,
                       to_string(rr.type()), present_rdata(rr));
    }
  }
  return out;
}

ZonefileResult parse_zonefile(std::string_view text) {
  ZonefileResult result;
  std::optional<Name> origin;
  std::optional<SoaRecord> soa;
  Name soa_owner;
  std::uint32_t soa_ttl = 3600;
  struct Pending {
    Name owner;
    std::uint32_t ttl;
    std::string type;
    std::vector<std::string> rdata;
  };
  std::vector<Pending> pending;

  for (auto raw_line : util::split(text, '\n')) {
    // Strip comments and whitespace.
    const auto semi = raw_line.find(';');
    const auto line =
        util::trim(semi == std::string_view::npos ? raw_line
                                                  : raw_line.substr(0, semi));
    if (line.empty()) continue;

    const auto tokens = util::split_nonempty(line, ' ');
    if (tokens[0] == "$ORIGIN") {
      if (tokens.size() != 2 || !(origin = Name::parse(tokens[1]))) {
        result.errors.push_back("bad $ORIGIN: " + std::string{line});
        return result;
      }
      continue;
    }
    if (!origin) {
      result.errors.push_back("record before $ORIGIN: " + std::string{line});
      return result;
    }
    if (tokens.size() < 5 || tokens[2] != "IN") {
      result.errors.push_back("malformed line: " + std::string{line});
      continue;
    }
    const auto owner = parse_owner(tokens[0], *origin);
    const auto ttl = parse_u32(tokens[1]);
    if (!owner || !ttl) {
      result.errors.push_back("bad owner/TTL: " + std::string{line});
      continue;
    }
    const std::string type{tokens[3]};
    std::vector<std::string> rdata;
    for (std::size_t i = 4; i < tokens.size(); ++i)
      rdata.emplace_back(tokens[i]);

    if (type == "SOA") {
      if (soa) {
        result.errors.push_back("duplicate SOA");
        return result;
      }
      if (rdata.size() != 7) {
        result.errors.push_back("bad SOA rdata");
        return result;
      }
      SoaRecord record;
      const auto mname = Name::parse(rdata[0]);
      const auto rname = Name::parse(rdata[1]);
      const auto serial = parse_u32(rdata[2]);
      const auto refresh = parse_u32(rdata[3]);
      const auto retry = parse_u32(rdata[4]);
      const auto expire = parse_u32(rdata[5]);
      const auto minimum = parse_u32(rdata[6]);
      if (!mname || !rname || !serial || !refresh || !retry || !expire ||
          !minimum) {
        result.errors.push_back("bad SOA fields");
        return result;
      }
      record.mname = *mname;
      record.rname = *rname;
      record.serial = *serial;
      record.refresh = *refresh;
      record.retry = *retry;
      record.expire = *expire;
      record.minimum = *minimum;
      soa = record;
      soa_owner = *owner;
      soa_ttl = *ttl;
      continue;
    }
    pending.push_back({*owner, *ttl, type, std::move(rdata)});
  }

  if (!soa) {
    result.errors.push_back("zone has no SOA");
    return result;
  }
  Zone zone{soa_owner, *soa};
  (void)soa_ttl;
  for (const auto& p : pending) {
    std::optional<ResourceRecord> rr;
    if (p.type == "A") {
      if (const auto addr = net::Ipv4::parse(p.rdata.at(0)))
        rr = ResourceRecord::a(p.owner, *addr, p.ttl);
    } else if (p.type == "NS") {
      if (const auto target = Name::parse(p.rdata.at(0)))
        rr = ResourceRecord::ns(p.owner, *target, p.ttl);
    } else if (p.type == "CNAME") {
      if (const auto target = Name::parse(p.rdata.at(0)))
        rr = ResourceRecord::cname(p.owner, *target, p.ttl);
    } else if (p.type == "TXT") {
      std::vector<std::string> strings;
      for (const auto& quoted : p.rdata) {
        if (quoted.size() >= 2 && quoted.front() == '"' &&
            quoted.back() == '"')
          strings.push_back(quoted.substr(1, quoted.size() - 2));
        else
          strings.push_back(quoted);
      }
      rr = ResourceRecord::txt(p.owner, std::move(strings), p.ttl);
    } else {
      result.errors.push_back("unsupported type: " + p.type);
      continue;
    }
    if (!rr || !zone.add(*std::move(rr)))
      result.errors.push_back("rejected record at " + p.owner.to_string());
  }
  result.zone = std::move(zone);
  return result;
}

}  // namespace cs::dns
