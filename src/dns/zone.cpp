#include "dns/zone.h"

namespace cs::dns {

Zone::Zone(Name origin, SoaRecord soa)
    : origin_(std::move(origin)),
      soa_(std::move(soa)),
      nodes_(&Name::canonical_less) {
  ResourceRecord apex;
  apex.name = origin_;
  apex.ttl = 3600;
  apex.data = soa_;
  nodes_[origin_].by_type[RrType::kSoa].push_back(std::move(apex));
  ++record_count_;
}

bool Zone::add(ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(origin_)) return false;
  auto& node = nodes_[rr.name];
  const bool adding_cname = rr.type() == RrType::kCname;
  const bool has_cname = node.by_type.contains(RrType::kCname);
  const bool has_other = !node.by_type.empty() && !has_cname;
  if ((adding_cname && has_other) || (!adding_cname && has_cname))
    return false;
  node.by_type[rr.type()].push_back(std::move(rr));
  ++record_count_;
  return true;
}

bool Zone::has_name(const Name& name) const { return nodes_.contains(name); }

std::vector<ResourceRecord> Zone::find(const Name& name, RrType type) const {
  const auto node = nodes_.find(name);
  if (node == nodes_.end()) return {};
  if (type == RrType::kAny) return find_all(name);
  const auto recs = node->second.by_type.find(type);
  if (recs == node->second.by_type.end()) return {};
  return recs->second;
}

std::vector<ResourceRecord> Zone::find_all(const Name& name) const {
  const auto node = nodes_.find(name);
  if (node == nodes_.end()) return {};
  std::vector<ResourceRecord> out;
  for (const auto& [type, recs] : node->second.by_type)
    out.insert(out.end(), recs.begin(), recs.end());
  return out;
}

std::optional<Name> Zone::delegation_cut(const Name& name) const {
  // Walk from the query name towards the apex; the first (deepest) non-apex
  // owner of NS records below which `name` falls is the cut. We must return
  // the *shallowest* cut between apex and name per RFC 1034 resolution, so
  // walk top-down instead: check each ancestor from just below the apex.
  if (!name.is_subdomain_of(origin_)) return std::nullopt;
  // Collect ancestors from apex (exclusive) down to name (inclusive).
  std::vector<Name> chain;
  Name cursor = name;
  while (cursor != origin_) {
    chain.push_back(cursor);
    if (cursor.is_root()) break;
    cursor = cursor.parent();
  }
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    const auto node = nodes_.find(*it);
    if (node != nodes_.end() && node->second.by_type.contains(RrType::kNs))
      return *it;
  }
  return std::nullopt;
}

std::vector<ResourceRecord> Zone::axfr() const {
  std::vector<ResourceRecord> out;
  ResourceRecord apex;
  apex.name = origin_;
  apex.ttl = 3600;
  apex.data = soa_;
  out.push_back(apex);
  for (const auto& [name, node] : nodes_) {
    for (const auto& [type, recs] : node.by_type) {
      if (type == RrType::kSoa) continue;
      out.insert(out.end(), recs.begin(), recs.end());
    }
  }
  out.push_back(std::move(apex));
  return out;
}

std::vector<Name> Zone::names() const {
  std::vector<Name> out;
  out.reserve(nodes_.size());
  for (const auto& [name, node] : nodes_) out.push_back(name);
  return out;
}

}  // namespace cs::dns
