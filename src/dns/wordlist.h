#pragma once

#include <string>
#include <vector>

/// Subdomain wordlists for brute-force enumeration, in the spirit of the
/// dnsmap/knock lists the paper combined. The built-in list covers the
/// prefixes the paper reports as most frequent (www, m, ftp, cdn, mail,
/// staging, blog, support, test, dev, ...) plus a broader tail.
namespace cs::dns {

/// The default combined wordlist, ordered by how common each prefix is.
const std::vector<std::string>& default_wordlist();

/// A deliberately small list for quick tests and recall ablations.
const std::vector<std::string>& small_wordlist();

}  // namespace cs::dns
