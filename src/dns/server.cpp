#include "dns/server.h"

#include "obs/metrics.h"

namespace cs::dns {
namespace {

struct ServerMetrics {
  obs::Counter& queries = obs::counter("dns.server.queries");
  obs::Counter& axfr_granted = obs::counter("dns.server.axfr_granted");
  obs::Counter& axfr_refused = obs::counter("dns.server.axfr_refused");
  obs::Counter& nxdomain = obs::counter("dns.server.nxdomain");
  obs::Counter& refused = obs::counter("dns.server.refused");

  static ServerMetrics& get() {
    static ServerMetrics metrics;
    return metrics;
  }
};

}  // namespace

Zone& AuthoritativeServer::add_zone(Name origin, SoaRecord soa) {
  auto zone = std::make_unique<Zone>(origin, std::move(soa));
  auto [it, inserted] = zones_.insert_or_assign(origin, std::move(zone));
  return *it->second;
}

Zone* AuthoritativeServer::zone(const Name& origin) {
  const auto it = zones_.find(origin);
  return it == zones_.end() ? nullptr : it->second.get();
}

const Zone* AuthoritativeServer::zone(const Name& origin) const {
  const auto it = zones_.find(origin);
  return it == zones_.end() ? nullptr : it->second.get();
}

const Zone* AuthoritativeServer::best_zone(const Name& name) const {
  const Zone* best = nullptr;
  for (const auto& [origin, zone] : zones_) {
    if (name.is_subdomain_of(origin) &&
        (!best || origin.label_count() > best->origin().label_count()))
      best = zone.get();
  }
  return best;
}

Message AuthoritativeServer::handle(net::Ipv4 client,
                                    const Message& query) const {
  auto& metrics = ServerMetrics::get();
  metrics.queries.inc();
  if (query.header.qr || query.questions.empty())
    return Message::response_to(query, Rcode::kFormErr, false);
  Message response = Message::response_to(query, Rcode::kNoError, false);
  // Standard servers answer the first question; we keep that behaviour.
  answer_question(client, query.questions.front(), response);
  if (response.header.rcode == Rcode::kNxDomain) metrics.nxdomain.inc();
  else if (response.header.rcode == Rcode::kRefused) metrics.refused.inc();
  return response;
}

void AuthoritativeServer::answer_question(net::Ipv4 client, const Question& q,
                                          Message& response) const {
  const Zone* zone = best_zone(q.name);
  if (!zone) {
    response.header.rcode = Rcode::kRefused;
    return;
  }

  if (q.type == RrType::kAxfr) {
    if (q.name != zone->origin() ||
        !(axfr_policy_ && axfr_policy_(client, zone->origin()))) {
      ServerMetrics::get().axfr_refused.inc();
      response.header.rcode = Rcode::kRefused;
      return;
    }
    ServerMetrics::get().axfr_granted.inc();
    response.header.aa = true;
    response.answers = zone->axfr();
    return;
  }

  // Delegation below this zone's apex?
  if (const auto cut = zone->delegation_cut(q.name);
      cut && *cut != zone->origin()) {
    // Referral: NS records at the cut plus any glue we host.
    response.header.aa = false;
    for (auto& ns : zone->find(*cut, RrType::kNs)) {
      if (const auto* target = std::get_if<NsRecord>(&ns.data)) {
        for (auto& glue : zone->find(target->nameserver, RrType::kA))
          response.additional.push_back(std::move(glue));
      }
      response.authority.push_back(std::move(ns));
    }
    return;
  }

  response.header.aa = true;
  Name qname = q.name;
  // In-zone CNAME chasing with a hop guard against record cycles.
  for (int hops = 0; hops < 16; ++hops) {
    // Dynamic (client-dependent) answers take precedence at each step.
    if (dynamic_answer_) {
      if (auto dynamic = dynamic_answer_(client, qname)) {
        const bool is_cname = dynamic->type() == RrType::kCname;
        response.answers.push_back(*dynamic);
        if (is_cname && q.type != RrType::kCname &&
            q.type != RrType::kAny) {
          const auto target =
              std::get<CnameRecord>(response.answers.back().data).target;
          if (!target.is_subdomain_of(zone->origin())) return;
          qname = target;
          continue;
        }
        return;
      }
    }
    auto cnames = zone->find(qname, RrType::kCname);
    if (!cnames.empty() && q.type != RrType::kCname &&
        q.type != RrType::kAny) {
      const auto target = std::get<CnameRecord>(cnames.front().data).target;
      response.answers.push_back(std::move(cnames.front()));
      if (!target.is_subdomain_of(zone->origin())) return;  // out of zone
      qname = target;
      continue;
    }
    auto records = zone->find(qname, q.type);
    if (!records.empty()) {
      for (auto& rr : records) response.answers.push_back(std::move(rr));
      return;
    }
    break;
  }

  // Nothing at the terminal name: NODATA if the name exists, else NXDOMAIN.
  if (!zone->has_name(qname)) response.header.rcode = Rcode::kNxDomain;
  ResourceRecord soa;
  soa.name = zone->origin();
  soa.ttl = zone->soa().minimum;
  soa.data = zone->soa();
  response.authority.push_back(std::move(soa));
}

std::vector<std::uint8_t> AuthoritativeServer::handle_wire(
    net::Ipv4 client, std::span<const std::uint8_t> wire) const {
  const auto query = Message::decode(wire);
  if (!query) {
    Message err;
    err.header.qr = true;
    err.header.rcode = Rcode::kFormErr;
    return err.encode();
  }
  return handle(client, *query).encode();
}

}  // namespace cs::dns
