#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// DNS domain names (RFC 1035 §3.1).
///
/// A Name is an ordered sequence of labels, stored lower-cased because DNS
/// comparison is case-insensitive. The empty sequence is the root ".".
namespace cs::dns {

class Name {
 public:
  /// The root name ".".
  Name() = default;

  /// Parses presentation format ("www.example.com", trailing dot optional).
  /// Returns nullopt for invalid names: empty labels, labels over 63 octets,
  /// total wire length over 255, or characters outside [-_a-z0-9].
  static std::optional<Name> parse(std::string_view text);

  /// Like parse() but throws std::invalid_argument; for literals in tests
  /// and generators where a typo should be loud.
  static Name must_parse(std::string_view text);

  /// Builds from already-validated labels (most-significant last, i.e.
  /// {"www","example","com"}).
  static std::optional<Name> from_labels(std::vector<std::string> labels);

  bool is_root() const noexcept { return labels_.empty(); }
  std::size_t label_count() const noexcept { return labels_.size(); }
  const std::vector<std::string>& labels() const noexcept { return labels_; }

  /// Leftmost (host-most) label; empty string for root.
  std::string_view leftmost() const noexcept;

  /// Name with the leftmost label removed ("www.example.com" -> "example.com").
  /// The parent of root is root.
  Name parent() const;

  /// New name with an extra leftmost label. Returns nullopt if the label or
  /// resulting name is invalid.
  std::optional<Name> child(std::string_view label) const;

  /// True if this name equals `ancestor` or is inside its subtree.
  bool is_subdomain_of(const Name& ancestor) const noexcept;

  /// Number of octets this name occupies uncompressed on the wire.
  std::size_t wire_length() const noexcept;

  /// Presentation format without trailing dot; "." for root.
  std::string to_string() const;

  auto operator<=>(const Name&) const = default;

  /// Canonical DNS ordering (RFC 4034 §6.1): compare label sequences from
  /// the rightmost label; used for deterministic zone iteration.
  static bool canonical_less(const Name& a, const Name& b) noexcept;

 private:
  std::vector<std::string> labels_;
};

/// Functor for unordered_map keys.
struct NameHash {
  std::size_t operator()(const Name& n) const noexcept;
};

}  // namespace cs::dns
