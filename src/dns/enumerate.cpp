#include "dns/enumerate.h"

#include <algorithm>
#include <set>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace cs::dns {
namespace {

/// Wordlist words probed per brute-force chunk. Fixed (never derived from
/// the pool size) so the chunk boundaries — and with them each chunk
/// resolver's cache behaviour and query count — are the same at every
/// CS_THREADS.
constexpr std::size_t kBruteChunkWords = 48;

/// True when resolution found a real node (not NXDOMAIN/empty): the
/// dnsmap existence test shared by both probing paths.
bool name_exists(const ResolveResult& res) {
  return res.rcode == Rcode::kNoError && !res.records.empty();
}

}  // namespace

Enumerator::Enumerator(Resolver& resolver, Options options)
    : resolver_(resolver), options_(std::move(options)) {}

EnumerationResult Enumerator::enumerate(const Name& domain) {
  static auto& axfr_hits = obs::counter("dns.enumerate.axfr_success");
  static auto& axfr_misses = obs::counter("dns.enumerate.axfr_failure");
  static auto& brute_hits = obs::counter("dns.enumerate.brute_hits");
  static auto& brute_misses = obs::counter("dns.enumerate.brute_misses");
  obs::Span span{"dns.enumerate"};

  EnumerationResult result;
  result.domain = domain;
  const std::uint64_t queries_before = resolver_.upstream_queries();

  std::set<Name> found;

  if (options_.attempt_axfr) {
    if (const auto records = resolver_.try_axfr(domain)) {
      result.axfr_succeeded = true;
      axfr_hits.inc();
      for (const auto& rr : *records) {
        if (rr.name == domain || !rr.name.is_subdomain_of(domain)) continue;
        if (rr.type() == RrType::kSoa) continue;
        found.insert(rr.name);
      }
    } else {
      axfr_misses.inc();
    }
  }

  std::uint64_t chunk_queries = 0;
  if (!result.axfr_succeeded) {
    const auto& words = options_.wordlist;
    if (options_.resolver_factory && !words.empty()) {
      // Parallel fan-out: fixed-size wordlist chunks, one fresh resolver
      // per chunk, merged in chunk order. Hits/misses are aggregated per
      // chunk and added once, so counter totals match the sequential path.
      struct ChunkResult {
        std::vector<Name> found;
        std::uint64_t queries = 0;
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
      };
      const std::size_t chunk_count =
          (words.size() + kBruteChunkWords - 1) / kBruteChunkWords;
      const auto chunks = exec::parallel_map(
          chunk_count,
          [&](std::size_t chunk) {
            ChunkResult out;
            Resolver resolver = options_.resolver_factory();
            const std::size_t begin = chunk * kBruteChunkWords;
            const std::size_t end =
                std::min(words.size(), begin + kBruteChunkWords);
            for (std::size_t w = begin; w < end; ++w) {
              const auto candidate = domain.child(words[w]);
              if (!candidate) continue;
              // A name "exists" if resolution did not NXDOMAIN — NODATA
              // names are real nodes (they may hold other types), matching
              // dnsmap semantics.
              if (name_exists(resolver.resolve(*candidate, RrType::kA))) {
                out.found.push_back(*candidate);
                ++out.hits;
              } else {
                ++out.misses;
              }
            }
            out.queries = resolver.upstream_queries();
            return out;
          },
          /*grain=*/1);
      for (const auto& chunk : chunks) {
        found.insert(chunk.found.begin(), chunk.found.end());
        chunk_queries += chunk.queries;
        brute_hits.inc(chunk.hits);
        brute_misses.inc(chunk.misses);
      }
    } else {
      // Aggregated like the parallel path: one counter delta per domain,
      // not one shared atomic bump per wordlist probe.
      std::uint64_t hits = 0;
      std::uint64_t misses = 0;
      for (const auto& word : words) {
        const auto candidate = domain.child(word);
        if (!candidate) continue;
        if (name_exists(resolver_.resolve(*candidate, RrType::kA))) {
          found.insert(*candidate);
          ++hits;
        } else {
          ++misses;
        }
      }
      brute_hits.inc(hits);
      brute_misses.inc(misses);
    }
  }

  if (options_.include_apex) {
    const auto res = resolver_.resolve(domain, RrType::kA);
    if (res.ok() && !res.records.empty()) found.insert(domain);
  }

  result.subdomains.assign(found.begin(), found.end());
  result.queries_spent =
      resolver_.upstream_queries() - queries_before + chunk_queries;
  return result;
}

}  // namespace cs::dns
