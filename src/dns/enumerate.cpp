#include "dns/enumerate.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace cs::dns {

Enumerator::Enumerator(Resolver& resolver, Options options)
    : resolver_(resolver), options_(std::move(options)) {}

EnumerationResult Enumerator::enumerate(const Name& domain) {
  static auto& axfr_hits = obs::counter("dns.enumerate.axfr_success");
  static auto& axfr_misses = obs::counter("dns.enumerate.axfr_failure");
  static auto& brute_hits = obs::counter("dns.enumerate.brute_hits");
  static auto& brute_misses = obs::counter("dns.enumerate.brute_misses");
  obs::Span span{"dns.enumerate"};

  EnumerationResult result;
  result.domain = domain;
  const std::uint64_t queries_before = resolver_.upstream_queries();

  std::set<Name> found;

  if (options_.attempt_axfr) {
    if (const auto records = resolver_.try_axfr(domain)) {
      result.axfr_succeeded = true;
      axfr_hits.inc();
      for (const auto& rr : *records) {
        if (rr.name == domain || !rr.name.is_subdomain_of(domain)) continue;
        if (rr.type() == RrType::kSoa) continue;
        found.insert(rr.name);
      }
    } else {
      axfr_misses.inc();
    }
  }

  if (!result.axfr_succeeded) {
    for (const auto& word : options_.wordlist) {
      const auto candidate = domain.child(word);
      if (!candidate) continue;
      const auto res = resolver_.resolve(*candidate, RrType::kA);
      // A name "exists" if resolution did not NXDOMAIN — NODATA names are
      // real nodes (they may hold other types), matching dnsmap semantics.
      if (res.rcode == Rcode::kNoError && !res.records.empty()) {
        found.insert(*candidate);
        brute_hits.inc();
      } else {
        brute_misses.inc();
      }
    }
  }

  if (options_.include_apex) {
    const auto res = resolver_.resolve(domain, RrType::kA);
    if (res.ok() && !res.records.empty()) found.insert(domain);
  }

  result.subdomains.assign(found.begin(), found.end());
  result.queries_spent = resolver_.upstream_queries() - queries_before;
  return result;
}

}  // namespace cs::dns
