#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "dns/zone.h"

/// RFC 1035 master-file (zone file) serialization.
///
/// Supports the subset of the format our record types need: an $ORIGIN
/// directive, one record per line as `owner TTL IN TYPE rdata`, relative
/// and absolute owner names, `@` for the origin, and `;` comments. This
/// lets worlds and test fixtures round-trip zones through the same text
/// representation BIND-style tooling uses.
namespace cs::dns {

/// Serializes a zone to master-file text ($ORIGIN + SOA first).
std::string to_zonefile(const Zone& zone);

/// Parse outcome: the zone plus any lines that were skipped.
struct ZonefileResult {
  std::optional<Zone> zone;
  std::vector<std::string> errors;  ///< one message per rejected line
};

/// Parses master-file text. Requires an $ORIGIN directive (or an
/// absolute SOA owner) and exactly one SOA. Unknown record types and
/// malformed lines are reported in `errors`; a missing/invalid SOA or
/// origin makes `zone` empty.
ZonefileResult parse_zonefile(std::string_view text);

}  // namespace cs::dns
