#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dns/resolver.h"

/// Subdomain enumeration: the paper's §2.1 dataset-construction method.
///
/// For each domain, first attempt a zone transfer (AXFR); if it is refused
/// (the common case — ~8% of the paper's domains allowed it), fall back to
/// dnsmap-style brute force with a wordlist, confirming candidate names
/// with real queries through the resolver.
namespace cs::dns {

struct EnumerationResult {
  Name domain;
  bool axfr_succeeded = false;
  /// Discovered existing subdomains (not including the apex), with the
  /// records found for them.
  std::vector<Name> subdomains;
  std::uint64_t queries_spent = 0;
};

class Enumerator {
 public:
  struct Options {
    std::vector<std::string> wordlist;
    bool attempt_axfr = true;
    /// Probe the apex itself too (the paper's dataset keys on subdomains,
    /// apex A records count as the bare domain).
    bool include_apex = false;
    /// When set, the brute-force wordlist fans out over the exec pool in
    /// fixed-size chunks, each chunk confirming candidates through its own
    /// resolver built by this factory (resolvers are stateful, so threads
    /// cannot share one). The chunking is independent of CS_THREADS, so
    /// discovered names *and query counts* are byte-identical at any
    /// thread count. Unset = sequential probing through the shared
    /// resolver, as before.
    std::function<Resolver()> resolver_factory;
  };

  Enumerator(Resolver& resolver, Options options);

  /// Enumerates subdomains of one registered domain.
  EnumerationResult enumerate(const Name& domain);

 private:
  Resolver& resolver_;
  Options options_;
};

}  // namespace cs::dns
