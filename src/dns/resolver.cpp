#include "dns/resolver.h"

#include <algorithm>

#include "obs/metrics.h"

namespace cs::dns {

std::vector<net::Ipv4> ResolveResult::addresses() const {
  std::vector<net::Ipv4> out;
  for (const auto& rr : records)
    if (const auto* a = std::get_if<ARecord>(&rr.data))
      out.push_back(a->address);
  return out;
}

std::vector<Name> ResolveResult::cname_chain() const {
  std::vector<Name> out;
  for (const auto& rr : records)
    if (const auto* c = std::get_if<CnameRecord>(&rr.data))
      out.push_back(c->target);
  return out;
}

Resolver::Resolver(DnsTransport& transport, Options options)
    : transport_(transport), options_(std::move(options)) {}

Resolver::Resolver(const Resolver& other)
    : transport_(other.transport_),
      options_(other.options_),
      cache_(other.cache_),
      now_(other.now_),
      next_id_(other.next_id_),
      cache_hits_(other.cache_hits_),
      upstream_queries_(other.upstream_queries_),
      timeouts_(other.timeouts_),
      retries_(other.retries_),
      // The copy keeps the tallies for its accessors but must not flush
      // history the source will already report.
      reported_cache_hits_(other.cache_hits_),
      reported_upstream_queries_(other.upstream_queries_),
      reported_timeouts_(other.timeouts_),
      reported_retries_(other.retries_) {}

Resolver::Resolver(Resolver&& other) noexcept
    : transport_(other.transport_),
      options_(std::move(other.options_)),
      cache_(std::move(other.cache_)),
      now_(other.now_),
      next_id_(other.next_id_),
      cache_hits_(other.cache_hits_),
      upstream_queries_(other.upstream_queries_),
      timeouts_(other.timeouts_),
      retries_(other.retries_),
      reported_cache_hits_(other.reported_cache_hits_),
      reported_upstream_queries_(other.reported_upstream_queries_),
      reported_timeouts_(other.reported_timeouts_),
      reported_retries_(other.reported_retries_) {
  // The unflushed delta now belongs to the destination.
  other.reported_cache_hits_ = other.cache_hits_;
  other.reported_upstream_queries_ = other.upstream_queries_;
  other.reported_timeouts_ = other.timeouts_;
  other.reported_retries_ = other.retries_;
}

Resolver::~Resolver() { flush_metrics(); }

void Resolver::flush_metrics() {
  static auto& upstream_metric =
      obs::counter("dns.resolver.upstream_queries");
  static auto& cache_hit_metric = obs::counter("dns.resolver.cache_hits");
  static auto& retry_metric = obs::counter("dns.resolver.retries");
  static auto& timeout_metric = obs::counter("dns.resolver.timeouts");
  if (upstream_queries_ > reported_upstream_queries_)
    upstream_metric.inc(upstream_queries_ - reported_upstream_queries_);
  if (cache_hits_ > reported_cache_hits_)
    cache_hit_metric.inc(cache_hits_ - reported_cache_hits_);
  if (retries_ > reported_retries_)
    retry_metric.inc(retries_ - reported_retries_);
  if (timeouts_ > reported_timeouts_)
    timeout_metric.inc(timeouts_ - reported_timeouts_);
  reported_upstream_queries_ = upstream_queries_;
  reported_cache_hits_ = cache_hits_;
  reported_retries_ = retries_;
  reported_timeouts_ = timeouts_;
}

ResolveResult Resolver::resolve(const Name& name, RrType type) {
  ResolveResult result;
  result.rcode = resolve_step(name, type, result.records, 0);
  return result;
}

std::optional<Message> Resolver::ask(net::Ipv4 server, const Name& name,
                                     RrType type) {
  const auto query = Message::query(next_id_++, name, type,
                                    options_.recursion_desired);
  ++upstream_queries_;
  const auto wire =
      transport_.exchange(options_.client_address, server, query.encode());
  if (!wire) return std::nullopt;
  auto response = Message::decode(*wire);
  if (!response || response->header.id != query.header.id ||
      !response->header.qr)
    return std::nullopt;
  return response;
}

void Resolver::cache_put(const Name& name, RrType type, Rcode rcode,
                         const std::vector<ResourceRecord>& records,
                         std::optional<std::uint32_t> ttl_override) {
  if (!options_.use_cache) return;
  std::uint32_t ttl = 300;
  for (const auto& rr : records) ttl = std::min(ttl, rr.ttl);
  if (ttl_override) ttl = *ttl_override;
  CacheEntry entry;
  entry.records = records;
  entry.rcode = rcode;
  entry.expires_at = now_ + ttl;
  cache_[CacheKey{name, type}] = std::move(entry);
}

const Resolver::CacheEntry* Resolver::cache_get(const Name& name,
                                                RrType type) {
  if (!options_.use_cache) return nullptr;
  const auto it = cache_.find(CacheKey{name, type});
  if (it == cache_.end()) return nullptr;
  if (it->second.expires_at <= now_) {
    cache_.erase(it);
    return nullptr;
  }
  ++cache_hits_;
  return &it->second;
}

std::vector<net::Ipv4> Resolver::referral_addresses(const Message& response,
                                                    int depth) {
  std::vector<Name> ns_names;
  for (const auto& rr : response.authority)
    if (const auto* ns = std::get_if<NsRecord>(&rr.data))
      ns_names.push_back(ns->nameserver);

  std::vector<net::Ipv4> out;
  // Prefer glue.
  for (const auto& rr : response.additional) {
    if (const auto* a = std::get_if<ARecord>(&rr.data)) {
      if (std::find(ns_names.begin(), ns_names.end(), rr.name) !=
          ns_names.end())
        out.push_back(a->address);
    }
  }
  if (!out.empty()) return out;

  // Glueless delegation: resolve the NS names themselves.
  for (const auto& ns : ns_names) {
    std::vector<ResourceRecord> chain;
    if (resolve_step(ns, RrType::kA, chain, depth + 1) == Rcode::kNoError) {
      for (const auto& rr : chain)
        if (const auto* a = std::get_if<ARecord>(&rr.data))
          out.push_back(a->address);
    }
    if (!out.empty()) break;
  }
  return out;
}

Rcode Resolver::resolve_step(const Name& name, RrType type,
                             std::vector<ResourceRecord>& chain, int depth) {
  if (depth > options_.max_cname_hops) return Rcode::kServFail;

  if (const auto* cached = cache_get(name, type)) {
    chain.insert(chain.end(), cached->records.begin(), cached->records.end());
    // A cached CNAME terminal still needs chasing if it doesn't carry the
    // requested type (we cache full chains, so this is rare but possible
    // after partial expiry).
    return cached->rcode;
  }

  std::vector<net::Ipv4> servers = options_.root_servers;
  std::vector<ResourceRecord> collected;

  // Failure at any delegation step is a dead delegation: negatively cache
  // the SERVFAIL with a short pinned TTL so repeated lookups don't
  // re-probe the whole server list until kServFailCacheTtl passes.
  const auto servfail = [&](const Name& n, RrType t) {
    cache_put(n, t, Rcode::kServFail, {}, kServFailCacheTtl);
    return Rcode::kServFail;
  };

  for (int hop = 0; hop < options_.max_referrals; ++hop) {
    if (servers.empty()) return servfail(name, type);

    std::optional<Message> response;
    // Try servers in order (up to max_server_attempts of them) until one
    // responds — the paper's dig runs tolerated flaky authoritatives the
    // same way.
    int attempts = 0;
    for (const auto server : servers) {
      if (attempts >= options_.max_server_attempts) break;
      if (attempts > 0) ++retries_;
      ++attempts;
      response = ask(server, name, type);
      if (response) break;
      ++timeouts_;
    }
    if (!response) return servfail(name, type);

    if (response->header.rcode != Rcode::kNoError) {
      cache_put(name, type, response->header.rcode, collected);
      chain.insert(chain.end(), collected.begin(), collected.end());
      return response->header.rcode;
    }

    if (!response->answers.empty()) {
      // Separate terminal answers from a CNAME that needs cross-zone
      // chasing: if the final answer record is a CNAME and we asked for
      // something else, restart at its target.
      collected.insert(collected.end(), response->answers.begin(),
                       response->answers.end());
      const auto& last = response->answers.back();
      if (type != RrType::kCname && type != RrType::kAny &&
          last.type() == RrType::kCname) {
        const auto target = std::get<CnameRecord>(last.data).target;
        std::vector<ResourceRecord> tail;
        const Rcode rc = resolve_step(target, type, tail, depth + 1);
        collected.insert(collected.end(), tail.begin(), tail.end());
        cache_put(name, type, rc, collected);
        chain.insert(chain.end(), collected.begin(), collected.end());
        return rc;
      }
      cache_put(name, type, Rcode::kNoError, collected);
      chain.insert(chain.end(), collected.begin(), collected.end());
      return Rcode::kNoError;
    }

    // NODATA (authoritative empty answer with SOA) terminates.
    const bool has_ns_referral = std::any_of(
        response->authority.begin(), response->authority.end(),
        [](const ResourceRecord& rr) { return rr.type() == RrType::kNs; });
    if (!has_ns_referral) {
      cache_put(name, type, Rcode::kNoError, collected);
      chain.insert(chain.end(), collected.begin(), collected.end());
      return Rcode::kNoError;
    }

    // Referral: descend.
    servers = referral_addresses(*response, depth);
  }
  return Rcode::kServFail;
}

std::optional<std::vector<ResourceRecord>> Resolver::try_axfr(
    const Name& zone_origin) {
  // Find the zone's name servers first, then ask each directly.
  ResolveResult ns = resolve(zone_origin, RrType::kNs);
  if (!ns.ok()) return std::nullopt;
  std::vector<Name> ns_names;
  for (const auto& rr : ns.records)
    if (const auto* rec = std::get_if<NsRecord>(&rr.data))
      ns_names.push_back(rec->nameserver);
  for (const auto& ns_name : ns_names) {
    ResolveResult addr = resolve(ns_name, RrType::kA);
    for (const auto server : addr.addresses()) {
      const auto response = ask(server, zone_origin, RrType::kAxfr);
      if (response && response->header.rcode == Rcode::kNoError &&
          !response->answers.empty())
        return response->answers;
    }
  }
  return std::nullopt;
}

void Resolver::flush_cache() { cache_.clear(); }

void Resolver::advance_time(std::uint32_t seconds) {
  now_ += seconds;
  std::erase_if(cache_, [this](const auto& kv) {
    return kv.second.expires_at <= now_;
  });
}

}  // namespace cs::dns
