#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/server.h"
#include "net/ipv4.h"

/// Transport between resolvers and authoritative servers.
///
/// The resolver only sees wire bytes, so the same resolver code would run
/// over a real UDP socket; in this repository the transport routes the
/// bytes to in-process AuthoritativeServer instances. Seeded faults
/// (cs::fault, CS_FAULT) are injected here on the wire — dropped,
/// timed-out, truncated, and SERVFAIL'd exchanges — so failure handling
/// is testable deterministically.
namespace cs::dns {

class DnsTransport {
 public:
  virtual ~DnsTransport() = default;

  /// Sends one query datagram from `client` to `server`; returns the raw
  /// response or nullopt for a timeout/unreachable server.
  virtual std::optional<std::vector<std::uint8_t>> exchange(
      net::Ipv4 client, net::Ipv4 server,
      std::span<const std::uint8_t> query) = 0;
};

/// In-process transport mapping server IPs to AuthoritativeServer objects.
///
/// exchange() is safe to call from many resolver threads at once *after*
/// the topology is built: attach/set_down/set_observer mutate the routing
/// table and must happen before (or between) parallel query phases, which
/// is how World uses it — servers attach during world construction, the
/// dataset builder fans out afterwards.
class SimulatedDnsNetwork final : public DnsTransport {
 public:
  /// Registers a server reachable at `address`. One server object may be
  /// registered at several addresses (anycast/fleet behaviour).
  void attach(net::Ipv4 address, std::shared_ptr<AuthoritativeServer> server);

  /// Marks an address unreachable (queries time out) / reachable again.
  void set_down(net::Ipv4 address, bool down);

  /// Optional hook observing every exchanged query (for stats and tests).
  using Observer = std::function<void(net::Ipv4 client, net::Ipv4 server)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  std::optional<std::vector<std::uint8_t>> exchange(
      net::Ipv4 client, net::Ipv4 server,
      std::span<const std::uint8_t> query) override;

  std::uint64_t query_count() const noexcept {
    return query_count_.load(std::memory_order_relaxed);
  }
  std::size_t server_count() const noexcept { return servers_.size(); }

  /// Finds the server object registered at an address, if any.
  std::shared_ptr<AuthoritativeServer> server_at(net::Ipv4 address) const;

 private:
  struct Entry {
    std::shared_ptr<AuthoritativeServer> server;
    bool down = false;
  };
  std::unordered_map<std::uint32_t, Entry> servers_;
  Observer observer_;
  std::atomic<std::uint64_t> query_count_{0};
};

}  // namespace cs::dns
