#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "dns/server.h"
#include "net/ipv4.h"

/// Transport between resolvers and authoritative servers.
///
/// The resolver only sees wire bytes, so the same resolver code would run
/// over a real UDP socket; in this repository the bytes either stay
/// in-process (SimulatedDnsNetwork) or travel real localhost UDP
/// (netio::SocketDnsTransport / netio::DnsSocketServer, selected with
/// CS_TRANSPORT=socket). Seeded faults (cs::fault, CS_FAULT) are injected
/// here on the wire — dropped, timed-out, truncated, and SERVFAIL'd
/// exchanges — so failure handling is testable deterministically.
namespace cs::dns {

class DnsTransport {
 public:
  virtual ~DnsTransport() = default;

  /// Sends one query datagram from `client` to `server`; returns the raw
  /// response or nullopt for a timeout/unreachable server.
  virtual std::optional<std::vector<std::uint8_t>> exchange(
      net::Ipv4 client, net::Ipv4 server,
      std::span<const std::uint8_t> query) = 0;
};

/// What the authoritative side of the wire did with one query datagram.
enum class WireVerdict : std::uint8_t {
  kAnswer,       ///< `bytes` holds the response datagram
  kDrop,         ///< injected loss/timeout: the wire stays silent
  kUnreachable,  ///< no server at that address (or marked down)
};

struct WireReply {
  WireVerdict verdict = WireVerdict::kDrop;
  std::vector<std::uint8_t> bytes;
};

/// In-process transport mapping server IPs to AuthoritativeServer objects.
///
/// ## Concurrency contract
///
/// The routing table is built single-threaded and then read from many
/// threads at once: resolver threads during parallel dataset phases, and
/// netio reactor threads when the socket backend fronts this table.
/// `serve()`/`exchange()`/`server_count()`/`server_at()` are safe to call
/// concurrently with each other. The mutators — `attach`, `set_down`,
/// `set_observer` — are NOT safe concurrently with reads: they must run
/// before (or between) query phases, which is how World uses them
/// (servers attach during world construction, fault phases flip `set_down`
/// between builder passes). Debug builds enforce the phasing with an
/// active-exchange assertion; release builds rely on the contract.
///
/// The one sanctioned mid-phase mutation is the `down` flag itself, which
/// is atomic so a supervisor thread may flip reachability while queries
/// are in flight without a data race (each in-flight exchange then sees
/// either verdict, exactly like a real outage edge).
class SimulatedDnsNetwork final : public DnsTransport {
 public:
  /// Registers a server reachable at `address`. One server object may be
  /// registered at several addresses (anycast/fleet behaviour).
  /// Build-phase only — see the concurrency contract above.
  void attach(net::Ipv4 address, std::shared_ptr<AuthoritativeServer> server);

  /// Marks an address unreachable (queries time out) / reachable again.
  /// Build-phase only; the flag itself is atomic (see contract above).
  void set_down(net::Ipv4 address, bool down);

  /// Optional hook observing every exchanged query (for stats and tests).
  /// Build-phase only to install; the hook itself runs on whichever
  /// thread serves the query and must be thread-safe.
  using Observer = std::function<void(net::Ipv4 client, net::Ipv4 server)>;
  void set_observer(Observer observer);

  /// Serves one query datagram exactly as the authoritative side of the
  /// wire would: routing, seeded fault injection, and zone answering in
  /// one pure-given-the-seed step. Both backends answer through here —
  /// exchange() below for the in-process wire, netio::DnsSocketServer for
  /// the UDP one — which is what keeps a socket run byte-identical to a
  /// sim run at the same seed (a retransmitted query re-enters with the
  /// same bytes, so every fault decision replays identically).
  /// Thread-safe after the build phase.
  WireReply serve(net::Ipv4 client, net::Ipv4 server,
                  std::span<const std::uint8_t> query) const;

  std::optional<std::vector<std::uint8_t>> exchange(
      net::Ipv4 client, net::Ipv4 server,
      std::span<const std::uint8_t> query) override;

  /// Queries served (every attempt counts, including retransmits reaching
  /// the socket backend). Thread-safe.
  std::uint64_t query_count() const noexcept {
    return query_count_.load(std::memory_order_relaxed);
  }

  /// Size of the routing table. Safe concurrently with serve()/exchange()
  /// (the table is read-only then); not with attach().
  std::size_t server_count() const noexcept { return servers_.size(); }

  /// Finds the server object registered at an address, if any. Same
  /// concurrency contract as server_count().
  std::shared_ptr<AuthoritativeServer> server_at(net::Ipv4 address) const;

 private:
  /// Map values hold an atomic, so entries are built in place via
  /// try_emplace (node stability makes that sufficient — no moves).
  struct Entry {
    std::shared_ptr<AuthoritativeServer> server;
    std::atomic<bool> down{false};
  };

  /// Debug-mode phasing check: mutators assert no serve() is in flight.
  class ExchangeScope;
  void assert_quiescent() const;

  std::unordered_map<std::uint32_t, Entry> servers_;
  Observer observer_;
  mutable std::atomic<std::uint64_t> query_count_{0};
#ifndef NDEBUG
  mutable std::atomic<int> active_exchanges_{0};
#endif
};

}  // namespace cs::dns
