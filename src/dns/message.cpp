#include "dns/message.h"

#include <cstring>
#include <map>

namespace cs::dns {
namespace {

constexpr std::uint16_t kClassIn = 1;
constexpr std::size_t kMaxPointerHops = 64;

/// Serializer with RFC 1035 §4.1.4 name compression.
class Writer {
 public:
  std::vector<std::uint8_t> take() && { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  /// Writes a name, emitting a compression pointer for the longest
  /// previously-seen suffix.
  void name(const Name& n) {
    const auto& labels = n.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      // Suffix starting at label i, keyed by its presentation form.
      std::string suffix;
      for (std::size_t j = i; j < labels.size(); ++j) {
        suffix += labels[j];
        suffix += '.';
      }
      if (const auto it = offsets_.find(suffix); it != offsets_.end()) {
        u16(static_cast<std::uint16_t>(0xC000 | it->second));
        return;
      }
      if (buf_.size() <= 0x3FFF) offsets_.emplace(suffix, buf_.size());
      u8(static_cast<std::uint8_t>(labels[i].size()));
      bytes({reinterpret_cast<const std::uint8_t*>(labels[i].data()),
             labels[i].size()});
    }
    u8(0);  // root terminator
  }

 private:
  std::vector<std::uint8_t> buf_;
  std::map<std::string, std::size_t> offsets_;
};

/// Bounds-checked reader with compression-pointer chasing.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool ok() const noexcept { return ok_; }
  std::size_t pos() const noexcept { return pos_; }

  std::uint8_t u8() {
    if (pos_ + 1 > wire_.size()) return fail<std::uint8_t>();
    return wire_[pos_++];
  }
  std::uint16_t u16() {
    if (pos_ + 2 > wire_.size()) return fail<std::uint16_t>();
    const std::uint16_t v =
        static_cast<std::uint16_t>((wire_[pos_] << 8) | wire_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }

  Name name() {
    std::vector<std::string> labels;
    std::size_t cursor = pos_;
    std::size_t hops = 0;
    bool jumped = false;
    for (;;) {
      if (cursor >= wire_.size()) return fail<Name>();
      const std::uint8_t len = wire_[cursor];
      if ((len & 0xC0) == 0xC0) {
        if (cursor + 1 >= wire_.size() || ++hops > kMaxPointerHops)
          return fail<Name>();
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
        if (!jumped) {
          pos_ = cursor + 2;
          jumped = true;
        }
        if (target >= cursor) return fail<Name>();  // forward pointers banned
        cursor = target;
        continue;
      }
      if (len > 63) return fail<Name>();
      if (len == 0) {
        if (!jumped) pos_ = cursor + 1;
        break;
      }
      if (cursor + 1 + len > wire_.size()) return fail<Name>();
      labels.emplace_back(
          reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
      cursor += 1 + len;
    }
    auto n = Name::from_labels(std::move(labels));
    if (!n) return fail<Name>();
    return *std::move(n);
  }

  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (pos_ + n > wire_.size()) return fail<std::span<const std::uint8_t>>();
    const auto out = wire_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  template <typename T>
  T fail() {
    ok_ = false;
    return T{};
  }

  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void encode_rr(Writer& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type()));
  w.u16(kClassIn);
  w.u32(rr.ttl);
  const std::size_t rdlength_at = w.size();
  w.u16(0);  // placeholder
  const std::size_t rdata_start = w.size();
  struct Visitor {
    Writer& w;
    void operator()(const ARecord& r) { w.u32(r.address.value()); }
    void operator()(const NsRecord& r) { w.name(r.nameserver); }
    void operator()(const CnameRecord& r) { w.name(r.target); }
    void operator()(const SoaRecord& r) {
      w.name(r.mname);
      w.name(r.rname);
      w.u32(r.serial);
      w.u32(r.refresh);
      w.u32(r.retry);
      w.u32(r.expire);
      w.u32(r.minimum);
    }
    void operator()(const TxtRecord& r) {
      for (const auto& s : r.strings) {
        w.u8(static_cast<std::uint8_t>(std::min<std::size_t>(s.size(), 255)));
        w.bytes({reinterpret_cast<const std::uint8_t*>(s.data()),
                 std::min<std::size_t>(s.size(), 255)});
      }
    }
  };
  std::visit(Visitor{w}, rr.data);
  w.patch_u16(rdlength_at, static_cast<std::uint16_t>(w.size() - rdata_start));
}

std::optional<ResourceRecord> decode_rr(Reader& r) {
  ResourceRecord rr;
  rr.name = r.name();
  const auto type = static_cast<RrType>(r.u16());
  const auto klass = r.u16();
  rr.ttl = r.u32();
  const std::uint16_t rdlength = r.u16();
  if (!r.ok() || klass != kClassIn) return std::nullopt;
  const std::size_t rdata_end = r.pos() + rdlength;
  switch (type) {
    case RrType::kA: {
      if (rdlength != 4) return std::nullopt;
      rr.data = ARecord{net::Ipv4{r.u32()}};
      break;
    }
    case RrType::kNs:
      rr.data = NsRecord{r.name()};
      break;
    case RrType::kCname:
      rr.data = CnameRecord{r.name()};
      break;
    case RrType::kSoa: {
      SoaRecord soa;
      soa.mname = r.name();
      soa.rname = r.name();
      soa.serial = r.u32();
      soa.refresh = r.u32();
      soa.retry = r.u32();
      soa.expire = r.u32();
      soa.minimum = r.u32();
      rr.data = std::move(soa);
      break;
    }
    case RrType::kTxt: {
      TxtRecord txt;
      while (r.ok() && r.pos() < rdata_end) {
        const std::uint8_t len = r.u8();
        const auto bytes = r.bytes(len);
        if (!r.ok()) return std::nullopt;
        txt.strings.emplace_back(reinterpret_cast<const char*>(bytes.data()),
                                 bytes.size());
      }
      rr.data = std::move(txt);
      break;
    }
    default:
      return std::nullopt;  // unknown type in a response we generated
  }
  if (!r.ok() || r.pos() != rdata_end) return std::nullopt;
  return rr;
}

}  // namespace

std::string to_string(Rcode rcode) {
  switch (rcode) {
    case Rcode::kNoError:
      return "NOERROR";
    case Rcode::kFormErr:
      return "FORMERR";
    case Rcode::kServFail:
      return "SERVFAIL";
    case Rcode::kNxDomain:
      return "NXDOMAIN";
    case Rcode::kNotImp:
      return "NOTIMP";
    case Rcode::kRefused:
      return "REFUSED";
  }
  return "RCODE?";
}

Message Message::query(std::uint16_t id, Name name, RrType type,
                       bool recursion_desired) {
  Message m;
  m.header.id = id;
  m.header.rd = recursion_desired;
  m.questions.push_back({std::move(name), type});
  return m;
}

Message Message::response_to(const Message& query, Rcode rcode,
                             bool authoritative) {
  Message m;
  m.header.id = query.header.id;
  m.header.qr = true;
  m.header.aa = authoritative;
  m.header.rd = query.header.rd;
  m.header.rcode = rcode;
  m.questions = query.questions;
  return m;
}

std::vector<std::uint8_t> Message::encode() const {
  Writer w;
  w.u16(header.id);
  std::uint16_t flags = 0;
  flags |= header.qr ? 0x8000 : 0;
  flags |= static_cast<std::uint16_t>(header.opcode) << 11;
  flags |= header.aa ? 0x0400 : 0;
  flags |= header.tc ? 0x0200 : 0;
  flags |= header.rd ? 0x0100 : 0;
  flags |= header.ra ? 0x0080 : 0;
  flags |= static_cast<std::uint16_t>(header.rcode);
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(questions.size()));
  w.u16(static_cast<std::uint16_t>(answers.size()));
  w.u16(static_cast<std::uint16_t>(authority.size()));
  w.u16(static_cast<std::uint16_t>(additional.size()));
  for (const auto& q : questions) {
    w.name(q.name);
    w.u16(static_cast<std::uint16_t>(q.type));
    w.u16(kClassIn);
  }
  for (const auto& rr : answers) encode_rr(w, rr);
  for (const auto& rr : authority) encode_rr(w, rr);
  for (const auto& rr : additional) encode_rr(w, rr);
  return std::move(w).take();
}

std::optional<Message> Message::decode(std::span<const std::uint8_t> wire) {
  Reader r{wire};
  Message m;
  m.header.id = r.u16();
  const std::uint16_t flags = r.u16();
  m.header.qr = flags & 0x8000;
  m.header.opcode = static_cast<Opcode>((flags >> 11) & 0xF);
  m.header.aa = flags & 0x0400;
  m.header.tc = flags & 0x0200;
  m.header.rd = flags & 0x0100;
  m.header.ra = flags & 0x0080;
  m.header.rcode = static_cast<Rcode>(flags & 0xF);
  const std::uint16_t qd = r.u16();
  const std::uint16_t an = r.u16();
  const std::uint16_t ns = r.u16();
  const std::uint16_t ar = r.u16();
  if (!r.ok()) return std::nullopt;
  for (int i = 0; i < qd; ++i) {
    Question q;
    q.name = r.name();
    q.type = static_cast<RrType>(r.u16());
    const auto klass = r.u16();
    if (!r.ok() || klass != kClassIn) return std::nullopt;
    m.questions.push_back(std::move(q));
  }
  auto read_section = [&r](int count, std::vector<ResourceRecord>& out) {
    for (int i = 0; i < count; ++i) {
      auto rr = decode_rr(r);
      if (!rr) return false;
      out.push_back(*std::move(rr));
    }
    return true;
  };
  if (!read_section(an, m.answers) || !read_section(ns, m.authority) ||
      !read_section(ar, m.additional))
    return std::nullopt;
  if (!r.ok()) return std::nullopt;
  return m;
}

}  // namespace cs::dns
