#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "net/ipv4.h"

/// DNS resource records. We implement the record types the study's
/// methodology actually exercises: A (address matching against cloud
/// ranges), CNAME (deployment-pattern heuristics), NS (name-server
/// location), SOA (zone apex / AXFR framing) and TXT (generic payloads).
namespace cs::dns {

enum class RrType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kTxt = 16,
  kAxfr = 252,  ///< query-only pseudo-type
  kAny = 255,   ///< query-only pseudo-type
};

std::string to_string(RrType type);

/// Typed record data.
struct ARecord {
  net::Ipv4 address;
  bool operator==(const ARecord&) const = default;
};
struct NsRecord {
  Name nameserver;
  bool operator==(const NsRecord&) const = default;
};
struct CnameRecord {
  Name target;
  bool operator==(const CnameRecord&) const = default;
};
struct SoaRecord {
  Name mname;  ///< primary name server
  Name rname;  ///< responsible mailbox, encoded as a name
  std::uint32_t serial = 0;
  std::uint32_t refresh = 7200;
  std::uint32_t retry = 900;
  std::uint32_t expire = 1209600;
  std::uint32_t minimum = 300;
  bool operator==(const SoaRecord&) const = default;
};
struct TxtRecord {
  std::vector<std::string> strings;
  bool operator==(const TxtRecord&) const = default;
};

using Rdata = std::variant<ARecord, NsRecord, CnameRecord, SoaRecord,
                           TxtRecord>;

/// One resource record.
struct ResourceRecord {
  Name name;
  std::uint32_t ttl = 300;
  Rdata data;

  RrType type() const noexcept;
  bool operator==(const ResourceRecord&) const = default;

  /// Zone-file-ish presentation ("www.example.com 300 IN A 1.2.3.4").
  std::string to_string() const;

  static ResourceRecord a(Name name, net::Ipv4 addr, std::uint32_t ttl = 300);
  static ResourceRecord ns(Name name, Name server, std::uint32_t ttl = 3600);
  static ResourceRecord cname(Name name, Name target,
                              std::uint32_t ttl = 300);
  static ResourceRecord soa(Name name, SoaRecord soa,
                            std::uint32_t ttl = 3600);
  static ResourceRecord txt(Name name, std::vector<std::string> strings,
                            std::uint32_t ttl = 300);
};

}  // namespace cs::dns
