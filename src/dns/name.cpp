#include "dns/name.h"

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"
#include "util/strings.h"

namespace cs::dns {
namespace {

bool valid_label(std::string_view label) {
  if (label.empty() || label.size() > 63) return false;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

std::optional<Name> Name::parse(std::string_view text) {
  if (text.empty()) return std::nullopt;
  if (text == ".") return Name{};
  if (text.back() == '.') text.remove_suffix(1);
  const std::string lowered = util::to_lower(text);
  std::vector<std::string> labels;
  for (auto piece : util::split(lowered, '.')) {
    if (!valid_label(piece)) return std::nullopt;
    labels.emplace_back(piece);
  }
  return from_labels(std::move(labels));
}

Name Name::must_parse(std::string_view text) {
  auto n = parse(text);
  if (!n)
    throw std::invalid_argument{"Name::must_parse: invalid name: " +
                                std::string{text}};
  return *std::move(n);
}

std::optional<Name> Name::from_labels(std::vector<std::string> labels) {
  std::size_t wire = 1;  // terminal root length octet
  for (auto& l : labels) {
    l = util::to_lower(l);
    if (!valid_label(l)) return std::nullopt;
    wire += 1 + l.size();
  }
  if (wire > 255) return std::nullopt;
  Name n;
  n.labels_ = std::move(labels);
  return n;
}

std::string_view Name::leftmost() const noexcept {
  static const std::string kEmpty;
  return labels_.empty() ? std::string_view{kEmpty} : labels_.front();
}

Name Name::parent() const {
  Name p;
  if (labels_.size() > 1)
    p.labels_.assign(labels_.begin() + 1, labels_.end());
  return p;
}

std::optional<Name> Name::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

bool Name::is_subdomain_of(const Name& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) return false;
  return std::equal(ancestor.labels_.rbegin(), ancestor.labels_.rend(),
                    labels_.rbegin());
}

std::size_t Name::wire_length() const noexcept {
  std::size_t n = 1;
  for (const auto& l : labels_) n += 1 + l.size();
  return n;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

bool Name::canonical_less(const Name& a, const Name& b) noexcept {
  auto ia = a.labels_.rbegin();
  auto ib = b.labels_.rbegin();
  for (; ia != a.labels_.rend() && ib != b.labels_.rend(); ++ia, ++ib) {
    if (*ia != *ib) return *ia < *ib;
  }
  return a.labels_.size() < b.labels_.size();
}

std::size_t NameHash::operator()(const Name& n) const noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& label : n.labels()) {
    h ^= util::stable_hash(label);
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace cs::dns
