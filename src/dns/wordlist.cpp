#include "dns/wordlist.h"

namespace cs::dns {

const std::vector<std::string>& default_wordlist() {
  static const std::vector<std::string> kWords = {
      // Top prefixes reported by the paper (§3.2), most common first.
      "www", "m", "ftp", "cdn", "mail", "staging", "blog", "support", "test",
      "dev",
      // Common service prefixes from the dnsmap/knock lists.
      "api", "app", "apps", "assets", "beta", "static", "img", "images",
      "media", "video", "videos", "shop", "store", "secure", "login", "auth",
      "account", "accounts", "admin", "portal", "dashboard", "console",
      "status", "news", "forum", "forums", "wiki", "docs", "help", "search",
      "download", "downloads", "upload", "files", "data", "db", "sql",
      "smtp", "pop", "imap", "webmail", "mx", "ns", "ns1", "ns2", "dns",
      "vpn", "proxy", "gateway", "gw", "remote", "intranet", "internal",
      "extranet", "partner", "partners", "client", "clients", "customer",
      "demo", "sandbox", "qa", "uat", "preprod", "prod", "live", "origin",
      "edge", "cache", "mirror", "backup", "old", "new", "v1", "v2", "web",
      "web1", "web2", "server", "host", "cloud", "s3", "storage", "git",
      "svn", "ci", "build", "jenkins", "monitor", "metrics", "stats",
      "analytics", "track", "tracking", "ads", "ad", "email", "newsletter",
      "events", "calendar", "chat", "im", "sip", "voip", "mobile", "wap",
      "i", "t", "a", "b", "c", "e", "go", "get", "my", "us", "en", "de",
      "fr", "jp", "cn", "uk", "payments", "pay", "billing", "invoice",
      "careers", "jobs", "press", "about", "labs", "research", "developer",
      "developers", "community", "social", "feeds", "rss", "widget",
      "widgets", "embed", "player", "stream", "streaming",
  };
  return kWords;
}

const std::vector<std::string>& small_wordlist() {
  static const std::vector<std::string> kWords = {
      "www", "m", "ftp", "cdn", "mail", "blog", "api", "dev",
  };
  return kWords;
}

}  // namespace cs::dns
