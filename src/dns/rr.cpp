#include "dns/rr.h"

#include "util/format.h"

namespace cs::dns {

std::string to_string(RrType type) {
  switch (type) {
    case RrType::kA:
      return "A";
    case RrType::kNs:
      return "NS";
    case RrType::kCname:
      return "CNAME";
    case RrType::kSoa:
      return "SOA";
    case RrType::kTxt:
      return "TXT";
    case RrType::kAxfr:
      return "AXFR";
    case RrType::kAny:
      return "ANY";
  }
  return cs::util::fmt("TYPE{}", static_cast<std::uint16_t>(type));
}

RrType ResourceRecord::type() const noexcept {
  struct Visitor {
    RrType operator()(const ARecord&) const { return RrType::kA; }
    RrType operator()(const NsRecord&) const { return RrType::kNs; }
    RrType operator()(const CnameRecord&) const { return RrType::kCname; }
    RrType operator()(const SoaRecord&) const { return RrType::kSoa; }
    RrType operator()(const TxtRecord&) const { return RrType::kTxt; }
  };
  return std::visit(Visitor{}, data);
}

std::string ResourceRecord::to_string() const {
  struct Visitor {
    std::string operator()(const ARecord& r) const {
      return r.address.to_string();
    }
    std::string operator()(const NsRecord& r) const {
      return r.nameserver.to_string();
    }
    std::string operator()(const CnameRecord& r) const {
      return r.target.to_string();
    }
    std::string operator()(const SoaRecord& r) const {
      return cs::util::fmt("{} {} {}", r.mname.to_string(), r.rname.to_string(),
                         r.serial);
    }
    std::string operator()(const TxtRecord& r) const {
      std::string out;
      for (const auto& s : r.strings) out += "\"" + s + "\" ";
      if (!out.empty()) out.pop_back();
      return out;
    }
  };
  return cs::util::fmt("{} {} IN {} {}", name.to_string(), ttl,
                     cs::dns::to_string(type()), std::visit(Visitor{}, data));
}

ResourceRecord ResourceRecord::a(Name name, net::Ipv4 addr,
                                 std::uint32_t ttl) {
  return {std::move(name), ttl, ARecord{addr}};
}
ResourceRecord ResourceRecord::ns(Name name, Name server, std::uint32_t ttl) {
  return {std::move(name), ttl, NsRecord{std::move(server)}};
}
ResourceRecord ResourceRecord::cname(Name name, Name target,
                                     std::uint32_t ttl) {
  return {std::move(name), ttl, CnameRecord{std::move(target)}};
}
ResourceRecord ResourceRecord::soa(Name name, SoaRecord soa,
                                   std::uint32_t ttl) {
  return {std::move(name), ttl, std::move(soa)};
}
ResourceRecord ResourceRecord::txt(Name name, std::vector<std::string> strings,
                                   std::uint32_t ttl) {
  return {std::move(name), ttl, TxtRecord{std::move(strings)}};
}

}  // namespace cs::dns
