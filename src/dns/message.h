#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dns/rr.h"

/// DNS message model and full RFC 1035 wire codec, including name
/// compression on encode and pointer chasing (with loop guards) on decode.
///
/// The enumerator and resolver speak this wire format end to end — queries
/// are encoded to bytes and responses decoded from bytes even inside the
/// simulator, so the codec is exercised by every experiment that touches
/// DNS, exactly as dig/dnsmap would exercise a real resolver path.
namespace cs::dns {

enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNxDomain = 3,
  kNotImp = 4,
  kRefused = 5,
};

std::string to_string(Rcode rcode);

enum class Opcode : std::uint8_t {
  kQuery = 0,
};

/// Message header (RFC 1035 §4.1.1). Counts live implicitly in the
/// section vectors of Message.
struct Header {
  std::uint16_t id = 0;
  bool qr = false;  ///< false = query, true = response
  Opcode opcode = Opcode::kQuery;
  bool aa = false;  ///< authoritative answer
  bool tc = false;  ///< truncated
  bool rd = false;  ///< recursion desired ("norecurse" clears this)
  bool ra = false;  ///< recursion available
  Rcode rcode = Rcode::kNoError;

  bool operator==(const Header&) const = default;
};

struct Question {
  Name name;
  RrType type = RrType::kA;

  bool operator==(const Question&) const = default;
};

/// A complete DNS message.
struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  bool operator==(const Message&) const = default;

  /// Builds a standard query for one (name, type) pair.
  static Message query(std::uint16_t id, Name name, RrType type,
                       bool recursion_desired = false);

  /// Builds a response skeleton echoing the query's id and question.
  static Message response_to(const Message& query, Rcode rcode,
                             bool authoritative);

  /// Serializes to wire format. Never fails for messages built through this
  /// API (names are pre-validated).
  std::vector<std::uint8_t> encode() const;

  /// Parses wire format; nullopt on any malformed input (truncation,
  /// compression loops, bad rdata lengths, unknown classes).
  static std::optional<Message> decode(std::span<const std::uint8_t> wire);
};

}  // namespace cs::dns
