#pragma once

#include <map>
#include <optional>
#include <vector>

#include "dns/rr.h"

/// An authoritative DNS zone: an apex SOA, the records at and below the
/// apex, and delegation (zone-cut) tracking via NS records owned by names
/// other than the apex.
namespace cs::dns {

class Zone {
 public:
  /// Creates a zone rooted at `origin` with the given SOA.
  Zone(Name origin, SoaRecord soa);

  const Name& origin() const noexcept { return origin_; }
  const SoaRecord& soa() const noexcept { return soa_; }

  /// Adds a record. The record's name must be at or below the origin;
  /// returns false (and ignores the record) otherwise, or when adding a
  /// CNAME beside other data / other data beside a CNAME (RFC 1034 §3.6.2).
  bool add(ResourceRecord rr);

  /// True if any records exist at exactly this name.
  bool has_name(const Name& name) const;

  /// Records of one type at exactly this name (no CNAME chasing here).
  std::vector<ResourceRecord> find(const Name& name, RrType type) const;

  /// All records at a name, any type.
  std::vector<ResourceRecord> find_all(const Name& name) const;

  /// If `name` sits at or below a delegation cut (a non-apex owner of NS
  /// records), returns the cut owner name.
  std::optional<Name> delegation_cut(const Name& name) const;

  /// Full zone contents in canonical order for AXFR: SOA first, then all
  /// other records, then the SOA again (RFC 5936 framing).
  std::vector<ResourceRecord> axfr() const;

  /// All names owned by the zone in canonical order (SOA apex included).
  std::vector<Name> names() const;

  std::size_t record_count() const noexcept { return record_count_; }

 private:
  struct NodeData {
    std::map<RrType, std::vector<ResourceRecord>> by_type;
  };

  Name origin_;
  SoaRecord soa_;
  std::map<Name, NodeData, bool (*)(const Name&, const Name&)> nodes_;
  std::size_t record_count_ = 0;
};

}  // namespace cs::dns
