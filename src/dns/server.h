#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "dns/message.h"
#include "dns/zone.h"
#include "net/ipv4.h"

/// An authoritative DNS server hosting one or more zones.
///
/// Implements the RFC 1034 §4.3.2 answer algorithm for the supported types:
/// authoritative answers, in-zone CNAME chasing, delegation referrals with
/// glue, NODATA vs NXDOMAIN distinction, and AXFR with a per-server policy
/// (the paper's methodology first attempts zone transfers, which succeed
/// for only ~8% of domains — the policy knob reproduces that).
namespace cs::dns {

class AuthoritativeServer {
 public:
  /// Policy deciding whether a client may AXFR a zone.
  using AxfrPolicy = std::function<bool(net::Ipv4 client, const Name& zone)>;

  AuthoritativeServer() = default;

  /// Adds a zone; the server answers authoritatively for it. Returns a
  /// reference for further population.
  Zone& add_zone(Name origin, SoaRecord soa);

  /// Looks up a hosted zone by exact origin.
  Zone* zone(const Name& origin);
  const Zone* zone(const Name& origin) const;

  /// Sets the AXFR policy; default denies everything.
  void set_axfr_policy(AxfrPolicy policy) { axfr_policy_ = std::move(policy); }

  /// Client-dependent answers (DNS-level load balancing, the mechanism
  /// behind Azure Traffic Manager and ELB's rotating replies). When the
  /// hook returns a record for (client, qname) it is used instead of the
  /// zone's static data at that name; a returned CNAME is then chased
  /// normally. Return nullopt to fall through to static data.
  using DynamicAnswer = std::function<std::optional<ResourceRecord>(
      net::Ipv4 client, const Name& qname)>;
  void set_dynamic_answer(DynamicAnswer hook) {
    dynamic_answer_ = std::move(hook);
  }

  /// Answers one query message as this server would on the wire.
  /// `client` is the querying address (used only by the AXFR policy).
  Message handle(net::Ipv4 client, const Message& query) const;

  /// Wire-level entry point: decodes, handles, re-encodes. Malformed input
  /// produces a FORMERR with an empty question section.
  std::vector<std::uint8_t> handle_wire(
      net::Ipv4 client, std::span<const std::uint8_t> wire) const;

  std::size_t zone_count() const noexcept { return zones_.size(); }

 private:
  /// Deepest zone whose origin is an ancestor of (or equals) the name.
  const Zone* best_zone(const Name& name) const;

  void answer_question(net::Ipv4 client, const Question& q,
                       Message& response) const;

  std::map<Name, std::unique_ptr<Zone>, bool (*)(const Name&, const Name&)>
      zones_{&Name::canonical_less};
  AxfrPolicy axfr_policy_;
  DynamicAnswer dynamic_answer_;
};

}  // namespace cs::dns
