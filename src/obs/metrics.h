#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/sync.h"

/// Process-wide metrics: named counters, gauges, and fixed-bucket
/// histograms describing how much work the pipeline did (DNS queries
/// served, packets decoded, bytes generated, ...).
///
/// Design rules:
///  - Hot paths touch only relaxed atomics. Registration (the name lookup)
///    takes a mutex, so callers cache the returned reference once:
///
///      static auto& queries = obs::counter("dns.server.queries");
///      queries.inc();
///
///  - Instrument handles are owned by the registry and never move, so a
///    cached reference stays valid for the life of the process.
///  - Reads are snapshot-on-read: `snapshot()` copies every value under
///    the registration mutex; later increments don't mutate the copy.
namespace cs::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Histogram over fixed, registration-time bucket upper bounds. A sample
/// lands in the first bucket whose bound is >= the sample; samples above
/// the last bound land in the implicit overflow bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double sample) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;  // sorted ascending, immutable
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate interpolated linearly inside the bucket holding
  /// rank q*count: bucket i spans (bounds[i-1], bounds[i]], the first
  /// bucket starts at 0 (histograms here hold non-negative samples), and
  /// the open-ended overflow bucket reports bounds.back() since it has no
  /// upper edge to interpolate toward. q is clamped to [0,1]; an empty
  /// histogram reports 0. Feeds the p50/p90/p99 summaries in RunReport
  /// sidecars.
  double quantile(double q) const noexcept;
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Value of a named counter, or 0 when absent.
  std::uint64_t counter(std::string_view name) const noexcept;
};

class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation site uses.
  static MetricsRegistry& instance();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named instrument. The reference is stable.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is used only on first registration and must be non-empty;
  /// later calls with the same name return the existing histogram.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Consistent copy of every registered instrument, sorted by name.
  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (registrations — and cached references —
  /// survive). Benches call this between warmup and the measured run.
  void reset_values();

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CS_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CS_GUARDED_BY(mutex_);
};

namespace detail {
/// -1 = not yet initialized from the CS_METRICS environment variable.
inline std::atomic<int> g_detailed_metrics{-1};
/// Reads CS_METRICS (1/true/on enables) and caches the result.
int init_detailed_metrics_from_env() noexcept;
}  // namespace detail

/// Whether per-packet counters are collected. Stage- and query-level
/// counters are always on (they are amortized over expensive work), but
/// packet-rate paths check this flag first: one relaxed load + branch,
/// cheap enough for a ~6 ns decode loop where even an uncontended atomic
/// increment would triple the cost. Enabled by CS_METRICS=1 or whenever
/// span collection turns on (CS_TRACE, CS_BENCH_JSON, profilers).
inline bool detailed_metrics() noexcept {
  const int v = detail::g_detailed_metrics.load(std::memory_order_relaxed);
  if (v >= 0) [[likely]] return v != 0;
  return detail::init_detailed_metrics_from_env() != 0;
}

inline void set_detailed_metrics(bool on) noexcept {
  detail::g_detailed_metrics.store(on ? 1 : 0, std::memory_order_relaxed);
}

/// Shorthands against the process-wide registry.
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name,
                            std::vector<double> bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(bounds));
}

}  // namespace cs::obs
