#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/sync.h"

/// Pipeline spans: RAII timers that nest, aggregate into a per-stage
/// summary table, and export as Chrome trace-event JSON.
///
///   CS_TRACE=out.json ./bench_table9_regions
///
/// writes `out.json`, loadable in chrome://tracing or https://ui.perfetto.dev.
/// Tracing is off unless CS_TRACE is set (or a program enables collection);
/// a disabled `Span` is two relaxed atomic loads and performs no allocation,
/// so instrumented hot paths cost nothing in ordinary runs.
///
/// Spans nest per thread: a span opened while another is live on the same
/// thread records that span as its parent, which is how the exported trace
/// and the summary's self-time are computed.
namespace cs::obs {

/// Microseconds on the monotonic clock. The sanctioned wall-clock read
/// for library code: cs-lint's D1 check bans direct clock access outside
/// obs/ (and snap/'s backoff), so timing can never silently leak into
/// seeded, reproducible artifacts.
std::uint64_t steady_now_us() noexcept;

struct SpanEvent {
  std::string name;
  std::uint64_t start_us = 0;  ///< relative to tracer epoch
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;       ///< small per-thread ordinal
  std::int32_t parent = -1;    ///< index into the event list, -1 = root
  std::int32_t depth = 0;
};

/// One sample of a numeric lane ("counter" in the trace-event format):
/// queue depth, resident set size, ... Perfetto renders each distinct
/// name as its own filled-area track alongside the span lanes.
struct CounterEvent {
  std::string name;
  std::uint64_t ts_us = 0;  ///< relative to tracer epoch
  double value = 0.0;
};

struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t self_us = 0;  ///< total minus time in child spans
  std::uint64_t max_us = 0;
};

class Tracer {
 public:
  /// Process-wide tracer. First access reads CS_TRACE: when set and
  /// non-empty, collection starts and the trace is written to that path
  /// at process exit.
  static Tracer& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts collection without scheduling a file export (benches and the
  /// profiler example use this to build summaries in-process).
  void enable_collection();
  /// Starts collection and writes `path` at process exit.
  void enable_export(std::string path);
  void disable() noexcept;

  /// Drops every recorded event (collection state is unchanged).
  void clear();

  std::vector<SpanEvent> events() const;
  /// Aggregates events by span name, ordered by first occurrence.
  std::vector<SpanStats> stats() const;

  /// Appends a counter sample at the current epoch time. A no-op while
  /// collection is disabled, so instrumented code can sample
  /// unconditionally (RunReport::sample_counter_lane is the usual caller).
  void record_counter(std::string_view name, double value);
  std::vector<CounterEvent> counter_events() const;

  /// Chrome trace-event JSON ("traceEvents" array of complete "X" events).
  std::string chrome_json() const;
  /// Writes chrome_json() to a file; returns false (and logs) on failure.
  bool write_chrome_json(const std::string& path) const;

  /// Renders stats() as a fixed-width table via util::Table.
  std::string render_summary() const;

  /// Used by Span: reserves the event slot at span open (children close
  /// before their parent, so the parent index must exist first) and
  /// returns its index. `start_us` is relative to the tracer epoch.
  std::int32_t record(std::string_view name, std::uint64_t start_us,
                      std::uint64_t dur_us, std::int32_t parent,
                      std::int32_t depth, std::uint32_t tid);

  /// Used by Span: fills in the duration of a reserved event. A no-op when
  /// the event list was cleared since the reservation.
  void patch_duration(std::int32_t index, std::uint64_t dur_us);

  /// Microseconds since the tracer epoch (steady clock).
  std::uint64_t epoch_now_us() const noexcept;

  /// Small dense ordinal for the calling thread (stable per thread).
  static std::uint32_t thread_ordinal();

  /// Names the calling thread's lane in exports and summaries (pool
  /// workers register as "exec-worker-0" ... so traces stay readable
  /// instead of showing raw thread ordinals). Safe to call whether or not
  /// collection is enabled; the last name registered for a thread wins.
  void set_thread_name(std::string name);

  /// Registered lane names by thread ordinal (exposed for tests).
  std::vector<std::pair<std::uint32_t, std::string>> thread_names() const;

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  mutable util::Mutex mutex_;
  std::vector<SpanEvent> events_ CS_GUARDED_BY(mutex_);
  std::vector<CounterEvent> counter_events_ CS_GUARDED_BY(mutex_);
  std::map<std::uint32_t, std::string> thread_names_ CS_GUARDED_BY(mutex_);
  std::string export_path_ CS_GUARDED_BY(mutex_);
  std::int64_t epoch_ns_ = 0;  ///< immutable after construction
};

/// RAII span. Opens on construction, records on destruction. When the
/// tracer is disabled at open time the span is inert (no clock reads, no
/// allocation) and stays inert even if tracing turns on mid-span.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string_view name_;   // literal at every call site; never outlived
  std::uint64_t start_us_ = 0;
  std::int32_t parent_ = -1;
  std::int32_t depth_ = 0;
  bool active_ = false;
};

}  // namespace cs::obs
