#pragma once

#include <string>
#include <string_view>

#include "util/format.h"

/// Leveled structured logger for the whole pipeline.
///
/// The level comes from the `CS_LOG_LEVEL` environment variable
/// (trace|debug|info|warn|error|off, default warn) and can be overridden
/// programmatically. Every line goes to stderr as
///
///   [level] component: message
///
/// so bench stdout (the reproduced tables) stays clean and diffable.
/// Emission is mutex-serialized; the level check itself is a relaxed
/// atomic load, cheap enough for hot paths.
namespace cs::obs {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Current threshold (first call reads CS_LOG_LEVEL).
LogLevel log_level() noexcept;

/// Overrides the threshold for the rest of the process.
void set_log_level(LogLevel level) noexcept;

/// Parses "debug", "WARN", ... ; returns fallback on unknown input.
LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept;

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

/// Emits one pre-formatted line (no level check — use the templates below).
void log_line(LogLevel level, std::string_view component,
              std::string_view message);

template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view format,
         const Args&... args) {
  if (!log_enabled(level)) return;
  log_line(level, component, util::fmt(format, args...));
}

template <typename... Args>
void log_trace(std::string_view component, std::string_view format,
               const Args&... args) {
  log(LogLevel::kTrace, component, format, args...);
}
template <typename... Args>
void log_debug(std::string_view component, std::string_view format,
               const Args&... args) {
  log(LogLevel::kDebug, component, format, args...);
}
template <typename... Args>
void log_info(std::string_view component, std::string_view format,
              const Args&... args) {
  log(LogLevel::kInfo, component, format, args...);
}
template <typename... Args>
void log_warn(std::string_view component, std::string_view format,
              const Args&... args) {
  log(LogLevel::kWarn, component, format, args...);
}
template <typename... Args>
void log_error(std::string_view component, std::string_view format,
               const Args&... args) {
  log(LogLevel::kError, component, format, args...);
}

}  // namespace cs::obs
