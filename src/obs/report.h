#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

/// RunReport: the one description of what a run did and what it cost.
///
/// Before it existed every consumer re-derived its own view — the bench
/// sidecar writer took two separate metrics snapshots (so pool and counter
/// values could disagree), pipeline_profile hand-walked the registry, and
/// nothing recorded CPU time or memory at all. RunReport::capture() takes
/// exactly one `MetricsRegistry::snapshot()`, one `Tracer::stats()`, and
/// one `resource_usage()` read, and `to_json()` renders the sidecar shape
/// every `BENCH_*` trajectory entry (and `tools/csbench`) consumes:
///
///   {"bench", "wall_ms", "threads", "resources", "pool", "snap",
///    "fault", "stages", "percentiles", "counters"}
///
/// The `snap`/`fault` blocks record *what* ran — checkpoint hits vs
/// rebuilds, supervisor retries, every injected fault — so a trajectory
/// entry is comparable, not just timed. See DESIGN.md §11.
namespace cs::obs {

/// Process resource accounting, read from getrusage(2) plus
/// /proc/self/status. Lives in obs/ beside steady_now_us(): the one place
/// cslint's D1/E1 checks tolerate the process asking the OS about itself.
struct ResourceUsage {
  std::uint64_t user_cpu_us = 0;    ///< ru_utime
  std::uint64_t system_cpu_us = 0;  ///< ru_stime
  std::int64_t peak_rss_kb = 0;     ///< VmHWM, falling back to ru_maxrss
  std::int64_t current_rss_kb = 0;  ///< VmRSS; 0 when /proc is unavailable
};

/// Reads the calling process's usage now. Fields that cannot be read stay
/// zero; never fails.
ResourceUsage resource_usage() noexcept;

struct RunReport {
  std::string name;          ///< bench / program identity
  double wall_ms = 0.0;      ///< process wall time (tracer epoch to now)
  unsigned threads = 0;      ///< exec pool width; callers set it (obs
                             ///< cannot depend on exec), 0 = unrecorded
  double baseline_wall_ms = 0.0;  ///< CS_BENCH_BASELINE wall, 0 = none
  ResourceUsage resources;
  std::vector<SpanStats> stages;  ///< Tracer::stats() at capture time
  MetricsSnapshot metrics;        ///< the single consistent snapshot

  /// Captures everything at once: wall clock, resource usage, span stats,
  /// and one metrics snapshot that every derived block shares.
  static RunReport capture(std::string name);

  /// Records the current RSS and exec queue-depth gauge as Chrome-trace
  /// counter events, so repeated calls (one per pipeline stage) render as
  /// memory/queue lanes in Perfetto. No-op while collection is off.
  static void sample_counter_lane();

  /// The sidecar JSON (shape above). Deterministic field order.
  std::string to_json() const;

  /// Writes to_json() to `path`; returns false (and logs) on failure.
  bool write(const std::string& path) const;
};

}  // namespace cs::obs
