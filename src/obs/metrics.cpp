#include "obs/metrics.h"

#include <algorithm>
#include <stdexcept>

#include "obs/log.h"
#include "util/env.h"
#include "util/sync.h"

namespace cs::obs {

namespace detail {

int init_detailed_metrics_from_env() noexcept {
  int on = 0;
  if (const auto env = util::env_text(util::Knob::kMetrics)) {
    if (const auto flag = util::parse_env_flag(*env)) {
      on = *flag ? 1 : 0;
    } else {
      log_warn("obs", "{}",
               util::env_malformed(util::Knob::kMetrics, *env,
                                   "1/true/on/yes or 0/false/off/no"));
    }
  }
  g_detailed_metrics.store(on, std::memory_order_relaxed);
  return on;
}

}  // namespace detail

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument{"Histogram: bounds must be non-empty"};
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::observe(double sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  const auto index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0 || bounds.empty() || buckets.size() != bounds.size() + 1)
    return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    const double reached = static_cast<double>(cumulative + in_bucket);
    if (reached >= target) {
      if (i == bounds.size()) return bounds.back();  // open overflow bucket
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lo + (hi - lo) * into;
    }
    cumulative += in_bucket;
  }
  return bounds.back();
}

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

MetricsRegistry& MetricsRegistry::instance() {
  // Intentionally leaked: atexit handlers (trace export, bench sidecars)
  // read metrics after ordinary static destruction would have run.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  util::LockGuard lock{mutex_};
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string{name}, std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  util::LockGuard lock{mutex_};
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string{name}, std::make_unique<Gauge>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  util::LockGuard lock{mutex_};
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_
              .emplace(std::string{name},
                       std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  util::LockGuard lock{mutex_};
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_)
    snap.gauges.push_back({name, g->value()});
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

void MetricsRegistry::reset_values() {
  util::LockGuard lock{mutex_};
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace cs::obs
