#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <optional>

#include "util/env.h"
#include "util/sync.h"

namespace cs::obs {
namespace {

std::atomic<int> g_level{-1};  // -1 = not yet initialized from the env
util::Mutex g_emit_mutex;

const char* level_name(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "trace";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if ((a[i] | 0x20) != (b[i] | 0x20)) return false;
  return true;
}

std::optional<LogLevel> try_parse_log_level(std::string_view text) noexcept {
  if (iequals(text, "trace")) return LogLevel::kTrace;
  if (iequals(text, "debug")) return LogLevel::kDebug;
  if (iequals(text, "info")) return LogLevel::kInfo;
  if (iequals(text, "warn") || iequals(text, "warning"))
    return LogLevel::kWarn;
  if (iequals(text, "error")) return LogLevel::kError;
  if (iequals(text, "off") || iequals(text, "none")) return LogLevel::kOff;
  return std::nullopt;
}

LogLevel init_from_env() noexcept {
  LogLevel level = LogLevel::kWarn;
  std::optional<std::string> malformed;
  if (const auto env = util::env_text(util::Knob::kLogLevel)) {
    if (const auto parsed = try_parse_log_level(*env))
      level = *parsed;
    else
      malformed = *env;
  }
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
  // Warn only after the level is installed, so the warning itself obeys it.
  if (malformed && level <= LogLevel::kWarn)
    log_line(LogLevel::kWarn, "obs",
             util::env_malformed(util::Knob::kLogLevel, *malformed,
                                 "trace/debug/info/warn/error/off"));
  return level;
}

}  // namespace

LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept {
  return try_parse_log_level(text).value_or(fallback);
}

LogLevel log_level() noexcept {
  const int raw = g_level.load(std::memory_order_relaxed);
  if (raw >= 0) return static_cast<LogLevel>(raw);
  return init_from_env();
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, std::string_view component,
              std::string_view message) {
  util::LockGuard lock{g_emit_mutex};
  // The logger's terminal sink: the one place in library code where
  // bytes are allowed to reach stderr.
  // cslint:allow(L1): obs::log IS the sanctioned sink itself
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace cs::obs
